package parallel

import (
	"sync/atomic"
	"testing"

	"repro/internal/event"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/window"
)

const (
	typeA = event.Type(0)
	typeB = event.Type(1)
)

func seqAB() []*pattern.Compiled {
	return []*pattern.Compiled{pattern.MustCompile(pattern.Pattern{
		Name: "seq(A;B)",
		Steps: []pattern.Step{
			{Types: []event.Type{typeA}},
			{Types: []event.Type{typeB}},
		},
	})}
}

func mkStream(n int) []event.Event {
	out := make([]event.Event, n)
	for i := range out {
		out[i] = event.Event{Seq: uint64(i), Type: event.Type(i % 2), TS: event.Time(i) * event.Millisecond}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	emit := func(operator.ComplexEvent) {}
	if _, err := New(Config{Emit: emit}); err == nil {
		t.Error("missing patterns must fail")
	}
	if _, err := New(Config{Patterns: []*pattern.Compiled{nil}, Emit: emit}); err == nil {
		t.Error("nil pattern must fail")
	}
	if _, err := New(Config{Patterns: seqAB()}); err == nil {
		t.Error("missing emit must fail")
	}
}

func TestParallelMatchesSerialOperator(t *testing.T) {
	spec := window.Spec{Mode: window.ModeCount, Count: 50, Slide: 25}
	events := mkStream(5000)

	// Serial reference.
	op, err := operator.New(operator.Config{Window: spec, Patterns: seqAB()})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := sim.ReplayUnshed(events, op)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 16} {
		got, err := Replay(events, spec, Config{
			Patterns: seqAB(),
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d complex events, serial %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i].Key() != serial[i].Key() {
				t.Fatalf("workers=%d: event %d differs: %v vs %v", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestEmissionOrderPreserved(t *testing.T) {
	spec := window.Spec{Mode: window.ModeCount, Count: 10, Slide: 10}
	events := mkStream(2000)
	var lastWindow int64 = -1
	violations := int64(0)
	_, err := Replay(events, spec, Config{
		Patterns: seqAB(),
		Workers:  8,
		Emit: func(ce operator.ComplexEvent) {
			if int64(ce.WindowID) <= atomic.LoadInt64(&lastWindow) {
				atomic.AddInt64(&violations, 1)
			}
			atomic.StoreInt64(&lastWindow, int64(ce.WindowID))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Errorf("emission order violated %d times", violations)
	}
}

func TestMultiMatchPerWindow(t *testing.T) {
	p := pattern.MustCompile(pattern.Pattern{
		Name: "consumed",
		Steps: []pattern.Step{
			{Types: []event.Type{typeA}},
			{Types: []event.Type{typeB}},
		},
		Consumption: pattern.Consumed,
	})
	spec := window.Spec{Mode: window.ModeCount, Count: 10, Slide: 10}
	got, err := Replay(mkStream(100), spec, Config{
		Patterns:            []*pattern.Compiled{p},
		MaxMatchesPerWindow: 10,
		Workers:             4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each 10-event window holds 5 A;B pairs.
	if len(got) != 50 {
		t.Errorf("complex events = %d, want 50", len(got))
	}
}

func TestCloseIdempotent(t *testing.T) {
	x, err := New(Config{Patterns: seqAB(), Emit: func(operator.ComplexEvent) {}})
	if err != nil {
		t.Fatal(err)
	}
	x.Close() // before Start: no-op
	x.Start()
	x.Start() // idempotent
	w := &window.Window{}
	w.Add(event.Event{Type: typeA}, 0)
	w.Add(event.Event{Type: typeB, Seq: 1}, 1)
	x.Submit(w, 0)
	x.Close()
	x.Close() // idempotent
}

func TestReplayErrors(t *testing.T) {
	if _, err := Replay(nil, window.Spec{}, Config{Patterns: seqAB()}); err == nil {
		t.Error("bad window spec must fail")
	}
	if _, err := Replay(nil, window.Spec{Mode: window.ModeCount, Count: 5, Slide: 5}, Config{}); err == nil {
		t.Error("bad executor config must fail")
	}
}

func BenchmarkSerialVsParallelMatching(b *testing.B) {
	// Q3-shaped load: 20-step sequence over 2000-event windows.
	steps := make([]pattern.Step, 20)
	for i := range steps {
		steps[i] = pattern.Step{Types: []event.Type{event.Type(i % 5)}}
	}
	pats := []*pattern.Compiled{pattern.MustCompile(pattern.Pattern{Name: "long", Steps: steps})}
	spec := window.Spec{Mode: window.ModeCount, Count: 2000, Slide: 200}
	events := make([]event.Event, 40000)
	for i := range events {
		events[i] = event.Event{Seq: uint64(i), Type: event.Type(i % 7)}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op, err := operator.New(operator.Config{Window: spec, Patterns: pats})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.ReplayUnshed(events, op); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Replay(events, spec, Config{Patterns: pats}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
