// Package parallel provides window-based data parallelism for pattern
// matching — the execution model of the data-parallel CEP systems the
// eSPICE paper builds on (window-based parallelization as in RIP and
// SPECTRE): windows are independent units of matching, so closed windows
// can be matched on a worker pool while the routing/shedding hot path
// stays single-threaded. Complex events are emitted in window-close
// order, preserving the serial operator's output order.
package parallel

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/event"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/window"
)

// Executor matches closed windows on a pool of workers.
type Executor struct {
	patterns   []*pattern.Compiled
	maxMatches int
	workers    int

	jobs chan job
	seq  *Sequencer[[]operator.ComplexEvent]
	emit func(operator.ComplexEvent)

	wg      sync.WaitGroup
	started bool
	closed  bool
}

type job struct {
	w      *window.Window
	now    event.Time
	ticket *Ticket[[]operator.ComplexEvent]
}

// Config assembles an executor.
type Config struct {
	// Patterns are tried in order per window; first match wins when
	// MaxMatchesPerWindow is 1 (the default).
	Patterns            []*pattern.Compiled
	MaxMatchesPerWindow int
	// Workers defaults to GOMAXPROCS.
	Workers int
	// Emit receives complex events in window-close order; required.
	Emit func(operator.ComplexEvent)
}

// New builds an executor; Start must be called before Submit.
func New(cfg Config) (*Executor, error) {
	if len(cfg.Patterns) == 0 {
		return nil, fmt.Errorf("parallel: at least one pattern is required")
	}
	for i, p := range cfg.Patterns {
		if p == nil {
			return nil, fmt.Errorf("parallel: pattern %d is nil", i)
		}
	}
	if cfg.Emit == nil {
		return nil, fmt.Errorf("parallel: Emit is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxMatches := cfg.MaxMatchesPerWindow
	if maxMatches <= 0 {
		maxMatches = 1
	}
	x := &Executor{
		patterns:   cfg.Patterns,
		maxMatches: maxMatches,
		workers:    workers,
		jobs:       make(chan job, 2*workers),
		emit:       cfg.Emit,
	}
	// The sequencer exists from construction so Submit before Start
	// buffers safely, exactly as the pre-sequencer implementation did;
	// its emitter goroutine only starts on first use, so an executor
	// that is built but never driven leaks nothing.
	x.seq = NewSequencer(4*workers, func(ces []operator.ComplexEvent) {
		for _, ce := range ces {
			x.emit(ce)
		}
	})
	return x, nil
}

// Start launches the worker pool and the ordered emitter. Each worker
// owns its reusable match scratch (operator.Matcher); the compiled
// patterns stay shared and immutable.
func (x *Executor) Start() {
	if x.started {
		return
	}
	x.started = true
	for i := 0; i < x.workers; i++ {
		x.wg.Add(1)
		go func() {
			defer x.wg.Done()
			mt := operator.NewMatcher(x.patterns, x.maxMatches)
			for j := range x.jobs {
				ces, _, _ := mt.MatchClosed(j.w, j.now, nil)
				j.ticket.Complete(ces)
			}
		}()
	}
}

// Submit dispatches a closed window for matching. Must not be called
// after Close. Submissions from a single goroutine preserve order.
func (x *Executor) Submit(w *window.Window, now event.Time) {
	x.jobs <- job{w: w, now: now, ticket: x.seq.Open()}
}

// Close waits for all submitted windows to be matched and emitted.
func (x *Executor) Close() {
	if !x.started || x.closed {
		return
	}
	x.closed = true
	close(x.jobs)
	x.wg.Wait()
	x.seq.Close()
}

// Replay routes a full stream through a window manager and matches every
// closed window on the pool, returning all complex events in order —
// a drop-in parallel replacement for an unshed serial replay.
func Replay(events []event.Event, spec window.Spec, cfg Config) ([]operator.ComplexEvent, error) {
	var out []operator.ComplexEvent
	userEmit := cfg.Emit
	cfg.Emit = func(ce operator.ComplexEvent) {
		out = append(out, ce)
		if userEmit != nil {
			userEmit(ce)
		}
	}
	x, err := New(cfg)
	if err != nil {
		return nil, err
	}
	mgr, err := window.NewManager(spec)
	if err != nil {
		return nil, err
	}
	x.Start()
	var last event.Time
	for _, e := range events {
		member, closed := mgr.Route(e)
		for _, mb := range member {
			mb.W.Add(e, mb.Pos)
		}
		for _, w := range closed {
			x.Submit(w, e.TS)
		}
		last = e.TS
	}
	for _, w := range mgr.Flush() {
		x.Submit(w, last)
	}
	x.Close()
	return out, nil
}
