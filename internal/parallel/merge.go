package parallel

import "sync"

// Ticket is a reserved slot in a Sequencer's output order. The producer
// that computed the slot's value calls Complete exactly once; the
// sequencer's emitter blocks on tickets in reservation order, so results
// are delivered in the order slots were opened no matter which producer
// finishes first.
type Ticket[T any] struct {
	done chan T
}

// Complete publishes the slot's value. It never blocks (the channel is
// buffered for exactly one value) and must be called exactly once.
func (t *Ticket[T]) Complete(v T) { t.done <- v }

// Sequencer re-serializes results produced out of order by concurrent
// workers: Open reserves the next output slot, workers Complete their
// tickets whenever they finish, and a single emitter goroutine hands each
// value to the emit callback in reservation order. This is the ordered
// output stage shared by the window-parallel Executor and the sharded
// live runtime — both need complex events merged back in window-close
// order after parallel matching.
type Sequencer[T any] struct {
	order chan *Ticket[T]
	emit  func(T)
	start sync.Once
	wg    sync.WaitGroup
}

// NewSequencer builds the sequencer. buf bounds how many slots may be
// open (reserved but not yet emitted) before Open blocks; emit is called
// from the emitter goroutine only, in slot order. The emitter goroutine
// starts lazily on the first Open, so a sequencer that is never used
// owns no goroutine and may be abandoned without Close.
func NewSequencer[T any](buf int, emit func(T)) *Sequencer[T] {
	if buf < 1 {
		buf = 1
	}
	return &Sequencer[T]{order: make(chan *Ticket[T], buf), emit: emit}
}

// run launches the emitter goroutine (once, from the first Open).
func (s *Sequencer[T]) run() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for t := range s.order {
			s.emit(<-t.done)
		}
	}()
}

// Open reserves the next output slot. Reservation order — not completion
// order — is emission order. Must not be called after Close.
func (s *Sequencer[T]) Open() *Ticket[T] {
	s.start.Do(s.run)
	t := &Ticket[T]{done: make(chan T, 1)}
	s.order <- t
	return t
}

// Close waits for every reserved slot to be completed and emitted, then
// stops the emitter. Every opened ticket must eventually be completed or
// Close deadlocks.
func (s *Sequencer[T]) Close() {
	close(s.order)
	s.wg.Wait()
}

// EpochResult is one unit of an epoch-merged stream: a value tagged with
// its dense, monotonically increasing emission slot. Epochs start at 0
// and every epoch must eventually be published exactly once (a producer
// with nothing to say for its slot publishes the zero value).
type EpochResult[T any] struct {
	Epoch uint64
	Val   T
}

// EpochMerger re-serializes results produced out of order by concurrent
// workers, like Sequencer, but without a per-slot reservation handshake:
// producers publish *batches* of epoch-tagged results whenever they
// finish them, and a single emitter goroutine buffers out-of-order
// epochs and hands values to the emit callback in epoch order. Where the
// Sequencer costs one channel allocation and two rendezvous per slot,
// the merger costs one rendezvous per published batch — the merge side
// of the sharded runtime's run-to-completion batches.
//
// The zero epoch is emitted first; the epoch counter is owned by
// whoever assigns epochs (the runtime's partitioner), not the merger.
type EpochMerger[T any] struct {
	in    chan []EpochResult[T]
	back  chan []EpochResult[T]
	emit  func(T)
	start sync.Once
	wg    sync.WaitGroup
}

// NewEpochMerger builds the merger. buf bounds how many published
// batches may be in flight before Publish blocks; emit is called from
// the emitter goroutine only, in epoch order. The emitter starts lazily
// on the first Publish, so an unused merger owns no goroutine.
func NewEpochMerger[T any](buf int, emit func(T)) *EpochMerger[T] {
	if buf < 1 {
		buf = 1
	}
	return &EpochMerger[T]{
		in:   make(chan []EpochResult[T], buf),
		back: make(chan []EpochResult[T], buf+1),
		emit: emit,
	}
}

// run launches the emitter goroutine (once, from the first Publish).
func (m *EpochMerger[T]) run() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		next := uint64(0)
		pending := make(map[uint64]T)
		for batch := range m.in {
			for _, r := range batch {
				if r.Epoch != next {
					pending[r.Epoch] = r.Val
					continue
				}
				m.emit(r.Val)
				next++
				for {
					v, ok := pending[next]
					if !ok {
						break
					}
					delete(pending, next)
					m.emit(v)
					next++
				}
			}
			// Hand the consumed batch back for reuse; drop it when the
			// recycle ring is momentarily full.
			select {
			case m.back <- batch[:0]:
			default:
			}
		}
	}()
}

// Batch returns an empty result batch, recycling the backing array of a
// previously consumed one when available.
func (m *EpochMerger[T]) Batch() []EpochResult[T] {
	select {
	case b := <-m.back:
		return b
	default:
		return nil
	}
}

// Publish hands a batch of results to the emitter; ownership of the
// slice transfers to the merger (obtain the next one from Batch). Safe
// for concurrent use by multiple producers. Must not be called after
// Close.
func (m *EpochMerger[T]) Publish(batch []EpochResult[T]) {
	if len(batch) == 0 {
		return
	}
	m.start.Do(m.run)
	m.in <- batch
}

// Close waits for every published batch to be emitted, then stops the
// emitter. Epochs never published (a canceled run) are simply dropped:
// the merger emits the longest contiguous prefix it received.
func (m *EpochMerger[T]) Close() {
	close(m.in)
	m.wg.Wait()
}
