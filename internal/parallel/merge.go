package parallel

import "sync"

// Ticket is a reserved slot in a Sequencer's output order. The producer
// that computed the slot's value calls Complete exactly once; the
// sequencer's emitter blocks on tickets in reservation order, so results
// are delivered in the order slots were opened no matter which producer
// finishes first.
type Ticket[T any] struct {
	done chan T
}

// Complete publishes the slot's value. It never blocks (the channel is
// buffered for exactly one value) and must be called exactly once.
func (t *Ticket[T]) Complete(v T) { t.done <- v }

// Sequencer re-serializes results produced out of order by concurrent
// workers: Open reserves the next output slot, workers Complete their
// tickets whenever they finish, and a single emitter goroutine hands each
// value to the emit callback in reservation order. This is the ordered
// output stage shared by the window-parallel Executor and the sharded
// live runtime — both need complex events merged back in window-close
// order after parallel matching.
type Sequencer[T any] struct {
	order chan *Ticket[T]
	emit  func(T)
	start sync.Once
	wg    sync.WaitGroup
}

// NewSequencer builds the sequencer. buf bounds how many slots may be
// open (reserved but not yet emitted) before Open blocks; emit is called
// from the emitter goroutine only, in slot order. The emitter goroutine
// starts lazily on the first Open, so a sequencer that is never used
// owns no goroutine and may be abandoned without Close.
func NewSequencer[T any](buf int, emit func(T)) *Sequencer[T] {
	if buf < 1 {
		buf = 1
	}
	return &Sequencer[T]{order: make(chan *Ticket[T], buf), emit: emit}
}

// run launches the emitter goroutine (once, from the first Open).
func (s *Sequencer[T]) run() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for t := range s.order {
			s.emit(<-t.done)
		}
	}()
}

// Open reserves the next output slot. Reservation order — not completion
// order — is emission order. Must not be called after Close.
func (s *Sequencer[T]) Open() *Ticket[T] {
	s.start.Do(s.run)
	t := &Ticket[T]{done: make(chan T, 1)}
	s.order <- t
	return t
}

// Close waits for every reserved slot to be completed and emitted, then
// stops the emitter. Every opened ticket must eventually be completed or
// Close deadlocks.
func (s *Sequencer[T]) Close() {
	close(s.order)
	s.wg.Wait()
}
