package operator

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/window"
)

// FeedbackTap is the sampled window-close observer of the online model
// lifecycle: it forwards every k-th closed window (kept entries plus the
// detected complex event's constituents) to an in-flight model builder
// and, once a reference model exists, to a drift detector.
//
// Cost model: the tap sits on the window-close path, so its steady-state
// cost is bounded by the sampling rate — non-sampled closes pay one
// counter increment and no allocation, sampled closes pay one short
// mutex section plus the builder/detector observation. The tap never
// retains the window or its entries past the call (the builder copies
// what it must buffer), honoring the window pooling contract: by the
// time entries would be poisoned by Manager.Release, the tap is done
// with them.
//
// A tap belongs to exactly one window-closing goroutine (the serial
// operator loop, or one shard); the builder behind it is additionally
// guarded by a mutex so a lifecycle supervisor can snapshot, merge and
// reset it from its own goroutine.
type FeedbackTap struct {
	every uint64 // sample every k-th closed window (>= 1)
	count uint64 // closes since the last sample; tap-goroutine only

	mu      sync.Mutex
	builder *core.ModelBuilder
	drift   *core.DriftDetector

	closed  atomic.Uint64 // windows seen
	sampled atomic.Uint64 // windows forwarded
}

// NewFeedbackTap builds a tap over the given model builder, observing
// every k-th closed window (every <= 1 observes all of them).
func NewFeedbackTap(builder *core.ModelBuilder, every int) (*FeedbackTap, error) {
	if builder == nil {
		return nil, fmt.Errorf("operator: feedback tap needs a model builder")
	}
	if every < 1 {
		every = 1
	}
	return &FeedbackTap{every: uint64(every), builder: builder}, nil
}

// SetDrift installs (or replaces) the drift detector fed by sampled
// windows. Safe to call while the tap observes traffic.
func (t *FeedbackTap) SetDrift(d *core.DriftDetector) {
	t.mu.Lock()
	t.drift = d
	t.mu.Unlock()
}

// OnWindowClose implements WindowCloseHook: install it as the operator's
// close hook (or call it from a shard's close path) to feed the tap.
func (t *FeedbackTap) OnWindowClose(w *window.Window, matched []window.Entry) {
	t.closed.Add(1)
	t.count++
	if t.count < t.every {
		return
	}
	t.count = 0
	t.mu.Lock()
	t.builder.ObserveWindow(w, matched)
	d := t.drift
	t.mu.Unlock()
	if d != nil {
		// The detector is internally synchronized and reads the entries
		// before returning; no retention.
		d.ObserveWindow(w, matched)
	}
	t.sampled.Add(1)
}

// WindowsClosed reports how many window closes the tap has seen.
func (t *FeedbackTap) WindowsClosed() uint64 { return t.closed.Load() }

// WindowsSampled reports how many closed windows were forwarded.
func (t *FeedbackTap) WindowsSampled() uint64 { return t.sampled.Load() }

// BuilderStats reads the tap builder's accumulation counters (windows
// observed, complex events observed) without disturbing it.
func (t *FeedbackTap) BuilderStats() (windows, matches int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.builder.WindowsSeen(), t.builder.MatchesSeen()
}

// DrainInto merges the tap's accumulated statistics into dst and resets
// the tap's builder, so the next accumulation round starts clean. The
// supervisor calls it on every tap at (re)training time.
func (t *FeedbackTap) DrainInto(dst *core.ModelBuilder) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := dst.Merge(t.builder); err != nil {
		return err
	}
	t.builder.Reset()
	return nil
}

// ResetBuilder discards the tap's accumulated statistics — the lifecycle
// uses it when a drift alarm invalidates everything gathered under the
// old distribution.
func (t *FeedbackTap) ResetBuilder() {
	t.mu.Lock()
	t.builder.Reset()
	t.mu.Unlock()
}
