// Package operator implements the CEP operator of Figure 1 in the eSPICE
// paper: it consumes primitive events in stream order, routes them into
// windows, applies the load shedder to every (event, window) membership,
// runs the pattern matcher when windows close, and emits complex events.
//
// The operator treats the matcher as a black box exactly as the paper
// assumes: the load shedder interacts with it only through the detected
// complex events (via the OnWindowClose hook used for model building) and
// the per-membership Drop decision.
package operator

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/window"
)

// Decider is the shedding decision interface: called once per
// (event, window) membership with the event type, the event's position in
// that window, and the window's (predicted) size. Implementations must be
// O(1); they sit on the hot path.
type Decider interface {
	Drop(t event.Type, pos, ws int) bool
}

// BatchingDecider is an optional Decider extension for deciders that
// keep observability counters behind atomics (core.Shedder): the caller
// makes raw decisions through DropCounted, tallies them locally, and
// flushes once per processing batch through TallyDecisions — two atomic
// adds per batch instead of two per membership. The operator and the
// sharded runtime detect this interface and prefer it automatically.
type BatchingDecider interface {
	Decider
	// DropCounted returns the drop decision and whether the call counts
	// as a decision (shedding active).
	DropCounted(t event.Type, pos, ws int) (drop, counted bool)
	// TallyDecisions folds locally accumulated decision/drop counts into
	// the decider's counters.
	TallyDecisions(decisions, drops uint64)
}

// ComplexEvent is the operator's output: a detected situation with the
// identity of its constituent primitive events.
type ComplexEvent struct {
	WindowID     window.ID
	WindowOpen   uint64   // sequence number of the window's opening event
	Pattern      string   // name of the matched pattern
	Constituents []uint64 // constituent event sequence numbers, in order
	DetectedAt   event.Time
}

// Key returns a canonical identity for quality comparison: two runs
// detect "the same" complex event iff window and constituents agree.
func (c ComplexEvent) Key() string {
	// Window IDs are deterministic per stream (windows are opened by the
	// pre-shedding stream), so WindowID plus constituents is stable.
	b := make([]byte, 0, 16+12*len(c.Constituents))
	b = appendUint(b, uint64(c.WindowID))
	for _, s := range c.Constituents {
		b = append(b, ':')
		b = appendUint(b, s)
	}
	return string(b)
}

func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// ShedDecision runs one membership shedding decision through the
// batching fast path when available (batched non-nil), accumulating the
// counter deltas into *decisions/*drops for a later TallyDecisions
// flush; otherwise it falls back to the plain Decider. Shared by the
// serial operator and the sharded runtime so the two deployments count
// identically.
func ShedDecision(plain Decider, batched BatchingDecider, t event.Type, pos, ws int,
	decisions, drops *uint64) bool {
	if batched != nil {
		dropped, counted := batched.DropCounted(t, pos, ws)
		if counted {
			*decisions++
			if dropped {
				*drops++
			}
		}
		return dropped
	}
	if plain != nil {
		return plain.Drop(t, pos, ws)
	}
	return false
}

// WindowCloseHook observes every closed window together with the
// constituents of the complex event detected in it (nil when none). The
// eSPICE model builder attaches here.
type WindowCloseHook func(w *window.Window, matched []window.Entry)

// Config assembles an operator.
type Config struct {
	// Window is the windowing policy (required).
	Window window.Spec
	// Patterns are tried in order per closed window; with
	// MaxMatchesPerWindow == 1 the first pattern that matches wins.
	// At least one pattern is required.
	Patterns []*pattern.Compiled
	// Shedder is consulted per membership; nil disables shedding.
	Shedder Decider
	// OnWindowClose is invoked for every closed window (optional).
	OnWindowClose WindowCloseHook
	// MaxMatchesPerWindow bounds matches per window; 0 defaults to 1,
	// the paper's evaluation setting ("the number of complex events per
	// window is one"). Values > 1 use the pattern's consumption policy.
	MaxMatchesPerWindow int
}

// Stats aggregates operator counters.
type Stats struct {
	EventsProcessed  uint64 // events routed (post-queue)
	Memberships      uint64 // (event, window) incidences seen
	MembershipsKept  uint64 // incidences surviving shedding
	MembershipsShed  uint64 // incidences dropped by the shedder
	WindowsClosed    uint64
	ComplexEvents    uint64
	WindowsWithMatch uint64
}

// Operator is a single CEP operator instance. It is a single-goroutine
// component: the owner (simulator or runtime pump) calls Process serially.
type Operator struct {
	mgr     *window.Manager
	matcher *Matcher
	shedder Decider
	batched BatchingDecider // non-nil when shedder supports batching
	onClose WindowCloseHook

	stats Stats
	out   []ComplexEvent // reused buffer returned by Process/Flush
}

// New builds an operator from the configuration.
func New(cfg Config) (*Operator, error) {
	if len(cfg.Patterns) == 0 {
		return nil, fmt.Errorf("operator: at least one pattern is required")
	}
	for i, p := range cfg.Patterns {
		if p == nil {
			return nil, fmt.Errorf("operator: pattern %d is nil", i)
		}
	}
	mgr, err := window.NewManager(cfg.Window)
	if err != nil {
		return nil, fmt.Errorf("operator: %w", err)
	}
	o := &Operator{
		mgr:     mgr,
		matcher: NewMatcher(cfg.Patterns, cfg.MaxMatchesPerWindow),
		onClose: cfg.OnWindowClose,
	}
	o.SetShedder(cfg.Shedder)
	return o, nil
}

// SetShedder installs or replaces the shedding decider (nil disables).
// Must be called from the processing goroutine.
func (o *Operator) SetShedder(d Decider) {
	o.shedder = d
	o.batched, _ = d.(BatchingDecider)
}

// Stats returns a snapshot of the operator counters.
func (o *Operator) Stats() Stats { return o.stats }

// WindowManager exposes the underlying manager (read-only use: expected
// size, averages).
func (o *Operator) WindowManager() *window.Manager { return o.mgr }

// Process consumes the next event in stream order and returns any complex
// events completed by it. The returned slice is reused across calls. In
// steady state (warm window pool, warm matcher scratch) processing an
// event allocates nothing; only complex-event emission allocates, since
// those escape to the caller.
func (o *Operator) Process(e event.Event) []ComplexEvent {
	o.out = o.out[:0]
	o.stats.EventsProcessed++
	member, closed := o.mgr.Route(e)
	var decisions, drops uint64
	for _, mb := range member {
		o.stats.Memberships++
		dropped := ShedDecision(o.shedder, o.batched, e.Type, mb.Pos, mb.W.ExpectedSize,
			&decisions, &drops)
		if dropped {
			mb.W.Dropped++
			o.stats.MembershipsShed++
			continue
		}
		mb.W.Add(e, mb.Pos)
		o.stats.MembershipsKept++
	}
	if decisions > 0 {
		o.batched.TallyDecisions(decisions, drops)
	}
	for _, w := range closed {
		o.closeWindow(w, e.TS)
	}
	return o.out
}

// Flush closes all remaining windows at end of stream and returns their
// complex events. The returned slice is reused.
func (o *Operator) Flush(now event.Time) []ComplexEvent {
	o.out = o.out[:0]
	for _, w := range o.mgr.Flush() {
		o.closeWindow(w, now)
	}
	return o.out
}

func (o *Operator) closeWindow(w *window.Window, now event.Time) {
	o.stats.WindowsClosed++
	before := len(o.out)
	var matchedEntries []window.Entry
	var found bool
	o.out, matchedEntries, found = o.matcher.MatchClosed(w, now, o.out)
	o.stats.ComplexEvents += uint64(len(o.out) - before)
	if found {
		o.stats.WindowsWithMatch++
	}
	if o.onClose != nil {
		o.onClose(w, matchedEntries)
	}
	// The matcher and the hook are done with the window: recycle it.
	o.mgr.Release(w)
}

// Matcher runs the per-closed-window matching policy shared by the
// serial operator, the window-parallel executor and the sharded runtime:
// patterns are tried in order, the first matching pattern wins, and with
// maxMatches == 1 only its first instance is taken. A Matcher owns the
// reusable match scratch, so it belongs to exactly one processing
// goroutine; the Compiled patterns behind it stay shared.
type Matcher struct {
	patterns   []*pattern.Compiled
	maxMatches int

	scratch pattern.MatchScratch
	matches []pattern.Match
	matched []window.Entry
}

// NewMatcher builds a matcher over the compiled patterns; maxMatches <= 0
// defaults to 1 (the paper's one-complex-event-per-window setting).
func NewMatcher(patterns []*pattern.Compiled, maxMatches int) *Matcher {
	if maxMatches <= 0 {
		maxMatches = 1
	}
	return &Matcher{patterns: patterns, maxMatches: maxMatches}
}

// MatchClosed matches one closed window: complex events are appended to
// ces and returned together with the matched constituent entries and
// whether any pattern matched. The matched entries alias the matcher's
// scratch — valid only until the next MatchClosed call; copy them to
// retain them (the serial operator hands them to the OnWindowClose hook
// under exactly that contract).
func (mt *Matcher) MatchClosed(w *window.Window, now event.Time, ces []ComplexEvent) ([]ComplexEvent, []window.Entry, bool) {
	for _, p := range mt.patterns {
		mt.matches = mt.matches[:0]
		if mt.maxMatches == 1 {
			if m, ok := p.MatchWith(&mt.scratch, w.Kept); ok {
				mt.matches = append(mt.matches, m)
			}
		} else {
			mt.matches = p.MatchAllWith(&mt.scratch, w.Kept, mt.maxMatches, mt.matches)
		}
		if len(mt.matches) == 0 {
			continue
		}
		mt.matched = mt.matched[:0]
		for _, m := range mt.matches {
			ces = append(ces, ComplexEvent{
				WindowID:     w.ID,
				WindowOpen:   w.OpenSeq,
				Pattern:      p.Pattern().Name,
				Constituents: m.Seqs(),
				DetectedAt:   now,
			})
			mt.matched = append(mt.matched, m.Constituents...)
		}
		return ces, mt.matched, true
	}
	return ces, nil, false
}
