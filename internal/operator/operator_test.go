package operator

import (
	"reflect"
	"testing"

	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/window"
)

const (
	typeA = event.Type(0)
	typeB = event.Type(1)
	typeX = event.Type(2)
)

func seqAB(t *testing.T) *pattern.Compiled {
	t.Helper()
	return pattern.MustCompile(pattern.Pattern{
		Name: "seq(A;B)",
		Steps: []pattern.Step{
			{Types: []event.Type{typeA}},
			{Types: []event.Type{typeB}},
		},
	})
}

func tumbling(count int) window.Spec {
	return window.Spec{Mode: window.ModeCount, Count: count, Slide: count}
}

func stream(types ...event.Type) []event.Event {
	out := make([]event.Event, len(types))
	for i, typ := range types {
		out[i] = event.Event{Seq: uint64(i), Type: typ, TS: event.Time(i) * event.Second}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Window: tumbling(4)}); err == nil {
		t.Error("missing patterns must fail")
	}
	if _, err := New(Config{Window: tumbling(4), Patterns: []*pattern.Compiled{nil}}); err == nil {
		t.Error("nil pattern must fail")
	}
	if _, err := New(Config{Window: window.Spec{}, Patterns: []*pattern.Compiled{seqAB(t)}}); err == nil {
		t.Error("invalid window spec must fail")
	}
}

func TestDetectsComplexEvents(t *testing.T) {
	op, err := New(Config{Window: tumbling(4), Patterns: []*pattern.Compiled{seqAB(t)}})
	if err != nil {
		t.Fatal(err)
	}
	var detected []ComplexEvent
	for _, e := range stream(typeA, typeX, typeB, typeX, typeX, typeA, typeB, typeX) {
		detected = append(detected, op.Process(e)...)
	}
	if len(detected) != 2 {
		t.Fatalf("detected %d complex events, want 2", len(detected))
	}
	if got, want := detected[0].Constituents, []uint64{0, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("first match constituents = %v, want %v", got, want)
	}
	if got, want := detected[1].Constituents, []uint64{5, 6}; !reflect.DeepEqual(got, want) {
		t.Errorf("second match constituents = %v, want %v", got, want)
	}
	st := op.Stats()
	if st.EventsProcessed != 8 || st.WindowsClosed != 2 || st.ComplexEvents != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Memberships != 8 || st.MembershipsKept != 8 || st.MembershipsShed != 0 {
		t.Errorf("membership stats = %+v", st)
	}
}

func TestOneMatchPerWindowDefault(t *testing.T) {
	op, err := New(Config{Window: tumbling(6), Patterns: []*pattern.Compiled{seqAB(t)}})
	if err != nil {
		t.Fatal(err)
	}
	var detected []ComplexEvent
	for _, e := range stream(typeA, typeB, typeA, typeB, typeA, typeB) {
		detected = append(detected, op.Process(e)...)
	}
	if len(detected) != 1 {
		t.Fatalf("detected %d, want 1 (one complex event per window)", len(detected))
	}
}

func TestMaxMatchesPerWindow(t *testing.T) {
	p := pattern.MustCompile(pattern.Pattern{
		Name: "seq(A;B) consumed",
		Steps: []pattern.Step{
			{Types: []event.Type{typeA}},
			{Types: []event.Type{typeB}},
		},
		Consumption: pattern.Consumed,
	})
	op, err := New(Config{
		Window:              tumbling(6),
		Patterns:            []*pattern.Compiled{p},
		MaxMatchesPerWindow: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var detected []ComplexEvent
	for _, e := range stream(typeA, typeB, typeA, typeB, typeA, typeB) {
		detected = append(detected, op.Process(e)...)
	}
	if len(detected) != 3 {
		t.Fatalf("detected %d, want 3 under consumed multi-match", len(detected))
	}
}

func TestMultiplePatternsFirstWins(t *testing.T) {
	pB := pattern.MustCompile(pattern.Pattern{
		Name:  "justB",
		Steps: []pattern.Step{{Types: []event.Type{typeB}}},
	})
	pA := pattern.MustCompile(pattern.Pattern{
		Name:  "justA",
		Steps: []pattern.Step{{Types: []event.Type{typeA}}},
	})
	op, err := New(Config{Window: tumbling(2), Patterns: []*pattern.Compiled{pB, pA}})
	if err != nil {
		t.Fatal(err)
	}
	var detected []ComplexEvent
	for _, e := range stream(typeA, typeA) {
		detected = append(detected, op.Process(e)...)
	}
	if len(detected) != 1 || detected[0].Pattern != "justA" {
		t.Fatalf("detected = %+v, want fallthrough to justA", detected)
	}
}

// dropAll sheds every membership whose position is even.
type dropEven struct{}

func (dropEven) Drop(_ event.Type, pos, _ int) bool { return pos%2 == 0 }

func TestSheddingChangesOutcome(t *testing.T) {
	op, err := New(Config{
		Window:   tumbling(4),
		Patterns: []*pattern.Compiled{seqAB(t)},
		Shedder:  dropEven{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Window A,B,A,B: positions 0,2 dropped -> kept B(1), B(3): no match.
	var detected []ComplexEvent
	for _, e := range stream(typeA, typeB, typeA, typeB) {
		detected = append(detected, op.Process(e)...)
	}
	if len(detected) != 0 {
		t.Fatalf("detected %d, want 0 after shedding As", len(detected))
	}
	st := op.Stats()
	if st.MembershipsShed != 2 || st.MembershipsKept != 2 {
		t.Errorf("shed/kept = %d/%d, want 2/2", st.MembershipsShed, st.MembershipsKept)
	}
}

func TestSetShedder(t *testing.T) {
	op, err := New(Config{Window: tumbling(2), Patterns: []*pattern.Compiled{seqAB(t)}})
	if err != nil {
		t.Fatal(err)
	}
	op.SetShedder(dropEven{})
	for _, e := range stream(typeA, typeB) {
		op.Process(e)
	}
	if op.Stats().MembershipsShed != 1 {
		t.Errorf("shed = %d, want 1", op.Stats().MembershipsShed)
	}
	op.SetShedder(nil)
	for _, e := range stream(typeA, typeB) {
		op.Process(e)
	}
	if op.Stats().MembershipsShed != 1 {
		t.Error("nil shedder must stop shedding")
	}
}

func TestOnWindowCloseHook(t *testing.T) {
	var hookWindows int
	var hookMatched [][]window.Entry
	op, err := New(Config{
		Window:   tumbling(2),
		Patterns: []*pattern.Compiled{seqAB(t)},
		OnWindowClose: func(w *window.Window, matched []window.Entry) {
			hookWindows++
			hookMatched = append(hookMatched, matched)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range stream(typeA, typeB, typeX, typeX) {
		op.Process(e)
	}
	if hookWindows != 2 {
		t.Fatalf("hook saw %d windows, want 2", hookWindows)
	}
	if len(hookMatched[0]) != 2 {
		t.Errorf("first window matched entries = %d, want 2", len(hookMatched[0]))
	}
	if hookMatched[1] != nil {
		t.Errorf("second window should have nil matched, got %v", hookMatched[1])
	}
}

func TestFlush(t *testing.T) {
	op, err := New(Config{Window: tumbling(10), Patterns: []*pattern.Compiled{seqAB(t)}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range stream(typeA, typeB) {
		if got := op.Process(e); len(got) != 0 {
			t.Fatalf("premature detection: %v", got)
		}
	}
	detected := op.Flush(5 * event.Second)
	if len(detected) != 1 {
		t.Fatalf("Flush detected %d, want 1", len(detected))
	}
	if detected[0].DetectedAt != 5*event.Second {
		t.Errorf("DetectedAt = %v", detected[0].DetectedAt)
	}
}

func TestComplexEventKey(t *testing.T) {
	a := ComplexEvent{WindowID: 3, Constituents: []uint64{1, 22, 333}}
	b := ComplexEvent{WindowID: 3, Constituents: []uint64{1, 22, 333}}
	c := ComplexEvent{WindowID: 4, Constituents: []uint64{1, 22, 333}}
	d := ComplexEvent{WindowID: 3, Constituents: []uint64{1, 22}}
	if a.Key() != b.Key() {
		t.Error("equal events must share keys")
	}
	if a.Key() == c.Key() {
		t.Error("different windows must differ")
	}
	if a.Key() == d.Key() {
		t.Error("different constituents must differ")
	}
	zero := ComplexEvent{}
	if zero.Key() != "0" {
		t.Errorf("zero key = %q", zero.Key())
	}
}

func TestOverlappingWindowsIndependentShedding(t *testing.T) {
	// Sliding windows (count 4, slide 2): the same event sits at different
	// positions in different windows, so a position-based shedder can drop
	// it from one window but keep it in the other — the core eSPICE
	// mechanism.
	op, err := New(Config{
		Window:   window.Spec{Mode: window.ModeCount, Count: 4, Slide: 2},
		Patterns: []*pattern.Compiled{seqAB(t)},
		Shedder:  dropEven{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range stream(typeX, typeX, typeA, typeB, typeX, typeX) {
		op.Process(e)
	}
	st := op.Stats()
	// Event seq2 (A) is at pos 2 of window0 (dropped) and pos 0 of
	// window1 (dropped); seq3 (B) at pos 3 (kept) and pos 1 (kept).
	if st.MembershipsShed == 0 || st.MembershipsKept == 0 {
		t.Fatalf("expected mixed shed/kept, got %+v", st)
	}
}

func BenchmarkOperatorProcess(b *testing.B) {
	p := pattern.MustCompile(pattern.Pattern{
		Name: "seq",
		Steps: []pattern.Step{
			{Types: []event.Type{typeA}},
			{Types: []event.Type{typeB}},
		},
	})
	op, err := New(Config{
		Window:   window.Spec{Mode: window.ModeCount, Count: 100, Slide: 50},
		Patterns: []*pattern.Compiled{p},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Process(event.Event{Seq: uint64(i), Type: event.Type(i % 3)})
	}
}

// --- Hot-path memory discipline and batched shedder counters ------------

// countingBatchedDecider is a BatchingDecider double: it drops every even
// position and records how its counters are reported.
type countingBatchedDecider struct {
	dropCalls  int // plain Drop invocations (must stay 0 on the hot path)
	rawCalls   int // DropCounted invocations
	tallyCalls int // TallyDecisions invocations
	decisions  uint64
	drops      uint64
}

func (d *countingBatchedDecider) Drop(t event.Type, pos, ws int) bool {
	d.dropCalls++
	return pos%2 == 0
}

func (d *countingBatchedDecider) DropCounted(t event.Type, pos, ws int) (bool, bool) {
	d.rawCalls++
	return pos%2 == 0, true
}

func (d *countingBatchedDecider) TallyDecisions(decisions, drops uint64) {
	d.tallyCalls++
	d.decisions += decisions
	d.drops += drops
}

func TestBatchedDeciderTallies(t *testing.T) {
	dec := &countingBatchedDecider{}
	op, err := New(Config{
		Window:   window.Spec{Mode: window.ModeCount, Count: 4, Slide: 2},
		Patterns: []*pattern.Compiled{seqAB(t)},
		Shedder:  dec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range stream(typeA, typeB, typeA, typeB, typeA, typeB, typeA, typeB) {
		op.Process(e)
	}
	st := op.Stats()
	if dec.dropCalls != 0 {
		t.Errorf("plain Drop called %d times; batching path must use DropCounted", dec.dropCalls)
	}
	if uint64(dec.rawCalls) != st.Memberships {
		t.Errorf("DropCounted calls = %d, memberships = %d", dec.rawCalls, st.Memberships)
	}
	if dec.decisions != st.Memberships {
		t.Errorf("tallied decisions = %d, want %d", dec.decisions, st.Memberships)
	}
	if dec.drops != st.MembershipsShed {
		t.Errorf("tallied drops = %d, shed = %d", dec.drops, st.MembershipsShed)
	}
	// Flushes happen per Process batch, not per membership: with 2
	// memberships per event, there must be at most one tally per event.
	if dec.tallyCalls > int(st.EventsProcessed) {
		t.Errorf("tally flushes = %d for %d events; want at most one per event",
			dec.tallyCalls, st.EventsProcessed)
	}
}

// TestProcessSteadyStateZeroAlloc is the hot-path gate: with a warm
// window pool and matcher scratch, processing an event — including the
// window open/close edges crossed on the way — allocates nothing as long
// as no complex event is emitted (emitted events escape to the caller
// and intrinsically cost their constituent slice).
func TestProcessSteadyStateZeroAlloc(t *testing.T) {
	noMatch := pattern.MustCompile(pattern.Pattern{
		Name:  "never",
		Steps: []pattern.Step{{Types: []event.Type{typeX}}, {Types: []event.Type{typeX}}},
	})
	op, err := New(Config{
		Window:   window.Spec{Mode: window.ModeCount, Count: 64, Slide: 8},
		Patterns: []*pattern.Compiled{noMatch},
	})
	if err != nil {
		t.Fatal(err)
	}
	events := stream(typeA, typeB, typeA, typeB)
	seq := uint64(0)
	step := func() {
		e := events[seq%uint64(len(events))]
		e.Seq = seq
		e.TS = event.Time(seq)
		seq++
		op.Process(e)
	}
	for i := 0; i < 2048; i++ { // warm pool, buffers and scratch
		step()
	}
	if allocs := testing.AllocsPerRun(2000, step); allocs != 0 {
		t.Errorf("steady-state Process allocates %.3f/event, want 0", allocs)
	}
	if st := op.Stats(); st.WindowsClosed == 0 {
		t.Fatalf("measurement crossed no window edges: %+v", st)
	}
}
