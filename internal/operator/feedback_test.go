package operator

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/window"
)

func tapBuilder(t *testing.T, cfg core.ModelBuilderConfig) *core.ModelBuilder {
	t.Helper()
	mb, err := core.NewModelBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mb
}

func TestFeedbackTapValidation(t *testing.T) {
	if _, err := NewFeedbackTap(nil, 1); err == nil {
		t.Error("nil builder must fail")
	}
}

// TestFeedbackTapSampling: every=k forwards exactly every k-th close.
func TestFeedbackTapSampling(t *testing.T) {
	mb := tapBuilder(t, core.ModelBuilderConfig{Types: 1, N: 4})
	tap, err := NewFeedbackTap(mb, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := &window.Window{ExpectedSize: 4}
	w.Add(event.Event{Type: 0}, 0)
	w.Arrivals = 4
	for i := 0; i < 10; i++ {
		tap.OnWindowClose(w, nil)
	}
	if tap.WindowsClosed() != 10 {
		t.Errorf("closed = %d, want 10", tap.WindowsClosed())
	}
	if tap.WindowsSampled() != 3 {
		t.Errorf("sampled = %d, want 3 (every 3rd of 10)", tap.WindowsSampled())
	}
	if win, _ := tap.BuilderStats(); win != 3 {
		t.Errorf("builder saw %d windows, want 3", win)
	}
}

// TestFeedbackTapPoolingContract: the tap (and the builder behind it,
// including its deferred buffering mode) must copy what it keeps — after
// the window is released and poisoned, the accumulated statistics still
// describe the original entries.
func TestFeedbackTapPoolingContract(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  core.ModelBuilderConfig
	}{
		{"fixedN", core.ModelBuilderConfig{Types: 2, N: 4}},
		{"deferred", core.ModelBuilderConfig{Types: 2}}, // buffers windows until Build
	} {
		t.Run(tc.name, func(t *testing.T) {
			mb := tapBuilder(t, tc.cfg)
			tap, err := NewFeedbackTap(mb, 1)
			if err != nil {
				t.Fatal(err)
			}
			mgr, err := window.NewManager(window.Spec{Mode: window.ModeCount, Count: 4, Slide: 4})
			if err != nil {
				t.Fatal(err)
			}
			// Windows of type-1 events; the "match" is first + last entry.
			for i := 0; i < 8; i++ {
				member, closed := mgr.Route(event.Event{Seq: uint64(i), Type: 1})
				for _, mbr := range member {
					mbr.W.Add(event.Event{Seq: uint64(i), Type: 1}, mbr.Pos)
				}
				for _, w := range closed {
					tap.OnWindowClose(w, []window.Entry{w.Kept[0], w.Kept[3]})
					mgr.Release(w) // poisons entries; the tap must not alias them
				}
			}
			model, err := mb.Build()
			if err != nil {
				t.Fatal(err)
			}
			if !model.Trained() {
				t.Fatal("model not trained")
			}
			// All mass belongs to type 1; a poisoned alias would have
			// zeroed the events (type 0) and clamped positions.
			if u := model.UT().Utility(1, 0, 4); u != core.MaxUtility {
				t.Errorf("type-1 utility at pos 0 = %d, want %d", u, core.MaxUtility)
			}
			for b := 0; b < model.UT().Bins(); b++ {
				if model.UT().At(0, b) != 0 {
					t.Errorf("type-0 bin %d has utility %d — poisoned aliasing?", b, model.UT().At(0, b))
				}
				if model.Share(0, b) != 0 {
					t.Errorf("type-0 bin %d has share %v — poisoned aliasing?", b, model.Share(0, b))
				}
			}
			if model.Share(1, 0) != 1 {
				t.Errorf("type-1 share at bin 0 = %v, want 1", model.Share(1, 0))
			}
		})
	}
}

// TestFeedbackTapOperatorSteadyStateAllocs: an operator whose close hook
// is a feedback tap over a fixed-N builder stays allocation-free once the
// window pool and scratch are warm — the tap itself allocates nothing on
// the close path.
func TestFeedbackTapOperatorSteadyStateAllocs(t *testing.T) {
	mb := tapBuilder(t, core.ModelBuilderConfig{Types: 2, N: 8})
	tap, err := NewFeedbackTap(mb, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pattern.Compile(pattern.Pattern{
		Name:  "seq(A;B)",
		Steps: []pattern.Step{{Types: []event.Type{0}}, {Types: []event.Type{1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	op, err := New(Config{
		Window:        window.Spec{Mode: window.ModeCount, Count: 8, Slide: 4},
		Patterns:      []*pattern.Compiled{p},
		OnWindowClose: tap.OnWindowClose,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := uint64(0)
	step := func() {
		op.Process(event.Event{Seq: seq, TS: event.Time(seq), Type: event.Type(seq % 2)})
		seq++
	}
	for i := 0; i < 64; i++ {
		step() // warm the pool and the matcher scratch
	}
	if allocs := testing.AllocsPerRun(2000, step); allocs != 0 {
		t.Errorf("tapped operator allocates %.3f/event in steady state, want 0", allocs)
	}
}
