package wal

import (
	"bytes"
	"testing"
)

// FuzzWALReplay throws torn, truncated and bit-flipped segment bodies
// at the record scanner. Two properties hold for every input:
//
//  1. Robustness on arbitrary bytes: the scanner never panics, never
//     reads past the buffer, and reports an offset inside it.
//  2. Clean-stop on corrupted valid logs: building a valid record run
//     from the input and then truncating it or flipping one bit
//     recovers exactly the longest intact prefix — nothing more
//     (no corrupt record leaks through CRC + continuity), nothing less
//     (records before the damage all survive).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{}, uint16(0), uint8(0))
	f.Add([]byte("not a segment at all, just prose"), uint16(7), uint8(1))
	f.Add(bytes.Repeat([]byte{0}, 200), uint16(64), uint8(0x80))
	seed := appendRecord(nil, 1, 9, 1, []byte("alpha"))
	seed = appendRecord(seed, 2, 9, 2, []byte("beta"))
	f.Add(seed, uint16(len(seed)-3), uint8(4))

	const maxPayload = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte, cut uint16, flip uint8) {
		// Property 1: arbitrary bytes.
		var emitted int
		n, off, err := scanRecords(data, 1, maxPayload, func(r Record) error {
			if r.Seq != uint64(emitted+1) {
				t.Fatalf("discontinuous seq %d at record %d", r.Seq, emitted)
			}
			if len(r.Payload) > maxPayload {
				t.Fatalf("oversized payload %d", len(r.Payload))
			}
			emitted++
			return nil
		})
		if err != nil {
			t.Fatalf("scan error on nil-error emit: %v", err)
		}
		if n != emitted || off < 0 || off > len(data) {
			t.Fatalf("scan bounds: n=%d emitted=%d off=%d len=%d", n, emitted, off, len(data))
		}

		// Property 2: corrupt a valid record run built from the input.
		var body []byte
		var ends []int // byte offset after each record
		var payloads [][]byte
		for i := 0; i < 4; i++ {
			lo := (i * len(data)) / 4
			hi := ((i + 1) * len(data)) / 4
			p := data[lo:hi]
			body = appendRecord(body, uint64(i+1), uint64(i%2), uint64(i+1), p)
			ends = append(ends, len(body))
			payloads = append(payloads, p)
		}

		check := func(corrupt []byte, want int, label string) {
			t.Helper()
			got := 0
			n, off, err := scanRecords(corrupt, 1, maxPayload, func(r Record) error {
				if !bytes.Equal(r.Payload, payloads[got]) {
					t.Fatalf("%s: payload %d mismatch", label, got)
				}
				got++
				return nil
			})
			if err != nil || n != got || off > len(corrupt) {
				t.Fatalf("%s: scan = (%d, %d, %v), emitted %d", label, n, off, err, got)
			}
			if got != want {
				t.Fatalf("%s: recovered %d records, want %d", label, got, want)
			}
		}

		check(body, 4, "intact")

		// Truncate at cut: exactly the records that end at or before the
		// cut survive.
		tr := int(cut) % (len(body) + 1)
		want := 0
		for _, end := range ends {
			if end <= tr {
				want++
			}
		}
		check(body[:tr], want, "truncated")

		// Flip one bit: CRC32C detects any single-bit error, so exactly
		// the records before the flipped byte survive.
		if flip != 0 && len(body) > 0 {
			pos := int(cut) % len(body)
			flipped := append([]byte(nil), body...)
			flipped[pos] ^= flip
			want = 0
			for _, end := range ends {
				if end <= pos {
					want++
				}
			}
			check(flipped, want, "bitflipped")
		}
	})
}
