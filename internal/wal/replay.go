package wal

import (
	"fmt"
)

// Recovery summarizes one Recover pass.
type Recovery struct {
	// Records and Bytes count the replayed records and their payload
	// bytes; Segments counts the segment files they came from.
	Records  int
	Bytes    int
	Segments int
	// Truncated reports that replay stopped before the end of some
	// segment body — a torn tail from a crash mid-write or the stale
	// remainder of a recycled file. Both are expected after a kill; the
	// dropped bytes were never acknowledged durable.
	Truncated bool
	// Sessions maps each producer session id seen in the replayed
	// records to its highest batch sequence, ready to seed the server's
	// dedup table so retransmitted batches are acknowledged, not
	// re-delivered.
	Sessions map[uint64]uint64
	// FirstSeq and LastSeq bound the replayed sequences (both zero when
	// the log was empty).
	FirstSeq uint64
	LastSeq  uint64
}

// Recover scans the log directory, replays every surviving record in
// sequence order through emit, and prepares the log for new appends.
// It must be called exactly once, before the first Append, even on a
// fresh directory. Record payloads alias a per-segment read buffer and
// are only valid inside the emit callback.
//
// Replay walks segments in base order and stops — cleanly, never with a
// partial record — at the first torn, corrupt, or discontinuous entry;
// segments past the break are parked in the free pool for reuse. The
// recovered segments stay sealed on disk (they are released only once
// the caller re-absorbs and Releases them), and new appends start in a
// fresh segment above the highest recovered sequence.
func (l *Log) Recover(emit func(Record) error) (Recovery, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var rec Recovery
	if l.recovered {
		return rec, fmt.Errorf("wal: Recover called twice")
	}
	if l.closed || l.err != nil {
		return rec, fmt.Errorf("wal: log closed")
	}

	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return rec, fmt.Errorf("wal: %w", err)
	}
	type segFile struct {
		name string
		base uint64
	}
	var segs []segFile
	for _, name := range names {
		if isFreeName(name) {
			l.free = append(l.free, name)
			continue
		}
		if isProbeName(name) {
			// A crash mid-probe (degrade.go) left its staging file; the
			// segment it was repairing is intact, so just drop it.
			if err := l.fs.Remove(l.path(name)); err != nil {
				l.logsf("wal: recover: remove stray %s: %v", name, err)
			}
			continue
		}
		if base, ok := parseSegName(name); ok {
			segs = append(segs, segFile{name: name, base: base})
		}
	}
	// ReadDir returns sorted names and segment names sort by base, so
	// segs is already in base order.

	rec.Sessions = make(map[uint64]uint64)
	expect := uint64(0) // next sequence the chain must continue with; 0 = any
	broken := false     // a continuity break happened; later segments are orphans
	for _, s := range segs {
		recycle := func(why string) {
			l.logsf("wal: recover: recycling segment %s (%s)", s.name, why)
			if err := l.fs.Rename(l.path(s.name), l.path(freeName(s.base))); err != nil {
				l.logsf("wal: recover: recycle %s: %v", s.name, err)
				return
			}
			l.free = append(l.free, freeName(s.base))
		}
		if broken {
			recycle("after replay break")
			continue
		}
		data, err := l.fs.ReadFile(l.path(s.name))
		if err != nil {
			return rec, fmt.Errorf("wal: recover %s: %w", s.name, err)
		}
		base, ok := parseSegHeader(data)
		if !ok || base != s.base {
			// Torn or stale header: the segment never received a synced
			// record, so nothing in it was ever acknowledged.
			rec.Truncated = true
			broken = true
			recycle("bad header")
			continue
		}
		if expect != 0 && base != expect {
			// A gap in the chain — this and everything after it is the
			// stale remainder of an older generation.
			broken = true
			recycle("sequence gap")
			continue
		}
		if expect == 0 {
			expect = base
			rec.FirstSeq = base
			l.released = base - 1
		}
		body := data[segHeaderSize:]
		var emitErr error
		n, off, err := scanRecords(body, expect, l.maxPayload(), func(r Record) error {
			rec.Bytes += len(r.Payload)
			if r.Session != 0 && r.BatchSeq > rec.Sessions[r.Session] {
				rec.Sessions[r.Session] = r.BatchSeq
			}
			if emit != nil {
				if err := emit(r); err != nil {
					emitErr = err
					return err
				}
			}
			return nil
		})
		if err != nil {
			// scanRecords only errors when emit errored; the log itself
			// is fine, so leave the directory untouched for a retry.
			return rec, fmt.Errorf("wal: recover %s: replay: %w", s.name, emitErr)
		}
		if off < len(body) {
			rec.Truncated = true
			broken = true
		}
		if n == 0 {
			// Header synced but no record survived: reuse the file.
			broken = true
			recycle("no records")
			continue
		}
		expect += uint64(n)
		rec.Records += n
		rec.Segments++
		l.sealed = append(l.sealed, segMeta{name: s.name, base: base, last: expect - 1})
		if broken {
			l.logsf("wal: recover: %s truncated after %d records", s.name, n)
		}
	}
	if expect != 0 {
		rec.LastSeq = expect - 1
		l.lastSeq = rec.LastSeq
		l.synced = rec.LastSeq
	}
	l.sortSealed()
	l.recovered = true
	if rec.Records > 0 || rec.Truncated {
		l.logsf("wal: recovered %d records (%d bytes) from %d segments, seqs [%d,%d], truncated=%v",
			rec.Records, rec.Bytes, rec.Segments, rec.FirstSeq, rec.LastSeq, rec.Truncated)
	}
	return rec, nil
}
