// Fault-injection tests for the DegradeLossy failure policy: a storage
// fault must flip the log into an observable degraded state instead of
// poisoning it, and the probe must repair the on-disk chain and restore
// durability without a restart. Like fault_test.go these live in the
// external test package because harness implements wal.FS.
package wal_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/wal"
)

// openLossy opens a DegradeLossy log with the background probe disabled
// so tests drive Probe deterministically.
func openLossy(t *testing.T, dir string) (*wal.Log, *harness.FaultFS) {
	t.Helper()
	fs := harness.NewFaultFS(wal.OSFS{})
	l, err := wal.Open(wal.Config{
		Dir:           dir,
		FS:            fs,
		FailurePolicy: wal.DegradeLossy,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	if _, err := l.Recover(nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return l, fs
}

// replayAll reopens dir and returns every surviving record payload in
// sequence order.
func replayAll(t *testing.T, dir string) (payloads [][]byte, rec wal.Recovery) {
	t.Helper()
	l, err := wal.Open(wal.Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	next := uint64(0)
	rec, err = l.Recover(func(r wal.Record) error {
		next++
		if r.Seq != next {
			t.Errorf("record %d has seq %d", next, r.Seq)
		}
		payloads = append(payloads, append([]byte(nil), r.Payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return payloads, rec
}

// TestWALDegradeLossyRoundTrip is the policy's core contract: a failed
// sync degrades the log instead of poisoning it (Append/Commit return
// ErrDegraded, stats say so), Probe repairs and restores it, and a
// restart afterwards replays exactly the durable records — the
// degraded-acked record is gone, the sequence chain is dense.
func TestWALDegradeLossyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, fs := openLossy(t, dir)

	if _, err := l.Append(1, 1, []byte("alpha")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(1); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	// The second group commit's fsync fails: its record was written to
	// the file but never synced, so the probe must truncate it away.
	fs.FailSyncAt(2)
	if _, err := l.Append(1, 2, []byte("beta")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(2); !errors.Is(err, wal.ErrDegraded) {
		t.Fatalf("Commit under fault = %v, want ErrDegraded", err)
	}
	if _, err := l.Append(1, 3, []byte("gamma")); !errors.Is(err, wal.ErrDegraded) {
		t.Fatalf("Append while degraded = %v, want ErrDegraded", err)
	}
	st := l.Stats()
	if !st.Degraded || st.Degradations != 1 || st.LostAppends != 1 || st.DegradedSince.IsZero() {
		t.Fatalf("degraded stats %+v", st)
	}
	if st.Err != "" {
		t.Fatalf("degraded log must not be poisoned, got Err=%q", st.Err)
	}

	if err := l.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	st = l.Stats()
	if st.Degraded || st.Restores != 1 || !st.DegradedSince.IsZero() || st.Fault != "" {
		t.Fatalf("restored stats %+v", st)
	}

	// Durability is back: the dropped sequence is reused by the next
	// append and committed records survive a restart.
	seq, err := l.Append(1, 2, []byte("beta-retry"))
	if err != nil {
		t.Fatalf("Append after restore: %v", err)
	}
	if seq != 2 {
		t.Fatalf("post-restore seq = %d, want 2 (chain stays dense)", seq)
	}
	if err := l.Commit(seq); err != nil {
		t.Fatalf("Commit after restore: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	payloads, rec := replayAll(t, dir)
	if rec.Records != 2 || rec.Truncated {
		t.Fatalf("recovered %+v, want 2 records untruncated", rec)
	}
	if !bytes.Equal(payloads[0], []byte("alpha")) || !bytes.Equal(payloads[1], []byte("beta-retry")) {
		t.Fatalf("replayed %q", payloads)
	}
}

// TestWALDegradeTornTailRepair cuts a record write short, leaving
// actual garbage bytes after the synced prefix. The probe must rewrite
// the valid prefix (probe-*.tmp + rename) so a later recovery does not
// treat the segment as broken and orphan everything after it.
func TestWALDegradeTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	l, fs := openLossy(t, dir)

	if _, err := l.Append(1, 1, []byte("alpha")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(1); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Write 1 was the segment header, write 2 the first body: cut the
	// third — the second record's body — after 10 garbage bytes.
	fs.ShortWriteAt(3, 10)
	if _, err := l.Append(1, 2, []byte("beta")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(2); !errors.Is(err, wal.ErrDegraded) {
		t.Fatalf("Commit under short write = %v, want ErrDegraded", err)
	}
	if err := l.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if _, err := l.Append(1, 2, []byte("beta-retry")); err != nil {
		t.Fatalf("Append after restore: %v", err)
	}
	if err := l.Commit(2); err != nil {
		t.Fatalf("Commit after restore: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	payloads, rec := replayAll(t, dir)
	if rec.Records != 2 || rec.Truncated {
		t.Fatalf("recovered %+v, want 2 records untruncated", rec)
	}
	if !bytes.Equal(payloads[0], []byte("alpha")) || !bytes.Equal(payloads[1], []byte("beta-retry")) {
		t.Fatalf("replayed %q", payloads)
	}
}

// TestWALDegradeBackgroundProbe lets the probe run on its own timer:
// after a transient fault the log must restore itself without any call
// from the application.
func TestWALDegradeBackgroundProbe(t *testing.T) {
	harness.VerifyNoLeaks(t)
	fs := harness.NewFaultFS(wal.OSFS{})
	l, err := wal.Open(wal.Config{
		Dir:           t.TempDir(),
		FS:            fs,
		FailurePolicy: wal.DegradeLossy,
		ProbeInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Recover(nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	fs.FailSyncAt(1)
	if _, err := l.Append(1, 1, []byte("alpha")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(1); !errors.Is(err, wal.ErrDegraded) {
		t.Fatalf("Commit = %v, want ErrDegraded", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Degraded {
		if time.Now().After(deadline) {
			t.Fatal("background probe never restored the log")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := l.Append(1, 1, []byte("alpha-retry")); err != nil {
		t.Fatalf("Append after auto-restore: %v", err)
	}
	if err := l.Commit(1); err != nil {
		t.Fatalf("Commit after auto-restore: %v", err)
	}
}

// TestWALDegradeFailsAllWaiters is the lossy twin of
// TestWALFailedSyncFailsAllWaiters: every Commit riding the failed
// group commit observes ErrDegraded — nobody hangs, nobody is falsely
// acked durable.
func TestWALDegradeFailsAllWaiters(t *testing.T) {
	harness.VerifyNoLeaks(t)
	l, fs := openLossy(t, t.TempDir())
	fs.StallSyncAt(1)
	fs.FailSyncAt(1)

	for i := 0; i < 5; i++ {
		if _, err := l.Append(1, uint64(i+1), make([]byte, 32)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); errs[i] = l.Commit(uint64(i + 1)) }(i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for fs.Syncs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached Sync")
		}
		time.Sleep(time.Millisecond)
	}
	fs.ReleaseStalls()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, wal.ErrDegraded) {
			t.Fatalf("Commit %d = %v, want ErrDegraded", i, err)
		}
	}
	if st := l.Stats(); !st.Degraded || st.LostAppends != 5 {
		t.Fatalf("stats %+v, want degraded with 5 lost appends", st)
	}
	if err := l.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if seq, err := l.Append(1, 1, make([]byte, 32)); err != nil || seq != 1 {
		t.Fatalf("Append after restore = %d, %v", seq, err)
	}
	if err := l.Commit(1); err != nil {
		t.Fatalf("Commit after restore: %v", err)
	}
}
