// Fault-injection tests for the group-commit error paths, driven
// through harness.FaultFS. They live in the external test package
// because harness imports wal (the shim implements wal.FS).
package wal_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/wal"
)

func openFault(t *testing.T) (*wal.Log, *harness.FaultFS) {
	t.Helper()
	fs := harness.NewFaultFS(wal.OSFS{})
	l, err := wal.Open(wal.Config{Dir: t.TempDir(), FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	if _, err := l.Recover(nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return l, fs
}

// TestWALFailedSyncPoisons is the core durability contract: when the
// fsync covering a record fails, Commit returns the error — so the
// transport never acks the frame — and the log fails stop.
func TestWALFailedSyncPoisons(t *testing.T) {
	l, fs := openFault(t)
	fs.FailSyncAt(1)
	if _, err := l.Append(1, 1, make([]byte, 32)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(1); !errors.Is(err, harness.ErrInjectedSync) {
		t.Fatalf("Commit after failed sync = %v, want ErrInjectedSync", err)
	}
	// Poisoned: no new appends, and re-committing cannot launder the
	// failure into a success.
	if _, err := l.Append(1, 2, make([]byte, 32)); !errors.Is(err, harness.ErrInjectedSync) {
		t.Fatalf("Append on poisoned log = %v", err)
	}
	if err := l.Commit(1); !errors.Is(err, harness.ErrInjectedSync) {
		t.Fatalf("second Commit = %v", err)
	}
	if st := l.Stats(); st.Err == "" || st.SyncedSeq != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestWALShortWritePoisons cuts the record write short: Commit must
// fail and the log must poison, exactly like a failed sync.
func TestWALShortWritePoisons(t *testing.T) {
	l, fs := openFault(t)
	// Write 1 is the segment header; write 2 is the first group-commit
	// body.
	fs.ShortWriteAt(2, 10)
	if _, err := l.Append(1, 1, make([]byte, 32)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(1); !errors.Is(err, harness.ErrInjectedWrite) {
		t.Fatalf("Commit after short write = %v, want ErrInjectedWrite", err)
	}
	if _, err := l.Append(1, 2, make([]byte, 32)); err == nil {
		t.Fatal("Append on poisoned log succeeded")
	}
}

// TestWALStalledSyncCoalesces holds the first group-commit leader
// inside fsync while more appends pile up, then releases it: the
// stragglers must ride a single follow-up sync (group commit), and
// every Commit must succeed.
func TestWALStalledSyncCoalesces(t *testing.T) {
	harness.VerifyNoLeaks(t)
	l, fs := openFault(t)
	fs.StallSyncAt(1)
	defer fs.ReleaseStalls()

	if _, err := l.Append(1, 1, make([]byte, 32)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 10)
	wg.Add(1)
	go func() { defer wg.Done(); errs[0] = l.Commit(1) }()

	// Wait for the leader to reach the stalled fsync.
	deadline := time.Now().Add(2 * time.Second)
	for fs.Syncs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached Sync")
		}
		time.Sleep(time.Millisecond)
	}

	// Stage nine more records behind the stalled leader; Append must
	// not block on the in-flight sync.
	for i := 1; i < 10; i++ {
		seq, err := l.Append(1, uint64(i+1), make([]byte, 32))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int, seq uint64) { defer wg.Done(); errs[i] = l.Commit(seq) }(i, seq)
	}

	fs.ReleaseStalls()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Appends != 10 || st.SyncedSeq != 10 {
		t.Fatalf("stats %+v", st)
	}
	if st.Syncs != 2 {
		t.Fatalf("syncs = %d, want 2 (stalled leader + one coalesced group)", st.Syncs)
	}
}

// TestWALFailedSyncFailsAllWaiters verifies that every Commit waiting
// on a failed sync observes the error — no waiter is left hanging or
// falsely acked.
func TestWALFailedSyncFailsAllWaiters(t *testing.T) {
	harness.VerifyNoLeaks(t)
	l, fs := openFault(t)
	fs.StallSyncAt(1)
	fs.FailSyncAt(1)

	for i := 0; i < 5; i++ {
		if _, err := l.Append(1, uint64(i+1), make([]byte, 32)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); errs[i] = l.Commit(uint64(i + 1)) }(i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for fs.Syncs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached Sync")
		}
		time.Sleep(time.Millisecond)
	}
	fs.ReleaseStalls()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, harness.ErrInjectedSync) {
			t.Fatalf("Commit %d = %v, want ErrInjectedSync", i, err)
		}
	}
}
