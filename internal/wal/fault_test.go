// Fault-injection tests for the group-commit error paths, driven
// through harness.FaultFS. They live in the external test package
// because harness imports wal (the shim implements wal.FS).
package wal_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/wal"
)

func openFault(t *testing.T) (*wal.Log, *harness.FaultFS) {
	t.Helper()
	fs := harness.NewFaultFS(wal.OSFS{})
	l, err := wal.Open(wal.Config{Dir: t.TempDir(), FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	if _, err := l.Recover(nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return l, fs
}

// TestWALFailedSyncPoisons is the core durability contract: when the
// fsync covering a record fails, Commit returns the error — so the
// transport never acks the frame — and the log fails stop.
func TestWALFailedSyncPoisons(t *testing.T) {
	l, fs := openFault(t)
	fs.FailSyncAt(1)
	if _, err := l.Append(1, 1, make([]byte, 32)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(1); !errors.Is(err, harness.ErrInjectedSync) {
		t.Fatalf("Commit after failed sync = %v, want ErrInjectedSync", err)
	}
	// Poisoned: no new appends, and re-committing cannot launder the
	// failure into a success.
	if _, err := l.Append(1, 2, make([]byte, 32)); !errors.Is(err, harness.ErrInjectedSync) {
		t.Fatalf("Append on poisoned log = %v", err)
	}
	if err := l.Commit(1); !errors.Is(err, harness.ErrInjectedSync) {
		t.Fatalf("second Commit = %v", err)
	}
	if st := l.Stats(); st.Err == "" || st.SyncedSeq != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestWALShortWritePoisons cuts the record write short: Commit must
// fail and the log must poison, exactly like a failed sync.
func TestWALShortWritePoisons(t *testing.T) {
	l, fs := openFault(t)
	// Write 1 is the segment header; write 2 is the first group-commit
	// body.
	fs.ShortWriteAt(2, 10)
	if _, err := l.Append(1, 1, make([]byte, 32)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(1); !errors.Is(err, harness.ErrInjectedWrite) {
		t.Fatalf("Commit after short write = %v, want ErrInjectedWrite", err)
	}
	if _, err := l.Append(1, 2, make([]byte, 32)); err == nil {
		t.Fatal("Append on poisoned log succeeded")
	}
}

// TestWALStalledSyncCoalesces holds the first group-commit leader
// inside fsync while more appends pile up, then releases it: the
// stragglers must ride a single follow-up sync (group commit), and
// every Commit must succeed.
func TestWALStalledSyncCoalesces(t *testing.T) {
	harness.VerifyNoLeaks(t)
	l, fs := openFault(t)
	fs.StallSyncAt(1)
	defer fs.ReleaseStalls()

	if _, err := l.Append(1, 1, make([]byte, 32)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 10)
	wg.Add(1)
	go func() { defer wg.Done(); errs[0] = l.Commit(1) }()

	// Wait for the leader to reach the stalled fsync.
	deadline := time.Now().Add(2 * time.Second)
	for fs.Syncs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached Sync")
		}
		time.Sleep(time.Millisecond)
	}

	// Stage nine more records behind the stalled leader; Append must
	// not block on the in-flight sync.
	for i := 1; i < 10; i++ {
		seq, err := l.Append(1, uint64(i+1), make([]byte, 32))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int, seq uint64) { defer wg.Done(); errs[i] = l.Commit(seq) }(i, seq)
	}

	fs.ReleaseStalls()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Appends != 10 || st.SyncedSeq != 10 {
		t.Fatalf("stats %+v", st)
	}
	if st.Syncs != 2 {
		t.Fatalf("syncs = %d, want 2 (stalled leader + one coalesced group)", st.Syncs)
	}
}

// TestWALFailedSyncFailsAllWaiters verifies that every Commit waiting
// on a failed sync observes the error — no waiter is left hanging or
// falsely acked.
func TestWALFailedSyncFailsAllWaiters(t *testing.T) {
	harness.VerifyNoLeaks(t)
	l, fs := openFault(t)
	fs.StallSyncAt(1)
	fs.FailSyncAt(1)

	for i := 0; i < 5; i++ {
		if _, err := l.Append(1, uint64(i+1), make([]byte, 32)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); errs[i] = l.Commit(uint64(i + 1)) }(i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for fs.Syncs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached Sync")
		}
		time.Sleep(time.Millisecond)
	}
	fs.ReleaseStalls()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, harness.ErrInjectedSync) {
			t.Fatalf("Commit %d = %v, want ErrInjectedSync", i, err)
		}
	}
}

// TestWALRotateOncePerFullSegment regresses back-to-back rotation
// churn: two appenders that both saw the segment full while a
// group-commit leader held the writing flag must share ONE rotation.
// After waiting out the leader, the second appender re-checks the
// segment it now sees — freshly opened by the first — and stages into
// it, instead of pushing a near-empty file through seal/fsync/recycle
// for nothing.
func TestWALRotateOncePerFullSegment(t *testing.T) {
	fs := harness.NewFaultFS(wal.OSFS{})
	dir := t.TempDir()
	// A 32-byte segment header plus exactly two records of 32-byte
	// header + 32-byte payload (sizes fixed by the on-disk format).
	l, err := wal.Open(wal.Config{Dir: dir, FS: fs, SegmentSize: 32 + 2*(32+32)})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	if _, err := l.Recover(nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for seq := uint64(1); seq <= 2; seq++ { // fill segment 1 exactly
		if _, err := l.Append(7, seq, make([]byte, 32)); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	fs.StallSyncAt(1) // hold the group-commit leader in its fsync
	defer fs.ReleaseStalls()
	commitErr := make(chan error, 1)
	go func() { commitErr <- l.Commit(2) }()
	for fs.Syncs() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Two appenders pile up behind the leader, both needing a rotation.
	var wg sync.WaitGroup
	appendErrs := make([]error, 2)
	for i := range appendErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, appendErrs[i] = l.Append(7, 3, make([]byte, 32))
		}(i)
	}
	// Give both a chance to reach the rotate wait; if one arrives after
	// the rotation instead, it lands in the fresh segment directly and
	// the assertion below still holds.
	time.Sleep(50 * time.Millisecond)
	fs.ReleaseStalls()
	if err := <-commitErr; err != nil {
		t.Fatalf("Commit: %v", err)
	}
	wg.Wait()
	for i, err := range appendErrs {
		if err != nil {
			t.Fatalf("racing append %d: %v", i, err)
		}
	}
	if err := l.Commit(4); err != nil {
		t.Fatalf("Commit 4: %v", err)
	}
	if st := l.Stats(); st.Segments != 2 {
		t.Fatalf("segments = %d after one full segment, want 2 (back-to-back rotation)", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// All four records survive, sequenced in arrival order.
	l2, err := wal.Open(wal.Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	var next uint64
	rec, err := l2.Recover(func(r wal.Record) error {
		next++
		if r.Seq != next {
			t.Errorf("record %d has seq %d", next, r.Seq)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.Records != 4 || rec.LastSeq != 4 {
		t.Fatalf("recovered %+v, want 4 records through seq 4", rec)
	}
}
