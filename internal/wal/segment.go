// Segment and record layout. A segment file is
//
//	header (32 bytes)
//	record*
//
// with the header
//
//	[0:8)   magic "ESPWAL01"
//	[8:16)  base record sequence (uint64 LE) — the seq of the first record
//	[16:20) CRC32C over bytes [0:16)
//	[20:32) zero padding
//
// and each record
//
//	[0:4)   CRC32C over bytes [4 : 32+length)
//	[4:8)   payload length (uint32 LE)
//	[8:16)  record sequence (uint64 LE)
//	[16:24) session id (uint64 LE, 0 = none)
//	[24:32) batch sequence (uint64 LE, 0 = none)
//	[32:)   payload — the already-encoded wire bytes of one event frame
//
// Record sequences are strictly monotonic across the whole log, so a
// recycled segment's stale tail (left over from a previous life of the
// file) can never be mistaken for live data: the stale records carry
// sequences below the segment's base and fail the continuity check even
// when their CRCs are self-consistent. Replay therefore stops cleanly
// at the first record whose CRC or sequence does not match, which also
// covers torn tails from a crash mid-write.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// Layout constants.
const (
	segMagic      = "ESPWAL01"
	segHeaderSize = 32
	recHeaderSize = 32
)

// castagnoli is the CRC32C polynomial table (the same polynomial
// hardware CRC instructions implement).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segName renders the file name of the segment whose first record is
// base; names sort lexicographically in base order.
func segName(base uint64) string { return fmt.Sprintf("wal-%016x.seg", base) }

// parseSegName extracts the base sequence from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	base, err := strconv.ParseUint(name[4:len(name)-4], 16, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// freeName renders the name a retired segment is parked under until it
// is reused; recovery ignores the free pool.
func freeName(base uint64) string { return fmt.Sprintf("free-%016x.tmp", base) }

// isFreeName reports whether name belongs to the free pool.
func isFreeName(name string) bool {
	return strings.HasPrefix(name, "free-") && strings.HasSuffix(name, ".tmp")
}

// appendSegHeader appends a segment header for the given base sequence.
func appendSegHeader(dst []byte, base uint64) []byte {
	off := len(dst)
	var hdr [segHeaderSize]byte
	copy(hdr[0:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], base)
	dst = append(dst, hdr[:]...)
	crc := crc32.Checksum(dst[off:off+16], castagnoli)
	binary.LittleEndian.PutUint32(dst[off+16:off+20], crc)
	return dst
}

// parseSegHeader validates a segment header and returns its base
// sequence.
func parseSegHeader(data []byte) (base uint64, ok bool) {
	if len(data) < segHeaderSize || string(data[0:8]) != segMagic {
		return 0, false
	}
	if crc32.Checksum(data[0:16], castagnoli) != binary.LittleEndian.Uint32(data[16:20]) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(data[8:16]), true
}

// appendRecord appends one framed record to dst and returns the
// extended slice. It allocates only when dst must grow, so a recycled
// staging buffer makes the append path allocation-free in steady state.
func appendRecord(dst []byte, seq, session, batchSeq uint64, payload []byte) []byte {
	off := len(dst)
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint64(hdr[16:24], session)
	binary.LittleEndian.PutUint64(hdr[24:32], batchSeq)
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[off+4:], castagnoli)
	binary.LittleEndian.PutUint32(dst[off:off+4], crc)
	return dst
}

// Record is one replayed log entry. Payload aliases the recovery
// buffer and is valid only for the duration of the replay callback —
// decode or copy it before returning, exactly like the transport
// decoder's scratch contract.
type Record struct {
	// Seq is the record's log-wide sequence number.
	Seq uint64
	// Session and BatchSeq identify the producer batch for server-side
	// dedup (both zero for frames from non-durable connections).
	Session  uint64
	BatchSeq uint64
	// Payload holds the record's wire bytes (a FrameEvents payload).
	Payload []byte
}

// scanRecords walks the records of one segment body (the bytes after
// the header), starting at sequence expect, calling emit for each valid
// record. It stops cleanly — no error, no panic, no over-read — at the
// first record whose header is truncated, whose CRC mismatches, or
// whose sequence breaks continuity (a recycled segment's stale tail or
// a torn write). It returns the number of valid records, the byte
// offset scanned up to, and the first emit error, if any.
func scanRecords(body []byte, expect uint64, maxPayload int, emit func(Record) error) (n int, off int, err error) {
	for {
		rest := body[off:]
		if len(rest) < recHeaderSize {
			return n, off, nil
		}
		length := int(binary.LittleEndian.Uint32(rest[4:8]))
		if length < 0 || length > maxPayload || len(rest) < recHeaderSize+length {
			return n, off, nil
		}
		if crc32.Checksum(rest[4:recHeaderSize+length], castagnoli) != binary.LittleEndian.Uint32(rest[0:4]) {
			return n, off, nil
		}
		seq := binary.LittleEndian.Uint64(rest[8:16])
		if seq != expect {
			return n, off, nil
		}
		if emit != nil {
			rec := Record{
				Seq:      seq,
				Session:  binary.LittleEndian.Uint64(rest[16:24]),
				BatchSeq: binary.LittleEndian.Uint64(rest[24:32]),
				Payload:  rest[recHeaderSize : recHeaderSize+length],
			}
			if err := emit(rec); err != nil {
				return n, off, err
			}
		}
		n++
		expect++
		off += recHeaderSize + length
	}
}
