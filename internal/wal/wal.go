// Package wal is the durable ingress layer of the networked eSPICE
// deployments: a write-ahead segment log that persists accepted event
// frames before they are acknowledged to producers, so a server killed
// mid-stream can replay every un-absorbed frame through the normal sink
// path on restart and upgrade the wire contract from at-most-once to
// effectively-once (docs/wal.md).
//
// The log appends fixed-capacity segments of CRC32C-framed records.
// Writes are batched and fsync-coalesced: Append stages a record in
// memory and Commit group-commits — the first committer becomes the
// leader, writes and syncs everything staged since the last sync, and
// every waiter whose record that sync covers returns together. One
// fsync therefore covers all frames staged by all connections since the
// last sync, and the append hot path performs zero allocations in
// steady state (the staging buffers are recycled, like every other hot
// path in this repository).
//
// Retired segments are not deleted: Release marks a prefix of the log
// absorbed (every event submitted to the sink and its window closed),
// and fully-released segments are recycled — parked in a free pool and
// reused by the next rotation. Stale bytes in a reused file are inert
// because record sequences are log-wide monotonic (see segment.go).
//
// The log is fail-stop by default: the first write or sync error
// poisons it, every pending and future Append/Commit returns the
// error, and no caller can acknowledge a frame whose sync failed. The
// DegradeLossy failure policy (degrade.go) trades that guarantee for
// availability: a fault flips the log into an explicit degraded state
// that callers can observe per call (ErrDegraded), and a background
// probe repairs the log and restores durability without a restart.
package wal

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// DefaultSegmentSize is the capacity of one segment file.
const DefaultSegmentSize = 4 << 20

// Config assembles a log.
type Config struct {
	// Dir is the log directory (required); it is created if missing.
	Dir string
	// FS injects the filesystem (OSFS when nil); tests use
	// harness.FaultFS to exercise the group-commit error paths.
	FS FS
	// SegmentSize bounds one segment file (DefaultSegmentSize when 0).
	// A single record (header + payload) must fit a segment.
	SegmentSize int
	// Logf logs recovery and recycling events (nil silences them).
	Logf func(format string, args ...any)
	// FailurePolicy selects the response to a write or sync fault:
	// FailStop (default) poisons the log, DegradeLossy degrades it and
	// probes for recovery (degrade.go).
	FailurePolicy FailurePolicy
	// ProbeInterval is the restore-probe cadence of a DegradeLossy log
	// (DefaultProbeInterval when 0; negative disables the background
	// probe — callers drive Probe themselves).
	ProbeInterval time.Duration
}

// Stats is a snapshot of the log counters.
type Stats struct {
	// Appends counts staged records; Syncs counts completed fsyncs —
	// their ratio is the group-commit coalescing factor.
	Appends uint64
	Syncs   uint64
	// AppendedBytes counts staged record bytes, headers included.
	AppendedBytes uint64
	// LastSeq is the highest staged record sequence; SyncedSeq the
	// highest sequence covered by a completed fsync.
	LastSeq   uint64
	SyncedSeq uint64
	// ReleasedSeq is the Release watermark: every record at or below it
	// has been absorbed downstream.
	ReleasedSeq uint64
	// Segments counts live segment files (sealed + current); Recycled
	// counts segments retired into the free pool over the log lifetime.
	Segments int
	Recycled uint64
	// Err is the sticky failure, if the log is poisoned.
	Err string
	// Degraded reports a DegradeLossy log currently running lossy;
	// DegradedSince is when the fault hit (zero when healthy) and Fault
	// the fault message. Degradations and Restores count the
	// transitions over the log lifetime, and LostAppends the staged
	// records discarded at degrade time (never durable, never acked).
	Degraded      bool
	DegradedSince time.Time
	Fault         string
	Degradations  uint64
	Restores      uint64
	LostAppends   uint64
}

// segMeta describes one sealed (no longer written) segment.
type segMeta struct {
	name string
	base uint64 // first record seq
	last uint64 // last record seq
}

// Log is a write-ahead segment log. Open it with Open, replay it with
// Recover, then Append/Commit from any number of goroutines.
type Log struct {
	dir           string
	fs            FS
	segSize       int
	logf          func(string, ...any)
	policy        FailurePolicy
	probeInterval time.Duration

	mu        sync.Mutex
	cond      *sync.Cond
	recovered bool
	closed    bool
	err       error

	degraded      bool
	degradedSince time.Time
	faultErr      error
	degradations  uint64
	restores      uint64
	lostAppends   uint64
	probeTimer    *time.Timer

	buf     []byte // staged records of the current segment, not yet written
	spare   []byte // recycled leader write buffer
	lastSeq uint64 // last staged record seq
	synced  uint64 // highest seq covered by a completed sync
	writing bool   // a group-commit leader is writing outside the lock

	cur     File // current segment (nil until the first append)
	curName string
	curBase uint64
	curEnd  int // segment offset after everything staged

	sealed   []segMeta
	free     []string // recycled file names available for reuse
	released uint64

	appends  uint64
	syncs    uint64
	appBytes uint64
	recycled uint64
}

// Open validates the configuration, creates the directory if needed and
// scans it for existing segments. Recover must be called (exactly once,
// even on a fresh directory) before the first Append.
func Open(cfg Config) (*Log, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("wal: Config.Dir is required")
	}
	if cfg.FS == nil {
		cfg.FS = OSFS{}
	}
	if cfg.SegmentSize == 0 {
		cfg.SegmentSize = DefaultSegmentSize
	}
	if cfg.SegmentSize < segHeaderSize+recHeaderSize+1 {
		return nil, fmt.Errorf("wal: SegmentSize %d cannot hold a record", cfg.SegmentSize)
	}
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	l := &Log{
		dir:           cfg.Dir,
		fs:            cfg.FS,
		segSize:       cfg.SegmentSize,
		logf:          cfg.Logf,
		policy:        cfg.FailurePolicy,
		probeInterval: cfg.ProbeInterval,
	}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// logsf forwards to the configured logger, if any.
func (l *Log) logsf(format string, args ...any) {
	if l.logf != nil {
		l.logf(format, args...)
	}
}

// path joins a file name onto the log directory.
func (l *Log) path(name string) string { return filepath.Join(l.dir, name) }

// maxPayload returns the largest payload one record can carry in a
// segment of the configured size.
func (l *Log) maxPayload() int { return l.segSize - segHeaderSize - recHeaderSize }

// Append stages one record — the already-encoded wire bytes of an
// accepted event frame — and returns its log sequence. The record is
// NOT durable until a Commit call covering the sequence returns nil;
// acknowledge the frame only after that. Safe for concurrent use.
func (l *Log) Append(session, batchSeq uint64, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return 0, err
	}
	if l.degraded {
		return 0, ErrDegraded
	}
	need := recHeaderSize + len(payload)
	if len(payload) > l.maxPayload() {
		return 0, fmt.Errorf("wal: %d-byte payload exceeds the %d-byte segment record bound",
			len(payload), l.maxPayload())
	}
	if l.cur == nil || l.curEnd+need > l.segSize {
		if err := l.rotateLocked(need); err != nil {
			l.failLocked(err)
			if l.degraded {
				return 0, ErrDegraded
			}
			return 0, err
		}
	}
	l.lastSeq++
	l.buf = appendRecord(l.buf, l.lastSeq, session, batchSeq, payload)
	l.curEnd += need
	l.appends++
	l.appBytes += uint64(need)
	return l.lastSeq, nil
}

// Commit blocks until an fsync covering seq has completed, group-
// committing on the caller's goroutine when no other committer is
// already writing: the leader takes everything staged since the last
// sync, writes and syncs it, and wakes every waiter it covered. A nil
// return means the record (and every record staged before it) is on
// stable storage; a non-nil return means it is NOT durable and must not
// be acknowledged — the log is then poisoned (fail-stop).
func (l *Log) Commit(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.synced {
		return nil
	}
	if l.degraded {
		// The degrade rolled lastSeq back, so the staged record this
		// caller is waiting on was discarded: it is not durable.
		return ErrDegraded
	}
	if seq > l.lastSeq {
		return fmt.Errorf("wal: Commit(%d) beyond last appended seq %d", seq, l.lastSeq)
	}
	for {
		if seq <= l.synced {
			return nil
		}
		if l.degraded {
			return ErrDegraded
		}
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return fmt.Errorf("wal: log closed")
		}
		if l.writing {
			l.cond.Wait()
			continue
		}
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
}

// syncLocked runs one leader round: write the staged buffer, sync the
// segment, advance the watermark. Called with the lock held and
// l.writing false; the write and sync happen outside the lock.
func (l *Log) syncLocked() error {
	l.writing = true
	buf := l.buf
	l.buf = l.spare[:0]
	upTo := l.lastSeq
	f := l.cur
	l.mu.Unlock()

	var werr error
	if len(buf) > 0 {
		_, werr = f.Write(buf)
	}
	if werr == nil {
		werr = f.Sync()
	}

	l.mu.Lock()
	l.writing = false
	l.spare = buf[:0]
	if werr != nil {
		l.failLocked(werr)
		if l.degraded {
			return ErrDegraded
		}
		return werr
	}
	l.synced = upTo
	l.syncs++
	l.cond.Broadcast()
	return nil
}

// rotateLocked seals the current segment (flushing and syncing its
// staged tail first) and opens the next one, reusing a recycled file
// when available. need is the record size the caller wants to stage;
// the rotate decision is re-checked against it after waiting out a
// group-commit leader, because another appender blocked on the same
// full segment may have rotated first — sealing the segment it just
// opened would churn a near-empty file through seal/fsync/recycle for
// nothing. Called with the lock held.
func (l *Log) rotateLocked(need int) error {
	for l.writing {
		l.cond.Wait()
		if l.err != nil {
			return l.err
		}
	}
	if l.cur != nil && l.curEnd+need <= l.segSize {
		return nil
	}
	if l.cur != nil {
		// Flush and sync the sealed segment so its records are durable
		// before anything lands in the next file; the one slow append
		// per segment is amortized over the whole segment.
		if len(l.buf) > 0 {
			if _, err := l.cur.Write(l.buf); err != nil {
				return err
			}
			l.buf = l.buf[:0]
		}
		if err := l.cur.Sync(); err != nil {
			return err
		}
		l.synced = l.lastSeq
		l.syncs++
		l.cond.Broadcast()
		if err := l.cur.Close(); err != nil {
			return err
		}
		l.sealed = append(l.sealed, segMeta{name: l.curName, base: l.curBase, last: l.lastSeq})
		l.cur, l.curName = nil, ""
	}
	base := l.lastSeq + 1
	name := segName(base)
	if n := len(l.free); n > 0 {
		// Reuse a retired file in place: rename, then truncate through
		// Create — same inode, no unlink/create churn per rotation.
		reuse := l.free[n-1]
		l.free = l.free[:n-1]
		if err := l.fs.Rename(l.path(reuse), l.path(name)); err != nil {
			return err
		}
	}
	f, err := l.fs.Create(l.path(name))
	if err != nil {
		return err
	}
	hdr := appendSegHeader(l.spare[:0], base)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	l.cur, l.curName, l.curBase, l.curEnd = f, name, base, segHeaderSize
	return nil
}

// Release marks every record with sequence <= through as absorbed
// downstream (submitted to the sink, window closed) and recycles the
// sealed segments that fall entirely below the watermark into the free
// pool. Replay after a crash starts above the last fully-recycled
// segment, so released records are never re-delivered.
func (l *Log) Release(through uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if through > l.released {
		l.released = through
	}
	l.recycleReleasedLocked()
}

// recycleReleasedLocked renames every sealed segment that falls
// entirely at or below the release watermark into the free pool.
func (l *Log) recycleReleasedLocked() {
	kept := l.sealed[:0]
	for _, s := range l.sealed {
		if s.last <= l.released {
			if err := l.fs.Rename(l.path(s.name), l.path(freeName(s.base))); err != nil {
				l.logsf("wal: recycle %s: %v", s.name, err)
				kept = append(kept, s)
				continue
			}
			l.free = append(l.free, freeName(s.base))
			l.recycled++
			continue
		}
		kept = append(kept, s)
	}
	l.sealed = kept
}

// Close flushes and syncs any staged records and closes the current
// segment. Pending Commit calls are woken; the log cannot be reopened.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.writing {
		l.cond.Wait()
	}
	if l.closed {
		return l.err
	}
	if l.probeTimer != nil {
		l.probeTimer.Stop()
		l.probeTimer = nil
	}
	var err error
	if l.err == nil && l.cur != nil {
		if len(l.buf) > 0 {
			if _, werr := l.cur.Write(l.buf); werr != nil {
				err = werr
			}
			l.buf = l.buf[:0]
		}
		if serr := l.cur.Sync(); err == nil && serr != nil {
			err = serr
		}
		if err == nil {
			l.synced = l.lastSeq
			l.syncs++
		}
	}
	if l.cur != nil {
		if cerr := l.cur.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err == nil && l.err == nil {
			// Seal the final segment so the release sweep below can
			// reclaim it too: after a clean drain that released
			// everything, the directory holds only free files and the
			// next Open replays nothing.
			l.sealed = append(l.sealed, segMeta{name: l.curName, base: l.curBase, last: l.lastSeq})
			l.sortSealed()
		}
		l.cur = nil
	}
	l.closed = true
	if err != nil {
		l.failLocked(err)
	} else if l.err == nil {
		l.recycleReleasedLocked()
	}
	l.cond.Broadcast()
	return err
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Appends:       l.appends,
		Syncs:         l.syncs,
		AppendedBytes: l.appBytes,
		LastSeq:       l.lastSeq,
		SyncedSeq:     l.synced,
		ReleasedSeq:   l.released,
		Segments:      len(l.sealed),
		Recycled:      l.recycled,
	}
	if l.cur != nil {
		st.Segments++
	}
	if l.err != nil {
		st.Err = l.err.Error()
	}
	st.Degraded = l.degraded
	st.DegradedSince = l.degradedSince
	st.Degradations = l.degradations
	st.Restores = l.restores
	st.LostAppends = l.lostAppends
	if l.faultErr != nil {
		st.Fault = l.faultErr.Error()
	}
	return st
}

// LastSeq returns the highest staged record sequence.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// usableLocked guards the append path.
func (l *Log) usableLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if !l.recovered {
		return fmt.Errorf("wal: Recover must run before Append")
	}
	return nil
}

// failLocked responds to a write or sync fault per the failure policy:
// poison (fail-stop, the default) or degrade to lossy.
func (l *Log) failLocked(err error) {
	if l.policy == DegradeLossy && !l.closed && l.err == nil {
		l.degradeLocked(err)
		return
	}
	if l.err == nil {
		l.err = fmt.Errorf("wal: %w", err)
		l.logsf("wal: poisoned: %v", err)
	}
	l.cond.Broadcast()
}

// sortSealed keeps the sealed list in base order (recovery appends in
// order already; this is belt and braces for future callers).
func (l *Log) sortSealed() {
	sort.Slice(l.sealed, func(i, j int) bool { return l.sealed[i].base < l.sealed[j].base })
}
