package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// collect replays a log directory and returns deep copies of the
// records (payloads in Recover alias the read buffer).
func collect(t *testing.T, dir string) ([]Record, Recovery) {
	t.Helper()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	var got []Record
	rec, err := l.Recover(func(r Record) error {
		r.Payload = append([]byte(nil), r.Payload...)
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return got, rec
}

func mustRecover(t *testing.T, l *Log) Recovery {
	t.Helper()
	rec, err := l.Recover(nil)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return rec
}

func payload(i, size int) []byte {
	p := make([]byte, size)
	for j := range p {
		p[j] = byte(i + j)
	}
	return p
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rec := mustRecover(t, l); rec.Records != 0 || rec.Truncated {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}
	const n = 100
	for i := 0; i < n; i++ {
		seq, err := l.Append(uint64(1+i%3), uint64(10+i), payload(i, 64+i%32))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d: seq %d", i, seq)
		}
	}
	if err := l.Commit(uint64(n)); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	st := l.Stats()
	if st.Appends != n || st.SyncedSeq != n || st.LastSeq != n {
		t.Fatalf("stats %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, rec := collect(t, dir)
	if len(got) != n || rec.Records != n || rec.Truncated {
		t.Fatalf("recovered %d records, %+v", len(got), rec)
	}
	for i, r := range got {
		want := Record{Seq: uint64(i + 1), Session: uint64(1 + i%3), BatchSeq: uint64(10 + i)}
		if r.Seq != want.Seq || r.Session != want.Session || r.BatchSeq != want.BatchSeq {
			t.Fatalf("record %d header = %+v, want %+v", i, r, want)
		}
		if string(r.Payload) != string(payload(i, 64+i%32)) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
	if rec.Sessions[1] == 0 || rec.Sessions[2] == 0 || rec.Sessions[3] == 0 {
		t.Fatalf("sessions %+v", rec.Sessions)
	}
	if rec.FirstSeq != 1 || rec.LastSeq != n {
		t.Fatalf("seq bounds %+v", rec)
	}
}

func TestWALCommitCoalesces(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	mustRecover(t, l)
	for i := 0; i < 50; i++ {
		if _, err := l.Append(0, 0, payload(i, 32)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// One Commit of the highest seq covers everything staged: one sync.
	if err := l.Commit(50); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Earlier seqs are already covered: no further sync.
	if err := l.Commit(7); err != nil {
		t.Fatalf("Commit(7): %v", err)
	}
	if st := l.Stats(); st.Syncs != 1 {
		t.Fatalf("syncs = %d, want 1 (group commit)", st.Syncs)
	}
}

func TestWALRotateAndRecycle(t *testing.T) {
	dir := t.TempDir()
	// Room for the header plus two 32+32-byte records per segment.
	cfg := Config{Dir: dir, SegmentSize: segHeaderSize + 2*(recHeaderSize+32)}
	l, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustRecover(t, l)
	const n = 10 // 5 segments, 2 records each
	for i := 0; i < n; i++ {
		if _, err := l.Append(0, 0, payload(i, 32)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Commit(n); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if st := l.Stats(); st.Segments != 5 {
		t.Fatalf("segments = %d, want 5", st.Segments)
	}

	// Releasing through seq 5 recycles the first two segments (records
	// 1-2 and 3-4); the segment holding 5-6 must survive.
	l.Release(5)
	st := l.Stats()
	if st.Recycled != 2 || st.Segments != 3 {
		t.Fatalf("after release: %+v", st)
	}

	// The recycled files are reused by the next rotations.
	for i := 0; i < 4; i++ {
		if _, err := l.Append(0, 0, payload(100+i, 32)); err != nil {
			t.Fatalf("Append reuse %d: %v", i, err)
		}
	}
	if err := l.Commit(n + 4); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, rec := collect(t, dir)
	// Replay starts at the first surviving segment: records 5..14.
	if rec.FirstSeq != 5 || rec.LastSeq != n+4 {
		t.Fatalf("recovery bounds %+v", rec)
	}
	if len(got) != 10 {
		t.Fatalf("recovered %d records, want 10", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(5+i) {
			t.Fatalf("record %d seq = %d", i, r.Seq)
		}
	}
}

func TestWALRecoverTornTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		cut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-17] }},
		{"bitflip", func(b []byte) []byte { b[len(b)-5] ^= 0x40; return b }},
		{"header-torn", func(b []byte) []byte { return b[:len(b)-48-12] }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			mustRecover(t, l)
			for i := 0; i < 5; i++ {
				if _, err := l.Append(9, uint64(i+1), payload(i, 48)); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if err := l.Commit(5); err != nil {
				t.Fatalf("Commit: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			// Corrupt the tail of the single segment.
			names, _ := OSFS{}.ReadDir(dir)
			if len(names) != 1 {
				t.Fatalf("segments: %v", names)
			}
			path := filepath.Join(dir, names[0])
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.cut(data), 0o644); err != nil {
				t.Fatal(err)
			}

			got, rec := collect(t, dir)
			if !rec.Truncated {
				t.Fatalf("recovery not marked truncated: %+v", rec)
			}
			if len(got) != 4 {
				t.Fatalf("recovered %d records, want 4 (clean stop before the corrupt tail)", len(got))
			}
			if rec.Sessions[9] != 4 {
				t.Fatalf("sessions %+v", rec.Sessions)
			}
		})
	}
}

func TestWALRecoverStaleRecycledSegment(t *testing.T) {
	// A crash between recycling (rename) and the next sync can leave a
	// reused file whose content is still the previous generation: valid
	// magic, old base, old records with self-consistent CRCs. Recovery
	// must not replay any of it.
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustRecover(t, l)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(0, 0, payload(i, 16)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Commit(3); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The file holds records 1..3 under the name wal-...01.seg; rename
	// it to a later base, as a crashed rotation would leave it.
	if err := os.Rename(filepath.Join(dir, segName(1)), filepath.Join(dir, segName(100))); err != nil {
		t.Fatal(err)
	}

	got, rec := collect(t, dir)
	if len(got) != 0 || rec.Records != 0 {
		t.Fatalf("stale segment replayed: %d records, %+v", len(got), rec)
	}
	// The poisoned file must have been parked for reuse, not left to
	// confuse the next recovery.
	names, _ := OSFS{}.ReadDir(dir)
	for _, n := range names {
		if strings.HasSuffix(n, ".seg") {
			t.Fatalf("stale segment still present: %v", names)
		}
	}
}

func TestWALRecoverContinuesAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, SegmentSize: segHeaderSize + 2*(recHeaderSize+32)}
	l, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustRecover(t, l)
	for i := 0; i < 6; i++ {
		if _, err := l.Append(0, 0, payload(i, 32)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Commit(6); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, rec := collect(t, dir)
	if len(got) != 6 || rec.Segments != 3 || rec.Truncated {
		t.Fatalf("recovered %d records from %d segments, %+v", len(got), rec.Segments, rec)
	}
}

func TestWALAppendAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustRecover(t, l)
	if _, err := l.Append(0, 0, payload(0, 16)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(1); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen, replay, append more: the new records must land in a fresh
	// segment and chain onto the recovered sequence.
	l2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec := mustRecover(t, l2)
	if rec.LastSeq != 1 {
		t.Fatalf("recovery %+v", rec)
	}
	seq, err := l2.Append(0, 0, payload(1, 16))
	if err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if seq != 2 {
		t.Fatalf("seq = %d, want 2", seq)
	}
	if err := l2.Commit(2); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, rec2 := collect(t, dir)
	if len(got) != 2 || rec2.LastSeq != 2 || rec2.Segments != 2 {
		t.Fatalf("second recovery: %d records, %+v", len(got), rec2)
	}
}

func TestWALUsageErrors(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
	if _, err := Open(Config{Dir: t.TempDir(), SegmentSize: 10}); err == nil {
		t.Fatal("Open with tiny SegmentSize succeeded")
	}
	l, err := Open(Config{Dir: t.TempDir(), SegmentSize: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append(0, 0, nil); err == nil {
		t.Fatal("Append before Recover succeeded")
	}
	mustRecover(t, l)
	if _, err := l.Recover(nil); err == nil {
		t.Fatal("second Recover succeeded")
	}
	if _, err := l.Append(0, 0, make([]byte, 512)); err == nil {
		t.Fatal("oversized Append succeeded")
	}
	if err := l.Commit(99); err == nil {
		t.Fatal("Commit beyond lastSeq succeeded")
	}
	if _, err := l.Append(0, 0, payload(0, 16)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.Append(0, 0, payload(0, 16)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := l.Commit(1); err != nil {
		t.Fatalf("Commit after Close for already-synced seq: %v", err)
	}
}

func TestWALRecoverEmitError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustRecover(t, l)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(0, 0, payload(i, 16)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Commit(3); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	boom := fmt.Errorf("sink rejected")
	_, err = l2.Recover(func(r Record) error {
		if r.Seq == 2 {
			return boom
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "sink rejected") {
		t.Fatalf("Recover error = %v", err)
	}
	// The directory is untouched: a second opener can retry in full.
	got, _ := collect(t, dir)
	if len(got) != 3 {
		t.Fatalf("retry recovered %d records, want 3", len(got))
	}
}

// TestWALAppendZeroAlloc is the zero-alloc gate for the append hot
// path: once the staging buffers are grown, staging a pre-encoded frame
// allocates nothing (mirrors the PR-3/PR-5 gates; the benchmark twin is
// BenchmarkWALAppend at the repository root).
func TestWALAppendZeroAlloc(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	mustRecover(t, l)
	frame := payload(0, 256)
	const runs = 1000
	// Two fill+commit cycles grow both staging buffers (Commit swaps
	// them) to steady-state capacity.
	for cycle := 0; cycle < 2; cycle++ {
		for i := 0; i <= runs; i++ {
			if _, err := l.Append(42, uint64(i+1), frame); err != nil {
				t.Fatalf("warmup Append: %v", err)
			}
		}
		if err := l.Commit(l.LastSeq()); err != nil {
			t.Fatalf("warmup Commit: %v", err)
		}
	}
	avg := testing.AllocsPerRun(runs, func() {
		if _, err := l.Append(42, 7, frame); err != nil {
			t.Fatalf("Append: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("WAL append allocates %.2f allocs/op, want 0", avg)
	}
}

func TestScanRecordsStopsAtBadLength(t *testing.T) {
	var body []byte
	body = appendRecord(body, 1, 0, 0, payload(0, 8))
	cut := len(body)
	body = appendRecord(body, 2, 0, 0, payload(1, 8))
	// Declare an absurd length: the scanner must reject it by bound
	// before any CRC or slicing touches out-of-range bytes.
	binary.LittleEndian.PutUint32(body[cut+4:cut+8], 1<<30)
	n, off, err := scanRecords(body, 1, 1<<20, nil)
	if err != nil || n != 1 || off != cut {
		t.Fatalf("scan = (%d, %d, %v), want (1, %d, nil)", n, off, err, cut)
	}
}
