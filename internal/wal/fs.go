package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS abstracts the handful of filesystem operations the log performs,
// so tests can inject faults (failed or stalled fsyncs, short writes —
// see internal/harness.FaultFS) without touching a real disk contract.
// The zero configuration uses OSFS.
type FS interface {
	// MkdirAll creates the log directory (and parents) if missing.
	MkdirAll(dir string) error
	// ReadDir lists the file names (not paths) inside dir.
	ReadDir(dir string) ([]string, error)
	// ReadFile reads a whole segment; recovery parses segments from
	// memory so the record scanner can also be driven by the fuzzer.
	ReadFile(name string) ([]byte, error)
	// Create opens name for writing, truncating any previous content —
	// both for brand-new segments and for recycled ones.
	Create(name string) (File, error)
	// Rename moves a file; recycling renames retired segments into the
	// free pool and back.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
}

// File is the writable handle of one open segment.
type File interface {
	io.Writer
	// Sync flushes the written bytes to stable storage; group commit
	// coalesces many appends into one Sync.
	Sync() error
	// Close releases the handle.
	Close() error
}

// OSFS is the real-filesystem implementation of FS.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(filepath.Clean(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }
