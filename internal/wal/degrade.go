// Graceful degradation: the DegradeLossy failure policy.
//
// The default policy keeps the log fail-stop (wal.go): the first write
// or sync error poisons it and every later call returns the error. A
// server that prefers availability over durability can instead run
// DegradeLossy: the first fault flips the log into an explicit
// *degraded* state — Append and Commit return ErrDegraded immediately,
// so the transport can keep accepting events at-most-once and tell
// producers so (the degraded bit, docs/wire.md) — while a background
// probe keeps trying to bring durability back without a restart.
//
// Restoring is more than reopening a file descriptor, because recovery
// (replay.go) demands a contiguous sequence chain and treats trailing
// garbage in any segment as a break that orphans every later segment.
// The probe therefore repairs the on-disk state before it declares the
// log healthy:
//
//  1. re-read the segment that was being written when the fault hit;
//  2. find the byte offset of the last record covered by a completed
//     fsync (everything beyond it — a torn tail from the failed write,
//     or records whose sync never finished — was never acknowledged
//     durable and is discarded, keeping degraded acks strictly
//     at-most-once);
//  3. if the file holds bytes past that offset, rewrite the valid
//     prefix to a probe-*.tmp file, fsync it and rename it over the
//     segment (atomic on POSIX; recovery ignores probe files, so a
//     crash mid-probe leaves either the old tail or the clean prefix);
//  4. seal the repaired segment and open a fresh one whose base
//     continues the chain at synced+1 — the header write + fsync of the
//     fresh segment doubles as the disk-health check.
//
// Any step failing leaves the log degraded and the probe retries on
// its interval. Sequences that were staged but never synced are rolled
// back and reused by post-restore appends; they were never durable and
// never acknowledged as such, so the chain stays dense.
package wal

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// FailurePolicy selects how the log responds to a write or sync error.
type FailurePolicy int

const (
	// FailStop poisons the log on the first fault: every pending and
	// future Append/Commit returns the error. The default; a server
	// that must never acknowledge a non-durable frame runs this.
	FailStop FailurePolicy = iota
	// DegradeLossy flips the log into a degraded state on a fault:
	// Append/Commit return ErrDegraded (callers may continue lossily),
	// and a background probe repairs the log and restores durability
	// without a restart.
	DegradeLossy
)

// String renders the policy for stats and logs.
func (p FailurePolicy) String() string {
	switch p {
	case FailStop:
		return "fail-stop"
	case DegradeLossy:
		return "degrade-lossy"
	default:
		return fmt.Sprintf("FailurePolicy(%d)", int(p))
	}
}

// ParseFailurePolicy parses the String form (for flags).
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fail-stop", "failstop", "":
		return FailStop, nil
	case "degrade-lossy", "degradelossy", "lossy":
		return DegradeLossy, nil
	}
	return FailStop, fmt.Errorf("wal: unknown failure policy %q", s)
}

// ErrDegraded is returned by Append and Commit while a DegradeLossy log
// is degraded: the record is NOT durable and must not be acknowledged
// as such. Callers that continue anyway are explicitly at-most-once
// until the probe restores the log.
var ErrDegraded = errors.New("wal: degraded (lossy)")

// DefaultProbeInterval is the retry cadence of the restore probe when
// Config.ProbeInterval is zero on a DegradeLossy log.
const DefaultProbeInterval = time.Second

// probeName renders the temp file a probe rewrite stages into before
// renaming it over the repaired segment. Recovery ignores and removes
// stray probe files (a crash mid-probe leaves the original segment).
func probeName(base uint64) string { return fmt.Sprintf("probe-%016x.tmp", base) }

// isProbeName reports whether name is a probe temp file.
func isProbeName(name string) bool {
	return strings.HasPrefix(name, "probe-") && strings.HasSuffix(name, ".tmp")
}

// degradeLocked flips the log into the degraded state: staged-but-
// unsynced records are discarded (their sequences roll back so the
// post-restore chain stays dense), waiters are woken to observe
// ErrDegraded, and the restore probe is scheduled. Called with the
// lock held, from failLocked.
func (l *Log) degradeLocked(err error) {
	if l.degraded {
		return
	}
	l.degraded = true
	l.degradedSince = time.Now()
	l.degradations++
	l.faultErr = err
	l.lostAppends += l.lastSeq - l.synced
	l.lastSeq = l.synced
	l.buf = l.buf[:0]
	if l.cur != nil {
		l.cur.Close() // best effort; the handle is suspect
		l.cur = nil
	}
	l.logsf("wal: degraded to lossy: %v (%d staged records dropped)", err, l.lostAppends)
	l.cond.Broadcast()
	if l.probeInterval > 0 {
		l.probeTimer = time.AfterFunc(l.probeInterval, l.probeTick)
	}
}

// probeTick is the background restore attempt; it reschedules itself
// while the log stays degraded.
func (l *Log) probeTick() {
	if err := l.Probe(); err == nil {
		return
	}
	l.mu.Lock()
	if l.degraded && !l.closed && l.probeInterval > 0 {
		l.probeTimer = time.AfterFunc(l.probeInterval, l.probeTick)
	}
	l.mu.Unlock()
}

// Probe attempts one restore of a degraded log: repair the segment the
// fault interrupted, then open a fresh segment continuing the chain.
// It returns nil when the log is healthy (restored now or never
// degraded) and the repair error otherwise, leaving the log degraded.
// The background probe calls it on Config.ProbeInterval; tests call it
// directly for determinism.
func (l *Log) Probe() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if !l.degraded {
		return nil
	}
	if err := l.restoreLocked(); err != nil {
		l.logsf("wal: probe: %v", err)
		return err
	}
	l.degraded = false
	l.degradedSince = time.Time{}
	l.faultErr = nil
	l.restores++
	l.logsf("wal: restored, durable again above seq %d", l.synced)
	l.cond.Broadcast()
	return nil
}

// restoreLocked repairs the on-disk state and opens a fresh segment at
// synced+1. Any error leaves the log degraded with nothing torn down:
// every step either mutates nothing or is atomic (the rename).
func (l *Log) restoreLocked() error {
	if l.curName != "" {
		if err := l.repairSegmentLocked(); err != nil {
			return err
		}
	}
	// Unlike rotateLocked, no free-pool reuse here: Create alone has no
	// partial-failure state to unwind, and probes are rare.
	base := l.synced + 1
	name := segName(base)
	f, err := l.fs.Create(l.path(name))
	if err != nil {
		return fmt.Errorf("open %s: %w", name, err)
	}
	hdr := appendSegHeader(l.spare[:0], base)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("header %s: %w", name, err)
	}
	// The header fsync is the disk-health touchstone: restore is
	// declared only once the fresh segment is provably writable and
	// syncable.
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sync %s: %w", name, err)
	}
	l.cur, l.curName, l.curBase, l.curEnd = f, name, base, segHeaderSize
	return nil
}

// repairSegmentLocked truncates the interrupted segment to its synced
// prefix and seals it. A segment with no synced records is left for
// the fresh-segment open to truncate in place (same base, same name).
func (l *Log) repairSegmentLocked() error {
	data, err := l.fs.ReadFile(l.path(l.curName))
	if err != nil {
		return fmt.Errorf("reread %s: %w", l.curName, err)
	}
	synced := 0 // synced records in this segment
	if l.synced >= l.curBase {
		synced = int(l.synced - l.curBase + 1)
	}
	base, ok := parseSegHeader(data)
	if !ok || base != l.curBase {
		if synced > 0 {
			return fmt.Errorf("%s: synced header unreadable", l.curName)
		}
		// Header never survived and nothing in the file was ever
		// durable; the fresh-segment Create (same name) truncates it.
		l.curName = ""
		return nil
	}
	keep, keepOff := 0, 0
	body := data[segHeaderSize:]
	scanRecords(body, l.curBase, l.maxPayload(), func(r Record) error {
		if r.Seq <= l.synced {
			keep++
			keepOff += recHeaderSize + len(r.Payload)
		}
		return nil
	})
	if keep < synced {
		return fmt.Errorf("%s: only %d of %d synced records readable", l.curName, keep, synced)
	}
	if keep == 0 {
		l.curName = ""
		return nil
	}
	if valid := segHeaderSize + keepOff; valid < len(data) {
		// Bytes past the synced prefix — the torn tail of the failed
		// write, or records whose covering sync never completed. Rewrite
		// the prefix and swap it in atomically so recovery never sees
		// the garbage (it would orphan every later segment).
		tmp := probeName(l.curBase)
		f, err := l.fs.Create(l.path(tmp))
		if err != nil {
			return fmt.Errorf("stage %s: %w", tmp, err)
		}
		_, werr := f.Write(data[:valid])
		if werr == nil {
			werr = f.Sync()
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			l.fs.Remove(l.path(tmp))
			return fmt.Errorf("stage %s: %w", tmp, werr)
		}
		if err := l.fs.Rename(l.path(tmp), l.path(l.curName)); err != nil {
			l.fs.Remove(l.path(tmp))
			return fmt.Errorf("swap %s: %w", l.curName, err)
		}
	}
	l.sealed = append(l.sealed, segMeta{name: l.curName, base: l.curBase, last: l.synced})
	l.sortSealed()
	l.curName = ""
	return nil
}
