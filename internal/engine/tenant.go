// Tenant dimension of the engine: ingress batches may carry a tenant
// identity (transport.TenantSink routes it through SubmitTenantBatch),
// queries may be scoped to one tenant, and the global shedding budget
// distributes the required drop rate tenant-first — over-quota tenants'
// low-utility windows shed before any compliant tenant loses a thing.
package engine

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
)

// TenantQuota is one tenant's engine-side policy: the ingress rate it
// is entitled to and its utility weight in the tenant-level budget
// split. The zero value means "no quota": the tenant is never counted
// as over quota, and its weight defaults to 1.
type TenantQuota struct {
	// Rate is the tenant's entitled ingress rate in events per second;
	// ingress beyond it is the tenant's overage, which the budget sheds
	// first under overload. Zero disables the overage computation.
	Rate float64
	// Weight is the tenant's utility weight for the remainder split
	// (after overage-first allocation): heavier tenants shed less.
	// Zero or negative defaults to 1.
	Weight float64
}

// TenantStats is one tenant's slice of the engine statistics.
type TenantStats struct {
	// Name is the tenant identity ("" for the default tenant, which
	// also owns all tenant-unscoped queries in the budget split).
	Name string
	// Submitted counts events submitted under this tenant.
	Submitted uint64
	// InputRate is the smoothed ingress rate estimate in events/s.
	InputRate float64
	// QuotaRate and Weight echo the configured quota.
	QuotaRate float64
	Weight    float64
	// DropShare is the tenant's current share of the global drop-rate
	// target in events/s (0 when not overloaded).
	DropShare float64
	// Delivered, Kept, Shed and ComplexEvents roll up the tenant's
	// scoped queries (Delivered counts fan-out deliveries; Kept/Shed
	// count window memberships through its shedders).
	Delivered     uint64
	Kept          uint64
	Shed          uint64
	ComplexEvents uint64
}

// tenantEvent is one ingress queue slot: the event plus the interned
// id of the tenant that submitted it (0 = default tenant).
type tenantEvent struct {
	ev  event.Event
	tid int32
}

// tenantRec is one tenant's engine-side record. submitted is written
// on the ingress path; lastSub/lastTick belong to the budget
// goroutine; rateBits/shareBits are its published estimates.
type tenantRec struct {
	id   int32
	name string

	submitted atomic.Uint64
	rateBits  atomic.Uint64 // float64 bits: smoothed ingress rate
	shareBits atomic.Uint64 // float64 bits: current drop-rate share

	lastSub  uint64    // budget-goroutine only
	lastTick time.Time // budget-goroutine only
	// overDebt latches while a tenant caught exceeding its quota rate
	// still has unprocessed backlog: the transport throttle clamps a
	// flood back to exactly the quota rate, but the queued overage must
	// stay attributed to its producer until it drains. Budget-goroutine
	// only.
	overDebt bool

	mu    sync.Mutex
	quota TenantQuota
}

// rate returns the published smoothed ingress rate.
func (r *tenantRec) rate() float64 { return math.Float64frombits(r.rateBits.Load()) }

// share returns the published tenant-level drop share.
func (r *tenantRec) share() float64 { return math.Float64frombits(r.shareBits.Load()) }

// quotaSnapshot returns the current quota under the record mutex.
func (r *tenantRec) quotaSnapshot() TenantQuota {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.quota
}

// tenantRecFor interns a tenant name, creating its record on first
// sight. The default tenant "" is pre-interned as id 0.
func (e *Engine) tenantRecFor(name string) *tenantRec {
	e.tenMu.RLock()
	if id, ok := e.tenantIDs[name]; ok {
		rec := e.tenants[id]
		e.tenMu.RUnlock()
		return rec
	}
	e.tenMu.RUnlock()
	e.tenMu.Lock()
	defer e.tenMu.Unlock()
	if id, ok := e.tenantIDs[name]; ok {
		return e.tenants[id]
	}
	rec := &tenantRec{id: int32(len(e.tenants)), name: name}
	e.tenantIDs[name] = rec.id
	e.tenants = append(e.tenants, rec)
	return rec
}

// tenantSnapshot copies the tenant record slice for lock-free
// iteration.
func (e *Engine) tenantSnapshot() []*tenantRec {
	e.tenMu.RLock()
	defer e.tenMu.RUnlock()
	return append([]*tenantRec(nil), e.tenants...)
}

// SetTenantQuota installs (or updates) one tenant's quota while the
// engine runs; the next budget tick applies it. Quotas can also be
// set up front with Config.Tenants.
func (e *Engine) SetTenantQuota(name string, q TenantQuota) {
	rec := e.tenantRecFor(name)
	rec.mu.Lock()
	rec.quota = q
	rec.mu.Unlock()
}

// SubmitTenantBatch enqueues a batch of events in stream order under a
// tenant identity: tenant-scoped queries receive only their own
// tenant's events, and the tenant's ingress rate is measured against
// its quota by the budget loop. It implements transport.TenantSink;
// the empty tenant is the default tenant (equivalent to SubmitBatch).
func (e *Engine) SubmitTenantBatch(tenant string, events []event.Event) {
	rec := e.defaultTen
	if tenant != "" {
		rec = e.tenantRecFor(tenant)
	}
	for _, ev := range events {
		e.submitted.Add(1)
		rec.submitted.Add(1)
		e.in <- tenantEvent{ev: ev, tid: rec.id}
	}
}

// tenantMeasure is one tenant group's input to the tenant-level budget
// split: its measured ingress rate, its overage beyond quota, its
// utility weight, and the most drop rate its member queries can absorb.
type tenantMeasure struct {
	Over   float64 // ingress beyond the quota rate (0 = compliant or unmetered)
	Rate   float64 // smoothed measured ingress rate
	Weight float64 // utility weight (> 0)
	Cap    float64 // sum of member-query caps: max drop rate assignable
}

// distributeTenantBudget splits the global drop-rate target delta
// across tenant groups in two levels. Level 1 is overage-first: tenants
// over their quota absorb drops proportionally to their overage, capped
// at min(overage, group cap) — a compliant tenant gets nothing here.
// Level 2 spreads whatever delta remains across the *over-quota*
// tenants only, up to their full residual capacity: the quota is an
// isolation contract, so while anyone is over it, compliant tenants
// shed nothing even if that leaves drop rate unassigned (the overage
// tenants' own queues wear the unpaid remainder). Only when no tenant
// is over quota — the overload is everyone's fault — does the remainder
// land on all groups, proportionally to rate/weight, so heavier tenants
// shed less. The returned slice is parallel to ms and sums to at most
// delta.
func distributeTenantBudget(delta float64, ms []tenantMeasure) []float64 {
	out := make([]float64, len(ms))
	if delta <= 0 || len(ms) == 0 {
		return out
	}
	// Level 1: overage-proportional, capped at min(over, cap).
	overCosts := make([]float64, len(ms))
	overCaps := make([]float64, len(ms))
	anyOver := false
	for i, m := range ms {
		if m.Over > 0 {
			anyOver = true
			if m.Cap > 0 {
				overCosts[i] = m.Over
				overCaps[i] = math.Min(m.Over, m.Cap)
			}
		}
	}
	level1 := distributeBudget(delta, overCosts, overCaps)
	assigned := 0.0
	for i, v := range level1 {
		out[i] = v
		assigned += v
	}
	remaining := delta - assigned
	if remaining <= 1e-12 {
		return out
	}
	// Level 2: the remainder lands on the over-quota tenants while any
	// exist, otherwise on everyone; either way weighted — a tenant's
	// drop priority is its rate divided by its weight.
	costs := make([]float64, len(ms))
	caps := make([]float64, len(ms))
	for i, m := range ms {
		if anyOver && m.Over <= 0 {
			continue // compliant tenants are shielded from the spill
		}
		w := m.Weight
		if w <= 0 {
			w = 1
		}
		if m.Rate > 0 && m.Cap-out[i] > 0 {
			costs[i] = m.Rate / w
			caps[i] = m.Cap - out[i]
		}
	}
	for i, v := range distributeBudget(remaining, costs, caps) {
		out[i] += v
	}
	return out
}

// tenantRateTau is the time constant (seconds) of the tenant
// ingress-rate estimator. The quota is a *sustained*-rate contract: a
// compliant producer whose pacing hiccups (a credit stall followed by a
// catch-up burst) must not be counted as over quota for one 5ms tick,
// so instantaneous samples are folded in with dt/(dt+tau) gain — a
// burst has to persist on the order of tau before the estimate crosses
// the quota, mirroring the burst allowance the transport's token bucket
// grants on the wire side.
const tenantRateTau = 1.0

// tickTenantRates refreshes every tenant's smoothed ingress-rate
// estimate from its submitted counter. Budget goroutine only.
func (e *Engine) tickTenantRates(now time.Time) {
	for _, rec := range e.tenantSnapshot() {
		cur := rec.submitted.Load()
		if rec.lastTick.IsZero() {
			rec.lastTick = now
			rec.lastSub = cur
			continue
		}
		dt := now.Sub(rec.lastTick).Seconds()
		if dt <= 0 {
			continue
		}
		inst := float64(cur-rec.lastSub) / dt
		prev := rec.rate()
		alpha := dt / (dt + tenantRateTau)
		smoothed := prev + alpha*(inst-prev)
		rec.rateBits.Store(math.Float64bits(smoothed))
		rec.lastSub = cur
		rec.lastTick = now
	}
}
