package engine

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
)

// Stats is a merged snapshot of the engine counters: the ingress side,
// the global budget state and one entry per registered query.
type Stats struct {
	// Submitted counts events accepted by Submit/SubmitBatch.
	Submitted uint64
	// Delivered sums per-query deliveries (one event fanning out to k
	// queries counts k times), including the lifetime deliveries of
	// since-deregistered queries, so it is monotonic.
	Delivered uint64
	// Skipped sums per-query filter rejections, deregistered queries
	// included.
	Skipped uint64
	// QueueLen is the ingress backlog (fan-out not yet performed).
	QueueLen int
	// InputRate is the summed per-query delivered-rate estimate in
	// events per second.
	InputRate float64
	// Capacity is the summed per-query unshed-throughput estimate in
	// events per second.
	Capacity float64
	// Overloaded reports the last global budget decision.
	Overloaded bool
	// DropRate is the current global drop-rate target in events per
	// second (0 when not overloaded).
	DropRate float64
	// Queries holds one entry per registered query, in registration
	// order.
	Queries []QueryStats
	// Tenants holds one entry per tenant ever seen (quota set, events
	// submitted, or query scoped), in first-seen order; index 0 is the
	// default tenant "".
	Tenants []TenantStats
	// Quarantined holds one entry per query name that has ever been
	// quarantined by a pipeline panic, sorted by name. An entry with
	// Restarting set will be re-registered by the circuit breaker; a
	// name may appear here and in Queries at once after a restart.
	Quarantined []QuarantineStats
}

// QueryStats is one query's slice of the engine statistics.
type QueryStats struct {
	// Name is the registration key.
	Name string
	// Delivered and Skipped count fan-out decisions for this query.
	Delivered uint64
	Skipped   uint64
	// Weight is the query's budget weight.
	Weight float64
	// ShedActive reports whether the query's shedder currently drops.
	ShedActive bool
	// Pipeline is the underlying pipeline's counter snapshot.
	Pipeline runtime.Stats
}

// Stats returns a merged snapshot across the engine and all registered
// queries. Safe to call while the engine runs.
func (e *Engine) Stats() Stats {
	st := Stats{
		Submitted:  e.submitted.Load(),
		QueueLen:   len(e.in),
		Overloaded: e.overloaded.Load(),
		DropRate:   math.Float64frombits(e.dropRate.Load()),
	}
	e.mu.RLock()
	qs := append([]*Query(nil), e.queries...)
	st.Delivered = e.retiredDelivered.Load()
	st.Skipped = e.retiredSkipped.Load()
	st.Quarantined = e.quarantineSnapshot()
	e.mu.RUnlock()
	recs := e.tenantSnapshot()
	st.Tenants = make([]TenantStats, len(recs))
	for i, rec := range recs {
		quota := rec.quotaSnapshot()
		st.Tenants[i] = TenantStats{
			Name:      rec.name,
			Submitted: rec.submitted.Load(),
			InputRate: rec.rate(),
			QuotaRate: quota.Rate,
			Weight:    quota.Weight,
			DropShare: rec.share(),
		}
	}
	for _, q := range qs {
		st.Queries = append(st.Queries, q.Stats())
		last := &st.Queries[len(st.Queries)-1]
		st.Delivered += last.Delivered
		st.Skipped += last.Skipped
		st.InputRate += last.Pipeline.InputRate
		st.Capacity += last.Pipeline.Throughput
		gid := q.tid
		if gid < 0 {
			gid = 0 // unscoped queries roll up under the default tenant
		}
		if int(gid) < len(st.Tenants) {
			t := &st.Tenants[gid]
			t.Delivered += last.Delivered
			t.Kept += last.Pipeline.Operator.MembershipsKept
			t.Shed += last.Pipeline.Operator.MembershipsShed
			t.ComplexEvents += last.Pipeline.Operator.ComplexEvents
		}
	}
	return st
}

// Stats returns this query's slice of the engine statistics.
func (q *Query) Stats() QueryStats {
	return QueryStats{
		Name:       q.name,
		Delivered:  q.delivered.Load(),
		Skipped:    q.skipped.Load(),
		Weight:     q.cfg.Weight,
		ShedActive: q.shedder != nil && q.shedder.Active(),
		Pipeline:   q.pipe.Stats(),
	}
}

// windowSizeEstimate resolves the ws used for the query's partitioning
// and per-window cost: the count-window size or the time-window size
// hint from the spec, falling back to the N of the shedder's *current*
// model — not the registration-time one — so after the online lifecycle
// swaps a retrained model in, the next budget tick recomputes the
// query's per-window cost (and hence its drop-rate share) against the
// new model.
func (q *Query) windowSizeEstimate() int {
	if ws := runtime.SpecWindowSize(q.cfg.Query.Window); ws > 0 {
		return ws
	}
	if q.shedder != nil {
		if m := q.shedder.Model(); m != nil && m.Trained() {
			return m.N()
		}
	}
	if q.cfg.Model != nil {
		return q.cfg.Model.N()
	}
	return 0
}

// budgetLoop periodically evaluates the global overload condition over
// the summed backlog and distributes the required drop rate across the
// shedding-capable queries.
func (e *Engine) budgetLoop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(e.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			e.tickTenantRates(time.Now())
			e.mu.RLock()
			qs := append([]*Query(nil), e.queries...)
			e.mu.RUnlock()
			e.evaluateBudget(qs)
		}
	}
}

// evaluateBudget is one budget tick: measure, decide, distribute,
// command. Section 3.4's per-operator detector logic is applied at the
// aggregate level — qmax = LB * summed throughput, trigger = f * qmax,
// drop rate = rate excess plus backlog correction — and the resulting
// drop rate is split tenant-first by distributeTenantBudget (over-quota
// tenants absorb drops before compliant ones), then across each
// tenant's queries by distributeBudget. With every measured query in
// one tenant group the tenant level degenerates to a single share equal
// to the whole delta, reproducing the single-tenant behavior exactly.
func (e *Engine) evaluateBudget(qs []*Query) {
	type measured struct {
		q     *Query
		gid   int32 // budget group: the query's tenant id (unscoped → 0)
		rate  float64
		th    float64
		queue int
		ws    int
	}
	// totalQueue accumulates backlogs in events: the ingress queue plus
	// each query's Stats().QueueLen, which sharded pipelines report already
	// normalized from staged memberships to events by the windowing
	// overlap factor — so serial and sharded queries weigh equally here.
	var (
		ms         []measured
		totalQueue = len(e.in)
		rateSum    float64
		thSum      float64
	)
	for _, q := range qs {
		st := q.pipe.Stats()
		totalQueue += st.QueueLen
		rateSum += st.InputRate
		thSum += st.Throughput
		if q.shedder == nil {
			continue
		}
		if m := q.shedder.Model(); m == nil || !m.Trained() {
			// A lifecycle query still warming up cannot shed yet; leave
			// it out of the distribution instead of assigning it a share
			// its Configure would refuse.
			continue
		}
		gid := q.tid
		if gid < 0 {
			gid = 0 // unscoped queries are budgeted with the default tenant
		}
		ms = append(ms, measured{q: q, gid: gid, rate: st.InputRate,
			th: st.Throughput, queue: st.QueueLen, ws: q.windowSizeEstimate()})
	}
	recs := e.tenantSnapshot()
	if thSum <= 0 {
		return // no throughput estimates yet; nothing to decide on
	}

	qmax := e.det.QMax(thSum)
	trigger := e.cfg.F * qmax
	if float64(totalQueue) <= trigger {
		e.overloaded.Store(false)
		storeFloat(&e.dropRate, 0)
		for _, rec := range recs {
			rec.shareBits.Store(0)
		}
		for _, m := range ms {
			m.q.shedder.Deactivate()
		}
		return
	}

	delta := rateSum - thSum
	if delta < 0 {
		delta = 0
	}
	delta += (float64(totalQueue) - trigger) / e.cfg.LatencyBound.Seconds()
	e.overloaded.Store(true)
	storeFloat(&e.dropRate, delta)
	if delta <= 0 || len(ms) == 0 {
		return
	}

	// Cost of one window of query q is ws/th seconds; dividing by the
	// weight makes high-utility queries expensive to shed, so they shed
	// less. Queries without usable estimates are excluded this tick.
	costs := make([]float64, len(ms))
	caps := make([]float64, len(ms))
	for i, m := range ms {
		if m.th <= 0 || m.rate <= 0 || m.ws <= 0 {
			continue // cost stays 0: excluded from distribution
		}
		costs[i] = (float64(m.ws) / m.th) / m.q.cfg.Weight
		caps[i] = m.rate
	}

	// Group the measured queries by tenant and split delta tenant-first.
	var gids []int32
	members := map[int32][]int{}
	for i, m := range ms {
		if _, seen := members[m.gid]; !seen {
			gids = append(gids, m.gid)
		}
		members[m.gid] = append(members[m.gid], i)
	}
	groupShare := map[int32]float64{}
	if len(gids) == 1 {
		groupShare[gids[0]] = delta
	} else {
		tms := make([]tenantMeasure, len(gids))
		for gi, gid := range gids {
			var rec *tenantRec
			if int(gid) < len(recs) {
				rec = recs[gid]
			}
			tm := tenantMeasure{Weight: 1}
			var groupTh, groupQueue float64
			for _, i := range members[gid] {
				tm.Cap += caps[i]
				groupTh += ms[i].th
				groupQueue += float64(ms[i].queue)
			}
			if rec != nil {
				tm.Rate = rec.rate()
			}
			if tm.Rate <= 0 {
				// No ingress measurement yet (e.g. unscoped queries fed by
				// Submit before the first tick, or a flood younger than one
				// rate tick); fall back to the summed per-query delivered
				// rates so the group still has mass — and so a brand-new
				// flood can already be counted against its quota.
				for _, i := range members[gid] {
					tm.Rate += ms[i].rate
				}
			}
			if rec != nil {
				quota := rec.quotaSnapshot()
				if quota.Weight > 0 {
					tm.Weight = quota.Weight
				}
				if quota.Rate > 0 {
					// Overage is measured two ways. Directly: the smoothed
					// ingress rate beyond the quota. And as debt: a tenant
					// the transport throttle has clamped back to its quota
					// rate still owes for the burst sitting in its queries'
					// queues, so once caught over the rate quota it stays
					// "over" — sized by the backlog beyond its own trigger,
					// expressed as a drop rate — until that backlog drains.
					if tm.Rate > quota.Rate {
						tm.Over = tm.Rate - quota.Rate
						rec.overDebt = true
					}
					queueOver := (groupQueue - e.cfg.F*e.det.QMax(groupTh)) /
						e.cfg.LatencyBound.Seconds()
					if queueOver <= 0 {
						rec.overDebt = tm.Over > 0
					} else if rec.overDebt && queueOver > tm.Over {
						tm.Over = queueOver
					}
				}
			}
			tms[gi] = tm
		}
		for gi, share := range distributeTenantBudget(delta, tms) {
			groupShare[gids[gi]] = share
		}
	}
	for _, rec := range recs {
		rec.shareBits.Store(math.Float64bits(groupShare[rec.id]))
	}

	for _, gid := range gids {
		idx := members[gid]
		share := groupShare[gid]
		gcosts := make([]float64, len(idx))
		gcaps := make([]float64, len(idx))
		for j, i := range idx {
			gcosts[j] = costs[i]
			gcaps[j] = caps[i]
		}
		shares := distributeBudget(share, gcosts, gcaps)
		for j, i := range idx {
			m := ms[i]
			if shares[j] <= 0 {
				m.q.shedder.Deactivate()
				continue
			}
			qmaxQ := e.det.QMax(m.th)
			part := core.ComputePartitioning(m.ws, qmaxQ, e.cfg.F)
			x := shares[j] * float64(part.PSize) / m.rate
			// Configure only fails for an untrained model; a lost beat
			// just delays shedding by one poll period.
			_ = m.q.shedder.Configure(part, x)
		}
	}
}

// distributeBudget splits a required drop rate delta across queries
// proportionally to their costs, capping each query's share at caps[i]
// (a query cannot drop more than it receives) and redistributing the
// overflow among the uncapped queries. Entries with cost <= 0 get
// nothing. The returned slice is parallel to costs.
func distributeBudget(delta float64, costs, caps []float64) []float64 {
	out := make([]float64, len(costs))
	active := make([]bool, len(costs))
	nActive := 0
	for i, c := range costs {
		if c > 0 && caps[i] > 0 {
			active[i] = true
			nActive++
		}
	}
	remaining := delta
	for round := 0; round < len(costs) && nActive > 0 && remaining > 1e-12; round++ {
		costSum := 0.0
		for i := range costs {
			if active[i] {
				costSum += costs[i]
			}
		}
		if costSum <= 0 {
			break
		}
		allocated := remaining
		remaining = 0
		capped := false
		for i := range costs {
			if !active[i] {
				continue
			}
			share := allocated * costs[i] / costSum
			if out[i]+share >= caps[i] {
				remaining += out[i] + share - caps[i]
				out[i] = caps[i]
				active[i] = false
				nActive--
				capped = true
			} else {
				out[i] += share
			}
		}
		if !capped {
			break // everything allocated without hitting a cap
		}
	}
	return out
}

// storeFloat stores a float64 into an atomic bit container.
func storeFloat(a *atomic.Uint64, v float64) { a.Store(math.Float64bits(v)) }
