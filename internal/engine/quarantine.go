// Query quarantine: the engine's half of panic containment. A panic in
// one query's pipeline — shedder, matcher, a user OnWindowClose hook —
// must cost exactly that query, not the process and not its siblings.
//
// The runtime layer (runtime/guard.go) turns the panic into a tripped
// pipeline that drains without processing, and fires Config.OnPanic
// from the panicking goroutine. The engine registers an OnPanic that
// enqueues the query on a fault channel; Run picks it up between
// fan-out rounds and quarantines it: the query is removed from the
// routing table (an auto-Deregister), its pipeline is drained and shut
// down, and the panic — stack, count, time — is recorded in Stats().
// Every other query keeps its event stream intact: fan-out holds the
// read lock across a delivery round, so no sibling ever observes a
// half-delivered batch around a quarantine.
//
// With Config.RestartCooldown set, a circuit breaker re-Registers the
// quarantined query from its original QueryConfig after the cool-down
// (a fresh pipeline; the panic may have been transient), up to
// Config.MaxRestarts times per query name.
package engine

import (
	"sort"
	"time"
)

// QuarantineStats describes one quarantined (or since-restarted) query
// in the engine statistics.
type QuarantineStats struct {
	// Name is the query's registration key.
	Name string
	// Panics counts quarantines of this query name over the engine
	// lifetime; Restarts counts circuit-breaker re-registrations.
	Panics   uint64
	Restarts uint64
	// Restarting reports a pending cool-down timer: the query is
	// currently out of service but will be re-registered.
	Restarting bool
	// Since is the time of the last quarantine.
	Since time.Time
	// Error is the last panic value, rendered; Stack the panicking
	// goroutine's captured stack trace.
	Error string
	Stack string
}

// logsf forwards to the configured logger, if any.
func (e *Engine) logsf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// noteFault hands a tripped query to Run for quarantine. Called from
// the panicking goroutine via the pipeline's OnPanic — at most once per
// pipeline — so the buffered send virtually never blocks; the fallback
// goroutine covers an engine with more simultaneously-failing queries
// than the buffer.
func (e *Engine) noteFault(q *Query) {
	select {
	case e.faults <- q:
	default:
		go func() { e.faults <- q }()
	}
}

// quarantine removes a tripped query from the routing table, shuts its
// pipeline down, records the panic and (optionally) arms the restart
// breaker. Runs on the engine's Run goroutine, between fan-out rounds.
func (e *Engine) quarantine(q *Query) {
	pe := q.pipe.PanicError()

	e.mu.Lock()
	// A concurrent Deregister may have removed q already; it owns the
	// counter fold and the detached close then, and a restart would
	// resurrect a query the caller explicitly removed.
	removed := e.byName[q.name] == q
	if removed {
		delete(e.byName, q.name)
		for i, other := range e.queries {
			if other == q {
				e.queries = append(e.queries[:i], e.queries[i+1:]...)
				break
			}
		}
		e.retiredDelivered.Add(q.delivered.Load())
		e.retiredSkipped.Add(q.skipped.Load())
	}
	rec := e.quarantined[q.name]
	if rec == nil {
		rec = &QuarantineStats{Name: q.name}
		e.quarantined[q.name] = rec
	}
	rec.Panics++
	rec.Since = time.Now()
	if pe != nil {
		rec.Error = pe.Error()
		rec.Stack = pe.Stack
	}
	restart := removed && !e.closed && !rec.Restarting && e.cfg.RestartCooldown > 0 &&
		(e.cfg.MaxRestarts <= 0 || rec.Restarts < uint64(e.cfg.MaxRestarts))
	if restart {
		rec.Restarting = true
		cfg := q.cfg
		name := q.name
		timer := time.AfterFunc(e.cfg.RestartCooldown, func() { e.restartQuarantined(name, cfg) })
		e.restartTimers = append(e.restartTimers, timer)
	}
	e.mu.Unlock()

	e.logsf("engine: query %s quarantined: %v (restart=%v)", q.name, pe, restart)
	if removed {
		close(q.detached)
	}
	e.teardownQuarantined(q)
}

// teardownQuarantined drains and stops the quarantined pipeline under
// its own recovery guard: the panic may have left the pipeline's
// submitter-side state (the partitioner) inconsistent, and a second
// panic during teardown must not escape into Run.
func (e *Engine) teardownQuarantined(q *Query) {
	defer func() {
		if r := recover(); r != nil {
			e.logsf("engine: query %s teardown panic (contained): %v", q.name, r)
		}
	}()
	q.shutdown()
}

// restartQuarantined is the circuit breaker's half-open probe: after
// the cool-down it re-registers the query from its original config on
// a fresh pipeline. A query that panics again goes right back into
// quarantine (and, below MaxRestarts, gets another cool-down).
func (e *Engine) restartQuarantined(name string, cfg QueryConfig) {
	e.mu.Lock()
	rec := e.quarantined[name]
	if rec != nil {
		rec.Restarting = false
	}
	if e.closed {
		e.mu.Unlock()
		return
	}
	if rec != nil {
		rec.Restarts++
	}
	e.mu.Unlock()
	if _, err := e.Register(cfg); err != nil {
		e.logsf("engine: restart %s: %v", name, err)
		return
	}
	e.logsf("engine: query %s re-registered after cool-down", name)
}

// quarantineSnapshot copies the quarantine records, sorted by name.
// Caller must hold e.mu (either mode is fine for reading the map
// structure; records mutate only under the write lock).
func (e *Engine) quarantineSnapshot() []QuarantineStats {
	if len(e.quarantined) == 0 {
		return nil
	}
	out := make([]QuarantineStats, 0, len(e.quarantined))
	for _, rec := range e.quarantined {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
