// Package engine is the multi-query deployment layer above the live
// runtime: one ingress stream fans out to N registered queries, each
// backed by its own runtime.Pipeline (optionally sharded), and a single
// global shedding budget coordinates all per-query load shedders.
//
// The eSPICE paper sheds per-operator; real CEP middleware serves many
// queries over the same input stream, and the deployable unit is the
// middleware layer where cross-cutting concerns — admission, filtering,
// overload control — live. The engine adds exactly that layer:
//
//   - Fan-out with per-query type filters. A query only receives the
//     event types its patterns reference (plus everything, for wildcard
//     patterns), so background traffic never costs a query anything.
//     A query's input stream therefore IS the filtered stream: window
//     positions, trained models and ground truths are all defined over
//     it, and running the same filtered stream through a standalone
//     pipeline reproduces the engine's per-query output exactly.
//   - Per-query pipelines. Each registered query owns a runtime.Pipeline
//     with its own bounded queue, optional shards and optional trained
//     eSPICE shedder, and delivers complex events on its own channel.
//   - A global shedding budget. One aggregate overload check (summed
//     backlog against the latency bound, Section 3.4 applied at the
//     engine level) computes the total drop rate needed, and distributes
//     it across queries proportionally to per-window processing cost
//     divided by query weight: cheap high-utility queries shed less,
//     expensive low-utility queries shed more.
//
// Queries can be registered and deregistered while traffic flows;
// remaining queries observe every event exactly once.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/operator"
	"repro/internal/queries"
	"repro/internal/runtime"
)

// Config assembles an engine.
type Config struct {
	// QueueCap bounds the engine ingress queue; Submit blocks when full.
	// Default 1 << 16.
	QueueCap int
	// QueryQueueCap is the default per-query pipeline queue capacity
	// (overridable per query). Default 1 << 14.
	QueryQueueCap int
	// OutBuffer is the per-query complex-event channel capacity.
	// Default 1024.
	OutBuffer int
	// LatencyBound enables the global shedding budget: the end-to-end
	// bound LB that detected complex events must meet across all queries.
	// Zero disables the budget loop (no shedding).
	LatencyBound event.Time
	// F is the queue-fill fraction triggering shedding, as in the
	// per-operator detector (Section 3.4). Default 0.8.
	F float64
	// PollInterval is the budget evaluation period and the per-pipeline
	// estimator period. Default 10ms.
	PollInterval time.Duration
	// RestartCooldown arms the quarantine circuit breaker: a query whose
	// pipeline panicked is re-registered from its original config this
	// long after the quarantine. Zero (the default) disables restarts —
	// a panicked query stays quarantined until re-registered manually.
	RestartCooldown time.Duration
	// MaxRestarts caps circuit-breaker restarts per query name; <= 0
	// means unlimited. Only meaningful with RestartCooldown > 0.
	MaxRestarts int
	// Logf, when non-nil, receives engine lifecycle diagnostics
	// (quarantines, restarts). Printf-style.
	Logf func(format string, args ...any)
	// Tenants pre-installs per-tenant quotas (ingress rate entitlement
	// and budget weight) keyed by tenant name; SetTenantQuota can add or
	// change quotas while the engine runs.
	Tenants map[string]TenantQuota
}

// QueryConfig registers one query with the engine.
type QueryConfig struct {
	// Query supplies the window spec and compiled patterns (required).
	Query queries.Query
	// Name overrides Query.Name as the registration key; names must be
	// unique within one engine.
	Name string
	// Model, when non-nil, installs an eSPICE shedder for the query,
	// driven by the engine's global budget. Train it on the query's
	// filtered stream (see Accepts) so positions agree.
	Model *core.Model
	// Lifecycle, when non-nil, puts the query's model under the online
	// lifecycle (runtime.Config.Lifecycle): the query's pipeline trains
	// the model from its own filtered traffic and swaps retrained models
	// into the shedder without a pause. Model may then be nil — the
	// query registers untrained and starts shedding once the first model
	// is warm; a non-nil Model is the starting point the lifecycle
	// adapts from. Lifecycle.Types defaults to Query.NumTypes.
	Lifecycle *runtime.LifecycleConfig
	// Weight is the query's utility weight for budget distribution:
	// the drop-rate share is proportional to per-window cost divided by
	// Weight, so heavier-weighted queries shed less. Default 1.
	Weight float64
	// Shards is the pipeline shard count (see runtime.Config.Shards).
	Shards int
	// QueueCap overrides Config.QueryQueueCap for this query.
	QueueCap int
	// ProcessingDelay is an artificial per-kept-membership cost, for
	// benchmarks and overload demos (see runtime.Config).
	ProcessingDelay time.Duration
	// DisableFilter delivers every event type to this query, not just
	// the types its patterns reference. Wildcard patterns imply it.
	DisableFilter bool
	// OnWindowClose, when non-nil, observes every closed window of this
	// query's pipeline (see operator.Config.OnWindowClose). A panic in
	// the hook quarantines the query, not the engine.
	OnWindowClose operator.WindowCloseHook
	// Tenant scopes the query to one tenant: it receives only events
	// submitted under that tenant (SubmitTenantBatch), and its shedder
	// is driven by that tenant's slice of the global budget. Empty means
	// unscoped — the query sees every tenant's events and is budgeted
	// with the default tenant's group.
	Tenant string
}

// Engine is a running multi-query deployment.
type Engine struct {
	cfg Config
	det *core.OverloadDetector // nil when the budget is disabled

	in        chan tenantEvent
	submitted atomic.Uint64

	// tenants is the interning table for tenant identities; index 0 is
	// the default tenant "". Records are append-only under tenMu.
	tenMu      sync.RWMutex
	tenantIDs  map[string]int32
	tenants    []*tenantRec
	defaultTen *tenantRec

	// retiredDelivered/Skipped carry the lifetime counters of
	// deregistered queries so the engine-level sums stay monotonic
	// across Deregister; written under mu (write lock).
	retiredDelivered atomic.Uint64
	retiredSkipped   atomic.Uint64

	overloaded atomic.Bool
	dropRate   atomic.Uint64 // float64 bits: current global drop-rate target

	// faults carries tripped queries from their pipelines' OnPanic to
	// Run, which quarantines them between fan-out rounds.
	faults chan *Query

	// plainBuf is Run's reusable tenant-stripped mirror of the current
	// fan-out batch (owned by the Run goroutine).
	plainBuf []event.Event

	mu            sync.RWMutex
	queries       []*Query // registration order; read per event under RLock
	byName        map[string]*Query
	quarantined   map[string]*QuarantineStats
	restartTimers []*time.Timer
	ctx           context.Context // set by Run
	running       bool
	runCalled     bool
	closed        bool
	inClosed      bool
}

// Query is one registered query: a handle to its pipeline, output
// channel and counters. Obtain it from Register; it stays valid (for
// Stats and draining Out) after Deregister.
type Query struct {
	name string
	cfg  QueryConfig

	pipe    *runtime.Pipeline
	filter  []bool // indexed by event.Type; nil accepts every type
	tid     int32  // scoping tenant id; -1 = unscoped (all tenants)
	shedder *core.Shedder
	// sendBuf is the reusable fan-out staging buffer for this query; it
	// is owned by the engine's Run goroutine (under the read lock) and
	// safe to reuse because Pipeline.SubmitBatch copies.
	sendBuf []event.Event

	out      chan operator.ComplexEvent
	detached chan struct{} // closed by Deregister: stop blocking on out

	delivered atomic.Uint64
	skipped   atomic.Uint64

	started   bool // guarded by the engine mutex
	closeOnce sync.Once
	runDone   chan error
	runErr    error
}

// New validates the configuration and builds an engine with no queries
// registered yet.
func New(cfg Config) (*Engine, error) {
	if cfg.QueueCap < 0 {
		return nil, fmt.Errorf("engine: QueueCap must be >= 0, got %d", cfg.QueueCap)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 1 << 16
	}
	if cfg.QueryQueueCap < 0 {
		return nil, fmt.Errorf("engine: QueryQueueCap must be >= 0, got %d", cfg.QueryQueueCap)
	}
	if cfg.QueryQueueCap == 0 {
		cfg.QueryQueueCap = 1 << 14
	}
	if cfg.OutBuffer == 0 {
		cfg.OutBuffer = 1024
	}
	if cfg.F == 0 {
		cfg.F = 0.8
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	e := &Engine{
		cfg:         cfg,
		in:          make(chan tenantEvent, cfg.QueueCap),
		byName:      make(map[string]*Query),
		quarantined: make(map[string]*QuarantineStats),
		faults:      make(chan *Query, 64),
		tenantIDs:   make(map[string]int32),
	}
	e.defaultTen = e.tenantRecFor("")
	for name, q := range cfg.Tenants {
		e.SetTenantQuota(name, q)
	}
	if cfg.LatencyBound > 0 {
		det, err := core.NewOverloadDetector(core.DetectorConfig{
			LatencyBound: cfg.LatencyBound,
			F:            cfg.F,
		})
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		e.det = det
	}
	return e, nil
}

// untrainedModel dimensions the placeholder model an untrained lifecycle
// query starts from, using the *effective* lifecycle config so the swap
// target and the tap builders agree on the type count. The placeholder
// never sheds — Trained() is false — so N is only a label until the
// lifecycle's first real model replaces it.
func untrainedModel(cfg QueryConfig, lcfg *runtime.LifecycleConfig) (*core.Model, error) {
	n := lcfg.N
	if n == 0 {
		n = runtime.SpecWindowSize(cfg.Query.Window)
	}
	if n == 0 {
		n = 1
	}
	return core.NewUntrainedModel(lcfg.Types, n, lcfg.BinSize)
}

// typeFilter derives the per-query delivery filter from the query's
// patterns: the union of all step type lists, indexed by type id. A
// wildcard step (empty type list) disables filtering entirely.
func typeFilter(q queries.Query) []bool {
	size := q.NumTypes
	filter := make([]bool, size)
	for _, cp := range q.Patterns {
		for _, step := range cp.Pattern().Steps {
			if len(step.Types) == 0 {
				return nil // wildcard: every type may matter
			}
			for _, t := range step.Types {
				if int(t) >= len(filter) {
					grown := make([]bool, int(t)+1)
					copy(grown, filter)
					filter = grown
				}
				if t >= 0 {
					filter[t] = true
				}
			}
		}
	}
	return filter
}

// Register adds a query to the engine and (when the engine is running)
// immediately starts its pipeline and begins delivering events to it.
// Safe to call concurrently with Submit.
func (e *Engine) Register(cfg QueryConfig) (*Query, error) {
	name := cfg.Name
	if name == "" {
		name = cfg.Query.Name
	}
	if name == "" {
		return nil, fmt.Errorf("engine: query needs a name")
	}
	if cfg.Weight == 0 {
		cfg.Weight = 1
	}
	if cfg.Weight < 0 {
		return nil, fmt.Errorf("engine: query %s: Weight must be > 0, got %v", name, cfg.Weight)
	}
	queueCap := cfg.QueueCap
	if queueCap == 0 {
		queueCap = e.cfg.QueryQueueCap
	}

	rcfg := runtime.Config{
		Operator: operator.Config{
			Window:        cfg.Query.Window,
			Patterns:      cfg.Query.Patterns,
			OnWindowClose: cfg.OnWindowClose,
		},
		EstimateRates:   true,
		PollInterval:    e.cfg.PollInterval,
		QueueCap:        queueCap,
		OutBuffer:       e.cfg.OutBuffer,
		ProcessingDelay: cfg.ProcessingDelay,
		Shards:          cfg.Shards,
	}
	q := &Query{
		name:     name,
		cfg:      cfg,
		tid:      -1,
		out:      make(chan operator.ComplexEvent, e.cfg.OutBuffer),
		detached: make(chan struct{}),
		runDone:  make(chan error, 1),
	}
	if cfg.Tenant != "" {
		q.tid = e.tenantRecFor(cfg.Tenant).id
	}
	if !cfg.DisableFilter {
		q.filter = typeFilter(cfg.Query)
	}
	// The effective lifecycle config is resolved first so the untrained
	// placeholder model and the tap builders agree on the type count.
	var lcfg *runtime.LifecycleConfig
	if cfg.Lifecycle != nil {
		c := *cfg.Lifecycle
		if c.Types == 0 {
			c.Types = cfg.Query.NumTypes
		}
		lcfg = &c
		rcfg.Lifecycle = lcfg
	}
	model := cfg.Model
	if model == nil && lcfg != nil {
		// Untrained registration: the shedder exists (so the budget can
		// command it) but refuses to shed until the lifecycle's first
		// model is swapped in.
		m, err := untrainedModel(cfg, lcfg)
		if err != nil {
			return nil, fmt.Errorf("engine: query %s: %w", name, err)
		}
		model = m
	}
	if model != nil {
		s, err := core.NewShedder(model)
		if err != nil {
			return nil, fmt.Errorf("engine: query %s: %w", name, err)
		}
		q.shedder = s
		// With Shards > 1 every shard shares this one shedder; its state
		// swaps atomically, so lockstep commands stay consistent.
		rcfg.Operator.Shedder = s
	}
	// A pipeline panic hands q to Run for quarantine; fired at most once
	// per pipeline, from the goroutine that panicked (see quarantine.go).
	rcfg.OnPanic = func(*runtime.PanicError) { e.noteFault(q) }
	pipe, err := runtime.New(rcfg)
	if err != nil {
		return nil, fmt.Errorf("engine: query %s: %w", name, err)
	}
	q.pipe = pipe

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("engine: closed")
	}
	if _, dup := e.byName[name]; dup {
		return nil, fmt.Errorf("engine: query %q already registered", name)
	}
	e.byName[name] = q
	e.queries = append(e.queries, q)
	if e.running {
		e.startQueryLocked(q)
	}
	return q, nil
}

// startQueryLocked launches the query's pipeline and output forwarder;
// the engine mutex must be held.
func (e *Engine) startQueryLocked(q *Query) {
	q.started = true
	ctx := e.ctx
	go func() { q.runDone <- q.pipe.Run(ctx) }()
	go q.forward()
}

// forward relays pipeline output to the query's own channel. After
// Deregister detaches the query, delivery degrades to best-effort
// (buffered sends only) so teardown never blocks on an absent consumer.
func (q *Query) forward() {
	defer close(q.out)
	for ce := range q.pipe.Out() {
		select {
		case q.out <- ce:
		case <-q.detached:
			select {
			case q.out <- ce:
			default: // consumer gone; discard
			}
		}
	}
}

// shutdown closes the query's pipeline input and waits for it to drain;
// idempotent and safe to call from Deregister and engine teardown
// concurrently.
func (q *Query) shutdown() error {
	q.closeOnce.Do(func() {
		if !q.started {
			close(q.out)
			return
		}
		q.pipe.CloseInput()
		q.runErr = <-q.runDone
	})
	return q.runErr
}

// Deregister removes a query while traffic flows: delivery to it stops
// immediately (remaining queries are unaffected and lose no events), its
// pipeline drains, and its Out channel closes after the already-emitted
// complex events. Blocks until the query's pipeline has fully stopped.
func (e *Engine) Deregister(name string) error {
	e.mu.Lock()
	q, ok := e.byName[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("engine: query %q not registered", name)
	}
	delete(e.byName, name)
	for i, other := range e.queries {
		if other == q {
			e.queries = append(e.queries[:i], e.queries[i+1:]...)
			break
		}
	}
	// The routing table no longer lists q and fanOut holds the read lock
	// across a whole delivery, so its counters are final: fold them into
	// the retired totals to keep the engine-level sums monotonic.
	e.retiredDelivered.Add(q.delivered.Load())
	e.retiredSkipped.Add(q.skipped.Load())
	e.mu.Unlock()

	close(q.detached)
	return q.shutdown()
}

// Submit enqueues one event for fan-out under the default tenant; it
// blocks while the ingress queue is full. Must not be called after
// CloseInput.
func (e *Engine) Submit(ev event.Event) {
	e.submitted.Add(1)
	e.defaultTen.submitted.Add(1)
	e.in <- tenantEvent{ev: ev}
}

// SubmitBatch enqueues a batch of events in stream order under the
// default tenant.
func (e *Engine) SubmitBatch(events []event.Event) {
	e.SubmitTenantBatch("", events)
}

// CloseInput signals end of stream: Run fans out the backlog, closes
// every query pipeline, waits for them to drain and returns.
func (e *Engine) CloseInput() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.inClosed {
		e.inClosed = true
		close(e.in)
	}
}

// Run drives the engine until the input is closed and every query
// pipeline has drained, or the context is canceled. Blocking; the
// budget loop runs on an internal goroutine for its duration.
func (e *Engine) Run(ctx context.Context) error {
	e.mu.Lock()
	if e.runCalled {
		e.mu.Unlock()
		return fmt.Errorf("engine: Run called twice")
	}
	e.runCalled = true
	e.ctx = ctx
	e.running = true
	for _, q := range e.queries {
		e.startQueryLocked(q)
	}
	e.mu.Unlock()

	if e.det != nil {
		stop := make(chan struct{})
		done := make(chan struct{})
		go e.budgetLoop(stop, done)
		defer func() {
			close(stop)
			<-done
		}()
	}

	// The fan-out drains the ingress queue opportunistically into a
	// batch, so per-query delivery amortizes filtering, counter updates
	// and the pipeline submit over many events when traffic is dense,
	// while a lone event still flows through immediately.
	batch := make([]tenantEvent, 0, fanoutChunk)
	for {
		select {
		case <-ctx.Done():
			e.shutdownQueries()
			return ctx.Err()
		case q := <-e.faults:
			e.quarantine(q)
		case ev, ok := <-e.in:
			if !ok {
				return e.shutdownQueries()
			}
			batch = append(batch[:0], ev)
			closed := false
		drain:
			for len(batch) < fanoutChunk {
				select {
				case ev2, ok2 := <-e.in:
					if !ok2 {
						closed = true
						break drain
					}
					batch = append(batch, ev2)
				default:
					break drain
				}
			}
			e.fanOut(ctx, batch)
			if closed {
				return e.shutdownQueries()
			}
		}
	}
}

// fanoutChunk bounds how many queued ingress events one fan-out round
// delivers per query.
const fanoutChunk = 256

// fanOut delivers a batch of events to every registered query whose
// tenant scope and filter accept them, one pipeline submit per query.
// For a sharded query pipeline that submit runs the partitioner inline,
// so the fan-out goroutine streams partition-aware op batches straight
// to the query's shards with no router hop in between. Holding the
// read lock across the (possibly blocking) per-query submits means
// Deregister cannot observe a half-delivered batch: once it acquires the
// write lock, no delivery to the removed query is in flight.
func (e *Engine) fanOut(ctx context.Context, events []tenantEvent) {
	// Mirror the batch into a plain event slice once per round so
	// unscoped wildcard queries keep their staging-free submit.
	plain := e.plainBuf[:0]
	for _, te := range events {
		plain = append(plain, te.ev)
	}
	e.plainBuf = plain
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, q := range e.queries {
		if ctx.Err() != nil {
			return // pipelines are shutting down; stop delivering
		}
		if q.pipe.Failed() {
			// Tripped but not yet quarantined (Run picks the fault up
			// between rounds); the pipeline would drain the submit
			// unprocessed, so skip the staging work.
			continue
		}
		e.deliver(q, events, plain)
	}
}

// deliver submits one batch to one query under the fan-out panic guard:
// a sharded pipeline runs the partitioner inline in SubmitBatch, so a
// panic in the windowing policy (or a close hook it invokes) unwinds
// into this goroutine. The guard attributes it to the query's pipeline
// — tripping it and firing the quarantine path — instead of killing the
// engine; the partitioner's own defer has already released its mutex.
// plain mirrors events without tenant tags; a tenant-scoped query
// admits only its own tenant's events (foreign ones count as skipped,
// exactly like a type-filter rejection).
func (e *Engine) deliver(q *Query, events []tenantEvent, plain []event.Event) {
	defer recoverDeliver(q)
	if q.filter == nil && q.tid < 0 {
		// Unscoped wildcard query: SubmitBatch copies, so the batch
		// goes in directly without a staging copy.
		q.delivered.Add(uint64(len(plain)))
		q.pipe.SubmitBatch(plain)
		return
	}
	buf := q.sendBuf[:0]
	var skipped uint64
	for _, te := range events {
		if (q.tid < 0 || te.tid == q.tid) && q.Accepts(te.ev.Type) {
			buf = append(buf, te.ev)
		} else {
			skipped++
		}
	}
	q.sendBuf = buf
	if skipped > 0 {
		q.skipped.Add(skipped)
	}
	if len(buf) > 0 {
		q.delivered.Add(uint64(len(buf)))
		q.pipe.SubmitBatch(buf)
	}
}

// recoverDeliver converts a submit-path panic into a pipeline trip.
func recoverDeliver(q *Query) {
	if r := recover(); r != nil {
		q.pipe.Trip(r)
	}
}

// shutdownQueries closes every remaining query pipeline and waits for
// them; further Register calls fail.
func (e *Engine) shutdownQueries() error {
	e.mu.Lock()
	e.closed = true
	for _, t := range e.restartTimers {
		t.Stop() // restartQuarantined also re-checks closed under mu
	}
	e.restartTimers = nil
	qs := append([]*Query(nil), e.queries...)
	e.mu.Unlock()
	var first error
	for _, q := range qs {
		if err := q.shutdown(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Name returns the registration key.
func (q *Query) Name() string { return q.name }

// Out delivers the query's detected complex events; it closes after the
// query is deregistered (or the engine shuts down) and its pipeline has
// drained.
func (q *Query) Out() <-chan operator.ComplexEvent { return q.out }

// Accepts reports whether the engine would deliver an event of type t to
// this query — the per-query admission filter. Use it to build the
// query's view of a stream externally (training, ground truth).
func (q *Query) Accepts(t event.Type) bool {
	if q.filter == nil {
		return true
	}
	return t >= 0 && int(t) < len(q.filter) && q.filter[t]
}

// FilterEvents returns the subsequence of events this query would
// receive from the engine — its filtered input stream.
func (q *Query) FilterEvents(events []event.Event) []event.Event {
	if q.filter == nil {
		return events
	}
	out := make([]event.Event, 0, len(events))
	for _, ev := range events {
		if q.Accepts(ev.Type) {
			out = append(out, ev)
		}
	}
	return out
}

// Pipeline exposes the query's underlying pipeline (read-only use:
// stats, latency traces).
func (q *Query) Pipeline() *runtime.Pipeline { return q.pipe }

// FilterStream returns the subsequence of events the engine would
// deliver to a query registered with the default filter — the query's
// input stream. Use it to train models and compute ground truths in the
// engine's coordinate system before registering the query.
func FilterStream(q queries.Query, events []event.Event) []event.Event {
	return (&Query{filter: typeFilter(q)}).FilterEvents(events)
}
