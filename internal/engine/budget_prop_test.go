package engine

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// checkBudgetInvariants asserts the distributeBudget contract for one
// input: the allocation is parallel to costs, non-negative, never
// exceeds any cap, sums to at most delta, gives nothing to excluded
// entries (cost or cap <= 0), and — when the active capacity can absorb
// the whole delta — redistributes it fully.
func checkBudgetInvariants(t *testing.T, delta float64, costs, caps, out []float64) {
	t.Helper()
	if len(out) != len(costs) {
		t.Fatalf("len(out) = %d, want %d", len(out), len(costs))
	}
	const eps = 1e-6
	sum := 0.0
	activeCap := 0.0
	for i := range out {
		if out[i] < 0 {
			t.Fatalf("out[%d] = %v, want >= 0 (delta=%v costs=%v caps=%v)", i, out[i], delta, costs, caps)
		}
		if costs[i] <= 0 || caps[i] <= 0 {
			if out[i] != 0 {
				t.Fatalf("excluded entry %d got %v (cost=%v cap=%v)", i, out[i], costs[i], caps[i])
			}
			continue
		}
		if out[i] > caps[i]+eps {
			t.Fatalf("out[%d] = %v exceeds cap %v", i, out[i], caps[i])
		}
		sum += out[i]
		activeCap += caps[i]
	}
	if delta <= 0 {
		if sum != 0 {
			t.Fatalf("allocated %v from non-positive delta %v", sum, delta)
		}
		return
	}
	if sum > delta+eps {
		t.Fatalf("allocated %v, more than delta %v", sum, delta)
	}
	// Full redistribution: with enough active capacity nothing may be
	// left on the table; otherwise everything active must be capped.
	if activeCap >= delta {
		if math.Abs(sum-delta) > eps*math.Max(1, delta) {
			t.Fatalf("allocated %v of delta %v despite active capacity %v", sum, delta, activeCap)
		}
	} else if math.Abs(sum-activeCap) > eps*math.Max(1, activeCap) {
		t.Fatalf("allocated %v with total active capacity %v; want all caps saturated", sum, activeCap)
	}
}

// TestDistributeBudgetProperty fuzzes distributeBudget with randomized
// and adversarial cost/cap vectors and asserts its invariants hold and
// the call terminates promptly for every one of them.
func TestDistributeBudgetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xB06E7))
	randVec := func(n int, negZeroBias float64, scale float64) []float64 {
		v := make([]float64, n)
		for i := range v {
			switch r := rng.Float64(); {
			case r < negZeroBias/2:
				v[i] = 0
			case r < negZeroBias:
				v[i] = -scale * rng.Float64()
			default:
				v[i] = scale * rng.Float64()
			}
		}
		return v
	}
	for iter := 0; iter < 2000; iter++ {
		n := 1 + rng.Intn(12)
		delta := rng.Float64() * 1e4
		if iter%17 == 0 {
			delta = 0
		}
		if iter%19 == 0 {
			delta = -rng.Float64() * 100
		}
		costs := randVec(n, 0.3, 10)
		caps := randVec(n, 0.3, 1e3)
		start := time.Now()
		out := distributeBudget(delta, costs, caps)
		if time.Since(start) > time.Second {
			t.Fatalf("distributeBudget took %v on n=%d", time.Since(start), n)
		}
		checkBudgetInvariants(t, delta, costs, caps, out)
	}

	// Adversarial fixed cases: all-capped, single-active, all-excluded,
	// huge delta, tiny costs.
	cases := []struct {
		delta       float64
		costs, caps []float64
	}{
		{1e9, []float64{1, 1, 1}, []float64{1, 2, 3}},           // all-capped
		{100, []float64{0, -5, 3}, []float64{10, 10, 50}},       // single-active
		{100, []float64{0, 0}, []float64{10, 10}},               // all-excluded
		{100, []float64{1e-12, 1e12}, []float64{50, 60}},        // extreme cost spread
		{100, []float64{1, 1}, []float64{0, -1}},                // caps exclude all
		{5, []float64{2, 2, 2, 2}, []float64{1, 1, 1, 1000}},    // cascade of caps
		{0, []float64{1}, []float64{1}},                         // zero delta
		{math.MaxFloat64 / 4, []float64{1, 2}, []float64{3, 4}}, // huge delta
	}
	for i, c := range cases {
		out := distributeBudget(c.delta, c.costs, c.caps)
		checkBudgetInvariants(t, c.delta, c.costs, c.caps, out)
		_ = i
	}
}

// TestDistributeTenantBudgetProperty extends the invariants to the
// tenant level: the two-level split obeys the same sum/cap bounds, and
// as long as any tenant is over its quota, compliant tenants are never
// assigned a drop share — no matter how large the delta.
func TestDistributeTenantBudgetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7E4A47))
	const eps = 1e-6
	for iter := 0; iter < 2000; iter++ {
		n := 1 + rng.Intn(6)
		ms := make([]tenantMeasure, n)
		overCap := 0.0
		for i := range ms {
			ms[i].Rate = rng.Float64() * 1e4
			if rng.Intn(4) == 0 {
				ms[i].Rate = 0
			}
			if rng.Intn(2) == 0 {
				ms[i].Over = rng.Float64() * ms[i].Rate
			}
			ms[i].Weight = rng.Float64() * 4
			if rng.Intn(5) == 0 {
				ms[i].Weight = 0 // must default to 1, not divide by zero
			}
			ms[i].Cap = rng.Float64() * 1e4
			if rng.Intn(6) == 0 {
				ms[i].Cap = 0
			}
			overCap += math.Min(ms[i].Over, ms[i].Cap)
		}
		delta := rng.Float64() * 2e4
		if iter%13 == 0 {
			delta = 0
		}
		out := distributeTenantBudget(delta, ms)
		if len(out) != n {
			t.Fatalf("len(out) = %d, want %d", len(out), n)
		}
		sum := 0.0
		for i, v := range out {
			if v < 0 {
				t.Fatalf("out[%d] = %v < 0 (ms=%+v)", i, v, ms)
			}
			if ms[i].Cap > 0 && v > ms[i].Cap+eps {
				t.Fatalf("out[%d] = %v exceeds cap %v", i, v, ms[i].Cap)
			}
			if ms[i].Cap <= 0 && v != 0 {
				t.Fatalf("capless tenant %d got %v", i, v)
			}
			sum += v
		}
		if sum > delta+eps*math.Max(1, delta) {
			t.Fatalf("allocated %v, more than delta %v", sum, delta)
		}
		// Isolation: while any tenant is over its quota, compliant
		// tenants shed nothing — even when the delta exceeds the total
		// overage capacity (the spill stays on the over-quota tenants).
		anyOver := false
		for i := range ms {
			if ms[i].Over > 0 {
				anyOver = true
			}
		}
		if delta > 0 && anyOver {
			for i, v := range out {
				if ms[i].Over <= 0 && v > eps {
					t.Fatalf("compliant tenant %d sheds %v next to an over-quota peer (overCap %v, delta %v)",
						i, v, overCap, delta)
				}
			}
		}
	}
}
