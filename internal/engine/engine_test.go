package engine

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/queries"
	"repro/internal/runtime"
	"repro/internal/window"
)

// numTypes is the synthetic registry size used throughout these tests;
// query i matches the type pair (2i, 2i+1).
const numTypes = 8

// pairQuery builds a seq(A;B) query over the type pair (2i, 2i+1) with a
// tumbling time window.
func pairQuery(tb testing.TB, i int) queries.Query {
	tb.Helper()
	a, b := event.Type(2*i), event.Type(2*i+1)
	p, err := pattern.Compile(pattern.Pattern{
		Name: fmt.Sprintf("pair%d", i),
		Steps: []pattern.Step{
			{Types: []event.Type{a}},
			{Types: []event.Type{b}},
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return queries.Query{
		Name: fmt.Sprintf("pair%d", i),
		Window: window.Spec{
			Mode:      window.ModeTime,
			Length:    64 * event.Millisecond,
			SlideTime: 64 * event.Millisecond,
			SizeHint:  16,
		},
		Patterns: []*pattern.Compiled{p},
		NumTypes: numTypes,
	}
}

// syntheticStream emits n events cycling through the registry at one
// event per virtual millisecond.
func syntheticStream(n int) []event.Event {
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.Event{
			Seq:  uint64(i),
			TS:   event.Time(i) * event.Millisecond,
			Type: event.Type(i % numTypes),
		}
	}
	return evs
}

// runStandalone replays events through a fresh standalone pipeline and
// returns the detected complex events.
func runStandalone(tb testing.TB, q queries.Query, events []event.Event) []operator.ComplexEvent {
	tb.Helper()
	pipe, err := runtime.New(runtime.Config{
		Operator: operator.Config{Window: q.Window, Patterns: q.Patterns},
	})
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- pipe.Run(context.Background()) }()
	var out []operator.ComplexEvent
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for ce := range pipe.Out() {
			out = append(out, ce)
		}
	}()
	pipe.SubmitBatch(events)
	pipe.CloseInput()
	if err := <-done; err != nil {
		tb.Fatal(err)
	}
	<-collected
	return out
}

func TestTypeFilter(t *testing.T) {
	q := pairQuery(t, 1) // types 2, 3
	f := typeFilter(q)
	for typ := 0; typ < numTypes; typ++ {
		want := typ == 2 || typ == 3
		if f[typ] != want {
			t.Errorf("filter[%d] = %v, want %v", typ, f[typ], want)
		}
	}

	wild, err := pattern.Compile(pattern.Pattern{
		Name:  "wild",
		Steps: []pattern.Step{{Types: []event.Type{0}}, {AnyN: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wq := queries.Query{Name: "w", Window: q.Window,
		Patterns: []*pattern.Compiled{wild}, NumTypes: numTypes}
	if typeFilter(wq) != nil {
		t.Error("wildcard step must disable the filter")
	}
}

func TestDistributeBudget(t *testing.T) {
	// Proportional split, no caps hit.
	got := distributeBudget(90, []float64{1, 2}, []float64{1000, 1000})
	if math.Abs(got[0]-30) > 1e-9 || math.Abs(got[1]-60) > 1e-9 {
		t.Errorf("proportional split = %v, want [30 60]", got)
	}
	// Cap on the expensive query redistributes to the cheap one.
	got = distributeBudget(90, []float64{1, 2}, []float64{1000, 40})
	if math.Abs(got[1]-40) > 1e-9 || math.Abs(got[0]-50) > 1e-9 {
		t.Errorf("capped split = %v, want [50 40]", got)
	}
	// Zero-cost entries get nothing even under pressure.
	got = distributeBudget(90, []float64{0, 1}, []float64{1000, 1000})
	if got[0] != 0 || math.Abs(got[1]-90) > 1e-9 {
		t.Errorf("zero-cost split = %v, want [0 90]", got)
	}
	// Total demand above total capacity: everyone capped, no panic.
	got = distributeBudget(90, []float64{1, 1}, []float64{10, 20})
	if got[0] != 10 || got[1] != 20 {
		t.Errorf("over-capacity split = %v, want [10 20]", got)
	}
}

// TestEngineEquivalence is the deterministic end-to-end check: with
// shedding disabled, each query's output under the engine is identical
// to running its pipeline standalone on the query's filtered stream.
func TestEngineEquivalence(t *testing.T) {
	harness.VerifyNoLeaks(t)
	events := syntheticStream(4096)
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	const nq = 3
	handles := make([]*Query, nq)
	for i := 0; i < nq; i++ {
		h, err := e.Register(QueryConfig{Query: pairQuery(t, i)})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()
	outs := make([][]operator.ComplexEvent, nq)
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *Query) {
			defer wg.Done()
			for ce := range h.Out() {
				outs[i] = append(outs[i], ce)
			}
		}(i, h)
	}
	e.SubmitBatch(events)
	e.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i, h := range handles {
		filtered := h.FilterEvents(events)
		if want := len(events) / (numTypes / 2); len(filtered) != want {
			t.Fatalf("query %d filtered stream has %d events, want %d", i, len(filtered), want)
		}
		want := runStandalone(t, pairQuery(t, i), filtered)
		if len(want) == 0 {
			t.Fatalf("query %d standalone run detected nothing; test is vacuous", i)
		}
		if !reflect.DeepEqual(outs[i], want) {
			t.Errorf("query %d: engine output diverges from standalone:\n got %d events\nwant %d events",
				i, len(outs[i]), len(want))
			continue
		}
		// Byte-identical under the canonical complex-event rendering.
		if fmt.Sprint(outs[i]) != fmt.Sprint(want) {
			t.Errorf("query %d: rendered outputs differ", i)
		}
	}

	st := e.Stats()
	if st.Submitted != uint64(len(events)) {
		t.Errorf("Submitted = %d, want %d", st.Submitted, len(events))
	}
	perQuery := uint64(len(events) / (numTypes / 2))
	for _, qs := range st.Queries {
		if qs.Delivered != perQuery {
			t.Errorf("query %s delivered %d, want %d", qs.Name, qs.Delivered, perQuery)
		}
		if qs.Skipped != uint64(len(events))-perQuery {
			t.Errorf("query %s skipped %d, want %d", qs.Name, qs.Skipped, uint64(len(events))-perQuery)
		}
	}
}

// TestDeregisterUnderLiveTraffic removes a query mid-stream: the call
// must not deadlock, the removed query's Out must close, and the
// remaining queries must still see every one of their events.
func TestDeregisterUnderLiveTraffic(t *testing.T) {
	harness.VerifyNoLeaks(t)
	events := syntheticStream(8192)
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Query, 3)
	for i := range handles {
		h, err := e.Register(QueryConfig{Query: pairQuery(t, i)})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()
	var wg sync.WaitGroup
	for _, h := range handles {
		wg.Add(1)
		go func(h *Query) {
			defer wg.Done()
			for range h.Out() {
			}
		}(h)
	}

	half := len(events) / 2
	e.SubmitBatch(events[:half])
	deregistered := make(chan struct{})
	go func() {
		defer close(deregistered)
		if err := e.Deregister("pair1"); err != nil {
			t.Errorf("Deregister: %v", err)
		}
	}()
	select {
	case <-deregistered:
	case <-time.After(10 * time.Second):
		t.Fatal("Deregister deadlocked")
	}
	e.SubmitBatch(events[half:])
	e.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// pair0 and pair2 survive and saw their full filtered streams.
	st := e.Stats()
	if len(st.Queries) != 2 {
		t.Fatalf("got %d remaining queries, want 2", len(st.Queries))
	}
	full := uint64(len(events) / (numTypes / 2))
	for _, qs := range st.Queries {
		if qs.Delivered != full {
			t.Errorf("remaining query %s delivered %d, want %d (events lost)",
				qs.Name, qs.Delivered, full)
		}
	}
	// The removed query saw at most the first half (its pipeline drained).
	if got := handles[1].Stats().Delivered; got > uint64(half) {
		t.Errorf("removed query delivered %d, want <= %d", got, half)
	}
	// Engine-level sums stay monotonic across Deregister: they fold in
	// the removed query's lifetime counters.
	var total uint64
	for _, h := range handles {
		total += h.Stats().Delivered
	}
	if st.Delivered != total {
		t.Errorf("engine Delivered = %d, want %d (deregistered query dropped from sum)",
			st.Delivered, total)
	}
	if err := e.Deregister("pair1"); err == nil {
		t.Error("double Deregister must fail")
	}
}

// TestConcurrentRegisterSubmit hammers Register/Deregister against a
// concurrent submitter; run under -race this is the registration
// data-race check.
func TestConcurrentRegisterSubmit(t *testing.T) {
	harness.VerifyNoLeaks(t)
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register(QueryConfig{Query: pairQuery(t, 0)}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // submitter
		defer wg.Done()
		for _, ev := range syntheticStream(20000) {
			e.Submit(ev)
		}
	}()
	wg.Add(1)
	go func() { // churner
		defer wg.Done()
		for k := 0; k < 20; k++ {
			q := pairQuery(t, 1+k%3)
			q.Name = fmt.Sprintf("churn%d", k)
			h, err := e.Register(QueryConfig{Query: q, Name: q.Name})
			if err != nil {
				t.Errorf("Register: %v", err)
				return
			}
			go func() {
				for range h.Out() {
				}
			}()
			time.Sleep(time.Millisecond)
			if err := e.Deregister(q.Name); err != nil {
				t.Errorf("Deregister: %v", err)
				return
			}
		}
	}()
	go func() {
		h, _ := e.byNameSnapshot("pair0")
		if h != nil {
			for range h.Out() {
			}
		}
	}()
	wg.Wait()
	e.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// byNameSnapshot looks a handle up for tests.
func (e *Engine) byNameSnapshot(name string) (*Query, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	q, ok := e.byName[name]
	return q, ok
}

// TestRegisterErrors covers the registration error paths.
func TestRegisterErrors(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register(QueryConfig{}); err == nil {
		t.Error("unnamed query must fail")
	}
	if _, err := e.Register(QueryConfig{Query: pairQuery(t, 0), Weight: -1}); err == nil {
		t.Error("negative weight must fail")
	}
	if _, err := e.Register(QueryConfig{Query: pairQuery(t, 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register(QueryConfig{Query: pairQuery(t, 0)}); err == nil {
		t.Error("duplicate name must fail")
	}
	if _, err := New(Config{QueueCap: -1}); err == nil {
		t.Error("negative QueueCap must fail")
	}
	if _, err := New(Config{LatencyBound: event.Second, F: 2}); err == nil {
		t.Error("invalid F must fail")
	}
}

// TestEngineShardedPoolChurn runs the fan-out with a sharded query next
// to a serial one, long enough to recycle thousands of pooled windows,
// and asserts both queries still reproduce their standalone outputs
// exactly. Run with -race: it exercises the pool plumbing end to end
// (engine fan-out -> sharded router -> shards -> merge -> release).
func TestEngineShardedPoolChurn(t *testing.T) {
	harness.VerifyNoLeaks(t)
	events := syntheticStream(20000)
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := e.Register(QueryConfig{Query: pairQuery(t, 0)})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := e.Register(QueryConfig{Query: pairQuery(t, 1), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()
	outs := make(map[string][]operator.ComplexEvent)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, q := range []*Query{serial, sharded} {
		wg.Add(1)
		go func(q *Query) {
			defer wg.Done()
			var ces []operator.ComplexEvent
			for ce := range q.Out() {
				ces = append(ces, ce)
			}
			mu.Lock()
			outs[q.Name()] = ces
			mu.Unlock()
		}(q)
	}
	e.SubmitBatch(events)
	e.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, q := range []*Query{serial, sharded} {
		want := runStandalone(t, pairQuery(t, i), q.FilterEvents(events))
		got := outs[q.Name()]
		if len(got) == 0 {
			t.Fatalf("query %s detected nothing; bad test setup", q.Name())
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %s: engine output (%d) differs from standalone (%d)",
				q.Name(), len(got), len(want))
		}
	}
}

// TestQueryLifecycleComesOnline registers one query untrained under the
// online model lifecycle next to a plain query: the lifecycle query must
// train itself from its filtered traffic and swap the model into its
// shedder, while the plain query keeps receiving every event.
func TestQueryLifecycleComesOnline(t *testing.T) {
	harness.VerifyNoLeaks(t)
	eng, err := New(Config{LatencyBound: 50 * event.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lifeQ, err := eng.Register(QueryConfig{
		Query: pairQuery(t, 0),
		Lifecycle: &runtime.LifecycleConfig{
			WarmupWindows:      8,
			MinRetrainInterval: time.Millisecond,
			Interval:           time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	plainQ, err := eng.Register(QueryConfig{Query: pairQuery(t, 1)})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()
	for _, h := range []*Query{lifeQ, plainQ} {
		go func(h *Query) {
			for range h.Out() {
			}
		}(h)
	}
	events := syntheticStream(40000)
	eng.SubmitBatch(events)
	eng.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	lst := lifeQ.Pipeline().Stats().Lifecycle
	if lst == nil {
		t.Fatal("lifecycle stats missing on the lifecycle query")
	}
	if !lst.Trained || lst.Builds == 0 {
		t.Errorf("lifecycle query never came online: %+v", *lst)
	}
	// The registration-time model was nil; the live model must be the
	// lifecycle's product and carry coverage.
	if m := lifeQ.Pipeline().Lifecycle().Model(); m == nil || !m.Trained() {
		t.Error("published model missing or untrained")
	}
	// The cost estimate follows the swapped model (no spec fallback for
	// this window mode would apply without SizeHint; with it, spec wins —
	// so check the model path directly on a hint-less copy).
	if ws := lifeQ.windowSizeEstimate(); ws <= 0 {
		t.Errorf("windowSizeEstimate = %d after swap", ws)
	}
	// The plain query saw the full filtered stream: no events lost.
	want := uint64(0)
	for _, ev := range events {
		if plainQ.Accepts(ev.Type) {
			want++
		}
	}
	if got := plainQ.Stats().Delivered; got != want {
		t.Errorf("plain query delivered %d, want %d", got, want)
	}
	if st := plainQ.Pipeline().Stats(); st.Lifecycle != nil {
		t.Error("plain query unexpectedly carries lifecycle stats")
	}
}
