package engine

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/operator"
)

// TestTenantScopedDelivery pins the fan-out admission rule: a
// tenant-scoped query receives exactly its own tenant's events (other
// tenants' events count as skipped, like a type-filter rejection), an
// unscoped query receives every tenant's stream, and the scoped query's
// output is byte-identical to a standalone run over its tenant's
// filtered substream.
func TestTenantScopedDelivery(t *testing.T) {
	harness.VerifyNoLeaks(t)
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := pairQuery(t, 0)
	scoped, err := e.Register(QueryConfig{Query: q, Name: "scoped", Tenant: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := e.Register(QueryConfig{Query: pairQuery(t, 0), Name: "shared"})
	if err != nil {
		t.Fatal(err)
	}

	// Interleave two tenants' streams in blocks of 16 so each tenant's
	// substream still cycles through every type (an even/odd split
	// would starve alpha of the odd types its pattern needs).
	all := syntheticStream(2048)
	var alpha, beta []event.Event
	for i, ev := range all {
		if (i/16)%2 == 0 {
			alpha = append(alpha, ev)
		} else {
			beta = append(beta, ev)
		}
	}

	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()
	var outScoped, outShared []operator.ComplexEvent
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for ce := range scoped.Out() {
			outScoped = append(outScoped, ce)
		}
	}()
	go func() {
		defer wg.Done()
		for ce := range shared.Out() {
			outShared = append(outShared, ce)
		}
	}()
	// Submit in stream order, alternating tenants batch by batch so the
	// scoped query's substream keeps its original relative order.
	for i := 0; i < len(alpha); i += 64 {
		end := i + 64
		if end > len(alpha) {
			end = len(alpha)
		}
		e.SubmitTenantBatch("alpha", alpha[i:end])
		if i < len(beta) {
			bend := end
			if bend > len(beta) {
				bend = len(beta)
			}
			e.SubmitTenantBatch("beta", beta[i:bend])
		}
	}
	e.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	want := runStandalone(t, q, scoped.FilterEvents(alpha))
	if len(want) == 0 {
		t.Fatal("standalone run detected nothing; test is vacuous")
	}
	if !reflect.DeepEqual(outScoped, want) {
		t.Errorf("scoped query diverges from standalone over its tenant substream: got %d, want %d",
			len(outScoped), len(want))
	}
	if fmt.Sprint(outScoped) != fmt.Sprint(want) {
		t.Error("scoped query: rendered outputs differ")
	}
	if len(outShared) == 0 {
		t.Error("unscoped query saw no complex events")
	}

	st := e.Stats()
	sstats := scoped.Stats()
	// The scoped query skipped every beta event plus alpha's filtered
	// types; it delivered exactly its filtered alpha substream.
	if wantDel := uint64(len(scoped.FilterEvents(alpha))); sstats.Delivered != wantDel {
		t.Errorf("scoped delivered %d events, want %d", sstats.Delivered, wantDel)
	}
	if wantSkip := uint64(len(alpha) + len(beta) - len(scoped.FilterEvents(alpha))); sstats.Skipped != wantSkip {
		t.Errorf("scoped skipped %d events, want %d", sstats.Skipped, wantSkip)
	}
	byName := map[string]TenantStats{}
	for _, ts := range st.Tenants {
		byName[ts.Name] = ts
	}
	if got := byName["alpha"].Submitted; got != uint64(len(alpha)) {
		t.Errorf("tenant alpha submitted %d, want %d", got, len(alpha))
	}
	if got := byName["beta"].Submitted; got != uint64(len(beta)) {
		t.Errorf("tenant beta submitted %d, want %d", got, len(beta))
	}
	if got := byName["alpha"].Delivered; got != sstats.Delivered {
		t.Errorf("tenant alpha rolled-up delivered %d, want %d", got, sstats.Delivered)
	}
	if byName["alpha"].ComplexEvents == 0 {
		t.Error("tenant alpha rolled up zero complex events")
	}
}

// TestTenantQuotaConfig covers quota installation paths: Config.Tenants
// up front, SetTenantQuota live, and the Stats echo.
func TestTenantQuotaConfig(t *testing.T) {
	e, err := New(Config{Tenants: map[string]TenantQuota{
		"alpha": {Rate: 1000, Weight: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	e.SetTenantQuota("beta", TenantQuota{Rate: 500})
	st := e.Stats()
	byName := map[string]TenantStats{}
	for _, ts := range st.Tenants {
		byName[ts.Name] = ts
	}
	if q := byName["alpha"]; q.QuotaRate != 1000 || q.Weight != 2 {
		t.Errorf("alpha quota = %+v, want Rate 1000 Weight 2", q)
	}
	if q := byName["beta"]; q.QuotaRate != 500 {
		t.Errorf("beta quota = %+v, want Rate 500", q)
	}
	if _, ok := byName[""]; !ok {
		t.Error("default tenant missing from stats")
	}
}

// TestDistributeTenantBudget pins the two-level tenant split: overage
// first, compliant tenants protected, weighted remainder.
func TestDistributeTenantBudget(t *testing.T) {
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

	// Overage absorbs the whole delta: the compliant tenant sheds zero.
	ms := []tenantMeasure{
		{Over: 900, Rate: 1000, Weight: 1, Cap: 1000}, // noisy: 10x over
		{Over: 0, Rate: 100, Weight: 1, Cap: 100},     // compliant
	}
	got := distributeTenantBudget(300, ms)
	if !approx(got[0], 300) || got[1] != 0 {
		t.Errorf("overage-first split = %v, want [300 0]", got)
	}

	// Delta beyond the total overage spills further into the over-quota
	// tenant — up to its full capacity — and never onto the compliant
	// one: the quota is an isolation contract.
	got = distributeTenantBudget(1000, ms)
	if !approx(got[0], 1000) {
		t.Errorf("noisy tenant got %v, want its full 1000 capacity", got[0])
	}
	if got[1] != 0 {
		t.Errorf("spill hit the compliant tenant for %v, want 0", got[1])
	}

	// Weight shields: same rates, tenant 0 has weight 4 so it sheds a
	// quarter as readily in the weighted level.
	ms = []tenantMeasure{
		{Rate: 1000, Weight: 4, Cap: 1000},
		{Rate: 1000, Weight: 1, Cap: 1000},
	}
	got = distributeTenantBudget(500, ms)
	if !approx(got[1]/got[0], 4) {
		t.Errorf("weighted split ratio = %v (%v), want 4x on the light tenant", got[1]/got[0], got)
	}

	// Allocation never exceeds caps, and with an over-quota tenant
	// saturated the compliant tenant still sheds nothing: the remainder
	// stays unassigned rather than leak across the quota boundary.
	ms = []tenantMeasure{
		{Over: 50, Rate: 100, Weight: 1, Cap: 10},
		{Over: 0, Rate: 10, Weight: 1, Cap: 5},
	}
	got = distributeTenantBudget(1000, ms)
	if !approx(got[0], 10) {
		t.Errorf("noisy tenant got %v, want its full 10 cap", got[0])
	}
	if got[1] != 0 {
		t.Errorf("compliant tenant got %v despite an over-quota peer, want 0", got[1])
	}
}
