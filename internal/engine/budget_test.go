package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/harness"
)

// TestGlobalBudgetSheds drives two model-backed queries into sustained
// overload (every kept membership costs a fixed delay) and checks that
// the global budget activates both shedders and that the higher-weight
// query sheds a smaller fraction of its traffic.
func TestGlobalBudgetSheds(t *testing.T) {
	harness.VerifyNoLeaks(t)
	const delay = 100 * time.Microsecond
	training := syntheticStream(16384)
	e, err := New(Config{
		LatencyBound: event.Time(200 * 1000), // 200ms in microseconds
		F:            0.5,
		PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	weights := []float64{4, 1}
	handles := make([]*Query, 2)
	for i := range handles {
		q := pairQuery(t, i)
		// Train on the query's filtered stream so model coordinates match
		// what the engine delivers.
		filter := typeFilter(q)
		var filtered []event.Event
		for _, ev := range training {
			if filter[ev.Type] {
				filtered = append(filtered, ev)
			}
		}
		tr, err := harness.Train(q, filtered, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		h, err := e.Register(QueryConfig{
			Query:           q,
			Model:           tr.Model,
			Weight:          weights[i],
			ProcessingDelay: delay,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()
	for _, h := range handles {
		go func(h *Query) {
			for range h.Out() {
			}
		}(h)
	}

	// Feed at ~1.5x aggregate capacity: each query keeps at most
	// 1/delay = 10k memberships/s, receives 1/4 of the stream, so a
	// 60k ev/s ingress rate overloads both.
	events := syntheticStream(30000)
	start := time.Now()
	const rate = 60000.0
	sawOverload := false
	for i := 0; i < len(events); i += 256 {
		if d := time.Until(start.Add(time.Duration(float64(i) / rate * float64(time.Second)))); d > 0 {
			time.Sleep(d)
		}
		end := i + 256
		if end > len(events) {
			end = len(events)
		}
		e.SubmitBatch(events[i:end])
		if st := e.Stats(); st.Overloaded && st.DropRate > 0 {
			sawOverload = true
		}
	}
	e.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if !sawOverload {
		t.Error("global budget never reported overload")
	}
	shed := make([]uint64, 2)
	members := make([]uint64, 2)
	for i, h := range handles {
		st := h.Stats()
		shed[i] = st.Pipeline.Operator.MembershipsShed
		members[i] = st.Pipeline.Operator.Memberships
		if shed[i] == 0 {
			t.Errorf("query %s shed nothing under sustained overload: %+v",
				st.Name, st.Pipeline.Operator)
		}
	}
	if shed[0] > 0 && shed[1] > 0 {
		frac0 := float64(shed[0]) / float64(members[0])
		frac1 := float64(shed[1]) / float64(members[1])
		if frac0 >= frac1 {
			t.Errorf("weight-4 query shed fraction %.3f >= weight-1 fraction %.3f; "+
				"budget ignored weights", frac0, frac1)
		}
	}
}
