package engine

import (
	"context"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/operator"
	"repro/internal/window"
)

// collectOut drains a query's output channel on a goroutine and returns
// a fetch function that waits for the channel to close.
func collectOut(q *Query) func() []operator.ComplexEvent {
	ch := make(chan []operator.ComplexEvent, 1)
	go func() {
		var out []operator.ComplexEvent
		for ce := range q.Out() {
			out = append(out, ce)
		}
		ch <- out
	}()
	return func() []operator.ComplexEvent { return <-ch }
}

// waitQuarantined polls the engine until the named query shows the
// wanted panic count in Stats().Quarantined.
func waitQuarantined(t *testing.T, e *Engine, name string, panics uint64) QuarantineStats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, rec := range e.Stats().Quarantined {
			if rec.Name == name && rec.Panics >= panics {
				return rec
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("query %s never reached %d quarantines; stats: %+v",
		name, panics, e.Stats().Quarantined)
	return QuarantineStats{}
}

// TestEngineQuarantineIsolation registers a healthy serial query next to
// a sharded query whose OnWindowClose hook panics mid-stream: the engine
// must survive, auto-deregister the panicking query, record the panic in
// Stats, and the healthy query's output must be byte-identical to a run
// with no fault anywhere. Run with -race.
func TestEngineQuarantineIsolation(t *testing.T) {
	harness.VerifyNoLeaks(t)
	events := syntheticStream(8192)
	half := len(events) / 2

	// Baseline: the healthy query alone, no fault in the process.
	base, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	baseQ, err := base.Register(QueryConfig{Query: pairQuery(t, 0)})
	if err != nil {
		t.Fatal(err)
	}
	baseDone := make(chan error, 1)
	go func() { baseDone <- base.Run(context.Background()) }()
	baseFetch := collectOut(baseQ)
	base.SubmitBatch(events)
	base.CloseInput()
	if err := <-baseDone; err != nil {
		t.Fatal(err)
	}
	want := baseFetch()
	if len(want) == 0 {
		t.Fatal("baseline detected nothing; test is vacuous")
	}

	// Faulted run: same healthy query, plus a sharded sibling that
	// panics in its window-close hook partway through the first half.
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := e.Register(QueryConfig{Query: pairQuery(t, 0)})
	if err != nil {
		t.Fatal(err)
	}
	var closes atomic.Int64
	faulty, err := e.Register(QueryConfig{
		Query:  pairQuery(t, 1),
		Shards: 2,
		OnWindowClose: func(w *window.Window, matched []window.Entry) {
			if closes.Add(1) == 3 {
				panic("faulty query boom")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()
	healthyFetch := collectOut(healthy)
	faultyFetch := collectOut(faulty)

	e.SubmitBatch(events[:half])
	rec := waitQuarantined(t, e, "pair1", 1)
	if rec.Error == "" || rec.Stack == "" || rec.Since.IsZero() {
		t.Errorf("quarantine record incomplete: %+v", rec)
	}
	if rec.Restarting {
		t.Error("Restarting set with no RestartCooldown configured")
	}
	// The quarantined query is out of the routing table (auto
	// deregistered); its Out has closed.
	if _, ok := e.byNameSnapshot("pair1"); ok {
		t.Error("quarantined query still registered")
	}
	faultyFetch()

	// Traffic keeps flowing to the survivor.
	e.SubmitBatch(events[half:])
	e.CloseInput()
	if err := <-done; err != nil {
		t.Fatalf("engine Run returned %v after a contained panic", err)
	}
	got := healthyFetch()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("healthy query diverged from no-fault run: %d vs %d complex events",
			len(got), len(want))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatal("healthy query output not byte-identical to no-fault run")
	}

	st := e.Stats()
	if len(st.Queries) != 1 || st.Queries[0].Name != "pair0" {
		t.Errorf("surviving query list = %+v", st.Queries)
	}
	if len(st.Quarantined) != 1 || st.Quarantined[0].Name != "pair1" ||
		st.Quarantined[0].Panics != 1 {
		t.Errorf("Quarantined = %+v", st.Quarantined)
	}
	// Engine-level delivered stays monotonic: the quarantined query's
	// pre-panic deliveries were folded into the retired totals.
	if st.Delivered < uint64(len(want)) {
		t.Errorf("engine Delivered = %d looks reset", st.Delivered)
	}
}

// TestEngineQuarantineRestart exercises the circuit breaker: a query
// that panics on every window close is restarted once after the
// cool-down, panics again, and then stays quarantined (MaxRestarts=1).
func TestEngineQuarantineRestart(t *testing.T) {
	harness.VerifyNoLeaks(t)
	e, err := New(Config{
		RestartCooldown: 2 * time.Millisecond,
		MaxRestarts:     1,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := e.Register(QueryConfig{Query: pairQuery(t, 0)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Register(QueryConfig{
		Query: pairQuery(t, 1),
		OnWindowClose: func(w *window.Window, matched []window.Entry) {
			panic("always boom")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()
	healthyFetch := collectOut(healthy)

	// Feed traffic until the breaker has tripped twice: quarantine,
	// restart, quarantine again. The restarted incarnation needs fresh
	// windows to close, so keep the stream flowing with advancing
	// timestamps, generated chunk by chunk.
	var rec QuarantineStats
	next := 0
	chunk := make([]event.Event, 512)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never completed: %+v", rec)
		}
		for i := range chunk {
			chunk[i] = event.Event{
				Seq:  uint64(next),
				TS:   event.Time(next) * event.Millisecond,
				Type: event.Type(next % numTypes),
			}
			next++
		}
		e.SubmitBatch(chunk)
		st := e.Stats()
		if len(st.Quarantined) == 1 {
			rec = st.Quarantined[0]
			if rec.Panics >= 2 && !rec.Restarting {
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	if rec.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1 (MaxRestarts)", rec.Restarts)
	}
	// Breaker exhausted: the faulty query must stay out of the table.
	time.Sleep(10 * time.Millisecond)
	if _, ok := e.byNameSnapshot("pair1"); ok {
		t.Error("query re-registered beyond MaxRestarts")
	}

	e.CloseInput()
	if err := <-done; err != nil {
		t.Fatalf("engine Run returned %v", err)
	}
	if out := healthyFetch(); len(out) == 0 {
		t.Error("healthy query starved during breaker churn")
	}
	if st := e.Stats(); len(st.Queries) != 1 || st.Queries[0].Name != "pair0" {
		t.Errorf("surviving queries = %+v", st.Queries)
	}
}
