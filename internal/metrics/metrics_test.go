package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/operator"
	"repro/internal/window"
)

func ce(win uint64, seqs ...uint64) operator.ComplexEvent {
	return operator.ComplexEvent{WindowID: window.ID(win), Constituents: seqs}
}

func TestCompareQualityPerfect(t *testing.T) {
	truth := []operator.ComplexEvent{ce(0, 1, 2), ce(1, 3, 4)}
	q := CompareQuality(truth, truth)
	if q.FalseNegatives != 0 || q.FalsePositives != 0 {
		t.Errorf("perfect run: %+v", q)
	}
	if q.FNPct() != 0 || q.FPPct() != 0 {
		t.Errorf("percentages: %v/%v", q.FNPct(), q.FPPct())
	}
}

func TestCompareQualityMissingAndExtra(t *testing.T) {
	truth := []operator.ComplexEvent{ce(0, 1, 2), ce(1, 3, 4), ce(2, 5, 6), ce(3, 7, 8)}
	detected := []operator.ComplexEvent{
		ce(0, 1, 2), // correct
		ce(1, 3, 9), // shifted constituents: FP + FN
		ce(4, 1, 1), // extra window: FP
	}
	q := CompareQuality(truth, detected)
	if q.FalseNegatives != 3 {
		t.Errorf("FN = %d, want 3", q.FalseNegatives)
	}
	if q.FalsePositives != 2 {
		t.Errorf("FP = %d, want 2", q.FalsePositives)
	}
	if got := q.FNPct(); math.Abs(got-75) > 1e-9 {
		t.Errorf("FNPct = %v, want 75", got)
	}
	if got := q.FPPct(); math.Abs(got-50) > 1e-9 {
		t.Errorf("FPPct = %v, want 50", got)
	}
	if !strings.Contains(q.String(), "FN=3") {
		t.Errorf("String() = %q", q.String())
	}
}

func TestCompareQualityEmptyTruth(t *testing.T) {
	q := CompareQuality(nil, []operator.ComplexEvent{ce(0, 1)})
	if q.FNPct() != 0 || q.FPPct() != 0 {
		t.Error("empty truth percentages must be 0 (no denominator)")
	}
	if q.FalsePositives != 1 {
		t.Errorf("FP = %d", q.FalsePositives)
	}
}

func TestCompareQualityDuplicateKeysCollapse(t *testing.T) {
	// Identical complex events in the same window collapse to one key.
	truth := []operator.ComplexEvent{ce(0, 1, 2), ce(0, 1, 2)}
	q := CompareQuality(truth, nil)
	if q.FalseNegatives != 1 {
		t.Errorf("FN = %d, want 1 (unique keys)", q.FalseNegatives)
	}
}

func TestLatencyTraceBasics(t *testing.T) {
	var l LatencyTrace
	if l.Len() != 0 || l.Max() != 0 || l.Mean() != 0 || l.Percentile(50) != 0 {
		t.Error("empty trace must be all zeros")
	}
	samples := []event.Time{
		100 * event.Millisecond,
		200 * event.Millisecond,
		300 * event.Millisecond,
		400 * event.Millisecond,
	}
	for i, s := range samples {
		l.Add(event.Time(i)*event.Second, s)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Max() != 400*event.Millisecond {
		t.Errorf("Max = %v", l.Max())
	}
	if l.Mean() != 250*event.Millisecond {
		t.Errorf("Mean = %v", l.Mean())
	}
	if got := l.Percentile(0); got != 100*event.Millisecond {
		t.Errorf("P0 = %v", got)
	}
	if got := l.Percentile(100); got != 400*event.Millisecond {
		t.Errorf("P100 = %v", got)
	}
	if got := l.Percentile(50); got != 250*event.Millisecond {
		t.Errorf("P50 = %v", got)
	}
}

func TestLatencyViolations(t *testing.T) {
	var l LatencyTrace
	l.Add(0, 900*event.Millisecond)
	l.Add(event.Second, 1100*event.Millisecond)
	l.Add(2*event.Second, event.Second) // exactly at bound: not a violation
	if got := l.ViolationCount(event.Second); got != 1 {
		t.Errorf("violations = %d, want 1", got)
	}
}

func TestBucketize(t *testing.T) {
	var l LatencyTrace
	// Two samples in second 0, one in second 2, none in second 1.
	l.Add(100*event.Millisecond, 10*event.Millisecond)
	l.Add(900*event.Millisecond, 30*event.Millisecond)
	l.Add(2500*event.Millisecond, 50*event.Millisecond)
	times, means := l.Bucketize(event.Second)
	if len(times) != 2 {
		t.Fatalf("buckets = %d, want 2", len(times))
	}
	if times[0] != 0 || means[0] != 20*event.Millisecond {
		t.Errorf("bucket0 = %v/%v", times[0], means[0])
	}
	if times[1] != 2*event.Second || means[1] != 50*event.Millisecond {
		t.Errorf("bucket1 = %v/%v", times[1], means[1])
	}
	// Degenerate inputs.
	if ts, _ := l.Bucketize(0); ts != nil {
		t.Error("bucket=0 must return nil")
	}
	var empty LatencyTrace
	if ts, _ := empty.Bucketize(event.Second); ts != nil {
		t.Error("empty trace must return nil")
	}
}

func TestLatencySummary(t *testing.T) {
	var l LatencyTrace
	for i := 1; i <= 100; i++ {
		l.Add(event.Time(i)*event.Millisecond, event.Time(i)*event.Millisecond)
	}
	s := l.Summary()
	if s.Count != 100 {
		t.Errorf("count = %d", s.Count)
	}
	if s.MaxUS != float64(100*event.Millisecond) {
		t.Errorf("max = %v", s.MaxUS)
	}
	if s.P50US <= 0 || s.P50US > s.P95US || s.P95US > s.P99US || s.P99US > s.MaxUS {
		t.Errorf("percentiles disordered: %+v", s)
	}
	if s.MeanUS != float64(l.Mean()) {
		t.Errorf("mean = %v, want %v", s.MeanUS, float64(l.Mean()))
	}
	// JSON field names are the artifact contract.
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"} {
		if !strings.Contains(string(blob), `"`+key+`"`) {
			t.Errorf("summary JSON lacks %q: %s", key, blob)
		}
	}

	var empty LatencyTrace
	if s := empty.Summary(); s.Count != 0 || s.MaxUS != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestLatencyTraceDecimate(t *testing.T) {
	var l LatencyTrace
	for i := 0; i < 9; i++ {
		l.Add(event.Time(i), event.Time(i*10))
	}
	l.Decimate()
	if l.Len() != 5 {
		t.Fatalf("len = %d, want 5", l.Len())
	}
	// Survivors are the even-indexed samples, still uniformly spread.
	if l.lat[0] != 0 || l.lat[1] != 20 || l.lat[4] != 80 {
		t.Errorf("decimated lat = %v", l.lat)
	}
	if l.at[2] != 4 {
		t.Errorf("decimated at = %v", l.at)
	}
	var empty LatencyTrace
	empty.Decimate() // must not panic
}
