// Package metrics computes the quality-of-results and latency statistics
// of the eSPICE evaluation: false positives and false negatives against a
// ground-truth run (Section 2.1) and per-event latency traces against the
// latency bound (Figure 7).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/event"
	"repro/internal/operator"
)

// Quality summarizes a comparison between a ground-truth run (no
// shedding) and a shedding run over the same windows.
type Quality struct {
	Truth          int // complex events in the ground truth
	Detected       int // complex events in the shedding run
	FalseNegatives int // in truth, missing from detected
	FalsePositives int // detected, missing from truth
}

// FNPct returns the percentage of false negatives relative to the ground
// truth (the y-axis of Figures 5, 8, 9).
func (q Quality) FNPct() float64 {
	if q.Truth == 0 {
		return 0
	}
	return 100 * float64(q.FalseNegatives) / float64(q.Truth)
}

// FPPct returns the percentage of false positives relative to the ground
// truth (the y-axis of Figure 6).
func (q Quality) FPPct() float64 {
	if q.Truth == 0 {
		return 0
	}
	return 100 * float64(q.FalsePositives) / float64(q.Truth)
}

// String renders the quality compactly.
func (q Quality) String() string {
	return fmt.Sprintf("truth=%d detected=%d FN=%d (%.1f%%) FP=%d (%.1f%%)",
		q.Truth, q.Detected, q.FalseNegatives, q.FNPct(), q.FalsePositives, q.FPPct())
}

// CompareQuality matches the two complex-event sets by identity
// (window id + constituent sequence numbers). A detected complex event
// counts as correct only if the exact same constituents were detected in
// the ground truth for the same window — the strict definition used in
// the paper's running example (Section 2.1), where a shifted match counts
// as one false positive plus false negatives.
func CompareQuality(truth, detected []operator.ComplexEvent) Quality {
	q := Quality{Truth: len(truth), Detected: len(detected)}
	truthKeys := make(map[string]struct{}, len(truth))
	for _, c := range truth {
		truthKeys[c.Key()] = struct{}{}
	}
	detKeys := make(map[string]struct{}, len(detected))
	for _, c := range detected {
		detKeys[c.Key()] = struct{}{}
	}
	for k := range truthKeys {
		if _, ok := detKeys[k]; !ok {
			q.FalseNegatives++
		}
	}
	for k := range detKeys {
		if _, ok := truthKeys[k]; !ok {
			q.FalsePositives++
		}
	}
	return q
}

// LatencyTrace records per-event latencies over (wall-clock) time.
type LatencyTrace struct {
	at  []event.Time // completion time of the event
	lat []event.Time // latency = completion - arrival
}

// Add appends one sample.
func (l *LatencyTrace) Add(at, latency event.Time) {
	l.at = append(l.at, at)
	l.lat = append(l.lat, latency)
}

// Len reports the number of samples.
func (l *LatencyTrace) Len() int { return len(l.lat) }

// Merge appends all samples of other to l; the statistics (Mean, Max,
// Percentile, ViolationCount, Bucketize) are insensitive to the
// resulting sample order, so traces recorded by concurrent shards can
// simply be concatenated.
func (l *LatencyTrace) Merge(other *LatencyTrace) {
	l.at = append(l.at, other.at...)
	l.lat = append(l.lat, other.lat...)
}

// Max returns the maximum latency, 0 when empty.
func (l *LatencyTrace) Max() event.Time {
	var m event.Time
	for _, v := range l.lat {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the mean latency, 0 when empty.
func (l *LatencyTrace) Mean() event.Time {
	if len(l.lat) == 0 {
		return 0
	}
	var sum int64
	for _, v := range l.lat {
		sum += int64(v)
	}
	return event.Time(sum / int64(len(l.lat)))
}

// LatencySummary condenses a trace into the fixed set of statistics the
// load generator and the ingest server report. All latencies are in
// microseconds; the JSON field names are the wire/artifact contract
// (cmd/espice-loadgen writes this next to BENCH_results.json in CI).
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// Summary computes the condensed statistics of the trace with a single
// sort of one copy, so live deployments can serve it per stats request
// without re-sorting per percentile.
func (l *LatencyTrace) Summary() LatencySummary {
	if len(l.lat) == 0 {
		return LatencySummary{}
	}
	sorted := append([]event.Time(nil), l.lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(p float64) float64 {
		idx := int(p / 100 * float64(len(sorted)-1))
		return float64(sorted[idx])
	}
	return LatencySummary{
		Count:  len(sorted),
		MeanUS: float64(l.Mean()),
		P50US:  at(50),
		P95US:  at(95),
		P99US:  at(99),
		MaxUS:  float64(sorted[len(sorted)-1]),
	}
}

// Decimate drops every second sample in place, halving the trace.
// Long-running pipelines call it (doubling their sampling stride at the
// same time) to keep the trace bounded while the remaining samples stay
// uniformly spread over the run.
func (l *LatencyTrace) Decimate() {
	n := 0
	for i := 0; i < len(l.lat); i += 2 {
		l.at[n], l.lat[n] = l.at[i], l.lat[i]
		n++
	}
	l.at, l.lat = l.at[:n], l.lat[:n]
}

// Percentile returns the p-th percentile latency (p in [0,100]).
func (l *LatencyTrace) Percentile(p float64) event.Time {
	if len(l.lat) == 0 {
		return 0
	}
	sorted := append([]event.Time(nil), l.lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo] + event.Time(frac*float64(sorted[hi]-sorted[lo]))
}

// Bucketize averages the trace into second-sized buckets of completion
// time: the series plotted in Figure 7. It returns bucket start times and
// mean latencies.
func (l *LatencyTrace) Bucketize(bucket event.Time) (times, means []event.Time) {
	if bucket <= 0 || len(l.at) == 0 {
		return nil, nil
	}
	type acc struct {
		sum int64
		n   int64
	}
	buckets := make(map[int64]*acc)
	var maxB int64
	for i, at := range l.at {
		b := int64(at / bucket)
		a := buckets[b]
		if a == nil {
			a = &acc{}
			buckets[b] = a
		}
		a.sum += int64(l.lat[i])
		a.n++
		if b > maxB {
			maxB = b
		}
	}
	for b := int64(0); b <= maxB; b++ {
		if a, ok := buckets[b]; ok {
			times = append(times, event.Time(b)*bucket)
			means = append(means, event.Time(a.sum/a.n))
		}
	}
	return times, means
}

// ViolationCount reports how many samples exceed the bound.
func (l *LatencyTrace) ViolationCount(bound event.Time) int {
	n := 0
	for _, v := range l.lat {
		if v > bound {
			n++
		}
	}
	return n
}
