// Package sim is a deterministic discrete-event simulation of the eSPICE
// deployment of Figure 1: events arrive at a configurable input rate R
// into the operator's FIFO queue, a single-threaded operator serves them
// at throughput th, and the overload detector polls the queue
// periodically to drive a load shedder. It reproduces the queueing
// dynamics of Section 3.4 — including the latency-bound experiment of
// Figure 7 — without wall clocks or goroutines, so results are exactly
// repeatable.
//
// Time bases: *event time* (the timestamps inside events, which windows
// are defined over) advances at the dataset's native rate; *wall-clock
// time* (arrivals, queueing, service) advances at the replay rate R. This
// mirrors the paper's setup of streaming a recorded dataset into the
// operator faster than it can process.
package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/operator"
)

// Controller reacts to overload-detector decisions, typically by
// (de)activating a load shedder. Implementations for eSPICE, BL and the
// random shedder live in internal/harness.
type Controller interface {
	OnDecision(dec core.Decision)
}

// Config parameterizes a simulation run.
type Config struct {
	// Rate is the arrival rate R in events per wall-clock second.
	Rate float64
	// Throughput is th: events the operator can process per second when
	// no shedding is active.
	Throughput float64
	// MembershipFactor is the average number of window memberships per
	// event in the unshed stream (measured during training). Service time
	// is Membership-proportional: an event whose memberships were all
	// shed costs almost nothing, which is how shedding relieves the
	// operator. Values <= 0 default to 1.
	MembershipFactor float64
	// Detector, when non-nil, is polled every PollPeriod of wall-clock
	// time and its decision forwarded to Controller.
	Detector *core.OverloadDetector
	// PollPeriod defaults to 10ms.
	PollPeriod event.Time
	// ShedOverheadFrac models the O(1) shedder decision cost per *shed*
	// membership as a fraction of the per-membership processing cost;
	// the lookup for kept memberships is subsumed in their processing
	// cost (Figure 10 reports the total overhead below 5%). Default 0.01.
	ShedOverheadFrac float64
	// RecordLatency enables the per-event latency trace.
	RecordLatency bool
}

func (c *Config) applyDefaults() {
	if c.MembershipFactor <= 0 {
		c.MembershipFactor = 1
	}
	if c.PollPeriod <= 0 {
		c.PollPeriod = 10 * event.Millisecond
	}
	if c.ShedOverheadFrac == 0 {
		c.ShedOverheadFrac = 0.01
	}
}

func (c *Config) validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("sim: Rate must be > 0, got %v", c.Rate)
	}
	if c.Throughput <= 0 {
		return fmt.Errorf("sim: Throughput must be > 0, got %v", c.Throughput)
	}
	if c.ShedOverheadFrac < 0 {
		return fmt.Errorf("sim: ShedOverheadFrac must be >= 0, got %v", c.ShedOverheadFrac)
	}
	return nil
}

// Result carries the outputs of a run.
type Result struct {
	Complex  []operator.ComplexEvent
	Latency  metrics.LatencyTrace
	MaxQueue int
	Served   int
	// WallEnd is the wall-clock completion time of the last event.
	WallEnd event.Time
}

// Run replays events (in stream order, event timestamps untouched) into
// the operator at cfg.Rate and returns the detected complex events plus
// queueing metrics. ctrl may be nil when no detector is configured.
func Run(cfg Config, events []event.Event, op *operator.Operator, ctrl Controller) (*Result, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if op == nil {
		return nil, fmt.Errorf("sim: operator is required")
	}
	if cfg.Detector != nil && ctrl == nil {
		return nil, fmt.Errorf("sim: detector configured without controller")
	}
	res := &Result{}
	if len(events) == 0 {
		return res, nil
	}

	perMember := 1 / (cfg.Throughput * cfg.MembershipFactor)
	overhead := cfg.ShedOverheadFrac * perMember
	pollSec := cfg.PollPeriod.Seconds()

	arrive := func(j int) float64 { return float64(j) / cfg.Rate }
	inf := math.Inf(1)

	i := 0    // next arrival index
	head := 0 // next event to serve
	serverFree := 0.0
	nextPoll := pollSec

	for head < len(events) {
		tArr := inf
		if i < len(events) {
			tArr = arrive(i)
		}
		tServe := inf
		if head < i {
			tServe = math.Max(arrive(head), serverFree)
		}
		tPoll := inf
		if cfg.Detector != nil {
			tPoll = nextPoll
		}

		switch {
		case tArr <= tServe && tArr <= tPoll:
			// Arrival: the event joins the queue.
			i++
			if q := i - head; q > res.MaxQueue {
				res.MaxQueue = q
			}
		case tPoll <= tServe:
			// Detector poll: queue length is arrived-but-unserved.
			qsize := i - head
			ws := op.WindowManager().ExpectedSize()
			dec := cfg.Detector.Evaluate(qsize, cfg.Rate, cfg.Throughput, ws)
			ctrl.OnDecision(dec)
			nextPoll += pollSec
		default:
			// Service: shedding decisions happen as the LS processes the
			// event out of the queue; service cost is proportional to the
			// memberships that survive.
			e := events[head]
			before := op.Stats()
			cplx := op.Process(e)
			after := op.Stats()
			kept := after.MembershipsKept - before.MembershipsKept
			shed := after.MembershipsShed - before.MembershipsShed
			dur := perMember*float64(kept) + overhead*float64(shed)
			serverFree = tServe + dur
			res.Served++
			if cfg.RecordLatency {
				lat := serverFree - arrive(head)
				res.Latency.Add(toTime(serverFree), toTime(lat))
			}
			res.Complex = append(res.Complex, cplx...)
			head++
		}
	}
	res.WallEnd = toTime(serverFree)
	res.Complex = append(res.Complex, op.Flush(events[len(events)-1].TS)...)
	return res, nil
}

func toTime(sec float64) event.Time {
	return event.Time(sec * float64(event.Second))
}

// ReplayUnshed pushes every event straight through the operator with no
// queueing model — the ground-truth and training passes. It returns all
// detected complex events.
func ReplayUnshed(events []event.Event, op *operator.Operator) ([]operator.ComplexEvent, error) {
	if op == nil {
		return nil, fmt.Errorf("sim: operator is required")
	}
	var out []operator.ComplexEvent
	for _, e := range events {
		out = append(out, op.Process(e)...)
	}
	if len(events) > 0 {
		out = append(out, op.Flush(events[len(events)-1].TS)...)
	}
	return out, nil
}
