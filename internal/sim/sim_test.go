package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/window"
)

const (
	typeA = event.Type(0)
	typeB = event.Type(1)
)

func testOperator(t *testing.T, shed operator.Decider) *operator.Operator {
	t.Helper()
	p := pattern.MustCompile(pattern.Pattern{
		Name: "seq(A;B)",
		Steps: []pattern.Step{
			{Types: []event.Type{typeA}},
			{Types: []event.Type{typeB}},
		},
	})
	op, err := operator.New(operator.Config{
		Window:   window.Spec{Mode: window.ModeCount, Count: 10, Slide: 10},
		Patterns: []*pattern.Compiled{p},
		Shedder:  shed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func mkStream(n int, ratePerSec float64) []event.Event {
	out := make([]event.Event, n)
	for i := range out {
		out[i] = event.Event{
			Seq:  uint64(i),
			Type: event.Type(i % 2),
			TS:   event.Time(float64(i) / ratePerSec * float64(event.Second)),
		}
	}
	return out
}

func TestRunValidation(t *testing.T) {
	op := testOperator(t, nil)
	if _, err := Run(Config{Rate: 0, Throughput: 1}, nil, op, nil); err == nil {
		t.Error("Rate=0 must fail")
	}
	if _, err := Run(Config{Rate: 1, Throughput: 0}, nil, op, nil); err == nil {
		t.Error("Throughput=0 must fail")
	}
	if _, err := Run(Config{Rate: 1, Throughput: 1}, nil, nil, nil); err == nil {
		t.Error("nil operator must fail")
	}
	det, _ := core.NewOverloadDetector(core.DetectorConfig{LatencyBound: event.Second, F: 0.8})
	if _, err := Run(Config{Rate: 1, Throughput: 1, Detector: det}, nil, op, nil); err == nil {
		t.Error("detector without controller must fail")
	}
	if _, err := Run(Config{Rate: 1, Throughput: 1, ShedOverheadFrac: -1}, nil, op, nil); err == nil {
		t.Error("negative overhead must fail")
	}
}

func TestRunEmptyStream(t *testing.T) {
	op := testOperator(t, nil)
	res, err := Run(Config{Rate: 100, Throughput: 100}, nil, op, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 0 || len(res.Complex) != 0 {
		t.Errorf("empty stream result: %+v", res)
	}
}

func TestUnderloadedLatencyBounded(t *testing.T) {
	// R < th: queue never builds, latency stays near l(p).
	op := testOperator(t, nil)
	events := mkStream(2000, 100)
	res, err := Run(Config{
		Rate: 100, Throughput: 200, RecordLatency: true,
	}, events, op, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 2000 {
		t.Fatalf("served = %d", res.Served)
	}
	if res.MaxQueue > 2 {
		t.Errorf("MaxQueue = %d, want <= 2 when underloaded", res.MaxQueue)
	}
	// l(p) = 1/200 = 5ms.
	if res.Latency.Max() > 20*event.Millisecond {
		t.Errorf("max latency = %v, want ~5ms", res.Latency.Max())
	}
	// Complex events detected (stream alternates A,B: every window matches).
	if len(res.Complex) != 200 {
		t.Errorf("complex = %d, want 200", len(res.Complex))
	}
}

func TestOverloadWithoutSheddingQueueGrows(t *testing.T) {
	op := testOperator(t, nil)
	events := mkStream(5000, 100)
	res, err := Run(Config{
		Rate: 120, Throughput: 100, RecordLatency: true,
	}, events, op, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 5000 events at +20% overload: backlog ≈ (1/100-1/120)*5000... the
	// queue grows roughly linearly to ~ 5000*(1 - 100/120) ≈ 833.
	if res.MaxQueue < 500 {
		t.Errorf("MaxQueue = %d, want substantial backlog", res.MaxQueue)
	}
	// Latency far exceeds 1s near the end: backlog/th ≈ 8s.
	if res.Latency.Max() < 2*event.Second {
		t.Errorf("max latency = %v, want >> 1s without shedding", res.Latency.Max())
	}
}

// fracShedder drops a fixed fraction of memberships, deterministically.
type fracShedder struct {
	num, den int
	count    int
	active   bool
}

func (f *fracShedder) Drop(event.Type, int, int) bool {
	if !f.active {
		return false
	}
	f.count++
	return f.count%f.den < f.num
}

// fracController activates the shedder on overload decisions.
type fracController struct{ s *fracShedder }

func (c *fracController) OnDecision(dec core.Decision) { c.s.active = dec.Overloaded }

func TestOverloadWithSheddingHoldsLatencyBound(t *testing.T) {
	// R = 120, th = 100 (+20%): shedding ~1/3 of memberships more than
	// compensates; the detector toggles shedding around f*qmax and the
	// latency bound LB=1s must hold.
	shed := &fracShedder{num: 1, den: 3}
	op := testOperator(t, shed)
	det, err := core.NewOverloadDetector(core.DetectorConfig{
		LatencyBound: event.Second, F: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := mkStream(12000, 100)
	res, err := Run(Config{
		Rate: 120, Throughput: 100,
		Detector: det, RecordLatency: true,
	}, events, op, &fracController{s: shed})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Latency.ViolationCount(event.Second); v != 0 {
		t.Errorf("latency bound violated %d times; max=%v", v, res.Latency.Max())
	}
	// qmax = 100 events; the queue must have been held near the trigger
	// (80) rather than growing unboundedly.
	if res.MaxQueue > 100 {
		t.Errorf("MaxQueue = %d, want <= qmax 100", res.MaxQueue)
	}
	if res.MaxQueue < 60 {
		t.Errorf("MaxQueue = %d, want near trigger 80 (shedding kicked in too early?)", res.MaxQueue)
	}
	st := op.Stats()
	if st.MembershipsShed == 0 {
		t.Error("no memberships were shed")
	}
}

func TestSheddingReducesServiceDemand(t *testing.T) {
	// With all memberships shed, service cost collapses to the LS
	// overhead and the queue drains even under extreme overload.
	shed := &fracShedder{num: 1, den: 1, active: true}
	op := testOperator(t, shed)
	events := mkStream(3000, 100)
	res, err := Run(Config{
		Rate: 1000, Throughput: 100, RecordLatency: true,
		ShedOverheadFrac: 0.01,
	}, events, op, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Each event costs 0.01 * l(p) = 0.1ms, well under the 1ms arrival
	// spacing: no queueing.
	if res.Latency.Max() > 10*event.Millisecond {
		t.Errorf("max latency = %v, want tiny when everything is shed", res.Latency.Max())
	}
	if len(res.Complex) != 0 {
		t.Errorf("complex = %d, want 0 (all shed)", len(res.Complex))
	}
}

func TestMembershipFactorScalesService(t *testing.T) {
	// Overlapping windows (slide 5 of count 10) double the memberships;
	// with MembershipFactor=2 the effective throughput matches th again.
	p := pattern.MustCompile(pattern.Pattern{
		Name:  "anyA",
		Steps: []pattern.Step{{Types: []event.Type{typeA}}},
	})
	op, err := operator.New(operator.Config{
		Window:   window.Spec{Mode: window.ModeCount, Count: 10, Slide: 5},
		Patterns: []*pattern.Compiled{p},
	})
	if err != nil {
		t.Fatal(err)
	}
	events := mkStream(4000, 100)
	res, err := Run(Config{
		Rate: 100, Throughput: 100, MembershipFactor: 2, RecordLatency: true,
	}, events, op, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxQueue > 4 {
		t.Errorf("MaxQueue = %d: membership factor not applied", res.MaxQueue)
	}
}

func TestReplayUnshed(t *testing.T) {
	op := testOperator(t, nil)
	events := mkStream(100, 100)
	out, err := ReplayUnshed(events, op)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Errorf("complex = %d, want 10", len(out))
	}
	if _, err := ReplayUnshed(events, nil); err == nil {
		t.Error("nil operator must fail")
	}
	if out, err := ReplayUnshed(nil, testOperator(t, nil)); err != nil || len(out) != 0 {
		t.Errorf("empty replay: %v %v", out, err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		shed := &fracShedder{num: 1, den: 3}
		op := testOperator(t, shed)
		det, _ := core.NewOverloadDetector(core.DetectorConfig{LatencyBound: event.Second, F: 0.8})
		events := mkStream(5000, 100)
		res, err := Run(Config{
			Rate: 120, Throughput: 100, Detector: det, RecordLatency: true,
		}, events, op, &fracController{s: shed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Served != b.Served || a.MaxQueue != b.MaxQueue || len(a.Complex) != len(b.Complex) {
		t.Error("simulation must be deterministic")
	}
	if a.Latency.Max() != b.Latency.Max() || a.WallEnd != b.WallEnd {
		t.Error("latency trace must be deterministic")
	}
}
