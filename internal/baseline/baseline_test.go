package baseline

import (
	"math"
	"testing"

	"repro/internal/event"
	"repro/internal/pattern"
)

func blCfg() BLConfig {
	return BLConfig{
		Types: 3,
		Weights: pattern.TypeWeights{PerType: map[event.Type]float64{
			0: 2, // pattern needs type 0 twice
			1: 1,
			// type 2 never appears in the pattern
		}},
		Freq: []float64{4, 4, 12}, // per-window frequencies
		Seed: 42,
	}
}

func TestNewBLValidation(t *testing.T) {
	if _, err := NewBL(BLConfig{Types: 0}); err == nil {
		t.Error("Types=0 must fail")
	}
	if _, err := NewBL(BLConfig{Types: 2, Freq: []float64{1}}); err == nil {
		t.Error("Freq length mismatch must fail")
	}
	if _, err := NewBL(BLConfig{Types: 1, Freq: []float64{1}, UtilityDiscount: 2}); err == nil {
		t.Error("discount > 1 must fail")
	}
	if _, err := NewBL(BLConfig{Types: 1, Freq: []float64{1}, UtilityDiscount: -1}); err == nil {
		t.Error("negative discount must fail")
	}
}

func TestBLUtilityIsPatternRepetition(t *testing.T) {
	b, err := NewBL(blCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Utility(0); got != 2 {
		t.Errorf("Utility(0) = %v, want 2", got)
	}
	if got := b.Utility(1); got != 1 {
		t.Errorf("Utility(1) = %v, want 1", got)
	}
	if got := b.Utility(2); got != 0 {
		t.Errorf("Utility(2) = %v, want 0", got)
	}
	if b.Utility(-1) != 0 || b.Utility(9) != 0 {
		t.Error("OOB utility must be 0")
	}
}

func TestBLWildcardSpreadByFrequency(t *testing.T) {
	b, err := NewBL(BLConfig{
		Types:   2,
		Weights: pattern.TypeWeights{PerType: map[event.Type]float64{}, Wildcard: 10},
		Freq:    []float64{5, 15},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wildcard weight 10 spread 25%/75% by frequency.
	if math.Abs(b.Utility(0)-2.5) > 1e-12 || math.Abs(b.Utility(1)-7.5) > 1e-12 {
		t.Errorf("utilities = %v/%v, want 2.5/7.5", b.Utility(0), b.Utility(1))
	}
}

func TestBLQuotasDiscountedByUtility(t *testing.T) {
	b, err := NewBL(blCfg()) // beta defaults to 0.8
	if err != nil {
		t.Fatal(err)
	}
	if b.Active() {
		t.Fatal("inactive by default")
	}
	b.SetDropAmount(10, 20)
	if !b.Active() {
		t.Fatal("should be active")
	}
	// Weights: t0 = 4*(1-0.8*2/2) = 0.8; t1 = 4*(1-0.8*1/2) = 2.4;
	// t2 = 12*(1-0) = 12. Total = 15.2.
	// Quotas: t0 = 10*0.8/15.2 ≈ 0.526; prob = 0.526/4 ≈ 0.1316
	//         t1 = 10*2.4/15.2 ≈ 1.579; prob ≈ 0.3947
	//         t2 = 10*12/15.2 ≈ 7.895; prob ≈ 0.6579
	wantProbs := []float64{0.131578, 0.394736, 0.657894}
	for typ, want := range wantProbs {
		if got := b.DropProb(event.Type(typ)); math.Abs(got-want) > 1e-4 {
			t.Errorf("DropProb(%d) = %v, want %v", typ, got, want)
		}
	}
	// The expected total drops per window equal x:
	// sum(prob * freq) = 0.1316*4 + 0.3947*4 + 0.6579*12 = 10.
	total := 0.0
	for typ, f := range []float64{4, 4, 12} {
		total += b.DropProb(event.Type(typ)) * f
	}
	if math.Abs(total-10) > 1e-6 {
		t.Errorf("expected drops per window = %v, want 10", total)
	}
}

func TestBLHighUtilityTypesShieldedButNotExempt(t *testing.T) {
	// The defining weakness of BL (per the paper): because it cannot tell
	// which instances of a pattern type matter, pattern types still lose
	// instances under load.
	b, err := NewBL(blCfg())
	if err != nil {
		t.Fatal(err)
	}
	b.SetDropAmount(10, 20)
	if b.DropProb(0) <= 0 {
		t.Error("max-utility type should still have a small quota with beta < 1")
	}
	if b.DropProb(0) >= b.DropProb(1) || b.DropProb(1) >= b.DropProb(2) {
		t.Errorf("quotas must grow as utility falls: %v %v %v",
			b.DropProb(0), b.DropProb(1), b.DropProb(2))
	}
}

func TestBLBetaOneExemptsMaxUtility(t *testing.T) {
	cfg := blCfg()
	cfg.UtilityDiscount = 1
	b, err := NewBL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.SetDropAmount(10, 20)
	if got := b.DropProb(0); got != 0 {
		t.Errorf("beta=1 must exempt max-utility type, got %v", got)
	}
	if b.DropProb(2) <= 0 {
		t.Error("zero-utility type must carry quota")
	}
}

func TestBLBetaOneDegenerateFallsBackToFrequency(t *testing.T) {
	// All types at maximum utility with beta = 1: weights vanish; BL must
	// fall back to frequency-proportional dropping rather than shed
	// nothing (the latency bound cannot be sacrificed).
	b, err := NewBL(BLConfig{
		Types:           2,
		Weights:         pattern.TypeWeights{PerType: map[event.Type]float64{0: 1, 1: 1}},
		Freq:            []float64{10, 30},
		UtilityDiscount: 1,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.SetDropAmount(8, 40)
	// Frequency-proportional: quota t0 = 8*10/40 = 2 -> p = 0.2; same for t1.
	if got := b.DropProb(0); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("DropProb(0) = %v, want 0.2", got)
	}
	if got := b.DropProb(1); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("DropProb(1) = %v, want 0.2", got)
	}
}

func TestBLSamplingMatchesProbability(t *testing.T) {
	b, err := NewBL(blCfg())
	if err != nil {
		t.Fatal(err)
	}
	b.SetDropAmount(10, 20)
	want := b.DropProb(2)
	const trials = 40000
	drops := 0
	for i := 0; i < trials; i++ {
		if b.Drop(2, i%20, 20) {
			drops++
		}
	}
	got := float64(drops) / trials
	if math.Abs(got-want) > 0.02 {
		t.Errorf("empirical drop rate = %v, want ~%v", got, want)
	}
}

func TestBLProbabilityClamp(t *testing.T) {
	b, err := NewBL(blCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Demand far beyond supply: probabilities clamp to 1.
	b.SetDropAmount(1000, 20)
	if got := b.DropProb(2); got != 1 {
		t.Errorf("DropProb(2) = %v, want 1", got)
	}
	if !b.Drop(2, 0, 20) {
		t.Error("probability 1 must always drop")
	}
}

func TestBLDeactivate(t *testing.T) {
	b, err := NewBL(blCfg())
	if err != nil {
		t.Fatal(err)
	}
	b.SetDropAmount(5, 20)
	b.Deactivate()
	if b.Active() {
		t.Fatal("Deactivate failed")
	}
	for i := 0; i < 100; i++ {
		if b.Drop(2, 0, 20) {
			t.Fatal("inactive BL must not drop")
		}
	}
	b.SetDropAmount(0, 20)
	if b.Active() {
		t.Error("x=0 must deactivate")
	}
}

func TestBLOOBTypeNeverDrops(t *testing.T) {
	b, _ := NewBL(blCfg())
	b.SetDropAmount(100, 20)
	if b.Drop(event.Type(9), 0, 20) || b.Drop(event.NoType, 0, 20) {
		t.Error("out-of-range types must not drop")
	}
	if b.DropProb(event.Type(9)) != 0 || b.DropProb(event.NoType) != 0 {
		t.Error("OOB DropProb must be 0")
	}
}

func TestRandomShedder(t *testing.T) {
	r := NewRandom(7)
	if r.Active() {
		t.Fatal("inactive by default")
	}
	for i := 0; i < 100; i++ {
		if r.Drop(0, 0, 10) {
			t.Fatal("inactive random must not drop")
		}
	}
	r.SetDropAmount(3, 10) // 30%
	if !r.Active() {
		t.Fatal("should be active")
	}
	const trials = 50000
	drops := 0
	for i := 0; i < trials; i++ {
		if r.Drop(0, i, 10) {
			drops++
		}
	}
	rate := float64(drops) / trials
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("drop rate = %v, want ~0.3", rate)
	}
	r.Deactivate()
	if r.Active() {
		t.Error("Deactivate failed")
	}
}

func TestRandomClampAndZero(t *testing.T) {
	r := NewRandom(7)
	r.SetDropAmount(100, 10) // clamp to probability 1
	if !r.Drop(0, 0, 10) {
		t.Error("probability 1 must always drop")
	}
	r.SetDropAmount(0, 10)
	if r.Active() {
		t.Error("x=0 must deactivate")
	}
	r.SetDropAmount(5, 0)
	if r.Active() {
		t.Error("ws=0 must deactivate")
	}
}
