// Package baseline implements the comparator load shedders of the eSPICE
// evaluation (Section 4.1): BL, a state-of-the-art-style strategy after
// He et al. (ICDT '14) that assigns utilities to event *types* from their
// repetition in the pattern and their frequency in windows and sheds by
// uniform sampling within types; and a fully random shedder.
//
// Neither baseline considers the order of events in patterns or input
// streams — the property eSPICE adds.
package baseline

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/event"
	"repro/internal/pattern"
)

// DefaultUtilityDiscount is the default weight reduction applied to the
// drop quota of maximum-utility types (see BLConfig.UtilityDiscount).
const DefaultUtilityDiscount = 0.8

// BLConfig configures the BL shedder.
type BLConfig struct {
	// Types is M, the number of event types.
	Types int
	// Weights is the pattern's type repetition statistic (from
	// pattern.Compiled.TypeWeights), possibly merged over several
	// patterns.
	Weights pattern.TypeWeights
	// Freq[t] is the average number of events of type t per window,
	// collected during training.
	Freq []float64
	// UtilityDiscount (beta in [0,1]) controls how strongly a type's
	// utility shields it from dropping: the per-type drop weight is
	// freq * (1 - beta*normalizedUtility). beta = 1 exempts
	// maximum-utility types completely; beta = 0 ignores utilities
	// (pure frequency-proportional sampling). Defaults to
	// DefaultUtilityDiscount, mirroring the paper's observation that BL
	// still drops pattern-relevant instances because it cannot tell which
	// instances of a type matter.
	UtilityDiscount float64
	// Seed drives the uniform sampling.
	Seed int64
}

// BL is the baseline shedder. Per window it decides the amount of events
// to drop from each event type — types with higher utility (repetition in
// the pattern) receive proportionally smaller drop quotas — and drops the
// required amount from each type by uniform sampling within the type.
// Decisions depend only on the event type, never on position: BL has no
// notion of the order of events in the pattern or stream.
//
// Configuration (SetDropAmount) and decisions (Drop) may run on different
// goroutines; a mutex guards the shared state, including the random
// source.
type BL struct {
	mu       sync.Mutex
	types    int
	utility  []float64 // per-type utility (repetition in the pattern)
	freq     []float64 // events per window per type
	beta     float64
	dropProb []float64 // current per-type drop probability
	active   bool
	rng      *rand.Rand
}

// NewBL builds the baseline shedder from pattern and window statistics.
func NewBL(cfg BLConfig) (*BL, error) {
	if cfg.Types <= 0 {
		return nil, fmt.Errorf("baseline: Types must be > 0, got %d", cfg.Types)
	}
	if len(cfg.Freq) != cfg.Types {
		return nil, fmt.Errorf("baseline: Freq has %d entries, want %d", len(cfg.Freq), cfg.Types)
	}
	beta := cfg.UtilityDiscount
	if beta == 0 {
		beta = DefaultUtilityDiscount
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("baseline: UtilityDiscount must be in [0,1], got %v", beta)
	}
	b := &BL{
		types:    cfg.Types,
		utility:  make([]float64, cfg.Types),
		freq:     append([]float64(nil), cfg.Freq...),
		beta:     beta,
		dropProb: make([]float64, cfg.Types),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	// A type's utility is its repetition in the pattern. Wildcard steps
	// (satisfiable by any type) spread their weight over observed types
	// proportionally to frequency.
	totalFreq := 0.0
	for _, f := range b.freq {
		totalFreq += f
	}
	for t := 0; t < cfg.Types; t++ {
		rep := cfg.Weights.PerType[event.Type(t)]
		if cfg.Weights.Wildcard > 0 && totalFreq > 0 {
			rep += cfg.Weights.Wildcard * b.freq[t] / totalFreq
		}
		b.utility[t] = rep
	}
	return b, nil
}

// Utility exposes the per-type utility (for tests and inspection).
func (b *BL) Utility(t event.Type) float64 {
	if t < 0 || int(t) >= b.types {
		return 0
	}
	return b.utility[t]
}

// Active reports whether shedding is enabled.
func (b *BL) Active() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active
}

// SetDropAmount activates shedding such that approximately x events are
// dropped per window: the demand is distributed over the event types
// proportionally to freq * (1 - beta*normalizedUtility), and within each
// type events are dropped by uniform sampling with probability
// quota/freq. ws is accepted for interface symmetry with other shedders;
// BL's quotas derive from the trained per-window frequencies.
func (b *BL) SetDropAmount(x float64, ws int) {
	_ = ws
	b.mu.Lock()
	defer b.mu.Unlock()
	for t := range b.dropProb {
		b.dropProb[t] = 0
	}
	if x <= 0 {
		b.active = false
		return
	}
	b.active = true

	maxU := 0.0
	for _, u := range b.utility {
		if u > maxU {
			maxU = u
		}
	}
	weights := make([]float64, b.types)
	totalW := 0.0
	for t := 0; t < b.types; t++ {
		if b.freq[t] <= 0 {
			continue
		}
		shield := 0.0
		if maxU > 0 {
			shield = b.beta * b.utility[t] / maxU
		}
		weights[t] = b.freq[t] * (1 - shield)
		totalW += weights[t]
	}
	if totalW <= 0 {
		// Degenerate: everything maximally shielded with beta == 1; fall
		// back to frequency-proportional dropping so the latency bound
		// still holds (quality is sacrificed, as BL must under overload).
		for t := 0; t < b.types; t++ {
			weights[t] = b.freq[t]
			totalW += weights[t]
		}
		if totalW <= 0 {
			return
		}
	}
	for t := 0; t < b.types; t++ {
		if weights[t] <= 0 || b.freq[t] <= 0 {
			continue
		}
		quota := x * weights[t] / totalW
		p := quota / b.freq[t]
		if p > 1 {
			p = 1
		}
		b.dropProb[t] = p
	}
}

// Deactivate stops shedding.
func (b *BL) Deactivate() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.active = false
	for t := range b.dropProb {
		b.dropProb[t] = 0
	}
}

// DropProb exposes the current drop probability for a type (tests).
func (b *BL) DropProb(t event.Type) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t < 0 || int(t) >= b.types {
		return 0
	}
	return b.dropProb[t]
}

// Drop implements the operator.Decider interface. Position and window
// size are ignored: BL has no notion of order.
func (b *BL) Drop(t event.Type, _ int, _ int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.active || t < 0 || int(t) >= b.types {
		return false
	}
	p := b.dropProb[t]
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return b.rng.Float64() < p
}

// Random drops every membership with a fixed probability — the "completely
// random event shedder" the paper mentions as comprehensively outperformed.
type Random struct {
	mu     sync.Mutex
	prob   float64
	active bool
	rng    *rand.Rand
}

// NewRandom builds a random shedder with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// SetDropAmount activates dropping of approximately x events per window
// of size ws, i.e. probability x/ws per membership.
func (r *Random) SetDropAmount(x float64, ws int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if x <= 0 || ws <= 0 {
		r.active = false
		r.prob = 0
		return
	}
	r.active = true
	r.prob = x / float64(ws)
	if r.prob > 1 {
		r.prob = 1
	}
}

// Deactivate stops shedding.
func (r *Random) Deactivate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.active = false
	r.prob = 0
}

// Active reports whether shedding is enabled.
func (r *Random) Active() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.active
}

// Drop implements operator.Decider.
func (r *Random) Drop(_ event.Type, _ int, _ int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.active {
		return false
	}
	return r.rng.Float64() < r.prob
}
