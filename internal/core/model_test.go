package core

import (
	"math"
	"testing"

	"repro/internal/event"
	"repro/internal/window"
)

func mkWindow(t *testing.T, types []event.Type) *window.Window {
	t.Helper()
	w := &window.Window{ExpectedSize: len(types)}
	for i, typ := range types {
		w.Add(event.Event{Seq: uint64(i), Type: typ}, i)
		w.Arrivals++
	}
	return w
}

func TestNewModelBuilderValidation(t *testing.T) {
	if _, err := NewModelBuilder(ModelBuilderConfig{Types: 0, N: 5}); err == nil {
		t.Error("Types=0 must fail")
	}
	if _, err := NewModelBuilder(ModelBuilderConfig{Types: 1, N: -1}); err == nil {
		t.Error("negative N must fail")
	}
	if _, err := NewModelBuilder(ModelBuilderConfig{Types: 1, N: 5}); err != nil {
		t.Errorf("valid config failed: %v", err)
	}
}

func TestBuildRequiresWindows(t *testing.T) {
	b, _ := NewModelBuilder(ModelBuilderConfig{Types: 1, N: 5})
	if _, err := b.Build(); err == nil {
		t.Error("Build without observations must fail")
	}
	b2, _ := NewModelBuilder(ModelBuilderConfig{Types: 1}) // deferred
	if _, err := b2.Build(); err == nil {
		t.Error("deferred Build without observations must fail")
	}
}

func TestModelBuildingBasic(t *testing.T) {
	// Windows of 4 events, types A,B,A,B; the match always uses A at
	// position 0 and B at position 3.
	const A, B = event.Type(0), event.Type(1)
	b, err := NewModelBuilder(ModelBuilderConfig{Types: 2, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w := mkWindow(t, []event.Type{A, B, A, B})
		matched := []window.Entry{w.Kept[0], w.Kept[3]}
		b.ObserveWindow(w, matched)
	}
	if b.WindowsSeen() != 10 || b.MatchesSeen() != 10 {
		t.Fatalf("seen %d/%d", b.WindowsSeen(), b.MatchesSeen())
	}
	if b.AvgWindowSize() != 4 {
		t.Fatalf("AvgWindowSize = %v", b.AvgWindowSize())
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Trained() {
		t.Fatal("model should be trained")
	}
	ut := m.UT()
	// Match constituents get max utility; everything else zero.
	if got := ut.At(A, 0); got != 100 {
		t.Errorf("UT(A,0) = %d, want 100", got)
	}
	if got := ut.At(B, 3); got != 100 {
		t.Errorf("UT(B,3) = %d, want 100", got)
	}
	for _, cell := range []struct {
		typ event.Type
		b   int
	}{{A, 1}, {A, 2}, {A, 3}, {B, 0}, {B, 1}, {B, 2}} {
		if got := ut.At(cell.typ, cell.b); got != 0 {
			t.Errorf("UT(%d,%d) = %d, want 0", cell.typ, cell.b, got)
		}
	}
	// Shares: S(A,0)=1, S(B,1)=1, S(A,2)=1, S(B,3)=1, rest 0.
	wantShares := map[[2]int]float64{
		{0, 0}: 1, {1, 1}: 1, {0, 2}: 1, {1, 3}: 1,
	}
	for ti := 0; ti < 2; ti++ {
		for p := 0; p < 4; p++ {
			want := wantShares[[2]int{ti, p}]
			if got := m.Share(event.Type(ti), p); math.Abs(got-want) > 1e-12 {
				t.Errorf("Share(%d,%d) = %v, want %v", ti, p, got, want)
			}
		}
	}
	if got := m.ExpectedEventsPerWindow(); math.Abs(got-4) > 1e-12 {
		t.Errorf("ExpectedEventsPerWindow = %v, want 4", got)
	}
}

func TestModelUtilityProportionalToFrequency(t *testing.T) {
	// A at position 0 matches twice as often as B at position 1: utility
	// ratio should be 100 vs 50.
	const A, B = event.Type(0), event.Type(1)
	b, _ := NewModelBuilder(ModelBuilderConfig{Types: 2, N: 2})
	for i := 0; i < 10; i++ {
		w := mkWindow(t, []event.Type{A, B})
		matched := []window.Entry{w.Kept[0]}
		if i%2 == 0 {
			matched = append(matched, w.Kept[1])
		}
		b.ObserveWindow(w, matched)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.UT().At(A, 0); got != 100 {
		t.Errorf("UT(A,0) = %d, want 100", got)
	}
	if got := m.UT().At(B, 1); got != 50 {
		t.Errorf("UT(B,1) = %d, want 50", got)
	}
}

func TestModelNoMatchesUntrained(t *testing.T) {
	b, _ := NewModelBuilder(ModelBuilderConfig{Types: 1, N: 2})
	b.ObserveWindow(mkWindow(t, []event.Type{0, 0}), nil)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Trained() {
		t.Error("model without matches must not be trained")
	}
}

func TestModelEmptyWindowIgnored(t *testing.T) {
	b, _ := NewModelBuilder(ModelBuilderConfig{Types: 1, N: 2})
	b.ObserveWindow(&window.Window{}, nil)
	if b.WindowsSeen() != 0 {
		t.Error("empty window must be ignored")
	}
}

func TestModelVariableWindowScaling(t *testing.T) {
	// N=4 but observed windows have ws=8: positions scale down by 2.
	const A = event.Type(0)
	b, _ := NewModelBuilder(ModelBuilderConfig{Types: 1, N: 4})
	w := mkWindow(t, []event.Type{A, A, A, A, A, A, A, A})
	// Constituent at window position 6 -> logical position 3.
	b.ObserveWindow(w, []window.Entry{w.Kept[6]})
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.UT().At(A, 3); got != 100 {
		t.Errorf("UT(A,3) = %d, want 100 (scaled from pos 6/ws 8)", got)
	}
	// Shares: each logical cell holds 2 window positions worth of events.
	for p := 0; p < 4; p++ {
		if got := m.Share(A, p); math.Abs(got-2) > 1e-12 {
			t.Errorf("Share(A,%d) = %v, want 2", p, got)
		}
	}
}

func TestModelDeferredNDerivation(t *testing.T) {
	// N unset: builder derives N from the average window size (3 and 5 -> 4).
	const A = event.Type(0)
	b, _ := NewModelBuilder(ModelBuilderConfig{Types: 1})
	w1 := mkWindow(t, []event.Type{A, A, A})
	b.ObserveWindow(w1, []window.Entry{w1.Kept[0]})
	w2 := mkWindow(t, []event.Type{A, A, A, A, A})
	b.ObserveWindow(w2, []window.Entry{w2.Kept[4]})
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 {
		t.Fatalf("derived N = %d, want 4", m.N())
	}
	// w1 pos 0 (ws 3) -> logical 0; w2 pos 4 (ws 5) -> logical 3.
	if got := m.UT().At(A, 0); got != 100 {
		t.Errorf("UT(A,0) = %d, want 100", got)
	}
	if got := m.UT().At(A, 3); got != 100 {
		t.Errorf("UT(A,3) = %d, want 100", got)
	}
}

func TestModelBins(t *testing.T) {
	const A = event.Type(0)
	b, _ := NewModelBuilder(ModelBuilderConfig{Types: 1, N: 8, BinSize: 4})
	w := mkWindow(t, []event.Type{A, A, A, A, A, A, A, A})
	b.ObserveWindow(w, []window.Entry{w.Kept[1], w.Kept[2]})
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.UT().Bins() != 2 {
		t.Fatalf("Bins = %d, want 2", m.UT().Bins())
	}
	if got := m.UT().At(A, 0); got != 100 {
		t.Errorf("bin0 = %d, want 100", got)
	}
	if got := m.UT().At(A, 1); got != 0 {
		t.Errorf("bin1 = %d, want 0", got)
	}
	// Shares aggregate per bin: 4 events per bin.
	if got := m.Share(A, 0); math.Abs(got-4) > 1e-12 {
		t.Errorf("Share bin0 = %v, want 4", got)
	}
}

func TestModelBuilderReset(t *testing.T) {
	const A = event.Type(0)
	b, _ := NewModelBuilder(ModelBuilderConfig{Types: 1, N: 2})
	w := mkWindow(t, []event.Type{A, A})
	b.ObserveWindow(w, []window.Entry{w.Kept[0]})
	b.Reset()
	if b.WindowsSeen() != 0 || b.MatchesSeen() != 0 || b.AvgWindowSize() != 0 {
		t.Error("Reset did not clear counters")
	}
	if _, err := b.Build(); err == nil {
		t.Error("Build after Reset must fail until new observations arrive")
	}
	// Retraining works after Reset.
	w2 := mkWindow(t, []event.Type{A, A})
	b.ObserveWindow(w2, []window.Entry{w2.Kept[1]})
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.UT().At(A, 1); got != 100 {
		t.Errorf("retrained UT(A,1) = %d", got)
	}
	if got := m.UT().At(A, 0); got != 0 {
		t.Errorf("stale statistics survived Reset: UT(A,0) = %d", got)
	}
}

func TestNewModelFromTableValidation(t *testing.T) {
	ut, _ := NewUtilityTable(2, 3, 1)
	if _, err := NewModelFromTable(nil, nil); err == nil {
		t.Error("nil table must fail")
	}
	if _, err := NewModelFromTable(ut, [][]float64{{1, 1, 1}}); err == nil {
		t.Error("row count mismatch must fail")
	}
	if _, err := NewModelFromTable(ut, [][]float64{{1, 1}, {1, 1, 1}}); err == nil {
		t.Error("column count mismatch must fail")
	}
	m, err := NewModelFromTable(ut, [][]float64{{1, 1, 1}, {0.5, 0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Trained() {
		t.Error("table-built model should be trained")
	}
	if m.Share(1, 2) != 0.5 {
		t.Errorf("Share = %v", m.Share(1, 2))
	}
	// Out-of-range shares read as 0.
	if m.Share(5, 0) != 0 || m.Share(0, 9) != 0 {
		t.Error("OOB Share must be 0")
	}
}
