package core

import (
	"fmt"

	"repro/internal/event"
)

// Partitioning describes how windows are split into dropping intervals
// (Section 3.4, "Dropping Interval"): a window is divided into Rho
// partitions of PSize events each so that every partition fits into the
// queue headroom (qmax - f*qmax) that remains before the latency bound is
// violated.
type Partitioning struct {
	Rho   int // ρ: number of partitions per window
	PSize int // psize: partition size in events (relative to window size WS)
	WS    int // window size the partitioning was computed for
}

// ComputePartitioning derives the partitioning for a window of ws events
// given the maximum tolerable queue size qmax and trigger fraction f:
// ρ = ceil(ws / (qmax - f*qmax)), psize = ws / ρ.
//
// The buffer is clamped to at least one event so that a degenerate
// configuration still sheds (with per-event granularity) instead of
// dividing by zero.
func ComputePartitioning(ws int, qmax, f float64) Partitioning {
	if ws <= 0 {
		ws = 1
	}
	buffer := qmax - f*qmax
	if buffer < 1 {
		buffer = 1
	}
	rho := int(float64(ws)/buffer + 0.999999)
	if rho < 1 {
		rho = 1
	}
	if rho > ws {
		rho = ws
	}
	psize := (ws + rho - 1) / rho
	return Partitioning{Rho: rho, PSize: psize, WS: ws}
}

// PartitionOf maps a window position to its partition index.
func (p Partitioning) PartitionOf(pos int) int {
	if pos < 0 || p.PSize <= 0 {
		return 0
	}
	part := pos / p.PSize
	if part >= p.Rho {
		part = p.Rho - 1
	}
	return part
}

// CDT holds the cumulative utility occurrences O(u) per partition
// (Section 3.3 and Algorithm 1): CDT(part, u) is the expected number of
// events per partition whose utility is <= u. Utility values index the
// array directly, so threshold lookup is a linear scan over at most 101
// cells.
type CDT struct {
	rho int
	cum []float64 // [rho][MaxUtility+1]
}

// BuildCDT computes the per-partition cumulative utility occurrence
// tables from a model's UT and position shares (Algorithm 1, generalized
// to ρ partitions as required by Section 3.4: "we compute CDT for each
// partition of size psize within UT").
func BuildCDT(m *Model, part Partitioning) (*CDT, error) {
	if m == nil {
		return nil, fmt.Errorf("core: BuildCDT needs a model")
	}
	if part.Rho <= 0 {
		return nil, fmt.Errorf("core: BuildCDT needs Rho > 0, got %d", part.Rho)
	}
	ut := m.UT()
	c := &CDT{
		rho: part.Rho,
		cum: make([]float64, part.Rho*(MaxUtility+1)),
	}
	// Count occurrences o_u of each utility value, weighted by the
	// position shares S(T, P) (fractional occurrences: each position is
	// shared between event types).
	bins := ut.Bins()
	n := ut.N()
	for t := 0; t < ut.Types(); t++ {
		for b := 0; b < bins; b++ {
			share := m.Share(event.Type(t), b)
			if share == 0 {
				continue
			}
			u := ut.At(event.Type(t), b)
			// Map the bin's center position (in UT space) onto a partition
			// of the window: partitions are defined over window positions,
			// scaled into UT coordinates.
			center := b*ut.BinSize() + ut.BinSize()/2
			if center >= n {
				center = n - 1
			}
			p := center * part.Rho / n
			if p >= part.Rho {
				p = part.Rho - 1
			}
			c.cum[p*(MaxUtility+1)+u] += share
		}
	}
	// Accumulate in ascending utility order (Algorithm 1, lines 7-9).
	for p := 0; p < part.Rho; p++ {
		row := c.cum[p*(MaxUtility+1) : (p+1)*(MaxUtility+1)]
		for u := 1; u <= MaxUtility; u++ {
			row[u] += row[u-1]
		}
	}
	return c, nil
}

// Rho returns the number of partitions the CDT covers.
func (c *CDT) Rho() int { return c.rho }

// At returns O(u) for the given partition: the expected number of events
// per window-partition with utility <= u.
func (c *CDT) At(part, u int) float64 {
	if part < 0 || part >= c.rho || u < 0 || u > MaxUtility {
		return 0
	}
	return c.cum[part*(MaxUtility+1)+u]
}

// thresholdEpsilon absorbs float accumulation error when comparing the
// cumulative occurrences against the requested drop amount.
const thresholdEpsilon = 1e-9

// Threshold returns the utility threshold u_th for the partition: the
// smallest u with O(u) >= x (Algorithm 2, lines 1-7). If even dropping
// every event cannot reach x, it returns MaxUtility (drop everything in
// the partition).
func (c *CDT) Threshold(part int, x float64) int {
	if part < 0 || part >= c.rho {
		return 0
	}
	row := c.cum[part*(MaxUtility+1) : (part+1)*(MaxUtility+1)]
	for u := 0; u <= MaxUtility; u++ {
		if row[u] >= x-thresholdEpsilon {
			return u
		}
	}
	return MaxUtility
}

// Thresholds computes u_th for every partition at drop amount x.
func (c *CDT) Thresholds(x float64) []int {
	out := make([]int, c.rho)
	for p := range out {
		out[p] = c.Threshold(p, x)
	}
	return out
}
