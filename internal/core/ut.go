// Package core implements the eSPICE load-shedding framework of Slo,
// Bhowmik and Rothermel (Middleware '19): a probabilistic utility model
// over (event type, relative window position), the cumulative utility
// occurrence table CDT with threshold lookup (Algorithm 1), window
// partitioning for the dropping interval, the overload detector
// (Section 3.4), and the O(1) per-event load shedder (Algorithm 2),
// together with the paper's extensions — variable window sizes, bins for
// large windows, and model retraining (Section 3.6).
package core

import (
	"fmt"

	"repro/internal/event"
)

// MaxUtility is the largest utility value stored in the utility table.
// Utilities are scaled to integers in [0, MaxUtility] (Section 3.3 of the
// paper: cell values are multiplied by 100 and rounded) so that the CDT
// can index them directly.
const MaxUtility = 100

// UtilityTable is the paper's UT: an M x N table mapping (event type,
// window position) to a utility in [0, 100]. Positions may be aggregated
// into bins of BinSize consecutive positions to bound the table size for
// large windows (Section 3.6, "Using Bins for a Large Window Size").
//
// The table is immutable after construction by the model builder; the
// shedder reads it without synchronization.
type UtilityTable struct {
	types   int
	n       int // logical window size N (positions before binning)
	binSize int // bs
	bins    int // number of position bins = ceil(n / binSize)
	vals    []uint8
}

// NewUtilityTable allocates a zeroed utility table for the given number of
// event types, logical window size N, and bin size (0 or 1 means no
// binning).
func NewUtilityTable(types, n, binSize int) (*UtilityTable, error) {
	if types <= 0 {
		return nil, fmt.Errorf("core: utility table needs types > 0, got %d", types)
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: utility table needs N > 0, got %d", n)
	}
	if binSize <= 0 {
		binSize = 1
	}
	bins := (n + binSize - 1) / binSize
	return &UtilityTable{
		types:   types,
		n:       n,
		binSize: binSize,
		bins:    bins,
		vals:    make([]uint8, types*bins),
	}, nil
}

// Types returns M, the number of event types.
func (ut *UtilityTable) Types() int { return ut.types }

// N returns the logical window size the table was built for.
func (ut *UtilityTable) N() int { return ut.n }

// BinSize returns bs.
func (ut *UtilityTable) BinSize() int { return ut.binSize }

// Bins returns the number of position bins (the second table dimension).
func (ut *UtilityTable) Bins() int { return ut.bins }

// Bin maps a raw position in [0, N) to its bin index.
func (ut *UtilityTable) Bin(pos int) int {
	if pos < 0 {
		pos = 0
	}
	b := pos / ut.binSize
	if b >= ut.bins {
		b = ut.bins - 1
	}
	return b
}

// At returns the utility of type t at bin b. Out-of-range types (possible
// when the stream contains types never seen in training) read as utility 0
// — an unknown type has no evidence of contributing to complex events.
func (ut *UtilityTable) At(t event.Type, b int) int {
	if t < 0 || int(t) >= ut.types || b < 0 || b >= ut.bins {
		return 0
	}
	return int(ut.vals[int(t)*ut.bins+b])
}

// Set stores the utility of type t at bin b, clamping to [0, MaxUtility].
func (ut *UtilityTable) Set(t event.Type, b int, u int) {
	if t < 0 || int(t) >= ut.types || b < 0 || b >= ut.bins {
		return
	}
	if u < 0 {
		u = 0
	}
	if u > MaxUtility {
		u = MaxUtility
	}
	ut.vals[int(t)*ut.bins+b] = uint8(u)
}

// ScalePos maps a position in a window of size ws to the logical position
// space [0, N): the paper's variable-window scaling with sf = ws / N
// (Section 3.6). It returns the half-open logical range [lo, hi) the
// event covers; hi > lo always. For ws <= 0 (unknown size), the position
// is used unscaled.
func (ut *UtilityTable) ScalePos(pos, ws int) (lo, hi int) {
	if pos < 0 {
		pos = 0
	}
	if ws <= 0 || ws == ut.n {
		if pos >= ut.n {
			pos = ut.n - 1
		}
		return pos, pos + 1
	}
	lo = pos * ut.n / ws
	hi = (pos + 1) * ut.n / ws
	if lo >= ut.n {
		lo = ut.n - 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	if hi > ut.n {
		hi = ut.n
	}
	return lo, hi
}

// Utility returns U(T, P) for an event of type t at position pos within a
// window of (predicted) size ws. When ws differs from N, the position is
// scaled: scaling down (ws > N) maps several window positions onto one
// cell; scaling up (ws < N) maps one position onto several cells and the
// utility is the average of the covered cells (Section 3.6).
func (ut *UtilityTable) Utility(t event.Type, pos, ws int) int {
	lo, hi := ut.ScalePos(pos, ws)
	bLo, bHi := ut.Bin(lo), ut.Bin(hi-1)
	if bLo == bHi {
		return ut.At(t, bLo)
	}
	sum := 0
	for b := bLo; b <= bHi; b++ {
		sum += ut.At(t, b)
	}
	return sum / (bHi - bLo + 1)
}

// clone returns a deep copy; used by the model builder when retraining so
// readers keep a consistent snapshot.
func (ut *UtilityTable) clone() *UtilityTable {
	cp := *ut
	cp.vals = append([]uint8(nil), ut.vals...)
	return &cp
}
