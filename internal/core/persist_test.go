package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := paperExampleModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("round trip changed the model")
	}
	if got.N() != m.N() || got.Windows() != m.Windows() || got.Matches() != m.Matches() {
		t.Errorf("metadata mismatch: %d/%d/%d", got.N(), got.Windows(), got.Matches())
	}
	// The loaded model is directly usable by the shedder.
	cdt, err := BuildCDT(got, Partitioning{Rho: 1, PSize: 5, WS: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cdt.Threshold(0, 2) != 10 {
		t.Error("loaded model produces wrong threshold")
	}
}

func TestLoadModelErrors(t *testing.T) {
	m := paperExampleModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("XXXX"), valid[4:]...)},
		{"truncated header", valid[:10]},
		{"truncated body", valid[:len(valid)-20]},
		{"missing checksum", valid[:len(valid)-4]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadModel(bytes.NewReader(tc.data)); err == nil {
				t.Error("expected load error")
			}
		})
	}

	// Corrupted payload byte: checksum must catch it.
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := LoadModel(bytes.NewReader(corrupt)); err == nil {
		t.Error("checksum must detect corruption")
	}

	// Bad version.
	badVer := append([]byte(nil), valid...)
	badVer[4] = 99
	if _, err := LoadModel(bytes.NewReader(badVer)); err == nil {
		t.Error("bad version must fail")
	}
}

func TestModelEqual(t *testing.T) {
	a := paperExampleModel(t)
	b := paperExampleModel(t)
	if !a.Equal(b) {
		t.Fatal("identical models must be equal")
	}
	b.ut.Set(0, 0, 1)
	if a.Equal(b) {
		t.Fatal("table difference not detected")
	}
	if a.Equal(nil) || !(*Model)(nil).Equal(nil) {
		t.Error("nil handling")
	}
}

// Property: save/load round-trips arbitrary random models bit-exactly.
func TestSaveLoadProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		types := rng.Intn(5) + 1
		n := rng.Intn(40) + 1
		bs := rng.Intn(4) + 1
		ut, err := NewUtilityTable(types, n, bs)
		if err != nil {
			return false
		}
		shares := make([][]float64, types)
		for ti := 0; ti < types; ti++ {
			shares[ti] = make([]float64, ut.Bins())
			for b := range shares[ti] {
				ut.Set(intToType(ti), b, rng.Intn(101))
				shares[ti][b] = rng.Float64() * 10
			}
		}
		m, err := NewModelFromTable(ut, shares)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			return false
		}
		got, err := LoadModel(&buf)
		if err != nil {
			return false
		}
		return m.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
