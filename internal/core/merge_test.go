package core

import (
	"math"
	"testing"

	"repro/internal/event"
	"repro/internal/window"
)

// observeStream feeds windows[i] (with a match on the first and last kept
// entry when matchEvery divides i) into the builder.
func observeStream(t *testing.T, b *ModelBuilder, n, windows, matchEvery int) {
	t.Helper()
	const A, B = event.Type(0), event.Type(1)
	for i := 0; i < windows; i++ {
		types := make([]event.Type, n)
		for p := range types {
			if p%2 == 0 {
				types[p] = A
			} else {
				types[p] = B
			}
		}
		w := mkWindow(t, types)
		var matched []window.Entry
		if matchEvery > 0 && i%matchEvery == 0 {
			matched = []window.Entry{w.Kept[0], w.Kept[n-1]}
		}
		b.ObserveWindow(w, matched)
	}
}

// modelsEqual compares two models cell by cell (utilities and shares).
func modelsEqual(t *testing.T, a, b *Model) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("N: %d vs %d", a.N(), b.N())
	}
	if a.Windows() != b.Windows() || a.Matches() != b.Matches() {
		t.Fatalf("coverage: %d/%d vs %d/%d", a.Windows(), a.Matches(), b.Windows(), b.Matches())
	}
	au, bu := a.UT(), b.UT()
	if au.Types() != bu.Types() || au.Bins() != bu.Bins() {
		t.Fatalf("table dims differ")
	}
	for typ := 0; typ < au.Types(); typ++ {
		for bin := 0; bin < au.Bins(); bin++ {
			if au.At(event.Type(typ), bin) != bu.At(event.Type(typ), bin) {
				t.Errorf("UT[%d][%d]: %d vs %d", typ, bin,
					au.At(event.Type(typ), bin), bu.At(event.Type(typ), bin))
			}
			if math.Abs(a.Share(event.Type(typ), bin)-b.Share(event.Type(typ), bin)) > 1e-12 {
				t.Errorf("share[%d][%d]: %v vs %v", typ, bin,
					a.Share(event.Type(typ), bin), b.Share(event.Type(typ), bin))
			}
		}
	}
}

// TestModelBuilderMergeEquivalence: splitting a window stream across two
// builders and merging them must produce the same model as one builder
// fed the full stream — the invariant per-shard accumulation relies on.
func TestModelBuilderMergeEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  ModelBuilderConfig
	}{
		{"fixedN", ModelBuilderConfig{Types: 2, N: 6}},
		{"binned", ModelBuilderConfig{Types: 2, N: 6, BinSize: 2}},
		{"deferred", ModelBuilderConfig{Types: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			single, err := NewModelBuilder(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			observeStream(t, single, 6, 40, 2)

			merged, err := NewModelBuilder(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			parts := make([]*ModelBuilder, 2)
			for i := range parts {
				parts[i], err = NewModelBuilder(tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				observeStream(t, parts[i], 6, 20, 2)
			}
			for _, p := range parts {
				if err := merged.Merge(p); err != nil {
					t.Fatal(err)
				}
			}
			if merged.WindowsSeen() != single.WindowsSeen() ||
				merged.MatchesSeen() != single.MatchesSeen() {
				t.Fatalf("merged coverage %d/%d, want %d/%d",
					merged.WindowsSeen(), merged.MatchesSeen(),
					single.WindowsSeen(), single.MatchesSeen())
			}
			want, err := single.Build()
			if err != nil {
				t.Fatal(err)
			}
			got, err := merged.Build()
			if err != nil {
				t.Fatal(err)
			}
			modelsEqual(t, want, got)
		})
	}
}

func TestModelBuilderMergeConfigMismatch(t *testing.T) {
	a, _ := NewModelBuilder(ModelBuilderConfig{Types: 2, N: 6})
	b, _ := NewModelBuilder(ModelBuilderConfig{Types: 2, N: 8})
	if err := a.Merge(b); err == nil {
		t.Error("merging differently-configured builders must fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("Merge(nil) must be a no-op, got %v", err)
	}
}

// TestModelBuilderSnapshot: a snapshot is an independent copy — later
// observations into the source do not leak into it.
func TestModelBuilderSnapshot(t *testing.T) {
	src, err := NewModelBuilder(ModelBuilderConfig{Types: 2, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	observeStream(t, src, 4, 10, 1)
	snap := src.Snapshot()
	observeStream(t, src, 4, 10, 1)
	if snap.WindowsSeen() != 10 || src.WindowsSeen() != 20 {
		t.Fatalf("snapshot %d / source %d windows", snap.WindowsSeen(), src.WindowsSeen())
	}
	snapModel, err := snap.Build()
	if err != nil {
		t.Fatal(err)
	}
	if snapModel.Windows() != 10 {
		t.Errorf("snapshot model trained on %d windows, want 10", snapModel.Windows())
	}
	// Source reset leaves the snapshot intact (deferred-mode buffers are
	// structurally shared but immutable).
	src.Reset()
	if snap.WindowsSeen() != 10 {
		t.Error("source Reset disturbed the snapshot")
	}
}

func TestNewUntrainedModel(t *testing.T) {
	m, err := NewUntrainedModel(3, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Trained() {
		t.Fatal("untrained model reports Trained")
	}
	s, err := NewShedder(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Configure(Partitioning{Rho: 2, PSize: 4, WS: 8}, 1); err == nil {
		t.Error("shedder over an untrained model must refuse to configure")
	}
	if _, err := NewUntrainedModel(0, 8, 1); err == nil {
		t.Error("Types=0 must fail")
	}
}
