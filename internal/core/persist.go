package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Model persistence: training is allowed to be expensive (Section 3.1),
// so deployments train offline and ship the model to operators. The
// format is a small versioned binary layout with a CRC32 trailer:
//
//	magic "ESPM" | version u16 | types u32 | n u32 | binSize u32 |
//	windows u64 | matches u64 | UT bytes | shares f64s | crc32 u32
//
// All integers are little-endian.

const (
	persistMagic   = "ESPM"
	persistVersion = 1
)

// Save writes the model to w.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	if _, err := out.Write([]byte(persistMagic)); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	hdr := []any{
		uint16(persistVersion),
		uint32(m.ut.types),
		uint32(m.ut.n),
		uint32(m.ut.binSize),
		uint64(m.windows),
		uint64(m.matches),
	}
	for _, v := range hdr {
		if err := binary.Write(out, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("core: save model header: %w", err)
		}
	}
	if _, err := out.Write(m.ut.vals); err != nil {
		return fmt.Errorf("core: save utility table: %w", err)
	}
	for _, s := range m.shares {
		if err := binary.Write(out, binary.LittleEndian, math.Float64bits(s)); err != nil {
			return fmt.Errorf("core: save shares: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("core: save checksum: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// LoadModel reads a model written by Save, verifying the checksum.
func LoadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	in := io.TeeReader(br, crc)

	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(in, magic); err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("core: load model: bad magic %q", magic)
	}
	var (
		version          uint16
		types, n, bs     uint32
		windows, matches uint64
	)
	for _, v := range []any{&version, &types, &n, &bs, &windows, &matches} {
		if err := binary.Read(in, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: load model header: %w", err)
		}
	}
	if version != persistVersion {
		return nil, fmt.Errorf("core: load model: unsupported version %d", version)
	}
	const maxDim = 1 << 24 // sanity bound against corrupted headers
	if types == 0 || n == 0 || bs == 0 || types > maxDim || n > maxDim {
		return nil, fmt.Errorf("core: load model: implausible dimensions %dx%d/bs=%d", types, n, bs)
	}
	ut, err := NewUtilityTable(int(types), int(n), int(bs))
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	if _, err := io.ReadFull(in, ut.vals); err != nil {
		return nil, fmt.Errorf("core: load utility table: %w", err)
	}
	shares := make([]float64, int(types)*ut.Bins())
	for i := range shares {
		var bits uint64
		if err := binary.Read(in, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("core: load shares: %w", err)
		}
		shares[i] = math.Float64frombits(bits)
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("core: load checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("core: load model: checksum mismatch (file %08x, computed %08x)", got, want)
	}
	return &Model{
		ut:      ut,
		shares:  shares,
		n:       int(n),
		windows: int(windows),
		matches: int(matches),
	}, nil
}

// Equal reports whether two models carry identical tables, shares and
// counters (used by tests and deployment sanity checks).
func (m *Model) Equal(o *Model) bool {
	if m == nil || o == nil {
		return m == o
	}
	if m.n != o.n || m.windows != o.windows || m.matches != o.matches {
		return false
	}
	if m.ut.types != o.ut.types || m.ut.n != o.ut.n || m.ut.binSize != o.ut.binSize {
		return false
	}
	for i := range m.ut.vals {
		if m.ut.vals[i] != o.ut.vals[i] {
			return false
		}
	}
	for i := range m.shares {
		if m.shares[i] != o.shares[i] {
			return false
		}
	}
	return true
}
