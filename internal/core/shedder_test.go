package core

import (
	"sync"
	"testing"

	"repro/internal/event"
)

func trainedModel(t *testing.T) *Model {
	t.Helper()
	return paperExampleModel(t)
}

func TestNewShedderValidation(t *testing.T) {
	if _, err := NewShedder(nil); err == nil {
		t.Error("nil model must fail")
	}
}

func TestShedderInactiveByDefault(t *testing.T) {
	s, err := NewShedder(trainedModel(t))
	if err != nil {
		t.Fatal(err)
	}
	if s.Active() {
		t.Fatal("new shedder must be inactive")
	}
	if s.Drop(0, 0, 5) {
		t.Error("inactive shedder must not drop")
	}
	if s.Thresholds() != nil {
		t.Error("inactive shedder has no thresholds")
	}
}

func TestShedderRefusesUntrainedModel(t *testing.T) {
	ut, _ := NewUtilityTable(1, 4, 1)
	m := &Model{ut: ut, shares: make([]float64, 4), n: 4} // zero matches
	s, _ := NewShedder(m)
	err := s.Configure(Partitioning{Rho: 1, PSize: 4, WS: 4}, 1)
	if err == nil {
		t.Fatal("untrained model must refuse to shed")
	}
}

func TestShedderDropsLowUtilityOnly(t *testing.T) {
	// Paper example: with x=2 the threshold is 10; events with utility
	// <= 10 drop, others survive.
	s, _ := NewShedder(trainedModel(t))
	s.SetExactAmount(false)
	part := Partitioning{Rho: 1, PSize: 5, WS: 5}
	if err := s.Configure(part, 2); err != nil {
		t.Fatal(err)
	}
	if !s.Active() {
		t.Fatal("shedder should be active")
	}
	if got := s.Thresholds(); len(got) != 1 || got[0] != 10 {
		t.Fatalf("Thresholds = %v, want [10]", got)
	}
	const A, B = event.Type(0), event.Type(1)
	tests := []struct {
		name string
		typ  event.Type
		pos  int
		want bool
	}{
		{"A pos0 u=70 keep", A, 0, false},
		{"A pos1 u=15 keep", A, 1, false},
		{"A pos2 u=10 drop", A, 2, true},
		{"A pos3 u=5 drop", A, 3, true},
		{"A pos4 u=0 drop", A, 4, true},
		{"B pos0 u=0 drop", B, 0, true},
		{"B pos1 u=60 keep", B, 1, false},
		{"B pos2 u=30 keep", B, 2, false},
		{"B pos3 u=10 drop", B, 3, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.Drop(tt.typ, tt.pos, 5); got != tt.want {
				t.Errorf("Drop(%d,%d) = %v, want %v", tt.typ, tt.pos, got, tt.want)
			}
		})
	}
	if s.Decisions() != uint64(len(tests)) {
		t.Errorf("Decisions = %d, want %d", s.Decisions(), len(tests))
	}
	if s.Drops() != 5 {
		t.Errorf("Drops = %d, want 5", s.Drops())
	}
}

func TestShedderXZeroDeactivates(t *testing.T) {
	s, _ := NewShedder(trainedModel(t))
	part := Partitioning{Rho: 1, PSize: 5, WS: 5}
	if err := s.Configure(part, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Configure(part, 0); err != nil {
		t.Fatal(err)
	}
	if s.Active() {
		t.Error("x=0 must deactivate")
	}
}

func TestShedderDeactivate(t *testing.T) {
	s, _ := NewShedder(trainedModel(t))
	part := Partitioning{Rho: 1, PSize: 5, WS: 5}
	if err := s.Configure(part, 2); err != nil {
		t.Fatal(err)
	}
	s.Deactivate()
	if s.Active() {
		t.Fatal("Deactivate failed")
	}
	if s.Drop(0, 4, 5) {
		t.Error("deactivated shedder must not drop")
	}
	s.Deactivate() // idempotent
	// Reconfigure reuses the cached CDT (same partitioning).
	if err := s.Configure(part, 2); err != nil {
		t.Fatal(err)
	}
	if !s.Active() {
		t.Error("reactivation failed")
	}
	if s.X() != 2 {
		t.Errorf("X = %v", s.X())
	}
	if s.Partitioning() != part {
		t.Errorf("Partitioning = %+v", s.Partitioning())
	}
}

func TestShedderPerPartitionThresholds(t *testing.T) {
	// Two partitions with different utility mass: thresholds differ and
	// drop decisions respect the event's partition.
	ut, _ := NewUtilityTable(1, 4, 1)
	ut.Set(0, 0, 0)
	ut.Set(0, 1, 50)
	ut.Set(0, 2, 80)
	ut.Set(0, 3, 90)
	m, err := NewModelFromTable(ut, [][]float64{{1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewShedder(m)
	s.SetExactAmount(false)
	part := Partitioning{Rho: 2, PSize: 2, WS: 4}
	if err := s.Configure(part, 1); err != nil {
		t.Fatal(err)
	}
	ths := s.Thresholds()
	if ths[0] != 0 || ths[1] != 80 {
		t.Fatalf("thresholds = %v, want [0 80]", ths)
	}
	// Partition 0: only u=0 drops.
	if !s.Drop(0, 0, 4) {
		t.Error("pos0 (u=0) should drop")
	}
	if s.Drop(0, 1, 4) {
		t.Error("pos1 (u=50 > 0) should survive")
	}
	// Partition 1: u<=80 drops.
	if !s.Drop(0, 2, 4) {
		t.Error("pos2 (u=80) should drop")
	}
	if s.Drop(0, 3, 4) {
		t.Error("pos3 (u=90 > 80) should survive")
	}
}

func TestShedderUnknownWindowSizeFallsBackToN(t *testing.T) {
	s, _ := NewShedder(trainedModel(t))
	s.SetExactAmount(false)
	if err := s.Configure(Partitioning{Rho: 1, PSize: 5, WS: 5}, 2); err != nil {
		t.Fatal(err)
	}
	// ws=0: treated as N=5.
	if !s.Drop(0, 4, 0) { // A at pos4, u=0
		t.Error("fallback ws should drop low-utility event")
	}
	if s.Drop(0, 0, 0) { // A at pos0, u=70
		t.Error("fallback ws should keep high-utility event")
	}
}

func TestShedderSetModelResetsActivation(t *testing.T) {
	s, _ := NewShedder(trainedModel(t))
	if err := s.Configure(Partitioning{Rho: 1, PSize: 5, WS: 5}, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.SetModel(trainedModel(t)); err != nil {
		t.Fatal(err)
	}
	if s.Active() {
		t.Error("SetModel must deactivate until reconfigured")
	}
	if err := s.SetModel(nil); err == nil {
		t.Error("SetModel(nil) must fail")
	}
}

func TestShedderConcurrentDropAndConfigure(t *testing.T) {
	// Race-detector exercise: concurrent decisions while the detector
	// reconfigures.
	s, _ := NewShedder(trainedModel(t))
	part := Partitioning{Rho: 1, PSize: 5, WS: 5}
	stop := make(chan struct{})
	configDone := make(chan struct{})
	go func() {
		defer close(configDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				_ = s.Configure(part, 2)
			} else {
				s.Deactivate()
			}
		}
	}()
	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 10000; i++ {
				s.Drop(event.Type(i%2), i%5, 5)
			}
		}()
	}
	workers.Wait()
	close(stop)
	<-configDone
}

func TestShedderVariableWindowSize(t *testing.T) {
	// ws=10 vs N=5: positions scale down; partition mapping uses actual ws.
	s, _ := NewShedder(trainedModel(t))
	s.SetExactAmount(false)
	if err := s.Configure(Partitioning{Rho: 1, PSize: 5, WS: 5}, 2); err != nil {
		t.Fatal(err)
	}
	// Window of 10 events: pos 8,9 map to logical pos 4 (u=0 for A): drop.
	if !s.Drop(0, 9, 10) {
		t.Error("scaled low-utility event should drop")
	}
	// pos 0,1 map to logical 0 (u=70 for A): keep.
	if s.Drop(0, 0, 10) {
		t.Error("scaled high-utility event should survive")
	}
}

func TestShedderExactAmountBorderThinning(t *testing.T) {
	// Paper example at x=2: u_th = 10 with O(5) = 1.4 and O(10) = 2.3.
	// In exact mode, events below the threshold always drop; events at
	// exactly u=10 drop with probability (2-1.4)/0.9 ≈ 0.667 so that the
	// expected drops per window equal x.
	s, _ := NewShedder(trainedModel(t))
	if !s.ExactAmount() {
		t.Fatal("exact mode should be the default")
	}
	if err := s.Configure(Partitioning{Rho: 1, PSize: 5, WS: 5}, 2); err != nil {
		t.Fatal(err)
	}
	// Below threshold: always dropped.
	for i := 0; i < 100; i++ {
		if !s.Drop(0, 3, 5) { // A pos3, u=5 < 10
			t.Fatal("below-threshold event must always drop")
		}
	}
	// At threshold: dropped ~2/3 of the time.
	const trials = 30000
	drops := 0
	for i := 0; i < trials; i++ {
		if s.Drop(0, 2, 5) { // A pos2, u=10 == u_th
			drops++
		}
	}
	rate := float64(drops) / trials
	if rate < 0.62 || rate > 0.72 {
		t.Errorf("border drop rate = %v, want ~0.667", rate)
	}
	// Above threshold: never dropped.
	if s.Drop(0, 1, 5) { // A pos1, u=15
		t.Error("above-threshold event must survive")
	}
}

func TestShedderExactVsAtLeastExpectedDrops(t *testing.T) {
	// Over a full synthetic window, exact mode drops ≈ x events while
	// at-least mode drops every event at or below the threshold.
	ut, _ := NewUtilityTable(1, 10, 1)
	shares := [][]float64{make([]float64, 10)}
	for p := 0; p < 10; p++ {
		ut.Set(0, p, 0) // uniform utility: the worst case for overshoot
		shares[0][p] = 1
	}
	m, err := NewModelFromTable(ut, shares)
	if err != nil {
		t.Fatal(err)
	}
	part := Partitioning{Rho: 1, PSize: 10, WS: 10}
	const x, windows = 3.0, 4000

	countDrops := func(exact bool) float64 {
		s, _ := NewShedder(m)
		s.SetExactAmount(exact)
		if err := s.Configure(part, x); err != nil {
			t.Fatal(err)
		}
		total := 0
		for w := 0; w < windows; w++ {
			for p := 0; p < 10; p++ {
				if s.Drop(0, p, 10) {
					total++
				}
			}
		}
		return float64(total) / windows
	}
	atLeast := countDrops(false)
	if atLeast != 10 {
		t.Errorf("at-least mode dropped %v per window, want all 10", atLeast)
	}
	exact := countDrops(true)
	if exact < 2.8 || exact > 3.2 {
		t.Errorf("exact mode dropped %v per window, want ~3", exact)
	}
}

// --- Stale size predictions, batched counters, allocation freedom -------

// TestDropClampsStaleSizePrediction is the regression test for
// under-predicted time windows: when the window outgrows its predicted
// size (pos >= ws), the event must land in the last partition and read
// the last utility cell — exactly the decision made at pos = ws-1 — and
// the out-of-range position must never panic or skew the partition index.
func TestDropClampsStaleSizePrediction(t *testing.T) {
	s, err := NewShedder(trainedModel(t))
	if err != nil {
		t.Fatal(err)
	}
	s.SetExactAmount(false) // deterministic threshold comparison
	part := Partitioning{Rho: 5, PSize: 1, WS: 5}
	if err := s.Configure(part, 0.5); err != nil {
		t.Fatal(err)
	}
	for _, typ := range []event.Type{0, 1} {
		want := s.Drop(typ, 4, 5) // last in-range position
		for _, pos := range []int{5, 6, 50, 1 << 20} {
			if got := s.Drop(typ, pos, 5); got != want {
				t.Errorf("Drop(type %d, pos %d, ws 5) = %v, want %v (same as pos 4)",
					typ, pos, got, want)
			}
		}
	}
	// Negative positions clamp to the first partition likewise.
	want := s.Drop(0, 0, 5)
	if got := s.Drop(0, -3, 5); got != want {
		t.Errorf("Drop(pos -3) = %v, want %v (same as pos 0)", got, want)
	}
}

func TestDropCountedBatchesCounters(t *testing.T) {
	s, err := NewShedder(trainedModel(t))
	if err != nil {
		t.Fatal(err)
	}
	// Inactive: not a decision.
	if drop, counted := s.DropCounted(0, 0, 5); drop || counted {
		t.Fatalf("inactive DropCounted = (%v, %v), want (false, false)", drop, counted)
	}
	if err := s.Configure(Partitioning{Rho: 1, PSize: 5, WS: 5}, 2); err != nil {
		t.Fatal(err)
	}
	var decisions, drops uint64
	for pos := 0; pos < 5; pos++ {
		drop, counted := s.DropCounted(0, pos, 5)
		if !counted {
			t.Fatalf("active DropCounted at pos %d not counted", pos)
		}
		decisions++
		if drop {
			drops++
		}
	}
	if s.Decisions() != 0 || s.Drops() != 0 {
		t.Fatalf("DropCounted touched the shared counters: %d/%d", s.Decisions(), s.Drops())
	}
	s.TallyDecisions(decisions, drops)
	if s.Decisions() != decisions || s.Drops() != drops {
		t.Errorf("tally = %d/%d, want %d/%d", s.Decisions(), s.Drops(), decisions, drops)
	}
}

func TestDropZeroAlloc(t *testing.T) {
	s, err := NewShedder(trainedModel(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Configure(Partitioning{Rho: 5, PSize: 1, WS: 5}, 0.5); err != nil {
		t.Fatal(err)
	}
	pos := 0
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Drop(event.Type(pos%2), pos%7, 5) // pos%7 also crosses the clamp path
		pos++
	}); allocs != 0 {
		t.Errorf("Drop allocates %.3f/decision, want 0", allocs)
	}
}
