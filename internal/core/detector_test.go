package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func mustDetector(t *testing.T, lb event.Time, f float64) *OverloadDetector {
	t.Helper()
	d, err := NewOverloadDetector(DetectorConfig{LatencyBound: lb, F: f})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDetectorConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     DetectorConfig
		wantErr bool
	}{
		{"ok", DetectorConfig{LatencyBound: event.Second, F: 0.8}, false},
		{"zero LB", DetectorConfig{F: 0.8}, true},
		{"f zero", DetectorConfig{LatencyBound: event.Second, F: 0}, true},
		{"f one", DetectorConfig{LatencyBound: event.Second, F: 1}, true},
		{"f negative", DetectorConfig{LatencyBound: event.Second, F: -0.1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewOverloadDetector(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestQMax(t *testing.T) {
	d := mustDetector(t, event.Second, 0.8)
	// qmax = LB * th = 1s * 1000 ev/s = 1000 events.
	if got := d.QMax(1000); got != 1000 {
		t.Errorf("QMax = %v, want 1000", got)
	}
	if got := d.QMax(0); got != 0 {
		t.Errorf("QMax(0) = %v", got)
	}
	d2 := mustDetector(t, 500*event.Millisecond, 0.8)
	if got := d2.QMax(1000); got != 500 {
		t.Errorf("QMax = %v, want 500", got)
	}
}

func TestEstimatedLatency(t *testing.T) {
	d := mustDetector(t, event.Second, 0.8)
	// l(e) = n * l(p); 100 events at 1000 ev/s = 100 ms.
	if got := d.EstimatedLatency(100, 1000); got != 100*event.Millisecond {
		t.Errorf("EstimatedLatency = %v", got)
	}
	if got := d.EstimatedLatency(5, 0); got != 0 {
		t.Errorf("zero throughput latency = %v", got)
	}
}

func TestEvaluateBelowTrigger(t *testing.T) {
	d := mustDetector(t, event.Second, 0.8)
	// qmax = 1000, trigger = 800; qsize 700 -> no shedding.
	dec := d.Evaluate(700, 1200, 1000, 500)
	if dec.Overloaded {
		t.Error("below trigger must not be overloaded")
	}
	if dec.X != 0 {
		t.Errorf("X = %v, want 0", dec.X)
	}
	if dec.QMax != 1000 || dec.Trigger != 800 {
		t.Errorf("QMax/Trigger = %v/%v", dec.QMax, dec.Trigger)
	}
}

func TestEvaluateOverloaded(t *testing.T) {
	d := mustDetector(t, event.Second, 0.8)
	// R = 1200, th = 1000 -> delta = 200 extra events/s.
	// ws=500, buffer = 200 -> rho=3, psize=167.
	dec := d.Evaluate(900, 1200, 1000, 500)
	if !dec.Overloaded {
		t.Fatal("should be overloaded")
	}
	if dec.Part.Rho != 3 {
		t.Errorf("Rho = %d, want 3", dec.Part.Rho)
	}
	// delta = (R - th) + backlog correction (900-800)/1s = 300;
	// x = delta * psize/R.
	wantX := 300 * float64(dec.Part.PSize) / 1200
	if math.Abs(dec.X-wantX) > 1e-9 {
		t.Errorf("X = %v, want %v", dec.X, wantX)
	}
}

func TestEvaluateWindowFitsBuffer(t *testing.T) {
	d := mustDetector(t, event.Second, 0.8)
	// ws=150 <= buffer 200: single partition, psize = ws.
	dec := d.Evaluate(900, 1200, 1000, 150)
	if dec.Part.Rho != 1 || dec.Part.PSize != 150 {
		t.Errorf("partitioning = %+v, want single partition of 150", dec.Part)
	}
}

func TestEvaluateBurstDrain(t *testing.T) {
	// Queue above trigger but R <= th: drain backlog with a minimal x.
	d := mustDetector(t, event.Second, 0.8)
	dec := d.Evaluate(900, 1000, 1000, 100)
	if !dec.Overloaded {
		t.Fatal("above trigger must be overloaded even at R == th")
	}
	if dec.X <= 0 {
		t.Errorf("burst drain X = %v, want > 0", dec.X)
	}
	// Backlog above trigger is 100 events over LB=1s -> delta=100;
	// x = 100 * psize/R = 100 * 100/1000 = 10.
	if math.Abs(dec.X-10) > 1e-9 {
		t.Errorf("X = %v, want 10", dec.X)
	}
}

func TestEvaluateZeroThroughput(t *testing.T) {
	d := mustDetector(t, event.Second, 0.8)
	dec := d.Evaluate(900, 1200, 0, 100)
	if dec.Overloaded || dec.X != 0 {
		t.Errorf("zero throughput must disable decisions, got %+v", dec)
	}
}

func TestEvaluateZeroRateAboveTrigger(t *testing.T) {
	d := mustDetector(t, event.Second, 0.8)
	dec := d.Evaluate(900, 0, 1000, 100)
	if !dec.Overloaded {
		t.Error("still overloaded")
	}
	if dec.X != 0 {
		t.Errorf("X with zero rate = %v, want 0", dec.X)
	}
}

// Property: at steady overload, shedding exactly x per partition removes
// the rate excess plus the backlog above the trigger within one LB:
// x * (R / psize) ≈ (R - th) + (qsize - f*qmax)/LB.
func TestDropAmountBalancesRateProperty(t *testing.T) {
	d := mustDetector(t, event.Second, 0.8)
	f := func(thRaw, overRaw, wsRaw uint16) bool {
		th := float64(thRaw%5000) + 100
		r := th * (1 + float64(overRaw%100)/100) // up to +100%
		ws := int(wsRaw%3000) + 10
		qsize := int(0.9 * d.QMax(th))
		dec := d.Evaluate(qsize, r, th, ws)
		if float64(qsize) <= dec.Trigger {
			return !dec.Overloaded
		}
		if !dec.Overloaded {
			return false
		}
		want := math.Max(0, r-th) + (float64(qsize) - dec.Trigger)
		dropPerSec := dec.X * r / float64(dec.Part.PSize)
		return math.Abs(dropPerSec-want) < 1e-6*r+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: partition size never exceeds the buffer (the constraint that
// guarantees the latency bound, Section 3.4).
func TestPartitionSizeWithinBufferProperty(t *testing.T) {
	f := func(wsRaw, qmaxRaw uint16, fRaw uint8) bool {
		ws := int(wsRaw)%5000 + 1
		qmax := float64(qmaxRaw%10000) + 10
		fv := 0.05 + float64(fRaw%90)/100
		p := ComputePartitioning(ws, qmax, fv)
		buffer := qmax - fv*qmax
		if buffer < 1 {
			buffer = 1
		}
		if p.Rho < 1 || p.PSize < 1 {
			return false
		}
		// psize <= ceil(buffer): allow the integer ceiling.
		if float64(p.PSize) > buffer+1 {
			return false
		}
		// partitions cover the window.
		return p.Rho*p.PSize >= ws
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
