package core

import (
	"sort"

	"repro/internal/event"
)

// ChooseF selects an appropriate trigger fraction f (Section 3.4,
// "Appropriate f Value"): a high f avoids shedding during short bursts,
// but shrinks the partition size, risking partitions in which only
// high-utility events remain. The paper proposes clustering the utilities
// in UT into importance classes and picking the largest f whose induced
// partitioning still leaves at least x low-class events in every
// partition.
//
// xEstimate is the anticipated per-partition drop amount (events); qmax
// the maximum tolerable queue size; candidates are tried from high to
// low. ChooseF returns the first candidate that keeps every partition
// sheddable, falling back to the smallest candidate.
func ChooseF(m *Model, ws int, qmax, xEstimate float64, candidates []float64) float64 {
	if len(candidates) == 0 {
		candidates = []float64{0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.6, 0.5}
	}
	sorted := append([]float64(nil), candidates...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))

	lowMax := lowUtilityClassMax(m)
	for _, f := range sorted {
		if f <= 0 || f >= 1 {
			continue
		}
		part := ComputePartitioning(ws, qmax, f)
		if everyPartitionSheddable(m, part, lowMax, xEstimate) {
			return f
		}
	}
	return sorted[len(sorted)-1]
}

// lowUtilityClassMax clusters the utility values present in UT (weighted
// by their position shares) into importance classes and returns the upper
// bound of the lowest class. The clustering is a share-weighted tercile
// split: utilities at or below the 1/3 quantile of event mass form the
// "low" class. With heavily skewed models (most mass at utility 0, as is
// typical after training) this resolves to 0, i.e. only provably
// non-contributing events count as safely sheddable.
func lowUtilityClassMax(m *Model) int {
	ut := m.UT()
	var hist [MaxUtility + 1]float64
	total := 0.0
	for t := 0; t < ut.Types(); t++ {
		for b := 0; b < ut.Bins(); b++ {
			share := m.Share(event.Type(t), b)
			if share == 0 {
				continue
			}
			hist[ut.At(event.Type(t), b)] += share
			total += share
		}
	}
	if total == 0 {
		return 0
	}
	target := total / 3
	cum := 0.0
	for u := 0; u <= MaxUtility; u++ {
		cum += hist[u]
		if cum >= target {
			return u
		}
	}
	return MaxUtility
}

// everyPartitionSheddable reports whether each partition of the window
// contains at least x expected events from the low-utility class.
func everyPartitionSheddable(m *Model, part Partitioning, lowMax int, x float64) bool {
	ut := m.UT()
	low := make([]float64, part.Rho)
	n := ut.N()
	for t := 0; t < ut.Types(); t++ {
		for b := 0; b < ut.Bins(); b++ {
			if ut.At(event.Type(t), b) > lowMax {
				continue
			}
			share := m.Share(event.Type(t), b)
			if share == 0 {
				continue
			}
			center := b*ut.BinSize() + ut.BinSize()/2
			if center >= n {
				center = n - 1
			}
			p := center * part.Rho / n
			if p >= part.Rho {
				p = part.Rho - 1
			}
			low[p] += share
		}
	}
	for _, v := range low {
		if v < x {
			return false
		}
	}
	return true
}
