package core

import (
	"testing"

	"repro/internal/event"
	"repro/internal/window"
)

// driftModel: type 0 has high utility in the first half of a 10-position
// window, zero elsewhere.
func driftModel(t *testing.T) *Model {
	t.Helper()
	ut, err := NewUtilityTable(1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	shares := [][]float64{make([]float64, 10)}
	for p := 0; p < 10; p++ {
		if p < 5 {
			ut.Set(0, p, 80)
		}
		shares[0][p] = 1
	}
	m, err := NewModelFromTable(ut, shares)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func driftWindow(pos int) (*window.Window, []window.Entry) {
	w := &window.Window{ExpectedSize: 10}
	w.Arrivals = 10
	ent := window.Entry{Ev: event.Event{Type: 0}, Pos: pos}
	w.Kept = append(w.Kept, ent)
	return w, []window.Entry{ent}
}

func TestNewDriftDetectorValidation(t *testing.T) {
	if _, err := NewDriftDetector(nil, DriftConfig{}); err == nil {
		t.Error("nil model must fail")
	}
	d, err := NewDriftDetector(driftModel(t), DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Reset(nil) is a bare rearm: the current model is kept.
	if err := d.Reset(nil); err != nil {
		t.Errorf("Reset(nil) rearm: %v", err)
	}
	if d.Model() == nil {
		t.Error("rearm dropped the model")
	}
}

// TestDriftRearmAfterAlarm covers the swap-then-rearm sequence: a bare
// Reset(nil) clears the alarm and statistic while keeping the reference
// model, and observing windows afterwards works (no nil-UT panic).
func TestDriftRearmAfterAlarm(t *testing.T) {
	d, err := NewDriftDetector(driftModel(t), DriftConfig{MinWindows: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		w, matched := driftWindow(i % 5)
		d.ObserveWindow(w, matched)
	}
	for i := 0; i < 300; i++ {
		w, matched := driftWindow(5 + i%5)
		d.ObserveWindow(w, matched)
	}
	if !d.Drifted() {
		t.Fatal("expected drift")
	}
	before := d.Model()
	if err := d.Reset(nil); err != nil {
		t.Fatal(err)
	}
	if d.Drifted() || d.Windows() != 0 {
		t.Error("rearm did not clear the alarm")
	}
	if d.Model() != before {
		t.Error("rearm replaced the model")
	}
	w, matched := driftWindow(0)
	d.ObserveWindow(w, matched)
	if d.Windows() != 1 {
		t.Errorf("post-rearm observation not counted: %d", d.Windows())
	}
}

func TestNoDriftOnStableStream(t *testing.T) {
	d, err := NewDriftDetector(driftModel(t), DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Constituents consistently in the high-utility region.
	for i := 0; i < 500; i++ {
		w, matched := driftWindow(i % 5)
		d.ObserveWindow(w, matched)
	}
	if d.Drifted() {
		t.Error("stable stream must not drift")
	}
	if d.Windows() != 500 {
		t.Errorf("Windows = %d", d.Windows())
	}
	if d.MismatchMean() != 0 {
		t.Errorf("MismatchMean = %v, want 0", d.MismatchMean())
	}
}

func TestDriftDetectedOnShift(t *testing.T) {
	d, err := NewDriftDetector(driftModel(t), DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: consistent.
	for i := 0; i < 100; i++ {
		w, matched := driftWindow(i % 5)
		d.ObserveWindow(w, matched)
	}
	if d.Drifted() {
		t.Fatal("premature drift")
	}
	// Phase 2: constituents move into the zero-utility half.
	for i := 0; i < 200 && !d.Drifted(); i++ {
		w, matched := driftWindow(5 + i%5)
		d.ObserveWindow(w, matched)
	}
	if !d.Drifted() {
		t.Fatal("shift not detected")
	}
	if d.MismatchMean() == 0 {
		t.Error("mismatch mean should have risen")
	}
}

func TestDriftWarmupSuppression(t *testing.T) {
	d, err := NewDriftDetector(driftModel(t), DriftConfig{MinWindows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		w, matched := driftWindow(5 + i%5) // always mismatching
		d.ObserveWindow(w, matched)
	}
	if d.Drifted() {
		t.Error("alarm must not fire during warm-up")
	}
}

func TestDriftResetClears(t *testing.T) {
	d, err := NewDriftDetector(driftModel(t), DriftConfig{MinWindows: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Stable phase, then a shift (Page-Hinkley detects mean increases,
	// not constant levels).
	for i := 0; i < 50; i++ {
		w, matched := driftWindow(i % 5)
		d.ObserveWindow(w, matched)
	}
	for i := 0; i < 300; i++ {
		w, matched := driftWindow(5 + i%5)
		d.ObserveWindow(w, matched)
	}
	if !d.Drifted() {
		t.Fatal("expected drift")
	}
	if err := d.Reset(driftModel(t)); err != nil {
		t.Fatal(err)
	}
	if d.Drifted() || d.Windows() != 0 || d.MismatchMean() != 0 {
		t.Error("Reset did not clear state")
	}
	// Healthy again after reset.
	for i := 0; i < 200; i++ {
		w, matched := driftWindow(i % 5)
		d.ObserveWindow(w, matched)
	}
	if d.Drifted() {
		t.Error("no drift after reset on stable stream")
	}
}

func TestDriftIgnoresUnmatchedWindows(t *testing.T) {
	d, err := NewDriftDetector(driftModel(t), DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := driftWindow(0)
	d.ObserveWindow(w, nil)
	d.ObserveWindow(nil, nil)
	d.ObserveWindow(&window.Window{}, []window.Entry{{}})
	if d.Windows() != 0 {
		t.Errorf("unmatched windows counted: %d", d.Windows())
	}
}
