package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/event"
)

// swapModels builds two trained models over the same dimensions with
// opposite utility placement, so a swap visibly changes decisions.
func swapModels(t *testing.T) (*Model, *Model) {
	t.Helper()
	mk := func(firstHalfHigh bool) *Model {
		ut, err := NewUtilityTable(1, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		shares := [][]float64{make([]float64, 10)}
		for p := 0; p < 10; p++ {
			high := p < 5
			if !firstHalfHigh {
				high = !high
			}
			if high {
				ut.Set(0, p, 90)
			}
			shares[0][p] = 1
		}
		m, err := NewModelFromTable(ut, shares)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	return mk(true), mk(false)
}

// TestSwapModelPreservesActiveConfig: swapping a model into an actively
// shedding shedder must keep it active under the same partitioning and
// drop amount, with thresholds re-derived from the new model — identical
// to a fresh shedder configured directly over the new model.
func TestSwapModelPreservesActiveConfig(t *testing.T) {
	a, b := swapModels(t)
	part := Partitioning{Rho: 2, PSize: 5, WS: 10}
	const x = 2.5

	s, err := NewShedder(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Configure(part, x); err != nil {
		t.Fatal(err)
	}
	if err := s.SwapModel(b); err != nil {
		t.Fatal(err)
	}
	if !s.Active() {
		t.Fatal("swap deactivated an active shedder")
	}
	if s.Partitioning() != part || s.X() != x {
		t.Fatalf("swap disturbed the overload config: part=%+v x=%v", s.Partitioning(), s.X())
	}
	if s.Model() != b {
		t.Fatal("model not swapped")
	}

	ref, err := NewShedder(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Configure(part, x); err != nil {
		t.Fatal(err)
	}
	got, want := s.Thresholds(), ref.Thresholds()
	if len(got) != len(want) {
		t.Fatalf("threshold count %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("threshold[%d] = %d, want %d (fresh Configure over new model)", i, got[i], want[i])
		}
	}
}

func TestSwapModelInactiveAdopts(t *testing.T) {
	a, b := swapModels(t)
	s, err := NewShedder(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SwapModel(b); err != nil {
		t.Fatal(err)
	}
	if s.Active() {
		t.Error("inactive shedder became active on swap")
	}
	if s.Model() != b {
		t.Error("model not adopted")
	}
	if err := s.SwapModel(nil); err == nil {
		t.Error("SwapModel(nil) must fail")
	}
}

// TestSwapModelUntrainedDeactivates: swapping an untrained model into an
// active shedder must stop shedding (no evidence to discriminate).
func TestSwapModelUntrainedDeactivates(t *testing.T) {
	a, _ := swapModels(t)
	s, err := NewShedder(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Configure(Partitioning{Rho: 2, PSize: 5, WS: 10}, 2); err != nil {
		t.Fatal(err)
	}
	um, err := NewUntrainedModel(1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SwapModel(um); err != nil {
		t.Fatal(err)
	}
	if s.Active() {
		t.Error("untrained swap left the shedder active")
	}
	if s.Drop(0, 0, 10) {
		t.Error("deactivated shedder dropped")
	}
}

// TestSwapModelConcurrentDrop hammers Drop from several goroutines while
// the model is swapped back and forth and the detector reconfigures —
// the lifecycle's hot-swap scenario. Run under -race; also asserts no
// decision is ever lost (decisions == drops + keeps accounting holds).
func TestSwapModelConcurrentDrop(t *testing.T) {
	a, b := swapModels(t)
	part := Partitioning{Rho: 2, PSize: 5, WS: 10}
	s, err := NewShedder(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Configure(part, 2); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var decided atomic.Uint64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pos := g
			for !stop.Load() {
				var dec, drops uint64
				for i := 0; i < 64; i++ {
					drop, counted := s.DropCounted(0, pos%10, 10)
					if counted {
						dec++
						if drop {
							drops++
						}
					}
					pos++
				}
				s.TallyDecisions(dec, drops)
				decided.Add(dec)
			}
		}(g)
	}
	for i := 0; i < 500; i++ {
		m := a
		if i%2 == 0 {
			m = b
		}
		if err := s.SwapModel(m); err != nil {
			t.Errorf("swap %d: %v", i, err)
			break
		}
		if i%7 == 0 {
			if err := s.Configure(part, float64(1+i%4)); err != nil {
				t.Errorf("configure %d: %v", i, err)
				break
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if s.Decisions() != decided.Load() {
		t.Errorf("decision counter lost updates: %d vs %d", s.Decisions(), decided.Load())
	}
	if !s.Active() {
		t.Error("shedder ended inactive")
	}
}

// TestSeedRNGDeterministic: with the same seed, two shedders configured
// identically make identical border-probability decisions.
func TestSeedRNGDeterministic(t *testing.T) {
	mk := func() *Shedder {
		m := trainedModel(t)
		s, err := NewShedder(m)
		if err != nil {
			t.Fatal(err)
		}
		// x = 0.5 on single-event partitions forces the at-threshold
		// probabilistic path.
		if err := s.Configure(Partitioning{Rho: 5, PSize: 1, WS: 5}, 0.5); err != nil {
			t.Fatal(err)
		}
		s.SeedRNG(12345)
		return s
	}
	s1, s2 := mk(), mk()
	for i := 0; i < 2000; i++ {
		d1 := s1.Drop(event.Type(i%2), i%5, 5)
		d2 := s2.Drop(event.Type(i%2), i%5, 5)
		if d1 != d2 {
			t.Fatalf("decision %d diverged: %v vs %v", i, d1, d2)
		}
	}
	if s1.Drops() == 0 || s1.Drops() == s1.Decisions() {
		t.Errorf("border path not probabilistic: %d/%d drops", s1.Drops(), s1.Decisions())
	}
}
