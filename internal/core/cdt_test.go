package core

import (
	"math"
	"testing"
	"testing/quick"
)

// paperExampleModel reconstructs the running example of Section 3.3:
// Table 1's utility table over two types A, B and window size 5, with
// position shares chosen to reproduce the CDT of Figure 2 exactly:
//
//	O(0)=1.2  O(5)=1.4  O(10)=2.3  O(15)=2.8  O(30)=3.7  O(60)=4.2  O(70)=5
func paperExampleModel(t *testing.T) *Model {
	t.Helper()
	ut, err := NewUtilityTable(2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	const A, B = 0, 1
	utA := []int{70, 15, 10, 5, 0}
	utB := []int{0, 60, 30, 10, 0}
	for p := 0; p < 5; p++ {
		ut.Set(A, p, utA[p])
		ut.Set(B, p, utB[p])
	}
	shares := [][]float64{
		{0.8, 0.5, 0.1, 0.2, 0.5}, // S(A, 1..5)
		{0.2, 0.5, 0.9, 0.8, 0.5}, // S(B, 1..5)
	}
	m, err := NewModelFromTable(ut, shares)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunningExamplePaper(t *testing.T) {
	m := paperExampleModel(t)
	part := Partitioning{Rho: 1, PSize: 5, WS: 5}
	cdt, err := BuildCDT(m, part)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2's cumulative utility occurrences.
	want := map[int]float64{
		0: 1.2, 5: 1.4, 10: 2.3, 15: 2.8, 30: 3.7, 60: 4.2, 70: 5, 100: 5,
	}
	for u, w := range want {
		if got := cdt.At(0, u); math.Abs(got-w) > 1e-9 {
			t.Errorf("CDT(%d) = %v, want %v", u, got, w)
		}
	}
	// "To drop x = 2 events from each window, CDT(10) = 2.3 > x, thus we
	// use the utility threshold u_th = 10."
	if got := cdt.Threshold(0, 2); got != 10 {
		t.Errorf("Threshold(x=2) = %d, want 10", got)
	}
	// Additional thresholds implied by the figure.
	if got := cdt.Threshold(0, 1); got != 0 {
		t.Errorf("Threshold(x=1) = %d, want 0 (O(0)=1.2 >= 1)", got)
	}
	if got := cdt.Threshold(0, 5); got != 70 {
		t.Errorf("Threshold(x=5) = %d, want 70", got)
	}
	// Impossible demand: drop more than the window holds.
	if got := cdt.Threshold(0, 50); got != MaxUtility {
		t.Errorf("Threshold(x=50) = %d, want %d", got, MaxUtility)
	}
}

func TestComputePartitioning(t *testing.T) {
	tests := []struct {
		name      string
		ws        int
		qmax, f   float64
		wantRho   int
		wantPSize int
	}{
		// Buffer = qmax - f*qmax = 200; ws fits in one partition.
		{"single partition", 100, 1000, 0.8, 1, 100},
		// Buffer = 200, ws = 700 -> rho = 4, psize = 175.
		{"multi partition", 700, 1000, 0.8, 4, 175},
		// Exact fit.
		{"exact", 200, 1000, 0.8, 1, 200},
		{"just over", 201, 1000, 0.8, 2, 101},
		// Degenerate buffer (< 1 event) clamps to per-event shedding.
		{"tiny buffer", 5, 1, 0.9, 5, 1},
		// Zero/negative ws clamps.
		{"zero ws", 0, 100, 0.8, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := ComputePartitioning(tt.ws, tt.qmax, tt.f)
			if p.Rho != tt.wantRho || p.PSize != tt.wantPSize {
				t.Errorf("got rho=%d psize=%d, want rho=%d psize=%d",
					p.Rho, p.PSize, tt.wantRho, tt.wantPSize)
			}
		})
	}
}

func TestPartitionOf(t *testing.T) {
	p := Partitioning{Rho: 4, PSize: 175, WS: 700}
	tests := []struct{ pos, want int }{
		{0, 0}, {174, 0}, {175, 1}, {349, 1}, {350, 2}, {699, 3},
		{-3, 0},   // clamped
		{9999, 3}, // clamped
	}
	for _, tt := range tests {
		if got := p.PartitionOf(tt.pos); got != tt.want {
			t.Errorf("PartitionOf(%d) = %d, want %d", tt.pos, got, tt.want)
		}
	}
}

func TestBuildCDTValidation(t *testing.T) {
	if _, err := BuildCDT(nil, Partitioning{Rho: 1}); err == nil {
		t.Error("nil model must fail")
	}
	m := paperExampleModel(t)
	if _, err := BuildCDT(m, Partitioning{Rho: 0}); err == nil {
		t.Error("rho=0 must fail")
	}
}

func TestCDTPerPartition(t *testing.T) {
	// Utilities increase along the window: the first partition holds all
	// the low-utility mass.
	ut, _ := NewUtilityTable(1, 4, 1)
	for p := 0; p < 4; p++ {
		ut.Set(0, p, p*10) // 0, 10, 20, 30
	}
	m, err := NewModelFromTable(ut, [][]float64{{1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	part := Partitioning{Rho: 2, PSize: 2, WS: 4}
	cdt, err := BuildCDT(m, part)
	if err != nil {
		t.Fatal(err)
	}
	if cdt.Rho() != 2 {
		t.Fatalf("Rho() = %d", cdt.Rho())
	}
	// Partition 0 holds positions 0,1 (utilities 0,10); partition 1 holds
	// 2,3 (20,30).
	if got := cdt.At(0, 0); got != 1 {
		t.Errorf("part0 O(0) = %v, want 1", got)
	}
	if got := cdt.At(0, 10); got != 2 {
		t.Errorf("part0 O(10) = %v, want 2", got)
	}
	if got := cdt.At(1, 10); got != 0 {
		t.Errorf("part1 O(10) = %v, want 0", got)
	}
	if got := cdt.At(1, 30); got != 2 {
		t.Errorf("part1 O(30) = %v, want 2", got)
	}
	// Per-partition thresholds for x=1 differ: part 0 can drop at u=0,
	// part 1 needs u=20.
	if got := cdt.Threshold(0, 1); got != 0 {
		t.Errorf("part0 threshold = %d", got)
	}
	if got := cdt.Threshold(1, 1); got != 20 {
		t.Errorf("part1 threshold = %d", got)
	}
	ths := cdt.Thresholds(1)
	if len(ths) != 2 || ths[0] != 0 || ths[1] != 20 {
		t.Errorf("Thresholds = %v", ths)
	}
}

func TestCDTOutOfRange(t *testing.T) {
	m := paperExampleModel(t)
	cdt, _ := BuildCDT(m, Partitioning{Rho: 1, PSize: 5, WS: 5})
	if cdt.At(-1, 0) != 0 || cdt.At(5, 0) != 0 || cdt.At(0, -1) != 0 || cdt.At(0, 101) != 0 {
		t.Error("out-of-range At must be 0")
	}
	if cdt.Threshold(-1, 1) != 0 || cdt.Threshold(9, 1) != 0 {
		t.Error("out-of-range Threshold must be 0")
	}
}

// Property: CDT rows are monotone non-decreasing in u, and the total mass
// equals the sum of all shares (within float tolerance).
func TestCDTMonotoneProperty(t *testing.T) {
	f := func(seed int64, rhoRaw uint8) bool {
		rho := int(rhoRaw)%4 + 1
		rng := newTestRand(seed)
		types, n := rng.Intn(4)+1, rng.Intn(30)+rho
		ut, err := NewUtilityTable(types, n, 1)
		if err != nil {
			return false
		}
		shares := make([][]float64, types)
		total := 0.0
		for ti := 0; ti < types; ti++ {
			shares[ti] = make([]float64, n)
			for p := 0; p < n; p++ {
				ut.Set(intToType(ti), p, rng.Intn(101))
				s := rng.Float64()
				shares[ti][p] = s
				total += s
			}
		}
		m, err := NewModelFromTable(ut, shares)
		if err != nil {
			return false
		}
		cdt, err := BuildCDT(m, ComputePartitioning(n, float64(n)/float64(rho)/0.2+1, 0.8))
		if err != nil {
			return false
		}
		grand := 0.0
		for p := 0; p < cdt.Rho(); p++ {
			prev := 0.0
			for u := 0; u <= MaxUtility; u++ {
				v := cdt.At(p, u)
				if v < prev-1e-12 {
					return false
				}
				prev = v
			}
			grand += cdt.At(p, MaxUtility)
		}
		return math.Abs(grand-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Threshold(part, x) returns the minimal u with O(u) >= x.
func TestThresholdMinimalityProperty(t *testing.T) {
	m := paperExampleModel(t)
	cdt, _ := BuildCDT(m, Partitioning{Rho: 1, PSize: 5, WS: 5})
	f := func(xRaw uint8) bool {
		x := float64(xRaw%6) + 0.1
		u := cdt.Threshold(0, x)
		if cdt.At(0, u) < x-thresholdEpsilon && u != MaxUtility {
			return false
		}
		if u > 0 && cdt.At(0, u-1) >= x-thresholdEpsilon {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
