package core

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/window"
)

// Model is the trained utility model: the utility table UT plus the
// position shares S(T, P) — the probability-weighted expected number of
// events of each type per position bin per window — which Algorithm 1
// needs to turn UT into cumulative utility occurrences.
//
// A Model is immutable; retraining produces a fresh Model that the shedder
// swaps in atomically.
type Model struct {
	ut     *UtilityTable
	shares []float64 // [types][bins] expected events per window
	n      int       // logical window size N

	windows int // windows observed during training
	matches int // complex events observed during training
}

// UT returns the utility table.
func (m *Model) UT() *UtilityTable { return m.ut }

// N returns the logical window size the model was trained for.
func (m *Model) N() int { return m.n }

// Windows reports how many windows the model was trained on.
func (m *Model) Windows() int { return m.windows }

// Matches reports how many complex events contributed statistics.
func (m *Model) Matches() int { return m.matches }

// Share returns S(T, b): the expected number of events of type t in
// position bin b of a window.
func (m *Model) Share(t event.Type, b int) float64 {
	if t < 0 || int(t) >= m.ut.types || b < 0 || b >= m.ut.bins {
		return 0
	}
	return m.shares[int(t)*m.ut.bins+b]
}

// ExpectedEventsPerWindow sums the position shares: the average window
// size as seen in UT coordinates.
func (m *Model) ExpectedEventsPerWindow() float64 {
	total := 0.0
	for _, s := range m.shares {
		total += s
	}
	return total
}

// Trained reports whether the model carries enough evidence to shed
// safely: at least one observed complex event. An untrained model would
// assign utility 0 everywhere and a threshold lookup would then drop
// arbitrary events.
func (m *Model) Trained() bool { return m.matches > 0 && m.windows > 0 }

// ModelBuilderConfig configures model construction.
type ModelBuilderConfig struct {
	// Types is M, the number of event types (registry size).
	Types int
	// N is the logical window size (positions in UT). For count-based
	// windows this is the window size; for time-based windows, the average
	// seen window size (Section 3.6). If 0, the builder derives N from the
	// average observed window size at Build time.
	N int
	// BinSize aggregates bs neighboring positions per cell (0/1 = off).
	BinSize int
}

// ModelBuilder accumulates statistics from processed windows and the
// complex events detected in them (Section 3.3: "we collect statistics,
// from the already detected complex events, on the types and relative
// positions within windows"). Building the model is explicitly allowed to
// be heavier than shedding; it runs off the hot path.
//
// The builder is not safe for concurrent use; the operator owns it.
type ModelBuilder struct {
	cfg ModelBuilderConfig

	// Raw statistics at full position resolution when N is known up
	// front; otherwise buffered windows are replayed at Build time.
	matchCounts []float64 // [types][bins] constituents of complex events
	posCounts   []float64 // [types][bins] all window events (for shares)
	windows     int
	matchesSeen int
	sizeSum     uint64

	// When N is unknown (cfg.N == 0), observations are buffered until
	// Build so they can be scaled to the derived N.
	deferred    bool
	bufWindows  [][]window.Entry
	bufSizes    []int
	bufMatchIdx [][]int // per window: indices into entries that matched
}

// NewModelBuilder returns a builder for the given configuration.
func NewModelBuilder(cfg ModelBuilderConfig) (*ModelBuilder, error) {
	if cfg.Types <= 0 {
		return nil, fmt.Errorf("core: model builder needs Types > 0, got %d", cfg.Types)
	}
	if cfg.N < 0 {
		return nil, fmt.Errorf("core: model builder needs N >= 0, got %d", cfg.N)
	}
	if cfg.BinSize <= 0 {
		cfg.BinSize = 1
	}
	b := &ModelBuilder{cfg: cfg}
	if cfg.N > 0 {
		bins := (cfg.N + cfg.BinSize - 1) / cfg.BinSize
		b.matchCounts = make([]float64, cfg.Types*bins)
		b.posCounts = make([]float64, cfg.Types*bins)
	} else {
		b.deferred = true
	}
	return b, nil
}

// scaledBin maps a position in a window of size ws to a bin index in a
// table with logical size n and the builder's bin size, using the center
// of the event's scaled range.
func scaledBin(pos, ws, n, binSize, bins int) int {
	if pos < 0 {
		pos = 0
	}
	p := pos
	if ws > 0 && ws != n {
		// Center mapping of the scaled range keeps building and shedding
		// lookups aligned for both scale-up and scale-down.
		p = (2*pos + 1) * n / (2 * ws)
	}
	if p >= n {
		p = n - 1
	}
	b := p / binSize
	if b >= bins {
		b = bins - 1
	}
	return b
}

// ObserveWindow records a closed window and the complex event detected in
// it (match may be nil when no complex event was found). Only kept entries
// are visible here — during training the shedder is inactive, so kept
// entries are the full window.
func (b *ModelBuilder) ObserveWindow(w *window.Window, matched []window.Entry) {
	ws := w.Size()
	if ws == 0 {
		return
	}
	b.windows++
	b.sizeSum += uint64(ws)
	if matched != nil {
		b.matchesSeen++
	}
	if b.deferred {
		ents := w.CopyKept(nil)
		b.bufWindows = append(b.bufWindows, ents)
		b.bufSizes = append(b.bufSizes, ws)
		idx := make([]int, 0, len(matched))
		for _, m := range matched {
			for i := range ents {
				if ents[i].Pos == m.Pos {
					idx = append(idx, i)
					break
				}
			}
		}
		b.bufMatchIdx = append(b.bufMatchIdx, idx)
		return
	}
	n := b.cfg.N
	bins := (n + b.cfg.BinSize - 1) / b.cfg.BinSize
	for _, ent := range w.Kept {
		if ent.Ev.Type < 0 || int(ent.Ev.Type) >= b.cfg.Types {
			continue // outside the configured registry slice: no cell to count
		}
		bin := scaledBin(ent.Pos, ws, n, b.cfg.BinSize, bins)
		b.posCounts[int(ent.Ev.Type)*bins+bin]++
	}
	for _, ent := range matched {
		if ent.Ev.Type < 0 || int(ent.Ev.Type) >= b.cfg.Types {
			continue
		}
		bin := scaledBin(ent.Pos, ws, n, b.cfg.BinSize, bins)
		b.matchCounts[int(ent.Ev.Type)*bins+bin]++
	}
}

// WindowsSeen reports the number of observed windows.
func (b *ModelBuilder) WindowsSeen() int { return b.windows }

// MatchesSeen reports the number of observed complex events.
func (b *ModelBuilder) MatchesSeen() int { return b.matchesSeen }

// AvgWindowSize returns the mean size of observed windows.
func (b *ModelBuilder) AvgWindowSize() float64 {
	if b.windows == 0 {
		return 0
	}
	return float64(b.sizeSum) / float64(b.windows)
}

// Merge folds another builder's accumulated statistics into b, leaving o
// untouched. Both builders must share the same configuration (types, N,
// bin size). Merging per-shard builders is numerically identical to
// feeding all their windows through a single builder, which is what lets
// shards accumulate statistics without contention and a supervisor
// combine them at (re)training time.
func (b *ModelBuilder) Merge(o *ModelBuilder) error {
	if o == nil {
		return nil
	}
	if o.cfg != b.cfg {
		return fmt.Errorf("core: cannot merge model builders with different configs (%+v vs %+v)",
			o.cfg, b.cfg)
	}
	if b.deferred {
		b.bufWindows = append(b.bufWindows, o.bufWindows...)
		b.bufSizes = append(b.bufSizes, o.bufSizes...)
		b.bufMatchIdx = append(b.bufMatchIdx, o.bufMatchIdx...)
	} else {
		for i, c := range o.matchCounts {
			b.matchCounts[i] += c
		}
		for i, c := range o.posCounts {
			b.posCounts[i] += c
		}
	}
	b.windows += o.windows
	b.matchesSeen += o.matchesSeen
	b.sizeSum += o.sizeSum
	return nil
}

// Snapshot returns an independent copy of the builder's current
// statistics: cheap — proportional to the table size, not to the windows
// observed — so a supervisor can capture a shard's state while the shard
// keeps accumulating. Buffered windows (deferred mode) are shared
// structurally; they are immutable once observed.
func (b *ModelBuilder) Snapshot() *ModelBuilder {
	cp := &ModelBuilder{
		cfg:         b.cfg,
		windows:     b.windows,
		matchesSeen: b.matchesSeen,
		sizeSum:     b.sizeSum,
		deferred:    b.deferred,
	}
	if b.matchCounts != nil {
		cp.matchCounts = append([]float64(nil), b.matchCounts...)
		cp.posCounts = append([]float64(nil), b.posCounts...)
	}
	if b.deferred {
		cp.bufWindows = append([][]window.Entry(nil), b.bufWindows...)
		cp.bufSizes = append([]int(nil), b.bufSizes...)
		cp.bufMatchIdx = append([][]int(nil), b.bufMatchIdx...)
	}
	return cp
}

// Config returns the builder's (defaulted) configuration.
func (b *ModelBuilder) Config() ModelBuilderConfig { return b.cfg }

// Reset clears all accumulated statistics, for retraining after input
// distribution change (Section 3.6, "Model Retraining").
func (b *ModelBuilder) Reset() {
	for i := range b.matchCounts {
		b.matchCounts[i] = 0
	}
	for i := range b.posCounts {
		b.posCounts[i] = 0
	}
	b.windows = 0
	b.matchesSeen = 0
	b.sizeSum = 0
	b.bufWindows = nil
	b.bufSizes = nil
	b.bufMatchIdx = nil
}

// Build constructs the immutable Model from the accumulated statistics.
// Utilities are the per-cell match-constituent counts normalized by the
// maximum cell count and scaled to [0, 100] (Section 3.3).
func (b *ModelBuilder) Build() (*Model, error) {
	n := b.cfg.N
	matchCounts, posCounts := b.matchCounts, b.posCounts
	if b.deferred {
		if b.windows == 0 {
			return nil, fmt.Errorf("core: cannot build model: no windows observed")
		}
		n = int(b.AvgWindowSize() + 0.5)
		if n <= 0 {
			n = 1
		}
		bins := (n + b.cfg.BinSize - 1) / b.cfg.BinSize
		matchCounts = make([]float64, b.cfg.Types*bins)
		posCounts = make([]float64, b.cfg.Types*bins)
		for wi, ents := range b.bufWindows {
			ws := b.bufSizes[wi]
			for _, ent := range ents {
				if ent.Ev.Type < 0 || int(ent.Ev.Type) >= b.cfg.Types {
					continue
				}
				bin := scaledBin(ent.Pos, ws, n, b.cfg.BinSize, bins)
				posCounts[int(ent.Ev.Type)*bins+bin]++
			}
			for _, i := range b.bufMatchIdx[wi] {
				ent := ents[i]
				if ent.Ev.Type < 0 || int(ent.Ev.Type) >= b.cfg.Types {
					continue
				}
				bin := scaledBin(ent.Pos, ws, n, b.cfg.BinSize, bins)
				matchCounts[int(ent.Ev.Type)*bins+bin]++
			}
		}
	}
	if b.windows == 0 {
		return nil, fmt.Errorf("core: cannot build model: no windows observed")
	}

	ut, err := NewUtilityTable(b.cfg.Types, n, b.cfg.BinSize)
	if err != nil {
		return nil, err
	}
	maxCount := 0.0
	for _, c := range matchCounts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount > 0 {
		bins := ut.Bins()
		for t := 0; t < b.cfg.Types; t++ {
			for bin := 0; bin < bins; bin++ {
				c := matchCounts[t*bins+bin]
				u := int(c/maxCount*MaxUtility + 0.5)
				ut.Set(event.Type(t), bin, u)
			}
		}
	}

	shares := make([]float64, len(posCounts))
	for i, c := range posCounts {
		shares[i] = c / float64(b.windows)
	}
	return &Model{
		ut:      ut,
		shares:  shares,
		n:       n,
		windows: b.windows,
		matches: b.matchesSeen,
	}, nil
}

// NewUntrainedModel returns a model with no training evidence: all
// utilities and shares are zero and Trained() reports false, so a shedder
// built over it refuses to shed. It is the starting point of the online
// model lifecycle — a pipeline or query registers untrained and comes
// online once the lifecycle's first model is built and swapped in.
func NewUntrainedModel(types, n, binSize int) (*Model, error) {
	ut, err := NewUtilityTable(types, n, binSize)
	if err != nil {
		return nil, err
	}
	return &Model{
		ut:     ut,
		shares: make([]float64, types*ut.Bins()),
		n:      n,
	}, nil
}

// NewModelFromTable assembles a Model directly from a utility table and
// explicit position shares — used by tests and by the paper's running
// example, where UT and the shares are given (Table 1 and Figure 2).
// shares is indexed [type][bin] and must match the table dimensions.
func NewModelFromTable(ut *UtilityTable, shares [][]float64) (*Model, error) {
	if ut == nil {
		return nil, fmt.Errorf("core: nil utility table")
	}
	if len(shares) != ut.Types() {
		return nil, fmt.Errorf("core: shares rows = %d, want %d", len(shares), ut.Types())
	}
	flat := make([]float64, ut.Types()*ut.Bins())
	for t, row := range shares {
		if len(row) != ut.Bins() {
			return nil, fmt.Errorf("core: shares row %d has %d cols, want %d", t, len(row), ut.Bins())
		}
		copy(flat[t*ut.Bins():], row)
	}
	return &Model{
		ut:      ut.clone(),
		shares:  flat,
		n:       ut.N(),
		windows: 1,
		matches: 1,
	}, nil
}
