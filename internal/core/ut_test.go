package core

import (
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestNewUtilityTableValidation(t *testing.T) {
	tests := []struct {
		name             string
		types, n, bs     int
		wantErr          bool
		wantBins         int
		wantEffectiveBin int
	}{
		{"ok", 2, 10, 1, false, 10, 1},
		{"bin default", 2, 10, 0, false, 10, 1},
		{"binned", 2, 10, 4, false, 3, 4},
		{"no types", 0, 10, 1, true, 0, 0},
		{"no positions", 2, 0, 1, true, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ut, err := NewUtilityTable(tt.types, tt.n, tt.bs)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if ut.Bins() != tt.wantBins {
				t.Errorf("Bins() = %d, want %d", ut.Bins(), tt.wantBins)
			}
			if ut.BinSize() != tt.wantEffectiveBin {
				t.Errorf("BinSize() = %d, want %d", ut.BinSize(), tt.wantEffectiveBin)
			}
		})
	}
}

func TestUtilityTableSetAt(t *testing.T) {
	ut, err := NewUtilityTable(2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ut.Set(0, 0, 70)
	ut.Set(1, 4, 100)
	ut.Set(1, 2, 250) // clamped to 100
	ut.Set(0, 1, -5)  // clamped to 0
	if got := ut.At(0, 0); got != 70 {
		t.Errorf("At(0,0) = %d", got)
	}
	if got := ut.At(1, 4); got != 100 {
		t.Errorf("At(1,4) = %d", got)
	}
	if got := ut.At(1, 2); got != 100 {
		t.Errorf("clamp high: At = %d", got)
	}
	if got := ut.At(0, 1); got != 0 {
		t.Errorf("clamp low: At = %d", got)
	}
	// Out-of-range reads are 0, writes are ignored.
	if got := ut.At(5, 0); got != 0 {
		t.Errorf("OOB type At = %d", got)
	}
	if got := ut.At(0, 99); got != 0 {
		t.Errorf("OOB bin At = %d", got)
	}
	ut.Set(9, 0, 50)
	ut.Set(0, 99, 50) // no panic
}

func TestBinMapping(t *testing.T) {
	ut, _ := NewUtilityTable(1, 10, 4) // bins: [0-3],[4-7],[8-9]
	tests := []struct{ pos, want int }{
		{0, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {9, 2},
		{-1, 0},  // clamped
		{100, 2}, // clamped
	}
	for _, tt := range tests {
		if got := ut.Bin(tt.pos); got != tt.want {
			t.Errorf("Bin(%d) = %d, want %d", tt.pos, got, tt.want)
		}
	}
}

func TestScalePosIdentity(t *testing.T) {
	ut, _ := NewUtilityTable(1, 10, 1)
	for _, ws := range []int{0, 10} { // unknown size and exact size
		lo, hi := ut.ScalePos(3, ws)
		if lo != 3 || hi != 4 {
			t.Errorf("ws=%d: ScalePos(3) = [%d,%d)", ws, lo, hi)
		}
	}
	// Position past N clamps.
	lo, hi := ut.ScalePos(42, 0)
	if lo != 9 || hi != 10 {
		t.Errorf("clamp: [%d,%d)", lo, hi)
	}
}

func TestScalePosDown(t *testing.T) {
	// ws=200 > N=100: two window positions per cell (sf = 2).
	ut, _ := NewUtilityTable(1, 100, 1)
	for pos := 0; pos < 200; pos++ {
		lo, hi := ut.ScalePos(pos, 200)
		if want := pos / 2; lo != want {
			t.Fatalf("ScalePos(%d, 200) lo = %d, want %d", pos, lo, want)
		}
		if hi != lo+1 && !(pos == 199 && hi == 100) {
			t.Fatalf("ScalePos(%d, 200) hi = %d (lo %d)", pos, hi, lo)
		}
	}
}

func TestScalePosUp(t *testing.T) {
	// ws=50 < N=100: each window position covers two cells.
	ut, _ := NewUtilityTable(1, 100, 1)
	lo, hi := ut.ScalePos(0, 50)
	if lo != 0 || hi != 2 {
		t.Errorf("ScalePos(0,50) = [%d,%d), want [0,2)", lo, hi)
	}
	lo, hi = ut.ScalePos(49, 50)
	if lo != 98 || hi != 100 {
		t.Errorf("ScalePos(49,50) = [%d,%d), want [98,100)", lo, hi)
	}
}

func TestUtilityAveragesOnScaleUp(t *testing.T) {
	ut, _ := NewUtilityTable(1, 4, 1)
	ut.Set(0, 0, 100)
	ut.Set(0, 1, 50)
	ut.Set(0, 2, 20)
	ut.Set(0, 3, 0)
	// ws=2: position 0 covers cells {0,1} -> (100+50)/2 = 75;
	// position 1 covers {2,3} -> 10.
	if got := ut.Utility(0, 0, 2); got != 75 {
		t.Errorf("Utility(pos0) = %d, want 75", got)
	}
	if got := ut.Utility(0, 1, 2); got != 10 {
		t.Errorf("Utility(pos1) = %d, want 10", got)
	}
}

func TestUtilityScaleDownPicksCell(t *testing.T) {
	ut, _ := NewUtilityTable(1, 2, 1)
	ut.Set(0, 0, 80)
	ut.Set(0, 1, 10)
	// ws=4: positions 0,1 -> cell 0; positions 2,3 -> cell 1.
	for pos, want := range map[int]int{0: 80, 1: 80, 2: 10, 3: 10} {
		if got := ut.Utility(0, pos, 4); got != want {
			t.Errorf("Utility(pos=%d, ws=4) = %d, want %d", pos, got, want)
		}
	}
}

func TestUtilityUnknownTypeIsZero(t *testing.T) {
	ut, _ := NewUtilityTable(2, 5, 1)
	ut.Set(0, 0, 90)
	if got := ut.Utility(event.Type(77), 0, 5); got != 0 {
		t.Errorf("unknown type utility = %d, want 0", got)
	}
	if got := ut.Utility(event.NoType, 0, 5); got != 0 {
		t.Errorf("NoType utility = %d, want 0", got)
	}
}

func TestClone(t *testing.T) {
	ut, _ := NewUtilityTable(1, 3, 1)
	ut.Set(0, 1, 42)
	cp := ut.clone()
	cp.Set(0, 1, 7)
	if ut.At(0, 1) != 42 {
		t.Error("clone shares storage with original")
	}
	if cp.At(0, 1) != 7 {
		t.Error("clone write lost")
	}
}

// Property: ScalePos always returns a non-empty range inside [0, N), and
// the mapping is monotone in pos.
func TestScalePosBoundsProperty(t *testing.T) {
	f := func(rawN, rawWS uint16, rawPos uint16) bool {
		n := int(rawN)%500 + 1
		ws := int(rawWS) % 1000 // may be 0 = unknown
		ut, err := NewUtilityTable(1, n, 1)
		if err != nil {
			return false
		}
		bound := ws
		if bound == 0 {
			bound = n
		}
		pos := int(rawPos) % (bound + 1)
		lo, hi := ut.ScalePos(pos, ws)
		if lo < 0 || hi <= lo || hi > n {
			return false
		}
		if pos > 0 {
			plo, _ := ut.ScalePos(pos-1, ws)
			if plo > lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Utility is always within [0, MaxUtility] regardless of inputs.
func TestUtilityRangeProperty(t *testing.T) {
	ut, _ := NewUtilityTable(3, 50, 4)
	for tIdx := 0; tIdx < 3; tIdx++ {
		for b := 0; b < ut.Bins(); b++ {
			ut.Set(event.Type(tIdx), b, (tIdx*13+b*7)%101)
		}
	}
	f := func(tRaw uint8, pos int16, ws int16) bool {
		u := ut.Utility(event.Type(tRaw%5), int(pos), int(ws))
		return u >= 0 && u <= MaxUtility
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
