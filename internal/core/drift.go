package core

import (
	"fmt"
	"sync"

	"repro/internal/window"
)

// DriftConfig tunes the drift detector.
type DriftConfig struct {
	// Delta is the Page-Hinkley tolerance: mean shifts smaller than
	// Delta are ignored. Default 0.02.
	Delta float64
	// Lambda is the alarm threshold on the Page-Hinkley statistic.
	// Default 3.
	Lambda float64
	// MinWindows is the warm-up before alarms may fire. Default 30.
	MinWindows int
	// LowUtility is the utility value at or below which a constituent
	// counts as "unexplained" by the model. Default 0.
	LowUtility int
}

func (c *DriftConfig) applyDefaults() {
	if c.Delta == 0 {
		c.Delta = 0.02
	}
	if c.Lambda == 0 {
		c.Lambda = 3
	}
	if c.MinWindows == 0 {
		c.MinWindows = 30
	}
}

// DriftDetector implements the statistical retraining trigger that
// Section 3.6 of the paper leaves as future work. It monitors, per
// closed window with a detected complex event, how well the current
// utility model explains the detection: the fraction of match
// constituents that fall into low-utility cells of UT. Under a stable
// input distribution this mismatch fraction is small and stationary;
// when the stream's (type, position) correlations shift, constituents
// start landing in cells the model considers worthless and the mismatch
// mean rises. A one-sided Page-Hinkley test on the mismatch signal
// raises the retraining flag.
//
// The detector is safe for use from the operator's processing goroutine
// with Drifted polled from elsewhere.
type DriftDetector struct {
	cfg DriftConfig

	mu      sync.Mutex
	model   *Model
	n       int     // observed windows with matches
	mean    float64 // running mean of the mismatch fraction
	cumDev  float64 // Page-Hinkley cumulative deviation
	minDev  float64 // minimum of cumDev
	drifted bool
}

// NewDriftDetector builds a detector for the given trained model.
func NewDriftDetector(model *Model, cfg DriftConfig) (*DriftDetector, error) {
	if model == nil {
		return nil, fmt.Errorf("core: drift detector needs a model")
	}
	cfg.applyDefaults()
	return &DriftDetector{cfg: cfg, model: model}, nil
}

// ObserveWindow feeds one closed window and the constituents of its
// detected complex event (no-op when matched is empty — windows without
// complex events carry no evidence about the model's utility placement).
func (d *DriftDetector) ObserveWindow(w *window.Window, matched []window.Entry) {
	if len(matched) == 0 || w == nil || w.Size() == 0 {
		return
	}
	// Snapshot the model exactly once per call, outside the per-entry
	// loop: the lifecycle may swap it concurrently, and all constituents
	// of one window must be judged against the same table. Guard against
	// a model without a table (possible after Reset with a hand-built
	// model): no table means no evidence to mismatch against.
	m := d.modelSnapshot()
	if m == nil {
		return
	}
	ut := m.UT()
	if ut == nil {
		return
	}
	low := 0
	for _, ent := range matched {
		if ut.Utility(ent.Ev.Type, ent.Pos, w.Size()) <= d.cfg.LowUtility {
			low++
		}
	}
	x := float64(low) / float64(len(matched))

	d.mu.Lock()
	defer d.mu.Unlock()
	d.n++
	d.mean += (x - d.mean) / float64(d.n)
	d.cumDev += x - d.mean - d.cfg.Delta
	if d.cumDev < d.minDev {
		d.minDev = d.cumDev
	}
	if d.n >= d.cfg.MinWindows && d.cumDev-d.minDev > d.cfg.Lambda {
		d.drifted = true
	}
}

// Drifted reports whether a distribution shift was detected; it stays
// set until Reset.
func (d *DriftDetector) Drifted() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.drifted
}

// Windows reports how many matched windows were observed.
func (d *DriftDetector) Windows() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// MismatchMean returns the running mean of the mismatch fraction.
func (d *DriftDetector) MismatchMean() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mean
}

// Reset clears the Page-Hinkley statistic and the drift flag, installing
// model as the new reference when non-nil. Passing nil keeps the current
// model — the swap-then-rearm sequence of the online lifecycle calls
// Reset(newModel) right after Shedder.SwapModel, while a bare rearm
// (e.g. after an operator-acknowledged false alarm) passes nil.
func (d *DriftDetector) Reset(model *Model) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if model != nil {
		d.model = model
	}
	if d.model == nil {
		return fmt.Errorf("core: Reset needs a model")
	}
	d.n = 0
	d.mean = 0
	d.cumDev = 0
	d.minDev = 0
	d.drifted = false
	return nil
}

// Model returns the current reference model.
func (d *DriftDetector) Model() *Model { return d.modelSnapshot() }

func (d *DriftDetector) modelSnapshot() *Model {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.model
}
