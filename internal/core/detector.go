package core

import (
	"fmt"

	"repro/internal/event"
)

// Decision is the outcome of one overload-detector evaluation: whether to
// shed, and if so how (partitioning and per-partition drop amount x).
type Decision struct {
	Overloaded bool
	QMax       float64      // maximum tolerable queue size before LB violation
	Trigger    float64      // f * qmax, the activation threshold
	X          float64      // events to drop per partition per window
	Part       Partitioning // dropping intervals for the current window size
}

// DetectorConfig configures the overload detector.
type DetectorConfig struct {
	// LatencyBound is LB, the end-to-end bound detected complex events
	// must meet.
	LatencyBound event.Time
	// F is the queue-fill fraction that triggers shedding: shedding starts
	// once qsize > F*qmax (Section 3.4). Must be in (0, 1).
	F float64
}

// Validate checks the configuration.
func (c DetectorConfig) Validate() error {
	if c.LatencyBound <= 0 {
		return fmt.Errorf("core: detector needs LatencyBound > 0, got %v", c.LatencyBound)
	}
	if c.F <= 0 || c.F >= 1 {
		return fmt.Errorf("core: detector needs F in (0,1), got %v", c.F)
	}
	return nil
}

// OverloadDetector implements Section 3.4: it periodically inspects the
// input queue size, estimates the latency of incoming events from the
// operator throughput, and decides when shedding must start and how many
// events to drop per dropping interval.
//
// The detector is a pure decision function over measurements supplied by
// the caller (queue length, input rate R, operator throughput th); it
// owns no clock and no goroutine, which keeps it trivially testable and
// reusable by both the discrete-event simulator and the live runtime.
type OverloadDetector struct {
	cfg DetectorConfig
}

// NewOverloadDetector builds a detector; the configuration must validate.
func NewOverloadDetector(cfg DetectorConfig) (*OverloadDetector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &OverloadDetector{cfg: cfg}, nil
}

// Config returns the detector configuration.
func (d *OverloadDetector) Config() DetectorConfig { return d.cfg }

// QMax computes the maximum queue size before the latency bound is
// violated: an event at queue position n has estimated latency
// l(e) = n * l(p) with l(p) = 1/th, so qmax = LB * th.
func (d *OverloadDetector) QMax(throughput float64) float64 {
	if throughput <= 0 {
		return 0
	}
	return d.cfg.LatencyBound.Seconds() * throughput
}

// EstimatedLatency returns l(e) for an event at queue position n given
// the operator throughput: l(e) = n * l(p).
func (d *OverloadDetector) EstimatedLatency(queuePos int, throughput float64) event.Time {
	if throughput <= 0 {
		return 0
	}
	sec := float64(queuePos) / throughput
	return event.Time(sec * float64(event.Second))
}

// Evaluate takes the current measurements — queue size, input event rate
// R (events/s), operator throughput th (events/s) and the current window
// size ws — and returns the shedding decision:
//
//	overloaded   iff qsize > f*qmax
//	partitioning ρ = ceil(ws/(qmax - f*qmax)), psize = ws/ρ
//	drop amount  x = δ * psize/R with δ = R - th (extra events per second)
//
// On top of the rate excess, δ includes a backlog-correction term
// (qsize - f*qmax)/LB: shedding the rate excess alone would only hold the
// queue at its current level, leaving the backlog above the trigger to
// random-walk toward qmax under bursty drops. The correction drains the
// excess backlog within roughly one latency bound, pinning the queue —
// and hence the event latency — just above f*qmax (the plateau at
// ~f*LB that Figure 7 shows).
func (d *OverloadDetector) Evaluate(qsize int, rateR, throughput float64, ws int) Decision {
	qmax := d.QMax(throughput)
	dec := Decision{
		QMax:    qmax,
		Trigger: d.cfg.F * qmax,
	}
	if qmax <= 0 {
		return dec
	}
	dec.Part = ComputePartitioning(ws, qmax, d.cfg.F)
	if float64(qsize) <= dec.Trigger {
		return dec
	}
	dec.Overloaded = true
	if rateR <= 0 {
		return dec
	}
	delta := rateR - throughput
	if delta < 0 {
		delta = 0
	}
	delta += (float64(qsize) - dec.Trigger) / d.cfg.LatencyBound.Seconds()
	if delta <= 0 {
		return dec
	}
	dec.X = delta * float64(dec.Part.PSize) / rateR
	return dec
}
