package core

import (
	"math/rand"

	"repro/internal/event"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func intToType(i int) event.Type { return event.Type(i) }
