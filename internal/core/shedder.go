package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/event"
)

// Shedder is the eSPICE load shedder LS (Section 3.5, Algorithm 2). Its
// per-event decision is a single utility-table lookup plus a partition
// threshold comparison — O(1) — so it can sit on the hot path of an
// already overloaded operator.
//
// The shedder is configured by the overload detector through Configure
// and Deactivate; decisions are read through Drop. Configuration and
// decisions may happen on different goroutines: the state is swapped
// atomically and is immutable once published.
type Shedder struct {
	state atomic.Pointer[shedState]

	// exact selects exact-amount dropping: events strictly below the
	// threshold always drop, events exactly at the threshold drop with
	// the probability that makes the expected drops per partition equal
	// x. Algorithm 2 as printed drops *at least* x (every event <= u_th);
	// with the heavily skewed utility tables real training produces, that
	// over-drops by a wide margin, drains the queue far below the
	// trigger, and turns shedding into a low-duty-cycle burst process.
	// Exact mode realizes the paper's stated goal ("drop x events from
	// each partition") and yields the steady latency plateau of Figure 7.
	// Disable with SetExactAmount(false) for the literal algorithm.
	exact atomic.Bool

	// rngState is a small xorshift-style generator for the border
	// probability; atomic so concurrent Drop calls stay data-race free.
	rngState atomic.Uint64

	// decisions/drops are lightweight counters for observability; they
	// are only approximate under concurrency (atomic adds).
	decisions atomic.Uint64
	drops     atomic.Uint64
}

type shedState struct {
	model *Model
	part  Partitioning
	cdt   *CDT
	uth   []int // per-partition utility thresholds
	// borderProb is the probability of dropping an event whose utility
	// equals the partition threshold, when exact-amount dropping is on;
	// 1.0 reproduces Algorithm 2 literally (drop at least x).
	borderProb []float64
	x          float64
}

// NewShedder returns an inactive shedder backed by the given model, with
// exact-amount dropping enabled.
func NewShedder(model *Model) (*Shedder, error) {
	if model == nil {
		return nil, fmt.Errorf("core: shedder needs a model")
	}
	s := &Shedder{}
	s.state.Store(&shedState{model: model})
	s.exact.Store(true)
	s.rngState.Store(0x9E3779B97F4A7C15)
	return s, nil
}

// SetExactAmount toggles exact-amount dropping (see the field comment);
// false reproduces Algorithm 2 literally (drop at least x).
func (s *Shedder) SetExactAmount(on bool) { s.exact.Store(on) }

// ExactAmount reports whether exact-amount dropping is enabled.
func (s *Shedder) ExactAmount() bool { return s.exact.Load() }

// SetModel swaps in a retrained model. The shedder deactivates until the
// next Configure call, since thresholds derived from the old model may
// not fit the new utility distribution. Use SwapModel to keep an active
// overload configuration shedding across the swap.
func (s *Shedder) SetModel(model *Model) error {
	if model == nil {
		return fmt.Errorf("core: SetModel needs a model")
	}
	for {
		old := s.state.Load()
		if s.state.CompareAndSwap(old, &shedState{model: model}) {
			return nil
		}
	}
}

// SwapModel atomically republishes the shedder around a retrained model
// without disturbing an active overload configuration: when shedding is
// active, the CDT and the per-partition thresholds are re-derived from
// the new model under the current partitioning and drop amount x, and the
// whole state is swapped in one atomic publish — concurrent Drop calls
// see either the old model with its thresholds or the new model with its
// thresholds, never a mix. An inactive shedder just adopts the model.
// Swapping in an untrained model deactivates shedding until the next
// Configure (there is no evidence to discriminate utilities).
// Safe to call concurrently with Drop, Configure and Deactivate.
func (s *Shedder) SwapModel(model *Model) error {
	if model == nil {
		return fmt.Errorf("core: SwapModel needs a model")
	}
	for {
		old := s.state.Load()
		next := &shedState{model: model}
		if old.uth != nil && model.Trained() {
			cdt, err := BuildCDT(model, old.part)
			if err != nil {
				return err
			}
			next = activeShedState(model, old.part, cdt, old.x)
		}
		if s.state.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// SeedRNG resets the border-probability random generator to a known
// state, making the probabilistic at-threshold dropping path
// deterministic — for tests and reproducible replays.
func (s *Shedder) SeedRNG(seed uint64) { s.rngState.Store(seed) }

// Model returns the current model.
func (s *Shedder) Model() *Model { return s.state.Load().model }

// Active reports whether shedding is currently enabled.
func (s *Shedder) Active() bool { return s.state.Load().uth != nil }

// X returns the currently configured drop amount per partition.
func (s *Shedder) X() float64 { return s.state.Load().x }

// Partitioning returns the active partitioning (zero value when
// inactive).
func (s *Shedder) Partitioning() Partitioning { return s.state.Load().part }

// Thresholds returns a copy of the active per-partition thresholds, or
// nil when inactive.
func (s *Shedder) Thresholds() []int {
	st := s.state.Load()
	if st.uth == nil {
		return nil
	}
	return append([]int(nil), st.uth...)
}

// Configure activates shedding: drop x events from every partition of
// every window, under the given partitioning. It rebuilds the CDT only
// when the partitioning changed (the utility thresholds for a new x are a
// cheap lookup). An untrained model refuses to shed — there is no
// evidence to discriminate utilities yet.
func (s *Shedder) Configure(part Partitioning, x float64) error {
	for {
		old := s.state.Load()
		if !old.model.Trained() {
			return fmt.Errorf("core: refusing to shed with an untrained model")
		}
		if x <= 0 {
			s.Deactivate()
			return nil
		}
		cdt := old.cdt
		if cdt == nil || old.part != part {
			var err error
			cdt, err = BuildCDT(old.model, part)
			if err != nil {
				return err
			}
		}
		// Publish-by-CAS: a concurrent SwapModel may have republished the
		// state while the CDT was building; retrying re-reads the model so
		// thresholds never mix models.
		if s.state.CompareAndSwap(old, activeShedState(old.model, part, cdt, x)) {
			return nil
		}
	}
}

// activeShedState derives the published shedding state for a model under
// a partitioning and per-partition drop amount x: threshold lookup plus
// the at-threshold border probabilities for exact-amount dropping.
// Shared by Configure and SwapModel so both derive identically.
func activeShedState(model *Model, part Partitioning, cdt *CDT, x float64) *shedState {
	uth := cdt.Thresholds(x)
	border := make([]float64, len(uth))
	for p, u := range uth {
		border[p] = 1
		atU := cdt.At(p, u)
		below := 0.0
		if u > 0 {
			below = cdt.At(p, u-1)
		}
		if mass := atU - below; mass > 0 && x > below {
			if q := (x - below) / mass; q < 1 {
				border[p] = q
			}
		}
	}
	return &shedState{
		model:      model,
		part:       part,
		cdt:        cdt,
		uth:        uth,
		borderProb: border,
		x:          x,
	}
}

// Deactivate stops shedding; the model and any cached CDT are kept.
func (s *Shedder) Deactivate() {
	for {
		old := s.state.Load()
		if old.uth == nil {
			return
		}
		next := &shedState{model: old.model, part: old.part, cdt: old.cdt}
		if s.state.CompareAndSwap(old, next) {
			return
		}
	}
}

// Drop implements applyLS (Algorithm 2): it reports whether the event of
// type t at position pos within a window of (predicted) size ws should be
// dropped from that window. The same event may be dropped from one window
// and kept in another, because its position — and hence its utility —
// differs per window. Drop updates the observability counters with two
// atomic adds per call; hot loops making many decisions per batch should
// use DropCounted + TallyDecisions instead.
func (s *Shedder) Drop(t event.Type, pos, ws int) bool {
	drop, counted := s.DropCounted(t, pos, ws)
	if counted {
		s.decisions.Add(1)
		if drop {
			s.drops.Add(1)
		}
	}
	return drop
}

// DropCounted is the decision core of Drop without the counter updates:
// counted reports whether shedding was active (i.e. whether the call
// counts as a decision). Callers batch the outcomes locally and flush
// them through TallyDecisions once per processing batch, replacing two
// contended atomic adds per membership with two per batch.
func (s *Shedder) DropCounted(t event.Type, pos, ws int) (drop, counted bool) {
	st := s.state.Load()
	if st.uth == nil {
		return false, false
	}
	if ws <= 0 {
		ws = st.model.N()
	}
	if pos < 0 {
		pos = 0
	}
	if pos >= ws {
		// Stale size prediction (the window outgrew ws): late events
		// belong to the last partition and read the last utility cell,
		// exactly as if the prediction had been pos+1.
		pos = ws - 1
	}
	// Partition of the event: partitions divide the actual window size.
	part := pos * st.part.Rho / ws
	if part >= st.part.Rho {
		part = st.part.Rho - 1
	}
	u := st.model.UT().Utility(t, pos, ws)
	switch {
	case u < st.uth[part]:
		return true, true
	case u == st.uth[part]:
		q := 1.0
		if s.exact.Load() {
			q = st.borderProb[part]
		}
		if q >= 1 || s.randFloat() < q {
			return true, true
		}
	}
	return false, true
}

// TallyDecisions folds a batch of locally counted DropCounted outcomes
// into the shedder's observability counters. Safe for concurrent use.
func (s *Shedder) TallyDecisions(decisions, drops uint64) {
	if decisions > 0 {
		s.decisions.Add(decisions)
	}
	if drops > 0 {
		s.drops.Add(drops)
	}
}

// randFloat returns a cheap deterministic pseudo-random value in [0, 1)
// using an atomic splitmix64 step — safe (and merely interleaved, not
// corrupted) under concurrent Drop calls.
func (s *Shedder) randFloat() float64 {
	z := s.rngState.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Decisions reports how many shedding decisions were taken while active.
func (s *Shedder) Decisions() uint64 { return s.decisions.Load() }

// Drops reports how many of those decisions dropped the event.
func (s *Shedder) Drops() uint64 { return s.drops.Load() }
