package core
