package core

import (
	"testing"
)

// skewedModel builds a model where all high-utility mass sits in the
// first half of the window and the second half is sheddable.
func skewedModel(t *testing.T, n int) *Model {
	t.Helper()
	ut, err := NewUtilityTable(1, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	shares := make([][]float64, 1)
	shares[0] = make([]float64, n)
	for p := 0; p < n; p++ {
		if p < n/2 {
			ut.Set(0, p, 90)
		} else {
			ut.Set(0, p, 0)
		}
		shares[0][p] = 1
	}
	m, err := NewModelFromTable(ut, shares)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// uniformLowModel: every position equally sheddable.
func uniformLowModel(t *testing.T, n int) *Model {
	t.Helper()
	ut, err := NewUtilityTable(1, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	shares := [][]float64{make([]float64, n)}
	for p := 0; p < n; p++ {
		ut.Set(0, p, 0)
		shares[0][p] = 1
	}
	m, err := NewModelFromTable(ut, shares)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestChooseFUniformModelPicksHighest(t *testing.T) {
	// Uniformly sheddable windows: even tiny partitions have low-utility
	// events, so the highest candidate f wins.
	m := uniformLowModel(t, 100)
	f := ChooseF(m, 100, 200, 2, nil)
	if f != 0.95 {
		t.Errorf("ChooseF = %v, want 0.95", f)
	}
}

func TestChooseFSkewedModelBacksOff(t *testing.T) {
	// High-utility mass concentrated in the first half: a large f makes
	// partitions so small that first-half partitions contain nothing
	// sheddable; ChooseF must pick a smaller f whose partitions span the
	// skew.
	m := skewedModel(t, 100)
	// qmax = 110: any f that yields more than one partition leaves the
	// first (all-high-utility) partition unsheddable, so only an f small
	// enough for rho == 1 (buffer >= 100, i.e. f <= 0.09) passes.
	f := ChooseF(m, 100, 110, 2, []float64{0.95, 0.8, 0.6, 0.4, 0.2, 0.05})
	if f != 0.05 {
		t.Errorf("ChooseF = %v, want 0.05 for skewed model", f)
	}
	// The chosen f must actually satisfy the sheddability condition.
	part := ComputePartitioning(100, 110, f)
	if !everyPartitionSheddable(m, part, lowUtilityClassMax(m), 2) {
		t.Errorf("chosen f=%v does not keep partitions sheddable", f)
	}
}

func TestChooseFFallsBackToSmallest(t *testing.T) {
	// Impossible demand: x larger than any partition could shed; falls
	// back to the smallest candidate.
	m := skewedModel(t, 10)
	f := ChooseF(m, 10, 12, 1000, []float64{0.9, 0.7, 0.5})
	if f != 0.5 {
		t.Errorf("ChooseF = %v, want fallback 0.5", f)
	}
}

func TestChooseFCustomCandidates(t *testing.T) {
	m := uniformLowModel(t, 50)
	f := ChooseF(m, 50, 100, 1, []float64{0.3, 0.6})
	if f != 0.6 {
		t.Errorf("ChooseF = %v, want 0.6 (highest valid candidate)", f)
	}
	// Out-of-range candidates are skipped.
	f = ChooseF(m, 50, 100, 1, []float64{1.5, 0.4, -2})
	if f != 0.4 {
		t.Errorf("ChooseF = %v, want 0.4", f)
	}
}

func TestLowUtilityClassMax(t *testing.T) {
	// Typical trained model: most mass at utility 0 -> low class is 0.
	m := skewedModel(t, 100)
	if got := lowUtilityClassMax(m); got != 0 {
		t.Errorf("lowUtilityClassMax = %d, want 0", got)
	}
	// Model with no shares at all: 0 by convention.
	ut, _ := NewUtilityTable(1, 4, 1)
	empty, err := NewModelFromTable(ut, [][]float64{{0, 0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := lowUtilityClassMax(empty); got != 0 {
		t.Errorf("empty model class = %d", got)
	}
}
