package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestFrameScannerWhole(t *testing.T) {
	buf := AppendFrame(nil, FrameEvents, []byte("abc"))
	buf = AppendFrame(buf, FrameEOF, nil)
	s := newFrameScanner(0)
	s.Feed(buf)
	typ, payload, ok, err := s.Next()
	if err != nil || !ok || typ != FrameEvents || !bytes.Equal(payload, []byte("abc")) {
		t.Fatalf("first frame: typ=%#x payload=%q ok=%v err=%v", typ, payload, ok, err)
	}
	typ, payload, ok, err = s.Next()
	if err != nil || !ok || typ != FrameEOF || len(payload) != 0 {
		t.Fatalf("second frame: typ=%#x payload=%q ok=%v err=%v", typ, payload, ok, err)
	}
	if _, _, ok, err = s.Next(); ok || err != nil {
		t.Fatalf("empty scanner returned ok=%v err=%v", ok, err)
	}
	if s.Buffered() != 0 {
		t.Fatalf("%d bytes left buffered", s.Buffered())
	}
}

// TestFrameScannerByteAtATime pins incremental parsing: frames split at
// every possible boundary still come out whole and in order.
func TestFrameScannerByteAtATime(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5A}, 300) // 2-byte length prefix
	buf := AppendFrame(nil, FrameEvents, payload)
	buf = AppendFrame(buf, FrameCredit, []byte{0x7F})
	s := newFrameScanner(0)
	var got int
	for i := range buf {
		s.Feed(buf[i : i+1])
		for {
			typ, p, ok, err := s.Next()
			if err != nil {
				t.Fatalf("byte %d: %v", i, err)
			}
			if !ok {
				break
			}
			switch got {
			case 0:
				if typ != FrameEvents || !bytes.Equal(p, payload) {
					t.Fatalf("frame 0 corrupted: typ=%#x len=%d", typ, len(p))
				}
			case 1:
				if typ != FrameCredit || !bytes.Equal(p, []byte{0x7F}) {
					t.Fatalf("frame 1 corrupted: typ=%#x payload=%v", typ, p)
				}
			}
			got++
		}
	}
	if got != 2 {
		t.Fatalf("got %d frames, want 2", got)
	}
}

func TestFrameScannerOversized(t *testing.T) {
	s := newFrameScanner(16)
	frame := AppendFrame(nil, FrameEvents, bytes.Repeat([]byte{1}, 17))
	s.Feed(frame)
	if _, _, _, err := s.Next(); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestFrameScannerMalformedLength(t *testing.T) {
	// Eleven continuation bytes cannot be a valid uvarint length.
	s := newFrameScanner(0)
	s.Feed(append([]byte{FrameEvents}, bytes.Repeat([]byte{0x80}, 11)...))
	if _, _, _, err := s.Next(); err == nil {
		t.Fatal("malformed length prefix accepted")
	}

	// A 10-byte uvarint that overflows is rejected as well.
	s = newFrameScanner(0)
	over := make([]byte, 0, 12)
	over = append(over, FrameEvents)
	over = append(over, bytes.Repeat([]byte{0xFF}, 9)...)
	over = append(over, 0x7F)
	s.Feed(over)
	if _, _, _, err := s.Next(); err == nil {
		t.Fatal("overflowing length prefix accepted")
	}
}

func TestAppendCreditFrame(t *testing.T) {
	s := newFrameScanner(0)
	s.Feed(AppendCreditFrame(nil, 123456))
	typ, payload, ok, err := s.Next()
	if err != nil || !ok || typ != FrameCredit {
		t.Fatalf("typ=%#x ok=%v err=%v", typ, ok, err)
	}
	n, k := binary.Uvarint(payload)
	if k <= 0 || n != 123456 {
		t.Fatalf("credit decoded as %d (k=%d)", n, k)
	}
}
