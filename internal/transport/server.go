package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/event"
)

// Sink absorbs ingested event batches in connection order. Both
// runtime.Pipeline and engine.Engine satisfy it; SubmitBatch must be
// done with the slice by the time it returns (both are — the serial
// pipeline copies it, the sharded pipeline partitions it straight into
// the shard queues on the calling goroutine) and may block — that block
// is exactly the backpressure the credit protocol propagates to clients.
type Sink interface {
	SubmitBatch(events []event.Event)
}

// ServerConfig assembles an ingest server.
type ServerConfig struct {
	// Sink receives every accepted event (required).
	Sink Sink
	// Registry bounds the acceptable binary type ids and resolves NDJSON
	// type names. Nil disables both (any non-negative id passes).
	Registry *event.Registry
	// Window is the per-connection credit window in events: the maximum
	// number of events a binary client may have sent beyond what the
	// sink has absorbed. Default DefaultWindow.
	Window int
	// MaxFrame bounds a single frame's payload bytes
	// (DefaultMaxFrame when zero).
	MaxFrame int
	// MaxVals bounds the per-event attribute count
	// (DefaultMaxVals when zero).
	MaxVals int
	// StatsJSON, when non-nil, answers FrameStatsReq with its result —
	// the hook espice-serve uses to expose pipeline/shedder statistics
	// to load generators. Called from connection goroutines; must be
	// safe for concurrent use.
	StatsJSON func() []byte
	// Logf logs connection-level events (nil silences them).
	Logf func(format string, args ...any)
}

// DefaultWindow is the per-connection credit window in events.
const DefaultWindow = 8192

// ServerStats is a snapshot of server counters.
type ServerStats struct {
	// ConnsAccepted counts every accepted connection; ConnsActive the
	// currently open ones.
	ConnsAccepted uint64
	ConnsActive   int
	// Events counts accepted events, split by framing.
	EventsBinary uint64
	EventsNDJSON uint64
	// Frames counts parsed binary frames of every type.
	Frames uint64
	// ProtocolErrors counts connections dropped for malformed input.
	ProtocolErrors uint64
}

// Server is a TCP ingest server; build it with NewServer and drive it
// with Serve or ListenAndServe.
type Server struct {
	cfg ServerConfig

	accepted  atomic.Uint64
	evBinary  atomic.Uint64
	evNDJSON  atomic.Uint64
	frames    atomic.Uint64
	protoErrs atomic.Uint64
	activeCt  atomic.Int64

	mu        sync.Mutex
	ln        net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
	serving   bool // a Serve call took ownership and will close serveDone
	serveDone chan struct{}
}

// NewServer validates the configuration and builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Sink == nil {
		return nil, fmt.Errorf("transport: ServerConfig.Sink is required")
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("transport: Window must be >= 0, got %d", cfg.Window)
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	return &Server{
		cfg:       cfg,
		conns:     make(map[net.Conn]struct{}),
		serveDone: make(chan struct{}),
	}, nil
}

// logf forwards to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close (or a fatal listener
// error) and blocks until every connection handler has returned. The
// listener is closed on return.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("transport: server closed")
	}
	if s.serving {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("transport: Serve called twice")
	}
	s.ln = ln
	s.serving = true
	s.mu.Unlock()

	var wg sync.WaitGroup
	defer close(s.serveDone)
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.accepted.Add(1)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			wg.Wait()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.activeCt.Add(1)
			defer s.activeCt.Add(-1)
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every open connection and waits for
// Serve to return. Events already decoded are still submitted before
// their handlers exit; close the sink's input only after Close returns.
// Idempotent, and safe before Serve was ever called: the wait applies
// only when a Serve call owns the serveDone channel and will close it.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		serving := s.serving
		s.mu.Unlock()
		if serving {
			<-s.serveDone
		}
		return nil
	}
	s.closed = true
	ln := s.ln
	serving := s.serving
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	if serving {
		<-s.serveDone
	}
	return err
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		ConnsAccepted:  s.accepted.Load(),
		ConnsActive:    int(s.activeCt.Load()),
		EventsBinary:   s.evBinary.Load(),
		EventsNDJSON:   s.evNDJSON.Load(),
		Frames:         s.frames.Load(),
		ProtocolErrors: s.protoErrs.Load(),
	}
}

// handle serves one connection: sniff the framing from the first byte,
// then run the matching read loop until EOF or error.
func (s *Server) handle(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 32<<10)
	first, err := br.Peek(1)
	if err != nil {
		return // closed before the first byte; nothing to do
	}
	if first[0] == Magic {
		s.handleBinary(conn, br)
		return
	}
	s.handleNDJSON(conn, br)
}

// protoError counts, reports (best effort) and logs a protocol error.
func (s *Server) protoError(conn net.Conn, err error) {
	s.protoErrs.Add(1)
	s.logf("transport: %s: %v", conn.RemoteAddr(), err)
	// Best-effort error frame; the peer may already be gone.
	_, _ = conn.Write(AppendFrame(nil, FrameError, []byte(err.Error())))
}

// handleBinary runs the framed read loop. Credit accounting: the
// client starts with Window events of credit; every FrameEvents spends
// its event count (overspending is a protocol error, which makes the
// window a hard bound on per-connection buffering); after the frame's
// events have been submitted to the sink — which blocks while the
// pipeline's bounded queue is full — the same amount is granted back.
// Decode, submit and credit writes all happen on this one goroutine, so
// a connection never buffers more than one frame beyond the window.
func (s *Server) handleBinary(conn net.Conn, br *bufio.Reader) {
	var preface [2]byte
	if _, err := io.ReadFull(br, preface[:]); err != nil {
		return
	}
	if preface[1] != ProtocolVersion {
		s.protoError(conn, fmt.Errorf("transport: protocol version %d not supported", preface[1]))
		return
	}
	window := uint64(s.cfg.Window)
	writeBuf := AppendCreditFrame(nil, window)
	if _, err := conn.Write(writeBuf); err != nil {
		return
	}

	dec := Decoder{Retain: true, MaxVals: s.cfg.MaxVals, MaxBatch: s.cfg.Window}
	if s.cfg.Registry != nil {
		dec.MaxTypes = s.cfg.Registry.Len()
	}
	scan := newFrameScanner(s.cfg.MaxFrame)
	read := make([]byte, 32<<10)
	credit := window
	var accepted uint64
	var sawEOF bool
	for {
		n, err := br.Read(read)
		if n > 0 {
			scan.Feed(read[:n])
			for {
				typ, payload, ok, serr := scan.Next()
				if serr != nil {
					s.protoError(conn, serr)
					return
				}
				if !ok {
					break
				}
				s.frames.Add(1)
				switch typ {
				case FrameEvents:
					if sawEOF {
						s.protoError(conn, fmt.Errorf("transport: events after EOF frame"))
						return
					}
					events, derr := dec.DecodeEvents(payload)
					if derr != nil {
						s.protoError(conn, derr)
						return
					}
					if uint64(len(events)) > credit {
						s.protoError(conn, fmt.Errorf("transport: %d events exceed remaining credit %d", len(events), credit))
						return
					}
					credit -= uint64(len(events))
					if len(events) > 0 {
						s.cfg.Sink.SubmitBatch(events)
						accepted += uint64(len(events))
						s.evBinary.Add(uint64(len(events)))
						credit += uint64(len(events))
						writeBuf = AppendCreditFrame(writeBuf[:0], uint64(len(events)))
						if _, werr := conn.Write(writeBuf); werr != nil {
							return
						}
					}
				case FrameEOF:
					sawEOF = true
					var tmp [binary.MaxVarintLen64]byte
					done := AppendFrame(writeBuf[:0], FrameDone, tmp[:binary.PutUvarint(tmp[:], accepted)])
					_, _ = conn.Write(done)
					// Keep reading: the client may still request stats
					// before closing; further events are a protocol error.
				case FrameStatsReq:
					var stats []byte
					if s.cfg.StatsJSON != nil {
						stats = s.cfg.StatsJSON()
					}
					if _, werr := conn.Write(AppendFrame(writeBuf[:0], FrameStats, stats)); werr != nil {
						return
					}
				default:
					s.protoError(conn, fmt.Errorf("transport: unknown frame type 0x%02x", typ))
					return
				}
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("transport: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
	}
}

// handleNDJSON runs the line read loop: parse each line into an event,
// batch adjacent buffered lines, and submit whenever the read buffer
// runs dry (so a lone line is never delayed). Backpressure is the
// bounded read: the loop will not read more lines while the sink
// blocks, which eventually blocks the producer in TCP flow control.
func (s *Server) handleNDJSON(conn net.Conn, br *bufio.Reader) {
	const maxBatch = 256
	batch := make([]event.Event, 0, maxBatch)
	flush := func() {
		if len(batch) > 0 {
			s.cfg.Sink.SubmitBatch(batch)
			s.evNDJSON.Add(uint64(len(batch)))
			batch = batch[:0]
		}
	}
	var lineBuf []byte
	for {
		line, err := readLineBounded(br, &lineBuf, s.cfg.MaxFrame)
		if err == errLineTooLong {
			flush()
			s.protoErrs.Add(1)
			s.logf("transport: %s: ndjson line exceeds %d bytes", conn.RemoteAddr(), s.cfg.MaxFrame)
			fmt.Fprintf(conn, "{\"error\":%q}\n", "line too long")
			return
		}
		if trimmed := trimLine(line); len(trimmed) > 0 {
			ev, perr := decodeNDJSONLine(trimmed, s.cfg.Registry)
			if perr != nil {
				flush()
				s.protoErrs.Add(1)
				s.logf("transport: %s: %v", conn.RemoteAddr(), perr)
				fmt.Fprintf(conn, "{\"error\":%q}\n", perr.Error())
				return
			}
			batch = append(batch, ev)
		}
		if err != nil {
			flush()
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("transport: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if len(batch) >= maxBatch || br.Buffered() == 0 {
			flush()
		}
	}
}

// errLineTooLong reports an NDJSON line exceeding the frame bound.
var errLineTooLong = errors.New("transport: ndjson line too long")

// readLineBounded reads one newline-terminated line into *buf (reused
// across calls), failing with errLineTooLong as soon as the
// accumulated length exceeds max — unlike bufio's ReadBytes, it never
// buffers an unbounded line before checking, so one newline-less
// connection cannot grow server memory past the frame bound.
func readLineBounded(br *bufio.Reader, buf *[]byte, max int) ([]byte, error) {
	line := (*buf)[:0]
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > max {
			*buf = line[:0]
			return nil, errLineTooLong
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		*buf = line
		return line, err
	}
}

// trimLine strips the trailing newline and optional carriage return.
func trimLine(line []byte) []byte {
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	return line
}
