package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
)

// Sink absorbs ingested event batches in connection order. Both
// runtime.Pipeline and engine.Engine satisfy it; SubmitBatch must be
// done with the slice by the time it returns (both are — the serial
// pipeline copies it, the sharded pipeline partitions it straight into
// the shard queues on the calling goroutine) and may block — that block
// is exactly the backpressure the credit protocol propagates to clients.
type Sink interface {
	SubmitBatch(events []event.Event)
}

// TenantSink is the optional Sink extension a tenant-aware sink
// implements: when the server resolved a connection to a named tenant
// (see ServerConfig.Authenticate) and the sink satisfies TenantSink,
// accepted batches are submitted with their tenant identity so the
// sink can scope delivery and shedding per tenant. engine.Engine
// implements it. Batches from the anonymous tenant (and all batches
// when tenancy is disabled) go through plain SubmitBatch.
type TenantSink interface {
	Sink
	SubmitTenantBatch(tenant string, events []event.Event)
}

// Journal is the optional durability hook in front of the sink: when
// configured, every accepted event batch is appended (as its
// already-encoded wire bytes) and committed — fsynced — before it is
// submitted to the sink or acknowledged to the producer. A non-nil
// Commit error means the batch is NOT durable; the server then drops
// the connection without acking, so producers retransmit after the
// restart and the write-ahead log replays everything it did accept.
// internal/wal.Log satisfies the contract via a thin adapter in
// cmd/espice-serve (the count/maxTS metadata feeds its release policy).
type Journal interface {
	// Append stages the batch's wire bytes together with its dedup
	// identity (session, batchSeq — both zero for non-durable
	// connections) and returns the assigned journal sequence.
	Append(session, batchSeq uint64, count int, maxTS event.Time, payload []byte) (uint64, error)
	// Commit blocks until the record is on stable storage.
	Commit(seq uint64) error
}

// ErrJournalDegraded is the sentinel a Journal returns (possibly
// wrapped) when it has degraded to lossy instead of failing outright —
// the WAL adapter maps wal.ErrDegraded to it. A degraded journal result
// does NOT drop the connection: the server submits the batch to the
// sink anyway, advances the session watermark in memory only, and acks
// it with FlagDegraded set, making the loss of durability explicit
// at-most-once rather than a silent stall. Any other journal error
// still drops the connection unacknowledged (fail-stop).
var ErrJournalDegraded = errors.New("transport: journal degraded (lossy)")

// JournalHealth is an optional Journal extension: a journal that can
// report its live degraded state lets the server close a degraded
// episode as soon as the journal is restored, even when no batch
// arrives to observe the healthy result — otherwise the degraded bit
// (and its stats) would go stale on an idle connection until the next
// journaled batch.
type JournalHealth interface {
	Degraded() bool
}

// SessionState seeds one durable session's dedup watermark, typically
// from a write-ahead-log recovery (see Server.SeedSessions).
type SessionState struct {
	// Applied is the highest batch sequence applied for the session.
	Applied uint64
	// Accepted is the session's cumulative accepted event count.
	Accepted uint64
}

// ServerConfig assembles an ingest server.
type ServerConfig struct {
	// Sink receives every accepted event (required).
	Sink Sink
	// Journal, when non-nil, makes ingestion durable: batches are
	// journaled and committed before they are submitted or acked.
	Journal Journal
	// Registry bounds the acceptable binary type ids and resolves NDJSON
	// type names. Nil disables both (any non-negative id passes).
	Registry *event.Registry
	// Window is the per-connection credit window in events: the maximum
	// number of events a binary client may have sent beyond what the
	// sink has absorbed. Default DefaultWindow.
	Window int
	// MaxFrame bounds a single frame's payload bytes
	// (DefaultMaxFrame when zero).
	MaxFrame int
	// MaxVals bounds the per-event attribute count
	// (DefaultMaxVals when zero).
	MaxVals int
	// IdleTimeout evicts connections that produce no bytes for this
	// long: every read carries a deadline, so a stalled or half-dead
	// peer can never pin a handler goroutine (and its buffers) forever.
	// Zero disables the idle guard.
	IdleTimeout time.Duration
	// WriteTimeout bounds every write to a connection; a peer that
	// stops reading its credit/ack stream is dropped instead of
	// wedging the handler in a full TCP send buffer. Zero disables it.
	WriteTimeout time.Duration
	// StatsJSON, when non-nil, answers FrameStatsReq with its result —
	// the hook espice-serve uses to expose pipeline/shedder statistics
	// to load generators. Called from connection goroutines; must be
	// safe for concurrent use.
	StatsJSON func() []byte
	// Authenticate, when non-nil, enables multi-tenancy: it maps a
	// presented tenant token to a tenant identity and quota (see
	// TenantAuth). Connections that present no token — every version-1
	// binary connection, and NDJSON connections without a token line —
	// are authenticated with a nil token, so the callback owns the
	// anonymous-tenant policy too. An error rejects the connection with
	// FrameError. Called from connection goroutines; must be safe for
	// concurrent use. Nil disables tenancy entirely.
	Authenticate func(token []byte) (TenantAuth, error)
	// SessionExpiryFloor is the minimum idle time below which
	// ExpireSessions refuses to expire a durable session, whatever idle
	// period the caller passes. A producer mid-redial has conns == 0
	// while it backs off; expiring its session in that window would
	// drop the dedup watermark and double-accept the retransmit, so the
	// floor must sit comfortably above the client redial horizon
	// (MaxRedials × MaxBackoff). Zero means DefaultSessionExpiryFloor;
	// negative disables the floor (tests only).
	SessionExpiryFloor time.Duration
	// Logf logs connection-level events (nil silences them).
	Logf func(format string, args ...any)
}

// DefaultWindow is the per-connection credit window in events.
const DefaultWindow = 8192

// DefaultSessionExpiryFloor is the default minimum idle time before a
// durable session may expire (see ServerConfig.SessionExpiryFloor):
// comfortably above the default client redial horizon of 5 attempts
// backed off to 2s each.
const DefaultSessionExpiryFloor = 30 * time.Second

// maxSessionTombstones bounds the expired-session watermark cache (see
// ExpireSessions); the oldest tombstones are evicted FIFO past it.
const maxSessionTombstones = 8192

// ServerStats is a snapshot of server counters.
type ServerStats struct {
	// ConnsAccepted counts every accepted connection; ConnsActive the
	// currently open ones.
	ConnsAccepted uint64
	ConnsActive   int
	// Events counts accepted events, split by framing.
	EventsBinary uint64
	EventsNDJSON uint64
	// Frames counts parsed binary frames of every type.
	Frames uint64
	// ProtocolErrors counts connections dropped for malformed input.
	ProtocolErrors uint64
	// DedupBatches counts durable batches acknowledged without
	// re-delivery because their sequence was at or below the session's
	// applied watermark (producer retransmits after a crash or redial).
	DedupBatches uint64
	// Sessions counts the durable sessions currently tracked (seen and
	// not expired).
	Sessions int
	// Connection error taxonomy: IdleEvictions counts connections
	// dropped by the IdleTimeout read guard, WriteTimeouts those
	// dropped by the WriteTimeout guard, ReadErrors other non-clean
	// read failures (resets, aborted connections), and PanicsRecovered
	// handler panics contained by the per-connection recovery guard.
	IdleEvictions   uint64
	WriteTimeouts   uint64
	ReadErrors      uint64
	PanicsRecovered uint64
	// Degraded reports that the journal is currently refusing
	// durability and the server is acking at-most-once (see
	// ErrJournalDegraded); DegradedSince is when the current episode
	// began (zero when healthy). LostDurability counts events accepted
	// and acknowledged without a durable journal record — the explicit
	// price of degrade-to-lossy, visible instead of silent.
	Degraded       bool
	DegradedSince  time.Time
	LostDurability uint64
	// DegradedFor is the cumulative time spent degraded over the server
	// lifetime, current episode included.
	DegradedFor time.Duration
	// AuthFailures counts connections rejected because their tenant
	// token did not authenticate (only with ServerConfig.Authenticate).
	AuthFailures uint64
	// Tenants holds one entry per tenant seen since start, sorted by
	// name; empty when tenancy is disabled.
	Tenants []TenantStats
}

// Server is a TCP ingest server; build it with NewServer and drive it
// with Serve or ListenAndServe.
type Server struct {
	cfg ServerConfig

	accepted  atomic.Uint64
	evBinary  atomic.Uint64
	evNDJSON  atomic.Uint64
	frames    atomic.Uint64
	protoErrs atomic.Uint64
	dedups    atomic.Uint64
	activeCt  atomic.Int64

	idleEvicts    atomic.Uint64
	writeTimeouts atomic.Uint64
	readErrs      atomic.Uint64
	panics        atomic.Uint64
	lostDurable   atomic.Uint64
	degradedNanos atomic.Int64 // UnixNano of the degrade transition; 0 = healthy
	degradedTotal atomic.Int64 // nanoseconds spent degraded in closed episodes
	shutdownAt    atomic.Int64 // UnixNano of the Shutdown drain deadline; 0 = none

	// sessions maps durable session ids to their state; entries are
	// created on FrameHello or seeded from recovery and outlive their
	// connections (that is the point). They live for the server
	// lifetime unless the application prunes quiet ones with
	// ExpireSessions. tombs keeps the watermarks of expired sessions
	// (bounded FIFO, tombOrder is the eviction queue) so a producer
	// rebinding after an expiry re-seeds its dedup watermark instead of
	// double-accepting the retransmitted tail.
	sessMu    sync.Mutex
	sessions  map[uint64]*session
	tombs     map[uint64]SessionState
	tombOrder []uint64

	// tenants maps tenant identities to their quota/accounting state
	// (only populated when ServerConfig.Authenticate is set).
	tenMu     sync.Mutex
	tenants   map[string]*tenantState
	authFails atomic.Uint64

	mu        sync.Mutex
	ln        net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
	serving   bool // a Serve call took ownership and will close serveDone
	serveDone chan struct{}
}

// session is one durable session's server-side state. Its mutex
// serializes the dedup-check → journal → submit → advance sequence, so
// a retransmitted batch racing its original (two connections of the
// same session) can never be applied twice.
type session struct {
	mu       sync.Mutex
	applied  uint64 // highest batch sequence applied
	accepted uint64 // cumulative accepted events
	// seeded marks a watermark installed by SeedSessions (WAL
	// recovery): a seeded session must stay contiguous, while a fresh
	// one may resume above batch 1 (see the FrameEventsSeq handler).
	seeded bool
	// conns counts the connections currently bound to the session and
	// idleSince records when it last dropped to zero; both are guarded
	// by Server.sessMu and drive ExpireSessions.
	conns     int
	idleSince time.Time
}

// NewServer validates the configuration and builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Sink == nil {
		return nil, fmt.Errorf("transport: ServerConfig.Sink is required")
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("transport: Window must be >= 0, got %d", cfg.Window)
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	return &Server{
		cfg:       cfg,
		conns:     make(map[net.Conn]struct{}),
		sessions:  make(map[uint64]*session),
		tombs:     make(map[uint64]SessionState),
		tenants:   make(map[string]*tenantState),
		serveDone: make(chan struct{}),
	}, nil
}

// SeedSessions installs recovered dedup watermarks, one per durable
// session replayed from the write-ahead log. Call it before Serve:
// producers reconnecting after a restart then have their already-
// journaled batches acknowledged instead of re-delivered.
func (s *Server) SeedSessions(states map[uint64]SessionState) {
	now := time.Now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	for id, st := range states {
		s.sessions[id] = &session{applied: st.Applied, accepted: st.Accepted, seeded: true, idleSince: now}
	}
}

// bindSession returns (creating if needed) the state of one durable
// session and binds the calling connection to it; a bound session is
// never expired. A session rebinding after ExpireSessions dropped it
// re-seeds its dedup watermark from the expiry tombstone, so the
// producer's retransmitted tail is deduplicated, not double-accepted.
// Pair with unbindSession when the connection ends.
func (s *Server) bindSession(id uint64) *session {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess := s.sessions[id]
	if sess == nil {
		sess = &session{}
		if st, ok := s.tombs[id]; ok {
			delete(s.tombs, id) // its tombOrder entry is skipped at eviction
			sess.applied = st.Applied
			sess.accepted = st.Accepted
			sess.seeded = true
		}
		s.sessions[id] = sess
	}
	sess.conns++
	return sess
}

// unbindSession releases one connection's binding, starting the
// session's idle clock when it was the last.
func (s *Server) unbindSession(sess *session) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if sess.conns--; sess.conns == 0 {
		sess.idleSince = time.Now()
	}
}

// ExpireSessions drops every durable session that has had no bound
// connection for at least idle, returning the expired ids, and bounds
// the session table under producer churn. The effective idle period is
// clamped up to ServerConfig.SessionExpiryFloor: a producer mid-redial
// has conns == 0 for exactly its backoff window, and expiring it there
// would discard the dedup watermark its retransmit depends on. Each
// expired session also leaves a bounded watermark tombstone behind, so
// even a session that does expire and later rebinds resumes dedup from
// where it left off (see bindSession); only a tombstone evicted under
// churn falls back to the fresh-session path, where the producer's
// next batch is adopted as the new watermark base. The ids are
// returned so the caller can drop derived state too (espice-serve
// unpins the sessions' newest WAL records, see -session-expiry).
func (s *Server) ExpireSessions(idle time.Duration) []uint64 {
	floor := s.cfg.SessionExpiryFloor
	if floor == 0 {
		floor = DefaultSessionExpiryFloor
	}
	if floor > 0 && idle < floor {
		idle = floor
	}
	now := time.Now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	var expired []uint64
	for id, sess := range s.sessions {
		if sess.conns == 0 && now.Sub(sess.idleSince) >= idle {
			delete(s.sessions, id)
			sess.mu.Lock()
			st := SessionState{Applied: sess.applied, Accepted: sess.accepted}
			sess.mu.Unlock()
			s.entombLocked(id, st)
			expired = append(expired, id)
		}
	}
	return expired
}

// entombLocked records an expired session's watermark in the bounded
// tombstone cache; sessMu must be held.
func (s *Server) entombLocked(id uint64, st SessionState) {
	if _, ok := s.tombs[id]; !ok {
		s.tombOrder = append(s.tombOrder, id)
	}
	s.tombs[id] = st
	for len(s.tombs) > maxSessionTombstones && len(s.tombOrder) > 0 {
		victim := s.tombOrder[0]
		s.tombOrder = s.tombOrder[1:]
		delete(s.tombs, victim) // no-op for entries revived by bindSession
	}
}

// SessionStates snapshots every durable session's watermark.
func (s *Server) SessionStates() map[uint64]SessionState {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	out := make(map[uint64]SessionState, len(s.sessions))
	for id, sess := range s.sessions {
		sess.mu.Lock()
		out[id] = SessionState{Applied: sess.applied, Accepted: sess.accepted}
		sess.mu.Unlock()
	}
	return out
}

// logf forwards to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// degraded reports whether the journal is currently in a degraded
// (lossy) episode. When the journal exposes its live health, a restored
// journal closes the episode here — so the degraded view cannot go
// stale while no batches arrive.
func (s *Server) degraded() bool {
	if s.degradedNanos.Load() == 0 {
		return false
	}
	if jh, ok := s.cfg.Journal.(JournalHealth); ok && !jh.Degraded() {
		s.noteJournal(false)
		return false
	}
	return true
}

// noteJournal tracks degrade/restore transitions from journal results:
// a degraded result opens an episode, a healthy result closes it.
func (s *Server) noteJournal(degraded bool) {
	if degraded {
		if s.degradedNanos.CompareAndSwap(0, time.Now().UnixNano()) {
			s.logf("transport: journal degraded; acking at-most-once")
		}
		return
	}
	if since := s.degradedNanos.Swap(0); since != 0 {
		episode := time.Since(time.Unix(0, since))
		s.degradedTotal.Add(int64(episode))
		s.logf("transport: journal restored after %v of degraded delivery",
			episode.Round(time.Millisecond))
	}
}

// capDeadline bounds a per-operation deadline by the Shutdown drain
// deadline, so a handler re-arming its timeouts cannot outlive a
// bounded shutdown. A zero d (no per-op timeout configured) still
// yields the drain deadline once one is set.
func (s *Server) capDeadline(d time.Time) time.Time {
	if at := s.shutdownAt.Load(); at != 0 {
		if sd := time.Unix(0, at); d.IsZero() || sd.Before(d) {
			return sd
		}
	}
	return d
}

// write sends one buffer under the configured write deadline, counting
// deadline expiries in the taxonomy. All handler writes go through it.
func (s *Server) write(conn net.Conn, p []byte) error {
	var d time.Time
	if s.cfg.WriteTimeout > 0 {
		d = time.Now().Add(s.cfg.WriteTimeout)
	}
	if d = s.capDeadline(d); !d.IsZero() {
		_ = conn.SetWriteDeadline(d)
	}
	_, err := conn.Write(p)
	if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
		s.writeTimeouts.Add(1)
		s.logf("transport: %s: write timed out; dropping connection", conn.RemoteAddr())
	}
	return err
}

// armIdle arms the idle read deadline before a blocking read.
func (s *Server) armIdle(conn net.Conn) {
	var d time.Time
	if s.cfg.IdleTimeout > 0 {
		d = time.Now().Add(s.cfg.IdleTimeout)
	}
	if d = s.capDeadline(d); !d.IsZero() {
		_ = conn.SetReadDeadline(d)
	}
}

// noteReadErr classifies a read-loop failure into the error taxonomy
// (clean EOFs and locally closed connections are not errors).
func (s *Server) noteReadErr(conn net.Conn, err error) {
	switch {
	case errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed):
	case errors.Is(err, os.ErrDeadlineExceeded):
		s.idleEvicts.Add(1)
		s.logf("transport: %s: idle for %v; evicting", conn.RemoteAddr(), s.cfg.IdleTimeout)
	default:
		s.readErrs.Add(1)
		s.logf("transport: %s: read: %v", conn.RemoteAddr(), err)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close (or a fatal listener
// error) and blocks until every connection handler has returned. The
// listener is closed on return.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("transport: server closed")
	}
	if s.serving {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("transport: Serve called twice")
	}
	s.ln = ln
	s.serving = true
	s.mu.Unlock()

	var wg sync.WaitGroup
	defer close(s.serveDone)
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.accepted.Add(1)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			wg.Wait()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.activeCt.Add(1)
			defer s.activeCt.Add(-1)
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			// A panic in a handler (a poisoned frame tripping a decode
			// bug, a sink misbehaving) costs this connection, not the
			// server: the process keeps accepting.
			defer func() {
				if r := recover(); r != nil {
					s.panics.Add(1)
					s.logf("transport: %s: handler panic (contained): %v", conn.RemoteAddr(), r)
				}
			}()
			s.handle(conn)
		}()
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every open connection and waits for
// Serve to return. Events already decoded are still submitted before
// their handlers exit; close the sink's input only after Close returns.
// Idempotent, and safe before Serve was ever called: the wait applies
// only when a Serve call owns the serveDone channel and will close it.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		serving := s.serving
		s.mu.Unlock()
		if serving {
			<-s.serveDone
		}
		return nil
	}
	s.closed = true
	ln := s.ln
	serving := s.serving
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	if serving {
		<-s.serveDone
	}
	return err
}

// Shutdown is the bounded, graceful variant of Close: it stops
// accepting immediately, then gives every open connection until the
// timeout to finish its stream naturally — each gets one final
// read/write deadline, so a handler either drains to EOF or has its
// next wire operation fail at the deadline. It blocks until every
// handler has returned (at most ~timeout). In-flight batches are still
// journaled and submitted as usual; only peers that keep streaming past
// the deadline are cut off. Idempotent with Close; zero or negative
// timeout degrades to Close.
func (s *Server) Shutdown(timeout time.Duration) error {
	if timeout <= 0 {
		return s.Close()
	}
	s.mu.Lock()
	if s.closed {
		serving := s.serving
		s.mu.Unlock()
		if serving {
			<-s.serveDone
		}
		return nil
	}
	s.closed = true
	ln := s.ln
	serving := s.serving
	deadline := time.Now().Add(timeout)
	s.shutdownAt.Store(deadline.UnixNano()) // caps all re-armed deadlines too
	for c := range s.conns {
		_ = c.SetDeadline(deadline)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	if serving {
		<-s.serveDone
	}
	return err
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	s.sessMu.Lock()
	sessions := len(s.sessions)
	s.sessMu.Unlock()
	st := ServerStats{
		ConnsAccepted:   s.accepted.Load(),
		ConnsActive:     int(s.activeCt.Load()),
		EventsBinary:    s.evBinary.Load(),
		EventsNDJSON:    s.evNDJSON.Load(),
		Frames:          s.frames.Load(),
		ProtocolErrors:  s.protoErrs.Load(),
		DedupBatches:    s.dedups.Load(),
		Sessions:        sessions,
		IdleEvictions:   s.idleEvicts.Load(),
		WriteTimeouts:   s.writeTimeouts.Load(),
		ReadErrors:      s.readErrs.Load(),
		PanicsRecovered: s.panics.Load(),
		LostDurability:  s.lostDurable.Load(),
	}
	_ = s.degraded() // reconcile a stale episode against the live journal health
	st.DegradedFor = time.Duration(s.degradedTotal.Load())
	if since := s.degradedNanos.Load(); since != 0 {
		st.Degraded = true
		st.DegradedSince = time.Unix(0, since)
		st.DegradedFor += time.Since(st.DegradedSince)
	}
	st.AuthFailures = s.authFails.Load()
	if s.cfg.Authenticate != nil {
		st.Tenants = s.tenantStats()
	}
	return st
}

// handle serves one connection: sniff the framing from the first byte,
// then run the matching read loop until EOF or error.
func (s *Server) handle(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 32<<10)
	s.armIdle(conn)
	first, err := br.Peek(1)
	if err != nil {
		s.noteReadErr(conn, err)
		return // closed before the first byte; nothing to do
	}
	if first[0] == Magic {
		s.handleBinary(conn, br)
		return
	}
	s.handleNDJSON(conn, br)
}

// protoError counts, reports (best effort) and logs a protocol error.
func (s *Server) protoError(conn net.Conn, err error) {
	s.protoErrs.Add(1)
	s.logf("transport: %s: %v", conn.RemoteAddr(), err)
	// Best-effort error frame; the peer may already be gone.
	_, _ = conn.Write(AppendFrame(nil, FrameError, []byte(err.Error())))
}

// handleBinary runs the framed read loop. Credit accounting: the
// client starts with Window events of credit; every FrameEvents spends
// its event count (overspending is a protocol error, which makes the
// window a hard bound on per-connection buffering); after the frame's
// events have been submitted to the sink — which blocks while the
// pipeline's bounded queue is full — the same amount is granted back.
// Decode, submit and credit writes all happen on this one goroutine, so
// a connection never buffers more than one frame beyond the window.
//
// A version-1 connection is granted its window immediately after the
// preface and runs as the anonymous tenant. A version-2 connection
// (ProtocolVersionTenant) must open with FrameHello carrying its
// tenant token; the window — carved from the tenant's aggregate credit
// pool — is granted only after authentication, and grant-backs are
// throttled by the tenant's token bucket.
func (s *Server) handleBinary(conn net.Conn, br *bufio.Reader) {
	var preface [2]byte
	if _, err := io.ReadFull(br, preface[:]); err != nil {
		return
	}
	if preface[1] != ProtocolVersion && preface[1] != ProtocolVersionTenant {
		s.protoError(conn, fmt.Errorf("transport: protocol version %d not supported", preface[1]))
		return
	}
	tenantMode := preface[1] == ProtocolVersionTenant

	var (
		ten      *tenantState
		window   uint64
		carved   int
		writeBuf []byte
	)
	defer func() {
		s.uncarveWindow(ten, carved)
		tenantClose(ten)
	}()
	if !tenantMode {
		var aerr error
		if ten, aerr = s.resolveTenant(nil); aerr != nil {
			s.protoError(conn, aerr)
			return
		}
		tenantOpen(ten)
		if carved = s.carveWindow(ten); carved <= 0 {
			s.protoError(conn, fmt.Errorf("transport: tenant %q: aggregate credit window exhausted", ten.name))
			return
		}
		window = uint64(carved)
		writeBuf = AppendCreditFrame(nil, window)
		if err := s.write(conn, writeBuf); err != nil {
			return
		}
	}

	dec := Decoder{Retain: true, MaxVals: s.cfg.MaxVals, MaxBatch: s.cfg.Window}
	if s.cfg.Registry != nil {
		dec.MaxTypes = s.cfg.Registry.Len()
	}
	scan := newFrameScanner(s.cfg.MaxFrame)
	read := make([]byte, 32<<10)
	credit := window
	var accepted uint64
	var sawEOF bool
	var helloDone bool
	var sess *session // non-nil once FrameHello opened a durable session
	var sessID uint64
	defer func() {
		if sess != nil {
			s.unbindSession(sess)
		}
	}()
	for {
		s.armIdle(conn)
		n, err := br.Read(read)
		if n > 0 {
			scan.Feed(read[:n])
			for {
				typ, payload, ok, serr := scan.Next()
				if serr != nil {
					s.protoError(conn, serr)
					return
				}
				if !ok {
					break
				}
				s.frames.Add(1)
				if tenantMode && !helloDone && typ != FrameHello {
					s.protoError(conn, fmt.Errorf("transport: tenant connection must open with a hello frame"))
					return
				}
				switch typ {
				case FrameEvents:
					if sawEOF {
						s.protoError(conn, fmt.Errorf("transport: events after EOF frame"))
						return
					}
					events, derr := dec.DecodeEvents(payload)
					if derr != nil {
						s.protoError(conn, derr)
						return
					}
					if uint64(len(events)) > credit {
						s.protoError(conn, fmt.Errorf("transport: %d events exceed remaining credit %d", len(events), credit))
						return
					}
					credit -= uint64(len(events))
					if len(events) > 0 {
						degraded := false
						if s.cfg.Journal != nil {
							jerr := s.journalBatch(0, 0, events, payload)
							switch {
							case jerr == nil:
								s.noteJournal(false)
							case errors.Is(jerr, ErrJournalDegraded):
								// Degrade to lossy: accept without durability
								// and say so in the ack (FlagDegraded).
								degraded = true
								s.noteJournal(true)
								s.lostDurable.Add(uint64(len(events)))
							default:
								// Not a protocol error: the batch is simply not
								// durable. Drop the connection unacknowledged —
								// to the producer this is indistinguishable
								// from a crash, and its redial path recovers.
								s.logf("transport: %s: %v (dropping connection unacknowledged)", conn.RemoteAddr(), jerr)
								return
							}
						}
						s.submitBatch(ten, events)
						accepted += uint64(len(events))
						s.evBinary.Add(uint64(len(events)))
						if ten != nil {
							ten.events.Add(uint64(len(events)))
						}
						credit += uint64(len(events))
						// The batch is in; the tenant's rate limit delays
						// only the grant-back (the producer's next window).
						s.throttle(ten, len(events))
						if degraded {
							writeBuf = AppendCreditFlagsFrame(writeBuf[:0], uint64(len(events)), FlagDegraded)
						} else {
							writeBuf = AppendCreditFrame(writeBuf[:0], uint64(len(events)))
						}
						if werr := s.write(conn, writeBuf); werr != nil {
							return
						}
					}
				case FrameHello:
					if helloDone || sess != nil {
						s.protoError(conn, fmt.Errorf("transport: duplicate hello frame"))
						return
					}
					id, k := binary.Uvarint(payload)
					if k <= 0 || (id == 0 && !tenantMode) {
						s.protoError(conn, fmt.Errorf("transport: malformed hello frame"))
						return
					}
					if tenantMode {
						// The bytes after the session uvarint are the tenant
						// token; authenticate before granting any credit.
						var aerr error
						if ten, aerr = s.resolveTenant(payload[k:]); aerr != nil {
							s.protoError(conn, aerr)
							return
						}
						tenantOpen(ten)
						if carved = s.carveWindow(ten); carved <= 0 {
							s.protoError(conn, fmt.Errorf("transport: tenant %q: aggregate credit window exhausted", ten.name))
							return
						}
						window = uint64(carved)
						credit = window
					}
					helloDone = true
					var applied uint64
					if id != 0 {
						sessID = id
						sess = s.bindSession(id)
						sess.mu.Lock()
						applied = sess.applied
						sess.mu.Unlock()
					}
					var tmp [2 * binary.MaxVarintLen64]byte
					ak := binary.PutUvarint(tmp[:], applied)
					if s.degraded() {
						// Trailing flags uvarint, as on FrameCredit: the
						// session resumes into a lossy episode and the
						// producer learns it from the very first ack.
						ak += binary.PutUvarint(tmp[ak:], FlagDegraded)
					}
					writeBuf = AppendFrame(writeBuf[:0], FrameHelloAck, tmp[:ak])
					if werr := s.write(conn, writeBuf); werr != nil {
						return
					}
					if tenantMode {
						// The initial grant, deferred past authentication:
						// the carved window opens the connection's credit.
						writeBuf = AppendCreditFrame(writeBuf[:0], window)
						if werr := s.write(conn, writeBuf); werr != nil {
							return
						}
					}
				case FrameEventsSeq:
					if sawEOF {
						s.protoError(conn, fmt.Errorf("transport: events after EOF frame"))
						return
					}
					if sess == nil {
						s.protoError(conn, fmt.Errorf("transport: sequenced events before hello frame"))
						return
					}
					batchSeq, k := binary.Uvarint(payload)
					if k <= 0 || batchSeq == 0 {
						s.protoError(conn, fmt.Errorf("transport: malformed batch sequence"))
						return
					}
					body := payload[k:]
					events, derr := dec.DecodeEvents(body)
					if derr != nil {
						s.protoError(conn, derr)
						return
					}
					n := uint64(len(events))
					if n > credit {
						s.protoError(conn, fmt.Errorf("transport: %d events exceed remaining credit %d", n, credit))
						return
					}
					credit -= n
					// Dedup-check, journal, submit and watermark advance are
					// one critical section per session, so a retransmit
					// racing its original on another connection of the same
					// session can never be applied twice.
					sess.mu.Lock()
					if batchSeq <= sess.applied {
						applied := sess.applied
						sess.mu.Unlock()
						s.dedups.Add(1)
						credit += n
						if s.degraded() {
							writeBuf = AppendCreditAckFlagsFrame(writeBuf[:0], n, applied, FlagDegraded)
						} else {
							writeBuf = AppendCreditAckFrame(writeBuf[:0], n, applied)
						}
						if werr := s.write(conn, writeBuf); werr != nil {
							return
						}
						break
					}
					if batchSeq != sess.applied+1 {
						// A fresh session — nothing applied this lifetime, no
						// recovered watermark — may start above 1: that is a
						// producer resuming after a clean restart released its
						// journal (every earlier batch was acked as durable
						// and absorbed, so nothing is lost by adopting the
						// sequence; see docs/wire.md, delivery semantics). A
						// gap on any other session is a protocol error.
						if sess.applied != 0 || sess.seeded {
							applied := sess.applied
							sess.mu.Unlock()
							s.protoError(conn, fmt.Errorf("transport: batch %d skips applied watermark %d", batchSeq, applied))
							return
						}
						s.logf("transport: %s: session %d resumes at batch %d", conn.RemoteAddr(), sessID, batchSeq)
					}
					degraded := false
					if s.cfg.Journal != nil {
						jerr := s.journalBatch(sessID, batchSeq, events, body)
						switch {
						case jerr == nil:
							s.noteJournal(false)
						case errors.Is(jerr, ErrJournalDegraded):
							// Degrade to lossy: the watermark advances in
							// memory only, so a crash during the episode
							// loses these batches — which is exactly what
							// the FlagDegraded ack warned the producer of.
							degraded = true
							s.noteJournal(true)
							s.lostDurable.Add(n)
						default:
							sess.mu.Unlock()
							// The batch is not durable: drop the connection
							// without an ack (no FrameError — this is a server
							// fault, not the client's), so the producer
							// redials and retransmits, and the server-side
							// dedup keeps the delivery effectively-once.
							s.logf("transport: %s: %v (dropping connection unacknowledged)", conn.RemoteAddr(), jerr)
							return
						}
					}
					if len(events) > 0 {
						s.submitBatch(ten, events)
					}
					sess.applied = batchSeq
					sess.accepted += n
					applied := sess.applied
					sess.mu.Unlock()
					accepted += n
					s.evBinary.Add(n)
					if ten != nil {
						ten.events.Add(n)
					}
					credit += n
					// Charge the tenant bucket only for applied batches —
					// a deduplicated retransmit was paid for when its
					// original was accepted — and strictly outside sess.mu,
					// so a throttle sleep never blocks the session's other
					// connections.
					s.throttle(ten, int(n))
					if degraded {
						writeBuf = AppendCreditAckFlagsFrame(writeBuf[:0], n, applied, FlagDegraded)
					} else {
						writeBuf = AppendCreditAckFrame(writeBuf[:0], n, applied)
					}
					if werr := s.write(conn, writeBuf); werr != nil {
						return
					}
				case FrameEOF:
					sawEOF = true
					var tmp [binary.MaxVarintLen64]byte
					done := AppendFrame(writeBuf[:0], FrameDone, tmp[:binary.PutUvarint(tmp[:], accepted)])
					_ = s.write(conn, done) // best effort
					// Keep reading: the client may still request stats
					// before closing; further events are a protocol error.
				case FrameStatsReq:
					var stats []byte
					if s.cfg.StatsJSON != nil {
						stats = s.cfg.StatsJSON()
					}
					if werr := s.write(conn, AppendFrame(writeBuf[:0], FrameStats, stats)); werr != nil {
						return
					}
				default:
					s.protoError(conn, fmt.Errorf("transport: unknown frame type 0x%02x", typ))
					return
				}
			}
		}
		if err != nil {
			s.noteReadErr(conn, err)
			return
		}
	}
}

// submitBatch forwards one accepted batch to the sink, carrying the
// tenant identity when the connection resolved to a named tenant and
// the sink is tenant-aware (see TenantSink).
func (s *Server) submitBatch(ten *tenantState, events []event.Event) {
	if ten != nil && ten.name != "" {
		if tsink, ok := s.cfg.Sink.(TenantSink); ok {
			tsink.SubmitTenantBatch(ten.name, events)
			return
		}
	}
	s.cfg.Sink.SubmitBatch(events)
}

// journalBatch appends the batch's wire bytes to the configured
// journal and commits (fsyncs) them. A non-nil return means the batch
// is not durable and the caller must drop the connection without
// acknowledging it.
func (s *Server) journalBatch(sessID, batchSeq uint64, events []event.Event, payload []byte) error {
	var maxTS event.Time
	for i := range events {
		if events[i].TS > maxTS {
			maxTS = events[i].TS
		}
	}
	seq, err := s.cfg.Journal.Append(sessID, batchSeq, len(events), maxTS, payload)
	if err == nil {
		err = s.cfg.Journal.Commit(seq)
	}
	if err != nil {
		return fmt.Errorf("transport: journal: %w", err)
	}
	return nil
}

// handleNDJSON runs the line read loop: parse each line into an event,
// batch adjacent buffered lines, and submit whenever the read buffer
// runs dry (so a lone line is never delayed). Backpressure is the
// bounded read: the loop will not read more lines while the sink
// blocks, which eventually blocks the producer in TCP flow control.
//
// Two kinds of non-event lines ride the same stream. The connection's
// first line may be a tenant hello — {"token":"..."} — answered with
// {"status":"ok","tenant":"..."}; without one the connection runs as
// the anonymous tenant. And the server emits {"status":"degraded"} /
// {"status":"durable"} lines on journal episode transitions (plus one
// at connect when already degraded), so a plain-text producer learns
// that acceptance is currently at-most-once — the NDJSON equivalent of
// FlagDegraded, which only binary acks carry.
func (s *Server) handleNDJSON(conn net.Conn, br *bufio.Reader) {
	ten, aerr := s.resolveTenant(nil)
	if aerr != nil {
		s.protoErrs.Add(1)
		fmt.Fprintf(conn, "{\"error\":%q}\n", aerr.Error())
		return
	}
	tenantOpen(ten)
	defer func() { tenantClose(ten) }()
	connDegraded := false
	if s.cfg.Journal != nil && s.degraded() {
		connDegraded = true
		fmt.Fprintf(conn, "{\"status\":%q}\n", "degraded")
	}
	const maxBatch = 256
	batch := make([]event.Event, 0, maxBatch)
	var enc Encoder
	var jbuf []byte
	// flush journals (when configured) and submits the batch; a false
	// return means the journal refused the batch — the connection must
	// drop unacknowledged.
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		nowDegraded := connDegraded
		if s.cfg.Journal != nil {
			jbuf = enc.AppendEvents(jbuf[:0], batch)
			jerr := s.journalBatch(0, 0, batch, jbuf)
			switch {
			case jerr == nil:
				s.noteJournal(false)
				nowDegraded = false
			case errors.Is(jerr, ErrJournalDegraded):
				// NDJSON has no ack frames to carry the degraded bit;
				// accept lossily, account for it like the binary path and
				// tell the producer with a status line below.
				s.noteJournal(true)
				s.lostDurable.Add(uint64(len(batch)))
				nowDegraded = true
			default:
				s.logf("transport: %s: %v", conn.RemoteAddr(), jerr)
				fmt.Fprintf(conn, "{\"error\":%q}\n", jerr.Error())
				return false
			}
		}
		s.submitBatch(ten, batch)
		s.evNDJSON.Add(uint64(len(batch)))
		if ten != nil {
			ten.events.Add(uint64(len(batch)))
		}
		n := len(batch)
		batch = batch[:0]
		if nowDegraded != connDegraded {
			connDegraded = nowDegraded
			status := "durable"
			if connDegraded {
				status = "degraded"
			}
			fmt.Fprintf(conn, "{\"status\":%q}\n", status)
		}
		// Rate-limit by stalling the read loop: the producer blocks in
		// TCP flow control once the socket buffers fill.
		s.throttle(ten, n)
		return true
	}
	firstLine := true
	var lineBuf []byte
	for {
		s.armIdle(conn)
		line, err := readLineBounded(br, &lineBuf, s.cfg.MaxFrame)
		if err == errLineTooLong {
			flush()
			s.protoErrs.Add(1)
			s.logf("transport: %s: ndjson line exceeds %d bytes", conn.RemoteAddr(), s.cfg.MaxFrame)
			fmt.Fprintf(conn, "{\"error\":%q}\n", "line too long")
			return
		}
		if trimmed := trimLine(line); len(trimmed) > 0 {
			if token, ok := ndjsonHelloToken(trimmed); firstLine && ok {
				firstLine = false
				nt, terr := s.resolveTenant(token)
				if terr != nil {
					s.protoErrs.Add(1)
					fmt.Fprintf(conn, "{\"error\":%q}\n", terr.Error())
					return
				}
				// Rebind the connection count from the anonymous tenant
				// (opened above) to the authenticated one.
				tenantClose(ten)
				ten = nt
				tenantOpen(ten)
				name := ""
				if ten != nil {
					name = ten.name
				}
				fmt.Fprintf(conn, "{\"status\":\"ok\",\"tenant\":%q}\n", name)
				continue
			}
			firstLine = false
			ev, perr := decodeNDJSONLine(trimmed, s.cfg.Registry)
			if perr != nil {
				flush()
				s.protoErrs.Add(1)
				s.logf("transport: %s: %v", conn.RemoteAddr(), perr)
				fmt.Fprintf(conn, "{\"error\":%q}\n", perr.Error())
				return
			}
			batch = append(batch, ev)
		}
		if err != nil {
			flush()
			s.noteReadErr(conn, err)
			return
		}
		if len(batch) >= maxBatch || br.Buffered() == 0 {
			if !flush() {
				return
			}
		}
	}
}

// errLineTooLong reports an NDJSON line exceeding the frame bound.
var errLineTooLong = errors.New("transport: ndjson line too long")

// readLineBounded reads one newline-terminated line into *buf (reused
// across calls), failing with errLineTooLong as soon as the
// accumulated length exceeds max — unlike bufio's ReadBytes, it never
// buffers an unbounded line before checking, so one newline-less
// connection cannot grow server memory past the frame bound.
func readLineBounded(br *bufio.Reader, buf *[]byte, max int) ([]byte, error) {
	line := (*buf)[:0]
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > max {
			*buf = line[:0]
			return nil, errLineTooLong
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		*buf = line
		return line, err
	}
}

// trimLine strips the trailing newline and optional carriage return.
func trimLine(line []byte) []byte {
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	return line
}
