// Package transport puts a wire boundary in front of the live eSPICE
// deployments: a TCP ingest server (Server) accepts primitive events in
// either a length-prefixed binary codec or NDJSON, feeds them into a
// runtime.Pipeline or engine.Engine through the Sink interface, and
// pushes backpressure to clients with bounded per-connection read
// windows and an explicit credit protocol — so overload is resolved by
// the load shedder inside the operator, never by unbounded buffering in
// the network path. Client is the matching batching, reconnecting,
// credit-aware producer.
//
// The full frame format, the credit protocol and the backpressure
// semantics are specified in docs/wire.md.
package transport

import (
	"encoding/binary"
	"fmt"
)

// Connection preface and protocol version. A binary connection starts
// with the two bytes {Magic, ProtocolVersion}; anything else makes the
// server fall back to NDJSON line mode (0xE5 is neither printable ASCII
// nor a valid first byte of UTF-8 JSON text, so the two framings cannot
// be confused).
const (
	// Magic is the first byte of every binary-mode connection.
	Magic byte = 0xE5
	// ProtocolVersion is the second preface byte; the server rejects
	// connections with a version it does not speak.
	ProtocolVersion byte = 1
	// ProtocolVersionTenant is the tenant-handshake preface version: the
	// client's first frame MUST be a FrameHello carrying its session id
	// (zero for a plain, non-durable connection) and tenant token, and
	// the server grants the initial credit window only after the token
	// has been authenticated — the window is carved out of the tenant's
	// aggregate credit pool instead of being a flat per-connection
	// constant. Version-1 connections keep the original grant-upfront
	// behavior and run as the anonymous tenant.
	ProtocolVersionTenant byte = 2
)

// Frame types. Client-to-server types have the high bit clear,
// server-to-client types have it set.
const (
	// FrameEvents carries a batch of binary-encoded events
	// (client to server). Its payload is described in codec.go.
	FrameEvents byte = 0x01
	// FrameEOF signals end of stream on this connection (empty payload);
	// the server answers with FrameDone once every event has been
	// submitted to the sink.
	FrameEOF byte = 0x02
	// FrameStatsReq asks the server for its current statistics (empty
	// payload); the server answers with FrameStats.
	FrameStatsReq byte = 0x03
	// FrameHello opens a durable session (payload: one uvarint, the
	// non-zero session id). The server answers with FrameHelloAck; only
	// a connection that sent FrameHello may send FrameEventsSeq. On a
	// ProtocolVersionTenant connection the hello doubles as the tenant
	// handshake: it must be the connection's first frame, the session id
	// may be zero (a plain-mode hello, opening no durable session), and
	// the bytes after the session uvarint are the tenant token. See the
	// delivery-semantics and multi-tenancy sections of docs/wire.md.
	FrameHello byte = 0x04
	// FrameEventsSeq carries a sequenced batch of binary-encoded events
	// on a durable session (payload: one uvarint batch sequence,
	// followed by the same event encoding as FrameEvents). Batch
	// sequences start at 1 and increase by exactly 1 — except that a
	// fresh session may open above 1, resuming a producer whose journal
	// was released by a clean restart (see docs/wire.md). A batch at or
	// below the session's applied watermark is acknowledged without
	// being re-delivered (server-side dedup).
	FrameEventsSeq byte = 0x05

	// FrameCredit grants the client permission to send that many more
	// events (payload: one uvarint). On durable sessions the payload
	// carries a second uvarint — the session's applied batch watermark,
	// acknowledging every batch at or below it as durably accepted. See
	// docs/wire.md for the window accounting.
	FrameCredit byte = 0x81
	// FrameDone acknowledges FrameEOF (payload: one uvarint, the total
	// number of events accepted on this connection).
	FrameDone byte = 0x82
	// FrameError reports a protocol error (payload: UTF-8 message); the
	// server closes the connection after sending it.
	FrameError byte = 0x83
	// FrameStats answers FrameStatsReq (payload: a JSON document
	// assembled by the server application).
	FrameStats byte = 0x84
	// FrameHelloAck answers FrameHello (payload: one uvarint, the
	// session's applied batch watermark). The client drops every ledger
	// entry at or below the watermark and retransmits the rest.
	FrameHelloAck byte = 0x85
)

// FlagDegraded is bit 0 of the optional trailing flags uvarint on
// FrameCredit and FrameHelloAck payloads: the server's journal is
// degraded and events are being accepted WITHOUT durability — delivery
// on this connection is at-most-once until the flag clears. The flags
// uvarint is appended only while a flag is set, and always as the last
// uvarint of the payload, so clients that do not parse it (and older
// payload layouts) stay wire-compatible.
const FlagDegraded uint64 = 1 << 0

// DefaultMaxFrame bounds the payload length of a single frame. A frame
// longer than the limit is a protocol error, which keeps a malformed or
// malicious length prefix from forcing a large allocation.
const DefaultMaxFrame = 1 << 20

// AppendFrame appends one complete frame — type byte, uvarint payload
// length, payload — to dst and returns the extended slice.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// AppendCreditFrame appends a FrameCredit granting n events.
func AppendCreditFrame(dst []byte, n uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return AppendFrame(dst, FrameCredit, tmp[:binary.PutUvarint(tmp[:], n)])
}

// AppendCreditAckFrame appends a FrameCredit granting n events and
// acknowledging every durable batch at or below applied. Clients that
// do not track a ledger parse only the first uvarint, so the extended
// form is wire-compatible with AppendCreditFrame.
func AppendCreditAckFrame(dst []byte, n, applied uint64) []byte {
	var tmp [2 * binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], n)
	k += binary.PutUvarint(tmp[k:], applied)
	return AppendFrame(dst, FrameCredit, tmp[:k])
}

// AppendCreditFlagsFrame appends a plain-connection FrameCredit with a
// trailing flags uvarint (see FlagDegraded).
func AppendCreditFlagsFrame(dst []byte, n, flags uint64) []byte {
	var tmp [2 * binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], n)
	k += binary.PutUvarint(tmp[k:], flags)
	return AppendFrame(dst, FrameCredit, tmp[:k])
}

// AppendCreditAckFlagsFrame appends a durable-session FrameCredit —
// grant, applied watermark — with a trailing flags uvarint.
func AppendCreditAckFlagsFrame(dst []byte, n, applied, flags uint64) []byte {
	var tmp [3 * binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], n)
	k += binary.PutUvarint(tmp[k:], applied)
	k += binary.PutUvarint(tmp[k:], flags)
	return AppendFrame(dst, FrameCredit, tmp[:k])
}

// frameScanner incrementally splits a byte stream into frames. Feed
// appends raw bytes from the connection; Next pops the next complete
// frame. The returned payload aliases the scanner's internal buffer and
// is valid only until the next Feed call — decode or copy it first.
//
// The scanner is the single frame-parsing implementation: the server
// reads through it, and the FuzzServerFrame fuzz target drives it with
// arbitrary chunkings to prove it never panics or over-reads.
type frameScanner struct {
	maxFrame int
	buf      []byte
	off      int // consumed prefix of buf
}

// newFrameScanner builds a scanner enforcing the given frame bound
// (DefaultMaxFrame when maxFrame <= 0).
func newFrameScanner(maxFrame int) *frameScanner {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &frameScanner{maxFrame: maxFrame}
}

// Feed appends raw stream bytes. It compacts the consumed prefix first,
// so the buffer never grows beyond one partial frame plus one read.
func (s *frameScanner) Feed(p []byte) {
	if s.off > 0 {
		n := copy(s.buf, s.buf[s.off:])
		s.buf = s.buf[:n]
		s.off = 0
	}
	s.buf = append(s.buf, p...)
}

// Next pops the next complete frame. ok reports whether a frame was
// available; a false ok with a nil error means more input is needed. A
// non-nil error is fatal for the stream (malformed or oversized length
// prefix).
func (s *frameScanner) Next() (typ byte, payload []byte, ok bool, err error) {
	rest := s.buf[s.off:]
	if len(rest) < 2 { // type byte + at least one length byte
		return 0, nil, false, nil
	}
	typ = rest[0]
	length, n := binary.Uvarint(rest[1:])
	if n == 0 {
		// Length prefix incomplete. A uvarint is at most 10 bytes; if we
		// buffered that much and still cannot parse it, it is malformed.
		if len(rest) > 1+binary.MaxVarintLen64 {
			return 0, nil, false, fmt.Errorf("transport: malformed frame length")
		}
		return 0, nil, false, nil
	}
	if n < 0 {
		return 0, nil, false, fmt.Errorf("transport: frame length overflows uint64")
	}
	if length > uint64(s.maxFrame) {
		return 0, nil, false, fmt.Errorf("transport: frame of %d bytes exceeds limit %d", length, s.maxFrame)
	}
	total := 1 + n + int(length)
	if len(rest) < total {
		return 0, nil, false, nil
	}
	s.off += total
	return typ, rest[1+n : total], true, nil
}

// Buffered reports how many unconsumed bytes the scanner holds.
func (s *frameScanner) Buffered() int { return len(s.buf) - s.off }
