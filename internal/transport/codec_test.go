package transport

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/event"
)

// genEvents builds a deterministic batch with a mix of value shapes.
func genEvents(n int) []event.Event {
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.Event{
			Seq:  uint64(i) * 3,
			Type: event.Type(i % 7),
			TS:   event.Time(i) * event.Millisecond,
			Kind: event.Kind(i % 4),
		}
		switch i % 3 {
		case 0:
			evs[i].Vals = []float64{float64(i), -1.5, math.Pi}
		case 1:
			evs[i].Vals = []float64{math.Float64frombits(0x7ff8000000000001)} // NaN payload survives
		}
	}
	return evs
}

// eventsEqual compares batches treating nil and empty Vals as equal.
func eventsEqual(a, b []event.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Seq != y.Seq || x.Type != y.Type || x.TS != y.TS || x.Kind != y.Kind {
			return false
		}
		if len(x.Vals) != len(y.Vals) {
			return false
		}
		for j := range x.Vals {
			if math.Float64bits(x.Vals[j]) != math.Float64bits(y.Vals[j]) {
				return false
			}
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	var enc Encoder
	var dec Decoder
	for _, n := range []int{0, 1, 7, 256} {
		in := genEvents(n)
		payload := enc.AppendEvents(nil, in)
		out, err := dec.DecodeEvents(payload)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if !eventsEqual(in, out) {
			t.Fatalf("n=%d: roundtrip mismatch:\n in=%v\nout=%v", n, in, out)
		}
	}
}

func TestCodecNegativeTimestamp(t *testing.T) {
	var enc Encoder
	var dec Decoder
	in := []event.Event{{Seq: 1, Type: 0, TS: -5 * event.Second, Kind: event.KindRising}}
	out, err := dec.DecodeEvents(enc.AppendEvents(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].TS != in[0].TS {
		t.Fatalf("ts roundtrip: got %v want %v", out[0].TS, in[0].TS)
	}
}

// TestCodecScratchReuse pins the pooling contract: the second decode
// recycles the first decode's events and arena, so retaining the first
// batch observes clobbered data — exactly like the window pool.
func TestCodecScratchReuse(t *testing.T) {
	var enc Encoder
	var dec Decoder
	first, err := dec.DecodeEvents(enc.AppendEvents(nil, genEvents(8)))
	if err != nil {
		t.Fatal(err)
	}
	vals0 := first[0].Vals[0]
	other := make([]event.Event, 8)
	for i := range other {
		other[i] = event.Event{Seq: 999, Vals: []float64{-42, -42, -42}}
	}
	if _, err := dec.DecodeEvents(enc.AppendEvents(nil, other)); err != nil {
		t.Fatal(err)
	}
	if first[0].Vals[0] == vals0 {
		t.Fatalf("arena not recycled: retained Vals still read %v", vals0)
	}
}

// TestCodecRetain pins the hand-off mode: with Retain set the decoded
// Vals survive later decodes, so batches may be submitted to a sink
// that buffers them inside open windows.
func TestCodecRetain(t *testing.T) {
	var enc Encoder
	dec := Decoder{Retain: true}
	in := genEvents(8)
	first, err := dec.DecodeEvents(enc.AppendEvents(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	kept := append([]event.Event(nil), first...)
	if _, err := dec.DecodeEvents(enc.AppendEvents(nil, genEvents(64))); err != nil {
		t.Fatal(err)
	}
	if !eventsEqual(kept[:len(in)], in) {
		t.Fatal("Retain mode did not preserve Vals across decodes")
	}
}

func TestCodecErrors(t *testing.T) {
	var enc Encoder
	valid := enc.AppendEvents(nil, genEvents(3))
	cases := []struct {
		name    string
		payload []byte
		dec     Decoder
	}{
		{name: "empty", payload: nil},
		{name: "truncated mid-event", payload: valid[:len(valid)-3]},
		{name: "trailing bytes", payload: append(append([]byte(nil), valid...), 0xAB)},
		{name: "count exceeds payload", payload: []byte{0xFF, 0x7F}},
		{name: "count exceeds MaxBatch", payload: valid, dec: Decoder{MaxBatch: 2}},
		{name: "unknown type id", payload: valid, dec: Decoder{MaxTypes: 1}},
		{name: "too many vals", payload: valid, dec: Decoder{MaxVals: 2}},
		{name: "huge type id", payload: hugeTypePayload()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.dec.DecodeEvents(tc.payload); err == nil {
				t.Fatalf("decode of %q input succeeded, want error", tc.name)
			}
		})
	}
}

// hugeTypePayload hand-crafts a single-event payload whose type id
// exceeds int32 — unconstructable through the Encoder, rejectable only
// by the Decoder's range check.
func hugeTypePayload() []byte {
	p := binary.AppendUvarint(nil, 1)  // count
	p = binary.AppendUvarint(p, 0)     // seq
	p = binary.AppendUvarint(p, 1<<33) // type id out of int32 range
	p = binary.AppendVarint(p, 0)      // ts
	p = append(p, 0)                   // kind
	return binary.AppendUvarint(p, 0)  // nvals
}

// TestCodecDecodeZeroAlloc gates the steady-state allocation behavior
// of the hot decode path, like the PR-3 operator/matcher gates: with a
// warmed scratch and Retain off, a decode performs no allocations.
func TestCodecDecodeZeroAlloc(t *testing.T) {
	var enc Encoder
	var dec Decoder
	payload := enc.AppendEvents(nil, genEvents(256))
	if _, err := dec.DecodeEvents(payload); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := dec.DecodeEvents(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeEvents allocates %.1f times per call in steady state, want 0", allocs)
	}
}

// TestCodecRetainAllocsBounded pins the Retain-mode bound: one slab
// allocation per frame, independent of the event count.
func TestCodecRetainAllocsBounded(t *testing.T) {
	var enc Encoder
	dec := Decoder{Retain: true}
	payload := enc.AppendEvents(nil, genEvents(256))
	if _, err := dec.DecodeEvents(payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := dec.DecodeEvents(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Retain decode allocates %.1f times per 256-event frame, want <= 1", allocs)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	reg := event.NewRegistry()
	reg.RegisterAll("AAA", "BBB")
	in := event.Event{Seq: 7, Type: 1, TS: 1500 * event.Millisecond, Kind: event.KindDefend, Vals: []float64{1, 2.5}}
	line := AppendNDJSON(nil, in, reg)
	out, err := decodeNDJSONLine(trimLine(line), reg)
	if err != nil {
		t.Fatal(err)
	}
	if !eventsEqual([]event.Event{in}, []event.Event{out}) {
		t.Fatalf("ndjson roundtrip: got %+v want %+v", out, in)
	}

	// Numeric type ids and named kinds are accepted too.
	out, err = decodeNDJSONLine([]byte(`{"seq":1,"type":0,"ts":10,"kind":"rising"}`), reg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != event.KindRising || out.Type != 0 {
		t.Fatalf("got %+v", out)
	}

	for _, bad := range []string{
		`{"seq":1,"ts":10}`,                      // missing type
		`{"seq":1,"type":"NOPE","ts":10}`,        // unknown name
		`{"seq":1,"type":9,"ts":10}`,             // id out of registry
		`{"seq":1,"type":-1,"ts":10}`,            // negative id
		`{"seq":1,"type":0,"kind":"wat","ts":1}`, // unknown kind
		`not json`,
	} {
		if _, err := decodeNDJSONLine([]byte(bad), reg); err == nil {
			t.Errorf("decode of %s succeeded, want error", bad)
		}
	}
}
