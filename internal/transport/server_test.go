package transport

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/harness"
)

// collectSink copies every submitted batch, like the real pipelines do.
type collectSink struct {
	mu     sync.Mutex
	events []event.Event
}

func (s *collectSink) SubmitBatch(evs []event.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, evs...)
}

func (s *collectSink) snapshot() []event.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]event.Event(nil), s.events...)
}

// startServer serves cfg on a loopback listener and registers cleanup.
func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	// Serve publishes the listener before accepting; wait for it.
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	return srv
}

func TestServerBinaryEndToEnd(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink, Window: 512})

	c, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	in := genEvents(1000)
	if err := c.SubmitBatch(in); err != nil {
		t.Fatal(err)
	}
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 1000 || st.Accepted != 1000 {
		t.Fatalf("client stats: %+v", st)
	}
	got := sink.snapshot()
	if !eventsEqual(in, got) {
		t.Fatalf("sink received %d events, mismatch with %d sent", len(got), len(in))
	}
	ss := srv.Stats()
	if ss.EventsBinary != 1000 || ss.ConnsAccepted != 1 {
		t.Fatalf("server stats: %+v", ss)
	}
}

// blockingSink releases one batch per receive on step.
type blockingSink struct {
	step     chan struct{}
	received chan int
}

func (s *blockingSink) SubmitBatch(evs []event.Event) {
	s.received <- len(evs)
	<-s.step
}

// TestServerBackpressure pins the credit window as a hard bound: with
// the sink blocked, a client trying to push more than one window stalls
// instead of buffering server-side.
func TestServerBackpressure(t *testing.T) {
	harness.VerifyNoLeaks(t)
	const window = 128
	sink := &blockingSink{step: make(chan struct{}), received: make(chan int, 64)}
	srv := startServer(t, ServerConfig{Sink: sink, Window: window})

	c, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	sendDone := make(chan error, 1)
	go func() {
		err := c.SubmitBatch(genEvents(window * 4))
		if err == nil {
			err = c.Flush()
		}
		sendDone <- err
	}()

	// The first batch reaches the sink and blocks there; the client can
	// keep writing only until the window is spent.
	var delivered int
	delivered += <-sink.received
	select {
	case err := <-sendDone:
		t.Fatalf("client finished against a blocked sink (err=%v)", err)
	case <-time.After(200 * time.Millisecond):
	}

	// Release the sink; everything drains and the client completes.
	go func() {
		for range sink.received {
			sink.step <- struct{}{}
		}
	}()
	sink.step <- struct{}{}
	if err := <-sendDone; err != nil {
		t.Fatalf("send: %v", err)
	}
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != window*4 {
		t.Fatalf("accepted %d of %d", st.Accepted, window*4)
	}
	if st.CreditWait == 0 {
		t.Error("client never waited for credit under a blocked sink")
	}
	close(sink.received)
}

// TestServerCreditViolation pins the enforcement: a frame holding more
// events than the remaining credit kills the connection with an error.
func TestServerCreditViolation(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink, Window: 4})

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{Magic, ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	var enc Encoder
	frame := enc.AppendEventsFrame(nil, genEvents(5)) // window is 4
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The server answers with the initial credit, then the error frame,
	// then closes.
	buf, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	s := newFrameScanner(0)
	s.Feed(buf)
	var sawError bool
	for {
		typ, _, ok, err := s.Next()
		if err != nil || !ok {
			break
		}
		if typ == FrameError {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("no FrameError for credit violation")
	}
	waitCond(t, time.Second, func() bool { return srv.Stats().ProtocolErrors == 1 })
	if got := len(sink.snapshot()); got != 0 {
		t.Fatalf("violating frame still delivered %d events", got)
	}
}

func TestServerUnknownTypeID(t *testing.T) {
	harness.VerifyNoLeaks(t)
	reg := event.NewRegistry()
	reg.RegisterAll("A", "B")
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink, Registry: reg})

	c, err := Dial(ClientConfig{Addr: srv.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(event.Event{Seq: 1, Type: 9}); err != nil {
		t.Fatal(err)
	}
	err = c.Flush()
	if err == nil {
		_, err = c.Close()
	}
	if err == nil {
		t.Fatal("event with unregistered type id accepted")
	}
	waitCond(t, time.Second, func() bool { return srv.Stats().ProtocolErrors == 1 })
}

func TestServerNDJSON(t *testing.T) {
	harness.VerifyNoLeaks(t)
	reg := event.NewRegistry()
	reg.RegisterAll("STR_A", "DEF_B00")
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink, Registry: reg})

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	lines := `{"seq":0,"type":"STR_A","ts":1000000,"kind":"possession","vals":[1,2,3]}
{"seq":1,"type":1,"ts":2000000,"kind":4}

{"seq":2,"type":"DEF_B00","ts":3000000,"kind":"defend"}
`
	if _, err := conn.Write([]byte(lines)); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitCond(t, time.Second, func() bool { return len(sink.snapshot()) == 3 })
	got := sink.snapshot()
	if got[0].Type != 0 || got[0].Kind != event.KindPossession || len(got[0].Vals) != 3 {
		t.Fatalf("event 0 decoded as %+v", got[0])
	}
	if got[1].Kind != event.KindDefend || got[2].Seq != 2 {
		t.Fatalf("events decoded as %+v", got)
	}
	if srv.Stats().EventsNDJSON != 3 {
		t.Fatalf("server stats: %+v", srv.Stats())
	}
}

func TestServerNDJSONError(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{\"seq\":0,\"type\":0,\"ts\":1}\nnot json\n")); err != nil {
		t.Fatal(err)
	}
	reply, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) == 0 {
		t.Fatal("no error line for malformed NDJSON")
	}
	waitCond(t, time.Second, func() bool { return srv.Stats().ProtocolErrors == 1 })
	// The valid line before the malformed one is still delivered.
	if got := len(sink.snapshot()); got != 1 {
		t.Fatalf("delivered %d events, want 1", got)
	}
}

func TestServerStatsFrame(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{
		Sink:      sink,
		StatsJSON: func() []byte { return []byte(`{"hello":"world"}`) },
	})
	c, err := Dial(ClientConfig{Addr: srv.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if string(doc) != `{"hello":"world"}` {
		t.Fatalf("stats doc %q", doc)
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerBadVersion(t *testing.T) {
	harness.VerifyNoLeaks(t)
	srv := startServer(t, ServerConfig{Sink: &collectSink{}})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{Magic, 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatal(err)
	}
	waitCond(t, time.Second, func() bool { return srv.Stats().ProtocolErrors == 1 })
}

// TestClientReconnect drives the client through a proxy that cuts the
// first connection mid-stream: the client redials and completes; the
// ledger records the redial and at-most-once delivery.
func TestClientReconnect(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink, Window: 64})

	proxy := startCuttingProxy(t, srv.Addr().String(), 1)
	c, err := Dial(ClientConfig{Addr: proxy, BatchEvents: 32, Reconnect: true, MaxRedials: 10})
	if err != nil {
		t.Fatal(err)
	}
	in := genEvents(400)
	for i := 0; i < len(in); i += 32 {
		if err := c.SubmitBatch(in[i:min(i+32, len(in))]); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Redials != 1 {
		t.Fatalf("redials = %d, want 1 (stats %+v)", st.Redials, st)
	}
	// At-most-once: nothing is duplicated, and everything after the cut
	// arrived (the final connection's accepted count matches).
	got := sink.snapshot()
	if len(got) > len(in) {
		t.Fatalf("duplicated events: %d > %d", len(got), len(in))
	}
	if st.Accepted == 0 || uint64(len(got)) < st.Accepted {
		t.Fatalf("accepted %d but sink has %d", st.Accepted, len(got))
	}
}

// startCuttingProxy forwards to target, killing the first cutAfterKB
// kilobytes' connection, then forwarding subsequent connections
// untouched. Returns the proxy address.
func startCuttingProxy(t *testing.T, target string, cutAfterKB int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	first := true
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			in, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			cut := first
			first = false
			mu.Unlock()
			out, err := net.Dial("tcp", target)
			if err != nil {
				in.Close()
				continue
			}
			wg.Add(2)
			go func() { // client -> server, possibly cut
				defer wg.Done()
				defer in.Close()
				defer out.Close()
				if cut {
					io.CopyN(out, in, int64(cutAfterKB)<<10)
					return // drop the connection mid-stream
				}
				io.Copy(out, in)
			}()
			go func() { // server -> client
				defer wg.Done()
				io.Copy(in, out)
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Error("proxy goroutines did not exit")
		}
	})
	return ln.Addr().String()
}

// waitCond polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServerNDJSONLineBound pins the bounded read: a newline-less
// connection is cut off once the frame bound is exceeded, instead of
// buffering the line without bound.
func TestServerNDJSONLineBound(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink, MaxFrame: 1 << 16})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	junk := make([]byte, 32<<10)
	for i := range junk {
		junk[i] = 'a'
	}
	for i := 0; i < 64; i++ { // 2 MiB, no newline
		if _, err := conn.Write(junk); err != nil {
			break // server already cut us off
		}
	}
	waitCond(t, 5*time.Second, func() bool { return srv.Stats().ProtocolErrors == 1 })
	if got := len(sink.snapshot()); got != 0 {
		t.Fatalf("unbounded line delivered %d events", got)
	}
}

// TestServerCloseLifecycle pins the Close/Serve ordering edge cases:
// Close before Serve, double Close, and Close-then-Serve must all
// return instead of hanging on the serve channel.
func TestServerCloseLifecycle(t *testing.T) {
	harness.VerifyNoLeaks(t)
	srv, err := NewServer(ServerConfig{Sink: &collectSink{}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Close()
		srv.Close() // second Close must not block either
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close before Serve hangs")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after Close succeeded")
	}
	done = make(chan struct{})
	go func() { defer close(done); srv.Close() }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close after Close-then-Serve hangs")
	}
}

// TestClientSplitsOversizedBatches pins the byte-budget chunking: a
// batch whose encoded size exceeds the frame bound is split and
// delivered, not rejected as an oversized frame.
func TestClientSplitsOversizedBatches(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink})
	c, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 256})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 1000) // 8 KB per event; 256 events ≈ 2 MiB encoded
	for i := range vals {
		vals[i] = float64(i)
	}
	in := make([]event.Event, 256)
	for i := range in {
		in[i] = event.Event{Seq: uint64(i), Type: 1, Vals: vals}
	}
	if err := c.SubmitBatch(in); err != nil {
		t.Fatal(err)
	}
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 256 {
		t.Fatalf("accepted %d of 256", st.Accepted)
	}
	if st.Flushes < 2 {
		t.Fatalf("oversized batch was not split: %d flushes", st.Flushes)
	}
	got := sink.snapshot()
	if !eventsEqual(in, got) {
		t.Fatalf("sink received %d events, mismatch with %d sent", len(got), len(in))
	}

	// A single event beyond the bound is a clear client-side error.
	huge := event.Event{Seq: 999, Vals: make([]float64, (DefaultMaxFrame/8)+16)}
	c2, err := Dial(ClientConfig{Addr: srv.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Submit(huge); err != nil {
		t.Fatal(err)
	}
	if err := c2.Flush(); err == nil {
		t.Fatal("undeliverable single event accepted")
	}
	c2.conn.Close()
}
