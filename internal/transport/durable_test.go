package transport

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/harness"
)

// memJournal is an in-memory transport.Journal recording every batch
// it was asked to make durable, with an injectable commit failure.
type memJournal struct {
	mu      sync.Mutex
	seq     uint64
	batches []memBatch
	failAt  uint64 // journal seq whose Commit fails once
	fails   int
}

type memBatch struct {
	session  uint64
	batchSeq uint64
	count    int
	maxTS    event.Time
	payload  []byte
}

var errJournalDown = errors.New("journal down")

func (j *memJournal) Append(session, batchSeq uint64, count int, maxTS event.Time, payload []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	j.batches = append(j.batches, memBatch{
		session:  session,
		batchSeq: batchSeq,
		count:    count,
		maxTS:    maxTS,
		payload:  append([]byte(nil), payload...),
	})
	return j.seq, nil
}

func (j *memJournal) Commit(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failAt != 0 && seq == j.failAt {
		j.failAt = 0
		j.fails++
		// The record is not durable: drop it, as a poisoned-and-
		// restarted WAL would.
		j.batches = j.batches[:len(j.batches)-1]
		return errJournalDown
	}
	return nil
}

func (j *memJournal) snapshot() []memBatch {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]memBatch(nil), j.batches...)
}

// requireExactly asserts the sink received each input event exactly
// once, in order.
func requireExactly(t *testing.T, sink *collectSink, in []event.Event) {
	t.Helper()
	got := sink.snapshot()
	if len(got) != len(in) {
		t.Fatalf("sink has %d events, want exactly %d", len(got), len(in))
	}
	for i := range got {
		if got[i].Seq != in[i].Seq || got[i].Type != in[i].Type {
			t.Fatalf("event %d: got seq %d type %d, want seq %d type %d",
				i, got[i].Seq, got[i].Type, in[i].Seq, in[i].Type)
		}
	}
}

func TestDurableSessionEndToEnd(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	journal := &memJournal{}
	srv := startServer(t, ServerConfig{Sink: sink, Window: 256, Journal: journal})

	c, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 32, Session: 7})
	if err != nil {
		t.Fatal(err)
	}
	in := genEvents(500)
	if err := c.SubmitBatch(in); err != nil {
		t.Fatal(err)
	}
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 500 || st.Accepted != 500 {
		t.Fatalf("ledger %+v, want Sent == Accepted == 500", st)
	}
	requireExactly(t, sink, in)

	// Every batch was journaled before it was delivered, under the
	// session's identity with contiguous batch sequences.
	batches := journal.snapshot()
	var total int
	for i, b := range batches {
		if b.session != 7 || b.batchSeq != uint64(i+1) {
			t.Fatalf("journal batch %d: session %d seq %d", i, b.session, b.batchSeq)
		}
		total += b.count
	}
	if total != 500 {
		t.Fatalf("journaled %d events, want 500", total)
	}
	sstats := srv.Stats()
	if sstats.Sessions != 1 || sstats.DedupBatches != 0 {
		t.Fatalf("server stats %+v", sstats)
	}
}

// TestDurableReconnectEffectivelyOnce is the upgrade over
// TestClientReconnect: through the same mid-stream connection cut, a
// durable session loses nothing and duplicates nothing.
func TestDurableReconnectEffectivelyOnce(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink, Window: 64})

	proxy := startCuttingProxy(t, srv.Addr().String(), 1)
	c, err := Dial(ClientConfig{Addr: proxy, BatchEvents: 32, Session: 3, Reconnect: true, MaxRedials: 10})
	if err != nil {
		t.Fatal(err)
	}
	in := genEvents(400)
	for i := 0; i < len(in); i += 32 {
		if err := c.SubmitBatch(in[i:min(i+32, len(in))]); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Redials != 1 {
		t.Fatalf("redials = %d, want 1 (stats %+v)", st.Redials, st)
	}
	if st.Sent != 400 || st.Accepted != 400 {
		t.Fatalf("ledger %+v, want Sent == Accepted == 400", st)
	}
	requireExactly(t, sink, in)
}

// TestDurableSeededSessionDedups seeds a recovered watermark: a
// producer retransmitting already-journaled batches after a server
// restart gets them acknowledged without re-delivery.
func TestDurableSeededSessionDedups(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink, Window: 256})
	srv.SeedSessions(map[uint64]SessionState{9: {Applied: 2, Accepted: 64}})

	c, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 32, Session: 9})
	if err != nil {
		t.Fatal(err)
	}
	in := genEvents(96) // batches 1..3 of 32; 1 and 2 are already applied
	if err := c.SubmitBatch(in); err != nil {
		t.Fatal(err)
	}
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 96 || st.Accepted != 96 {
		t.Fatalf("ledger %+v (dedup-acked batches still count as accepted)", st)
	}
	requireExactly(t, sink, in[64:])
	if stats := srv.Stats(); stats.DedupBatches != 2 {
		t.Fatalf("dedup batches = %d, want 2", stats.DedupBatches)
	}
	states := srv.SessionStates()
	if s := states[9]; s.Applied != 3 || s.Accepted != 96 {
		t.Fatalf("session state %+v", s)
	}
}

// TestDurableNoAckOnJournalFailure is the transport half of the
// no-ack-after-failed-sync contract: when the journal cannot commit a
// batch, the server drops the connection without acknowledging it, and
// the retransmit (after the journal heals, as after a restart) delivers
// the batch exactly once.
func TestDurableNoAckOnJournalFailure(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	journal := &memJournal{failAt: 2} // second journaled batch fails its fsync
	srv := startServer(t, ServerConfig{Sink: sink, Window: 256, Journal: journal})

	c, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 32, Session: 5, Reconnect: true, MaxRedials: 10})
	if err != nil {
		t.Fatal(err)
	}
	in := genEvents(96)
	if err := c.SubmitBatch(in); err != nil {
		t.Fatal(err)
	}
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 96 || st.Accepted != 96 {
		t.Fatalf("ledger %+v, want Sent == Accepted == 96", st)
	}
	if st.Retransmits == 0 {
		t.Fatalf("expected a retransmit after the journal failure (stats %+v)", st)
	}
	requireExactly(t, sink, in)
	journal.mu.Lock()
	fails := journal.fails
	journal.mu.Unlock()
	if fails != 1 {
		t.Fatalf("journal fails = %d, want 1", fails)
	}
	// The journal holds each batch exactly once (the failed attempt was
	// dropped, the retransmit re-journaled it).
	var total int
	for i, b := range journal.snapshot() {
		if b.batchSeq != uint64(i+1) {
			t.Fatalf("journal batch %d has seq %d", i, b.batchSeq)
		}
		total += b.count
	}
	if total != 96 {
		t.Fatalf("journaled %d events, want 96", total)
	}
}

// TestPlainFramesJournaled covers the non-durable paths under a
// journal: plain binary frames and NDJSON lines are journaled under
// session 0 before they reach the sink.
func TestPlainFramesJournaled(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	journal := &memJournal{}
	srv := startServer(t, ServerConfig{Sink: sink, Window: 256, Journal: journal})

	c, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	in := genEvents(128)
	if err := c.SubmitBatch(in); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	requireExactly(t, sink, in)

	var dec Decoder
	var total int
	for _, b := range journal.snapshot() {
		if b.session != 0 || b.batchSeq != 0 {
			t.Fatalf("plain batch journaled as session %d seq %d", b.session, b.batchSeq)
		}
		evs, err := dec.DecodeEvents(b.payload)
		if err != nil {
			t.Fatalf("journaled payload does not decode: %v", err)
		}
		if len(evs) != b.count {
			t.Fatalf("journal count %d, payload decodes to %d", b.count, len(evs))
		}
		total += b.count
	}
	if total != 128 {
		t.Fatalf("journaled %d events, want 128", total)
	}
}
