package transport

import (
	"bytes"
	"testing"

	"repro/internal/event"
)

// FuzzCodecRoundTrip hardens the binary event codec: arbitrary input
// must either be rejected with an error or decode to a batch that
// re-encodes and re-decodes to the same events — and it must never
// panic, over-read, or let a malformed length smuggle an oversized
// allocation past the bounds.
func FuzzCodecRoundTrip(f *testing.F) {
	var enc Encoder
	f.Add(enc.AppendEvents(nil, genEvents(0)))
	f.Add(enc.AppendEvents(nil, genEvents(1)))
	f.Add(enc.AppendEvents(nil, genEvents(17)))
	f.Add(enc.AppendEvents(nil, []event.Event{
		{Seq: 1 << 62, Type: 1<<31 - 1, TS: -1, Kind: 255, Vals: []float64{0}},
	}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // huge count, no events
	f.Add([]byte{0x01, 0x00})                   // one event, truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := Decoder{MaxVals: 64, MaxBatch: 4096}
		events, err := dec.DecodeEvents(data)
		if err != nil {
			return
		}
		// Accepted input must round-trip bit-exactly through the encoder.
		// Copy the batch first: the decoder's scratch is recycled.
		first := append([]event.Event(nil), events...)
		for i := range first {
			first[i].Vals = append([]float64(nil), first[i].Vals...)
		}
		var enc Encoder
		payload := enc.AppendEvents(nil, first)
		again, err := dec.DecodeEvents(payload)
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch failed: %v", err)
		}
		if !eventsEqual(first, again) {
			t.Fatalf("round-trip mismatch:\n first=%v\nagain=%v", first, again)
		}
	})
}

// FuzzServerFrame hardens the frame layer: arbitrary byte streams fed
// through the scanner in arbitrary chunkings must never panic or
// over-read, must respect the frame bound, and must produce the same
// frame sequence regardless of chunking.
func FuzzServerFrame(f *testing.F) {
	var enc Encoder
	f.Add(AppendFrame(nil, FrameEvents, enc.AppendEvents(nil, genEvents(3))), uint8(1))
	f.Add(AppendFrame(nil, FrameEOF, nil), uint8(0))
	f.Add(AppendCreditFrame(nil, 1<<40), uint8(3))
	f.Add(append([]byte{FrameEvents}, bytes.Repeat([]byte{0x80}, 12)...), uint8(2))
	f.Add(bytes.Repeat([]byte{0xFF}, 64), uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		const maxFrame = 1 << 12
		type frame struct {
			typ     byte
			payload []byte
		}
		parse := func(step int) (frames []frame, failed bool) {
			s := newFrameScanner(maxFrame)
			for off := 0; off < len(data); off += step {
				end := off + step
				if end > len(data) {
					end = len(data)
				}
				s.Feed(data[off:end])
				for {
					typ, payload, ok, err := s.Next()
					if err != nil {
						return frames, true
					}
					if !ok {
						break
					}
					if len(payload) > maxFrame {
						t.Fatalf("payload of %d bytes exceeds scanner bound %d", len(payload), maxFrame)
					}
					frames = append(frames, frame{typ, append([]byte(nil), payload...)})
				}
			}
			return frames, false
		}
		whole, wholeErr := parse(len(data) + 1)
		step := int(chunk%16) + 1
		chunked, chunkedErr := parse(step)
		// Chunking must not change the outcome: same frames, and an
		// error in one feeding order is an error in the other.
		if wholeErr != chunkedErr {
			t.Fatalf("chunking changed the error outcome: whole=%v chunked=%v (step %d)", wholeErr, chunkedErr, step)
		}
		if len(whole) != len(chunked) {
			t.Fatalf("chunking changed the frame count: %d vs %d (step %d)", len(whole), len(chunked), step)
		}
		for i := range whole {
			if whole[i].typ != chunked[i].typ || !bytes.Equal(whole[i].payload, chunked[i].payload) {
				t.Fatalf("frame %d differs between chunkings", i)
			}
		}
		// Every FrameEvents payload must survive the decoder without a
		// panic, whatever it holds.
		dec := Decoder{MaxVals: 64, MaxBatch: 4096}
		for _, fr := range whole {
			if fr.typ == FrameEvents {
				_, _ = dec.DecodeEvents(fr.payload)
			}
		}
	})
}
