package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/queries"
	"repro/internal/runtime"
)

// equivStream generates the shared RTLS stream and Q1 query for the
// equivalence runs.
func equivStream(t *testing.T) (*datasets.RTLSMeta, []event.Event, queries.Query) {
	t.Helper()
	meta, events, err := datasets.GenerateRTLS(datasets.RTLSConfig{DurationSec: 150, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	q, err := queries.Q1(meta, 3, pattern.SelectFirst, 15)
	if err != nil {
		t.Fatal(err)
	}
	return meta, events, q
}

// runPipelineInProcess replays events straight into a pipeline and
// returns the detected complex events in emission order.
func runPipelineInProcess(t *testing.T, q queries.Query, shards int, events []event.Event) []operator.ComplexEvent {
	t.Helper()
	pipe, err := runtime.New(runtime.Config{
		Operator: operator.Config{Window: q.Window, Patterns: q.Patterns},
		Shards:   shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- pipe.Run(context.Background()) }()
	var detected []operator.ComplexEvent
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for ce := range pipe.Out() {
			detected = append(detected, ce)
		}
	}()
	pipe.SubmitBatch(events)
	pipe.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	<-collected
	return detected
}

// runPipelineOverWire replays the same events through espice-serve's
// transport path: client -> loopback TCP -> server -> pipeline.
func runPipelineOverWire(t *testing.T, meta *datasets.RTLSMeta, q queries.Query, shards int, events []event.Event) []operator.ComplexEvent {
	t.Helper()
	pipe, err := runtime.New(runtime.Config{
		Operator: operator.Config{Window: q.Window, Patterns: q.Patterns},
		Shards:   shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- pipe.Run(context.Background()) }()
	var detected []operator.ComplexEvent
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for ce := range pipe.Out() {
			detected = append(detected, ce)
		}
	}()

	srv := startServer(t, ServerConfig{Sink: pipe, Registry: meta.Registry})
	client, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SubmitBatch(events); err != nil {
		t.Fatal(err)
	}
	st, err := client.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != uint64(len(events)) {
		t.Fatalf("server accepted %d of %d events", st.Accepted, len(events))
	}
	// Close returned, so every event sits in the pipeline's queue; the
	// server is no longer needed and the stream can be sealed.
	srv.Close()
	pipe.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	<-collected
	return detected
}

// diffComplexEvents asserts two detection sequences are identical.
func diffComplexEvents(t *testing.T, label string, want, got []operator.ComplexEvent) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d complex events in-process vs %d over the wire", label, len(want), len(got))
	}
	for i := range want {
		if want[i].Key() != got[i].Key() || want[i].Pattern != got[i].Pattern {
			t.Fatalf("%s: complex event %d differs:\n in-process: %+v\n wire:       %+v", label, i, want[i], got[i])
		}
	}
	if len(want) == 0 {
		t.Fatalf("%s: stream produced no complex events; equivalence is vacuous", label)
	}
}

// TestWireEquivalenceSerial pins the tentpole guarantee for the serial
// pipeline: the wire boundary changes nothing about what is detected.
func TestWireEquivalenceSerial(t *testing.T) {
	harness.VerifyNoLeaks(t)
	meta, events, q := equivStream(t)
	want := runPipelineInProcess(t, q, 1, events)
	got := runPipelineOverWire(t, meta, q, 1, events)
	diffComplexEvents(t, "serial", want, got)
}

// TestWireEquivalenceSharded covers the sharded deployment: the
// submitter-side partitioning (the server's reader goroutines feed the
// partitioner directly), per-shard window ownership and the epoch merge
// all stay deterministic behind the wire boundary, at 4- and 8-shard
// configurations.
func TestWireEquivalenceSharded(t *testing.T) {
	harness.VerifyNoLeaks(t)
	meta, events, q := equivStream(t)
	serial := runPipelineInProcess(t, q, 1, events)
	for _, shards := range []int{4, 8} {
		label := fmt.Sprintf("sharded-%d", shards)
		want := runPipelineInProcess(t, q, shards, events)
		got := runPipelineOverWire(t, meta, q, shards, events)
		diffComplexEvents(t, label, want, got)

		// Sharded output equals serial output, so the wire run
		// transitively matches every deployment mode.
		diffComplexEvents(t, label+"-vs-serial", serial, got)
	}
}

// engineQueries builds the two-query engine configuration used by the
// engine-mode equivalence run.
func engineQueries(t *testing.T, meta *datasets.RTLSMeta) []queries.Query {
	t.Helper()
	qa, err := queries.Q1(meta, 3, pattern.SelectFirst, 15)
	if err != nil {
		t.Fatal(err)
	}
	qa.Name = "QA"
	qb, err := queries.Q1(meta, 2, pattern.SelectFirst, 10)
	if err != nil {
		t.Fatal(err)
	}
	qb.Name = "QB"
	return []queries.Query{qa, qb}
}

// runEngine drives a two-query engine either in-process or through the
// wire and returns the per-query detections.
func runEngine(t *testing.T, meta *datasets.RTLSMeta, qs []queries.Query, events []event.Event, overWire bool) map[string][]operator.ComplexEvent {
	t.Helper()
	eng, err := engine.New(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*engine.Query, len(qs))
	for i, q := range qs {
		h, err := eng.Register(engine.QueryConfig{Query: q, Shards: 1 + i})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()
	// One drain goroutine per query: a sequential drain stops reading
	// the later queries' channels, and once one fills past OutBuffer its
	// pipeline backpressures the whole engine (see cmd/espice-serve).
	detected := make(map[string][]operator.ComplexEvent)
	var detectedMu sync.Mutex
	var drains sync.WaitGroup
	collected := make(chan struct{})
	for _, h := range handles {
		drains.Add(1)
		go func(h *engine.Query) {
			defer drains.Done()
			for ce := range h.Out() {
				detectedMu.Lock()
				detected[h.Name()] = append(detected[h.Name()], ce)
				detectedMu.Unlock()
			}
		}(h)
	}
	go func() {
		defer close(collected)
		drains.Wait()
	}()

	if overWire {
		srv := startServer(t, ServerConfig{Sink: eng, Registry: meta.Registry})
		client, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 128})
		if err != nil {
			t.Fatal(err)
		}
		if err := client.SubmitBatch(events); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Close(); err != nil {
			t.Fatal(err)
		}
		srv.Close()
	} else {
		eng.SubmitBatch(events)
	}
	eng.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	<-collected
	return detected
}

// TestWireEquivalenceEngine covers the multi-query engine: fan-out,
// per-query filters and per-query pipelines behind the wire boundary
// detect exactly what the in-process engine detects.
func TestWireEquivalenceEngine(t *testing.T) {
	harness.VerifyNoLeaks(t)
	meta, events, _ := equivStream(t)
	qs := engineQueries(t, meta)
	want := runEngine(t, meta, qs, events, false)
	got := runEngine(t, meta, qs, events, true)
	for _, q := range qs {
		diffComplexEvents(t, "engine/"+q.Name, want[q.Name], got[q.Name])
	}
}

// TestWireEquivalenceNDJSON drives the serial pipeline through the
// NDJSON framing: the line codec is as faithful as the binary one.
func TestWireEquivalenceNDJSON(t *testing.T) {
	harness.VerifyNoLeaks(t)
	meta, events, q := equivStream(t)
	want := runPipelineInProcess(t, q, 1, events)

	pipe, err := runtime.New(runtime.Config{
		Operator: operator.Config{Window: q.Window, Patterns: q.Patterns},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- pipe.Run(context.Background()) }()
	var detected []operator.ComplexEvent
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for ce := range pipe.Out() {
			detected = append(detected, ce)
		}
	}()
	srv := startServer(t, ServerConfig{Sink: pipe, Registry: meta.Registry})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for _, ev := range events {
		buf = AppendNDJSON(buf[:0], ev, meta.Registry)
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()
	waitCond(t, 10e9, func() bool { return srv.Stats().EventsNDJSON == uint64(len(events)) })
	srv.Close()
	pipe.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	<-collected
	diffComplexEvents(t, "ndjson", want, detected)
}
