// Protocol-level durable-session tests that script one side of the
// wire exactly: the resync retransmit loop under mid-loop acks, the
// fresh-session resume rule, and idle-session expiry.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/harness"
)

// rawConn speaks raw wire frames over a connection, for tests that
// need exact control over one side of the conversation.
type rawConn struct {
	c    net.Conn
	scan *frameScanner
	read []byte
}

func newRawConn(c net.Conn) *rawConn {
	c.SetDeadline(time.Now().Add(30 * time.Second))
	return &rawConn{c: c, scan: newFrameScanner(DefaultMaxFrame), read: make([]byte, 32<<10)}
}

func (r *rawConn) write(frame []byte) error {
	_, err := r.c.Write(frame)
	return err
}

// readPreface consumes the two-byte binary preface (server side).
func (r *rawConn) readPreface() error {
	var p [2]byte
	if _, err := io.ReadFull(r.c, p[:]); err != nil {
		return err
	}
	if p[0] != Magic || p[1] != ProtocolVersion {
		return fmt.Errorf("preface %x", p)
	}
	return nil
}

// next pops the next frame, returning a copy of its payload.
func (r *rawConn) next() (byte, []byte, error) {
	for {
		typ, payload, ok, err := r.scan.Next()
		if err != nil {
			return 0, nil, err
		}
		if ok {
			return typ, append([]byte(nil), payload...), nil
		}
		n, err := r.c.Read(r.read)
		if n > 0 {
			r.scan.Feed(r.read[:n])
			continue
		}
		if err != nil {
			return 0, nil, err
		}
	}
}

// expect pops the next frame and asserts its type.
func (r *rawConn) expect(typ byte) ([]byte, error) {
	got, payload, err := r.next()
	if err != nil {
		return nil, err
	}
	if got != typ {
		return nil, fmt.Errorf("frame 0x%02x (payload %q), want 0x%02x", got, payload, typ)
	}
	return payload, nil
}

func uvarintFrame(typ byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return AppendFrame(nil, typ, tmp[:binary.PutUvarint(tmp[:], v)])
}

// TestDurableResyncSurvivesMidLoopAcks regresses the resync retransmit
// loop against ledger compaction: when the unacked tail exceeds the
// credit window, waitCredit processes applied watermarks mid-loop and
// ackThrough compacts the ledger under the loop's feet — the loop must
// iterate a snapshot, or a compaction shifts a later batch into the
// current slot and an intermediate batch is silently skipped (which the
// server then rejects as skipping the watermark, hard-failing the
// durable session).
func TestDurableResyncSurvivesMidLoopAcks(t *testing.T) {
	harness.VerifyNoLeaks(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const window = 64 // two 32-event batches; four batches overflow it
	batchSeqOf := func(p []byte) uint64 {
		seq, k := binary.Uvarint(p)
		if k <= 0 {
			return 0
		}
		return seq
	}
	script := func() error {
		// Connection 1: grant the window, accept four sequenced batches
		// — topping up credit mid-way with a grant that carries NO
		// applied watermark — then drop the connection unacked, leaving
		// all four batches in the client ledger.
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		defer conn.Close()
		r := newRawConn(conn)
		if err := r.readPreface(); err != nil {
			return err
		}
		if err := r.write(AppendCreditFrame(nil, window)); err != nil {
			return err
		}
		if _, err := r.expect(FrameHello); err != nil {
			return err
		}
		if err := r.write(uvarintFrame(FrameHelloAck, 0)); err != nil {
			return err
		}
		for want := uint64(1); want <= 4; want++ {
			p, err := r.expect(FrameEventsSeq)
			if err != nil {
				return fmt.Errorf("awaiting batch %d: %w", want, err)
			}
			if got := batchSeqOf(p); got != want {
				return fmt.Errorf("conn 1 got batch %d, want %d", got, want)
			}
			if want == 2 {
				if err := r.write(AppendCreditFrame(nil, window)); err != nil {
					return err
				}
			}
		}
		conn.Close()

		// Connection 2: the resync. Ack batch 1 only once batches 1 and
		// 2 have been retransmitted, so the client processes the
		// watermark — compacting its ledger — while blocked on credit
		// for batch 3. The retransmits must still arrive in order.
		conn2, err := ln.Accept()
		if err != nil {
			return err
		}
		defer conn2.Close()
		r2 := newRawConn(conn2)
		if err := r2.readPreface(); err != nil {
			return err
		}
		if err := r2.write(AppendCreditFrame(nil, window)); err != nil {
			return err
		}
		if _, err := r2.expect(FrameHello); err != nil {
			return err
		}
		if err := r2.write(uvarintFrame(FrameHelloAck, 0)); err != nil {
			return err
		}
		for want := uint64(1); want <= 2; want++ {
			p, err := r2.expect(FrameEventsSeq)
			if err != nil {
				return fmt.Errorf("awaiting retransmit %d: %w", want, err)
			}
			if got := batchSeqOf(p); got != want {
				return fmt.Errorf("retransmit got batch %d, want %d", got, want)
			}
		}
		if err := r2.write(AppendCreditAckFrame(nil, 32, 1)); err != nil {
			return err
		}
		for want := uint64(3); want <= 4; want++ {
			p, err := r2.expect(FrameEventsSeq)
			if err != nil {
				return fmt.Errorf("awaiting retransmit %d: %w", want, err)
			}
			if got := batchSeqOf(p); got != want {
				return fmt.Errorf("retransmit skipped to batch %d after mid-loop ack, want %d", got, want)
			}
			if err := r2.write(AppendCreditAckFrame(nil, 32, want)); err != nil {
				return err
			}
		}
		if _, err := r2.expect(FrameEOF); err != nil {
			return err
		}
		return r2.write(uvarintFrame(FrameDone, 128))
	}
	scriptErr := make(chan error, 1)
	go func() { scriptErr <- script() }()

	c, err := Dial(ClientConfig{Addr: ln.Addr().String(), BatchEvents: 32, Session: 7, Reconnect: true, MaxRedials: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBatch(genEvents(128)); err != nil {
		t.Fatal(err)
	}
	st, cerr := c.Close()
	if err := <-scriptErr; err != nil {
		t.Fatalf("server script: %v (client stats %+v, close err %v)", err, st, cerr)
	}
	if cerr != nil {
		t.Fatal(cerr)
	}
	if st.Sent != 128 || st.Accepted != 128 {
		t.Fatalf("ledger %+v, want Sent == Accepted == 128", st)
	}
	if st.Redials != 1 || st.Retransmits != 4 {
		t.Fatalf("stats %+v, want 1 redial retransmitting all 4 batches", st)
	}
}

// TestDurableFreshSessionResumesAboveWatermark pins the resume rule: a
// fresh session — nothing applied this server lifetime, no watermark
// recovered from the journal — may start above batch 1, which is the
// shape a durable producer leaves when it outlives a clean server
// restart (the clean drain released its journal, so no watermark
// survives). Seeded or already-active sessions stay strictly
// contiguous.
func TestDurableFreshSessionResumesAboveWatermark(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink, Window: 256})
	srv.SeedSessions(map[uint64]SessionState{9: {Applied: 2, Accepted: 64}})

	var enc Encoder
	body := enc.AppendEvents(nil, genEvents(8))
	seqFrame := func(batchSeq uint64) []byte {
		var tmp [binary.MaxVarintLen64]byte
		payload := append([]byte(nil), tmp[:binary.PutUvarint(tmp[:], batchSeq)]...)
		payload = append(payload, body...)
		return AppendFrame(nil, FrameEventsSeq, payload)
	}
	dial := func(session uint64) *rawConn {
		t.Helper()
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		r := newRawConn(conn)
		if err := r.write([]byte{Magic, ProtocolVersion}); err != nil {
			t.Fatal(err)
		}
		if _, err := r.expect(FrameCredit); err != nil {
			t.Fatal(err)
		}
		if err := r.write(uvarintFrame(FrameHello, session)); err != nil {
			t.Fatal(err)
		}
		return r
	}
	appliedOf := func(p []byte) uint64 {
		_, k := binary.Uvarint(p) // grant
		applied, _ := binary.Uvarint(p[k:])
		return applied
	}

	// Fresh session 5 resumes at batch 4; the watermark adopts it.
	r := dial(5)
	p, err := r.expect(FrameHelloAck)
	if err != nil {
		t.Fatal(err)
	}
	if applied, _ := binary.Uvarint(p); applied != 0 {
		t.Fatalf("fresh hello ack watermark = %d, want 0", applied)
	}
	for _, seq := range []uint64{4, 5} {
		if err := r.write(seqFrame(seq)); err != nil {
			t.Fatal(err)
		}
		if p, err = r.expect(FrameCredit); err != nil {
			t.Fatalf("batch %d: %v", seq, err)
		}
		if got := appliedOf(p); got != seq {
			t.Fatalf("batch %d acked with watermark %d", seq, got)
		}
	}
	// Once the session has applied a batch, a further gap is an error.
	if err := r.write(seqFrame(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.expect(FrameError); err != nil {
		t.Fatalf("gap on active session: %v", err)
	}

	// A seeded watermark stays strict: skipping it is an error, not a
	// resume.
	r2 := dial(9)
	if p, err = r2.expect(FrameHelloAck); err != nil {
		t.Fatal(err)
	}
	if applied, _ := binary.Uvarint(p); applied != 2 {
		t.Fatalf("seeded hello ack watermark = %d, want 2", applied)
	}
	if err := r2.write(seqFrame(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.expect(FrameError); err != nil {
		t.Fatalf("gap on seeded session: %v", err)
	}

	// Exactly the two adopted batches were delivered.
	if got := len(sink.snapshot()); got != 16 {
		t.Fatalf("sink has %d events, want 16", got)
	}
	if states := srv.SessionStates(); states[5].Applied != 5 {
		t.Fatalf("session 5 state %+v, want Applied 5", states[5])
	}
}

// TestSessionExpiry covers ExpireSessions: a session with a bound
// connection never expires, an unbound one does once idle, and the
// expired ids are reported so derived state (the WAL's session pins)
// can be dropped with them. The negative SessionExpiryFloor disables
// the mid-redial protection so the test can expire immediately.
func TestSessionExpiry(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink, Window: 64, SessionExpiryFloor: -1})
	srv.SeedSessions(map[uint64]SessionState{11: {Applied: 3}})

	c, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 8, Session: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBatch(genEvents(8)); err != nil {
		t.Fatal(err)
	}

	// The seeded session has no connection and expires at once; the
	// bound session must survive any idle period.
	expired := srv.ExpireSessions(0)
	if len(expired) != 1 || expired[0] != 11 {
		t.Fatalf("expired %v, want [11]", expired)
	}
	if st := srv.Stats(); st.Sessions != 1 {
		t.Fatalf("sessions = %d after expiring the seeded one, want 1", st.Sessions)
	}

	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The handler unbinds asynchronously after the client closes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if expired := srv.ExpireSessions(0); len(expired) == 1 && expired[0] == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session 5 never became expirable after Close")
		}
		time.Sleep(time.Millisecond)
	}
	if st := srv.Stats(); st.Sessions != 0 {
		t.Fatalf("sessions = %d after expiry, want 0", st.Sessions)
	}
}

// TestSessionExpiryMidRedial regresses the duplicate-accept bug: a
// durable producer mid-redial has conns == 0 for exactly its backoff
// window, and an ExpireSessions sweep in that window used to drop the
// dedup watermark so the retransmit after the reconnect was accepted
// twice. Two defenses are pinned here: the expiry floor keeps an
// aggressive sweep from expiring a freshly idle session at all, and
// the watermark tombstone re-seeds a session that genuinely expired,
// so even then the retransmitted tail dedups instead of re-applying.
func TestSessionExpiryMidRedial(t *testing.T) {
	harness.VerifyNoLeaks(t)

	// Half 1: the floor. With the default floor in effect, a sweep with
	// idle 0 must not expire a session that just went idle.
	floorSink := &collectSink{}
	floorSrv := startServer(t, ServerConfig{Sink: floorSink, Window: 64})
	floorSrv.SeedSessions(map[uint64]SessionState{31: {Applied: 3}})
	// Make the seeded session look freshly idle, as it would be the
	// instant a producer's connection dropped.
	if expired := floorSrv.ExpireSessions(0); len(expired) != 0 {
		t.Fatalf("ExpireSessions(0) under the default floor expired %v, want none", expired)
	}

	// Half 2: the tombstone. Floor disabled so the session really does
	// expire mid-redial; the rebind must resume dedup from the
	// tombstoned watermark.
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink, Window: 64, SessionExpiryFloor: -1})

	var enc Encoder
	body := enc.AppendEvents(nil, genEvents(8))
	seqFrame := func(batchSeq uint64) []byte {
		var tmp [binary.MaxVarintLen64]byte
		payload := append([]byte(nil), tmp[:binary.PutUvarint(tmp[:], batchSeq)]...)
		payload = append(payload, body...)
		return AppendFrame(nil, FrameEventsSeq, payload)
	}
	dial := func() *rawConn {
		t.Helper()
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		r := newRawConn(conn)
		if err := r.write([]byte{Magic, ProtocolVersion}); err != nil {
			t.Fatal(err)
		}
		if _, err := r.expect(FrameCredit); err != nil {
			t.Fatal(err)
		}
		if err := r.write(uvarintFrame(FrameHello, 21)); err != nil {
			t.Fatal(err)
		}
		if _, err := r.expect(FrameHelloAck); err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Connection 1: apply batch 1, then drop (the producer starts its
	// redial backoff with batch 1 still in its ledger, unacked from its
	// point of view if the ack was lost in flight).
	r := dial()
	if err := r.write(seqFrame(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.expect(FrameCredit); err != nil {
		t.Fatal(err)
	}
	r.c.Close()

	// The sweep lands exactly in the backoff window.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if expired := srv.ExpireSessions(0); len(expired) == 1 && expired[0] == 21 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session 21 never became expirable")
		}
		time.Sleep(time.Millisecond)
	}

	// Connection 2: the redial. The hello ack must already carry the
	// tombstoned watermark, and the retransmit of batch 1 must dedup.
	r2 := dial()
	// dial consumed the hello ack; re-check via the retransmit path.
	if err := r2.write(seqFrame(1)); err != nil {
		t.Fatal(err)
	}
	p, err := r2.expect(FrameCredit)
	if err != nil {
		t.Fatal(err)
	}
	_, k := binary.Uvarint(p) // grant
	if applied, _ := binary.Uvarint(p[k:]); applied != 1 {
		t.Fatalf("retransmit acked with watermark %d, want 1 (re-seeded from tombstone)", applied)
	}
	// Batch 2 continues the sequence contiguously.
	if err := r2.write(seqFrame(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.expect(FrameCredit); err != nil {
		t.Fatal(err)
	}

	if st := srv.Stats(); st.DedupBatches != 1 {
		t.Fatalf("DedupBatches = %d, want 1 (the retransmit)", st.DedupBatches)
	}
	waitForEvents := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for len(sink.snapshot()) < want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := len(sink.snapshot()); got != want {
			t.Fatalf("sink has %d events, want %d (retransmit must not re-apply)", got, want)
		}
	}
	waitForEvents(16)
}
