package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/harness"
)

// TestServerIdleEviction pins the IdleTimeout read guard: a client that
// connects and then goes silent is evicted (its handler returns, its
// connection closes) and counted in the taxonomy, instead of pinning a
// goroutine forever.
func TestServerIdleEviction(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{Sink: sink, IdleTimeout: 50 * time.Millisecond})

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{Magic, ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	// ...and then say nothing. The server must hang up on us.
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			break // initial credit frame first, then the eviction
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().IdleEvictions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle eviction not counted: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := srv.Stats(); st.ConnsActive != 0 {
		t.Errorf("evicted connection still active: %+v", st)
	}
}

// TestClientRedialsExhausted kills the server under a reconnecting
// client and asserts the typed give-up error.
func TestClientRedialsExhausted(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv, err := NewServer(ServerConfig{Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	addr := srv.Addr().String()
	c, err := Dial(ClientConfig{
		Addr:        addr,
		BatchEvents: 4,
		Reconnect:   true,
		MaxRedials:  2,
		MaxBackoff:  20 * time.Millisecond,
		DialTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	var ferr error
	for i := 0; i < 64 && ferr == nil; i++ {
		ferr = c.SubmitBatch(genEvents(4))
	}
	if !errors.Is(ferr, ErrRedialsExhausted) {
		t.Fatalf("flush error = %v, want ErrRedialsExhausted", ferr)
	}
	if _, err := c.Close(); err == nil {
		t.Error("Close on a dead client must fail")
	}
}

// flakyJournal accepts batches while healthy and reports the degraded
// sentinel while tripped; it never fail-stops.
type flakyJournal struct {
	mu       sync.Mutex
	degraded bool
	seq      uint64
	appends  int
}

func (j *flakyJournal) setDegraded(v bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.degraded = v
}

func (j *flakyJournal) Append(session, batchSeq uint64, count int, maxTS event.Time, payload []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded {
		return 0, ErrJournalDegraded
	}
	j.seq++
	j.appends++
	return j.seq, nil
}

func (j *flakyJournal) Commit(seq uint64) error { return nil }

// TestDegradedJournalLossyAcks drives a durable session through a
// degrade → restore episode: while the journal refuses durability the
// server must keep accepting (no dropped connection), ack with
// FlagDegraded — visible as Client.Degraded and DegradedAcks — and
// count LostDurability; when the journal heals, the very next ack
// clears the bit on both ends without any reconnect.
func TestDegradedJournalLossyAcks(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	journal := &flakyJournal{}
	// Window == batch size: every flush must consume the previous ack
	// before it can spend credit, so the client's degraded view tracks
	// the server's deterministically.
	srv := startServer(t, ServerConfig{Sink: sink, Journal: journal, Window: 4})

	c, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 4, Session: 7})
	if err != nil {
		t.Fatal(err)
	}
	events := genEvents(12)

	// Batch 1: healthy.
	if err := c.SubmitBatch(events[:4]); err != nil {
		t.Fatal(err)
	}
	if c.Degraded() {
		t.Fatal("client degraded before any journal fault")
	}

	// Batches 2 and 3: degraded. The second flush consumes batch 2's
	// flagged ack while waiting for credit.
	journal.setDegraded(true)
	if err := c.SubmitBatch(events[4:8]); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBatch(events[8:12]); err != nil {
		t.Fatal(err)
	}
	if !c.Degraded() {
		t.Fatal("client did not observe the degraded ack")
	}
	sst := srv.Stats()
	if !sst.Degraded || sst.DegradedSince.IsZero() {
		t.Fatalf("server not degraded: %+v", sst)
	}
	if sst.LostDurability == 0 {
		t.Fatalf("LostDurability not counted: %+v", sst)
	}

	// Heal; Close drains the remaining acks and the final healthy ack
	// clears the client's bit. Durable close implies Sent == Accepted.
	journal.setDegraded(false)
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 12 || st.Accepted != 12 {
		t.Fatalf("client stats: %+v", st)
	}
	if st.DegradedAcks == 0 {
		t.Error("DegradedAcks not counted")
	}
	if c.Degraded() {
		t.Error("client still degraded after the journal healed")
	}
	sst = srv.Stats()
	if sst.Degraded || !sst.DegradedSince.IsZero() {
		t.Errorf("server still degraded after heal: %+v", sst)
	}
	if got := sink.snapshot(); !eventsEqual(events, got) {
		t.Fatalf("sink received %d events, want all 12 (degraded batches must still flow)", len(got))
	}
	// The watermark advanced through the lossy episode: batches 2 and 3
	// were acked from memory, so only batch 1 and the healthy tail hit
	// the journal.
	if journal.appends != 1 {
		t.Errorf("journal holds %d appends, want 1 (degraded batches skipped)", journal.appends)
	}
}

// TestServerShutdownBounded holds a connection open past the drain
// deadline: Shutdown must still return within the bound, with the
// stubborn peer cut off by its final deadline.
func TestServerShutdownBounded(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv, err := NewServer(ServerConfig{Sink: sink, IdleTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{Magic, ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	// Give the handler a beat to arm its minute-long idle deadline —
	// Shutdown's cap must beat it.
	time.Sleep(10 * time.Millisecond)

	start := time.Now()
	if err := srv.Shutdown(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("Shutdown took %v, want ~100ms", took)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.ConnsActive != 0 {
		t.Errorf("connections survived shutdown: %+v", st)
	}
}
