//go:build race

package transport

// raceEnabled reports whether the race detector instruments this build;
// the soak test scales its event budget down under instrumentation.
const raceEnabled = true
