// The binary event codec: a FrameEvents payload is
//
//	uvarint count
//	count × event
//
// and each event is encoded as
//
//	uvarint seq
//	uvarint type     (the registry-interned type id)
//	zigzag  ts       (virtual microseconds; signed varint)
//	byte    kind
//	uvarint nvals
//	nvals × 8-byte little-endian IEEE-754 float64
//
// Decoding is allocation-free in steady state: the decoder owns an
// event slice and a flat float64 arena that are recycled across calls,
// exactly like the window manager recycles windows (the PR-3 pooling
// contract). The returned batch and every Vals slice alias that scratch
// and stay valid only until the next DecodeEvents call; a consumer that
// hands events to a pipeline — which retains them inside open windows —
// must set Retain, which detaches the Vals backing store into a fresh
// per-call slab (one allocation per frame, amortized over the batch)
// while still recycling the event slice itself (Pipeline.SubmitBatch
// copies the event structs, so only the Vals pointers must survive).
package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/event"
)

// Encoder serializes event batches into FrameEvents payloads. The zero
// value is ready to use; an Encoder is not safe for concurrent use.
type Encoder struct{}

// AppendEvents appends the FrameEvents payload for events to dst and
// returns the extended slice.
func (Encoder) AppendEvents(dst []byte, events []event.Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(events)))
	for _, e := range events {
		dst = binary.AppendUvarint(dst, e.Seq)
		dst = binary.AppendUvarint(dst, uint64(uint32(e.Type)))
		dst = binary.AppendVarint(dst, int64(e.TS))
		dst = append(dst, byte(e.Kind))
		dst = binary.AppendUvarint(dst, uint64(len(e.Vals)))
		for _, v := range e.Vals {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// AppendEventsFrame appends a complete FrameEvents (header + payload)
// for events to dst and returns the extended slice.
func (enc Encoder) AppendEventsFrame(dst []byte, events []event.Event) []byte {
	payload := enc.AppendEvents(nil, events)
	return AppendFrame(dst, FrameEvents, payload)
}

// Decoder parses FrameEvents payloads. The zero value is ready to use;
// a Decoder is not safe for concurrent use.
type Decoder struct {
	// MaxTypes bounds the acceptable type ids to [0, MaxTypes); an id at
	// or past the bound is a protocol error. Zero accepts every
	// non-negative id (the registry bound is then enforced by the
	// application, if at all).
	MaxTypes int
	// MaxVals bounds the attribute count of a single event
	// (DefaultMaxVals when zero).
	MaxVals int
	// MaxBatch bounds the event count of a single frame
	// (DefaultMaxBatch when zero).
	MaxBatch int
	// Retain detaches the decoded Vals into a fresh exact-size slab on
	// every call, so the events may be handed to a consumer that keeps
	// them (a pipeline buffering open windows). Without Retain the Vals
	// alias the decoder's recycled arena and expire at the next call.
	Retain bool

	events  []event.Event
	arena   []float64
	extents []valExtent
}

// valExtent records one event's Vals range inside the decode arena; the
// subslices are carved out only after parsing, because the growing
// arena may be reallocated mid-frame.
type valExtent struct{ start, n int }

// Decode bounds defaults.
const (
	// DefaultMaxVals bounds the per-event attribute count.
	DefaultMaxVals = 1 << 10
	// DefaultMaxBatch bounds the per-frame event count.
	DefaultMaxBatch = 1 << 16
)

// DecodeEvents parses one FrameEvents payload. The returned slice is
// recycled across calls (see the package comment on the pooling
// contract); it is never retained past the next DecodeEvents call by a
// correct caller. Malformed input — truncated events, trailing bytes,
// out-of-range type ids, oversized counts — returns an error and never
// panics or reads past the payload.
func (d *Decoder) DecodeEvents(payload []byte) ([]event.Event, error) {
	maxVals := d.MaxVals
	if maxVals <= 0 {
		maxVals = DefaultMaxVals
	}
	maxBatch := d.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("transport: malformed event count")
	}
	payload = payload[n:]
	if count > uint64(maxBatch) {
		return nil, fmt.Errorf("transport: batch of %d events exceeds limit %d", count, maxBatch)
	}
	// Each event costs at least 5 bytes on the wire, so a count that
	// cannot fit the remaining payload is rejected before any allocation
	// is sized from it.
	if count > uint64(len(payload)/minEventWire+1) {
		return nil, fmt.Errorf("transport: event count %d exceeds payload", count)
	}
	events := d.events[:0]
	arena := d.arena[:0]
	extents := d.extents[:0]
	for i := uint64(0); i < count; i++ {
		var e event.Event
		seq, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("transport: event %d: truncated seq", i)
		}
		payload = payload[n:]
		e.Seq = seq

		typ, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("transport: event %d: truncated type", i)
		}
		payload = payload[n:]
		if typ > math.MaxInt32 {
			return nil, fmt.Errorf("transport: event %d: type id %d out of range", i, typ)
		}
		if d.MaxTypes > 0 && typ >= uint64(d.MaxTypes) {
			return nil, fmt.Errorf("transport: event %d: unknown type id %d (registry has %d)", i, typ, d.MaxTypes)
		}
		e.Type = event.Type(typ)

		ts, n := binary.Varint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("transport: event %d: truncated timestamp", i)
		}
		payload = payload[n:]
		e.TS = event.Time(ts)

		if len(payload) < 1 {
			return nil, fmt.Errorf("transport: event %d: truncated kind", i)
		}
		e.Kind = event.Kind(payload[0])
		payload = payload[1:]

		nvals, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("transport: event %d: truncated value count", i)
		}
		payload = payload[n:]
		if nvals > uint64(maxVals) {
			return nil, fmt.Errorf("transport: event %d: %d values exceed limit %d", i, nvals, maxVals)
		}
		if uint64(len(payload)) < nvals*8 {
			return nil, fmt.Errorf("transport: event %d: truncated values", i)
		}
		start := len(arena)
		for j := uint64(0); j < nvals; j++ {
			arena = append(arena, math.Float64frombits(binary.LittleEndian.Uint64(payload[j*8:])))
		}
		payload = payload[nvals*8:]
		extents = append(extents, valExtent{start, int(nvals)})
		events = append(events, e)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after %d events", len(payload), count)
	}
	vals := arena
	if d.Retain && len(arena) > 0 {
		vals = make([]float64, len(arena))
		copy(vals, arena)
	}
	for i := range events {
		if ext := extents[i]; ext.n > 0 {
			events[i].Vals = vals[ext.start : ext.start+ext.n : ext.start+ext.n]
		}
	}
	d.events, d.arena, d.extents = events, arena, extents
	return events, nil
}

// minEventWire is the smallest possible wire size of one event: 1-byte
// seq + 1-byte type + 1-byte ts + kind + 1-byte value count.
const minEventWire = 5
