// NDJSON ingest: the debug- and interop-friendly alternative to the
// binary codec. A connection whose first byte is not the binary Magic
// is read as newline-delimited JSON objects, one event per line:
//
//	{"seq":17,"type":"STR_A","ts":1500000,"kind":"possession","vals":[1.5,2]}
//
// "type" is either the registry-interned numeric id or the registered
// type name; "kind" is either the numeric kind or its name (see
// event.ParseKind). NDJSON connections get no credit frames —
// backpressure degrades to the bounded read window: the server only
// reads as fast as the sink absorbs events, so a fast producer
// eventually blocks in the kernel's TCP flow control.
package transport

import (
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/event"
)

// ndjsonHelloToken recognizes a tenant hello line — a JSON object with
// a "token" member, e.g. {"token":"tok-alpha"} — and returns the token
// bytes. Only the connection's first line is ever tested against it;
// event lines (no "token" member) report ok == false.
func ndjsonHelloToken(line []byte) (token []byte, ok bool) {
	var hello struct {
		Token *string `json:"token"`
	}
	if err := json.Unmarshal(line, &hello); err != nil || hello.Token == nil {
		return nil, false
	}
	return []byte(*hello.Token), true
}

// ndjsonEvent is the wire shape of one NDJSON line.
type ndjsonEvent struct {
	Seq  uint64          `json:"seq"`
	Type json.RawMessage `json:"type"`
	TS   int64           `json:"ts"`
	Kind json.RawMessage `json:"kind"`
	Vals []float64       `json:"vals,omitempty"`
}

// decodeNDJSONLine parses one line into an event, resolving type names
// (and validating type ids) against reg when non-nil.
func decodeNDJSONLine(line []byte, reg *event.Registry) (event.Event, error) {
	var raw ndjsonEvent
	if err := json.Unmarshal(line, &raw); err != nil {
		return event.Event{}, fmt.Errorf("transport: ndjson: %w", err)
	}
	e := event.Event{Seq: raw.Seq, TS: event.Time(raw.TS), Vals: raw.Vals}

	switch {
	case len(raw.Type) == 0:
		return event.Event{}, fmt.Errorf("transport: ndjson: missing type")
	case raw.Type[0] == '"':
		var name string
		if err := json.Unmarshal(raw.Type, &name); err != nil {
			return event.Event{}, fmt.Errorf("transport: ndjson type: %w", err)
		}
		if reg == nil {
			return event.Event{}, fmt.Errorf("transport: ndjson: type by name %q needs a registry", name)
		}
		id, ok := reg.Lookup(name)
		if !ok {
			return event.Event{}, fmt.Errorf("transport: ndjson: unknown type %q", name)
		}
		e.Type = id
	default:
		id, err := strconv.ParseInt(string(raw.Type), 10, 32)
		if err != nil || id < 0 {
			return event.Event{}, fmt.Errorf("transport: ndjson: bad type id %q", raw.Type)
		}
		if reg != nil && int(id) >= reg.Len() {
			return event.Event{}, fmt.Errorf("transport: ndjson: unknown type id %d (registry has %d)", id, reg.Len())
		}
		e.Type = event.Type(id)
	}

	switch {
	case len(raw.Kind) == 0:
		e.Kind = event.KindNone
	case raw.Kind[0] == '"':
		var name string
		if err := json.Unmarshal(raw.Kind, &name); err != nil {
			return event.Event{}, fmt.Errorf("transport: ndjson kind: %w", err)
		}
		k, ok := event.ParseKind(name)
		if !ok {
			return event.Event{}, fmt.Errorf("transport: ndjson: unknown kind %q", name)
		}
		e.Kind = k
	default:
		k, err := strconv.ParseUint(string(raw.Kind), 10, 8)
		if err != nil {
			return event.Event{}, fmt.Errorf("transport: ndjson: bad kind %q", raw.Kind)
		}
		e.Kind = event.Kind(k)
	}
	return e, nil
}

// AppendNDJSON appends the NDJSON line (with trailing newline) for e to
// dst, rendering the type by name through reg when non-nil.
func AppendNDJSON(dst []byte, e event.Event, reg *event.Registry) []byte {
	raw := ndjsonEvent{Seq: e.Seq, TS: int64(e.TS), Vals: e.Vals}
	if reg != nil {
		name, _ := json.Marshal(reg.Name(e.Type))
		raw.Type = name
	} else {
		raw.Type = json.RawMessage(strconv.FormatInt(int64(e.Type), 10))
	}
	raw.Kind = json.RawMessage(strconv.FormatUint(uint64(e.Kind), 10))
	line, err := json.Marshal(raw)
	if err != nil {
		// ndjsonEvent contains only marshalable fields; NaN/Inf values
		// are the single failure mode and are a caller data error.
		panic(fmt.Sprintf("transport: ndjson marshal: %v", err))
	}
	dst = append(dst, line...)
	return append(dst, '\n')
}
