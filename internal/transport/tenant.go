package transport

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TenantQuota bounds one tenant's ingress across every connection it
// opens. The zero value means "server defaults": one connection's
// worth of aggregate credit and no rate limit.
type TenantQuota struct {
	// Window caps the tenant's aggregate outstanding credit in events,
	// summed across all of its connections: each binary connection
	// carves its per-connection window (at most ServerConfig.Window)
	// out of this pool at connect time and returns it on close, so a
	// tenant opening many connections cannot multiply its buffering
	// bound past the pool. A connection whose carve would be zero is
	// rejected with FrameError. Zero defaults to ServerConfig.Window
	// (one full connection's worth).
	Window int
	// Rate is the tenant's sustained ingress limit in events per
	// second, enforced with a token bucket that throttles credit
	// replenishment: an over-rate tenant sees its credit grants delayed
	// rather than its events dropped, so the wire stays lossless and
	// the backpressure reaches the producer as credit wait. Zero
	// disables rate limiting.
	Rate float64
	// Burst is the token-bucket depth in events — how far above Rate a
	// tenant may transiently spike before throttling begins. Zero
	// defaults to Rate (one second of burst).
	Burst float64
}

// TenantAuth is the authenticator's verdict for one presented token:
// the tenant identity the connection runs under and the quota applied
// to it. Re-authenticating an existing tenant updates its quota (the
// latest verdict wins).
type TenantAuth struct {
	// Tenant is the tenant identity. The empty string is the anonymous
	// tenant; all unauthenticated connections share it.
	Tenant string
	// Quota bounds the tenant's aggregate ingress.
	Quota TenantQuota
}

// TenantStats is one tenant's slice of the server counters.
type TenantStats struct {
	// Tenant is the tenant identity ("" for the anonymous tenant).
	Tenant string
	// Conns counts the tenant's currently open connections and
	// ConnsRejected the connections refused because the tenant's
	// aggregate credit pool was exhausted.
	Conns         int
	ConnsRejected uint64
	// Events counts accepted events across the tenant's connections.
	Events uint64
	// ThrottledBatches counts batches whose credit grant-back was
	// delayed by the rate limiter; ThrottleWait is the cumulative delay
	// injected — the tenant-attributed credit wait its producers
	// experienced.
	ThrottledBatches uint64
	ThrottleWait     time.Duration
	// CreditCarved is the tenant's currently outstanding carved credit
	// in events (the used part of its aggregate window pool).
	CreditCarved int
}

// tenantState is one tenant's live server-side accounting: the carved
// share of its aggregate credit pool, its token bucket and counters.
type tenantState struct {
	name string

	events    atomic.Uint64
	throttled atomic.Uint64
	waitNanos atomic.Int64
	rejected  atomic.Uint64

	mu       sync.Mutex
	quota    TenantQuota
	carved   int // outstanding credit carved by open connections
	conns    int
	bucket   float64
	lastFill time.Time
}

// resolveTenant authenticates a presented token (nil for connections
// that presented none) through the configured authenticator and
// returns the tenant's state. A nil Authenticate disables tenancy:
// every connection gets a nil tenant and behaves exactly as before
// this layer existed.
func (s *Server) resolveTenant(token []byte) (*tenantState, error) {
	if s.cfg.Authenticate == nil {
		return nil, nil
	}
	auth, err := s.cfg.Authenticate(token)
	if err != nil {
		s.authFails.Add(1)
		return nil, fmt.Errorf("transport: authentication failed: %v", err)
	}
	s.tenMu.Lock()
	ts := s.tenants[auth.Tenant]
	if ts == nil {
		// The bucket starts full: Burst is the depth a producer may burst
		// above the sustained rate, and a tenant that has never sent
		// anything is maximally entitled to it. Starting empty would
		// throttle the very first batch of a well-behaved producer.
		depth := auth.Quota.Burst
		if depth <= 0 {
			depth = auth.Quota.Rate
		}
		ts = &tenantState{name: auth.Tenant, lastFill: time.Now(), bucket: depth}
		s.tenants[auth.Tenant] = ts
	}
	s.tenMu.Unlock()
	ts.mu.Lock()
	ts.quota = auth.Quota
	ts.mu.Unlock()
	return ts, nil
}

// tenantOpen counts one connection into the tenant (nil-safe).
func tenantOpen(ts *tenantState) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	ts.conns++
	ts.mu.Unlock()
}

// tenantClose counts one connection out of the tenant (nil-safe).
func tenantClose(ts *tenantState) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	ts.conns--
	ts.mu.Unlock()
}

// carveWindow carves one binary connection's credit window out of the
// tenant's aggregate pool, returning the granted size — zero when the
// pool is exhausted (the caller rejects the connection). A nil tenant
// gets the full per-connection window.
func (s *Server) carveWindow(ts *tenantState) int {
	if ts == nil {
		return s.cfg.Window
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	pool := ts.quota.Window
	if pool <= 0 {
		pool = s.cfg.Window
	}
	grant := s.cfg.Window
	if avail := pool - ts.carved; grant > avail {
		grant = avail
	}
	if grant <= 0 {
		ts.rejected.Add(1)
		return 0
	}
	ts.carved += grant
	return grant
}

// uncarveWindow returns a connection's carved credit to the pool.
func (s *Server) uncarveWindow(ts *tenantState, n int) {
	if ts == nil || n <= 0 {
		return
	}
	ts.mu.Lock()
	ts.carved -= n
	ts.mu.Unlock()
}

// charge spends n events from the tenant's token bucket and returns
// how long the caller must delay to respect the sustained rate. The
// bucket is reservation-style: it may go negative, and the returned
// wait is the time for it to refill to zero — so a burst is admitted
// immediately and the delay lands on the following grants.
func (ts *tenantState) charge(n int) time.Duration {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rate := ts.quota.Rate
	if rate <= 0 {
		return 0
	}
	burst := ts.quota.Burst
	if burst <= 0 {
		burst = rate
	}
	now := time.Now()
	ts.bucket += now.Sub(ts.lastFill).Seconds() * rate
	ts.lastFill = now
	if ts.bucket > burst {
		ts.bucket = burst
	}
	ts.bucket -= float64(n)
	if ts.bucket >= 0 {
		return 0
	}
	return time.Duration(-ts.bucket / rate * float64(time.Second))
}

// throttle delays the calling connection handler until the tenant's
// token bucket admits a batch of n events. The sleep is chunked so a
// closing server never waits out a long throttle, and it runs strictly
// after the batch was accepted — throttling delays the credit
// grant-back (the producer's next window), never the data already in
// flight.
func (s *Server) throttle(ts *tenantState, n int) {
	if ts == nil || n <= 0 {
		return
	}
	wait := ts.charge(n)
	if wait <= 0 {
		return
	}
	ts.throttled.Add(1)
	ts.waitNanos.Add(int64(wait))
	deadline := time.Now().Add(wait)
	for {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return
		}
		if remain > 100*time.Millisecond {
			remain = 100 * time.Millisecond
		}
		time.Sleep(remain)
	}
}

// tenantStats snapshots every known tenant, sorted by name.
func (s *Server) tenantStats() []TenantStats {
	s.tenMu.Lock()
	tens := make([]*tenantState, 0, len(s.tenants))
	for _, ts := range s.tenants {
		tens = append(tens, ts)
	}
	s.tenMu.Unlock()
	out := make([]TenantStats, 0, len(tens))
	for _, ts := range tens {
		ts.mu.Lock()
		st := TenantStats{
			Tenant:       ts.name,
			Conns:        ts.conns,
			CreditCarved: ts.carved,
		}
		ts.mu.Unlock()
		st.ConnsRejected = ts.rejected.Load()
		st.Events = ts.events.Load()
		st.ThrottledBatches = ts.throttled.Load()
		st.ThrottleWait = time.Duration(ts.waitNanos.Load())
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
