// Multi-tenant ingestion tests: the tenant handshake on the wire, the
// aggregate credit pool, token-bucket throttling, tenant-aware sink
// routing, and the NDJSON tenant hello / degraded status lines.
package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/harness"
)

// testAuth builds an authenticator from a token → TenantAuth table; a
// nil token (no-token connections) maps to the "" key.
func testAuth(table map[string]TenantAuth) func([]byte) (TenantAuth, error) {
	return func(token []byte) (TenantAuth, error) {
		auth, ok := table[string(token)]
		if !ok {
			return TenantAuth{}, fmt.Errorf("unknown token")
		}
		return auth, nil
	}
}

// tenantRecordSink records which tenant each batch was attributed to.
type tenantRecordSink struct {
	mu      sync.Mutex
	byTen   map[string]int
	batches int
}

func (s *tenantRecordSink) SubmitBatch(evs []event.Event) {
	s.SubmitTenantBatch("", evs)
}

func (s *tenantRecordSink) SubmitTenantBatch(tenant string, evs []event.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byTen == nil {
		s.byTen = make(map[string]int)
	}
	s.byTen[tenant] += len(evs)
	s.batches++
}

func (s *tenantRecordSink) counts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.byTen))
	for k, v := range s.byTen {
		out[k] = v
	}
	return out
}

func tenantOf(st ServerStats, name string) (TenantStats, bool) {
	for _, ts := range st.Tenants {
		if ts.Tenant == name {
			return ts, true
		}
	}
	return TenantStats{}, false
}

// TestTenantHandshake drives the version-2 preface end to end: the
// token resolves to a tenant, batches are attributed to it in the sink
// and the counters, and a plain version-1 connection on the same
// server runs as the anonymous tenant.
func TestTenantHandshake(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &tenantRecordSink{}
	srv := startServer(t, ServerConfig{
		Sink:   sink,
		Window: 256,
		Authenticate: testAuth(map[string]TenantAuth{
			"tok-alpha": {Tenant: "alpha"},
			"":          {Tenant: ""},
		}),
	})

	c, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 64, Token: "tok-alpha"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBatch(genEvents(500)); err != nil {
		t.Fatal(err)
	}
	if st, err := c.Close(); err != nil || st.Sent != 500 || st.Accepted != 500 {
		t.Fatalf("tenant client close: %+v, %v", st, err)
	}

	anon, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := anon.SubmitBatch(genEvents(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := anon.Close(); err != nil {
		t.Fatal(err)
	}

	counts := sink.counts()
	if counts["alpha"] != 500 || counts[""] != 100 {
		t.Fatalf("sink attribution %v, want alpha:500 \"\" :100", counts)
	}
	st := srv.Stats()
	alpha, ok := tenantOf(st, "alpha")
	if !ok || alpha.Events != 500 {
		t.Fatalf("tenant alpha stats %+v (found %v), want 500 events", alpha, ok)
	}
	if anonStats, ok := tenantOf(st, ""); !ok || anonStats.Events != 100 {
		t.Fatalf("anonymous tenant stats %+v (found %v), want 100 events", anonStats, ok)
	}
}

// TestTenantDurableHandshake runs a durable session over the tenant
// preface: hello carries session + token, the ledger drains, and a
// second connection of the same session dedups retransmits.
func TestTenantDurableHandshake(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{
		Sink:   sink,
		Window: 256,
		Authenticate: testAuth(map[string]TenantAuth{
			"tok-alpha": {Tenant: "alpha"},
		}),
	})
	c, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 32, Session: 7, Token: "tok-alpha"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBatch(genEvents(128)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 128 || st.Accepted != 128 {
		t.Fatalf("durable tenant ledger %+v, want Sent == Accepted == 128", st)
	}
	if got := len(sink.snapshot()); got != 128 {
		t.Fatalf("sink has %d events, want 128", got)
	}
}

// TestTenantWindowPool pins the aggregate credit cap: with a tenant
// pool of 1.5 connections' worth, the first connection carves a full
// window, the second the remainder, and the third is rejected.
func TestTenantWindowPool(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{
		Sink:   sink,
		Window: 64,
		Authenticate: testAuth(map[string]TenantAuth{
			"tok-alpha": {Tenant: "alpha", Quota: TenantQuota{Window: 96}},
		}),
	})

	dialTenant := func() (*rawConn, []byte, error) {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		r := newRawConn(conn)
		if err := r.write([]byte{Magic, ProtocolVersionTenant}); err != nil {
			t.Fatal(err)
		}
		hello := AppendFrame(nil, FrameHello, append([]byte{0}, "tok-alpha"...))
		if err := r.write(hello); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := r.next()
		if err != nil {
			return r, nil, err
		}
		if typ == FrameError {
			return r, nil, fmt.Errorf("server error: %s", payload)
		}
		if typ != FrameHelloAck {
			t.Fatalf("frame 0x%02x, want hello ack", typ)
		}
		grant, err := r.expect(FrameCredit)
		if err != nil {
			return r, nil, err
		}
		return r, grant, nil
	}
	grantOf := func(p []byte) uint64 {
		n, _ := binary.Uvarint(p)
		return n
	}

	_, g1, err := dialTenant()
	if err != nil {
		t.Fatal(err)
	}
	if grantOf(g1) != 64 {
		t.Fatalf("first carve %d, want the full per-connection window 64", grantOf(g1))
	}
	_, g2, err := dialTenant()
	if err != nil {
		t.Fatal(err)
	}
	if grantOf(g2) != 32 {
		t.Fatalf("second carve %d, want the pool remainder 32", grantOf(g2))
	}
	if _, _, err := dialTenant(); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("third connection error %v, want aggregate-window rejection", err)
	}
	st := srv.Stats()
	alpha, _ := tenantOf(st, "alpha")
	if alpha.ConnsRejected != 1 || alpha.CreditCarved != 96 {
		t.Fatalf("tenant stats %+v, want 1 rejection and 96 carved", alpha)
	}
}

// TestTenantRateLimit drives a tenant well past its sustained rate and
// checks the token bucket throttles credit grant-backs: every event is
// still accepted (the wire is lossless), but the tenant accumulates
// throttle wait and the elapsed time reflects the rate.
func TestTenantRateLimit(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{
		Sink:   sink,
		Window: 256,
		Authenticate: testAuth(map[string]TenantAuth{
			"tok-slow": {Tenant: "slow", Quota: TenantQuota{Rate: 4000, Burst: 200}},
		}),
	})
	c, err := Dial(ClientConfig{Addr: srv.Addr().String(), BatchEvents: 100, Token: "tok-slow"})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.SubmitBatch(genEvents(1200)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if st.Sent != 1200 || st.Accepted != 1200 {
		t.Fatalf("rate-limited stream lost events: %+v", st)
	}
	// 1200 events at 4000/s with a 200-event burst needs ≥ ~200ms of
	// throttling; leave slack for scheduler noise but require some.
	if elapsed < 100*time.Millisecond {
		t.Fatalf("1200 events at rate 4000 finished in %v; bucket did not throttle", elapsed)
	}
	slow, _ := tenantOf(srv.Stats(), "slow")
	if slow.ThrottledBatches == 0 || slow.ThrottleWait == 0 {
		t.Fatalf("tenant stats %+v, want throttled batches and wait > 0", slow)
	}
	if slow.Events != 1200 {
		t.Fatalf("tenant accepted %d events, want 1200", slow.Events)
	}
}

// TestTenantAuthFailure rejects a bad token with FrameError before any
// credit is granted, and counts it.
func TestTenantAuthFailure(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{
		Sink:         sink,
		Window:       64,
		Authenticate: testAuth(map[string]TenantAuth{"tok-good": {Tenant: "good"}}),
	})
	_, err := Dial(ClientConfig{Addr: srv.Addr().String(), Token: "tok-bad"})
	if err == nil || !strings.Contains(err.Error(), "authentication failed") {
		t.Fatalf("dial with bad token: %v, want authentication failure", err)
	}
	if st := srv.Stats(); st.AuthFailures != 1 {
		t.Fatalf("AuthFailures = %d, want 1", st.AuthFailures)
	}
}

// TestTenantHelloFirst enforces the version-2 opening rule: any frame
// before the hello is a protocol error.
func TestTenantHelloFirst(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	srv := startServer(t, ServerConfig{
		Sink:         sink,
		Window:       64,
		Authenticate: testAuth(map[string]TenantAuth{"tok": {Tenant: "x"}}),
	})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := newRawConn(conn)
	if err := r.write([]byte{Magic, ProtocolVersionTenant}); err != nil {
		t.Fatal(err)
	}
	if err := r.write(AppendFrame(nil, FrameStatsReq, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.expect(FrameError); err != nil {
		t.Fatalf("stats before hello: %v, want FrameError", err)
	}
}

// TestNDJSONTenantHello sends the {"token":...} first line and checks
// the ok status line, tenant attribution and rate accounting.
func TestNDJSONTenantHello(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &tenantRecordSink{}
	srv := startServer(t, ServerConfig{
		Sink:   sink,
		Window: 64,
		Authenticate: testAuth(map[string]TenantAuth{
			"tok-alpha": {Tenant: "alpha"},
			"":          {Tenant: ""},
		}),
	})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, "{\"token\":\"tok-alpha\"}\n")
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Status string `json:"status"`
		Tenant string `json:"tenant"`
	}
	if err := json.Unmarshal([]byte(line), &status); err != nil {
		t.Fatalf("status line %q: %v", line, err)
	}
	if status.Status != "ok" || status.Tenant != "alpha" {
		t.Fatalf("status line %q, want ok/alpha", line)
	}
	for i := 0; i < 10; i++ {
		fmt.Fprintf(conn, "{\"seq\":%d,\"type\":1,\"ts\":%d,\"kind\":0}\n", i+1, (i+1)*1000)
	}
	conn.(*net.TCPConn).CloseWrite()
	// Drain until EOF so the server has flushed everything.
	for {
		if _, err := br.ReadString('\n'); err != nil {
			break
		}
	}
	if counts := sink.counts(); counts["alpha"] != 10 {
		t.Fatalf("ndjson tenant attribution %v, want alpha:10", counts)
	}
	alpha, _ := tenantOf(srv.Stats(), "alpha")
	if alpha.Events != 10 {
		t.Fatalf("tenant alpha events %d, want 10", alpha.Events)
	}
}

// ndjsonFlakyJournal mirrors harden_test's flakyJournal for the NDJSON
// degraded-status-line test.
type ndjsonFlakyJournal struct {
	mu       sync.Mutex
	degraded bool
	seq      uint64
}

func (j *ndjsonFlakyJournal) setDegraded(v bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.degraded = v
}

func (j *ndjsonFlakyJournal) Append(session, batchSeq uint64, count int, maxTS event.Time, payload []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded {
		return 0, ErrJournalDegraded
	}
	j.seq++
	return j.seq, nil
}

func (j *ndjsonFlakyJournal) Commit(seq uint64) error { return nil }

// TestNDJSONDegradedStatusLines regresses the silent-lossy hole: a
// plain-text producer must learn about a DegradeLossy episode. The
// server emits {"status":"degraded"} when the journal degrades and
// {"status":"durable"} when it restores — the NDJSON equivalent of the
// binary FlagDegraded acks.
func TestNDJSONDegradedStatusLines(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &collectSink{}
	journal := &ndjsonFlakyJournal{}
	srv := startServer(t, ServerConfig{Sink: sink, Journal: journal, Window: 64})

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	statusCh := make(chan string, 16)
	go func() {
		defer close(statusCh)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			var st struct {
				Status string `json:"status"`
			}
			if json.Unmarshal([]byte(line), &st) == nil && st.Status != "" {
				statusCh <- st.Status
			}
		}
	}()
	sendOne := func(seq int) {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "{\"seq\":%d,\"type\":1,\"ts\":%d,\"kind\":0}\n", seq, seq*1000); err != nil {
			t.Fatal(err)
		}
	}
	waitStatus := func(want string) {
		t.Helper()
		select {
		case got, ok := <-statusCh:
			if !ok || got != want {
				t.Fatalf("status line %q (open %v), want %q", got, ok, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no %q status line within 5s", want)
		}
	}
	waitEvents := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for len(sink.snapshot()) < want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := len(sink.snapshot()); got < want {
			t.Fatalf("sink has %d events, want >= %d", got, want)
		}
	}

	sendOne(1) // healthy: no status line expected
	waitEvents(1)
	journal.setDegraded(true)
	sendOne(2)
	waitStatus("degraded")
	sendOne(3) // still degraded: no repeat line
	waitEvents(3)
	journal.setDegraded(false)
	sendOne(4)
	waitStatus("durable")

	conn.(*net.TCPConn).CloseWrite()
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.snapshot()) < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Degrade-to-lossy still accepts: all four events arrive.
	if got := len(sink.snapshot()); got != 4 {
		t.Fatalf("sink has %d events, want 4", got)
	}
	if st := srv.Stats(); st.LostDurability != 2 {
		t.Fatalf("LostDurability = %d, want 2 (events 2 and 3)", st.LostDurability)
	}
	select {
	case got, ok := <-statusCh:
		if ok {
			t.Fatalf("unexpected extra status line %q", got)
		}
	case <-time.After(time.Second):
	}
}
