package transport

import (
	"context"
	"fmt"
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/queries"
	"repro/internal/runtime"
	"repro/internal/window"
)

// TestSoakOverloadedShardedServer drives at least a million events over
// eight connections through an overloaded 4-shard server with an eSPICE
// shedder and pins three properties of the whole networked path:
//
//  1. Bounded heap: steady-state ingestion allocates per frame, not per
//     event, so the post-GC heap does not grow with the stream.
//  2. Conservation: every event the transport accepted reaches the
//     pipeline, and every membership is either kept or accounted to the
//     shedder — drops happen in the shedder, never in the transport.
//  3. Clean drain: after the clients finish, server close + input close
//     leaves no goroutine behind (VerifyNoLeaks) and loses no output.
//
// Skipped in -short mode; under the race detector the event budget is
// scaled down to keep CI latency sane (the full budget runs in the
// uninstrumented tier-1 suite).
func TestSoakOverloadedShardedServer(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	harness.VerifyNoLeaks(t)

	totalEvents := 1 << 20 // >= 1M canonical budget
	if raceEnabled {
		totalEvents = 1 << 17
	}
	const conns = 8
	const shards = 4

	// Base stream and a count-window variant of Q1: count windows keep
	// the window population independent of the cross-connection arrival
	// interleaving (eight clients replay tiles concurrently, so global
	// timestamp order is not preserved — exactly the situation a real
	// multi-producer ingest faces).
	meta, base, err := datasets.GenerateRTLS(datasets.RTLSConfig{DurationSec: 240, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q, err := queries.Q1(meta, 3, pattern.SelectFirst, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Keep Q1's possession-opened windows but bound them by count: the
	// window population then does not depend on global timestamp order,
	// which the eight interleaved connections cannot preserve.
	q.Window = window.Spec{Mode: window.ModeCount, Count: 128, Open: q.Window.Open}
	tr, err := harness.Train(q, base, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Model.Trained() {
		t.Fatalf("training produced an untrained model (%d windows, %d matches)", tr.Windows, tr.Matches)
	}

	shedder, err := core.NewShedder(tr.Model)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewOverloadDetector(core.DetectorConfig{
		LatencyBound: 20 * event.Millisecond,
		F:            0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := runtime.New(runtime.Config{
		Operator: operator.Config{
			Window:   q.Window,
			Patterns: q.Patterns,
			Shedder:  shedder,
		},
		Detector:           det,
		Controller:         harness.ESPICEController{S: shedder},
		PollInterval:       2 * time.Millisecond,
		ProcessingDelay:    100 * time.Microsecond,
		QueueCap:           1 << 14,
		LatencySampleEvery: 1024,
		Shards:             shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- pipe.Run(context.Background()) }()
	var complexEvents uint64
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for range pipe.Out() {
			complexEvents++
		}
	}()
	srv := startServer(t, ServerConfig{Sink: pipe, Registry: meta.Registry, Window: 4096})

	// Heap baseline once the machinery is up.
	heapStart := heapInUse()

	// Pace the offered load at ~250k events/s in total: the 100µs
	// per-kept-membership cost bounds the unshed capacity well below
	// that (time.Sleep never undershoots), so the server is genuinely
	// overloaded the whole run and the shedder — not the transport —
	// must absorb the excess.
	perConn := totalEvents / conns
	const perConnRate = 31250
	stats := make([]ClientStats, conns)
	errs := make([]error, conns)
	var wg sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			errs[ci] = driveConn(srv.Addr().String(), base, ci, perConn, perConnRate, &stats[ci])
		}(ci)
	}
	wg.Wait()
	for ci, err := range errs {
		if err != nil {
			t.Fatalf("conn %d: %v", ci, err)
		}
	}

	// Clean drain: transport first, then the stream, then the output.
	srv.Close()
	pipe.CloseInput()
	if err := <-runDone; err != nil {
		t.Fatalf("pipeline run: %v", err)
	}
	<-collected

	// Conservation between the transport ledger and the pipeline.
	var accepted uint64
	for _, st := range stats {
		accepted += st.Accepted
	}
	if accepted != uint64(totalEvents) {
		t.Errorf("transport accepted %d of %d events", accepted, totalEvents)
	}
	st := pipe.Stats()
	if st.Submitted != accepted || st.Processed != accepted {
		t.Errorf("pipeline submitted=%d processed=%d, transport accepted=%d",
			st.Submitted, st.Processed, accepted)
	}
	op := st.Operator
	if op.Memberships != op.MembershipsKept+op.MembershipsShed {
		t.Errorf("membership accounting leaks: %d != %d kept + %d shed",
			op.Memberships, op.MembershipsKept, op.MembershipsShed)
	}
	if op.MembershipsShed == 0 {
		t.Error("server never overloaded: no memberships shed")
	}
	if complexEvents == 0 {
		t.Error("no complex events survived shedding")
	}
	t.Logf("soak: %d events, %d memberships (%d kept, %d shed = %.1f%%), %d complex events",
		accepted, op.Memberships, op.MembershipsKept, op.MembershipsShed,
		100*float64(op.MembershipsShed)/float64(op.Memberships), complexEvents)

	// Bounded heap: post-GC growth across the whole soak must not scale
	// with the stream (a 16-byte-per-event leak alone would exceed the
	// bound at the full budget).
	growth := int64(heapInUse()) - int64(heapStart)
	bound := int64(12 << 20)
	if raceEnabled {
		bound = 48 << 20 // instrumentation shadow memory is not our heap
	}
	if growth > bound {
		t.Errorf("heap grew %d MiB over the soak, bound %d MiB", growth>>20, bound>>20)
	}
}

// driveConn replays total events of tiled base stream over one
// connection at the target rate (events/s), rewriting sequence numbers
// so every event of the soak is unique, and batching through the
// credit-aware client.
func driveConn(addr string, base []event.Event, ci, total, rate int, out *ClientStats) error {
	c, err := Dial(ClientConfig{Addr: addr, BatchEvents: 512})
	if err != nil {
		return err
	}
	batch := make([]event.Event, 0, 256)
	sent := 0
	seq := uint64(ci) << 40 // disjoint per-connection sequence ranges
	start := time.Now()
	for sent < total {
		for _, ev := range base {
			if sent == total {
				break
			}
			ev.Seq = seq
			seq++
			batch = append(batch, ev)
			sent++
			if len(batch) == cap(batch) {
				if d := time.Until(start.Add(time.Duration(sent) * time.Second / time.Duration(rate))); d > 0 {
					time.Sleep(d)
				}
				if err := c.SubmitBatch(batch); err != nil {
					return err
				}
				if err := c.Flush(); err != nil {
					return err
				}
				batch = batch[:0]
			}
		}
	}
	if err := c.SubmitBatch(batch); err != nil {
		return err
	}
	st, err := c.Close()
	if err != nil {
		return err
	}
	if st.Sent != uint64(total) {
		return fmt.Errorf("sent %d of %d", st.Sent, total)
	}
	*out = st
	return nil
}

// heapInUse returns the post-GC live heap.
func heapInUse() uint64 {
	goruntime.GC()
	var ms goruntime.MemStats
	goruntime.ReadMemStats(&ms)
	return ms.HeapInuse
}
