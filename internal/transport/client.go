package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"repro/internal/event"
)

// ClientConfig assembles an ingest client.
type ClientConfig struct {
	// Addr is the server address (required), e.g. "127.0.0.1:7071".
	Addr string
	// BatchEvents is the flush threshold: Submit buffers events and
	// flushes a FrameEvents once this many are pending (or on an
	// explicit Flush/Close). Default DefaultBatchEvents.
	BatchEvents int
	// DialTimeout bounds each dial attempt (default 5s).
	DialTimeout time.Duration
	// Reconnect enables transparent redialing: when a write or read
	// fails mid-stream, the client redials (with exponential backoff up
	// to MaxRedials attempts) and keeps going. Events already written to
	// the broken connection may be lost — the transport is at-most-once
	// across reconnects; ClientStats reports both sides of the ledger.
	Reconnect bool
	// MaxRedials bounds consecutive failed dial attempts before the
	// client gives up with ErrRedialsExhausted (default 5; only
	// meaningful with Reconnect).
	MaxRedials int
	// MaxBackoff caps the exponential redial backoff (default 2s). The
	// actual sleep is jittered uniformly over [backoff/2, backoff] so a
	// fleet of producers disconnected by one server restart does not
	// redial in lockstep.
	MaxBackoff time.Duration
	// Session, when non-zero, opens a durable session: every flushed
	// batch carries a monotonic batch sequence and stays in a client
	// ledger until the server acknowledges it as journaled; on every
	// (re)connect the client retransmits the unacknowledged tail, and
	// the server's per-session dedup makes the retransmits
	// effectively-once (see docs/wire.md, delivery semantics). The id
	// must be unique per logical producer stream — reusing one against
	// a server that already applied batches under it would dedup-drop
	// the new stream's prefix. Durable mode usually pairs with
	// Reconnect.
	Session uint64
	// Token, when non-empty, presents a tenant token: the client speaks
	// the ProtocolVersionTenant preface and opens every connection with
	// a FrameHello carrying Session (zero for plain connections) and
	// the token, receiving its credit window — carved from the tenant's
	// aggregate pool — only after the server authenticated it. Empty
	// keeps the version-1 wire behavior (anonymous tenant).
	Token string
	// Logf logs reconnect events (nil silences them).
	Logf func(format string, args ...any)
}

// DefaultBatchEvents is the client's flush threshold.
const DefaultBatchEvents = 256

// ErrRedialsExhausted reports that the client burned through its
// MaxRedials reconnect attempts without reaching the server. Check for
// it with errors.Is; the wrapped chain carries the last dial error.
var ErrRedialsExhausted = errors.New("transport: redials exhausted")

// ClientStats counts the client's view of the stream.
type ClientStats struct {
	// Sent counts unique events handed to the wire (retransmits of the
	// same batch are not re-counted). Accepted is the other side of the
	// ledger: without a session it is the server's count from the final
	// FrameDone — the whole stream when no redial happened, otherwise
	// only the final connection's share (frames in flight across a
	// reconnect are lost; plain transport is at-most-once). On a
	// durable session it counts events in server-acknowledged batches,
	// and Close returning nil implies Sent == Accepted.
	Sent     uint64
	Accepted uint64
	// Flushes counts event frames written; Redials counts successful
	// reconnections; Retransmits counts batches re-sent after a
	// reconnect on a durable session.
	Flushes     uint64
	Redials     uint64
	Retransmits uint64
	// DegradedAcks counts server acks carrying FlagDegraded: batches
	// the server accepted explicitly WITHOUT durability (its journal
	// degraded to lossy). See Client.Degraded for the live bit.
	DegradedAcks uint64
	// CreditWait is the cumulative time spent blocked waiting for the
	// server to replenish the credit window — the client-visible shape
	// of server-side backpressure.
	CreditWait time.Duration
}

// Client is a batching, credit-aware binary-mode producer. It is
// single-goroutine by design: credit frames are read exactly when the
// window is exhausted, so no background reader is needed. A Client is
// not safe for concurrent use.
type Client struct {
	cfg     ClientConfig
	conn    net.Conn
	scan    *frameScanner
	enc     Encoder
	pending []event.Event
	payload []byte // encoded-events scratch, sized before framing
	frame   []byte
	read    []byte

	credit   uint64
	window   uint64 // server's credit window, learned from the initial grant
	stats    ClientStats
	closed   bool
	degraded bool // last ack carried FlagDegraded

	// Durable-session ledger: flushed-but-unacknowledged batches, kept
	// as their encoded FrameEventsSeq payloads so a retransmit is a
	// verbatim byte replay.
	outstanding []outBatch
	nextBatch   uint64 // last batch sequence assigned
	ackedBatch  uint64 // highest server-acknowledged batch sequence
}

// outBatch is one ledger entry of a durable session.
type outBatch struct {
	seq   uint64
	count int
	frame []byte // FrameEventsSeq payload: uvarint seq ‖ encoded events
}

// Dial connects to a server and performs the binary preface. The
// initial credit window arrives with the server's first frame.
func Dial(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("transport: ClientConfig.Addr is required")
	}
	if cfg.BatchEvents <= 0 {
		cfg.BatchEvents = DefaultBatchEvents
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.MaxRedials <= 0 {
		cfg.MaxRedials = 5
	}
	c := &Client{
		cfg:  cfg,
		scan: newFrameScanner(DefaultMaxFrame),
		read: make([]byte, 32<<10),
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect dials, writes the preface and waits for the initial credit.
// With a tenant token the preface is ProtocolVersionTenant and the
// hello — session id (possibly zero) plus token — goes out before any
// credit exists; the server grants the carved window only after
// authenticating it. Without a token the version-1 flow is unchanged:
// credit arrives immediately, then a durable session sends its hello.
func (c *Client) connect() error {
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	version := ProtocolVersion
	if c.cfg.Token != "" {
		version = ProtocolVersionTenant
	}
	if _, err := conn.Write([]byte{Magic, version}); err != nil {
		conn.Close()
		return err
	}
	c.conn = conn
	c.credit = 0
	c.scan = newFrameScanner(DefaultMaxFrame)
	fail := func(err error) error {
		conn.Close()
		c.conn = nil
		return err
	}
	if version == ProtocolVersionTenant {
		if err := c.sendHello(); err != nil {
			return fail(err)
		}
		if err := c.awaitHelloAck(); err != nil {
			return fail(err)
		}
		if err := c.waitCredit(1); err != nil {
			return fail(err)
		}
		c.window = c.credit
		if c.cfg.Session != 0 {
			if err := c.retransmitLedger(); err != nil {
				return fail(err)
			}
		}
		return nil
	}
	// The server grants the full window immediately after the preface;
	// remember it so flush chunks never exceed what a single window can
	// cover (a larger frame would be a credit violation by protocol).
	if err := c.waitCredit(1); err != nil {
		return fail(err)
	}
	c.window = c.credit
	if c.cfg.Session != 0 {
		if err := c.helloResync(); err != nil {
			return fail(err)
		}
	}
	return nil
}

// sendHello writes the FrameHello opening this connection: the session
// id (zero on plain tenant connections) followed by the tenant token.
func (c *Client) sendHello() error {
	var tmp [binary.MaxVarintLen64]byte
	payload := append(tmp[:binary.PutUvarint(tmp[:], c.cfg.Session)], c.cfg.Token...)
	c.frame = AppendFrame(c.frame[:0], FrameHello, payload)
	_, err := c.conn.Write(c.frame)
	return err
}

// awaitHelloAck reads until the server's FrameHelloAck, applying the
// acknowledged watermark to the ledger and any trailing flags.
func (c *Client) awaitHelloAck() error {
	for {
		typ, payload, err := c.readFrame()
		if err != nil {
			return err
		}
		switch typ {
		case FrameHelloAck:
			applied, k := binary.Uvarint(payload)
			if k <= 0 {
				return fmt.Errorf("transport: malformed hello ack")
			}
			if c.cfg.Session != 0 {
				c.ackThrough(applied)
			}
			c.applyFlags(payload[k:])
			return nil
		case FrameCredit:
			if err := c.handleCredit(payload); err != nil {
				return err
			}
		case FrameError:
			return fmt.Errorf("transport: server error: %s", payload)
		default:
			return fmt.Errorf("transport: unexpected frame 0x%02x while awaiting hello ack", typ)
		}
	}
}

// helloResync opens the durable session on a fresh version-1
// connection: send FrameHello, learn the server's applied watermark
// from FrameHelloAck (dropping the ledger prefix it acknowledges), and
// retransmit every still-unacknowledged batch in order. Runs as part
// of connect, so any failure surfaces as a failed (re)dial attempt.
func (c *Client) helloResync() error {
	if err := c.sendHello(); err != nil {
		return err
	}
	if err := c.awaitHelloAck(); err != nil {
		return err
	}
	return c.retransmitLedger()
}

// retransmitLedger re-sends every still-unacknowledged durable batch
// in order on a freshly opened connection.
func (c *Client) retransmitLedger() error {
	// Iterate a snapshot, not the live ledger: when the unacked tail
	// exceeds the credit window, waitCredit reads credit frames mid-loop
	// whose piggybacked watermarks make ackThrough compact c.outstanding
	// in place — indexing the live slice would then skip a batch (and the
	// server rejects out-of-order retransmits). Entries the server acks
	// while we wait are skipped; resending one would be harmless (the
	// dedup watermark absorbs it) but wastes window.
	pending := append([]outBatch(nil), c.outstanding...)
	for i := range pending {
		b := &pending[i]
		if b.seq <= c.ackedBatch {
			continue
		}
		if err := c.waitCredit(uint64(b.count)); err != nil {
			return err
		}
		if b.seq <= c.ackedBatch {
			continue // acked by a credit frame read while waiting
		}
		c.frame = AppendFrame(c.frame[:0], FrameEventsSeq, b.frame)
		if _, err := c.conn.Write(c.frame); err != nil {
			return err
		}
		c.credit -= uint64(b.count)
		c.stats.Retransmits++
	}
	return nil
}

// ackThrough drops every ledger entry the server has acknowledged as
// applied, crediting its events to the Accepted side of the ledger.
// The watermark is compared against the ledger even when it did not
// advance, so a batch the server deduplicated (already at or below the
// watermark, e.g. after a stale-session reuse) still drains.
func (c *Client) ackThrough(applied uint64) {
	if applied > c.ackedBatch {
		c.ackedBatch = applied
	}
	i := 0
	for i < len(c.outstanding) && c.outstanding[i].seq <= c.ackedBatch {
		c.stats.Accepted += uint64(c.outstanding[i].count)
		i++
	}
	if i > 0 {
		c.outstanding = append(c.outstanding[:0], c.outstanding[i:]...)
	}
}

// handleCredit applies one FrameCredit payload: the grant, plus — on
// durable sessions — the piggybacked applied watermark, plus the
// optional trailing flags uvarint (present only while a flag is set).
func (c *Client) handleCredit(payload []byte) error {
	n, k := binary.Uvarint(payload)
	if k <= 0 {
		return fmt.Errorf("transport: malformed credit frame")
	}
	c.credit += n
	rest := payload[k:]
	if c.cfg.Session != 0 && len(rest) > 0 {
		applied, k2 := binary.Uvarint(rest)
		if k2 <= 0 {
			return fmt.Errorf("transport: malformed credit frame")
		}
		c.ackThrough(applied)
		rest = rest[k2:]
	}
	c.applyFlags(rest)
	return nil
}

// applyFlags decodes the optional trailing flags uvarint of a credit or
// hello-ack payload. The server appends it only while degraded, so an
// absent flags field clears the client's degraded view — that is how
// the client observes the server's restore without any extra frame.
func (c *Client) applyFlags(rest []byte) {
	var flags uint64
	if len(rest) > 0 {
		if f, k := binary.Uvarint(rest); k > 0 {
			flags = f
		}
	}
	degraded := flags&FlagDegraded != 0
	if degraded {
		c.stats.DegradedAcks++
	}
	if degraded != c.degraded {
		c.degraded = degraded
		if c.cfg.Logf != nil {
			if degraded {
				c.cfg.Logf("transport: server journal degraded; acks are at-most-once")
			} else {
				c.cfg.Logf("transport: server journal restored")
			}
		}
	}
}

// Degraded reports the server's journal state as of the last ack: true
// means batches are currently being accepted without durability
// (at-most-once) — see FlagDegraded.
func (c *Client) Degraded() bool { return c.degraded }

// redial replaces a broken connection, with jittered exponential
// backoff across consecutive dial failures. In-flight frames of the old
// connection are considered lost.
func (c *Client) redial() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	if !c.cfg.Reconnect {
		return fmt.Errorf("transport: connection lost (reconnect disabled)")
	}
	maxBackoff := c.cfg.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 2 * time.Second
	}
	backoff := 50 * time.Millisecond
	if backoff > maxBackoff {
		backoff = maxBackoff
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxRedials; attempt++ {
		if attempt > 0 {
			// Jitter over [backoff/2, backoff]: after a mass disconnect
			// (server restart), producers spread their retries instead
			// of thundering back in lockstep.
			d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
			time.Sleep(d)
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		if err := c.connect(); err != nil {
			lastErr = err
			if c.cfg.Logf != nil {
				c.cfg.Logf("transport: redial %d/%d: %v", attempt+1, c.cfg.MaxRedials, err)
			}
			continue
		}
		c.stats.Redials++
		return nil
	}
	return fmt.Errorf("transport: %w after %d attempts: %v", ErrRedialsExhausted, c.cfg.MaxRedials, lastErr)
}

// waitCredit blocks until at least need events of credit are available,
// consuming server frames. Unexpected frames are a protocol error.
func (c *Client) waitCredit(need uint64) error {
	waited := false
	start := time.Now()
	defer func() {
		if waited {
			c.stats.CreditWait += time.Since(start)
		}
	}()
	for c.credit < need {
		waited = true
		typ, payload, err := c.readFrame()
		if err != nil {
			return err
		}
		switch typ {
		case FrameCredit:
			if err := c.handleCredit(payload); err != nil {
				return err
			}
		case FrameError:
			return fmt.Errorf("transport: server error: %s", payload)
		default:
			return fmt.Errorf("transport: unexpected frame 0x%02x while awaiting credit", typ)
		}
	}
	return nil
}

// ensureConn reports a usable connection; after a failed redial (or a
// drop with Reconnect disabled) the client is connectionless and every
// wire operation degrades to this error instead of a nil dereference.
func (c *Client) ensureConn() error {
	if c.conn == nil {
		return fmt.Errorf("transport: connection lost")
	}
	return nil
}

// readFrame pops the next server frame, reading from the connection as
// needed. The returned payload aliases the scanner buffer.
func (c *Client) readFrame() (byte, []byte, error) {
	if err := c.ensureConn(); err != nil {
		return 0, nil, err
	}
	for {
		typ, payload, ok, err := c.scan.Next()
		if err != nil {
			return 0, nil, err
		}
		if ok {
			return typ, payload, nil
		}
		n, err := c.conn.Read(c.read)
		if n > 0 {
			c.scan.Feed(c.read[:n])
			continue
		}
		if err != nil {
			return 0, nil, err
		}
	}
}

// Submit buffers one event, flushing when the batch threshold is
// reached. The event (and its Vals) is copied immediately, so the
// caller may reuse its buffers.
func (c *Client) Submit(ev event.Event) error {
	return c.SubmitBatch([]event.Event{ev})
}

// SubmitBatch buffers a batch of events in stream order, flushing as
// the batch threshold is crossed. The event structs are copied, but
// their Vals backing arrays are referenced (not copied) until the
// events are flushed; Events treat Vals as immutable throughout the
// repository, so this is only a constraint for callers that recycle
// value buffers — Flush before reusing them.
func (c *Client) SubmitBatch(events []event.Event) error {
	if c.closed {
		return fmt.Errorf("transport: client closed")
	}
	for _, ev := range events {
		c.pending = append(c.pending, ev)
		if len(c.pending) >= c.cfg.BatchEvents {
			if err := c.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush writes the pending events, waiting for window credit as
// needed; the credit protocol keeps at most one server window of events
// in flight, so a flush against an overloaded server blocks — that is
// the backpressure reaching the producer.
func (c *Client) Flush() error {
	if c.closed {
		return fmt.Errorf("transport: client closed")
	}
	chunkMax := c.cfg.BatchEvents
	if c.window > 0 && uint64(chunkMax) > c.window {
		chunkMax = int(c.window)
	}
	off := 0
	for off < len(c.pending) {
		n := len(c.pending) - off
		if n > chunkMax {
			n = chunkMax
		}
		sent, err := c.writeChunk(c.pending[off : off+n])
		off += sent
		if err != nil {
			// Keep only the unsent tail pending — a byte-split chunk may
			// have delivered a prefix before failing, and resending that
			// prefix would duplicate events (delivery is at-most-once).
			c.pending = c.pending[:copy(c.pending, c.pending[off:])]
			return err
		}
	}
	c.pending = c.pending[:0]
	return nil
}

// maxChunkPayload bounds the encoded payload of one FrameEvents the
// client will emit; kept below the server's DefaultMaxFrame with slack
// for the frame header, so a batch of large-Vals events is split by
// bytes rather than rejected as an oversized frame.
const maxChunkPayload = DefaultMaxFrame - 64

// writeChunk sends the chunk as FrameEvents, splitting by encoded size
// when the events are too large to fit a single frame, and redialing on
// connection failure when enabled. It reports how many of the chunk's
// events were written, so a partial split failure never gets the
// already-sent prefix resent (delivery stays at-most-once).
func (c *Client) writeChunk(chunk []event.Event) (int, error) {
	payload := c.enc.AppendEvents(c.payload[:0], chunk)
	c.payload = payload
	if len(payload) > maxChunkPayload {
		if len(chunk) == 1 {
			return 0, fmt.Errorf("transport: event %d encodes to %d bytes, exceeding the %d-byte frame bound",
				chunk[0].Seq, len(payload), maxChunkPayload)
		}
		half := len(chunk) / 2
		sent, err := c.writeChunk(chunk[:half])
		if err != nil {
			return sent, err
		}
		more, err := c.writeChunk(chunk[half:])
		return sent + more, err
	}
	if c.cfg.Session != 0 {
		return c.writeDurable(chunk, payload)
	}
	for {
		// Stale credit left over from a dead connection must not bypass
		// waitCredit into a nil-conn write: redial (or fail) first.
		if c.conn == nil {
			if rerr := c.redial(); rerr != nil {
				return 0, rerr
			}
		}
		if err := c.waitCredit(uint64(len(chunk))); err != nil {
			if isConnErr(err) {
				if rerr := c.redial(); rerr != nil {
					return 0, rerr
				}
				continue
			}
			return 0, err
		}
		c.frame = AppendFrame(c.frame[:0], FrameEvents, payload)
		if _, err := c.conn.Write(c.frame); err != nil {
			if rerr := c.redial(); rerr != nil {
				return 0, rerr
			}
			continue
		}
		c.credit -= uint64(len(chunk))
		c.stats.Sent += uint64(len(chunk))
		c.stats.Flushes++
		return len(chunk), nil
	}
}

// writeDurable sends one chunk as a sequenced FrameEventsSeq batch.
// The batch enters the ledger before the first write attempt, so a
// connection failure at any point cannot lose it: the redial's
// helloResync retransmits every ledger entry, and the server's dedup
// watermark absorbs any copy that did arrive. The chunk counts into
// Sent exactly once, here.
func (c *Client) writeDurable(chunk []event.Event, payload []byte) (int, error) {
	c.nextBatch++
	var tmp [binary.MaxVarintLen64]byte
	fp := make([]byte, 0, binary.MaxVarintLen64+len(payload))
	fp = append(fp, tmp[:binary.PutUvarint(tmp[:], c.nextBatch)]...)
	fp = append(fp, payload...)
	b := outBatch{seq: c.nextBatch, count: len(chunk), frame: fp}
	c.outstanding = append(c.outstanding, b)
	c.stats.Sent += uint64(len(chunk))
	c.stats.Flushes++
	if c.conn == nil {
		// The batch is in the ledger; a successful redial's resync
		// retransmits it, and stale credit must not reach a nil conn.
		return len(chunk), c.redial()
	}
	if err := c.waitCredit(uint64(b.count)); err != nil {
		if isConnErr(err) {
			// A successful redial already retransmitted the ledger,
			// this batch included.
			return len(chunk), c.redial()
		}
		return len(chunk), err
	}
	c.frame = AppendFrame(c.frame[:0], FrameEventsSeq, b.frame)
	if _, err := c.conn.Write(c.frame); err != nil {
		return len(chunk), c.redial()
	}
	c.credit -= uint64(b.count)
	return len(chunk), nil
}

// isConnErr reports whether err is a connection-level failure (as
// opposed to a protocol error that redialing cannot fix).
func isConnErr(err error) bool {
	var ne net.Error
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.As(err, &ne)
}

// ServerStats flushes pending events, then requests the server's
// statistics document (the ServerConfig.StatsJSON hook; empty when the
// server exposes none).
func (c *Client) ServerStats() ([]byte, error) {
	if err := c.Flush(); err != nil {
		return nil, err
	}
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	if _, err := c.conn.Write(AppendFrame(nil, FrameStatsReq, nil)); err != nil {
		return nil, err
	}
	for {
		typ, payload, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		switch typ {
		case FrameStats:
			return append([]byte(nil), payload...), nil
		case FrameCredit:
			if err := c.handleCredit(payload); err != nil {
				return nil, err
			}
		case FrameError:
			return nil, fmt.Errorf("transport: server error: %s", payload)
		default:
			return nil, fmt.Errorf("transport: unexpected frame 0x%02x while awaiting stats", typ)
		}
	}
}

// Close flushes pending events, signals end of stream and waits for
// the server's FrameDone — so when Close returns without error, every
// accepted event has been submitted to the server's sink. On a durable
// session it first drains the ledger: Close does not return nil until
// every sent batch has been acknowledged as journaled (redialing and
// retransmitting as needed), so a nil error implies Sent == Accepted.
// It returns the final statistics.
func (c *Client) Close() (ClientStats, error) {
	if c.closed {
		return c.stats, nil
	}
	defer func() {
		c.closed = true
		if c.conn != nil {
			c.conn.Close()
		}
	}()
	if err := c.Flush(); err != nil {
		return c.stats, err
	}
	if c.cfg.Session != 0 {
		if err := c.drainAcks(); err != nil {
			return c.stats, err
		}
	}
	for {
		if err := c.ensureConn(); err != nil {
			return c.stats, err
		}
		if _, err := c.conn.Write(AppendFrame(nil, FrameEOF, nil)); err != nil {
			if c.cfg.Session != 0 && isConnErr(err) {
				if rerr := c.redial(); rerr != nil {
					return c.stats, rerr
				}
				continue
			}
			return c.stats, err
		}
		done, err := c.awaitDone()
		if err != nil {
			if c.cfg.Session != 0 && isConnErr(err) {
				if rerr := c.redial(); rerr != nil {
					return c.stats, rerr
				}
				continue // resend EOF on the fresh connection
			}
			return c.stats, err
		}
		if c.cfg.Session == 0 {
			// Durable sessions keep the ledger count: FrameDone is
			// connection-scoped and undercounts across redials.
			c.stats.Accepted = done
		}
		return c.stats, nil
	}
}

// drainAcks blocks until every ledger entry has been acknowledged,
// redialing (which retransmits the remainder) on connection failures.
func (c *Client) drainAcks() error {
	for len(c.outstanding) > 0 {
		typ, payload, err := c.readFrame()
		if err != nil {
			if isConnErr(err) {
				if rerr := c.redial(); rerr != nil {
					return rerr
				}
				continue
			}
			return err
		}
		switch typ {
		case FrameCredit:
			if err := c.handleCredit(payload); err != nil {
				return err
			}
		case FrameError:
			return fmt.Errorf("transport: server error: %s", payload)
		default:
			return fmt.Errorf("transport: unexpected frame 0x%02x while draining acks", typ)
		}
	}
	return nil
}

// awaitDone reads until the server's FrameDone and returns its count.
func (c *Client) awaitDone() (uint64, error) {
	for {
		typ, payload, err := c.readFrame()
		if err != nil {
			return 0, err
		}
		switch typ {
		case FrameDone:
			n, k := binary.Uvarint(payload)
			if k <= 0 {
				return 0, fmt.Errorf("transport: malformed done frame")
			}
			return n, nil
		case FrameCredit:
			if err := c.handleCredit(payload); err != nil {
				return 0, err
			}
		case FrameError:
			return 0, fmt.Errorf("transport: server error: %s", payload)
		default:
			return 0, fmt.Errorf("transport: unexpected frame 0x%02x while awaiting done", typ)
		}
	}
}

// Stats returns the client's counters so far.
func (c *Client) Stats() ClientStats { return c.stats }
