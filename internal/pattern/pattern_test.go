package pattern

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/window"
)

// entries builds window entries from a type sequence; position = index.
func entries(types ...event.Type) []window.Entry {
	out := make([]window.Entry, len(types))
	for i, t := range types {
		out[i] = window.Entry{Ev: event.Event{Seq: uint64(i), Type: t}, Pos: i}
	}
	return out
}

func seqs(m Match) []uint64 { return m.Seqs() }

func TestPolicyStrings(t *testing.T) {
	if SelectFirst.String() != "first" || SelectLast.String() != "last" {
		t.Error("selection names")
	}
	if SelectionPolicy(9).String() != "selection(9)" {
		t.Error("selection fallback")
	}
	if ConsumeZero.String() != "zero" || Consumed.String() != "consumed" {
		t.Error("consumption names")
	}
	if ConsumptionPolicy(9).String() != "consumption(9)" {
		t.Error("consumption fallback")
	}
}

func TestCompileValidation(t *testing.T) {
	tests := []struct {
		name    string
		p       Pattern
		wantErr bool
	}{
		{"empty", Pattern{Name: "e"}, true},
		{"ok single", Pattern{Steps: []Step{{Types: []event.Type{1}}}}, false},
		{"negative anyN", Pattern{Steps: []Step{{AnyN: -1}}}, true},
		{"anyN exceeds distinct types", Pattern{Steps: []Step{{Types: []event.Type{1, 2}, AnyN: 3, Distinct: true}}}, true},
		{"anyN wildcard ok", Pattern{Steps: []Step{{AnyN: 3}}}, false},
		{"negative type id", Pattern{Steps: []Step{{Types: []event.Type{1, event.NoType}}}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Compile(tt.p)
			if (err != nil) != tt.wantErr {
				t.Errorf("Compile() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompile(Pattern{})
}

func TestWidth(t *testing.T) {
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{1}},
		{Types: []event.Type{2, 3}, AnyN: 4},
	}})
	if c.Width() != 5 {
		t.Errorf("Width() = %d, want 5", c.Width())
	}
}

func TestSequenceFirstPolicy(t *testing.T) {
	// Paper running example (Section 2): window B4,B3,A2,A1 in stream
	// order A1,A2,B3,B4; seq(A;B) with first policy matches (A1,B3).
	a, b := event.Type(0), event.Type(1)
	c := MustCompile(Pattern{
		Steps:     []Step{{Types: []event.Type{a}}, {Types: []event.Type{b}}},
		Selection: SelectFirst,
	})
	ents := entries(a, a, b, b)
	m, ok := c.Match(ents)
	if !ok {
		t.Fatal("no match")
	}
	if got, want := seqs(m), []uint64{0, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v (A1,B3)", got, want)
	}
}

func TestSequenceLastPolicy(t *testing.T) {
	// Same window, last policy: (A2,B4).
	a, b := event.Type(0), event.Type(1)
	c := MustCompile(Pattern{
		Steps:     []Step{{Types: []event.Type{a}}, {Types: []event.Type{b}}},
		Selection: SelectLast,
	})
	m, ok := c.Match(entries(a, a, b, b))
	if !ok {
		t.Fatal("no match")
	}
	if got, want := seqs(m), []uint64{1, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v (A2,B4)", got, want)
	}
}

func TestSequenceSkipTillNext(t *testing.T) {
	// seq(A;B;C) must skip non-matching intermediates.
	a, b, cc, x := event.Type(0), event.Type(1), event.Type(2), event.Type(9)
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{a}}, {Types: []event.Type{b}}, {Types: []event.Type{cc}},
	}})
	m, ok := c.Match(entries(x, a, x, x, b, x, cc, x))
	if !ok {
		t.Fatal("no match")
	}
	if got, want := seqs(m), []uint64{1, 4, 6}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
}

func TestSequenceNoMatch(t *testing.T) {
	a, b := event.Type(0), event.Type(1)
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{a}}, {Types: []event.Type{b}},
	}})
	// B before A only: order matters in sequences.
	if _, ok := c.Match(entries(b, a)); ok {
		t.Error("seq(A;B) must not match stream B,A")
	}
	if _, ok := c.Match(entries(a)); ok {
		t.Error("incomplete match must fail")
	}
	if _, ok := c.Match(nil); ok {
		t.Error("empty window must not match")
	}
}

func TestAnyOperatorFirst(t *testing.T) {
	// seq(STR; any(2, D1,D2,D3)): first two distinct defenders after the
	// striker event.
	str, d1, d2, d3 := event.Type(0), event.Type(1), event.Type(2), event.Type(3)
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{str}},
		{Types: []event.Type{d1, d2, d3}, AnyN: 2, Distinct: true},
	}})
	// Stream: d1 (before striker: ignored), STR, d2, d2 (dup type skipped), d3.
	m, ok := c.Match(entries(d1, str, d2, d2, d3))
	if !ok {
		t.Fatal("no match")
	}
	if got, want := seqs(m), []uint64{1, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
}

func TestAnyOperatorNonDistinctTakesDuplicates(t *testing.T) {
	str, d1 := event.Type(0), event.Type(1)
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{str}},
		{Types: []event.Type{d1}, AnyN: 2},
	}})
	m, ok := c.Match(entries(str, d1, d1))
	if !ok {
		t.Fatal("no match")
	}
	if got, want := seqs(m), []uint64{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v", got)
	}
}

func TestAnyOperatorLast(t *testing.T) {
	str, d1, d2 := event.Type(0), event.Type(1), event.Type(2)
	c := MustCompile(Pattern{
		Steps: []Step{
			{Types: []event.Type{str}},
			{Types: []event.Type{d1, d2}, AnyN: 2, Distinct: true},
		},
		Selection: SelectLast,
	})
	// Stream: STR(0), d1(1), STR(2), d1(3), d2(4): last picks STR(2), d1(3), d2(4).
	m, ok := c.Match(entries(str, d1, str, d1, d2))
	if !ok {
		t.Fatal("no match")
	}
	if got, want := seqs(m), []uint64{2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
}

func TestAnyOperatorInsufficient(t *testing.T) {
	str, d1, d2 := event.Type(0), event.Type(1), event.Type(2)
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{str}},
		{Types: []event.Type{d1, d2}, AnyN: 2, Distinct: true},
	}})
	if _, ok := c.Match(entries(str, d1, d1)); ok {
		t.Error("distinct any(2) must not match two events of one type")
	}
}

func TestWildcardStep(t *testing.T) {
	a := event.Type(0)
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{a}},
		{AnyN: 2}, // any two events of any type
	}})
	m, ok := c.Match(entries(a, 5, 9))
	if !ok {
		t.Fatal("no match")
	}
	if len(m.Constituents) != 3 {
		t.Errorf("constituents = %d", len(m.Constituents))
	}
}

func TestPredicateFiltering(t *testing.T) {
	a, b := event.Type(0), event.Type(1)
	rising := func(e event.Event) bool { return e.Kind == event.KindRising }
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{a}, Pred: rising},
		{Types: []event.Type{b}, Pred: rising},
	}})
	ents := []window.Entry{
		{Ev: event.Event{Seq: 0, Type: a, Kind: event.KindFalling}, Pos: 0},
		{Ev: event.Event{Seq: 1, Type: a, Kind: event.KindRising}, Pos: 1},
		{Ev: event.Event{Seq: 2, Type: b, Kind: event.KindFalling}, Pos: 2},
		{Ev: event.Event{Seq: 3, Type: b, Kind: event.KindRising}, Pos: 3},
	}
	m, ok := c.Match(ents)
	if !ok {
		t.Fatal("no match")
	}
	if got, want := seqs(m), []uint64{1, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
}

func TestRepetitionPattern(t *testing.T) {
	// Q4 shape: seq(A;A;B): same type in several steps consumes distinct
	// occurrences.
	a, b := event.Type(0), event.Type(1)
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{a}}, {Types: []event.Type{a}}, {Types: []event.Type{b}},
	}})
	m, ok := c.Match(entries(a, a, b))
	if !ok {
		t.Fatal("no match")
	}
	if got, want := seqs(m), []uint64{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v", got)
	}
	if _, ok := c.Match(entries(a, b)); ok {
		t.Error("seq(A;A;B) must need two As")
	}
}

func TestMatchAllZeroConsumption(t *testing.T) {
	// Paper Section 2.1: window A1,A2,B3,B4, first selection.
	// Zero consumption anchors at each A: (A1,B3) and (A2,B3).
	a, b := event.Type(0), event.Type(1)
	c := MustCompile(Pattern{
		Steps:       []Step{{Types: []event.Type{a}}, {Types: []event.Type{b}}},
		Consumption: ConsumeZero,
	})
	ms := c.MatchAll(entries(a, a, b, b), 0)
	if len(ms) != 2 {
		t.Fatalf("got %d matches, want 2", len(ms))
	}
	if got, want := seqs(ms[0]), []uint64{0, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("m0 = %v, want %v", got, want)
	}
	if got, want := seqs(ms[1]), []uint64{1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("m1 = %v, want %v", got, want)
	}
}

func TestMatchAllConsumed(t *testing.T) {
	// Consumed: (A1,B3) then (A2,B4) — the paper's first/consumed example.
	a, b := event.Type(0), event.Type(1)
	c := MustCompile(Pattern{
		Steps:       []Step{{Types: []event.Type{a}}, {Types: []event.Type{b}}},
		Consumption: Consumed,
	})
	ms := c.MatchAll(entries(a, a, b, b), 0)
	if len(ms) != 2 {
		t.Fatalf("got %d matches, want 2", len(ms))
	}
	if got, want := seqs(ms[0]), []uint64{0, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("m0 = %v, want %v", got, want)
	}
	if got, want := seqs(ms[1]), []uint64{1, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("m1 = %v, want %v", got, want)
	}
}

func TestMatchAllLimit(t *testing.T) {
	a := event.Type(0)
	c := MustCompile(Pattern{
		Steps:       []Step{{Types: []event.Type{a}}},
		Consumption: Consumed,
	})
	ms := c.MatchAll(entries(a, a, a, a), 2)
	if len(ms) != 2 {
		t.Fatalf("limit ignored: %d matches", len(ms))
	}
}

func TestTypeWeights(t *testing.T) {
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{0}},
		{Types: []event.Type{0}},
		{Types: []event.Type{1, 2}, AnyN: 4},
		{AnyN: 3},
	}})
	w := c.TypeWeights()
	if w.PerType[0] != 2 {
		t.Errorf("weight[0] = %v, want 2", w.PerType[0])
	}
	if w.PerType[1] != 2 || w.PerType[2] != 2 {
		t.Errorf("any weights = %v/%v, want 2/2", w.PerType[1], w.PerType[2])
	}
	if w.Wildcard != 3 {
		t.Errorf("wildcard = %v, want 3", w.Wildcard)
	}
}

// bruteForceSeq reports whether a pure single-event-step sequence pattern
// has any match in the entries (exponential-free DP scan).
func bruteForceSeq(c *Compiled, ents []window.Entry) bool {
	step := 0
	for i := 0; i < len(ents) && step < len(c.p.Steps); i++ {
		if c.stepAccepts(step, ents[i].Ev) {
			step++
		}
	}
	return step == len(c.p.Steps)
}

// Property: greedy first-policy matching agrees with a brute-force scan on
// random sequence patterns and random streams (completeness of greedy
// skip-till-next matching).
func TestGreedyCompletenessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numTypes := rng.Intn(4) + 2
		patLen := rng.Intn(4) + 1
		steps := make([]Step, patLen)
		for i := range steps {
			steps[i] = Step{Types: []event.Type{event.Type(rng.Intn(numTypes))}}
		}
		c := MustCompile(Pattern{Steps: steps})
		streamLen := rng.Intn(30)
		types := make([]event.Type, streamLen)
		for i := range types {
			types[i] = event.Type(rng.Intn(numTypes))
		}
		ents := entries(types...)
		_, got := c.Match(ents)
		return got == bruteForceSeq(c, ents)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: first and last policies agree on existence of a match and both
// produce constituents in strictly increasing position order.
func TestFirstLastAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numTypes := rng.Intn(4) + 2
		patLen := rng.Intn(3) + 1
		steps := make([]Step, patLen)
		for i := range steps {
			st := Step{Types: []event.Type{event.Type(rng.Intn(numTypes))}}
			if rng.Intn(3) == 0 {
				st.AnyN = rng.Intn(2) + 1
				st.Types = nil // wildcard any
			}
			steps[i] = st
		}
		first := MustCompile(Pattern{Steps: steps, Selection: SelectFirst})
		last := MustCompile(Pattern{Steps: steps, Selection: SelectLast})
		streamLen := rng.Intn(40)
		types := make([]event.Type, streamLen)
		for i := range types {
			types[i] = event.Type(rng.Intn(numTypes))
		}
		ents := entries(types...)
		mf, okF := first.Match(ents)
		ml, okL := last.Match(ents)
		if okF != okL {
			return false
		}
		inc := func(m Match) bool {
			for i := 1; i < len(m.Constituents); i++ {
				if m.Constituents[i].Pos <= m.Constituents[i-1].Pos {
					return false
				}
			}
			return true
		}
		if okF && (!inc(mf) || !inc(ml)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatchSequence20(b *testing.B) {
	// Q3-shaped pattern: 20 specific types in sequence over 2000 events.
	steps := make([]Step, 20)
	for i := range steps {
		steps[i] = Step{Types: []event.Type{event.Type(i)}}
	}
	c := MustCompile(Pattern{Steps: steps})
	types := make([]event.Type, 2000)
	rng := rand.New(rand.NewSource(1))
	for i := range types {
		types[i] = event.Type(rng.Intn(40))
	}
	ents := entries(types...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Match(ents)
	}
}

func TestAnchoredPatternFirst(t *testing.T) {
	str, d1, d2 := event.Type(0), event.Type(1), event.Type(2)
	c := MustCompile(Pattern{
		Steps: []Step{
			{Types: []event.Type{str}},
			{Types: []event.Type{d1, d2}, AnyN: 2, Distinct: true},
		},
		Anchored: true,
	})
	// Opener matches step 0: match anchored at position 0.
	m, ok := c.Match(entries(str, d1, d2))
	if !ok {
		t.Fatal("anchored match failed")
	}
	if got, want := seqs(m), []uint64{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
	// First entry is not the opener type: no match even though a full
	// match exists later in the window.
	if _, ok := c.Match(entries(d1, str, d1, d2)); ok {
		t.Error("anchored pattern must not match a drifted opener")
	}
}

func TestAnchoredOpenerDroppedByShedding(t *testing.T) {
	str, d1 := event.Type(0), event.Type(1)
	c := MustCompile(Pattern{
		Steps: []Step{
			{Types: []event.Type{str}},
			{Types: []event.Type{d1}},
		},
		Anchored: true,
	})
	// Shedding dropped position 0: first kept entry has Pos 1.
	ents := []window.Entry{
		{Ev: event.Event{Seq: 10, Type: str}, Pos: 1},
		{Ev: event.Event{Seq: 11, Type: d1}, Pos: 2},
	}
	if _, ok := c.Match(ents); ok {
		t.Error("anchored pattern must fail when the opener was shed")
	}
}

func TestAnchoredPatternLast(t *testing.T) {
	str, d1, d2 := event.Type(0), event.Type(1), event.Type(2)
	c := MustCompile(Pattern{
		Steps: []Step{
			{Types: []event.Type{str}},
			{Types: []event.Type{d1, d2}, AnyN: 2, Distinct: true},
		},
		Selection: SelectLast,
		Anchored:  true,
	})
	// Last policy keeps the anchor at pos 0 but picks the latest defends.
	m, ok := c.Match(entries(str, d1, d2, d1, d2))
	if !ok {
		t.Fatal("anchored last match failed")
	}
	if got, want := seqs(m), []uint64{0, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
}

func TestAnchoredSingleStep(t *testing.T) {
	str := event.Type(0)
	c := MustCompile(Pattern{
		Steps:    []Step{{Types: []event.Type{str}}},
		Anchored: true,
	})
	m, ok := c.Match(entries(str, str))
	if !ok || len(m.Constituents) != 1 || m.Constituents[0].Pos != 0 {
		t.Errorf("single-step anchored match = %v, %v", m, ok)
	}
}

func TestAnchoredMatchAllSingleMatch(t *testing.T) {
	a, b := event.Type(0), event.Type(1)
	c := MustCompile(Pattern{
		Steps:       []Step{{Types: []event.Type{a}}, {Types: []event.Type{b}}},
		Consumption: ConsumeZero,
		Anchored:    true,
	})
	ms := c.MatchAll(entries(a, a, b, b), 0)
	if len(ms) != 1 {
		t.Fatalf("anchored MatchAll = %d matches, want 1", len(ms))
	}
	if got, want := seqs(ms[0]), []uint64{0, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
	// No anchor: no matches at all.
	if got := c.MatchAll(entries(b, a, b), 0); len(got) != 0 {
		t.Errorf("unanchored window matched: %v", got)
	}
	if got := c.MatchAll(nil, 0); len(got) != 0 {
		t.Errorf("empty window matched: %v", got)
	}
}

func TestAnchoredValidation(t *testing.T) {
	_, err := Compile(Pattern{
		Steps:    []Step{{AnyN: 2}},
		Anchored: true,
	})
	if err == nil {
		t.Error("anchored pattern starting with an any step must fail")
	}
}

// --- MatchScratch (reusable matcher memory, bitset type sets) -----------

// TestMatchWithScratchReuse verifies that a reused scratch produces the
// same matches as the allocating entry points, call after call.
func TestMatchWithScratchReuse(t *testing.T) {
	c := MustCompile(Pattern{
		Name: "mixed",
		Steps: []Step{
			{Types: []event.Type{1}},
			{Types: []event.Type{2, 3, 4}, AnyN: 2, Distinct: true},
			{Types: []event.Type{5, 6}, All: true},
		},
	})
	streams := [][]window.Entry{
		entries(1, 2, 3, 5, 6),
		entries(1, 2, 2, 3, 6, 5),
		entries(7, 1, 4, 3, 5, 5, 6),
		entries(1, 2, 5, 6), // fails: any-step needs 2 distinct
		nil,
	}
	var s MatchScratch
	for i, ents := range streams {
		want, wantOK := c.Match(ents)
		got, gotOK := c.MatchWith(&s, ents)
		if wantOK != gotOK {
			t.Fatalf("stream %d: MatchWith ok = %v, Match ok = %v", i, gotOK, wantOK)
		}
		if !gotOK {
			continue
		}
		if !reflect.DeepEqual(seqs(got), seqs(want)) {
			t.Errorf("stream %d: MatchWith = %v, Match = %v", i, seqs(got), seqs(want))
		}
	}
}

// TestMatchAllWithScratchReuse checks MatchAllWith against MatchAll under
// both consumption policies with a shared scratch.
func TestMatchAllWithScratchReuse(t *testing.T) {
	for _, cons := range []ConsumptionPolicy{ConsumeZero, Consumed} {
		c := MustCompile(Pattern{
			Name:        "ab",
			Consumption: cons,
			Steps:       []Step{{Types: []event.Type{1}}, {Types: []event.Type{2}}},
		})
		var s MatchScratch
		ents := entries(1, 1, 2, 2, 1, 2)
		for round := 0; round < 3; round++ {
			want := c.MatchAll(ents, 0)
			got := c.MatchAllWith(&s, ents, 0, nil)
			if len(got) != len(want) {
				t.Fatalf("%v round %d: %d matches, want %d", cons, round, len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(seqs(got[i]), seqs(want[i])) {
					t.Errorf("%v round %d match %d: %v, want %v", cons, round, i, seqs(got[i]), seqs(want[i]))
				}
			}
		}
	}
}

// TestMatchWithZeroAlloc gates the scratch design: once warm, matching
// (including conjunction and distinct-any steps, which used per-call hash
// sets before) allocates nothing.
func TestMatchWithZeroAlloc(t *testing.T) {
	c := MustCompile(Pattern{
		Name: "hot",
		Steps: []Step{
			{Types: []event.Type{1}},
			{Types: []event.Type{2, 3}, AnyN: 2, Distinct: true},
			{Types: []event.Type{4, 5}, All: true},
		},
	})
	ents := entries(1, 2, 9, 3, 5, 4)
	var s MatchScratch
	if _, ok := c.MatchWith(&s, ents); !ok { // warm the scratch
		t.Fatal("pattern should match")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.MatchWith(&s, ents); !ok {
			t.Fatal("pattern should match")
		}
	})
	if allocs != 0 {
		t.Errorf("warm MatchWith allocates %.2f/match, want 0", allocs)
	}

	cz := MustCompile(Pattern{
		Name:        "hot-all",
		Consumption: Consumed,
		Steps:       []Step{{Types: []event.Type{1}}, {Types: []event.Type{2}}},
	})
	entsAll := entries(1, 2, 1, 2, 1)
	cz.MatchAllWith(&s, entsAll, 0, nil) // warm
	out := make([]Match, 0, 4)
	allocs = testing.AllocsPerRun(1000, func() {
		out = cz.MatchAllWith(&s, entsAll, 0, out[:0])
		if len(out) != 2 {
			t.Fatalf("matches = %d, want 2", len(out))
		}
	})
	if allocs != 0 {
		t.Errorf("warm MatchAllWith allocates %.2f/window, want 0", allocs)
	}
}

// TestConsumedMarkingLargeWindow exercises the index-by-position marking
// on a larger window (formerly an O(n^2) rescan per constituent).
func TestConsumedMarkingLargeWindow(t *testing.T) {
	c := MustCompile(Pattern{
		Name:        "ab",
		Consumption: Consumed,
		Steps:       []Step{{Types: []event.Type{1}}, {Types: []event.Type{2}}},
	})
	const pairs = 500
	ents := make([]window.Entry, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		ents = append(ents,
			window.Entry{Ev: event.Event{Seq: uint64(2 * i), Type: 1}, Pos: 3 * i},
			window.Entry{Ev: event.Event{Seq: uint64(2*i + 1), Type: 2}, Pos: 3*i + 1},
		)
	}
	ms := c.MatchAll(ents, 0)
	if len(ms) != pairs {
		t.Fatalf("matches = %d, want %d", len(ms), pairs)
	}
	for i, m := range ms {
		got := seqs(m)
		if len(got) != 2 || got[0] != uint64(2*i) || got[1] != uint64(2*i+1) {
			t.Fatalf("match %d = %v, want [%d %d]", i, got, 2*i, 2*i+1)
		}
	}
}

// TestDistinctDedupNegativeTypes pins the hash-set matcher's handling of
// events carrying invalid (negative) type ids: distinct dedup treats
// them per id (they live in the sparse overflow set), so two NoType
// events cannot satisfy a 2-distinct wildcard step.
func TestDistinctDedupNegativeTypes(t *testing.T) {
	c := MustCompile(Pattern{
		Name:  "distinct-wild",
		Steps: []Step{{AnyN: 2, Distinct: true}},
	})
	if _, ok := c.Match(entries(event.NoType, event.NoType)); ok {
		t.Error("two NoType events must not count as distinct")
	}
	if _, ok := c.Match(entries(event.NoType, 1)); !ok {
		t.Error("NoType plus a real type are distinct")
	}
}

// TestHugeTypeIdsBoundedMemory pins the sparse fallback: type ids far
// beyond the dense-bitset range (raw/un-interned values a caller can
// push through the ingress) must match correctly — including distinct
// dedup and conjunctions — without growing O(maxType) scratch.
func TestHugeTypeIdsBoundedMemory(t *testing.T) {
	huge1, huge2 := event.Type(1<<30), event.Type(1<<30+1)

	distinct := MustCompile(Pattern{Steps: []Step{{AnyN: 2, Distinct: true}}})
	var s MatchScratch
	if _, ok := distinct.MatchWith(&s, entries(huge1, huge1)); ok {
		t.Error("duplicate huge type must not count as distinct")
	}
	if _, ok := distinct.MatchWith(&s, entries(huge1, huge2)); !ok {
		t.Error("two distinct huge types must match")
	}
	if words := len(s.tset); words > maxDenseType/64 {
		t.Errorf("dense scratch grew to %d words for a huge id", words)
	}

	conj := MustCompile(Pattern{Steps: []Step{{Types: []event.Type{5, huge1}, All: true}}})
	if _, ok := conj.MatchWith(&s, entries(huge1, 5)); !ok {
		t.Error("conjunction over a huge listed id must match")
	}
	if _, ok := conj.MatchWith(&s, entries(huge2, 5)); ok {
		t.Error("conjunction must not accept a different huge id")
	}
}
