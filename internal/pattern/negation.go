package pattern

import (
	"repro/internal/event"

	"repro/internal/window"
)

// matchWithNeg is the complete backtracking matcher for patterns that
// contain negation steps (first selection policy). Greedy earliest
// matching is not complete once negation is involved — a negated event
// between the greedy choice and the next step may be avoidable by
// anchoring a later instance — so positive steps try every candidate
// start position in order and backtrack on failure. Constituents are
// appended to s.consts (truncated back on failure).
//
// Negation semantics follow SASE/Snoop: a negation step between two
// positive steps requires that no event accepted by it occurs strictly
// between the two steps' matched events; a trailing negation step
// requires that no accepted event occurs between the last positive match
// and the window close.
func (c *Compiled) matchWithNeg(s *MatchScratch, entries []window.Entry, stepStart, entFrom int) bool {
	steps := c.p.Steps
	base := len(s.consts)

	var rec func(si, from int) bool
	rec = func(si, from int) bool {
		// Collect a (single, validated-non-adjacent) negation step.
		negIdx := -1
		for si < len(steps) && steps[si].Neg {
			negIdx = si
			si++
		}
		if si >= len(steps) {
			if negIdx >= 0 {
				// Trailing negation: the remainder of the window must be
				// free of accepted events.
				for i := from; i < len(entries); i++ {
					if c.stepAccepts(negIdx, entries[i].Ev) {
						return false
					}
				}
			}
			return true
		}
		for j := from; j < len(entries); j++ {
			// The candidate event is consumed by the positive step, not
			// part of the gap, so try it before the negation check — an
			// event accepted by both the step and the negation matches the
			// step (match-wins semantics).
			if c.stepFirstEventAccepts(si, entries[j].Ev) {
				mark := len(s.consts)
				next, ok := c.consumeStep(s, si, entries, j)
				if ok && rec(si+1, next) {
					return true
				}
				s.consts = s.consts[:mark]
			}
			if negIdx >= 0 && c.stepAccepts(negIdx, entries[j].Ev) {
				// A negated event precedes every remaining candidate: no
				// valid continuation from this branch.
				return false
			}
		}
		return false
	}

	if !rec(stepStart, entFrom) {
		s.consts = s.consts[:base]
		return false
	}
	return true
}

// stepFirstEventAccepts reports whether e can be the first consumed event
// of step si (for conjunction steps the event must be one of the required
// types; otherwise identical to stepAccepts).
func (c *Compiled) stepFirstEventAccepts(si int, e event.Event) bool {
	return c.stepAccepts(si, e)
}

// consumeStep consumes step si's events greedily starting at entries[j]
// (which must satisfy stepFirstEventAccepts) and appends the constituents
// to s.consts. It returns the entry index following the last consumed
// event. The shared type-set scratch is free here: consumeStep never
// nests inside another step's set use.
func (c *Compiled) consumeStep(s *MatchScratch, si int, entries []window.Entry, j int) (int, bool) {
	st := &c.p.Steps[si]
	switch {
	case st.All:
		need := s.loadStep(st.Types)
		i := j
		for ; i < len(entries) && need > 0; i++ {
			e := entries[i].Ev
			if !s.setHas(e.Type) {
				continue
			}
			if st.Pred != nil && !st.Pred(e) {
				continue
			}
			s.consts = append(s.consts, entries[i])
			s.setRemove(e.Type)
			need--
		}
		if need > 0 {
			return 0, false
		}
		return i, true
	case st.Cumulative:
		min := st.AnyN
		if min < 1 {
			min = 1
		}
		if st.Distinct {
			s.loadStep(nil)
		}
		got := 0
		for i := j; i < len(entries); i++ {
			e := entries[i].Ev
			if !c.stepAccepts(si, e) {
				continue
			}
			if st.Distinct && !s.takeDistinct(e.Type) {
				continue
			}
			s.consts = append(s.consts, entries[i])
			got++
		}
		if got < min {
			return 0, false
		}
		return len(entries), true
	case st.AnyN > 0:
		if st.Distinct {
			s.loadStep(nil)
		}
		need := st.AnyN
		i := j
		for ; i < len(entries) && need > 0; i++ {
			e := entries[i].Ev
			if !c.stepAccepts(si, e) {
				continue
			}
			if st.Distinct && !s.takeDistinct(e.Type) {
				continue
			}
			s.consts = append(s.consts, entries[i])
			need--
		}
		if need > 0 {
			return 0, false
		}
		return i, true
	default:
		s.consts = append(s.consts, entries[j])
		return j + 1, true
	}
}
