package pattern

import (
	"repro/internal/event"

	"repro/internal/window"
)

// matchWithNeg is the complete backtracking matcher for patterns that
// contain negation steps (first selection policy). Greedy earliest
// matching is not complete once negation is involved — a negated event
// between the greedy choice and the next step may be avoidable by
// anchoring a later instance — so positive steps try every candidate
// start position in order and backtrack on failure.
//
// Negation semantics follow SASE/Snoop: a negation step between two
// positive steps requires that no event accepted by it occurs strictly
// between the two steps' matched events; a trailing negation step
// requires that no accepted event occurs between the last positive match
// and the window close.
func (c *Compiled) matchWithNeg(entries []window.Entry, stepStart, entFrom int) (Match, bool) {
	steps := c.p.Steps
	consts := make([]window.Entry, 0, c.width)

	var rec func(si, from int) bool
	rec = func(si, from int) bool {
		// Collect a (single, validated-non-adjacent) negation step.
		negIdx := -1
		for si < len(steps) && steps[si].Neg {
			negIdx = si
			si++
		}
		if si >= len(steps) {
			if negIdx >= 0 {
				// Trailing negation: the remainder of the window must be
				// free of accepted events.
				for i := from; i < len(entries); i++ {
					if c.stepAccepts(negIdx, entries[i].Ev) {
						return false
					}
				}
			}
			return true
		}
		for j := from; j < len(entries); j++ {
			// The candidate event is consumed by the positive step, not
			// part of the gap, so try it before the negation check — an
			// event accepted by both the step and the negation matches the
			// step (match-wins semantics).
			if c.stepFirstEventAccepts(si, entries[j].Ev) {
				mark := len(consts)
				next, ok := c.consumeStep(si, entries, j, &consts)
				if ok && rec(si+1, next) {
					return true
				}
				consts = consts[:mark]
			}
			if negIdx >= 0 && c.stepAccepts(negIdx, entries[j].Ev) {
				// A negated event precedes every remaining candidate: no
				// valid continuation from this branch.
				return false
			}
		}
		return false
	}

	if !rec(stepStart, entFrom) {
		return Match{}, false
	}
	return Match{Constituents: consts}, true
}

// stepFirstEventAccepts reports whether e can be the first consumed event
// of step si (for conjunction steps the event must be one of the required
// types; otherwise identical to stepAccepts).
func (c *Compiled) stepFirstEventAccepts(si int, e event.Event) bool {
	return c.stepAccepts(si, e)
}

// consumeStep consumes step si's events greedily starting at entries[j]
// (which must satisfy stepFirstEventAccepts) and appends the constituents.
// It returns the entry index following the last consumed event.
func (c *Compiled) consumeStep(si int, entries []window.Entry, j int, consts *[]window.Entry) (int, bool) {
	s := &c.p.Steps[si]
	switch {
	case s.All:
		remaining := make(map[event.Type]struct{}, len(s.Types))
		for _, t := range s.Types {
			remaining[t] = struct{}{}
		}
		i := j
		for ; i < len(entries) && len(remaining) > 0; i++ {
			e := entries[i].Ev
			if _, need := remaining[e.Type]; !need {
				continue
			}
			if s.Pred != nil && !s.Pred(e) {
				continue
			}
			*consts = append(*consts, entries[i])
			delete(remaining, e.Type)
		}
		if len(remaining) > 0 {
			return 0, false
		}
		return i, true
	case s.Cumulative:
		min := s.AnyN
		if min < 1 {
			min = 1
		}
		var taken map[event.Type]struct{}
		if s.Distinct {
			taken = make(map[event.Type]struct{})
		}
		got := 0
		for i := j; i < len(entries); i++ {
			e := entries[i].Ev
			if !c.stepAccepts(si, e) {
				continue
			}
			if s.Distinct {
				if _, dup := taken[e.Type]; dup {
					continue
				}
				taken[e.Type] = struct{}{}
			}
			*consts = append(*consts, entries[i])
			got++
		}
		if got < min {
			return 0, false
		}
		return len(entries), true
	case s.AnyN > 0:
		var taken map[event.Type]struct{}
		if s.Distinct {
			taken = make(map[event.Type]struct{}, s.AnyN)
		}
		need := s.AnyN
		i := j
		for ; i < len(entries) && need > 0; i++ {
			e := entries[i].Ev
			if !c.stepAccepts(si, e) {
				continue
			}
			if s.Distinct {
				if _, dup := taken[e.Type]; dup {
					continue
				}
				taken[e.Type] = struct{}{}
			}
			*consts = append(*consts, entries[i])
			need--
		}
		if need > 0 {
			return 0, false
		}
		return i, true
	default:
		*consts = append(*consts, entries[j])
		return j + 1, true
	}
}
