package pattern

import (
	"repro/internal/event"

	"repro/internal/window"
)

// maxDenseType bounds the type ids the dense bitsets cover: 1<<16 ids
// cost at most 8 KiB of words. Registry-interned ids are small and
// dense, so real workloads never leave this range; ids at or above the
// bound (raw, un-interned or corrupt type values are caller-suppliable
// through the ingress) fall back to a sparse map so one wild id cannot
// force an O(maxType) allocation.
const maxDenseType = 1 << 16

// typeBits is a dense bitset over interned event type ids below
// maxDenseType. A handful of 64-bit words replaces the per-step hash
// sets: membership is one shift and mask instead of a map probe, and the
// word array is immutable after Compile, so a Compiled stays shareable
// across goroutines.
type typeBits []uint64

// with returns the bitset with t's bit set, growing as needed. The
// caller guarantees 0 <= t < maxDenseType.
func (b typeBits) with(t event.Type) typeBits {
	w := int(t) >> 6
	for len(b) <= w {
		b = append(b, 0)
	}
	b[w] |= 1 << (uint(t) & 63)
	return b
}

// has reports whether t's bit is set.
func (b typeBits) has(t event.Type) bool {
	w := int(t) >> 6
	return t >= 0 && w < len(b) && b[w]&(1<<(uint(t)&63)) != 0
}

// unset clears t's bit.
func (b typeBits) unset(t event.Type) {
	if w := int(t) >> 6; t >= 0 && w < len(b) {
		b[w] &^= 1 << (uint(t) & 63)
	}
}

// reset zeroes every word, keeping the backing array.
func (b typeBits) reset() {
	for i := range b {
		b[i] = 0
	}
}

// stepTypes is one step's compiled type set: a bitset when every listed
// id is below maxDenseType, a hash set otherwise. Immutable after
// Compile (the map is only ever read), so sharing stays safe.
type stepTypes struct {
	bits typeBits
	m    map[event.Type]struct{}
}

// newStepTypes builds the set for a step's type list; ids are validated
// non-negative by Compile.
func newStepTypes(types []event.Type) *stepTypes {
	for _, t := range types {
		if t >= maxDenseType {
			m := make(map[event.Type]struct{}, len(types))
			for _, t := range types {
				m[t] = struct{}{}
			}
			return &stepTypes{m: m}
		}
	}
	var b typeBits
	for _, t := range types {
		b = b.with(t)
	}
	return &stepTypes{bits: b}
}

// has reports whether t is in the set.
func (ss *stepTypes) has(t event.Type) bool {
	if ss.m != nil {
		_, ok := ss.m[t]
		return ok
	}
	return ss.bits.has(t)
}

// MatchScratch holds the working memory of the matcher — the constituent
// buffer, the consumed-entry marks and the per-step type-set scratch —
// so that steady-state matching allocates nothing. A Compiled pattern is
// immutable and shareable; the scratch is the per-caller mutable half:
// keep one per processing goroutine and pass it to MatchWith/MatchAllWith.
// The zero value is ready to use. Not safe for concurrent use.
type MatchScratch struct {
	consts []window.Entry
	skip   []bool

	// The step set scratch (conjunction remaining-types, distinct
	// taken-types): dense bitset for registry-range ids, sparse overflow
	// map for everything else (negative sentinels, raw/un-interned huge
	// ids) — matching the hash-set matcher's exact semantics and
	// O(distinct) memory for arbitrary caller-supplied type values.
	tset typeBits
	big  map[event.Type]struct{}
}

// inDense reports whether t belongs in the dense bitset.
func inDense(t event.Type) bool { return t >= 0 && t < maxDenseType }

// setClear empties the step set scratch, keeping capacity.
func (s *MatchScratch) setClear() {
	s.tset.reset()
	clear(s.big)
}

// setAdd records t in the step set and reports whether it was new.
func (s *MatchScratch) setAdd(t event.Type) bool {
	if inDense(t) {
		if s.tset.has(t) {
			return false
		}
		s.tset = s.tset.with(t)
		return true
	}
	if _, dup := s.big[t]; dup {
		return false
	}
	if s.big == nil {
		s.big = make(map[event.Type]struct{})
	}
	s.big[t] = struct{}{}
	return true
}

// setHas reports whether t is in the step set.
func (s *MatchScratch) setHas(t event.Type) bool {
	if inDense(t) {
		return s.tset.has(t)
	}
	_, ok := s.big[t]
	return ok
}

// setRemove drops t from the step set.
func (s *MatchScratch) setRemove(t event.Type) {
	if inDense(t) {
		s.tset.unset(t)
		return
	}
	delete(s.big, t)
}

// loadStep prepares the step set scratch for one step: for conjunction
// steps it holds the remaining required types, for distinct steps the
// types already taken. Returns the number of distinct types recorded.
func (s *MatchScratch) loadStep(types []event.Type) int {
	s.setClear()
	n := 0
	for _, t := range types {
		if t >= 0 && s.setAdd(t) {
			n++
		}
	}
	return n
}

// takeDistinct records t in the distinct-dedup set and reports whether
// it was new (false: a duplicate, skip the event).
func (s *MatchScratch) takeDistinct(t event.Type) bool {
	return s.setAdd(t)
}

// resetSkip sizes the consumed-entry marks to n entries, all unmarked.
func (s *MatchScratch) resetSkip(n int) {
	if cap(s.skip) < n {
		s.skip = make([]bool, n)
		return
	}
	s.skip = s.skip[:n]
	for i := range s.skip {
		s.skip[i] = false
	}
}

// indexOfPos locates the entry with the given window position by binary
// search — entries are in window order, so positions are strictly
// increasing. Returns -1 when absent.
func indexOfPos(entries []window.Entry, pos int) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entries[mid].Pos < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(entries) && entries[lo].Pos == pos {
		return lo
	}
	return -1
}
