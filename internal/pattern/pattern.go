// Package pattern implements the CEP pattern language and matcher used by
// the eSPICE evaluation (Section 4.1 of the paper): the sequence operator,
// the sequence-with-any operator, and sequences with repetition, all with
// skip-till-next/any-match semantics, under the first and last selection
// policies and the consumed/zero consumption policies (Section 2).
//
// A pattern is a sequence of steps. Each step matches one event (or, for
// "any" steps, n events of a set of allowed types) and may carry a content
// predicate. Matching operates on the kept entries of a closed window and
// reports the constituent events together with their window positions,
// which is exactly the statistic the eSPICE model builder consumes.
package pattern

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/window"
)

// SelectionPolicy determines which event instances participate in a match
// when several candidates exist (Section 2 of the paper).
type SelectionPolicy int

// Selection policies.
const (
	// SelectFirst picks the earliest event instances.
	SelectFirst SelectionPolicy = iota
	// SelectLast picks the latest event instances.
	SelectLast
)

// String returns the policy name.
func (p SelectionPolicy) String() string {
	switch p {
	case SelectFirst:
		return "first"
	case SelectLast:
		return "last"
	default:
		return fmt.Sprintf("selection(%d)", int(p))
	}
}

// ConsumptionPolicy determines whether an event instance may participate
// in several matches (Section 2).
type ConsumptionPolicy int

// Consumption policies.
const (
	// ConsumeZero allows reuse of event instances across matches.
	ConsumeZero ConsumptionPolicy = iota
	// Consumed removes matched instances from further matching.
	Consumed
)

// String returns the policy name.
func (p ConsumptionPolicy) String() string {
	switch p {
	case ConsumeZero:
		return "zero"
	case Consumed:
		return "consumed"
	default:
		return fmt.Sprintf("consumption(%d)", int(p))
	}
}

// Predicate tests event content (attribute values, kind). Predicates are
// part of the query, not of the utility model: eSPICE deliberately treats
// the operator as a black box and learns from types and positions only.
type Predicate func(e event.Event) bool

// Step is one element of a sequence pattern.
//
// A step with AnyN == 0 matches exactly one event whose type is in Types
// (any type if Types is empty) and which satisfies Pred. A step with
// AnyN = n > 0 is the "any" operator: it matches n events from Types (any
// types if empty), in any order, optionally requiring pairwise-distinct
// types — e.g. seq(STR; any(n, DF1..DFm)) from query Q1.
//
// Three further operator classes from the event specification languages
// the paper builds on (Tesla, Snoop, SASE — Section 2):
//
//   - All marks a conjunction step: every listed type must occur (in any
//     order) before the next step may match.
//   - Neg marks a negation step: the match is valid only if no event
//     accepted by the step occurs between the surrounding positive steps
//     (or, for a trailing negation, before the window closes).
//   - Cumulative (final step only) collects every matching event from
//     the preceding step's match to the window end, with AnyN as the
//     minimum count — Snoop's cumulative selection.
type Step struct {
	Types      []event.Type
	AnyN       int
	Distinct   bool
	All        bool
	Neg        bool
	Cumulative bool
	Pred       Predicate
}

// Pattern is a sequence of steps with selection and consumption policies.
//
// An Anchored pattern requires its first step to match the window's
// opening event (position 0). This expresses queries whose windows are
// opened by a logical predicate on exactly the pattern's leading event —
// e.g. Q1's "a new window is opened for each incoming striker event" —
// so that a window opened by one striker cannot be satisfied by a later
// possession of the other striker drifting mid-window.
type Pattern struct {
	Name        string
	Steps       []Step
	Selection   SelectionPolicy
	Consumption ConsumptionPolicy
	Anchored    bool
}

// Match is one detected complex event: the constituent primitive events
// with their positions in the window.
type Match struct {
	Constituents []window.Entry
}

// Seqs returns the constituent sequence numbers, in match order. Two
// matches with equal Seqs in the same window denote the same complex
// event; the quality metrics key on this.
func (m Match) Seqs() []uint64 {
	out := make([]uint64, len(m.Constituents))
	for i, c := range m.Constituents {
		out[i] = c.Ev.Seq
	}
	return out
}

// Compiled is a validated pattern with per-step type sets precomputed for
// O(1) type membership tests during matching.
type Compiled struct {
	p      Pattern
	sets   []map[event.Type]struct{} // nil => wildcard
	width  int                       // total events a full match consumes
	hasNeg bool                      // negation requires the backtracker
}

// Compile validates the pattern and prepares it for matching.
func Compile(p Pattern) (*Compiled, error) {
	if len(p.Steps) == 0 {
		return nil, fmt.Errorf("pattern %q: no steps", p.Name)
	}
	if p.Anchored && p.Steps[0].AnyN > 0 {
		return nil, fmt.Errorf("pattern %q: anchored pattern cannot start with an any step", p.Name)
	}
	for i, s := range p.Steps {
		if s.Neg && p.Selection == SelectLast {
			return nil, fmt.Errorf("pattern %q step %d: negation is not supported with the last selection policy", p.Name, i)
		}
		if s.Cumulative && p.Selection == SelectLast {
			return nil, fmt.Errorf("pattern %q step %d: cumulative selection requires the first selection policy", p.Name, i)
		}
	}
	c := &Compiled{p: p, sets: make([]map[event.Type]struct{}, len(p.Steps))}
	for i, s := range p.Steps {
		if s.AnyN < 0 {
			return nil, fmt.Errorf("pattern %q step %d: negative AnyN %d", p.Name, i, s.AnyN)
		}
		if s.AnyN > 0 && s.Distinct && len(s.Types) > 0 && s.AnyN > len(s.Types) {
			return nil, fmt.Errorf("pattern %q step %d: AnyN %d exceeds %d distinct types",
				p.Name, i, s.AnyN, len(s.Types))
		}
		if s.Neg {
			if s.AnyN > 0 || s.All || s.Cumulative {
				return nil, fmt.Errorf("pattern %q step %d: negation cannot combine with any/all/cumulative", p.Name, i)
			}
			if i == 0 && p.Anchored {
				return nil, fmt.Errorf("pattern %q: anchored pattern cannot start with negation", p.Name)
			}
			if i > 0 && p.Steps[i-1].Neg {
				return nil, fmt.Errorf("pattern %q step %d: adjacent negation steps", p.Name, i)
			}
			c.hasNeg = true
		}
		if s.All {
			if len(s.Types) == 0 {
				return nil, fmt.Errorf("pattern %q step %d: conjunction needs explicit types", p.Name, i)
			}
			if s.AnyN > 0 {
				return nil, fmt.Errorf("pattern %q step %d: conjunction cannot combine with AnyN", p.Name, i)
			}
		}
		if s.Cumulative {
			if i != len(p.Steps)-1 {
				return nil, fmt.Errorf("pattern %q step %d: cumulative is only valid on the final step", p.Name, i)
			}
			if s.Neg {
				return nil, fmt.Errorf("pattern %q step %d: cumulative cannot be negated", p.Name, i)
			}
		}
		if len(s.Types) > 0 {
			set := make(map[event.Type]struct{}, len(s.Types))
			for _, t := range s.Types {
				set[t] = struct{}{}
			}
			c.sets[i] = set
		}
		switch {
		case s.Neg:
			// consumes no events
		case s.All:
			c.width += len(s.Types)
		case s.AnyN > 0:
			c.width += s.AnyN
		default:
			c.width++
		}
	}
	if c.hasNeg && onlyNegSteps(p.Steps) {
		return nil, fmt.Errorf("pattern %q: needs at least one positive step", p.Name)
	}
	return c, nil
}

func onlyNegSteps(steps []Step) bool {
	for _, s := range steps {
		if !s.Neg {
			return false
		}
	}
	return true
}

// MustCompile is Compile that panics on error; for use with
// statically-known-correct patterns in tests and query constructors.
func MustCompile(p Pattern) *Compiled {
	c, err := Compile(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Pattern returns the source pattern.
func (c *Compiled) Pattern() Pattern { return c.p }

// Width returns the number of primitive events in a full match.
func (c *Compiled) Width() int { return c.width }

// stepAccepts reports whether entry e can satisfy step i.
func (c *Compiled) stepAccepts(i int, e event.Event) bool {
	if set := c.sets[i]; set != nil {
		if _, ok := set[e.Type]; !ok {
			return false
		}
	}
	if pred := c.p.Steps[i].Pred; pred != nil {
		return pred(e)
	}
	return true
}

// Match finds at most one match in the window entries according to the
// pattern's selection policy — the paper's evaluation setting of one
// complex event per window. Entries must be in window order.
func (c *Compiled) Match(entries []window.Entry) (Match, bool) {
	if c.p.Anchored {
		return c.matchAnchored(entries)
	}
	if c.hasNeg {
		return c.matchWithNeg(entries, 0, 0)
	}
	switch c.p.Selection {
	case SelectLast:
		return c.matchLast(entries, 0, 0)
	default:
		return c.matchFirst(entries, 0, 0, nil)
	}
}

// matchAnchored requires the first step to match the window opener
// (position 0); the remaining steps follow the selection policy. If
// shedding dropped the opening event, the match fails — the pattern's
// anchor is gone.
func (c *Compiled) matchAnchored(entries []window.Entry) (Match, bool) {
	if len(entries) == 0 || entries[0].Pos != 0 || !c.stepAccepts(0, entries[0].Ev) {
		return Match{}, false
	}
	var (
		m  Match
		ok bool
	)
	if len(c.p.Steps) == 1 {
		return Match{Constituents: []window.Entry{entries[0]}}, true
	}
	switch {
	case c.hasNeg:
		m, ok = c.matchWithNeg(entries, 1, 1)
	case c.p.Selection == SelectLast:
		m, ok = c.matchLast(entries, 1, 1)
	default:
		m, ok = c.matchFirst(entries, 1, 1, nil)
	}
	if !ok {
		return Match{}, false
	}
	m.Constituents = append([]window.Entry{entries[0]}, m.Constituents...)
	return m, true
}

// matchFirst performs greedy skip-till-next matching of steps[stepStart:]
// from entry index `from`, choosing the earliest instances. `skip` marks
// entry indices that are consumed and unavailable (nil means none).
// Greedy earliest selection is complete for sequence patterns: if any
// match exists, the greedy one exists (standard exchange argument).
func (c *Compiled) matchFirst(entries []window.Entry, stepStart, from int, skip []bool) (Match, bool) {
	consts := make([]window.Entry, 0, c.width)
	i := from
	for si := stepStart; si < len(c.p.Steps); si++ {
		s := &c.p.Steps[si]
		if s.All {
			// Conjunction: collect one event of every required type, any
			// order (earliest instances).
			remaining := make(map[event.Type]struct{}, len(s.Types))
			for _, t := range s.Types {
				remaining[t] = struct{}{}
			}
			for ; i < len(entries) && len(remaining) > 0; i++ {
				if skip != nil && skip[i] {
					continue
				}
				e := entries[i].Ev
				if _, need := remaining[e.Type]; !need {
					continue
				}
				if s.Pred != nil && !s.Pred(e) {
					continue
				}
				consts = append(consts, entries[i])
				delete(remaining, e.Type)
			}
			if len(remaining) > 0 {
				return Match{}, false
			}
			continue
		}
		if s.Cumulative {
			// Cumulative selection: every matching event to the window
			// end, at least max(1, AnyN) of them.
			min := s.AnyN
			if min < 1 {
				min = 1
			}
			var taken map[event.Type]struct{}
			if s.Distinct {
				taken = make(map[event.Type]struct{})
			}
			got := 0
			for ; i < len(entries); i++ {
				if skip != nil && skip[i] {
					continue
				}
				e := entries[i].Ev
				if !c.stepAccepts(si, e) {
					continue
				}
				if s.Distinct {
					if _, dup := taken[e.Type]; dup {
						continue
					}
					taken[e.Type] = struct{}{}
				}
				consts = append(consts, entries[i])
				got++
			}
			if got < min {
				return Match{}, false
			}
			continue
		}
		if s.AnyN == 0 {
			found := false
			for ; i < len(entries); i++ {
				if skip != nil && skip[i] {
					continue
				}
				if c.stepAccepts(si, entries[i].Ev) {
					consts = append(consts, entries[i])
					i++
					found = true
					break
				}
			}
			if !found {
				return Match{}, false
			}
			continue
		}
		// "any" step: collect the next AnyN acceptable events.
		var taken map[event.Type]struct{}
		if s.Distinct {
			taken = make(map[event.Type]struct{}, s.AnyN)
		}
		need := s.AnyN
		for ; i < len(entries) && need > 0; i++ {
			if skip != nil && skip[i] {
				continue
			}
			e := entries[i].Ev
			if !c.stepAccepts(si, e) {
				continue
			}
			if s.Distinct {
				if _, dup := taken[e.Type]; dup {
					continue
				}
				taken[e.Type] = struct{}{}
			}
			consts = append(consts, entries[i])
			need--
		}
		if need > 0 {
			return Match{}, false
		}
	}
	return Match{Constituents: consts}, true
}

// matchLast chooses the latest instances for steps[stepStart:] over
// entries[entStart:]: it scans backward with the steps reversed, which is
// the mirror image of matchFirst and equally complete.
func (c *Compiled) matchLast(entries []window.Entry, stepStart, entStart int) (Match, bool) {
	consts := make([]window.Entry, 0, c.width)
	i := len(entries) - 1
	for si := len(c.p.Steps) - 1; si >= stepStart; si-- {
		s := &c.p.Steps[si]
		if s.All {
			// Conjunction with latest instances: scan backward collecting
			// one event of every required type.
			remaining := make(map[event.Type]struct{}, len(s.Types))
			for _, t := range s.Types {
				remaining[t] = struct{}{}
			}
			for ; i >= entStart && len(remaining) > 0; i-- {
				e := entries[i].Ev
				if _, need := remaining[e.Type]; !need {
					continue
				}
				if s.Pred != nil && !s.Pred(e) {
					continue
				}
				consts = append(consts, entries[i])
				delete(remaining, e.Type)
			}
			if len(remaining) > 0 {
				return Match{}, false
			}
			continue
		}
		if s.AnyN == 0 {
			found := false
			for ; i >= entStart; i-- {
				if c.stepAccepts(si, entries[i].Ev) {
					consts = append(consts, entries[i])
					i--
					found = true
					break
				}
			}
			if !found {
				return Match{}, false
			}
			continue
		}
		var taken map[event.Type]struct{}
		if s.Distinct {
			taken = make(map[event.Type]struct{}, s.AnyN)
		}
		need := s.AnyN
		for ; i >= entStart && need > 0; i-- {
			e := entries[i].Ev
			if !c.stepAccepts(si, e) {
				continue
			}
			if s.Distinct {
				if _, dup := taken[e.Type]; dup {
					continue
				}
				taken[e.Type] = struct{}{}
			}
			consts = append(consts, entries[i])
			need--
		}
		if need > 0 {
			return Match{}, false
		}
	}
	// Reverse into window order.
	for l, r := 0, len(consts)-1; l < r; l, r = l+1, r-1 {
		consts[l], consts[r] = consts[r], consts[l]
	}
	return Match{Constituents: consts}, true
}

// MatchAll finds every match under the pattern's consumption policy, in
// stream order, up to limit matches (limit <= 0 means no limit). Under
// Consumed, matched instances are excluded from later matches; under
// ConsumeZero, instances may be reused, with successive matches anchored
// at successive occurrences of the first step (skip-till-next semantics).
func (c *Compiled) MatchAll(entries []window.Entry, limit int) []Match {
	var out []Match
	if c.p.Anchored || c.hasNeg {
		// An anchored pattern has a unique anchor (the window opener);
		// negation patterns report a single earliest match (interval
		// constraints make multi-match enumeration ambiguous).
		if m, ok := c.Match(entries); ok {
			out = append(out, m)
		}
		return out
	}
	switch c.p.Consumption {
	case Consumed:
		skip := make([]bool, len(entries))
		for {
			m, ok := c.matchFirst(entries, 0, 0, skip)
			if !ok {
				break
			}
			out = append(out, m)
			for _, ct := range m.Constituents {
				// Mark consumed entries by index: positions are unique per
				// window, so find by position.
				for i := range entries {
					if entries[i].Pos == ct.Pos {
						skip[i] = true
						break
					}
				}
			}
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	default: // ConsumeZero
		from := 0
		for from < len(entries) {
			// Find the next anchor (first-step occurrence) at or after from.
			anchor := -1
			for i := from; i < len(entries); i++ {
				if c.stepAccepts(0, entries[i].Ev) {
					anchor = i
					break
				}
			}
			if anchor < 0 {
				break
			}
			m, ok := c.matchFirst(entries, 0, anchor, nil)
			if !ok {
				break
			}
			out = append(out, m)
			if limit > 0 && len(out) >= limit {
				break
			}
			from = anchor + 1
		}
	}
	return out
}

// TypeWeights describes how often each event type is required by the
// pattern — the "repetition of primitive events in the pattern" statistic
// the BL baseline shedder builds its per-type utilities from. Types listed
// in an "any" step share the step's weight; wildcard "any" steps
// contribute Wildcard weight to be spread over observed types by frequency.
type TypeWeights struct {
	PerType  map[event.Type]float64
	Wildcard float64
}

// TypeWeights computes the pattern's type repetition weights.
func (c *Compiled) TypeWeights() TypeWeights {
	w := TypeWeights{PerType: make(map[event.Type]float64)}
	for _, s := range c.p.Steps {
		if s.Neg {
			continue // absence requirements add no per-type demand
		}
		if s.All {
			// Conjunction needs one event of *every* listed type.
			for _, t := range s.Types {
				w.PerType[t]++
			}
			continue
		}
		weight := 1.0
		if s.AnyN > 0 {
			weight = float64(s.AnyN)
		}
		if len(s.Types) == 0 {
			w.Wildcard += weight
			continue
		}
		share := weight / float64(len(s.Types))
		for _, t := range s.Types {
			w.PerType[t] += share
		}
	}
	return w
}
