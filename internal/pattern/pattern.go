// Package pattern implements the CEP pattern language and matcher used by
// the eSPICE evaluation (Section 4.1 of the paper): the sequence operator,
// the sequence-with-any operator, and sequences with repetition, all with
// skip-till-next/any-match semantics, under the first and last selection
// policies and the consumed/zero consumption policies (Section 2).
//
// A pattern is a sequence of steps. Each step matches one event (or, for
// "any" steps, n events of a set of allowed types) and may carry a content
// predicate. Matching operates on the kept entries of a closed window and
// reports the constituent events together with their window positions,
// which is exactly the statistic the eSPICE model builder consumes.
package pattern

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/window"
)

// SelectionPolicy determines which event instances participate in a match
// when several candidates exist (Section 2 of the paper).
type SelectionPolicy int

// Selection policies.
const (
	// SelectFirst picks the earliest event instances.
	SelectFirst SelectionPolicy = iota
	// SelectLast picks the latest event instances.
	SelectLast
)

// String returns the policy name.
func (p SelectionPolicy) String() string {
	switch p {
	case SelectFirst:
		return "first"
	case SelectLast:
		return "last"
	default:
		return fmt.Sprintf("selection(%d)", int(p))
	}
}

// ConsumptionPolicy determines whether an event instance may participate
// in several matches (Section 2).
type ConsumptionPolicy int

// Consumption policies.
const (
	// ConsumeZero allows reuse of event instances across matches.
	ConsumeZero ConsumptionPolicy = iota
	// Consumed removes matched instances from further matching.
	Consumed
)

// String returns the policy name.
func (p ConsumptionPolicy) String() string {
	switch p {
	case ConsumeZero:
		return "zero"
	case Consumed:
		return "consumed"
	default:
		return fmt.Sprintf("consumption(%d)", int(p))
	}
}

// Predicate tests event content (attribute values, kind). Predicates are
// part of the query, not of the utility model: eSPICE deliberately treats
// the operator as a black box and learns from types and positions only.
type Predicate func(e event.Event) bool

// Step is one element of a sequence pattern.
//
// A step with AnyN == 0 matches exactly one event whose type is in Types
// (any type if Types is empty) and which satisfies Pred. A step with
// AnyN = n > 0 is the "any" operator: it matches n events from Types (any
// types if empty), in any order, optionally requiring pairwise-distinct
// types — e.g. seq(STR; any(n, DF1..DFm)) from query Q1.
//
// Three further operator classes from the event specification languages
// the paper builds on (Tesla, Snoop, SASE — Section 2):
//
//   - All marks a conjunction step: every listed type must occur (in any
//     order) before the next step may match.
//   - Neg marks a negation step: the match is valid only if no event
//     accepted by the step occurs between the surrounding positive steps
//     (or, for a trailing negation, before the window closes).
//   - Cumulative (final step only) collects every matching event from
//     the preceding step's match to the window end, with AnyN as the
//     minimum count — Snoop's cumulative selection.
type Step struct {
	Types      []event.Type
	AnyN       int
	Distinct   bool
	All        bool
	Neg        bool
	Cumulative bool
	Pred       Predicate
}

// Pattern is a sequence of steps with selection and consumption policies.
//
// An Anchored pattern requires its first step to match the window's
// opening event (position 0). This expresses queries whose windows are
// opened by a logical predicate on exactly the pattern's leading event —
// e.g. Q1's "a new window is opened for each incoming striker event" —
// so that a window opened by one striker cannot be satisfied by a later
// possession of the other striker drifting mid-window.
type Pattern struct {
	Name        string
	Steps       []Step
	Selection   SelectionPolicy
	Consumption ConsumptionPolicy
	Anchored    bool
}

// Match is one detected complex event: the constituent primitive events
// with their positions in the window.
type Match struct {
	Constituents []window.Entry
}

// Seqs returns the constituent sequence numbers, in match order. Two
// matches with equal Seqs in the same window denote the same complex
// event; the quality metrics key on this.
func (m Match) Seqs() []uint64 {
	out := make([]uint64, len(m.Constituents))
	for i, c := range m.Constituents {
		out[i] = c.Ev.Seq
	}
	return out
}

// Compiled is a validated pattern with per-step type bitsets precomputed
// for O(1) type membership tests during matching. A Compiled is immutable
// after Compile and safe to share across goroutines; all per-match
// working memory lives in a caller-owned MatchScratch.
type Compiled struct {
	p      Pattern
	sets   []*stepTypes // nil => wildcard
	width  int          // total events a full match consumes
	hasNeg bool         // negation requires the backtracker
}

// Compile validates the pattern and prepares it for matching.
func Compile(p Pattern) (*Compiled, error) {
	if len(p.Steps) == 0 {
		return nil, fmt.Errorf("pattern %q: no steps", p.Name)
	}
	if p.Anchored && p.Steps[0].AnyN > 0 {
		return nil, fmt.Errorf("pattern %q: anchored pattern cannot start with an any step", p.Name)
	}
	for i, s := range p.Steps {
		if s.Neg && p.Selection == SelectLast {
			return nil, fmt.Errorf("pattern %q step %d: negation is not supported with the last selection policy", p.Name, i)
		}
		if s.Cumulative && p.Selection == SelectLast {
			return nil, fmt.Errorf("pattern %q step %d: cumulative selection requires the first selection policy", p.Name, i)
		}
	}
	c := &Compiled{p: p, sets: make([]*stepTypes, len(p.Steps))}
	for i, s := range p.Steps {
		if s.AnyN < 0 {
			return nil, fmt.Errorf("pattern %q step %d: negative AnyN %d", p.Name, i, s.AnyN)
		}
		for _, t := range s.Types {
			if t < 0 {
				return nil, fmt.Errorf("pattern %q step %d: invalid type id %d", p.Name, i, t)
			}
		}
		if s.AnyN > 0 && s.Distinct && len(s.Types) > 0 && s.AnyN > len(s.Types) {
			return nil, fmt.Errorf("pattern %q step %d: AnyN %d exceeds %d distinct types",
				p.Name, i, s.AnyN, len(s.Types))
		}
		if s.Neg {
			if s.AnyN > 0 || s.All || s.Cumulative {
				return nil, fmt.Errorf("pattern %q step %d: negation cannot combine with any/all/cumulative", p.Name, i)
			}
			if i == 0 && p.Anchored {
				return nil, fmt.Errorf("pattern %q: anchored pattern cannot start with negation", p.Name)
			}
			if i > 0 && p.Steps[i-1].Neg {
				return nil, fmt.Errorf("pattern %q step %d: adjacent negation steps", p.Name, i)
			}
			c.hasNeg = true
		}
		if s.All {
			if len(s.Types) == 0 {
				return nil, fmt.Errorf("pattern %q step %d: conjunction needs explicit types", p.Name, i)
			}
			if s.AnyN > 0 {
				return nil, fmt.Errorf("pattern %q step %d: conjunction cannot combine with AnyN", p.Name, i)
			}
		}
		if s.Cumulative {
			if i != len(p.Steps)-1 {
				return nil, fmt.Errorf("pattern %q step %d: cumulative is only valid on the final step", p.Name, i)
			}
			if s.Neg {
				return nil, fmt.Errorf("pattern %q step %d: cumulative cannot be negated", p.Name, i)
			}
		}
		if len(s.Types) > 0 {
			// Type ids were validated non-negative above.
			c.sets[i] = newStepTypes(s.Types)
		}
		switch {
		case s.Neg:
			// consumes no events
		case s.All:
			c.width += len(s.Types)
		case s.AnyN > 0:
			c.width += s.AnyN
		default:
			c.width++
		}
	}
	if c.hasNeg && onlyNegSteps(p.Steps) {
		return nil, fmt.Errorf("pattern %q: needs at least one positive step", p.Name)
	}
	return c, nil
}

func onlyNegSteps(steps []Step) bool {
	for _, s := range steps {
		if !s.Neg {
			return false
		}
	}
	return true
}

// MustCompile is Compile that panics on error; for use with
// statically-known-correct patterns in tests and query constructors.
func MustCompile(p Pattern) *Compiled {
	c, err := Compile(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Pattern returns the source pattern.
func (c *Compiled) Pattern() Pattern { return c.p }

// Width returns the number of primitive events in a full match.
func (c *Compiled) Width() int { return c.width }

// stepAccepts reports whether entry e can satisfy step i.
func (c *Compiled) stepAccepts(i int, e event.Event) bool {
	if set := c.sets[i]; set != nil && !set.has(e.Type) {
		return false
	}
	if pred := c.p.Steps[i].Pred; pred != nil {
		return pred(e)
	}
	return true
}

// Match finds at most one match in the window entries according to the
// pattern's selection policy — the paper's evaluation setting of one
// complex event per window. Entries must be in window order. The returned
// constituents are freshly scoped to this call; hot paths should use
// MatchWith with a reused scratch instead.
func (c *Compiled) Match(entries []window.Entry) (Match, bool) {
	var s MatchScratch
	return c.MatchWith(&s, entries)
}

// MatchWith is Match using caller-owned scratch memory: in steady state
// (warm scratch) it performs no allocation. The returned Match's
// Constituents alias the scratch and are only valid until the next
// MatchWith/MatchAllWith call with the same scratch; copy them (e.g. via
// Seqs) before that if they must outlive it.
func (c *Compiled) MatchWith(s *MatchScratch, entries []window.Entry) (Match, bool) {
	s.consts = s.consts[:0]
	if !c.matchOnce(s, entries) {
		return Match{}, false
	}
	return Match{Constituents: s.consts}, true
}

// matchOnce dispatches one match attempt per the selection policy,
// appending the constituents to s.consts.
func (c *Compiled) matchOnce(s *MatchScratch, entries []window.Entry) bool {
	if c.p.Anchored {
		return c.matchAnchored(s, entries)
	}
	if c.hasNeg {
		return c.matchWithNeg(s, entries, 0, 0)
	}
	switch c.p.Selection {
	case SelectLast:
		return c.matchLast(s, entries, 0, 0)
	default:
		return c.matchFirst(s, entries, 0, 0, false)
	}
}

// matchAnchored requires the first step to match the window opener
// (position 0); the remaining steps follow the selection policy. If
// shedding dropped the opening event, the match fails — the pattern's
// anchor is gone.
func (c *Compiled) matchAnchored(s *MatchScratch, entries []window.Entry) bool {
	if len(entries) == 0 || entries[0].Pos != 0 || !c.stepAccepts(0, entries[0].Ev) {
		return false
	}
	base := len(s.consts)
	s.consts = append(s.consts, entries[0])
	if len(c.p.Steps) == 1 {
		return true
	}
	ok := false
	switch {
	case c.hasNeg:
		ok = c.matchWithNeg(s, entries, 1, 1)
	case c.p.Selection == SelectLast:
		ok = c.matchLast(s, entries, 1, 1)
	default:
		ok = c.matchFirst(s, entries, 1, 1, false)
	}
	if !ok {
		s.consts = s.consts[:base]
	}
	return ok
}

// matchFirst performs greedy skip-till-next matching of steps[stepStart:]
// from entry index `from`, choosing the earliest instances and appending
// them to s.consts. With useSkip, s.skip marks entry indices that are
// consumed and unavailable. Greedy earliest selection is complete for
// sequence patterns: if any match exists, the greedy one exists (standard
// exchange argument).
func (c *Compiled) matchFirst(s *MatchScratch, entries []window.Entry, stepStart, from int, useSkip bool) bool {
	base := len(s.consts)
	i := from
	for si := stepStart; si < len(c.p.Steps); si++ {
		st := &c.p.Steps[si]
		if st.All {
			// Conjunction: collect one event of every required type, any
			// order (earliest instances).
			need := s.loadStep(st.Types)
			for ; i < len(entries) && need > 0; i++ {
				if useSkip && s.skip[i] {
					continue
				}
				e := entries[i].Ev
				if !s.setHas(e.Type) {
					continue
				}
				if st.Pred != nil && !st.Pred(e) {
					continue
				}
				s.consts = append(s.consts, entries[i])
				s.setRemove(e.Type)
				need--
			}
			if need > 0 {
				s.consts = s.consts[:base]
				return false
			}
			continue
		}
		if st.Cumulative {
			// Cumulative selection: every matching event to the window
			// end, at least max(1, AnyN) of them.
			min := st.AnyN
			if min < 1 {
				min = 1
			}
			if st.Distinct {
				s.loadStep(nil) // taken set starts empty
			}
			got := 0
			for ; i < len(entries); i++ {
				if useSkip && s.skip[i] {
					continue
				}
				e := entries[i].Ev
				if !c.stepAccepts(si, e) {
					continue
				}
				if st.Distinct && !s.takeDistinct(e.Type) {
					continue
				}
				s.consts = append(s.consts, entries[i])
				got++
			}
			if got < min {
				s.consts = s.consts[:base]
				return false
			}
			continue
		}
		if st.AnyN == 0 {
			found := false
			for ; i < len(entries); i++ {
				if useSkip && s.skip[i] {
					continue
				}
				if c.stepAccepts(si, entries[i].Ev) {
					s.consts = append(s.consts, entries[i])
					i++
					found = true
					break
				}
			}
			if !found {
				s.consts = s.consts[:base]
				return false
			}
			continue
		}
		// "any" step: collect the next AnyN acceptable events.
		if st.Distinct {
			s.loadStep(nil)
		}
		need := st.AnyN
		for ; i < len(entries) && need > 0; i++ {
			if useSkip && s.skip[i] {
				continue
			}
			e := entries[i].Ev
			if !c.stepAccepts(si, e) {
				continue
			}
			if st.Distinct && !s.takeDistinct(e.Type) {
				continue
			}
			s.consts = append(s.consts, entries[i])
			need--
		}
		if need > 0 {
			s.consts = s.consts[:base]
			return false
		}
	}
	return true
}

// matchLast chooses the latest instances for steps[stepStart:] over
// entries[entStart:]: it scans backward with the steps reversed, which is
// the mirror image of matchFirst and equally complete.
func (c *Compiled) matchLast(s *MatchScratch, entries []window.Entry, stepStart, entStart int) bool {
	base := len(s.consts)
	i := len(entries) - 1
	for si := len(c.p.Steps) - 1; si >= stepStart; si-- {
		st := &c.p.Steps[si]
		if st.All {
			// Conjunction with latest instances: scan backward collecting
			// one event of every required type.
			need := s.loadStep(st.Types)
			for ; i >= entStart && need > 0; i-- {
				e := entries[i].Ev
				if !s.setHas(e.Type) {
					continue
				}
				if st.Pred != nil && !st.Pred(e) {
					continue
				}
				s.consts = append(s.consts, entries[i])
				s.setRemove(e.Type)
				need--
			}
			if need > 0 {
				s.consts = s.consts[:base]
				return false
			}
			continue
		}
		if st.AnyN == 0 {
			found := false
			for ; i >= entStart; i-- {
				if c.stepAccepts(si, entries[i].Ev) {
					s.consts = append(s.consts, entries[i])
					i--
					found = true
					break
				}
			}
			if !found {
				s.consts = s.consts[:base]
				return false
			}
			continue
		}
		if st.Distinct {
			s.loadStep(nil)
		}
		need := st.AnyN
		for ; i >= entStart && need > 0; i-- {
			e := entries[i].Ev
			if !c.stepAccepts(si, e) {
				continue
			}
			if st.Distinct && !s.takeDistinct(e.Type) {
				continue
			}
			s.consts = append(s.consts, entries[i])
			need--
		}
		if need > 0 {
			s.consts = s.consts[:base]
			return false
		}
	}
	// Reverse the appended tail into window order.
	for l, r := base, len(s.consts)-1; l < r; l, r = l+1, r-1 {
		s.consts[l], s.consts[r] = s.consts[r], s.consts[l]
	}
	return true
}

// MatchAll finds every match under the pattern's consumption policy, in
// stream order, up to limit matches (limit <= 0 means no limit). Under
// Consumed, matched instances are excluded from later matches; under
// ConsumeZero, instances may be reused, with successive matches anchored
// at successive occurrences of the first step (skip-till-next semantics).
func (c *Compiled) MatchAll(entries []window.Entry, limit int) []Match {
	var s MatchScratch
	return c.MatchAllWith(&s, entries, limit, nil)
}

// MatchAllWith is MatchAll with caller-owned scratch: matches are
// appended to out and returned. In steady state only the out slice (and
// the shared constituent backing, when a window yields more matches than
// any before it) may grow. All returned Constituents alias the scratch
// and are valid until the next MatchWith/MatchAllWith call with s.
func (c *Compiled) MatchAllWith(s *MatchScratch, entries []window.Entry, limit int, out []Match) []Match {
	s.consts = s.consts[:0]
	if c.p.Anchored || c.hasNeg {
		// An anchored pattern has a unique anchor (the window opener);
		// negation patterns report a single earliest match (interval
		// constraints make multi-match enumeration ambiguous).
		if c.matchOnce(s, entries) {
			out = append(out, Match{Constituents: s.consts})
		}
		return out
	}
	switch c.p.Consumption {
	case Consumed:
		s.resetSkip(len(entries))
		for {
			base := len(s.consts)
			if !c.matchFirst(s, entries, 0, 0, true) {
				break
			}
			m := Match{Constituents: s.consts[base:]}
			out = append(out, m)
			for _, ct := range m.Constituents {
				// Mark consumed entries by index: entries are in window
				// order, so the position locates the index in O(log n).
				if i := indexOfPos(entries, ct.Pos); i >= 0 {
					s.skip[i] = true
				}
			}
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	default: // ConsumeZero
		from := 0
		for from < len(entries) {
			// Find the next anchor (first-step occurrence) at or after from.
			anchor := -1
			for i := from; i < len(entries); i++ {
				if c.stepAccepts(0, entries[i].Ev) {
					anchor = i
					break
				}
			}
			if anchor < 0 {
				break
			}
			base := len(s.consts)
			if !c.matchFirst(s, entries, 0, anchor, false) {
				break
			}
			out = append(out, Match{Constituents: s.consts[base:]})
			if limit > 0 && len(out) >= limit {
				break
			}
			from = anchor + 1
		}
	}
	return out
}

// TypeWeights describes how often each event type is required by the
// pattern — the "repetition of primitive events in the pattern" statistic
// the BL baseline shedder builds its per-type utilities from. Types listed
// in an "any" step share the step's weight; wildcard "any" steps
// contribute Wildcard weight to be spread over observed types by frequency.
type TypeWeights struct {
	PerType  map[event.Type]float64
	Wildcard float64
}

// TypeWeights computes the pattern's type repetition weights.
func (c *Compiled) TypeWeights() TypeWeights {
	w := TypeWeights{PerType: make(map[event.Type]float64)}
	for _, s := range c.p.Steps {
		if s.Neg {
			continue // absence requirements add no per-type demand
		}
		if s.All {
			// Conjunction needs one event of *every* listed type.
			for _, t := range s.Types {
				w.PerType[t]++
			}
			continue
		}
		weight := 1.0
		if s.AnyN > 0 {
			weight = float64(s.AnyN)
		}
		if len(s.Types) == 0 {
			w.Wildcard += weight
			continue
		}
		share := weight / float64(len(s.Types))
		for _, t := range s.Types {
			w.PerType[t] += share
		}
	}
	return w
}
