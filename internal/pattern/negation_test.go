package pattern

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/window"
)

const (
	tA = event.Type(0)
	tB = event.Type(1)
	tC = event.Type(2)
	tD = event.Type(3)
)

func negPattern(t *testing.T) *Compiled {
	t.Helper()
	// seq(A; !B; C): A then C with no B in between.
	return MustCompile(Pattern{
		Steps: []Step{
			{Types: []event.Type{tA}},
			{Types: []event.Type{tB}, Neg: true},
			{Types: []event.Type{tC}},
		},
	})
}

func TestNegationValidation(t *testing.T) {
	cases := []struct {
		name string
		p    Pattern
	}{
		{"neg with anyN", Pattern{Steps: []Step{
			{Types: []event.Type{tA}},
			{Types: []event.Type{tB}, Neg: true, AnyN: 2},
		}}},
		{"neg with all", Pattern{Steps: []Step{
			{Types: []event.Type{tA}},
			{Types: []event.Type{tB}, Neg: true, All: true},
		}}},
		{"adjacent negs", Pattern{Steps: []Step{
			{Types: []event.Type{tA}},
			{Types: []event.Type{tB}, Neg: true},
			{Types: []event.Type{tC}, Neg: true},
			{Types: []event.Type{tD}},
		}}},
		{"only negs", Pattern{Steps: []Step{{Types: []event.Type{tA}, Neg: true}}}},
		{"anchored leading neg", Pattern{
			Steps:    []Step{{Types: []event.Type{tA}, Neg: true}, {Types: []event.Type{tB}}},
			Anchored: true,
		}},
		{"neg with last policy", Pattern{
			Steps: []Step{
				{Types: []event.Type{tA}},
				{Types: []event.Type{tB}, Neg: true},
				{Types: []event.Type{tC}},
			},
			Selection: SelectLast,
		}},
		{"cumulative not final", Pattern{Steps: []Step{
			{Types: []event.Type{tA}, Cumulative: true},
			{Types: []event.Type{tB}},
		}}},
		{"cumulative with last", Pattern{
			Steps:     []Step{{Types: []event.Type{tA}}, {Types: []event.Type{tB}, Cumulative: true}},
			Selection: SelectLast,
		}},
		{"conjunction without types", Pattern{Steps: []Step{{All: true}}}},
		{"conjunction with anyN", Pattern{Steps: []Step{{Types: []event.Type{tA}, All: true, AnyN: 2}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Compile(tc.p); err == nil {
				t.Errorf("expected compile error")
			}
		})
	}
}

func TestNegationBasic(t *testing.T) {
	c := negPattern(t)
	// Clean gap: match.
	m, ok := c.Match(entries(tA, tD, tC))
	if !ok {
		t.Fatal("no match")
	}
	if got, want := seqs(m), []uint64{0, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
	// B in the gap: no match.
	if _, ok := c.Match(entries(tA, tB, tC)); ok {
		t.Error("negated event in gap must block the match")
	}
	// B before A is irrelevant.
	if _, ok := c.Match(entries(tB, tA, tC)); !ok {
		t.Error("negation only constrains the gap")
	}
	// B after C is irrelevant.
	if _, ok := c.Match(entries(tA, tC, tB)); !ok {
		t.Error("negation does not constrain after the next step")
	}
}

func TestNegationBacktracksOverAnchors(t *testing.T) {
	// Stream A B A C: the first A is blocked by B, but the second A
	// completes — greedy would fail, the backtracker must not.
	c := negPattern(t)
	m, ok := c.Match(entries(tA, tB, tA, tC))
	if !ok {
		t.Fatal("backtracking match failed")
	}
	if got, want := seqs(m), []uint64{2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
}

func TestTrailingNegation(t *testing.T) {
	// seq(A; C; !B): no B between C and window close.
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{tA}},
		{Types: []event.Type{tC}},
		{Types: []event.Type{tB}, Neg: true},
	}})
	if _, ok := c.Match(entries(tA, tC, tD)); !ok {
		t.Error("clean tail should match")
	}
	if _, ok := c.Match(entries(tA, tC, tB)); ok {
		t.Error("negated event in tail must block")
	}
	// Backtracking to a later C that avoids the tail B is impossible
	// here (B is last), but an earlier B can be skipped by choosing the
	// later C: stream A C B C -> choose second C? B before second C is
	// in the A..C gap? No: gap between A and C has no constraint (no neg
	// there); tail after second C is clean -> match.
	m, ok := c.Match(entries(tA, tC, tB, tC))
	if !ok {
		t.Fatal("should match via the second C")
	}
	if got, want := seqs(m), []uint64{0, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
}

func TestNegationWithAnchored(t *testing.T) {
	c := MustCompile(Pattern{
		Steps: []Step{
			{Types: []event.Type{tA}},
			{Types: []event.Type{tB}, Neg: true},
			{Types: []event.Type{tC}},
		},
		Anchored: true,
	})
	if m, ok := c.Match(entries(tA, tD, tC)); !ok || len(m.Constituents) != 2 {
		t.Errorf("anchored negation match = %v, %v", m, ok)
	}
	if _, ok := c.Match(entries(tA, tB, tC)); ok {
		t.Error("blocked gap")
	}
	if _, ok := c.Match(entries(tD, tA, tC)); ok {
		t.Error("anchor must hold")
	}
}

func TestNegationMatchAllSingle(t *testing.T) {
	c := negPattern(t)
	ms := c.MatchAll(entries(tA, tC, tA, tC), 0)
	if len(ms) != 1 {
		t.Fatalf("negation MatchAll = %d matches, want 1", len(ms))
	}
}

func TestConjunctionFirst(t *testing.T) {
	// seq(A; all(B,C)): B and C in any order after A.
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{tA}},
		{Types: []event.Type{tB, tC}, All: true},
	}})
	m, ok := c.Match(entries(tA, tC, tD, tB))
	if !ok {
		t.Fatal("no match")
	}
	if got, want := seqs(m), []uint64{0, 1, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
	// Missing one required type: no match.
	if _, ok := c.Match(entries(tA, tC, tC)); ok {
		t.Error("conjunction requires every type")
	}
	if c.Width() != 3 {
		t.Errorf("Width = %d, want 3", c.Width())
	}
}

func TestConjunctionLast(t *testing.T) {
	c := MustCompile(Pattern{
		Steps: []Step{
			{Types: []event.Type{tA}},
			{Types: []event.Type{tB, tC}, All: true},
		},
		Selection: SelectLast,
	})
	// Latest instances: B(4), C(3), with A(0) before them.
	m, ok := c.Match(entries(tA, tB, tC, tC, tB))
	if !ok {
		t.Fatal("no match")
	}
	if got, want := seqs(m), []uint64{0, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
}

func TestCumulativeSelection(t *testing.T) {
	// seq(A; cumulative B+): all Bs after the first A, at least 2.
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{tA}},
		{Types: []event.Type{tB}, AnyN: 2, Cumulative: true},
	}})
	m, ok := c.Match(entries(tA, tB, tC, tB, tB))
	if !ok {
		t.Fatal("no match")
	}
	if got, want := seqs(m), []uint64{0, 1, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
	// Below the minimum: no match.
	if _, ok := c.Match(entries(tA, tB)); ok {
		t.Error("cumulative minimum not enforced")
	}
	// Distinct cumulative keeps one per type.
	cd := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{tA}},
		{Distinct: true, Cumulative: true}, // wildcard, one per type
	}})
	m, ok = cd.Match(entries(tA, tB, tB, tC))
	if !ok {
		t.Fatal("no match")
	}
	if len(m.Constituents) != 3 { // A is consumed by step 0; B, C collected (B dedup'd)
		t.Errorf("constituents = %d, want 3", len(m.Constituents))
	}
}

func TestConjunctionTypeWeights(t *testing.T) {
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{tA}},
		{Types: []event.Type{tB, tC}, All: true},
		{Types: []event.Type{tD}, Neg: true},
		{Types: []event.Type{tA}},
	}})
	w := c.TypeWeights()
	if w.PerType[tB] != 1 || w.PerType[tC] != 1 {
		t.Errorf("conjunction weights = %v", w.PerType)
	}
	if w.PerType[tA] != 2 {
		t.Errorf("A weight = %v, want 2", w.PerType[tA])
	}
	if w.PerType[tD] != 0 {
		t.Errorf("negated type weight = %v, want 0", w.PerType[tD])
	}
}

// bruteForceNeg checks seq(A; !B; C) semantics by exhaustive search.
func bruteForceNeg(types []event.Type) bool {
	for i, a := range types {
		if a != tA {
			continue
		}
		for k := i + 1; k < len(types); k++ {
			if types[k] != tC {
				continue
			}
			clean := true
			for g := i + 1; g < k; g++ {
				if types[g] == tB {
					clean = false
					break
				}
			}
			if clean {
				return true
			}
		}
	}
	return false
}

// Property: the backtracking matcher agrees with brute force on random
// streams for the canonical negation pattern.
func TestNegationCompletenessProperty(t *testing.T) {
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{tA}},
		{Types: []event.Type{tB}, Neg: true},
		{Types: []event.Type{tC}},
	}})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25)
		types := make([]event.Type, n)
		for i := range types {
			types[i] = event.Type(rng.Intn(4))
		}
		ents := entries(types...)
		_, got := c.Match(ents)
		return got == bruteForceNeg(types)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNegationWithAnyStep(t *testing.T) {
	// seq(A; !B; any 2 of C, D): gap constraint applies up to the first
	// event of the any-collection.
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{tA}},
		{Types: []event.Type{tB}, Neg: true},
		{Types: []event.Type{tC, tD}, AnyN: 2, Distinct: true},
	}})
	m, ok := c.Match(entries(tA, tC, tB, tD))
	if !ok {
		t.Fatal("no match: B after the any-step's first event is allowed")
	}
	if got, want := seqs(m), []uint64{0, 1, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("constituents = %v, want %v", got, want)
	}
	if _, ok := c.Match(entries(tA, tB, tC, tD)); ok {
		t.Error("B before the collection must block")
	}
	// Insufficient any events: backtracker must fail cleanly.
	if _, ok := c.Match(entries(tA, tC)); ok {
		t.Error("any(2) needs two events")
	}
}

func TestNegationWithConjunction(t *testing.T) {
	// seq(A; !D; all of B, C).
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{tA}},
		{Types: []event.Type{tD}, Neg: true},
		{Types: []event.Type{tB, tC}, All: true},
	}})
	m, ok := c.Match(entries(tA, tC, tD, tB))
	if !ok {
		t.Fatal("no match: D after the conjunction started is allowed")
	}
	if len(m.Constituents) != 3 {
		t.Errorf("constituents = %v", seqs(m))
	}
	if _, ok := c.Match(entries(tA, tD, tB, tC)); ok {
		t.Error("D before the conjunction must block")
	}
	// Incomplete conjunction fails.
	if _, ok := c.Match(entries(tA, tB, tB)); ok {
		t.Error("conjunction needs every type")
	}
}

func TestNegationWithCumulative(t *testing.T) {
	// seq(A; !B; cumulative 2 of C).
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{tA}},
		{Types: []event.Type{tB}, Neg: true},
		{Types: []event.Type{tC}, AnyN: 2, Cumulative: true},
	}})
	m, ok := c.Match(entries(tA, tC, tC, tC))
	if !ok {
		t.Fatal("no match")
	}
	if len(m.Constituents) != 4 {
		t.Errorf("cumulative should take all Cs: %v", seqs(m))
	}
	if _, ok := c.Match(entries(tA, tB, tC, tC)); ok {
		t.Error("B in the gap must block")
	}
	if _, ok := c.Match(entries(tA, tC)); ok {
		t.Error("cumulative minimum not met")
	}
	// Distinct cumulative under negation.
	cd := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{tA}},
		{Types: []event.Type{tB}, Neg: true},
		{Types: []event.Type{tC, tD}, AnyN: 2, Distinct: true, Cumulative: true},
	}})
	m, ok = cd.Match(entries(tA, tC, tC, tD))
	if !ok {
		t.Fatal("no match")
	}
	if len(m.Constituents) != 3 {
		t.Errorf("distinct cumulative = %v", seqs(m))
	}
}

func TestNegationWildcard(t *testing.T) {
	// seq(A; !*; C): nothing at all may sit between A and C.
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{tA}},
		{Neg: true},
		{Types: []event.Type{tC}},
	}})
	if _, ok := c.Match(entries(tA, tC)); !ok {
		t.Error("adjacent A,C should match")
	}
	if _, ok := c.Match(entries(tA, tD, tC)); ok {
		t.Error("any intervening event must block")
	}
}

func TestNegationPredicate(t *testing.T) {
	// Negation with a content predicate: only rising B blocks.
	rising := func(e event.Event) bool { return e.Kind == event.KindRising }
	c := MustCompile(Pattern{Steps: []Step{
		{Types: []event.Type{tA}},
		{Types: []event.Type{tB}, Neg: true, Pred: rising},
		{Types: []event.Type{tC}},
	}})
	ents := []window.Entry{
		{Ev: event.Event{Seq: 0, Type: tA}, Pos: 0},
		{Ev: event.Event{Seq: 1, Type: tB, Kind: event.KindFalling}, Pos: 1},
		{Ev: event.Event{Seq: 2, Type: tC}, Pos: 2},
	}
	if _, ok := c.Match(ents); !ok {
		t.Error("falling B must not block")
	}
	ents[1].Ev.Kind = event.KindRising
	if _, ok := c.Match(ents); ok {
		t.Error("rising B must block")
	}
}
