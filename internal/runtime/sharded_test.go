package runtime

import (
	"context"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/operator"
	"repro/internal/window"
)

// runCollect runs the pipeline over the stream and returns its output in
// emission order.
func runCollect(t *testing.T, cfg Config, events []event.Event) ([]operator.ComplexEvent, Stats) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	var detected []operator.ComplexEvent
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for ce := range p.Out() {
			detected = append(detected, ce)
		}
	}()
	p.SubmitBatch(events)
	p.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	<-collected
	return detected, p.Stats()
}

// deterministicStream builds a fixed A/B stream whose windows overlap
// (Slide < Count), so every event fans out to several shards.
func deterministicStream(n int) []event.Event {
	events := make([]event.Event, n)
	for i := range events {
		events[i] = event.Event{
			Seq:  uint64(i),
			TS:   event.Time(i) * event.Millisecond,
			Type: event.Type(i % 2),
		}
	}
	return events
}

func overlappingOpConfig() operator.Config {
	cfg := opConfig(nil)
	cfg.Window = window.Spec{Mode: window.ModeCount, Count: 10, Slide: 5}
	return cfg
}

// TestShardedMatchesSerial asserts (a) that a 4-shard pipeline produces
// exactly the serial pipeline's complex events, in the same order, on a
// deterministic stream, and (b) that the merged output arrives in
// window-close order. Run with -race to exercise the router/shard/merge
// handoffs.
func TestShardedMatchesSerial(t *testing.T) {
	harness.VerifyNoLeaks(t)
	events := deterministicStream(2000)
	serial, _ := runCollect(t, Config{Operator: overlappingOpConfig()}, events)
	if len(serial) == 0 {
		t.Fatal("serial run detected nothing; bad test setup")
	}
	for _, shards := range []int{2, 4} {
		sharded, st := runCollect(t, Config{Operator: overlappingOpConfig(), Shards: shards}, events)
		if !reflect.DeepEqual(serial, sharded) {
			t.Fatalf("shards=%d: output differs from serial (%d vs %d complex events)",
				shards, len(sharded), len(serial))
		}
		// Count windows of one fixed size close in open order, so
		// window-close order means non-decreasing window IDs.
		for i := 1; i < len(sharded); i++ {
			if sharded[i].WindowID < sharded[i-1].WindowID {
				t.Fatalf("shards=%d: complex event %d out of window-close order: %d after %d",
					shards, i, sharded[i].WindowID, sharded[i-1].WindowID)
			}
		}
		if len(st.Shards) != shards {
			t.Fatalf("shards=%d: Stats has %d shard entries", shards, len(st.Shards))
		}
		var kept uint64
		for _, ss := range st.Shards {
			kept += ss.Kept
		}
		if kept != st.Operator.MembershipsKept || kept == 0 {
			t.Errorf("shards=%d: per-shard kept %d != rollup %d", shards, kept, st.Operator.MembershipsKept)
		}
		if st.Processed != uint64(len(events)) {
			t.Errorf("shards=%d: processed %d events, want %d", shards, st.Processed, len(events))
		}
	}
}

// TestShardedLatencySamples asserts every event contributes exactly one
// latency sample in sharded mode, as in the serial path.
func TestShardedLatencySamples(t *testing.T) {
	harness.VerifyNoLeaks(t)
	events := deterministicStream(500)
	p, err := New(Config{Operator: overlappingOpConfig(), Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	go func() {
		for range p.Out() {
		}
	}()
	p.SubmitBatch(events)
	p.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := p.Latency().Len(); got != len(events) {
		t.Errorf("latency samples = %d, want %d", got, len(events))
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative QueueCap", Config{Operator: opConfig(nil), QueueCap: -1}},
		{"negative OutBuffer", Config{Operator: opConfig(nil), OutBuffer: -5}},
		{"negative Shards", Config{Operator: opConfig(nil), Shards: -2}},
		{"decider count mismatch", Config{
			Operator: opConfig(nil), Shards: 2,
			ShardDeciders: []operator.Decider{nil, nil, nil},
		}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
	// Zero values still mean "use defaults".
	if _, err := New(Config{Operator: opConfig(nil)}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestSubmitBatchCountsOnce(t *testing.T) {
	harness.VerifyNoLeaks(t)
	p, err := New(Config{Operator: opConfig(nil)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	go func() {
		for range p.Out() {
		}
	}()
	events := deterministicStream(100)
	p.SubmitBatch(events[:60])
	p.SubmitBatch(events[60:])
	p.SubmitBatch(nil)
	p.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Submitted != 100 || st.Processed != 100 {
		t.Errorf("stats after batches: %+v", st)
	}
}

// TestShardedShedsUnderOverload is the sharded twin of
// TestPipelineShedsUnderOverload: per-shard shedders commanded in
// lockstep by the aggregate detector through a MultiController.
func TestShardedShedsUnderOverload(t *testing.T) {
	harness.VerifyNoLeaks(t)
	const shards = 2
	model := trainedTestModel(t)
	deciders := make([]operator.Decider, shards)
	ctrl := make(MultiController, shards)
	for i := range deciders {
		s, err := core.NewShedder(model)
		if err != nil {
			t.Fatal(err)
		}
		deciders[i] = s
		ctrl[i] = shedController{s}
	}
	det, err := core.NewOverloadDetector(core.DetectorConfig{
		LatencyBound: 50 * event.Millisecond,
		F:            0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Operator:        opConfig(nil),
		Shards:          shards,
		ShardDeciders:   deciders,
		Detector:        det,
		Controller:      ctrl,
		PollInterval:    2 * time.Millisecond,
		ProcessingDelay: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	go func() {
		for range p.Out() {
		}
	}()
	p.SubmitBatch(deterministicStream(3000))
	p.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Operator.MembershipsShed == 0 {
		t.Error("overloaded sharded pipeline must shed")
	}
	if st.Throughput <= 0 || st.InputRate <= 0 {
		t.Errorf("estimates not populated: %+v", st)
	}
	for i, ss := range st.Shards {
		if ss.Memberships == 0 {
			t.Errorf("shard %d saw no memberships", i)
		}
	}
}

func TestShardedContextCancel(t *testing.T) {
	harness.VerifyNoLeaks(t)
	p, err := New(Config{Operator: overlappingOpConfig(), Shards: 4,
		ProcessingDelay: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()
	go func() {
		for range p.Out() {
		}
	}()
	p.SubmitBatch(deterministicStream(5000))
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sharded Run did not return after cancel")
	}
}

func ExamplePipeline_sharded() {
	p, err := New(Config{Operator: overlappingOpConfig(), Shards: 4})
	if err != nil {
		panic(err)
	}
	go p.Run(context.Background())
	go func() {
		p.SubmitBatch(deterministicStream(40))
		p.CloseInput()
	}()
	n := 0
	for range p.Out() {
		n++
	}
	fmt.Println("complex events:", n)
	// Output: complex events: 8
}

// TestShardedWindowReuseHookIntegrity churns thousands of pooled windows
// through a sharded pipeline with an OnWindowClose hook and asserts the
// hook always observes live (un-poisoned, in-range) data: a shard must
// never recycle a window into its pool before the hook is done with it.
// The hook runs on the shard goroutines — concurrently across shards,
// per the sharded OnWindowClose contract — so its counters are atomic.
// Run with -race to exercise the full handoff.
func TestShardedWindowReuseHookIntegrity(t *testing.T) {
	harness.VerifyNoLeaks(t)
	var hookWindows, hookEntries, badEntries atomic.Int64
	cfg := overlappingOpConfig()
	cfg.OnWindowClose = func(w *window.Window, matched []window.Entry) {
		hookWindows.Add(1)
		if !w.Closed() {
			badEntries.Add(1)
		}
		lastPos := -1
		for _, ent := range w.Kept {
			hookEntries.Add(1)
			if ent.Pos <= lastPos || ent.Pos >= w.Size() {
				badEntries.Add(1)
			}
			lastPos = ent.Pos
			if ent.Ev.Type != event.Type(ent.Ev.Seq%2) {
				badEntries.Add(1) // poisoned or cross-window data
			}
		}
		for _, ent := range matched {
			if ent.Pos < 0 || ent.Pos >= w.Size() {
				badEntries.Add(1)
			}
		}
	}
	events := deterministicStream(6000)
	detected, st := runCollect(t, Config{Operator: cfg, Shards: 4}, events)
	if len(detected) == 0 {
		t.Fatal("no complex events; bad test setup")
	}
	if hookWindows.Load() == 0 || hookEntries.Load() == 0 {
		t.Fatal("hook never ran")
	}
	if n := badEntries.Load(); n != 0 {
		t.Fatalf("%d poisoned/corrupt entries observed in OnWindowClose", n)
	}
	if uint64(hookWindows.Load()) != st.Operator.WindowsClosed {
		t.Errorf("hook saw %d windows, closed %d", hookWindows.Load(), st.Operator.WindowsClosed)
	}
}
