package runtime

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/window"
)

const (
	typeA = event.Type(0)
	typeB = event.Type(1)
)

func opConfig(shed operator.Decider) operator.Config {
	p := pattern.MustCompile(pattern.Pattern{
		Name: "seq(A;B)",
		Steps: []pattern.Step{
			{Types: []event.Type{typeA}},
			{Types: []event.Type{typeB}},
		},
	})
	return operator.Config{
		Window:   window.Spec{Mode: window.ModeCount, Count: 10, Slide: 10},
		Patterns: []*pattern.Compiled{p},
		Shedder:  shed,
	}
}

func TestNewValidation(t *testing.T) {
	det, _ := core.NewOverloadDetector(core.DetectorConfig{LatencyBound: event.Second, F: 0.8})
	if _, err := New(Config{Operator: opConfig(nil), Detector: det}); err == nil {
		t.Error("detector without controller must fail")
	}
	if _, err := New(Config{Operator: operator.Config{}}); err == nil {
		t.Error("invalid operator config must fail")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	harness.VerifyNoLeaks(t)
	p, err := New(Config{Operator: opConfig(nil)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()

	var detected []operator.ComplexEvent
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for ce := range p.Out() {
			detected = append(detected, ce)
		}
	}()

	const n = 200
	for i := 0; i < n; i++ {
		p.Submit(event.Event{Seq: uint64(i), Type: event.Type(i % 2)})
	}
	p.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	<-collected
	if len(detected) != n/10 {
		t.Errorf("detected %d complex events, want %d", len(detected), n/10)
	}
	st := p.Stats()
	if st.Submitted != n || st.Processed != n {
		t.Errorf("stats: %+v", st)
	}
	if p.Latency().Len() != n {
		t.Errorf("latency samples = %d", p.Latency().Len())
	}
}

func TestPipelineContextCancel(t *testing.T) {
	harness.VerifyNoLeaks(t)
	p, err := New(Config{Operator: opConfig(nil)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()
	p.Submit(event.Event{Seq: 0, Type: typeA})
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

func TestRunTwiceFails(t *testing.T) {
	p, err := New(Config{Operator: opConfig(nil)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	go func() {
		for range p.Out() {
		}
	}()
	// Give the first Run a beat to register.
	time.Sleep(20 * time.Millisecond)
	if err := p.Run(context.Background()); err == nil {
		t.Error("second Run must fail")
	}
	p.CloseInput()
	<-done
}

func TestPipelineShedsUnderOverload(t *testing.T) {
	harness.VerifyNoLeaks(t)
	// Artificial per-membership delay of 200µs caps throughput at
	// ~5000 ev/s; submitting much faster builds the queue and must
	// trigger shedding with a tight latency bound.
	model := trainedTestModel(t)
	shedder, err := core.NewShedder(model)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewOverloadDetector(core.DetectorConfig{
		LatencyBound: 50 * event.Millisecond,
		F:            0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Operator:        opConfig(shedder),
		Detector:        det,
		Controller:      shedController{shedder},
		PollInterval:    2 * time.Millisecond,
		ProcessingDelay: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	go func() {
		for range p.Out() {
		}
	}()
	// Submit 3000 events as fast as possible (≫ 5k ev/s).
	for i := 0; i < 3000; i++ {
		p.Submit(event.Event{Seq: uint64(i), Type: event.Type(i % 2)})
	}
	p.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Operator.MembershipsShed == 0 {
		t.Error("overloaded pipeline must shed")
	}
	if st.Throughput <= 0 || st.InputRate <= 0 {
		t.Errorf("estimates not populated: %+v", st)
	}
}

// shedController wires detector decisions to a core shedder (the same
// logic as harness.ESPICEController without the import cycle).
type shedController struct{ s *core.Shedder }

func (c shedController) OnDecision(dec core.Decision) {
	if dec.Overloaded && dec.X > 0 {
		_ = c.s.Configure(dec.Part, dec.X)
		return
	}
	c.s.Deactivate()
}

// trainedTestModel builds a tiny uniform model where every event is
// sheddable.
func trainedTestModel(t *testing.T) *core.Model {
	t.Helper()
	ut, err := core.NewUtilityTable(2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	shares := [][]float64{make([]float64, 10), make([]float64, 10)}
	for p := 0; p < 10; p++ {
		shares[0][p], shares[1][p] = 0.5, 0.5
	}
	m, err := core.NewModelFromTable(ut, shares)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEstimateRatesWithoutDetector checks that EstimateRates keeps the
// rate/throughput estimators alive with no detector attached, on both
// the serial and the sharded path — the multi-query engine's global
// budget reads these estimates from outside the pipeline.
func TestEstimateRatesWithoutDetector(t *testing.T) {
	harness.VerifyNoLeaks(t)
	for _, shards := range []int{1, 2} {
		p, err := New(Config{
			Operator:        opConfig(nil),
			EstimateRates:   true,
			Shards:          shards,
			PollInterval:    2 * time.Millisecond,
			ProcessingDelay: 20 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- p.Run(context.Background()) }()
		go func() {
			for range p.Out() {
			}
		}()
		for i := 0; i < 4000; i++ {
			p.Submit(event.Event{Seq: uint64(i), TS: event.Time(i), Type: event.Type(i % 2)})
			if i%100 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
		st := p.Stats()
		p.CloseInput()
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		if st.InputRate <= 0 {
			t.Errorf("shards=%d: InputRate not estimated: %+v", shards, st)
		}
		if st.Throughput <= 0 {
			t.Errorf("shards=%d: Throughput not estimated: %+v", shards, st)
		}
	}
}

// TestBackpressureEventBound pins the event-based QueueCap bound: mixed
// Submit/SubmitBatch producers against a slow pump may overshoot by at
// most one chunk each, every producer eventually unblocks (condvar
// wake-on-drain, no missed wakeups), and nothing is lost.
func TestBackpressureEventBound(t *testing.T) {
	harness.VerifyNoLeaks(t)
	const (
		queueCap  = 64
		producers = 4
		perProd   = 600
	)
	p, err := New(Config{
		Operator: opConfig(nil),
		QueueCap: queueCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	go func() {
		for range p.Out() {
		}
	}()

	var maxSeen atomic.Int64
	stopWatch := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopWatch:
				return
			default:
				if q := p.qlen.Load(); q > maxSeen.Load() {
					maxSeen.Store(q)
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				for j := 0; j < perProd; j++ {
					p.Submit(event.Event{Seq: uint64(i*perProd + j), TS: event.Time(j)})
				}
				return
			}
			batch := make([]event.Event, perProd)
			for j := range batch {
				batch[j] = event.Event{Seq: uint64(i*perProd + j), TS: event.Time(j)}
			}
			p.SubmitBatch(batch)
		}(i)
	}
	wg.Wait()
	close(stopWatch)
	p.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Processed != producers*perProd {
		t.Fatalf("processed %d events, want %d", st.Processed, producers*perProd)
	}
	// Each producer may overshoot by at most one chunk past the bound.
	limit := int64(queueCap + producers*submitChunk)
	if got := maxSeen.Load(); got > limit {
		t.Errorf("backlog peaked at %d events, want <= %d", got, limit)
	}
}
