package runtime

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/parallel"
	"repro/internal/window"
)

// shard is one parallel operator instance. It owns every window the
// partitioner assigned to it — open, membership add, shed decision,
// close, matching and pool recycling all happen on the shard goroutine,
// against shard-local state — and it replays the partitioner's compiled
// op stream in FIFO order, which is what makes slot recycling and the
// per-window open→member→close ordering safe without locks.
type shard struct {
	id      int
	pipe    *Pipeline        // back-pointer for panic containment (guard.go)
	in      chan *shardBatch // op batches from the partitioner
	recycle chan *shardBatch // drained batches handed back for reuse
	// adopt is the shard's steal ring: when the partitioner reassigns a
	// window to this shard, the previous owner pushes the window struct
	// here and this shard's adopt op receives it. At most one steal per
	// thief is in flight (pendingAdopts), so the push never blocks.
	adopt   chan *window.Window
	decider operator.Decider
	batched operator.BatchingDecider // non-nil when decider batches counters
	matcher *operator.Matcher        // per-shard match scratch
	// merger re-serializes this shard's closed-window results into
	// global window-close order; set by runSharded before the shard
	// goroutine starts.
	merger *parallel.EpochMerger[[]operator.ComplexEvent]
	// hook is the user OnWindowClose hook. It runs on the shard
	// goroutine, so with Shards > 1 it must be safe for concurrent calls
	// (one per shard); the matched entries alias the shard's match
	// scratch exactly as on the serial path.
	hook operator.WindowCloseHook
	// tap feeds the shard's window closes to the online model lifecycle
	// (nil when disabled); per-shard statistics accumulate without
	// contention and merge at (re)train time.
	tap   *operator.FeedbackTap
	delay time.Duration

	// wins maps partitioner-assigned slots to the shard's live windows;
	// pool recycles them shard-locally, so no closed window is ever lost
	// to a full cross-goroutine release channel again.
	wins []*window.Window
	pool window.Pool

	// latBuf collects the batch's latency samples; they fold into the
	// lock-protected trace once per batch instead of once per sample.
	latBuf []latSample

	memberships      atomic.Uint64
	kept             atomic.Uint64
	shed             atomic.Uint64
	queued           atomic.Int64 // memberships staged but not yet processed
	windowsClosed    atomic.Uint64
	complexEvents    atomic.Uint64
	windowsWithMatch atomic.Uint64
	busyNanos        atomic.Int64
	thEst            atomic.Uint64 // float64 bits

	// Skew-aware scale-out state: occupancy is the partitioner's
	// placement estimate (summed expected sizes of owned open windows,
	// updated under the partitioner mutex), steals counts adopted
	// windows, and pendingAdopts caps in-flight steals to this shard at
	// one (incremented at staging, decremented when the adopt op
	// actually receives from the ring).
	occupancy     atomic.Int64
	steals        atomic.Uint64
	pendingAdopts atomic.Int32

	mu      sync.Mutex
	latency metrics.LatencyTrace
}

type latSample struct{ ts, lat event.Time }

// snapshot reads the shard counters. QueueLen reports the staged
// memberships (not batches), matching the serial pipeline's event-based
// backlog accounting up to the windowing overlap factor.
func (s *shard) snapshot() ShardStats {
	return ShardStats{
		Memberships:      s.memberships.Load(),
		Kept:             s.kept.Load(),
		Shed:             s.shed.Load(),
		WindowsClosed:    s.windowsClosed.Load(),
		ComplexEvents:    s.complexEvents.Load(),
		WindowsWithMatch: s.windowsWithMatch.Load(),
		QueueLen:         int(s.queued.Load()),
		PoolMisses:       s.pool.Misses(),
		PoolGets:         s.pool.Gets(),
		PoolPuts:         s.pool.Puts(),
		Steals:           s.steals.Load(),
		Occupancy:        s.occupancy.Load(),
		Throughput:       loadFloat(&s.thEst),
	}
}

// tallyFlushBatch caps how many shedding decisions a shard accumulates
// locally before folding them into the shedder's shared atomic counters.
const tallyFlushBatch = 1024

// ensureSlot grows the window slot array to cover slot.
func (s *shard) ensureSlot(slot int) {
	for len(s.wins) <= slot {
		s.wins = append(s.wins, nil)
	}
}

// run drains the shard's batch queue until the partitioner closes it.
// After a context cancel — or a panic tripping the pipeline, on this
// shard or any other — it keeps draining but skips all work, so a
// blocked partitioner send always completes and teardown never
// deadlocks. Shedding counters are tallied locally and flushed when the
// queue momentarily drains or every tallyFlushBatch decisions.
func (s *shard) run(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	var decisions, drops uint64
	flush := func() {
		if decisions > 0 {
			s.batched.TallyDecisions(decisions, drops)
			decisions, drops = 0, 0
		}
	}
	defer flush()
	for b := range s.in {
		if ctx.Err() != nil || s.pipe.failed.Load() {
			s.drainBatch(b)
			continue
		}
		s.processBatch(b, &decisions, &drops)
		if decisions >= tallyFlushBatch || len(s.in) == 0 {
			flush()
		}
	}
}

// drainBatch disposes of a batch without processing after a cancel or a
// contained panic. Steal-handoff ops must still be serviced — an evict
// that is never pushed would wedge the thief blocked on its ring, and
// an adopt that is never received would strand the victim's push — so
// the drain walks the ops and completes every rendezvous (the abort
// channel, closed on cancel/panic, breaks pairs whose other half was
// dropped with an unflushed batch).
func (s *shard) drainBatch(b *shardBatch) {
	for _, op := range b.ops {
		switch op.kind & opKindMask {
		case opEvict:
			var w *window.Window
			if int(op.slot) < len(s.wins) {
				w, s.wins[op.slot] = s.wins[op.slot], nil
			}
			s.pipe.shards[op.a].adopt <- w
		case opAdopt:
			select {
			case <-s.adopt:
				s.pendingAdopts.Add(-1)
			case <-s.pipe.abort:
			}
		}
	}
	s.queued.Add(-int64(b.members))
}

// abortSteals unblocks every steal-ring rendezvous whose counterpart op
// will never be processed (dropped with a canceled batch or unwound by
// a panic). Idempotent; a no-op for serial pipelines.
func (p *Pipeline) abortSteals() {
	if p.abort != nil {
		p.abortOnce.Do(func() { close(p.abort) })
	}
}

// processBatch replays one op batch against the shard's windows, under
// the panic guard: a panic anywhere in it — shed decider, matcher,
// close hook — trips the pipeline and drops the rest of the batch, and
// run falls into drain mode on the next iteration.
func (s *shard) processBatch(b *shardBatch, decisions, drops *uint64) {
	defer s.recoverBatch(b)
	start := time.Now()
	var kept, shed, members uint64
	var out []parallel.EpochResult[[]operator.ComplexEvent]
	haveOut := false
	for _, op := range b.ops {
		switch op.kind & opKindMask {
		case opMember:
			w := s.wins[op.slot]
			if w == nil {
				continue // adopt aborted mid-teardown; pipeline is dying
			}
			w.Arrivals++
			members++
			ev := b.events[op.evIdx]
			dropped := operator.ShedDecision(s.decider, s.batched, ev.Type, int(op.pos),
				w.ExpectedSize, decisions, drops)
			if dropped {
				w.Dropped++
				shed++
			} else {
				w.Add(ev, int(op.pos))
				kept++
				if s.delay > 0 {
					time.Sleep(s.delay)
				}
			}
			if op.kind&opSampleFlag != 0 {
				now := time.Now()
				s.latBuf = append(s.latBuf, latSample{
					ts:  event.Time(now.UnixMicro()),
					lat: event.Time(now.Sub(b.arrived).Microseconds()),
				})
			}
		case opOpen:
			w := s.pool.Get()
			ev := b.events[op.evIdx]
			w.ID = window.ID(op.a)
			w.OpenSeq = ev.Seq
			w.OpenTS = ev.TS
			w.ExpectedSize = int(op.b)
			s.ensureSlot(int(op.slot))
			s.wins[op.slot] = w
		case opClose:
			w := s.wins[op.slot]
			s.wins[op.slot] = nil
			if w == nil {
				continue // adopt aborted mid-teardown; merger emits the prefix
			}
			if !haveOut {
				out = s.merger.Batch()
				haveOut = true
			}
			out = append(out, parallel.EpochResult[[]operator.ComplexEvent]{
				Epoch: op.a,
				Val:   s.closeOwned(w, event.Time(op.b)),
			})
		case opEvict:
			// Ownership handoff, donor side: push the window — buffered
			// entries, counters and its pool entry — to the thief's steal
			// ring and forget it. Future ops for this window (memberships,
			// close) were staged to the thief after its adopt op.
			w := s.wins[op.slot]
			s.wins[op.slot] = nil
			s.pipe.shards[op.a].adopt <- w
		case opAdopt:
			// Ownership handoff, thief side: receive the stolen window into
			// a fresh local slot. Blocks until the donor processes its evict
			// (always strictly earlier in staging order, so this cannot
			// deadlock); the abort channel breaks the wait if the pipeline
			// dies with the evict unflushed.
			var w *window.Window
			select {
			case w = <-s.adopt:
				s.pendingAdopts.Add(-1)
				if w != nil {
					s.steals.Add(1)
				}
			case <-s.pipe.abort:
			}
			s.ensureSlot(int(op.slot))
			s.wins[op.slot] = w
		}
	}
	s.memberships.Add(members)
	if kept > 0 {
		s.kept.Add(kept)
	}
	if shed > 0 {
		s.shed.Add(shed)
	}
	// Zero the membership count the moment it is accounted, so the
	// panic guard (which decrements by b.members) stays exactly-once no
	// matter where in the batch a panic lands.
	s.queued.Add(-int64(b.members))
	b.members = 0
	s.busyNanos.Add(time.Since(start).Nanoseconds())
	if len(s.latBuf) > 0 {
		s.mu.Lock()
		for _, ls := range s.latBuf {
			s.latency.Add(ls.ts, ls.lat)
		}
		s.mu.Unlock()
		s.latBuf = s.latBuf[:0]
	}
	// Publish the batch's closes in one rendezvous — empty epochs
	// included, the merge stage needs every epoch to stay contiguous.
	if len(out) > 0 {
		s.merger.Publish(out)
	}
	b.ops, b.events = b.ops[:0], b.events[:0]
	select {
	case s.recycle <- b:
	default:
	}
}

// closeOwned mirrors operator.closeWindow for one shard-owned window:
// seal, match, tap, hook, recycle. The returned complex events are the
// window's merge payload; they reference no window memory, so the
// window goes straight back to the shard's pool — release is local and
// never lossy.
func (s *shard) closeOwned(w *window.Window, now event.Time) []operator.ComplexEvent {
	s.windowsClosed.Add(1)
	w.MarkClosed()
	ces, matched, found := s.matcher.MatchClosed(w, now, nil)
	if found {
		s.windowsWithMatch.Add(1)
	}
	if s.tap != nil {
		s.tap.OnWindowClose(w, matched)
	}
	if s.hook != nil {
		s.hook(w, matched)
	}
	s.complexEvents.Add(uint64(len(ces)))
	s.pool.Put(w)
	return ces
}

// runSharded is the Shards > 1 body of Run. The data path itself lives
// in the submitters (partitioning) and the shards (window ownership);
// Run only assembles the merge stage, the detector and the lifecycle,
// then waits for the input to be sealed or the context to end.
func (p *Pipeline) runSharded(ctx context.Context) error {
	defer close(p.out)

	merger := parallel.NewEpochMerger(4*len(p.shards), func(ces []operator.ComplexEvent) {
		for _, ce := range ces {
			select {
			case p.out <- ce:
			case <-ctx.Done():
				return
			}
		}
	})
	var wg sync.WaitGroup
	for _, s := range p.shards {
		s.merger = merger
		wg.Add(1)
		go s.run(ctx, &wg)
	}
	stopLifecycle := p.startLifecycle()

	var detectorStop, detectorDone chan struct{}
	if p.cfg.Detector != nil || p.cfg.EstimateRates {
		detectorStop = make(chan struct{})
		detectorDone = make(chan struct{})
		go p.shardedDetectorLoop(detectorStop, detectorDone)
	}

	var err error
	select {
	case <-ctx.Done():
		err = ctx.Err()
		p.part.cancel()
	case <-p.part.done:
	}
	// The shard channels are closed (cancel or close sealed them), so
	// the shards drain and exit; then no producer holds the merger.
	wg.Wait()
	merger.Close()
	if detectorStop != nil {
		close(detectorStop)
		<-detectorDone
	}
	stopLifecycle()
	if err == nil {
		// A contained panic (in a shard or in the partitioner inline in
		// a submitter) outranks a clean drain.
		if pe := p.panicErr.Load(); pe != nil {
			return pe
		}
	}
	return err
}

// shardedDetectorLoop is the Shards > 1 counterpart of detectorLoop: the
// input rate is estimated from the aggregate submitted counter, the
// unshed capacity as the sum of per-shard service-rate estimates, and
// one decision per tick is forwarded to the controller — commanding all
// shedders in lockstep when the controller is a MultiController.
func (p *Pipeline) shardedDetectorLoop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(p.cfg.PollInterval)
	defer ticker.Stop()

	lastKept := make([]uint64, len(p.shards))
	lastBusy := make([]int64, len(p.shards))
	var lastSubmitted uint64
	lastTime := time.Now()
	const alpha = 0.3 // EWMA smoothing, as in the serial detector loop
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			wall := now.Sub(lastTime).Seconds()
			if wall <= 0 {
				continue
			}
			lastTime = now

			submitted := p.submitted.Load()
			storeEWMA(&p.rateEst, float64(submitted-lastSubmitted)/wall, alpha)
			lastSubmitted = submitted

			// kbar is the global memberships-per-event overlap factor;
			// see detectorLoop for why throughput is measured per kept
			// membership and scaled by it.
			var memberships uint64
			for _, s := range p.shards {
				memberships += s.memberships.Load()
			}
			kbar := 0.0
			if processed := p.processed.Load(); processed > 0 {
				kbar = float64(memberships) / float64(processed)
			}

			total := 0.0
			for i, s := range p.shards {
				kept := s.kept.Load()
				busy := s.busyNanos.Load()
				if busyDelta := busy - lastBusy[i]; busyDelta > 0 && kept > lastKept[i] && kbar > 0 {
					perKept := float64(kept-lastKept[i]) / (float64(busyDelta) / 1e9)
					storeEWMA(&s.thEst, perKept/kbar, alpha)
				}
				lastKept[i], lastBusy[i] = kept, busy
				total += loadFloat(&s.thEst)
			}
			p.thEst.Store(floatToBits(total))
			if total <= 0 || p.cfg.Detector == nil {
				continue
			}
			dec := p.cfg.Detector.Evaluate(p.backlogEvents(kbar), loadFloat(&p.rateEst), total,
				p.windowSizeEstimate())
			p.cfg.Controller.OnDecision(dec)
		}
	}
}

// backlogEvents converts the shards' membership-denominated backlog into
// events, the unit detectorLoop and the engine budget reason in: the
// staged queue counts every (event, window) incidence, which overstates
// the backlog by the windowing overlap factor kbar.
func (p *Pipeline) backlogEvents(kbar float64) int {
	var queued int64
	for _, s := range p.shards {
		queued += s.queued.Load()
	}
	if kbar > 1 {
		return int(float64(queued)/kbar + 0.5)
	}
	return int(queued)
}
