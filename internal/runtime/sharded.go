package runtime

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/parallel"
	"repro/internal/pattern"
	"repro/internal/window"
)

// shardMsg is one unit of work for a shard: a membership to shed-or-add,
// or (when ticket is set) a window close to match.
type shardMsg struct {
	w *window.Window

	// Membership fields.
	ev  event.Event
	pos int
	// arrived/recordLat carry the latency sample for the event's first
	// membership, so each event is sampled exactly once as in the serial
	// path.
	arrived   time.Time
	recordLat bool

	// Close fields. The ticket is the window's reserved slot in the
	// ordered output stage; the shard completes it with the match result.
	now    event.Time
	ticket *parallel.Ticket[shardResult]
}

// shardResult is what a shard hands the ordered merge stage for one
// closed window.
type shardResult struct {
	w       *window.Window
	ces     []operator.ComplexEvent
	matched []window.Entry
}

// shard is one parallel operator instance: it owns the windows assigned
// to it (round-robin by window ID), applies its shedder to their
// memberships, pays the per-kept-membership processing cost and runs the
// matcher when the router closes one of its windows. All window mutation
// for a given window happens on its owning shard's goroutine; the router
// only opens windows and assigns positions.
type shard struct {
	id         int
	in         chan shardMsg
	decider    operator.Decider
	patterns   []*pattern.Compiled
	maxMatches int
	delay      time.Duration

	memberships      atomic.Uint64
	kept             atomic.Uint64
	shed             atomic.Uint64
	windowsClosed    atomic.Uint64
	complexEvents    atomic.Uint64
	windowsWithMatch atomic.Uint64
	busyNanos        atomic.Int64
	thEst            atomic.Uint64 // float64 bits

	mu      sync.Mutex
	latency metrics.LatencyTrace
}

// snapshot reads the shard counters.
func (s *shard) snapshot() ShardStats {
	return ShardStats{
		Memberships:      s.memberships.Load(),
		Kept:             s.kept.Load(),
		Shed:             s.shed.Load(),
		WindowsClosed:    s.windowsClosed.Load(),
		ComplexEvents:    s.complexEvents.Load(),
		WindowsWithMatch: s.windowsWithMatch.Load(),
		QueueLen:         len(s.in),
		Throughput:       loadFloat(&s.thEst),
	}
}

// run drains the shard queue until it is closed. After a context cancel
// it keeps draining but skips all work, completing any pending close
// tickets with empty results so the merge stage can shut down.
func (s *shard) run(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	for m := range s.in {
		if m.ticket != nil {
			s.closeWindow(ctx, m)
			continue
		}
		if ctx.Err() != nil {
			continue
		}
		start := time.Now()
		s.memberships.Add(1)
		if s.decider != nil && s.decider.Drop(m.ev.Type, m.pos, m.w.ExpectedSize) {
			m.w.Dropped++
			s.shed.Add(1)
		} else {
			m.w.Add(m.ev, m.pos)
			s.kept.Add(1)
			if s.delay > 0 {
				time.Sleep(s.delay)
			}
		}
		s.busyNanos.Add(time.Since(start).Nanoseconds())
		if m.recordLat {
			lat := time.Since(m.arrived)
			s.mu.Lock()
			s.latency.Add(event.Time(start.UnixMicro()), event.Time(lat.Microseconds()))
			s.mu.Unlock()
		}
	}
}

// closeWindow mirrors operator.closeWindow for one shard-owned window
// and completes the window's merge ticket with the result.
func (s *shard) closeWindow(ctx context.Context, m shardMsg) {
	res := shardResult{w: m.w}
	if ctx.Err() != nil {
		m.ticket.Complete(res)
		return
	}
	start := time.Now()
	s.windowsClosed.Add(1)
	var found bool
	res.ces, res.matched, found = operator.MatchWindow(s.patterns, s.maxMatches, m.w, m.now, nil, nil)
	if found {
		s.windowsWithMatch.Add(1)
	}
	s.complexEvents.Add(uint64(len(res.ces)))
	s.busyNanos.Add(time.Since(start).Nanoseconds())
	m.ticket.Complete(res)
}

// runSharded is the Shards > 1 body of Run: it routes events from the
// input queue through the central window manager, fans memberships out
// to the owning shards and merges complex events back in window-close
// order.
func (p *Pipeline) runSharded(ctx context.Context) error {
	defer close(p.out)

	var wg sync.WaitGroup
	for _, s := range p.shards {
		wg.Add(1)
		go s.run(ctx, &wg)
	}
	seq := parallel.NewSequencer(4*len(p.shards), func(r shardResult) {
		if hook := p.cfg.Operator.OnWindowClose; hook != nil {
			hook(r.w, r.matched)
		}
		for _, ce := range r.ces {
			select {
			case p.out <- ce:
			case <-ctx.Done():
				return
			}
		}
	})
	// Shard queues close after the router stops (the router is their only
	// sender); every opened ticket is either queued or completed inline,
	// so the sequencer always drains.
	defer func() {
		for _, s := range p.shards {
			close(s.in)
		}
		wg.Wait()
		seq.Close()
	}()

	if p.cfg.Detector != nil || p.cfg.EstimateRates {
		detectorDone := make(chan struct{})
		detectorStop := make(chan struct{})
		go p.shardedDetectorLoop(detectorStop, detectorDone)
		defer func() {
			close(detectorStop)
			<-detectorDone
		}()
	}

	shardOf := func(w *window.Window) *shard {
		return p.shards[int(w.ID)%len(p.shards)]
	}
	sendClose := func(w *window.Window, now event.Time) {
		t := seq.Open()
		select {
		case shardOf(w).in <- shardMsg{w: w, now: now, ticket: t}:
		case <-ctx.Done():
			t.Complete(shardResult{w: w})
		}
	}

	var lastTS event.Time
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case q, ok := <-p.in:
			if !ok {
				for _, w := range p.mgr.Flush() {
					sendClose(w, lastTS)
				}
				return nil
			}
			member, closed := p.mgr.Route(q.ev)
			for i, mb := range member {
				msg := shardMsg{
					w: mb.W, ev: q.ev, pos: mb.Pos,
					arrived: q.arrived, recordLat: i == 0,
				}
				select {
				case shardOf(mb.W).in <- msg:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			if len(member) == 0 {
				// No shard sees this event; sample its latency here so
				// every event still contributes exactly one sample.
				now := time.Now()
				p.mu.Lock()
				p.latency.Add(event.Time(now.UnixMicro()),
					event.Time(now.Sub(q.arrived).Microseconds()))
				p.mu.Unlock()
			}
			p.processed.Add(1)
			lastTS = q.ev.TS
			for _, w := range closed {
				sendClose(w, q.ev.TS)
			}
		}
	}
}

// shardedDetectorLoop is the Shards > 1 counterpart of detectorLoop: the
// input rate is estimated from the aggregate submitted counter, the
// unshed capacity as the sum of per-shard service-rate estimates, and
// one decision per tick is forwarded to the controller — commanding all
// shedders in lockstep when the controller is a MultiController.
func (p *Pipeline) shardedDetectorLoop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(p.cfg.PollInterval)
	defer ticker.Stop()

	lastKept := make([]uint64, len(p.shards))
	lastBusy := make([]int64, len(p.shards))
	var lastSubmitted uint64
	lastTime := time.Now()
	const alpha = 0.3 // EWMA smoothing, as in the serial detector loop
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			wall := now.Sub(lastTime).Seconds()
			if wall <= 0 {
				continue
			}
			lastTime = now

			submitted := p.submitted.Load()
			storeEWMA(&p.rateEst, float64(submitted-lastSubmitted)/wall, alpha)
			lastSubmitted = submitted

			// kbar is the global memberships-per-event overlap factor;
			// see detectorLoop for why throughput is measured per kept
			// membership and scaled by it.
			var memberships uint64
			for _, s := range p.shards {
				memberships += s.memberships.Load()
			}
			kbar := 0.0
			if processed := p.processed.Load(); processed > 0 {
				kbar = float64(memberships) / float64(processed)
			}

			total := 0.0
			for i, s := range p.shards {
				kept := s.kept.Load()
				busy := s.busyNanos.Load()
				if busyDelta := busy - lastBusy[i]; busyDelta > 0 && kept > lastKept[i] && kbar > 0 {
					perKept := float64(kept-lastKept[i]) / (float64(busyDelta) / 1e9)
					storeEWMA(&s.thEst, perKept/kbar, alpha)
				}
				lastKept[i], lastBusy[i] = kept, busy
				total += loadFloat(&s.thEst)
			}
			p.thEst.Store(floatToBits(total))
			if total <= 0 || p.cfg.Detector == nil {
				continue
			}
			qlen := len(p.in)
			for _, s := range p.shards {
				qlen += len(s.in)
			}
			dec := p.cfg.Detector.Evaluate(qlen, loadFloat(&p.rateEst), total,
				p.windowSizeEstimate())
			p.cfg.Controller.OnDecision(dec)
		}
	}
}
