package runtime

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/parallel"
	"repro/internal/window"
)

// shardMsgCap bounds how many of one event's memberships a single shard
// message bundles: with overlapping windows an event belongs to several
// windows owned by the same shard, and bundling them shares one channel
// rendezvous. Overflow simply flushes an extra message.
const shardMsgCap = 8

// shardMsg is one unit of work for a shard: a bundle of one event's
// memberships to shed-or-add, or (when ticket is set) a window close to
// match.
type shardMsg struct {
	// Membership fields: the event belongs to wins[:n] at poss[:n]. The
	// arrays are inline so a bundle costs no allocation.
	ev   event.Event
	n    int32
	poss [shardMsgCap]int32
	wins [shardMsgCap]*window.Window
	// arrived/recordLat carry the latency sample for one of the event's
	// messages, so each event is sampled exactly once as in the serial
	// path.
	arrived   time.Time
	recordLat bool

	// Close fields. The ticket is the window's reserved slot in the
	// ordered output stage; the shard completes it with the match result.
	w      *window.Window
	now    event.Time
	ticket *parallel.Ticket[shardResult]
}

// shardResult is what a shard hands the ordered merge stage for one
// closed window.
type shardResult struct {
	w       *window.Window
	ces     []operator.ComplexEvent
	matched []window.Entry
}

// shard is one parallel operator instance: it owns the windows assigned
// to it (round-robin by window ID), applies its shedder to their
// memberships, pays the per-kept-membership processing cost and runs the
// matcher when the router closes one of its windows. All window mutation
// for a given window happens on its owning shard's goroutine; the router
// only opens windows and assigns positions.
type shard struct {
	id      int
	in      chan shardMsg
	decider operator.Decider
	batched operator.BatchingDecider // non-nil when decider batches counters
	matcher *operator.Matcher        // per-shard match scratch
	// wantMatched records whether an OnWindowClose hook consumes matched
	// entries; only then does a close copy them out of the match scratch.
	wantMatched bool
	// tap feeds the shard's window closes to the online model lifecycle
	// (nil when disabled). It observes on the shard goroutine, before the
	// close result crosses to the merge stage, so per-shard statistics
	// accumulate without contention.
	tap   *operator.FeedbackTap
	delay time.Duration

	memberships      atomic.Uint64
	kept             atomic.Uint64
	shed             atomic.Uint64
	queued           atomic.Int64 // memberships routed but not yet processed
	windowsClosed    atomic.Uint64
	complexEvents    atomic.Uint64
	windowsWithMatch atomic.Uint64
	busyNanos        atomic.Int64
	thEst            atomic.Uint64 // float64 bits

	mu      sync.Mutex
	latency metrics.LatencyTrace
}

// snapshot reads the shard counters. QueueLen reports the queued
// memberships (not bundled messages), matching the serial pipeline's
// event-based backlog accounting.
func (s *shard) snapshot() ShardStats {
	return ShardStats{
		Memberships:      s.memberships.Load(),
		Kept:             s.kept.Load(),
		Shed:             s.shed.Load(),
		WindowsClosed:    s.windowsClosed.Load(),
		ComplexEvents:    s.complexEvents.Load(),
		WindowsWithMatch: s.windowsWithMatch.Load(),
		QueueLen:         int(s.queued.Load()),
		Throughput:       loadFloat(&s.thEst),
	}
}

// tallyFlushBatch caps how many shedding decisions a shard accumulates
// locally before folding them into the shedder's shared atomic counters.
const tallyFlushBatch = 1024

// run drains the shard queue until it is closed. After a context cancel
// it keeps draining but skips all work, completing any pending close
// tickets with empty results so the merge stage can shut down. Shedding
// counters are tallied locally and flushed in batches — when the queue
// momentarily drains or every tallyFlushBatch decisions — instead of two
// contended atomic adds per membership.
func (s *shard) run(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	var decisions, drops uint64
	flush := func() {
		if decisions > 0 {
			s.batched.TallyDecisions(decisions, drops)
			decisions, drops = 0, 0
		}
	}
	defer flush()
	for m := range s.in {
		if m.ticket != nil {
			s.closeWindow(ctx, m)
			continue
		}
		if ctx.Err() != nil {
			s.queued.Add(-int64(m.n)) // drained, not processed
			continue
		}
		start := time.Now()
		var kept, shed uint64
		for i := 0; i < int(m.n); i++ {
			w, pos := m.wins[i], int(m.poss[i])
			dropped := operator.ShedDecision(s.decider, s.batched, m.ev.Type, pos, w.ExpectedSize,
				&decisions, &drops)
			if dropped {
				w.Dropped++
				shed++
			} else {
				w.Add(m.ev, pos)
				kept++
				if s.delay > 0 {
					time.Sleep(s.delay)
				}
			}
		}
		s.memberships.Add(uint64(m.n))
		s.queued.Add(-int64(m.n))
		if kept > 0 {
			s.kept.Add(kept)
		}
		if shed > 0 {
			s.shed.Add(shed)
		}
		s.busyNanos.Add(time.Since(start).Nanoseconds())
		if m.recordLat {
			lat := time.Since(m.arrived)
			s.mu.Lock()
			s.latency.Add(event.Time(start.UnixMicro()), event.Time(lat.Microseconds()))
			s.mu.Unlock()
		}
		if decisions >= tallyFlushBatch || len(s.in) == 0 {
			flush()
		}
	}
}

// closeWindow mirrors operator.closeWindow for one shard-owned window
// and completes the window's merge ticket with the result.
func (s *shard) closeWindow(ctx context.Context, m shardMsg) {
	res := shardResult{w: m.w}
	if ctx.Err() != nil {
		m.ticket.Complete(res)
		return
	}
	start := time.Now()
	s.windowsClosed.Add(1)
	var matched []window.Entry
	var found bool
	res.ces, matched, found = s.matcher.MatchClosed(m.w, m.now, nil)
	if found {
		s.windowsWithMatch.Add(1)
	}
	if s.tap != nil {
		// The tap reads the window and the scratch-aliased matched
		// entries synchronously; nothing is retained past this call.
		s.tap.OnWindowClose(m.w, matched)
	}
	if s.wantMatched && len(matched) > 0 {
		// matched aliases the shard's match scratch and the result crosses
		// to the merge goroutine, so the hook gets its own copy.
		res.matched = append([]window.Entry(nil), matched...)
	}
	s.complexEvents.Add(uint64(len(res.ces)))
	s.busyNanos.Add(time.Since(start).Nanoseconds())
	m.ticket.Complete(res)
}

// runSharded is the Shards > 1 body of Run: it routes events from the
// input queue through the central window manager, fans memberships out
// to the owning shards and merges complex events back in window-close
// order.
func (p *Pipeline) runSharded(ctx context.Context) error {
	defer close(p.out)

	var wg sync.WaitGroup
	for _, s := range p.shards {
		wg.Add(1)
		go s.run(ctx, &wg)
	}
	// Fully merged windows funnel back to the router for freelist reuse:
	// the window Manager is single-goroutine, so the merge stage may not
	// release windows itself. A full channel just means the router is
	// busy; the window is left to the garbage collector then.
	releases := make(chan *window.Window, 4*len(p.shards)+64)
	seq := parallel.NewSequencer(4*len(p.shards), func(r shardResult) {
		if hook := p.cfg.Operator.OnWindowClose; hook != nil {
			hook(r.w, r.matched)
		}
		for _, ce := range r.ces {
			select {
			case p.out <- ce:
			case <-ctx.Done():
				return
			}
		}
		select {
		case releases <- r.w:
		default:
		}
	})
	// Shard queues close after the router stops (the router is their only
	// sender); every opened ticket is either queued or completed inline,
	// so the sequencer always drains. The lifecycle supervisor stops
	// last, after the shards drained, so its final step sees every
	// sampled window.
	stopLifecycle := p.startLifecycle()
	defer func() {
		for _, s := range p.shards {
			close(s.in)
		}
		wg.Wait()
		seq.Close()
		stopLifecycle()
	}()

	if p.cfg.Detector != nil || p.cfg.EstimateRates {
		detectorDone := make(chan struct{})
		detectorStop := make(chan struct{})
		go p.shardedDetectorLoop(detectorStop, detectorDone)
		defer func() {
			close(detectorStop)
			<-detectorDone
		}()
	}

	shardOf := func(w *window.Window) *shard {
		return p.shards[int(w.ID)%len(p.shards)]
	}
	sendClose := func(w *window.Window, now event.Time) {
		t := seq.Open()
		select {
		case shardOf(w).in <- shardMsg{w: w, now: now, ticket: t}:
		case <-ctx.Done():
			t.Complete(shardResult{w: w})
		}
	}

	// pending accumulates one event's memberships per shard so that a
	// shard receives at most ceil(overlap/shardMsgCap) bundled messages
	// per event instead of one message per membership.
	pending := make([]shardMsg, len(p.shards))
	var lastTS event.Time
	routeOne := func(q queued) error {
		// Recycle windows the merge stage has fully retired.
		for drained := false; !drained; {
			select {
			case w := <-releases:
				p.mgr.Release(w)
			default:
				drained = true
			}
		}
		member, closed := p.mgr.Route(q.ev)
		wantSample := p.sampleLatency()
		sampled := false
		send := func(si int) error {
			msg := &pending[si]
			msg.ev = q.ev
			msg.arrived = q.arrived
			msg.recordLat = wantSample && !sampled
			sampled = true
			// Count the backlog before the send: the shard decrements
			// after processing, so the counter never dips negative.
			p.shards[si].queued.Add(int64(msg.n))
			var err error
			select {
			case p.shards[si].in <- *msg:
			case <-ctx.Done():
				p.shards[si].queued.Add(-int64(msg.n))
				err = ctx.Err()
			}
			msg.n = 0
			return err
		}
		for _, mb := range member {
			si := int(mb.W.ID) % len(p.shards)
			msg := &pending[si]
			if int(msg.n) == shardMsgCap {
				if err := send(si); err != nil {
					return err
				}
			}
			msg.wins[msg.n] = mb.W
			msg.poss[msg.n] = int32(mb.Pos)
			msg.n++
		}
		for si := range pending {
			if pending[si].n > 0 {
				if err := send(si); err != nil {
					return err
				}
			}
		}
		if wantSample && !sampled {
			// No shard sees this event; sample its latency here so every
			// sampled event still contributes exactly one sample.
			now := time.Now()
			p.mu.Lock()
			p.latency.Add(event.Time(now.UnixMicro()),
				event.Time(now.Sub(q.arrived).Microseconds()))
			p.mu.Unlock()
		}
		p.processed.Add(1)
		p.releaseSlot()
		lastTS = q.ev.TS
		for _, w := range closed {
			sendClose(w, q.ev.TS)
		}
		return nil
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case msg, ok := <-p.in:
			if !ok {
				for _, w := range p.mgr.Flush() {
					sendClose(w, lastTS)
				}
				return nil
			}
			if msg.batch == nil {
				if err := routeOne(msg.one); err != nil {
					return err
				}
				continue
			}
			for _, q := range msg.batch {
				if err := routeOne(q); err != nil {
					return err
				}
			}
		}
	}
}

// shardedDetectorLoop is the Shards > 1 counterpart of detectorLoop: the
// input rate is estimated from the aggregate submitted counter, the
// unshed capacity as the sum of per-shard service-rate estimates, and
// one decision per tick is forwarded to the controller — commanding all
// shedders in lockstep when the controller is a MultiController.
func (p *Pipeline) shardedDetectorLoop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(p.cfg.PollInterval)
	defer ticker.Stop()

	lastKept := make([]uint64, len(p.shards))
	lastBusy := make([]int64, len(p.shards))
	var lastSubmitted uint64
	lastTime := time.Now()
	const alpha = 0.3 // EWMA smoothing, as in the serial detector loop
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			wall := now.Sub(lastTime).Seconds()
			if wall <= 0 {
				continue
			}
			lastTime = now

			submitted := p.submitted.Load()
			storeEWMA(&p.rateEst, float64(submitted-lastSubmitted)/wall, alpha)
			lastSubmitted = submitted

			// kbar is the global memberships-per-event overlap factor;
			// see detectorLoop for why throughput is measured per kept
			// membership and scaled by it.
			var memberships uint64
			for _, s := range p.shards {
				memberships += s.memberships.Load()
			}
			kbar := 0.0
			if processed := p.processed.Load(); processed > 0 {
				kbar = float64(memberships) / float64(processed)
			}

			total := 0.0
			for i, s := range p.shards {
				kept := s.kept.Load()
				busy := s.busyNanos.Load()
				if busyDelta := busy - lastBusy[i]; busyDelta > 0 && kept > lastKept[i] && kbar > 0 {
					perKept := float64(kept-lastKept[i]) / (float64(busyDelta) / 1e9)
					storeEWMA(&s.thEst, perKept/kbar, alpha)
				}
				lastKept[i], lastBusy[i] = kept, busy
				total += loadFloat(&s.thEst)
			}
			p.thEst.Store(floatToBits(total))
			if total <= 0 || p.cfg.Detector == nil {
				continue
			}
			// Backlog = events not yet routed plus memberships queued at
			// the shards (bundling is invisible here by design).
			qlen := int(p.qlen.Load())
			for _, s := range p.shards {
				qlen += int(s.queued.Load())
			}
			dec := p.cfg.Detector.Evaluate(qlen, loadFloat(&p.rateEst), total,
				p.windowSizeEstimate())
			p.cfg.Controller.OnDecision(dec)
		}
	}
}
