package runtime

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/queries"
	"repro/internal/window"
)

// lcQuery is a 2-type seq(A;B) query over tumbling count windows.
func lcQuery(t testing.TB, count int) queries.Query {
	t.Helper()
	p, err := pattern.Compile(pattern.Pattern{
		Name:  "seq(A;B)",
		Steps: []pattern.Step{{Types: []event.Type{0}}, {Types: []event.Type{1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return queries.Query{
		Name:     "lc",
		Window:   window.Spec{Mode: window.ModeCount, Count: count, Slide: count},
		Patterns: []*pattern.Compiled{p},
		NumTypes: 2,
	}
}

func lcEvents(n int) []event.Event {
	events := make([]event.Event, n)
	for i := range events {
		events[i] = event.Event{Seq: uint64(i), TS: event.Time(i), Type: event.Type(i % 2)}
	}
	return events
}

// TestLifecycleShardMergeEquivalence: the per-shard tap builders, merged,
// must produce exactly the model a single offline builder produces on the
// same stream — shard distribution must not change what is learned.
func TestLifecycleShardMergeEquivalence(t *testing.T) {
	q := lcQuery(t, 20)
	events := lcEvents(4000)

	um, err := core.NewUntrainedModel(2, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	shed, err := core.NewShedder(um)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Operator: operator.Config{Window: q.Window, Patterns: q.Patterns, Shedder: shed},
		Shards:   4,
		Lifecycle: &LifecycleConfig{
			Types: 2,
			// Warm-up far beyond the stream: no mid-run build drains the
			// taps, so at the end they hold the full stream's statistics.
			WarmupWindows: 1 << 30,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	go func() {
		for range p.Out() {
		}
	}()
	p.SubmitBatch(events)
	p.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	l := p.Lifecycle()
	if l == nil {
		t.Fatal("lifecycle missing")
	}
	if got := l.Stats().Builds; got != 0 {
		t.Fatalf("unexpected build during warm-up hold: %d", got)
	}
	merged, err := core.NewModelBuilder(l.bcfg)
	if err != nil {
		t.Fatal(err)
	}
	var sampled uint64
	for _, tap := range l.taps {
		sampled += tap.WindowsSampled()
		if err := tap.DrainInto(merged); err != nil {
			t.Fatal(err)
		}
	}
	if sampled == 0 {
		t.Fatal("taps sampled nothing")
	}
	got, err := merged.Build()
	if err != nil {
		t.Fatal(err)
	}

	tr, err := harness.Train(q, events, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Model
	if got.Windows() != want.Windows() || got.Matches() != want.Matches() {
		t.Fatalf("coverage: merged %d/%d vs single %d/%d",
			got.Windows(), got.Matches(), want.Windows(), want.Matches())
	}
	for typ := 0; typ < 2; typ++ {
		for b := 0; b < want.UT().Bins(); b++ {
			if got.UT().At(event.Type(typ), b) != want.UT().At(event.Type(typ), b) {
				t.Errorf("UT[%d][%d]: merged %d vs single %d", typ, b,
					got.UT().At(event.Type(typ), b), want.UT().At(event.Type(typ), b))
			}
			if got.Share(event.Type(typ), b) != want.Share(event.Type(typ), b) {
				t.Errorf("share[%d][%d]: merged %v vs single %v", typ, b,
					got.Share(event.Type(typ), b), want.Share(event.Type(typ), b))
			}
		}
	}
}

// TestLifecycleComesOnlineLive: a pipeline registered with an untrained
// shedder trains itself from live traffic and swaps the model in, losing
// no events — in both deployment modes.
func TestLifecycleComesOnlineLive(t *testing.T) {
	harness.VerifyNoLeaks(t)
	for _, shards := range []int{1, 4} {
		t.Run(map[int]string{1: "serial", 4: "sharded"}[shards], func(t *testing.T) {
			q := lcQuery(t, 10)
			events := lcEvents(20000)
			um, err := core.NewUntrainedModel(2, 10, 0)
			if err != nil {
				t.Fatal(err)
			}
			shed, err := core.NewShedder(um)
			if err != nil {
				t.Fatal(err)
			}
			p, err := New(Config{
				Operator: operator.Config{Window: q.Window, Patterns: q.Patterns, Shedder: shed},
				Shards:   shards,
				Lifecycle: &LifecycleConfig{
					Types:              2,
					WarmupWindows:      16,
					MinRetrainInterval: time.Millisecond,
					Interval:           time.Millisecond,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { done <- p.Run(context.Background()) }()
			ces := 0
			collected := make(chan struct{})
			go func() {
				defer close(collected)
				for range p.Out() {
					ces++
				}
			}()
			p.SubmitBatch(events)
			p.CloseInput()
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			<-collected

			st := p.Stats()
			if st.Processed != uint64(len(events)) {
				t.Errorf("processed %d of %d events", st.Processed, len(events))
			}
			if ces == 0 {
				t.Error("no complex events emitted")
			}
			if st.Lifecycle == nil {
				t.Fatal("lifecycle stats missing")
			}
			if !st.Lifecycle.Trained || st.Lifecycle.Builds == 0 {
				t.Errorf("lifecycle never came online: %+v", *st.Lifecycle)
			}
			if m := shed.Model(); m == nil || !m.Trained() {
				t.Error("shedder still holds the untrained model")
			}
			if err := p.Retrain(); err != nil {
				t.Errorf("Retrain after run: %v", err)
			}
		})
	}
}

// rtlsPhases generates the drifting workload of the adaptive example:
// two RTLS phases whose man-marking lags differ — a concept drift in the
// (type, position) correlation the model learns.
func rtlsPhases(t *testing.T, seconds int) (queries.Query, phaseData, phaseData) {
	t.Helper()
	metaA, phaseA, err := datasets.GenerateRTLS(datasets.RTLSConfig{
		DurationSec: seconds, Seed: 5,
		DefendLagMin: 1, DefendLagMax: 4, MarkersPerStriker: 8,
		NoiseDefendProb: 0.02, MarkerDefendProb: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, phaseB, err := datasets.GenerateRTLS(datasets.RTLSConfig{
		DurationSec: seconds, Seed: 6,
		DefendLagMin: 7, DefendLagMax: 12, MarkersPerStriker: 8,
		NoiseDefendProb: 0.02, MarkerDefendProb: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := queries.Q1(metaA, 3, pattern.SelectFirst, 15)
	if err != nil {
		t.Fatal(err)
	}
	trainA, evalA := harness.SplitHalf(phaseA)
	trainB, evalB := harness.SplitHalf(phaseB)
	return q, phaseData{trainA, evalA}, phaseData{trainB, evalB}
}

type phaseData struct{ train, eval []event.Event }

// feedTap replays events unshed through the query's operator with the
// tap as close hook, returning the membership factor.
func feedTap(t *testing.T, q queries.Query, tap *operator.FeedbackTap, events []event.Event) float64 {
	t.Helper()
	op, err := operator.New(operator.Config{
		Window:        q.Window,
		Patterns:      q.Patterns,
		OnWindowClose: tap.OnWindowClose,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		op.Process(e)
	}
	if len(events) > 0 {
		op.Flush(events[len(events)-1].TS)
	}
	st := op.Stats()
	if st.EventsProcessed == 0 {
		return 1
	}
	return float64(st.Memberships) / float64(st.EventsProcessed)
}

// evalFP runs the harness quality experiment for a model on the given
// eval segment and returns the false-positive percentage.
func evalFP(t *testing.T, q queries.Query, model *core.Model, factor float64, eval []event.Event) float64 {
	t.Helper()
	res, err := harness.EvalWithModel(harness.RunConfig{
		Query:          q,
		Eval:           eval,
		OverloadFactor: 1.2,
	}, &harness.TrainResult{Model: model, MembershipFactor: factor}, harness.ShedESPICE)
	if err != nil {
		t.Fatal(err)
	}
	return res.Quality.FPPct()
}

// TestLifecycleDriftRetrainRecovery drives the lifecycle state machine
// deterministically through the paper's future-work scenario: train in
// flight on phase-1 traffic, detect the drift when the marking lags
// shift, recollect on post-shift traffic, and swap the retrained model
// in. The retrained model must recover most of the quality (harness
// false-positive metric) of a model freshly trained on the shifted
// distribution, while the frozen phase-1 model does not.
func TestLifecycleDriftRetrainRecovery(t *testing.T) {
	harness.VerifyNoLeaks(t)
	q, a, b := rtlsPhases(t, 900)

	um, err := core.NewUntrainedModel(q.NumTypes, q.Window.SizeHint, 0)
	if err != nil {
		t.Fatal(err)
	}
	shed, err := core.NewShedder(um)
	if err != nil {
		t.Fatal(err)
	}
	l, err := newLifecycle(LifecycleConfig{
		Types:              q.NumTypes,
		WarmupWindows:      32,
		MinRetrainInterval: time.Nanosecond,
		Drift:              &core.DriftConfig{},
	}, []*core.Shedder{shed}, q.Window)
	if err != nil {
		t.Fatal(err)
	}
	tap, err := l.newTap()
	if err != nil {
		t.Fatal(err)
	}

	now := time.Unix(0, 0)
	tick := func() bool { now = now.Add(time.Second); return l.step(now) }

	// Phase 1: online training from unshed traffic; first build swaps in.
	factor := feedTap(t, q, tap, a.train)
	if !tick() {
		t.Fatal("initial build did not happen")
	}
	frozen := shed.Model()
	if frozen == nil || !frozen.Trained() {
		t.Fatal("initial model not swapped into the shedder")
	}
	if st := l.Stats(); !st.Trained || st.Builds != 1 {
		t.Fatalf("after initial build: %+v", st)
	}

	// Stable phase-1 traffic must not alarm.
	feedTap(t, q, tap, a.eval)
	if tick() {
		t.Fatal("rebuilt without drift or request")
	}
	if got := l.Stats().DriftAlarms; got != 0 {
		t.Fatalf("false drift alarm on stable traffic: %d", got)
	}

	// Phase 2: the lag shift must raise the alarm; the step discards the
	// stale statistics and recollects from post-shift traffic only.
	feedTap(t, q, tap, b.train)
	tick()
	if got := l.Stats().DriftAlarms; got != 1 {
		t.Fatalf("drift alarm count = %d, want 1", got)
	}
	feedTap(t, q, tap, b.train)
	if !tick() {
		t.Fatal("retrain did not happen after recollection")
	}
	retrained := shed.Model()
	if retrained == frozen {
		t.Fatal("model not re-swapped")
	}
	if st := l.Stats(); st.Builds != 2 || st.Collecting {
		t.Fatalf("after retrain: %+v", st)
	}

	// Quality: on post-shift traffic, the retrained model must recover
	// >= 90% of the FP-quality gap a fresh post-shift model closes over
	// the frozen one.
	fresh, err := harness.Train(q, b.train, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fpFrozen := evalFP(t, q, frozen, factor, b.eval)
	fpRetrained := evalFP(t, q, retrained, factor, b.eval)
	fpFresh := evalFP(t, q, fresh.Model, fresh.MembershipFactor, b.eval)
	t.Logf("FP%% on shifted eval: frozen=%.2f retrained=%.2f fresh=%.2f",
		fpFrozen, fpRetrained, fpFresh)
	if fpFrozen <= fpFresh {
		t.Fatalf("workload does not exhibit drift damage: frozen %.2f <= fresh %.2f", fpFrozen, fpFresh)
	}
	recovery := (fpFrozen - fpRetrained) / (fpFrozen - fpFresh)
	if recovery < 0.9 {
		t.Errorf("retrain recovered only %.0f%% of the FP gap (frozen %.2f, retrained %.2f, fresh %.2f)",
			100*recovery, fpFrozen, fpRetrained, fpFresh)
	}
}

// TestLifecycleExplicitRetrainKeepsStats: Retrain rebuilds from the
// statistics already accumulated (no discard), as soon as warm.
func TestLifecycleExplicitRetrainKeepsStats(t *testing.T) {
	harness.VerifyNoLeaks(t)
	q := lcQuery(t, 10)
	um, err := core.NewUntrainedModel(2, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	shed, err := core.NewShedder(um)
	if err != nil {
		t.Fatal(err)
	}
	l, err := newLifecycle(LifecycleConfig{
		Types:              2,
		WarmupWindows:      4,
		MinRetrainInterval: time.Nanosecond,
	}, []*core.Shedder{shed}, q.Window)
	if err != nil {
		t.Fatal(err)
	}
	tap, err := l.newTap()
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	feedTap(t, q, tap, lcEvents(200))
	if !l.step(now) {
		t.Fatal("initial build missing")
	}
	first := shed.Model()

	// No drift config, no request: nothing happens.
	feedTap(t, q, tap, lcEvents(200))
	now = now.Add(time.Second)
	if l.step(now) {
		t.Fatal("spontaneous rebuild")
	}
	l.Retrain()
	now = now.Add(time.Second)
	if !l.step(now) {
		t.Fatal("explicit retrain did not rebuild")
	}
	if shed.Model() == first {
		t.Error("model unchanged after explicit retrain")
	}
	if first.Windows() == 0 || shed.Model().Windows() == 0 {
		t.Error("models carry no coverage")
	}
}
