// Package runtime hosts a live, goroutine-based deployment of the eSPICE
// architecture (Figure 1): events are submitted into a bounded input
// queue, a processing goroutine drives the CEP operator, and a detector
// goroutine periodically estimates input rate and operator throughput,
// evaluates the overload condition and commands the load shedder.
//
// With Config.Shards > 1 the pipeline becomes a sharded multi-operator
// deployment with no dedicated router goroutine: SubmitBatch itself runs
// the windowing policy (under one partitioner mutex, so positions and
// window identities stay deterministic) and streams compiled op batches
// to the owning shards — windows are assigned to shards by their
// deterministic ID as they open, and each shard owns its windows
// outright: open, membership add, shed decision, close, matching and
// pool recycling all happen on the shard goroutine behind its own
// bounded queue. Closed-window results carry a monotonic epoch (the
// global close order) and an epoch merge stage re-serializes them, so
// shard=N output equals shard=1 output while the per-membership
// processing cost spreads across N cores. One overload detector observes
// the aggregate input rate and the summed per-shard throughput and
// commands all shedders in lockstep.
//
// The runtime mirrors the discrete-event simulator (internal/sim) on real
// clocks and channels; the simulator is the reproducible instrument for
// experiments, the runtime is the deployment surface the examples use.
package runtime

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/sim"
	"repro/internal/window"
)

// Config assembles a live pipeline.
type Config struct {
	// Operator configuration (window, patterns, shedder decider).
	Operator operator.Config
	// Detector and Controller enable load shedding; both nil disables it.
	Detector   *core.OverloadDetector
	Controller sim.Controller
	// EstimateRates keeps the input-rate and throughput estimators running
	// even without a Detector, so an external supervisor (e.g. the
	// multi-query engine's global shedding budget) can read
	// Stats().InputRate and Stats().Throughput. Implied by Detector.
	EstimateRates bool
	// PollInterval is the detector period (default 10ms).
	PollInterval time.Duration
	// QueueCap bounds the input-queue backlog in events; Submit and
	// SubmitBatch block when full (backpressure). Stats().QueueLen and
	// the overload detector see the backlog in events as well; a
	// SubmitBatch may overshoot the bound by up to one 256-event chunk.
	// When sharded, the bound is split across the shards' op-batch
	// queues and enforced approximately (in batch granularity), since
	// submitters partition directly into the shard queues. Default 1 << 16.
	QueueCap int
	// ProcessingDelay adds an artificial cost per kept membership,
	// letting examples provoke overload on small machines. Zero means
	// full speed.
	ProcessingDelay time.Duration
	// OutBuffer is the complex-event channel capacity (default 1024).
	OutBuffer int
	// LatencySampleEvery records one end-to-end latency sample per this
	// many processed events (default 1: every event). Whatever the
	// initial stride, the trace is hard-bounded: once it reaches
	// maxLatencySamples the pipeline halves it (dropping every second
	// sample) and doubles the stride, so an indefinitely running ingest
	// server keeps a uniformly spread, fixed-memory trace. Percentiles
	// remain meaningful under uniform 1-in-N sampling; raising the
	// initial stride just spends less hot-path time on clock reads.
	LatencySampleEvery int
	// Shards is the number of parallel operator instances (default 1).
	// Values above 1 spread per-membership processing across goroutines;
	// complex events are still emitted in window-close order. With
	// Shards > 1 the Operator.OnWindowClose hook runs on the shard
	// goroutines — one call at a time per shard, but concurrently across
	// shards — so a shared hook must synchronize its own state. Windows
	// are recycled shard-locally right after the hook returns.
	Shards int
	// ShardDeciders optionally installs one shedder per shard; its length
	// must equal Shards. When nil, every shard shares Operator.Shedder
	// (safe for core.Shedder, whose state is swapped atomically). Ignored
	// when Shards <= 1.
	ShardDeciders []operator.Decider
	// StealThreshold tunes window work stealing on the sharded path: when
	// the most-backlogged shard's staged-membership backlog exceeds the
	// least-loaded shard's by more than this many memberships, the
	// partitioner reassigns an open (not-yet-closing) window from the
	// former to the latter — ownership, buffered state and pool entry
	// move to the thief, and all future memberships of the window follow
	// (see partition.go). Complex-event output is byte-identical with
	// stealing on or off: window identities, positions and close epochs
	// are decided by the partitioner's tracker either way. 0 selects the
	// default (2048 memberships); negative disables stealing. Ignored
	// when Shards <= 1.
	StealThreshold int
	// OnPanic, when non-nil, is called once — from the goroutine that
	// panicked, right as the pipeline's failed flag trips — when a
	// processing path panics (guard.go). The pipeline then drains
	// without processing and Run returns the *PanicError; the callback
	// lets a supervisor (the multi-query engine) quarantine the query
	// without polling. It must not call back into the pipeline.
	OnPanic func(*PanicError)
	// Lifecycle enables the online model lifecycle: the pipeline samples
	// its own window closes into an in-flight model builder, builds the
	// utility model once warm, and swaps it into every *core.Shedder
	// found in Operator.Shedder / ShardDeciders in lockstep — retraining
	// on drift alarms (Lifecycle.Drift) or explicit Retrain calls. The
	// shedders may start over an untrained model (core.NewUntrainedModel)
	// and come online once the first model is built.
	Lifecycle *LifecycleConfig
}

type queued struct {
	ev      event.Event
	arrived time.Time
}

// inMsg is one input-queue message: a single event (batch == nil) or a
// chunk of events submitted together. Chunking amortizes the channel
// send/receive rendezvous — the dominant per-event cost of the pump once
// the data path itself is allocation-free — over up to submitChunk
// events; the queued-event backlog is tracked separately (Pipeline.qlen)
// so overload detection still sees events, not messages.
type inMsg struct {
	one   queued
	batch []queued
}

// submitChunk bounds how many events one input message may carry.
const submitChunk = 256

// Stats is a snapshot of pipeline counters.
type Stats struct {
	Submitted uint64
	Processed uint64
	// QueueLen is the queued backlog in events: the input queue when
	// serial, or the shards' staged memberships normalized by the
	// windowing overlap factor when sharded (see ShardStats.QueueLen).
	QueueLen int
	// InputRate and Throughput are the detector's current estimates in
	// events per second. When sharded, Throughput is the summed per-shard
	// estimate.
	InputRate  float64
	Throughput float64
	// Operator aggregates operator counters; when sharded it is the
	// roll-up over all shards.
	Operator operator.Stats
	// Shards holds one entry per shard when Shards > 1, nil otherwise.
	Shards []ShardStats
	// Lifecycle is the online model lifecycle snapshot, nil when the
	// lifecycle is disabled.
	Lifecycle *LifecycleStats
}

// ShardStats is a snapshot of one shard's counters.
type ShardStats struct {
	// Memberships counts (event, window) incidences routed to the shard;
	// Kept and Shed split them by the shedding decision.
	Memberships uint64
	Kept        uint64
	Shed        uint64
	// WindowsClosed, ComplexEvents and WindowsWithMatch mirror the
	// operator counters for windows owned by this shard.
	WindowsClosed    uint64
	ComplexEvents    uint64
	WindowsWithMatch uint64
	// QueueLen is the shard's current queue backlog in staged
	// memberships (each (event, window) incidence counts one).
	QueueLen int
	// PoolMisses counts window opens that had to allocate because the
	// shard's window pool was empty. In steady state it plateaus at the
	// warm working set; a climbing value means closed windows are not
	// being recycled (a pool leak).
	PoolMisses uint64
	// PoolGets and PoolPuts count window-pool handouts and recycles for
	// this shard. A stolen window is recycled into its *current* owner's
	// pool, so per-shard gets and puts diverge under stealing churn; the
	// conservation invariant is global — summed over all shards,
	// PoolPuts + PoolMisses >= PoolGets always, and PoolGets == PoolPuts
	// once every window has closed.
	PoolGets uint64
	PoolPuts uint64
	// Steals counts windows this shard adopted from a more-backlogged
	// shard (work stealing); a stolen window's remaining memberships,
	// close, matching and pool recycling all happen here.
	Steals uint64
	// Occupancy is the partitioner's live placement estimate of this
	// shard's in-flight window work: the summed expected sizes of the
	// open windows it currently owns. New windows are placed on the
	// shard minimizing Occupancy + QueueLen.
	Occupancy int64
	// Throughput is the detector's unshed-capacity estimate for this
	// shard in events per second.
	Throughput float64
}

// MultiController fans every detector decision out to several
// controllers, letting the single aggregate overload detector command
// per-shard shedders in lockstep.
type MultiController []sim.Controller

// OnDecision implements sim.Controller.
func (m MultiController) OnDecision(dec core.Decision) {
	for _, c := range m {
		if c != nil {
			c.OnDecision(dec)
		}
	}
}

// Pipeline is a running eSPICE-enabled CEP operator.
type Pipeline struct {
	cfg Config
	op  *operator.Operator
	in  chan inMsg
	out chan operator.ComplexEvent

	// part and shards drive the sharded deployment (Config.Shards > 1):
	// submitters partition events through part straight into the shard
	// queues. The serial path uses the operator and the in channel.
	part   *partitioner
	shards []*shard

	// lifecycle supervises online model training (Config.Lifecycle).
	lifecycle *Lifecycle

	// Latency sampling state, touched only by the processing goroutine
	// (serial) or under the partitioner mutex (sharded): events since
	// the last sample, the current stride (doubled on every decimation),
	// and the samples recorded since the last decimation check.
	latSkip    int
	latEvery   int
	latSamples int

	submitted   atomic.Uint64
	processed   atomic.Uint64
	qlen        atomic.Int64 // events enqueued and not yet processed
	busyNanos   atomic.Int64
	memberships atomic.Uint64
	kept        atomic.Uint64

	// Event-based backpressure: producers block on flowCond while qlen
	// is at QueueCap; the pump wakes them as the backlog drains.
	// hasWaiters keeps the pump's fast path to one atomic load.
	flowMu     sync.Mutex
	flowCond   *sync.Cond
	hasWaiters atomic.Bool

	rateEst atomic.Uint64 // float64 bits
	thEst   atomic.Uint64 // float64 bits

	// Panic containment (guard.go): failed trips on the first captured
	// processing panic, panicErr holds it.
	failed   atomic.Bool
	panicErr atomic.Pointer[PanicError]

	// abort unblocks shard-side steal rendezvous (an adopt op waiting on
	// its ring) when the pipeline dies before the matching evict is
	// processed — context cancel or contained panic. Sharded only.
	abort     chan struct{}
	abortOnce sync.Once

	mu        sync.Mutex
	latency   metrics.LatencyTrace
	lastTS    event.Time
	inClosed  bool
	runCalled bool
	// opStats mirrors the serial operator's counters so Stats() stays
	// data-race free when called mid-run (the operator itself is owned by
	// the processing goroutine); updated under mu after every event.
	opStats operator.Stats
}

// New validates the configuration and builds a pipeline.
func New(cfg Config) (*Pipeline, error) {
	if (cfg.Detector == nil) != (cfg.Controller == nil) {
		return nil, fmt.Errorf("runtime: Detector and Controller must be set together")
	}
	if cfg.QueueCap < 0 {
		return nil, fmt.Errorf("runtime: QueueCap must be >= 0, got %d", cfg.QueueCap)
	}
	if cfg.LatencySampleEvery < 0 {
		return nil, fmt.Errorf("runtime: LatencySampleEvery must be >= 0, got %d", cfg.LatencySampleEvery)
	}
	if cfg.LatencySampleEvery == 0 {
		cfg.LatencySampleEvery = 1
	}
	if cfg.OutBuffer < 0 {
		return nil, fmt.Errorf("runtime: OutBuffer must be >= 0, got %d", cfg.OutBuffer)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("runtime: Shards must be >= 0, got %d", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if n := len(cfg.ShardDeciders); n > 0 && n != cfg.Shards {
		return nil, fmt.Errorf("runtime: ShardDeciders has %d entries for %d shards", n, cfg.Shards)
	}
	if cfg.StealThreshold == 0 {
		cfg.StealThreshold = defaultStealThreshold
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 1 << 16
	}
	if cfg.OutBuffer == 0 {
		cfg.OutBuffer = 1024
	}
	// The lifecycle is assembled before the operator so the serial
	// window-close hook chain can include its feedback tap.
	var (
		lc        *Lifecycle
		shardTaps []*operator.FeedbackTap
	)
	if cfg.Lifecycle != nil {
		var shedders []*core.Shedder
		addShedder := func(d operator.Decider) {
			s, ok := d.(*core.Shedder)
			if !ok {
				return
			}
			for _, have := range shedders {
				if have == s {
					return
				}
			}
			shedders = append(shedders, s)
		}
		addShedder(cfg.Operator.Shedder)
		for _, d := range cfg.ShardDeciders {
			addShedder(d)
		}
		var err error
		lc, err = newLifecycle(*cfg.Lifecycle, shedders, cfg.Operator.Window)
		if err != nil {
			return nil, err
		}
		if cfg.Shards > 1 {
			// One tap per shard: statistics accumulate on the shard
			// goroutines without contention and merge at (re)train time.
			for i := 0; i < cfg.Shards; i++ {
				tap, err := lc.newTap()
				if err != nil {
					return nil, err
				}
				shardTaps = append(shardTaps, tap)
			}
		} else {
			tap, err := lc.newTap()
			if err != nil {
				return nil, err
			}
			if user := cfg.Operator.OnWindowClose; user != nil {
				cfg.Operator.OnWindowClose = func(w *window.Window, matched []window.Entry) {
					tap.OnWindowClose(w, matched)
					user(w, matched)
				}
			} else {
				cfg.Operator.OnWindowClose = tap.OnWindowClose
			}
		}
	}
	op, err := operator.New(cfg.Operator)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:       cfg,
		op:        op,
		lifecycle: lc,
		latEvery:  cfg.LatencySampleEvery,
		in:        make(chan inMsg, cfg.QueueCap),
		out:       make(chan operator.ComplexEvent, cfg.OutBuffer),
	}
	p.flowCond = sync.NewCond(&p.flowMu)
	if cfg.Shards > 1 {
		p.abort = make(chan struct{})
		maxMatches := cfg.Operator.MaxMatchesPerWindow
		if maxMatches <= 0 {
			maxMatches = 1
		}
		// Each shard queue holds op batches of up to opsFlushBatch
		// memberships; sizing it as the shard's event-share divided by
		// the batch size keeps the aggregate backlog bound near QueueCap.
		batchCap := cfg.QueueCap / cfg.Shards / opsFlushBatch
		if batchCap < 8 {
			batchCap = 8
		}
		for i := 0; i < cfg.Shards; i++ {
			dec := cfg.Operator.Shedder
			if len(cfg.ShardDeciders) > 0 {
				dec = cfg.ShardDeciders[i]
			}
			// The recycle ring matches the input queue depth: a submitter
			// running batchCap batches ahead of a shard can still find every
			// drained batch waiting for reuse, so steady state allocates no
			// new batches regardless of how far ahead the producer runs.
			sh := &shard{
				id:      i,
				pipe:    p,
				in:      make(chan *shardBatch, batchCap),
				recycle: make(chan *shardBatch, batchCap+1),
				adopt:   make(chan *window.Window, stealRingCap),
				decider: dec,
				matcher: operator.NewMatcher(cfg.Operator.Patterns, maxMatches),
				hook:    cfg.Operator.OnWindowClose,
				delay:   cfg.ProcessingDelay,
			}
			if shardTaps != nil {
				sh.tap = shardTaps[i]
			}
			sh.batched, _ = dec.(operator.BatchingDecider)
			p.shards = append(p.shards, sh)
		}
		// The partitioner owns the tracker manager; the operator above
		// validated the full configuration and serves Shards==1 only.
		p.part, err = newPartitioner(p, cfg.Operator.Window)
		if err != nil {
			return nil, fmt.Errorf("runtime: %w", err)
		}
	}
	return p, nil
}

// waitCapacity blocks the producer until the event backlog is below
// QueueCap. Submit and SubmitBatch share it, so mixed producers see one
// event-based bound; the channel's message capacity is only a secondary
// backstop. Wake-up is condvar-driven by the pump as it drains.
func (p *Pipeline) waitCapacity() {
	if int(p.qlen.Load()) < p.cfg.QueueCap {
		return
	}
	p.flowMu.Lock()
	for int(p.qlen.Load()) >= p.cfg.QueueCap {
		p.hasWaiters.Store(true)
		p.flowCond.Wait()
	}
	p.flowMu.Unlock()
}

// releaseSlot marks one queued event processed and wakes blocked
// producers once the backlog falls back below QueueCap. The no-waiter
// fast path is a single atomic load.
func (p *Pipeline) releaseSlot() {
	if int(p.qlen.Add(-1)) < p.cfg.QueueCap && p.hasWaiters.Load() {
		p.flowMu.Lock()
		p.hasWaiters.Store(false)
		p.flowCond.Broadcast()
		p.flowMu.Unlock()
	}
}

// Submit enqueues an event for processing; it blocks when the input
// queue is full. Submit must not be called after CloseInput.
func (p *Pipeline) Submit(e event.Event) {
	if p.part != nil {
		p.part.submitOne(e)
		return
	}
	p.waitCapacity()
	p.submitted.Add(1)
	p.qlen.Add(1)
	p.in <- inMsg{one: queued{ev: e, arrived: time.Now()}}
}

// SubmitBatch enqueues a batch of events in stream order, amortizing the
// clock read and the channel rendezvous over chunks of the batch; it
// blocks while the input queue is full. Events are copied into the
// chunks, so the caller may reuse the slice immediately. The submitted
// counter still advances per enqueued event so the detector's input-rate
// estimate tracks actual arrivals even when a large batch blocks on a
// full queue. SubmitBatch must not be called after CloseInput.
func (p *Pipeline) SubmitBatch(events []event.Event) {
	if len(events) == 0 {
		return
	}
	if p.part != nil {
		// Sharded path: partition straight into the shard queues; the
		// batch is consumed in place, no intermediate copy.
		p.part.submitBatch(events)
		return
	}
	now := time.Now()
	for len(events) > 0 {
		// The channel bounds messages, so chunked submission alone would
		// weaken the event-based backpressure by up to submitChunk x.
		// Gate each chunk on the event backlog instead; the overshoot is
		// at most one chunk per producer.
		p.waitCapacity()
		n := len(events)
		if n > submitChunk {
			n = submitChunk
		}
		chunk := make([]queued, n)
		for i, e := range events[:n] {
			chunk[i] = queued{ev: e, arrived: now}
			p.submitted.Add(1)
		}
		p.qlen.Add(int64(n))
		p.in <- inMsg{batch: chunk}
		events = events[n:]
	}
}

// CloseInput signals end of stream; Run drains the queue and returns.
func (p *Pipeline) CloseInput() {
	p.mu.Lock()
	if p.inClosed {
		p.mu.Unlock()
		return
	}
	p.inClosed = true
	p.mu.Unlock()
	if p.part != nil {
		// The partitioner takes p.mu while routing (latency samples), so
		// seal it outside the pipeline mutex to keep lock order one-way.
		p.part.close()
		return
	}
	close(p.in)
}

// Out delivers detected complex events. The channel closes when Run
// finishes.
func (p *Pipeline) Out() <-chan operator.ComplexEvent { return p.out }

// Stats returns a snapshot of the pipeline counters.
func (p *Pipeline) Stats() Stats {
	st := Stats{
		Submitted:  p.submitted.Load(),
		Processed:  p.processed.Load(),
		QueueLen:   int(p.qlen.Load()),
		InputRate:  loadFloat(&p.rateEst),
		Throughput: loadFloat(&p.thEst),
	}
	if p.lifecycle != nil {
		ls := p.lifecycle.Stats()
		st.Lifecycle = &ls
	}
	if len(p.shards) == 0 {
		p.mu.Lock()
		st.Operator = p.opStats
		p.mu.Unlock()
		return st
	}
	st.Operator.EventsProcessed = st.Processed
	st.Shards = make([]ShardStats, len(p.shards))
	queuedMembers := 0
	for i, s := range p.shards {
		ss := s.snapshot()
		st.Shards[i] = ss
		queuedMembers += ss.QueueLen
		st.Operator.Memberships += ss.Memberships
		st.Operator.MembershipsKept += ss.Kept
		st.Operator.MembershipsShed += ss.Shed
		st.Operator.WindowsClosed += ss.WindowsClosed
		st.Operator.ComplexEvents += ss.ComplexEvents
		st.Operator.WindowsWithMatch += ss.WindowsWithMatch
	}
	// Report the backlog in events, the unit the serial pipeline and the
	// engine's shedding budget use: the shard queues count memberships,
	// which overstate it by the windowing overlap factor.
	st.QueueLen = queuedMembers
	if st.Processed > 0 {
		if kbar := float64(st.Operator.Memberships) / float64(st.Processed); kbar > 1 {
			st.QueueLen = int(float64(queuedMembers)/kbar + 0.5)
		}
	}
	return st
}

// Latency returns a copy of the recorded latency trace, merged across
// all shards when sharded. Safe to call mid-run (every trace is
// lock-protected); the ingest server snapshots it for live statistics,
// while experiment reports read it after Run returned.
func (p *Pipeline) Latency() *metrics.LatencyTrace {
	merged := &metrics.LatencyTrace{}
	p.mu.Lock()
	merged.Merge(&p.latency)
	p.mu.Unlock()
	for _, s := range p.shards {
		s.mu.Lock()
		merged.Merge(&s.latency)
		s.mu.Unlock()
	}
	return merged
}

// Retrain asks the online model lifecycle for an explicit rebuild from
// the statistics accumulated since the last swap; it errors when the
// pipeline was built without Config.Lifecycle. The rebuild happens on
// the supervisor goroutine as soon as the warm-up threshold is met.
func (p *Pipeline) Retrain() error {
	if p.lifecycle == nil {
		return fmt.Errorf("runtime: Retrain needs Config.Lifecycle")
	}
	p.lifecycle.Retrain()
	return nil
}

// Lifecycle returns the online model lifecycle supervisor (nil when
// disabled): stats, the currently published model, explicit retrains.
func (p *Pipeline) Lifecycle() *Lifecycle { return p.lifecycle }

// startLifecycle launches the lifecycle supervisor goroutine and returns
// its stop function (a no-op when the lifecycle is disabled).
func (p *Pipeline) startLifecycle() func() {
	if p.lifecycle == nil {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go p.lifecycle.run(stop, done)
	return func() {
		close(stop)
		<-done
	}
}

// Run processes events until the input is closed and drained, or the
// context is canceled. It is a blocking call; the detector runs on an
// internal goroutine for its duration.
func (p *Pipeline) Run(ctx context.Context) error {
	p.mu.Lock()
	if p.runCalled {
		p.mu.Unlock()
		return fmt.Errorf("runtime: Run called twice")
	}
	p.runCalled = true
	p.mu.Unlock()
	if len(p.shards) > 0 {
		return p.runSharded(ctx)
	}
	defer close(p.out)
	defer p.startLifecycle()()

	detectorDone := make(chan struct{})
	detectorStop := make(chan struct{})
	if p.cfg.Detector != nil || p.cfg.EstimateRates {
		go p.detectorLoop(detectorStop, detectorDone)
		defer func() {
			close(detectorStop)
			<-detectorDone
		}()
	}

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case msg, ok := <-p.in:
			if !ok {
				return p.flushGuarded(ctx)
			}
			if err := p.processMsg(ctx, msg); err != nil {
				if pe, tripped := err.(*PanicError); tripped {
					// Contained panic: keep draining so producers never
					// block on a dead pipeline, then surface the capture.
					p.drainIn(ctx)
					return pe
				}
				return err
			}
		}
	}
}

// processMsg unpacks one input message (single event or chunk).
func (p *Pipeline) processMsg(ctx context.Context, msg inMsg) error {
	if msg.batch == nil {
		err := p.processOne(ctx, msg.one)
		p.releaseSlot()
		return err
	}
	for _, q := range msg.batch {
		err := p.processOne(ctx, q)
		p.releaseSlot()
		if err != nil {
			return err
		}
	}
	return nil
}

func (p *Pipeline) processOne(ctx context.Context, q queued) (err error) {
	defer p.recoverProc(&err)
	start := time.Now()
	before := p.op.Stats()
	complexEvents := p.op.Process(q.ev)
	after := p.op.Stats()
	kept := after.MembershipsKept - before.MembershipsKept
	if d := p.cfg.ProcessingDelay; d > 0 && kept > 0 {
		time.Sleep(time.Duration(kept) * d)
	}
	// One clock read serves both the busy-time and the latency sample.
	end := time.Now()
	p.busyNanos.Add(end.Sub(start).Nanoseconds())
	p.processed.Add(1)
	p.memberships.Add(after.Memberships - before.Memberships)
	p.kept.Add(kept)

	sampleLat := p.sampleLatency()
	lat := end.Sub(q.arrived)
	p.mu.Lock()
	if sampleLat {
		p.latency.Add(event.Time(start.UnixMicro()), event.Time(lat.Microseconds()))
	}
	p.lastTS = q.ev.TS
	p.opStats = after
	p.mu.Unlock()

	for _, ce := range complexEvents {
		select {
		case p.out <- ce:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

func (p *Pipeline) flush(ctx context.Context) {
	p.mu.Lock()
	last := p.lastTS
	p.mu.Unlock()
	ces := p.op.Flush(last)
	p.mu.Lock()
	p.opStats = p.op.Stats()
	p.mu.Unlock()
	for _, ce := range ces {
		select {
		case p.out <- ce:
		case <-ctx.Done():
			return
		}
	}
}

// detectorLoop estimates input rate and throughput over poll intervals
// and forwards overload decisions to the controller.
func (p *Pipeline) detectorLoop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(p.cfg.PollInterval)
	defer ticker.Stop()

	var (
		lastSubmitted uint64
		lastKept      uint64
		lastBusy      int64
		lastTime      = time.Now()
	)
	const alpha = 0.3 // EWMA smoothing for rate and throughput estimates
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			wall := now.Sub(lastTime).Seconds()
			if wall <= 0 {
				continue
			}
			lastTime = now

			submitted := p.submitted.Load()
			kept := p.kept.Load()
			busy := p.busyNanos.Load()

			rate := float64(submitted-lastSubmitted) / wall
			storeEWMA(&p.rateEst, rate, alpha)

			// Throughput must describe the *unshed* capacity in events/s:
			// events per busy-second would inflate while shedding (shed
			// memberships cost almost nothing), so measure the service
			// rate per kept membership and divide by the cumulative
			// memberships-per-event overlap factor.
			memberships := p.memberships.Load()
			processed := p.processed.Load()
			if busyDelta := busy - lastBusy; busyDelta > 0 && kept > lastKept && processed > 0 {
				kbar := float64(memberships) / float64(processed)
				if kbar > 0 {
					perKept := float64(kept-lastKept) / (float64(busyDelta) / 1e9)
					storeEWMA(&p.thEst, perKept/kbar, alpha)
				}
			}
			lastSubmitted, lastKept, lastBusy = submitted, kept, busy

			th := loadFloat(&p.thEst)
			if th <= 0 || p.cfg.Detector == nil {
				continue
			}
			dec := p.cfg.Detector.Evaluate(int(p.qlen.Load()), loadFloat(&p.rateEst), th,
				p.windowSizeEstimate())
			p.cfg.Controller.OnDecision(dec)
		}
	}
}

// maxLatencySamples bounds the total recorded latency samples per
// pipeline (~4 MiB across all traces); reaching it halves every trace
// and doubles the sampling stride.
const maxLatencySamples = 1 << 18

// sampleLatency reports whether the current event contributes a latency
// sample (1 in latEvery, initially Config.LatencySampleEvery). Called
// from the processing goroutine (serial) or under the partitioner mutex
// (sharded), never concurrently. When the recorded
// samples reach maxLatencySamples the traces are decimated and the
// stride doubles, keeping the memory and Summary cost of an unbounded
// run fixed.
func (p *Pipeline) sampleLatency() bool {
	p.latSkip++
	if p.latSkip < p.latEvery {
		return false
	}
	p.latSkip = 0
	p.latSamples++
	if p.latSamples >= maxLatencySamples {
		p.latSamples /= 2
		p.latEvery *= 2
		p.mu.Lock()
		p.latency.Decimate()
		p.mu.Unlock()
		for _, s := range p.shards {
			s.mu.Lock()
			s.latency.Decimate()
			s.mu.Unlock()
		}
	}
	return true
}

// windowSizeEstimate reads the operator's current expected window size.
// The window manager itself is owned by the processing goroutine; its
// ExpectedSize is a best-effort read used only as a shedding hint, and a
// momentarily stale value merely shifts partition boundaries by a few
// events. To stay strictly data-race free we cache the spec-derived size.
func (p *Pipeline) windowSizeEstimate() int {
	spec := p.cfg.Operator.Window
	switch {
	case spec.Count > 0:
		return spec.Count
	case spec.SizeHint > 0:
		return spec.SizeHint
	default:
		return 1
	}
}

func loadFloat(a *atomic.Uint64) float64 {
	bits := a.Load()
	if bits == 0 {
		return 0
	}
	return floatFromBits(bits)
}

func storeEWMA(a *atomic.Uint64, sample, alpha float64) {
	prev := loadFloat(a)
	next := sample
	if prev > 0 {
		next = (1-alpha)*prev + alpha*sample
	}
	a.Store(floatToBits(next))
}
