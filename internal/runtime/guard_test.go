package runtime

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/window"
)

// TestPanicContainmentSerial panics inside the OnWindowClose hook of a
// serial pipeline: Run must return the captured *PanicError (not crash),
// the output channel must close, and producers submitting after the
// panic must not block.
func TestPanicContainmentSerial(t *testing.T) {
	harness.VerifyNoLeaks(t)
	var closes atomic.Int64
	cfg := Config{Operator: opConfig(nil)}
	cfg.Operator.OnWindowClose = func(w *window.Window, matched []window.Entry) {
		if closes.Add(1) == 2 {
			panic("hook boom")
		}
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for range p.Out() {
		}
	}()

	events := deterministicStream(200)
	p.SubmitBatch(events[:100])
	// By the 100th event several windows have closed, so the trip has
	// happened; the second half must drain without blocking.
	p.SubmitBatch(events[100:])
	p.CloseInput()

	err = <-done
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %v, want *PanicError", err)
	}
	if pe.Value != "hook boom" || pe.Stack == "" || pe.When.IsZero() {
		t.Errorf("PanicError incomplete: %+v", pe)
	}
	if !p.Failed() || p.PanicError() != pe {
		t.Error("Failed/PanicError disagree with Run's return")
	}
	<-collected
}

// TestPanicContainmentSharded panics inside the OnWindowClose hook on a
// shard worker goroutine: the trip must propagate to Run's return value,
// every sibling shard must keep draining (no wedged producer, no
// deadlocked merge), and teardown must complete.
func TestPanicContainmentSharded(t *testing.T) {
	harness.VerifyNoLeaks(t)
	var closes atomic.Int64
	cfg := Config{Operator: overlappingOpConfig(), Shards: 4}
	cfg.Operator.OnWindowClose = func(w *window.Window, matched []window.Entry) {
		if closes.Add(1) == 3 {
			panic("shard boom")
		}
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for range p.Out() {
		}
	}()

	events := deterministicStream(4000)
	// Submit in chunks well past the panic point: once tripped, the
	// partitioner drops instead of routing, so this must never block on
	// a dead shard's bounded queue.
	for i := 0; i < len(events); i += 500 {
		p.SubmitBatch(events[i : i+500])
	}
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		p.CloseInput()
	}()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("CloseInput blocked after a shard panic")
	}

	err = <-done
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %v, want *PanicError", err)
	}
	if pe.Value != "shard boom" {
		t.Errorf("panic value = %v", pe.Value)
	}
	<-collected
}

// TestPanicOnPanicFiresOnce asserts the OnPanic callback fires exactly
// once even when several shards panic near-simultaneously.
func TestPanicOnPanicFiresOnce(t *testing.T) {
	harness.VerifyNoLeaks(t)
	var fired atomic.Int64
	cfg := Config{Operator: overlappingOpConfig(), Shards: 4}
	cfg.Operator.OnWindowClose = func(w *window.Window, matched []window.Entry) {
		panic("every close")
	}
	cfg.OnPanic = func(pe *PanicError) { fired.Add(1) }
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	go func() {
		for range p.Out() {
		}
	}()
	p.SubmitBatch(deterministicStream(2000))
	p.CloseInput()
	if err := <-done; err == nil {
		t.Fatal("Run returned nil after hook panics")
	}
	if n := fired.Load(); n != 1 {
		t.Errorf("OnPanic fired %d times, want 1", n)
	}
}
