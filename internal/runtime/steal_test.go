package runtime

import (
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/window"
)

// typeMark opens (and closes) the tumbling predicate windows used by the
// skew tests; the pattern matcher ignores it.
const typeMark = event.Type(2)

// tumblingSkewSpec is the windowing policy for the skewed steal
// workloads: marker events split the stream into tumbling predicate
// windows (each marker closes the open window and opens the next), so a
// window's size is exactly the number of events between its markers —
// the only way to give individual windows skewed sizes, since every
// event otherwise joins every open window. Length is a far-away
// backstop; timestamps advance by one microsecond per event.
func tumblingSkewSpec() window.Spec {
	mark := func(e event.Event) bool { return e.Type == typeMark }
	return window.Spec{
		Mode:   window.ModeTime,
		Length: 1 << 40,
		Open:   mark,
		Close:  mark,
	}
}

// tumblingSkewStream builds nWindows tumbling windows of cold filler
// events each, except every hotEvery-th window which gets hot fillers —
// a hot-window skew where a few windows carry most of the stream.
// Fillers alternate A/B so seq(A;B) detects in every window.
func tumblingSkewStream(nWindows, cold, hot, hotEvery int) []event.Event {
	var events []event.Event
	ts, seq := event.Time(0), uint64(0)
	emit := func(typ event.Type) {
		events = append(events, event.Event{Seq: seq, TS: ts, Type: typ})
		seq++
		ts += event.Time(1)
	}
	for w := 0; w < nWindows; w++ {
		emit(typeMark)
		fill := cold
		if w%hotEvery == 0 {
			fill = hot
		}
		for i := 0; i < fill; i++ {
			emit(event.Type(i % 2))
		}
	}
	return events
}

func stealTestConfig(shards, threshold int, delay time.Duration) Config {
	p := pattern.MustCompile(pattern.Pattern{
		Name: "seq(A;B)",
		Steps: []pattern.Step{
			{Types: []event.Type{typeA}},
			{Types: []event.Type{typeB}},
		},
	})
	return Config{
		Operator: operator.Config{
			Window:   tumblingSkewSpec(),
			Patterns: []*pattern.Compiled{p},
		},
		Shards:          shards,
		StealThreshold:  threshold,
		ProcessingDelay: delay,
	}
}

// TestStealPoolConservation churns skewed windows through a 4-shard
// pipeline with an aggressive steal threshold and pins the pool-counter
// conservation contract across ownership handoffs: a stolen window's
// pool entry travels with it and is recycled into the adopting shard's
// pool without counting as a miss, so per shard PoolPuts + PoolMisses
// >= PoolGets always, and at quiescence (every window closed and
// recycled) the global sums satisfy PoolGets == PoolPuts exactly. The
// output must stay byte-identical to the serial pipeline's. Run with
// -race to exercise the evict/adopt rendezvous.
func TestStealPoolConservation(t *testing.T) {
	harness.VerifyNoLeaks(t)
	events := tumblingSkewStream(24, 20, 800, 6)
	serial, _ := runCollect(t, stealTestConfig(0, 0, 0), events)
	want := streamSignature(serial)
	if want == "" {
		t.Fatal("workload detects nothing; bad test setup")
	}
	sharded, st := runCollect(t, stealTestConfig(4, 4, 30*time.Microsecond), events)
	if got := streamSignature(sharded); got != want {
		t.Fatalf("stealing changed the output (%d vs %d complex events)",
			len(sharded), len(serial))
	}
	var gets, puts, misses, steals uint64
	for i, ss := range st.Shards {
		if ss.PoolGets > ss.PoolPuts+ss.PoolMisses {
			t.Errorf("shard %d: PoolGets %d > PoolPuts %d + PoolMisses %d",
				i, ss.PoolGets, ss.PoolPuts, ss.PoolMisses)
		}
		if ss.Occupancy != 0 {
			t.Errorf("shard %d: occupancy %d after all windows closed, want 0",
				i, ss.Occupancy)
		}
		gets += ss.PoolGets
		puts += ss.PoolPuts
		misses += ss.PoolMisses
		steals += ss.Steals
	}
	if gets != puts {
		t.Errorf("pool counters leak across handoffs: gets %d != puts %d (misses %d, steals %d)",
			gets, puts, misses, steals)
	}
	if steals == 0 {
		t.Error("no steals under a skewed backlog; the test exercised nothing")
	}
}

// TestHotWindowNoStarvation feeds one window ~90%% of the stream and
// asserts no shard starves: work stealing hands the hot window across
// shards, every shard processes memberships, and the output still
// matches the serial pipeline byte for byte.
func TestHotWindowNoStarvation(t *testing.T) {
	harness.VerifyNoLeaks(t)
	// 16 cold windows of 15 events around one hot window of 3000:
	// the hot window receives ~92% of all memberships.
	var events []event.Event
	events = append(events, tumblingSkewStream(8, 15, 15, 9)...)
	hot := tumblingSkewStream(1, 0, 3000, 1)
	for i := range hot {
		hot[i].Seq += uint64(len(events))
		hot[i].TS += events[len(events)-1].TS + 1
	}
	events = append(events, hot...)
	tail := tumblingSkewStream(8, 15, 15, 9)
	for i := range tail {
		tail[i].Seq += uint64(len(events))
		tail[i].TS += events[len(events)-1].TS + 1
	}
	events = append(events, tail...)

	serial, _ := runCollect(t, stealTestConfig(0, 0, 0), events)
	want := streamSignature(serial)
	if want == "" {
		t.Fatal("workload detects nothing; bad test setup")
	}
	sharded, st := runCollect(t, stealTestConfig(4, 4, 30*time.Microsecond), events)
	if got := streamSignature(sharded); got != want {
		t.Fatalf("stealing changed the output (%d vs %d complex events)",
			len(sharded), len(serial))
	}
	var steals uint64
	for i, ss := range st.Shards {
		if ss.Memberships == 0 {
			t.Errorf("shard %d starved: zero memberships while one window held ~90%% of the stream", i)
		}
		steals += ss.Steals
	}
	if steals == 0 {
		t.Error("hot window never moved: expected at least one steal")
	}
}

// TestStealDisabled pins the opt-out: a negative StealThreshold turns
// stealing off entirely — zero steals even under heavy skew — without
// changing the output.
func TestStealDisabled(t *testing.T) {
	harness.VerifyNoLeaks(t)
	events := tumblingSkewStream(12, 20, 600, 6)
	serial, _ := runCollect(t, stealTestConfig(0, 0, 0), events)
	sharded, st := runCollect(t, stealTestConfig(4, -1, 30*time.Microsecond), events)
	if want, got := streamSignature(serial), streamSignature(sharded); got != want {
		t.Fatalf("disabling stealing changed the output (%d vs %d complex events)",
			len(sharded), len(serial))
	}
	for i, ss := range st.Shards {
		if ss.Steals != 0 {
			t.Errorf("shard %d: %d steals with StealThreshold < 0", i, ss.Steals)
		}
	}
}
