package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/window"
)

// Shard op kinds. The low bits select the operation; opSampleFlag marks
// the one membership op per sampled event whose processing time feeds
// the latency trace (see Config.LatencySampleEvery).
const (
	opMember = 0 // add-or-shed one membership: slot, pos, evIdx
	opOpen   = 1 // open a window in slot: a = window ID, b = expected size, evIdx = opening event
	opClose  = 2 // close the window in slot: a = merge epoch, b = close timestamp
	opEvict  = 3 // hand the window in slot to shard a's steal ring (work stealing)
	opAdopt  = 4 // receive a stolen window from the steal ring into slot

	opKindMask   = 0x7f
	opSampleFlag = 1 << 7
)

// Work-stealing tuning. A steal moves one whole window — its buffered
// state, identity and pool entry — from the most-backlogged shard to
// the least-loaded one via the thief's steal ring (see reassign).
const (
	// defaultStealThreshold is the backlog imbalance (staged
	// memberships, most- minus least-loaded shard) that triggers a
	// steal when Config.StealThreshold is 0.
	defaultStealThreshold = 2048
	// stealCheckEvery amortizes the imbalance check: the partitioner
	// examines shard backlogs once per this many routed events, which
	// doubles as the hysteresis cooldown — at most one window moves per
	// check, so ownership cannot flap faster than the backlog actually
	// evolves.
	stealCheckEvery = 128
	// stealRingCap sizes each shard's adopt ring. At most one steal per
	// thief is outstanding at a time (pendingAdopts), so a capacity of 2
	// guarantees the victim's ring push never blocks, even after an
	// abort leaves an unconsumed entry behind.
	stealRingCap = 2
)

// shardOp is one decoded instruction for a shard. The partitioner runs
// the windowing policy centrally (so window identities, positions and
// size predictions stay exactly the serial pipeline's) and compiles its
// outcome into these fixed-size ops; the owning shard replays them in
// order against its local window slots. 32 bytes, no pointers — a staged
// op stream costs the shard no GC scanning.
type shardOp struct {
	kind  uint8
	slot  int32 // shard-local window slot (dense, recycled at close)
	pos   int32 // membership position (opMember)
	evIdx int32 // index into the batch's events array (opMember, opOpen)
	a     uint64
	b     uint64
}

// shardBatch is the unit of work handed to a shard: an op stream plus
// the deduplicated events it references. Batches are recycled through
// each shard's recycle channel, so a warm pipeline stages ops into
// previously used buffers.
type shardBatch struct {
	ops     []shardOp
	events  []event.Event
	arrived time.Time // submit time shared by every op in the batch
	members int       // membership ops staged (backlog accounting)
}

// opsFlushBatch caps how many ops a batch accumulates before the
// partitioner flushes it to the shard mid-call; every public
// Submit/SubmitBatch call also flushes whatever is staged on return, so
// a paced producer never leaves work parked in the staging area.
const opsFlushBatch = 512

// partitioner is the submitter-side front end of the sharded pipeline.
// It replaces the dedicated router goroutine: SubmitBatch itself runs
// the windowing policy (under pt.mu) and streams compiled ops to the
// owning shards, so the former router-channel rendezvous and the
// central-manager serialization disappear from the scale path.
//
// tracker is a plain window.Manager used only for bookkeeping: it
// decides opens, positions, closes and size predictions exactly as the
// serial operator's manager does, but its windows carry no payload —
// events are never Added to them. The payload windows live in the
// shards, one slot array per shard, and a window's whole life (open,
// add, shed, close, match, recycle) happens on its owning shard's
// goroutine. tracker windows are recycled through the manager's own
// pool the moment their close op is emitted.
type partitioner struct {
	p  *Pipeline
	mu sync.Mutex

	tracker *window.Manager

	// Per-shard staging state, indexed by shard id.
	staged    []*shardBatch
	freeSlots [][]int32 // recycled window slots
	nextSlot  []int32   // next never-used slot
	evMark    []uint64  // stamp of the event currently staged per shard
	evIdx     []int32   // its index in that shard's staged events

	evStamp uint64     // bumped once per routed event (dedup stamps)
	epoch   uint64     // next window-close epoch (merge order)
	arrived time.Time  // arrival time of the submit call being staged
	lastTS  event.Time // latest routed event timestamp (flush close time)

	// Work stealing: sinceSteal counts routed events since the last
	// imbalance check; stealThreshold < 0 disables stealing.
	sinceSteal     int
	stealThreshold int

	closed   bool        // input sealed; shard channels are closed
	canceled atomic.Bool // Run's context ended; drop instead of send
	done     chan struct{}
}

func newPartitioner(p *Pipeline, spec window.Spec) (*partitioner, error) {
	tracker, err := window.NewManager(spec)
	if err != nil {
		return nil, err
	}
	n := len(p.shards)
	return &partitioner{
		p:              p,
		tracker:        tracker,
		staged:         make([]*shardBatch, n),
		freeSlots:      make([][]int32, n),
		nextSlot:       make([]int32, n),
		evMark:         make([]uint64, n),
		evIdx:          make([]int32, n),
		stealThreshold: p.cfg.StealThreshold,
		done:           make(chan struct{}),
	}, nil
}

// tagAssigned marks a tracker window whose owning shard and slot have
// been chosen; the zero Tag means "not yet placed" (fresh or recycled
// windows are zeroed by the pool).
const tagAssigned = 1 << 63

func packTag(shard int, slot int32) uint64 {
	return tagAssigned | uint64(shard)<<32 | uint64(uint32(slot))
}

func unpackTag(tag uint64) (shard int, slot int32) {
	return int(tag >> 32 & 0x7fffffff), int32(uint32(tag))
}

// batchFor returns shard si's staging batch, starting a fresh one (from
// the shard's recycle ring when possible) on demand.
func (pt *partitioner) batchFor(si int) *shardBatch {
	b := pt.staged[si]
	if b == nil {
		select {
		case b = <-pt.p.shards[si].recycle:
		default:
			b = &shardBatch{}
		}
		b.arrived = pt.arrived
		pt.staged[si] = b
	}
	return b
}

// flushShard sends shard si's staged batch. Sends happen only under
// pt.mu and channels are closed only under pt.mu, so a send can never
// race a close; after a cancel the batch is dropped instead (the shards
// are in drain mode and the backlog is moot).
func (pt *partitioner) flushShard(si int) {
	b := pt.staged[si]
	if b == nil {
		return
	}
	pt.staged[si] = nil
	pt.evMark[si] = 0 // event indices die with the batch
	if pt.canceled.Load() {
		pt.p.shards[si].queued.Add(-int64(b.members))
		return
	}
	pt.p.shards[si].in <- b
}

func (pt *partitioner) flushAll() {
	for si := range pt.staged {
		pt.flushShard(si)
	}
}

// ensureEvent stages ev into shard si's batch once per routed event and
// returns its index; repeated memberships of one event on one shard
// share the entry (stamp-based dedup, no map).
func (pt *partitioner) ensureEvent(si int, ev event.Event) int32 {
	if pt.evMark[si] == pt.evStamp {
		return pt.evIdx[si]
	}
	b := pt.batchFor(si)
	idx := int32(len(b.events))
	b.events = append(b.events, ev)
	pt.evMark[si] = pt.evStamp
	pt.evIdx[si] = idx
	return idx
}

// stageOp appends one op to shard si's batch, flushing it once it
// reaches opsFlushBatch ops.
func (pt *partitioner) stageOp(si int, op shardOp) {
	b := pt.batchFor(si)
	b.ops = append(b.ops, op)
	if len(b.ops) >= opsFlushBatch {
		pt.flushShard(si)
	}
}

// routeOne runs the windowing policy for one event and streams the
// resulting ops to the owning shards. Caller holds pt.mu.
func (pt *partitioner) routeOne(ev event.Event) {
	member, closedWins := pt.tracker.Route(ev)
	pt.evStamp++
	pt.lastTS = ev.TS
	wantSample := pt.p.sampleLatency()
	sampled := false
	nshards := len(pt.p.shards)
	for _, mb := range member {
		w := mb.W
		var si int
		var slot int32
		if w.Tag == 0 {
			// First membership of a freshly opened window: place it on the
			// least-loaded eligible shard (occupancy + backlog). Placement
			// does not affect the output — positions and close epochs are
			// decided here by the tracker regardless of where the payload
			// window lives — so load-aware placement keeps shard=N output
			// byte-identical to shard=1 while spreading skewed (hot)
			// windows across cores instead of pinning windowID%N.
			si = pt.placeShard(w, nshards)
			slot = pt.takeSlot(si)
			w.Tag = packTag(si, slot)
			pt.p.shards[si].occupancy.Add(occWeight(w))
			pt.stageOp(si, shardOp{
				kind:  opOpen,
				slot:  slot,
				evIdx: pt.ensureEvent(si, ev),
				a:     uint64(w.ID),
				b:     uint64(w.ExpectedSize),
			})
		} else {
			si, slot = unpackTag(w.Tag)
		}
		op := shardOp{
			kind:  opMember,
			slot:  slot,
			pos:   int32(mb.Pos),
			evIdx: pt.ensureEvent(si, ev),
		}
		if wantSample && !sampled {
			op.kind |= opSampleFlag
			sampled = true
		}
		pt.batchFor(si).members++
		pt.p.shards[si].queued.Add(1)
		pt.stageOp(si, op)
	}
	if wantSample && !sampled {
		// The event belongs to no window, so no shard will time it;
		// sample here so every 1-in-N event still contributes.
		now := time.Now()
		pt.p.mu.Lock()
		pt.p.latency.Add(event.Time(now.UnixMicro()),
			event.Time(now.Sub(pt.arrived).Microseconds()))
		pt.p.mu.Unlock()
	}
	for _, w := range closedWins {
		pt.stageClose(w, ev.TS)
	}
	if pt.stealThreshold > 0 {
		pt.sinceSteal++
		if pt.sinceSteal >= stealCheckEvery {
			pt.sinceSteal = 0
			pt.maybeSteal()
		}
	}
	pt.p.processed.Add(1)
}

// occWeight is a window's contribution to its owning shard's occupancy
// estimate: the expected in-flight work it represents. It must be
// stable over the window's life (added at placement, moved on steal,
// subtracted at close), so it derives only from ExpectedSize, which the
// tracker fixes at open time.
func occWeight(w *window.Window) int64 {
	if w.ExpectedSize > 0 {
		return int64(w.ExpectedSize)
	}
	return 1
}

// placeShard picks the owning shard for a freshly opened window: the
// one with the lowest occupancy (sum of expected sizes of the open
// windows it owns), with queued-membership backlog breaking exact
// occupancy ties. The split matters: scoring on backlog directly makes
// uniform-workload placement chase whichever shard the scheduler
// drained last, clustering consecutive windows and costing ~10%
// throughput, so backlog only decides when occupancy genuinely cannot —
// notably tumbling predicate windows, where at most one window is open
// and every shard's occupancy is zero at placement time, exactly the
// regime where a hot window leaves a backlogged shard that static
// modular placement would keep re-picking. The scan starts at
// windowID%n so a fully balanced pipeline degenerates to the old
// deterministic round-robin placement instead of piling ties onto
// shard 0. Caller holds pt.mu.
func (pt *partitioner) placeShard(w *window.Window, nshards int) int {
	start := int(w.ID) % nshards
	if nshards == 1 {
		return 0
	}
	best, bestScore, bestQ := start, int64(1)<<62, int64(1)<<62
	for k := 0; k < nshards; k++ {
		i := start + k
		if i >= nshards {
			i -= nshards
		}
		s := pt.p.shards[i]
		score := s.occupancy.Load()
		if score > bestScore {
			continue
		}
		if q := s.queued.Load(); score < bestScore || q < bestQ {
			best, bestScore, bestQ = i, score, q
		}
	}
	return best
}

// takeSlot hands out a shard-local window slot, recycling freed ones.
// Caller holds pt.mu.
func (pt *partitioner) takeSlot(si int) int32 {
	if free := pt.freeSlots[si]; len(free) > 0 {
		slot := free[len(free)-1]
		pt.freeSlots[si] = free[:len(free)-1]
		return slot
	}
	slot := pt.nextSlot[si]
	pt.nextSlot[si]++
	return slot
}

// maybeSteal rebalances window ownership when the shard backlogs have
// drifted apart by more than the steal threshold: one open,
// not-yet-closing window moves from the most-backlogged shard to the
// least-backlogged one. At most one steal per thief is in flight at a
// time (pendingAdopts), and checks run once per stealCheckEvery routed
// events, so ownership cannot flap. Caller holds pt.mu.
func (pt *partitioner) maybeSteal() {
	shards := pt.p.shards
	victim, thief := 0, 0
	maxQ, minQ := int64(-1), int64(1)<<62
	for i, s := range shards {
		q := s.queued.Load()
		if q > maxQ {
			victim, maxQ = i, q
		}
		if q < minQ {
			thief, minQ = i, q
		}
	}
	if victim == thief || maxQ-minQ <= int64(pt.stealThreshold) {
		return
	}
	if shards[thief].pendingAdopts.Load() != 0 {
		return // previous steal to this thief still in flight
	}
	if w := pt.stealCandidate(victim); w != nil {
		pt.reassign(w, victim, thief)
	}
}

// stealCandidate picks the victim's open window with the most expected
// remaining work, skipping windows about to close — a handoff is only
// worth its evict/adopt rendezvous if future memberships follow it to
// the thief. Count-based windows close by arrivals, so "about to
// close" means most of Count is already consumed; time-based windows
// close by the clock, so the candidate is the arrival-heaviest window
// (the hot one) provided at least a quarter of its span remains.
// Caller holds pt.mu.
func (pt *partitioner) stealCandidate(victim int) *window.Window {
	spec := pt.tracker.Spec()
	var cand *window.Window
	var candScore int64
	for _, w := range pt.tracker.OpenWindows() {
		if w.Tag == 0 {
			continue // not yet placed
		}
		if si, _ := unpackTag(w.Tag); si != victim {
			continue
		}
		var score int64
		if spec.Mode == window.ModeCount {
			rem := int64(spec.Count - w.Arrivals)
			if rem*2 < int64(spec.Count) {
				continue // closing soon; not worth the handoff
			}
			score = rem
		} else {
			if pt.lastTS-w.OpenTS > spec.Length-spec.Length/4 {
				continue // span nearly over
			}
			score = int64(w.Arrivals) // hotness proxy
		}
		if cand == nil || score > candScore {
			cand, candScore = w, score
		}
	}
	return cand
}

// reassign moves one window from victim to thief: an evict op tells the
// victim to push the window struct (buffered entries, counters, pool
// entry and all) into the thief's steal ring, and an adopt op tells the
// thief to receive it into a fresh local slot. Both shards replay their
// op streams in FIFO order, so every membership staged before the steal
// is applied by the victim and every one staged after it by the thief —
// the entry order inside the window is exactly the serial pipeline's.
// The evict is flushed immediately: the thief blocks on the ring when
// it reaches the adopt, and leaving the evict parked in the partitioner
// while a submitter blocks on the thief's full input queue would
// deadlock. (All rendezvous point backwards in staging order — an adopt
// waits only on an evict staged strictly earlier, and FIFO queues only
// on earlier ops — so the earliest unprocessed op can always run and
// the steal protocol cannot deadlock.) Caller holds pt.mu.
func (pt *partitioner) reassign(w *window.Window, victim, thief int) {
	_, vslot := unpackTag(w.Tag)
	pt.stageOp(victim, shardOp{kind: opEvict, slot: vslot, a: uint64(thief)})
	pt.flushShard(victim)
	pt.freeSlots[victim] = append(pt.freeSlots[victim], vslot)
	tslot := pt.takeSlot(thief)
	w.Tag = packTag(thief, tslot)
	weight := occWeight(w)
	pt.p.shards[victim].occupancy.Add(-weight)
	pt.p.shards[thief].occupancy.Add(weight)
	pt.p.shards[thief].pendingAdopts.Add(1)
	pt.stageOp(thief, shardOp{kind: opAdopt, slot: tslot})
}

// stageClose emits the close op for a tracker-closed window, assigns its
// merge epoch (global close order — exactly the serial pipeline's
// emission order), recycles its shard slot and hands the tracker window
// back to the tracker's pool. The slot may be reused by a later open:
// the shard replays its op stream in order, so the reopen cannot
// overtake the close. Caller holds pt.mu.
func (pt *partitioner) stageClose(w *window.Window, now event.Time) {
	si, slot := unpackTag(w.Tag)
	pt.stageOp(si, shardOp{
		kind: opClose,
		slot: slot,
		a:    pt.epoch,
		b:    uint64(now),
	})
	pt.epoch++
	pt.p.shards[si].occupancy.Add(-occWeight(w))
	pt.freeSlots[si] = append(pt.freeSlots[si], slot)
	pt.tracker.Release(w)
}

// submitBatch partitions a batch of events; it blocks while the owning
// shards' bounded queues are full (backpressure). Safe for concurrent
// producers; events of one call are routed contiguously in stream order.
func (pt *partitioner) submitBatch(events []event.Event) {
	if len(events) == 0 {
		return
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.closed || pt.p.failed.Load() {
		return
	}
	pt.arrived = time.Now()
	for _, ev := range events {
		if pt.canceled.Load() {
			break
		}
		pt.p.submitted.Add(1)
		pt.routeOne(ev)
	}
	pt.flushAll()
}

// submitOne is Submit's allocation-free single-event path.
func (pt *partitioner) submitOne(ev event.Event) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.closed || pt.canceled.Load() || pt.p.failed.Load() {
		return
	}
	pt.arrived = time.Now()
	pt.p.submitted.Add(1)
	pt.routeOne(ev)
	pt.flushAll()
}

// close seals the input: remaining tracker windows are flushed closed at
// the last routed timestamp, every staged batch is sent, and the shard
// channels are closed so Run can drain and return. Idempotent.
func (pt *partitioner) close() {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.closed {
		return
	}
	if !pt.canceled.Load() && !pt.p.failed.Load() {
		// After a contained panic the tracker may be mid-route and the
		// shards are in drain mode anyway; skip the final flush closes.
		for _, w := range pt.tracker.Flush() {
			pt.stageClose(w, pt.lastTS)
		}
	}
	pt.flushAll()
	pt.closed = true
	for _, s := range pt.p.shards {
		close(s.in)
	}
	close(pt.done)
}

// cancel puts the partitioner into drop mode after Run's context ended:
// in-flight submits finish their current shard send (the shards are
// draining, so it completes), then stop routing; the shard channels are
// then closed under the same mutex, which can never race a send.
func (pt *partitioner) cancel() {
	pt.canceled.Store(true)
	// Unblock any adopt op waiting on a steal ring whose matching evict
	// will now be dropped with its staged batch.
	pt.p.abortSteals()
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if !pt.closed {
		pt.closed = true
		for _, s := range pt.p.shards {
			close(s.in)
		}
		close(pt.done)
	}
}
