package runtime

import "math"

func floatToBits(f float64) uint64   { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
