package runtime

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/window"
)

// dropFunc is a deterministic, stateless shedding decider: safe to share
// across shards, and its decisions depend only on the membership
// coordinates — exactly the property the shard=N ≡ shard=1 contract
// needs from a shedder.
type dropFunc func(t event.Type, pos, ws int) bool

func (f dropFunc) Drop(t event.Type, pos, ws int) bool { return f(t, pos, ws) }

// propWorkload is one randomized overlapping-window workload.
type propWorkload struct {
	label  string
	spec   window.Spec
	events []event.Event
	shed   bool
}

// makeWorkload derives a workload from a seed: count- or time-based
// windows with random (overlapping) geometry, a random-length stream of
// randomly typed events with either irregular or bursty (skewed)
// timestamp gaps, and optionally a deterministic shedder. Bursty
// streams pack most events into dense clusters separated by long quiet
// gaps, so time-based windows opened inside a burst are far larger than
// the rest — the hot-window skew the work-stealing path rebalances.
func makeWorkload(seed uint64, nEvents int) propWorkload {
	rng := rand.New(rand.NewSource(int64(seed)))
	w := propWorkload{shed: rng.Intn(2) == 0}
	burst := rng.Intn(2) == 0
	if nEvents <= 0 {
		nEvents = 200 + rng.Intn(1200)
	}
	if rng.Intn(2) == 0 {
		count := 3 + rng.Intn(22)
		slide := 1 + rng.Intn(count)
		w.spec = window.Spec{Mode: window.ModeCount, Count: count, Slide: slide}
		w.label = fmt.Sprintf("seed=%d/count=%d/slide=%d/n=%d/shed=%v/burst=%v",
			seed, count, slide, nEvents, w.shed, burst)
	} else {
		length := event.Time(5+rng.Intn(45)) * event.Millisecond
		slide := event.Time(1+rng.Intn(20)) * event.Millisecond
		w.spec = window.Spec{Mode: window.ModeTime, Length: length, SlideTime: slide}
		w.label = fmt.Sprintf("seed=%d/time=%v/slide=%v/n=%d/shed=%v/burst=%v",
			seed, length, slide, nEvents, w.shed, burst)
	}
	w.events = make([]event.Event, nEvents)
	ts := event.Time(0)
	for i := range w.events {
		if burst {
			// ~90% of events arrive back-to-back inside a burst; the
			// rest open long quiet gaps between bursts.
			if rng.Intn(10) == 0 {
				ts += event.Time(5+rng.Intn(20)) * event.Millisecond
			}
		} else {
			ts += event.Time(rng.Intn(3)) * event.Millisecond
		}
		w.events[i] = event.Event{
			Seq:  uint64(i),
			TS:   ts,
			Type: event.Type(rng.Intn(3)),
		}
	}
	return w
}

func (w propWorkload) config() Config {
	p := pattern.MustCompile(pattern.Pattern{
		Name: "seq(A;B)",
		Steps: []pattern.Step{
			{Types: []event.Type{typeA}},
			{Types: []event.Type{typeB}},
		},
	})
	cfg := Config{Operator: operator.Config{
		Window:   w.spec,
		Patterns: []*pattern.Compiled{p},
	}}
	if w.shed {
		cfg.Operator.Shedder = dropFunc(func(t event.Type, pos, ws int) bool {
			return (int(t)+pos)%3 == 0
		})
	}
	return cfg
}

// streamSignature renders a complex-event stream byte-comparable:
// identity, pattern and detection time, in emission order.
func streamSignature(ces []operator.ComplexEvent) string {
	var b strings.Builder
	for _, ce := range ces {
		fmt.Fprintf(&b, "%s|%s|%d\n", ce.Key(), ce.Pattern, ce.DetectedAt)
	}
	return b.String()
}

// TestShardedEquivalenceProperty is the property sweep behind the
// scale-out refactor: over randomized overlapping-window workloads
// (count and time modes, skewed and uniform arrivals, with and without
// shedding), every sharded pipeline in {2,4,8} emits a byte-identical
// complex-event stream to the serial pipeline — with work stealing
// disabled and with it forced aggressive (threshold 1 plus a small
// processing delay so backlogs actually build and windows actually
// move). Run with -race to exercise the partitioner, shard, steal-ring
// and epoch-merge handoffs.
func TestShardedEquivalenceProperty(t *testing.T) {
	harness.VerifyNoLeaks(t)
	for seed := uint64(1); seed <= 6; seed++ {
		w := makeWorkload(seed, 0)
		t.Run(w.label, func(t *testing.T) {
			serial, _ := runCollect(t, w.config(), w.events)
			want := streamSignature(serial)
			if want == "" {
				t.Skip("workload detects nothing; equivalence would be vacuous")
			}
			for _, shards := range []int{2, 4, 8} {
				for _, steal := range []int{-1, 1} {
					cfg := w.config()
					cfg.Shards = shards
					cfg.StealThreshold = steal
					if steal > 0 {
						cfg.ProcessingDelay = 5 * time.Microsecond
					}
					sharded, _ := runCollect(t, cfg, w.events)
					if got := streamSignature(sharded); got != want {
						t.Errorf("shards=%d/steal=%d: stream differs from serial (%d vs %d complex events)",
							shards, steal, len(sharded), len(serial))
					}
				}
			}
		})
	}
}

// FuzzShardedEquivalence lets the fuzzer search the workload space —
// including the skewed (bursty) arrival flavor baked into makeWorkload
// — for any divergence between the serial pipeline and a 4-shard
// deployment, with work stealing either disabled or forced aggressive.
func FuzzShardedEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(300), false)
	f.Add(uint64(7), uint16(900), true)
	f.Add(uint64(42), uint16(512), true)
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, steal bool) {
		nEvents := int(n)%1000 + 50 // bound the per-input cost
		w := makeWorkload(seed, nEvents)
		serial, _ := runCollect(t, w.config(), w.events)
		cfg := w.config()
		cfg.Shards = 4
		cfg.StealThreshold = -1
		if steal {
			cfg.StealThreshold = 1
			cfg.ProcessingDelay = 5 * time.Microsecond
		}
		sharded, _ := runCollect(t, cfg, w.events)
		if want, got := streamSignature(serial), streamSignature(sharded); got != want {
			t.Fatalf("%s steal=%v: sharded stream differs from serial (%d vs %d complex events)",
				w.label, steal, len(sharded), len(serial))
		}
	})
}
