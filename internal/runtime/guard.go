// Panic containment. The pipeline's processing paths — the serial
// processing goroutine, the shard workers, and (when sharded) the
// partitioner running inline in the submitter — all execute user code:
// shedder deciders, window-close hooks, pattern matchers. A panic in
// any of them must not take the process down, and must not wedge the
// producers feeding the pipeline.
//
// The containment contract is drain-don't-die: the first panic trips
// the pipeline's failed flag and is captured as a *PanicError; every
// processing path then keeps draining its input while skipping all
// work (exactly like the context-canceled path), so a blocked producer
// always completes its send and teardown never deadlocks. Run returns
// the PanicError once the input is sealed. The multi-query engine
// layers quarantine on top: its Config.OnPanic callback fires once per
// pipeline, from the goroutine that panicked, right when the flag
// trips.
//
// The guards are deferred method calls with no closure captures, so
// they compile to open-coded defers and add no allocations to the
// steady-state hot paths (the zero-alloc gates cover this).
package runtime

import (
	"context"
	"fmt"
	runtimedebug "runtime/debug"
	"time"
)

// PanicError is a panic captured inside a pipeline processing path. It
// implements error; Run returns it after the pipeline drained.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack string
	// When is the capture time.
	When time.Time
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runtime: pipeline panic: %v", e.Value)
}

// Failed reports whether a processing panic has tripped the pipeline.
// A failed pipeline drains submissions without processing them; callers
// (the engine's fan-out) use this to stop delivering cheaply.
func (p *Pipeline) Failed() bool { return p.failed.Load() }

// PanicError returns the captured panic, nil while the pipeline is
// healthy.
func (p *Pipeline) PanicError() *PanicError {
	return p.panicErr.Load()
}

// Trip records a panic value against the pipeline: the first call
// captures the stack, trips the failed flag and fires Config.OnPanic
// (from the calling goroutine); later calls return the first capture.
// The pipeline itself calls it from its recovery guards; embedding
// layers call it to attribute a panic the pipeline's submit path threw
// into their goroutine (the sharded partitioner runs windowing inline
// in SubmitBatch).
func (p *Pipeline) Trip(v any) *PanicError {
	pe := &PanicError{Value: v, Stack: string(runtimedebug.Stack()), When: time.Now()}
	if !p.panicErr.CompareAndSwap(nil, pe) {
		return p.panicErr.Load()
	}
	p.failed.Store(true)
	// A dying sharded pipeline may strand a steal handoff (the panic
	// unwound past an evict, or a drained batch dropped one); release
	// any shard blocked on its ring so teardown cannot deadlock.
	p.abortSteals()
	if p.cfg.OnPanic != nil {
		p.cfg.OnPanic(pe)
	}
	return pe
}

// recoverProc is the serial processing guard: deferred by processOne
// and flushGuarded, it converts a panic into the pipeline's PanicError.
func (p *Pipeline) recoverProc(errp *error) {
	if r := recover(); r != nil {
		*errp = p.Trip(r)
	}
}

// drainIn consumes the serial input queue without processing after a
// panic tripped the pipeline, releasing backpressure slots so blocked
// producers always complete; it returns when the input is sealed or
// the context ends.
func (p *Pipeline) drainIn(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case msg, ok := <-p.in:
			if !ok {
				return
			}
			if msg.batch == nil {
				p.releaseSlot()
			} else {
				for range msg.batch {
					p.releaseSlot()
				}
			}
		}
	}
}

// flushGuarded runs the end-of-input flush under the processing guard:
// a panic in a window-close hook during the final flush is contained
// like any other.
func (p *Pipeline) flushGuarded(ctx context.Context) (err error) {
	defer p.recoverProc(&err)
	p.flush(ctx)
	return nil
}

// recoverBatch is the shard worker guard: deferred by processBatch, it
// trips the pipeline and completes the batch's backlog accounting (the
// panic unwound past the normal decrement — b.members is still set, the
// normal path zeroes it before returning).
func (s *shard) recoverBatch(b *shardBatch) {
	if r := recover(); r != nil {
		s.pipe.Trip(r)
		s.queued.Add(-int64(b.members))
	}
}
