package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/operator"
	"repro/internal/window"
)

// LifecycleConfig configures the online model lifecycle: instead of
// handing the pipeline a frozen, offline-trained model, the caller hands
// it a training policy. The pipeline then taps its own window closes to
// train the utility model in flight, swaps it into every shedder once
// warm, and — with Drift set — retrains and re-swaps when the input
// distribution shifts away from the model.
type LifecycleConfig struct {
	// Types is M, the registry size the utility table is dimensioned for
	// (required).
	Types int
	// N is the logical window size of the utility table. 0 derives it
	// from the pipeline's window spec (Count, then SizeHint); if neither
	// is set the builder defers sizing to the average observed window
	// size at build time.
	N int
	// BinSize aggregates neighboring positions per table cell (0/1 =
	// off), exactly as in offline training.
	BinSize int
	// SampleEvery feeds every k-th closed window to the trainer and the
	// drift detector; 0 or 1 samples every close. Larger values bound
	// the tap cost on dense window streams.
	SampleEvery int
	// WarmupWindows is how many sampled windows (including at least one
	// with a complex event) must accumulate before a model is built and
	// swapped in. Default 64.
	WarmupWindows int
	// MinRetrainInterval throttles how often a rebuilt model may be
	// swapped in. Default 1s.
	MinRetrainInterval time.Duration
	// Drift, when non-nil, arms drift-triggered retraining: a
	// Page-Hinkley detector over the model-mismatch fraction raises an
	// alarm, the lifecycle discards the statistics gathered under the
	// old distribution, re-collects WarmupWindows fresh ones and swaps
	// the retrained model in. Nil leaves only explicit Retrain calls.
	Drift *core.DriftConfig
	// Interval is the supervisor poll period. Default 20ms.
	Interval time.Duration
}

func (c *LifecycleConfig) applyDefaults() {
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
	if c.WarmupWindows <= 0 {
		c.WarmupWindows = 64
	}
	if c.MinRetrainInterval <= 0 {
		c.MinRetrainInterval = time.Second
	}
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
}

// LifecycleStats is a snapshot of the lifecycle counters.
type LifecycleStats struct {
	// Trained reports whether a trained model is currently published to
	// the shedders.
	Trained bool
	// Collecting reports whether the lifecycle is gathering statistics
	// toward the next model (initial warm-up or post-alarm recollection).
	Collecting bool
	// WindowsSampled counts closed windows forwarded to the trainer
	// across all taps (lifetime).
	WindowsSampled uint64
	// Builds counts models built and swapped into the shedders (the
	// initial training plus every retrain).
	Builds uint64
	// DriftAlarms counts drift-detector alarms acted upon.
	DriftAlarms uint64
	// MismatchMean is the drift detector's running model-mismatch mean
	// (0 when drift detection is off or not yet armed).
	MismatchMean float64
	// ModelWindows and ModelMatches echo the training coverage of the
	// currently published model (0 until trained).
	ModelWindows int
	ModelMatches int
}

// Lifecycle supervises the online model lifecycle of one pipeline: its
// taps accumulate per-shard training statistics without contention, and
// its supervisor step merges them, builds models and swaps them into
// every registered shedder in lockstep. Construct it through
// runtime.Config.Lifecycle; tests may drive step directly.
type Lifecycle struct {
	cfg  LifecycleConfig
	bcfg core.ModelBuilderConfig

	shedders []*core.Shedder
	taps     []*operator.FeedbackTap

	retrainReq atomic.Bool

	mu         sync.Mutex
	drift      *core.DriftDetector
	model      *core.Model // last model this lifecycle built, nil before
	collecting bool
	lastSwap   time.Time

	builds      atomic.Uint64
	driftAlarms atomic.Uint64
}

// newLifecycle validates the configuration and builds a supervisor over
// the given shedders. spec resolves N when the config leaves it 0.
func newLifecycle(cfg LifecycleConfig, shedders []*core.Shedder, spec window.Spec) (*Lifecycle, error) {
	cfg.applyDefaults()
	if cfg.Types <= 0 {
		return nil, fmt.Errorf("runtime: LifecycleConfig.Types must be > 0, got %d", cfg.Types)
	}
	if len(shedders) == 0 {
		return nil, fmt.Errorf("runtime: lifecycle needs at least one core.Shedder " +
			"(set Operator.Shedder or ShardDeciders to shedders over an untrained model)")
	}
	n := cfg.N
	if n == 0 {
		n = SpecWindowSize(spec)
	}
	l := &Lifecycle{
		cfg:      cfg,
		bcfg:     core.ModelBuilderConfig{Types: cfg.Types, N: n, BinSize: cfg.BinSize},
		shedders: shedders,
	}
	// Validate the builder configuration once, up front.
	if _, err := core.NewModelBuilder(l.bcfg); err != nil {
		return nil, err
	}
	// A pre-trained starting model (the shedders were built over one)
	// arms drift detection immediately; an untrained start collects
	// toward the first model.
	initial := shedders[0].Model()
	if initial != nil && initial.Trained() {
		l.model = initial
		if cfg.Drift != nil {
			d, err := core.NewDriftDetector(initial, *cfg.Drift)
			if err != nil {
				return nil, err
			}
			l.drift = d
		}
	} else {
		l.collecting = true
	}
	return l, nil
}

// newTap creates and registers one feedback tap; the pipeline gives one
// to each window-closing goroutine (the serial loop, or each shard).
// All taps must be created before Run starts the supervisor.
func (l *Lifecycle) newTap() (*operator.FeedbackTap, error) {
	mb, err := core.NewModelBuilder(l.bcfg)
	if err != nil {
		return nil, err
	}
	t, err := operator.NewFeedbackTap(mb, l.cfg.SampleEvery)
	if err != nil {
		return nil, err
	}
	t.SetDrift(l.drift)
	l.taps = append(l.taps, t)
	return t, nil
}

// Retrain requests an explicit model rebuild from the statistics
// accumulated since the last swap: the next supervisor step rebuilds and
// swaps as soon as the warm-up threshold is met (immediately, if it
// already is). Unlike a drift alarm, accumulated statistics are kept.
func (l *Lifecycle) Retrain() { l.retrainReq.Store(true) }

// Stats returns a snapshot of the lifecycle counters.
func (l *Lifecycle) Stats() LifecycleStats {
	st := LifecycleStats{
		Builds:      l.builds.Load(),
		DriftAlarms: l.driftAlarms.Load(),
	}
	for _, t := range l.taps {
		st.WindowsSampled += t.WindowsSampled()
	}
	l.mu.Lock()
	st.Collecting = l.collecting
	if l.model != nil && l.model.Trained() {
		st.Trained = true
		st.ModelWindows = l.model.Windows()
		st.ModelMatches = l.model.Matches()
	}
	drift := l.drift
	l.mu.Unlock()
	if drift != nil {
		st.MismatchMean = drift.MismatchMean()
	}
	return st
}

// Model returns the model most recently built and swapped in by this
// lifecycle (nil before the first build).
func (l *Lifecycle) Model() *core.Model {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.model
}

// maxStaleWindows bounds how many windows a tap builder may accumulate
// while the lifecycle is stable (no rebuild pending): enough to satisfy
// a sudden explicit Retrain many times over, small enough to bound
// deferred-mode buffering.
func (l *Lifecycle) maxStaleWindows() int {
	if cap := 16 * l.cfg.WarmupWindows; cap > 1024 {
		return cap
	}
	return 1024
}

// SpecWindowSize resolves a windowing policy's nominal size in events:
// the count-window size, else the time-window size hint, else 0. The
// lifecycle, the engine's untrained placeholder models and the budget's
// per-window cost estimate all share this resolution so they never
// disagree about a query's coordinate system.
func SpecWindowSize(spec window.Spec) int {
	switch {
	case spec.Mode == window.ModeCount && spec.Count > 0:
		return spec.Count
	case spec.SizeHint > 0:
		return spec.SizeHint
	default:
		return 0
	}
}

// step is one supervision tick: act on a drift alarm or an explicit
// retrain request, and build-and-swap once the warm-up threshold is met.
// It reports whether a model was swapped in.
func (l *Lifecycle) step(now time.Time) bool {
	forced := l.retrainReq.Swap(false)
	l.mu.Lock()
	defer l.mu.Unlock()

	if !l.collecting {
		drifted := l.drift != nil && l.drift.Drifted()
		if !drifted && !forced {
			// Stable: keep the accumulated statistics fresh but bounded.
			// Deferred-mode builders (N unresolved) buffer window copies,
			// so an uncapped stable phase would grow without limit; a
			// rolling restart also means an explicit Retrain rebuilds
			// from *recent* traffic rather than the whole history.
			for _, t := range l.taps {
				if w, _ := t.BuilderStats(); w > l.maxStaleWindows() {
					t.ResetBuilder()
				}
			}
			return false
		}
		if drifted {
			l.driftAlarms.Add(1)
			// Statistics gathered under the drifted-away-from
			// distribution would dilute the retrained model; restart
			// collection from the post-shift stream. An explicit Retrain
			// keeps them — the operator asserts they are representative.
			for _, t := range l.taps {
				t.ResetBuilder()
			}
		}
		l.collecting = true
		// Fall through: a forced retrain may already be warm.
	}

	var windows, matches int
	for _, t := range l.taps {
		w, m := t.BuilderStats()
		windows += w
		matches += m
	}
	if windows < l.cfg.WarmupWindows || matches == 0 {
		return false
	}
	if !l.lastSwap.IsZero() && now.Sub(l.lastSwap) < l.cfg.MinRetrainInterval {
		return false
	}

	merged, err := core.NewModelBuilder(l.bcfg)
	if err != nil {
		return false
	}
	for _, t := range l.taps {
		if err := t.DrainInto(merged); err != nil {
			return false
		}
	}
	model, err := merged.Build()
	if err != nil {
		return false
	}
	for _, s := range l.shedders {
		// SwapModel only fails when CDT derivation does; the shedders
		// share the partitioning-bearing state they were configured
		// with, so a failure here would repeat on every shedder.
		if err := s.SwapModel(model); err != nil {
			return false
		}
	}
	l.model = model
	l.lastSwap = now
	l.collecting = false
	l.builds.Add(1)

	// Swap-then-rearm: point the drift detector at the new model and
	// clear its statistic so the next alarm measures the new model.
	if l.cfg.Drift != nil {
		if l.drift == nil {
			if d, derr := core.NewDriftDetector(model, *l.cfg.Drift); derr == nil {
				l.drift = d
				for _, t := range l.taps {
					t.SetDrift(d)
				}
			}
		} else {
			_ = l.drift.Reset(model)
		}
	}
	return true
}

// run drives step on the configured interval until stop closes; the
// pipeline starts it alongside the detector loop.
func (l *Lifecycle) run(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(l.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			// One final step so an end-of-stream Retrain request (or a
			// warm-up crossed in the last interval) is not lost.
			l.step(time.Now())
			return
		case now := <-ticker.C:
			l.step(now)
		}
	}
}
