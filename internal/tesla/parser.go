package tesla

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/queries"
	"repro/internal/window"
)

// Env supplies the name bindings a query compiles against.
type Env struct {
	// Registry resolves type names; required. Unknown type names are an
	// error — silently registering them would mask typos and desynchronize
	// the utility table dimensions.
	Registry *event.Registry
	// Schema resolves attribute names in where-clauses; optional (queries
	// using attribute predicates fail without it).
	Schema *event.Schema
}

// kindNames maps where-clause kind literals to event kinds.
var kindNames = map[string]event.Kind{
	"none":       event.KindNone,
	"rising":     event.KindRising,
	"falling":    event.KindFalling,
	"possession": event.KindPossession,
	"defend":     event.KindDefend,
	"position":   event.KindPosition,
}

// Parse compiles a textual query to an executable queries.Query.
func Parse(src string, env Env) (queries.Query, error) {
	if env.Registry == nil {
		return queries.Query{}, fmt.Errorf("tesla: Env.Registry is required")
	}
	toks, err := lex(src)
	if err != nil {
		return queries.Query{}, err
	}
	p := &parser{toks: toks, env: env}
	q, err := p.parseQuery()
	if err != nil {
		return queries.Query{}, err
	}
	if p.cur().kind != tokEOF {
		return queries.Query{}, p.errf("trailing input after query (use ParseMulti for multi-query sources)")
	}
	return q, nil
}

// ParseMulti compiles a source holding several queries — a sequence of
// `define ...` blocks, each following the Parse grammar — into one query
// per block. This is the multi-query file format consumed by the engine
// deployment layer (`espice-live -queries`): '#' comments and blank lines
// are free between blocks, and each new `define` keyword starts the next
// query. Query names must be unique within one source.
func ParseMulti(src string, env Env) ([]queries.Query, error) {
	if env.Registry == nil {
		return nil, fmt.Errorf("tesla: Env.Registry is required")
	}
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, env: env}
	var qs []queries.Query
	seen := make(map[string]struct{})
	for p.cur().kind != tokEOF {
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if _, dup := seen[q.Name]; dup {
			return nil, fmt.Errorf("tesla: duplicate query name %q", q.Name)
		}
		seen[q.Name] = struct{}{}
		qs = append(qs, q)
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("tesla: no queries in source")
	}
	return qs, nil
}

type parser struct {
	toks []token
	i    int
	env  Env
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("tesla: offset %d (near %q): %s", p.cur().pos, p.cur().text,
		fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	if !p.cur().keyword(kw) {
		return p.errf("expected %q", kw)
	}
	p.next()
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if p.cur().kind != tokSymbol || p.cur().text != sym {
		return p.errf("expected %q", sym)
	}
	p.next()
	return nil
}

// parseQuery parses the full query form:
//
//	define NAME
//	from seq(...) [or seq(...)]...
//	within DURATION | within N events
//	[open TYPE[, TYPE]...]
//	[slide N | slide DURATION]
//	[select first|last]
//	[consume zero|consumed]
//	[anchored]
func (p *parser) parseQuery() (queries.Query, error) {
	var q queries.Query
	if err := p.expectKeyword("define"); err != nil {
		return q, err
	}
	if p.cur().kind != tokWord {
		return q, p.errf("expected query name")
	}
	q.Name = p.next().text

	if err := p.expectKeyword("from"); err != nil {
		return q, err
	}
	var protos []pattern.Pattern
	for {
		proto, err := p.parseSeq()
		if err != nil {
			return q, err
		}
		protos = append(protos, proto)
		if !p.cur().keyword("or") {
			break
		}
		p.next()
	}

	spec, err := p.parseWindowClauses()
	if err != nil {
		return q, err
	}
	q.Window = spec

	selection := pattern.SelectFirst
	consumption := pattern.ConsumeZero
	anchored := false
	for {
		switch {
		case p.cur().keyword("select"):
			p.next()
			switch {
			case p.cur().keyword("first"):
				selection = pattern.SelectFirst
			case p.cur().keyword("last"):
				selection = pattern.SelectLast
			default:
				return q, p.errf("expected first or last")
			}
			p.next()
		case p.cur().keyword("consume"):
			p.next()
			switch {
			case p.cur().keyword("zero"):
				consumption = pattern.ConsumeZero
			case p.cur().keyword("consumed"):
				consumption = pattern.Consumed
			default:
				return q, p.errf("expected zero or consumed")
			}
			p.next()
		case p.cur().keyword("anchored"):
			anchored = true
			p.next()
		// A following `define` begins the next query of a multi-query
		// source (ParseMulti); it ends this one like EOF does.
		case p.cur().kind == tokEOF, p.cur().keyword("define"):
			for i, proto := range protos {
				proto.Name = q.Name
				if len(protos) > 1 {
					proto.Name = fmt.Sprintf("%s#%d", q.Name, i)
				}
				proto.Selection = selection
				proto.Consumption = consumption
				proto.Anchored = anchored
				compiled, err := pattern.Compile(proto)
				if err != nil {
					return q, err
				}
				q.Patterns = append(q.Patterns, compiled)
			}
			q.NumTypes = p.env.Registry.Len()
			return q, nil
		default:
			return q, p.errf("unexpected token")
		}
	}
}

// parseSeq parses seq(STEP; STEP; ...).
func (p *parser) parseSeq() (pattern.Pattern, error) {
	var proto pattern.Pattern
	if err := p.expectKeyword("seq"); err != nil {
		return proto, err
	}
	if err := p.expectSymbol("("); err != nil {
		return proto, err
	}
	for {
		step, err := p.parseStep()
		if err != nil {
			return proto, err
		}
		proto.Steps = append(proto.Steps, step)
		if p.cur().kind == tokSymbol && p.cur().text == ";" {
			p.next()
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return proto, err
	}
	return proto, nil
}

// parseStep parses one pattern element:
//
//	[not] any N [distinct] of TYPES [where COND]
//	[not] all of TYPES [where COND]
//	[not] cumulative [N] [distinct] of TYPES [where COND]
//	[not] TYPES [where COND]
func (p *parser) parseStep() (pattern.Step, error) {
	var s pattern.Step
	if p.cur().keyword("not") {
		s.Neg = true
		p.next()
	}
	switch {
	case p.cur().keyword("any"):
		p.next()
		n, err := p.parseInt()
		if err != nil {
			return s, err
		}
		s.AnyN = n
		if p.cur().keyword("distinct") {
			s.Distinct = true
			p.next()
		}
		if err := p.expectKeyword("of"); err != nil {
			return s, err
		}
	case p.cur().keyword("all"):
		p.next()
		s.All = true
		if err := p.expectKeyword("of"); err != nil {
			return s, err
		}
	case p.cur().keyword("cumulative"):
		p.next()
		s.Cumulative = true
		if p.cur().kind == tokNumber {
			n, err := p.parseInt()
			if err != nil {
				return s, err
			}
			s.AnyN = n
		}
		if p.cur().keyword("distinct") {
			s.Distinct = true
			p.next()
		}
		if err := p.expectKeyword("of"); err != nil {
			return s, err
		}
	}
	types, err := p.parseTypeList()
	if err != nil {
		return s, err
	}
	s.Types = types
	if p.cur().keyword("where") {
		p.next()
		pred, err := p.parseCondition()
		if err != nil {
			return s, err
		}
		s.Pred = pred
	}
	return s, nil
}

// parseTypeList parses "*" (wildcard: nil) or a comma-separated list of
// registered type names.
func (p *parser) parseTypeList() ([]event.Type, error) {
	if p.cur().kind == tokWord && p.cur().text == "*" {
		p.next()
		return nil, nil
	}
	var types []event.Type
	for {
		if p.cur().kind != tokWord {
			return nil, p.errf("expected type name")
		}
		name := p.next().text
		id, ok := p.env.Registry.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("tesla: unknown event type %q", name)
		}
		types = append(types, id)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			// Lookahead: a comma inside a type list is only a separator if
			// a word follows; the window clause "open A, B" reuses this.
			p.next()
			continue
		}
		break
	}
	return types, nil
}

// parseCondition parses COND ::= TERM ("and" TERM)*, where TERM is
// "kind = NAME" or "ATTR OP NUMBER".
func (p *parser) parseCondition() (pattern.Predicate, error) {
	var preds []pattern.Predicate
	for {
		term, err := p.parseCondTerm()
		if err != nil {
			return nil, err
		}
		preds = append(preds, term)
		if p.cur().keyword("and") {
			p.next()
			continue
		}
		break
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return func(e event.Event) bool {
		for _, pr := range preds {
			if !pr(e) {
				return false
			}
		}
		return true
	}, nil
}

func (p *parser) parseCondTerm() (pattern.Predicate, error) {
	if p.cur().kind != tokWord {
		return nil, p.errf("expected attribute or 'kind'")
	}
	field := p.next().text
	if p.cur().kind != tokSymbol {
		return nil, p.errf("expected comparison operator")
	}
	op := p.next().text

	if strings.EqualFold(field, "kind") {
		if op != "=" && op != "!=" {
			return nil, fmt.Errorf("tesla: kind only supports = and !=, got %q", op)
		}
		if p.cur().kind != tokWord {
			return nil, p.errf("expected kind name")
		}
		name := strings.ToLower(p.next().text)
		k, ok := kindNames[name]
		if !ok {
			return nil, fmt.Errorf("tesla: unknown kind %q", name)
		}
		if op == "=" {
			return func(e event.Event) bool { return e.Kind == k }, nil
		}
		return func(e event.Event) bool { return e.Kind != k }, nil
	}

	if p.env.Schema == nil {
		return nil, fmt.Errorf("tesla: attribute predicate on %q requires a schema", field)
	}
	idx, ok := p.env.Schema.Index(field)
	if !ok {
		return nil, fmt.Errorf("tesla: unknown attribute %q", field)
	}
	if p.cur().kind != tokNumber {
		return nil, p.errf("expected numeric literal")
	}
	lit, err := strconv.ParseFloat(strings.TrimRight(p.next().text, "ms"), 64)
	if err != nil {
		return nil, fmt.Errorf("tesla: bad number: %w", err)
	}
	switch op {
	case "=":
		return func(e event.Event) bool { return e.Val(idx) == lit }, nil
	case "!=":
		return func(e event.Event) bool { return e.Val(idx) != lit }, nil
	case "<":
		return func(e event.Event) bool { return e.Val(idx) < lit }, nil
	case "<=":
		return func(e event.Event) bool { return e.Val(idx) <= lit }, nil
	case ">":
		return func(e event.Event) bool { return e.Val(idx) > lit }, nil
	case ">=":
		return func(e event.Event) bool { return e.Val(idx) >= lit }, nil
	default:
		return nil, fmt.Errorf("tesla: unknown operator %q", op)
	}
}

// parseWindowClauses parses "within ..." plus optional "open"/"slide".
func (p *parser) parseWindowClauses() (window.Spec, error) {
	var spec window.Spec
	if err := p.expectKeyword("within"); err != nil {
		return spec, err
	}
	if p.cur().kind != tokNumber {
		return spec, p.errf("expected window size")
	}
	numTok := p.next()
	if p.cur().keyword("events") {
		p.next()
		n, err := parsePlainInt(numTok.text)
		if err != nil {
			return spec, err
		}
		spec.Mode = window.ModeCount
		spec.Count = n
	} else {
		d, err := parseDuration(numTok.text)
		if err != nil {
			return spec, err
		}
		spec.Mode = window.ModeTime
		spec.Length = d
	}

	for {
		switch {
		case p.cur().keyword("open"):
			p.next()
			types, err := p.parseTypeList()
			if err != nil {
				return spec, err
			}
			if types == nil {
				spec.Open = func(event.Event) bool { return true }
			} else {
				set := make(map[event.Type]struct{}, len(types))
				for _, t := range types {
					set[t] = struct{}{}
				}
				spec.Open = func(e event.Event) bool {
					_, ok := set[e.Type]
					return ok
				}
			}
		case p.cur().keyword("slide"):
			p.next()
			if p.cur().kind != tokNumber {
				return spec, p.errf("expected slide size")
			}
			tk := p.next()
			if spec.Mode == window.ModeCount {
				n, err := parsePlainInt(tk.text)
				if err != nil {
					return spec, err
				}
				spec.Slide = n
				if p.cur().keyword("events") {
					p.next()
				}
			} else {
				d, err := parseDuration(tk.text)
				if err != nil {
					return spec, err
				}
				spec.SlideTime = d
			}
		default:
			if err := spec.Validate(); err != nil {
				return spec, fmt.Errorf("tesla: %w", err)
			}
			return spec, nil
		}
	}
}

func (p *parser) parseInt() (int, error) {
	if p.cur().kind != tokNumber {
		return 0, p.errf("expected integer")
	}
	return parsePlainInt(p.next().text)
}

func parsePlainInt(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("tesla: bad integer %q: %w", s, err)
	}
	return n, nil
}

// parseDuration parses "240s", "500ms", "4m" or a bare number of seconds.
func parseDuration(s string) (event.Time, error) {
	unit := event.Second
	num := s
	switch {
	case strings.HasSuffix(s, "ms"):
		unit = event.Millisecond
		num = s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		num = s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		unit = event.Minute
		num = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("tesla: bad duration %q: %w", s, err)
	}
	if v <= 0 {
		return 0, fmt.Errorf("tesla: duration %q must be positive", s)
	}
	return event.Time(v * float64(unit)), nil
}
