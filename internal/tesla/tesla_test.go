package tesla

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/window"
)

func testEnv(t *testing.T) Env {
	t.Helper()
	reg := event.NewRegistry()
	reg.RegisterAll("A", "B", "C", "STR", "DEF1", "DEF2")
	return Env{Registry: reg, Schema: event.NewSchema("price", "change")}
}

func TestLexer(t *testing.T) {
	toks, err := lex("seq(A; any 3 of *) >= 2.5 # comment\nnext")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	want := "seq ( A ; any 3 of * ) >= 2.5 next"
	if got := strings.Join(texts, " "); got != want {
		t.Errorf("tokens = %q, want %q", got, want)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("a ! b"); err == nil {
		t.Error("bare '!' must fail")
	}
	if _, err := lex("a $ b"); err == nil {
		t.Error("unknown character must fail")
	}
}

func TestParseBasicSequence(t *testing.T) {
	q, err := Parse(`
		define Simple
		from seq(A; B)
		within 60s
		slide 30s
	`, testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "Simple" {
		t.Errorf("name = %q", q.Name)
	}
	if q.Window.Mode != window.ModeTime || q.Window.Length != 60*event.Second {
		t.Errorf("window = %+v", q.Window)
	}
	if q.Window.SlideTime != 30*event.Second {
		t.Errorf("slide = %v", q.Window.SlideTime)
	}
	if len(q.Patterns) != 1 {
		t.Fatalf("patterns = %d", len(q.Patterns))
	}
	steps := q.Patterns[0].Pattern().Steps
	if len(steps) != 2 || len(steps[0].Types) != 1 || len(steps[1].Types) != 1 {
		t.Errorf("steps = %+v", steps)
	}
}

func TestParseFullQueryRuns(t *testing.T) {
	// A Q1-like query compiled from text and executed on a small stream.
	env := testEnv(t)
	q, err := Parse(`
		define ManMarking
		from seq(STR where kind = possession;
		         any 2 distinct of DEF1, DEF2 where kind = defend)
		within 10s
		open STR
		select first
		anchored
	`, env)
	if err != nil {
		t.Fatal(err)
	}
	op, err := operator.New(operator.Config{Window: q.Window, Patterns: q.Patterns})
	if err != nil {
		t.Fatal(err)
	}
	str, _ := env.Registry.Lookup("STR")
	d1, _ := env.Registry.Lookup("DEF1")
	d2, _ := env.Registry.Lookup("DEF2")
	evs := []event.Event{
		{Seq: 0, Type: str, TS: 0, Kind: event.KindPossession},
		{Seq: 1, Type: d1, TS: 1 * event.Second, Kind: event.KindDefend},
		{Seq: 2, Type: d2, TS: 2 * event.Second, Kind: event.KindDefend},
		{Seq: 3, Type: d1, TS: 20 * event.Second, Kind: event.KindDefend},
	}
	var detected []operator.ComplexEvent
	for _, e := range evs {
		detected = append(detected, op.Process(e)...)
	}
	detected = append(detected, op.Flush(20*event.Second)...)
	if len(detected) != 1 {
		t.Fatalf("detected = %d, want 1", len(detected))
	}
	if len(detected[0].Constituents) != 3 {
		t.Errorf("constituents = %v", detected[0].Constituents)
	}
}

func TestParseCountWindowWithSlide(t *testing.T) {
	q, err := Parse(`
		define Q4ish
		from seq(A; A; B)
		within 500 events
		slide 100
	`, testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if q.Window.Mode != window.ModeCount || q.Window.Count != 500 || q.Window.Slide != 100 {
		t.Errorf("window = %+v", q.Window)
	}
}

func TestParseOrPatterns(t *testing.T) {
	q, err := Parse(`
		define RiseOrFall
		from seq(A where kind = rising; cumulative 2 of * where kind = rising)
		  or seq(A where kind = falling; cumulative 2 of * where kind = falling)
		within 100 events
		open A
	`, testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 2 {
		t.Fatalf("patterns = %d, want 2", len(q.Patterns))
	}
	if !strings.Contains(q.Patterns[0].Pattern().Name, "#0") {
		t.Errorf("pattern names should be disambiguated: %q", q.Patterns[0].Pattern().Name)
	}
	last := q.Patterns[0].Pattern().Steps[1]
	if !last.Cumulative || last.AnyN != 2 || last.Types != nil {
		t.Errorf("cumulative step = %+v", last)
	}
}

func TestParseNegationAndConjunction(t *testing.T) {
	q, err := Parse(`
		define Guard
		from seq(A; not B; all of B, C)
		within 50 events
		slide 50
		consume consumed
	`, testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	steps := q.Patterns[0].Pattern().Steps
	if !steps[1].Neg {
		t.Error("step 1 should be negated")
	}
	if !steps[2].All || len(steps[2].Types) != 2 {
		t.Errorf("step 2 = %+v", steps[2])
	}
	if q.Patterns[0].Pattern().Consumption != pattern.Consumed {
		t.Error("consumption not applied")
	}
}

func TestParseAttributePredicates(t *testing.T) {
	env := testEnv(t)
	q, err := Parse(`
		define BigMoves
		from seq(A where change > 0.5 and price <= 100; B where change != 0)
		within 10 events
		slide 10
	`, env)
	if err != nil {
		t.Fatal(err)
	}
	pred := q.Patterns[0].Pattern().Steps[0].Pred
	if pred == nil {
		t.Fatal("predicate missing")
	}
	ok := pred(event.Event{Vals: []float64{99, 0.6}})
	if !ok {
		t.Error("should accept price=99 change=0.6")
	}
	if pred(event.Event{Vals: []float64{101, 0.6}}) {
		t.Error("should reject price=101")
	}
	if pred(event.Event{Vals: []float64{99, 0.4}}) {
		t.Error("should reject change=0.4")
	}
}

func TestParseSelectLast(t *testing.T) {
	q, err := Parse(`
		define L
		from seq(A; B)
		within 10 events
		slide 5
		select last
	`, testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].Pattern().Selection != pattern.SelectLast {
		t.Error("selection not applied")
	}
}

func TestParseErrors(t *testing.T) {
	env := testEnv(t)
	cases := []struct {
		name string
		src  string
	}{
		{"missing define", `from seq(A) within 10 events slide 5`},
		{"missing name", `define from seq(A) within 10 events slide 5`},
		{"unknown type", `define X from seq(NOPE) within 10 events slide 5`},
		{"missing within", `define X from seq(A) slide 5`},
		{"no opener", `define X from seq(A) within 10 events`},
		{"bad select", `define X from seq(A) within 10 events slide 5 select sometimes`},
		{"bad consume", `define X from seq(A) within 10 events slide 5 consume all`},
		{"trailing junk", `define X from seq(A) within 10 events slide 5 wat`},
		{"unknown kind", `define X from seq(A where kind = sideways) within 10 events slide 5`},
		{"kind bad op", `define X from seq(A where kind > rising) within 10 events slide 5`},
		{"unknown attr", `define X from seq(A where volume > 1) within 10 events slide 5`},
		{"attr without number", `define X from seq(A where price > high) within 10 events slide 5`},
		{"unclosed seq", `define X from seq(A; B within 10 events slide 5`},
		{"bad duration", `define X from seq(A) within 0s slide 5s`},
		{"neg with last", `define X from seq(A; not B; C) within 10 events slide 5 select last`},
		{"anchored any head", `define X from seq(any 2 of A, B; C) within 10 events slide 5 anchored`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src, env); err == nil {
				t.Errorf("expected parse error for %q", tc.src)
			}
		})
	}
	if _, err := Parse("define X from seq(A) within 10 events slide 5", Env{}); err == nil {
		t.Error("missing registry must fail")
	}
	noSchema := Env{Registry: env.Registry}
	if _, err := Parse(`define X from seq(A where price > 1) within 10 events slide 5`, noSchema); err == nil {
		t.Error("attribute predicate without schema must fail")
	}
}

func TestParseWildcardOpen(t *testing.T) {
	q, err := Parse(`
		define Every
		from seq(A)
		within 5 events
		open *
	`, testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if q.Window.Open == nil || !q.Window.Open(event.Event{Type: 3}) {
		t.Error("wildcard opener should accept everything")
	}
}

func TestParseDurations(t *testing.T) {
	for src, want := range map[string]event.Time{
		"240s":  240 * event.Second,
		"500ms": 500 * event.Millisecond,
		"4m":    4 * event.Minute,
		"2.5s":  2500 * event.Millisecond,
	} {
		got, err := parseDuration(src)
		if err != nil {
			t.Errorf("parseDuration(%q): %v", src, err)
			continue
		}
		if got != want {
			t.Errorf("parseDuration(%q) = %v, want %v", src, got, want)
		}
	}
	for _, bad := range []string{"abc", "-4s", "0s", ""} {
		if _, err := parseDuration(bad); err == nil {
			t.Errorf("parseDuration(%q) should fail", bad)
		}
	}
}

// TestParseMulti covers the multi-query file format: several define
// blocks, comments between them, and the error paths (duplicate names,
// empty source, trailing garbage rejected by single-query Parse).
func TestParseMulti(t *testing.T) {
	env := testEnv(t)
	src := `
		# first query
		define One
		from seq(A; B)
		within 60s
		slide 30s

		define Two
		from seq(STR; any 2 distinct of DEF1, DEF2)
		within 10 events
		slide 5
		select last
	`
	qs, err := ParseMulti(src, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("got %d queries, want 2", len(qs))
	}
	if qs[0].Name != "One" || qs[1].Name != "Two" {
		t.Errorf("names = %q, %q", qs[0].Name, qs[1].Name)
	}
	if qs[0].Window.Mode != window.ModeTime || qs[1].Window.Mode != window.ModeCount {
		t.Errorf("window modes = %v, %v", qs[0].Window.Mode, qs[1].Window.Mode)
	}
	if got := qs[1].Patterns[0].Pattern().Selection; got != pattern.SelectLast {
		t.Errorf("query Two selection = %v, want last", got)
	}

	if _, err := ParseMulti(src+"\n\ndefine One\nfrom seq(A)\nwithin 5 events\nslide 5", env); err == nil {
		t.Error("duplicate query name must fail")
	}
	if _, err := ParseMulti("# nothing here", env); err == nil {
		t.Error("empty source must fail")
	}
	if _, err := ParseMulti("", Env{}); err == nil {
		t.Error("missing registry must fail")
	}
	// Single-query Parse must reject a multi-query source.
	if _, err := Parse(src, env); err == nil {
		t.Error("Parse must reject trailing define blocks")
	}
}
