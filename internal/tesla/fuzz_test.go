package tesla

import (
	"testing"

	"repro/internal/event"
)

// FuzzParse ensures the query parser never panics and that accepted
// queries always compile to at least one valid pattern with a valid
// window spec.
func FuzzParse(f *testing.F) {
	f.Add("define Q from seq(A; B) within 10 events slide 5")
	f.Add("define Q from seq(A where kind = rising; any 3 distinct of *) within 60s open A select last")
	f.Add("define Q from seq(not A; B) within 5s slide 1s")
	f.Add("define Q from seq(all of A, B; cumulative 2 of *) within 100 events open *")
	f.Add("define")
	f.Add("")
	f.Add("define Q from seq(A) within 999999999999999999999 events slide 5")
	f.Fuzz(func(t *testing.T, src string) {
		reg := event.NewRegistry()
		reg.RegisterAll("A", "B", "C")
		env := Env{Registry: reg, Schema: event.NewSchema("price")}
		q, err := Parse(src, env)
		if err != nil {
			return
		}
		if len(q.Patterns) == 0 {
			t.Fatal("accepted query without patterns")
		}
		if err := q.Window.Validate(); err != nil {
			t.Fatalf("accepted query with invalid window: %v", err)
		}
	})
}
