// Package tesla implements a small event specification language in the
// spirit of TESLA (Cugola & Margara, DEBS '10), the language the eSPICE
// paper uses for its example query (Section 2). Textual queries compile
// to the engine's window specs and patterns, covering the operator
// classes of the evaluation: sequence, sequence-with-any (optionally
// distinct), conjunction, negation, cumulative selection, first/last
// selection policies and zero/consumed consumption policies.
//
// Example (the paper's QE, adapted):
//
//	define Influence
//	from seq(LEAD00 where kind = rising; any 20 distinct of * where kind = rising)
//	within 240s
//	open LEAD00, LEAD01
//	select first
//	anchored
package tesla

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokWord   tokKind = iota // identifiers and keywords
	tokNumber                // integer literal, optional duration suffix
	tokSymbol                // punctuation: ( ) ; , and comparison ops
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset in the source, for error messages
}

// lex tokenizes the source. Comparison operators are greedy (">=" is one
// token); comments run from '#' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsSpace(rune(c)):
			i++
		case c == '(' || c == ')' || c == ';' || c == ',' || c == '=':
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		case c == '<' || c == '>' || c == '!':
			sym := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				sym += "="
				i++
			} else if c == '!' {
				return nil, fmt.Errorf("tesla: offset %d: '!' must be followed by '='", i)
			}
			toks = append(toks, token{tokSymbol, sym, i})
			i++
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			// Optional duration suffix: ms, s, m.
			for i < len(src) && (src[i] == 'm' || src[i] == 's') {
				i++
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		case isWordByte(c):
			start := i
			for i < len(src) && isWordByte(src[i]) {
				i++
			}
			toks = append(toks, token{tokWord, src[start:i], start})
		default:
			return nil, fmt.Errorf("tesla: offset %d: unexpected character %q", i, c)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isWordByte(c byte) bool {
	return c == '_' || c == '*' || c == '.' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// keyword reports whether the token is the given keyword
// (case-insensitive).
func (t token) keyword(kw string) bool {
	return t.kind == tokWord && strings.EqualFold(t.text, kw)
}
