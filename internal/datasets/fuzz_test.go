package datasets

import (
	"bytes"
	"testing"

	"repro/internal/event"
)

// FuzzReadCSV exercises the CSV reader with arbitrary input: it must
// never panic, and anything it accepts must round-trip through WriteCSV
// and parse to the same events.
func FuzzReadCSV(f *testing.F) {
	f.Add("0,A,0,1,1.5\n1,B,1000,2,-0.5\n")
	f.Add("0,A,0,0\n")
	f.Add("")
	f.Add("seq,type,ts\n")
	f.Add("0,A,0,1,nan\n")
	f.Fuzz(func(t *testing.T, input string) {
		reg := event.NewRegistry()
		evs, err := ReadCSV(bytes.NewBufferString(input), reg)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, reg, evs); err != nil {
			t.Fatalf("WriteCSV failed on accepted input: %v", err)
		}
		reg2 := event.NewRegistry()
		again, err := ReadCSV(&buf, reg2)
		if err != nil {
			t.Fatalf("round trip unparseable: %v", err)
		}
		if len(again) != len(evs) {
			t.Fatalf("round trip changed count: %d vs %d", len(again), len(evs))
		}
		for i := range evs {
			if evs[i].Seq != again[i].Seq || evs[i].TS != again[i].TS || evs[i].Kind != again[i].Kind {
				t.Fatalf("event %d changed in round trip", i)
			}
		}
	})
}
