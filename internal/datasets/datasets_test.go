package datasets

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/event"
)

func TestGenerateNYSEDefaults(t *testing.T) {
	meta, evs, err := GenerateNYSE(NYSEConfig{Minutes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Config.Symbols != 500 || meta.Config.Leaders != 5 {
		t.Errorf("defaults not applied: %+v", meta.Config)
	}
	if len(evs) != 500*3 {
		t.Fatalf("len(evs) = %d, want 1500", len(evs))
	}
	if math.Abs(meta.Rate-500.0/60) > 1e-9 {
		t.Errorf("Rate = %v", meta.Rate)
	}
	if len(meta.AllTypes()) != 500 {
		t.Errorf("AllTypes = %d", len(meta.AllTypes()))
	}
	if !meta.IsLeader(0) || meta.IsLeader(5) {
		t.Error("IsLeader wrong")
	}
}

func TestGenerateNYSEValidation(t *testing.T) {
	bad := []NYSEConfig{
		{Symbols: 5, Leaders: 5, Minutes: 1},                         // leaders >= symbols
		{Symbols: 10, Leaders: 2, FollowersPerLeader: 9, Minutes: 1}, // followers exceed pool
		{Symbols: 10, Leaders: 1, Minutes: 1, InfluenceProb: 2},      // bad prob
		{Symbols: -1},
	}
	for i, cfg := range bad {
		if _, _, err := GenerateNYSE(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
}

func TestNYSEGlobalOrderAndSeqs(t *testing.T) {
	_, evs, err := GenerateNYSE(NYSEConfig{Symbols: 50, Leaders: 2, FollowersPerLeader: 20, Minutes: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range evs {
		if e.Seq != uint64(i) {
			t.Fatalf("seq[%d] = %d", i, e.Seq)
		}
		if i > 0 && evs[i-1].TS > e.TS {
			t.Fatalf("timestamps out of order at %d", i)
		}
	}
}

func TestNYSEOneQuotePerSymbolPerMinute(t *testing.T) {
	meta, evs, err := GenerateNYSE(NYSEConfig{Symbols: 40, Leaders: 2, FollowersPerLeader: 10, Minutes: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[event.Type]int)
	for _, e := range evs {
		counts[e.Type]++
		if e.Kind != event.KindRising && e.Kind != event.KindFalling {
			t.Fatalf("unexpected kind %v", e.Kind)
		}
		change := e.Val(NYSEValChange)
		if (e.Kind == event.KindRising) != (change > 0) {
			t.Fatalf("kind/change mismatch: %v %v", e.Kind, change)
		}
	}
	for s := 0; s < meta.Config.Symbols; s++ {
		if counts[event.Type(s)] != 4 {
			t.Fatalf("symbol %d quoted %d times, want 4", s, counts[event.Type(s)])
		}
	}
}

func TestNYSEFollowersCorrelateWithLeader(t *testing.T) {
	meta, evs, err := GenerateNYSE(NYSEConfig{
		Symbols: 100, Leaders: 2, FollowersPerLeader: 40, Minutes: 60,
		InfluenceProb: 0.9, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	lead := meta.Leaders[0]
	followers := meta.Followers[lead]
	if len(followers) != 40 {
		t.Fatalf("followers = %d", len(followers))
	}
	// Follower ids must be ascending (stable in-minute ordering).
	for i := 1; i < len(followers); i++ {
		if followers[i] <= followers[i-1] {
			t.Fatal("follower ids not ascending")
		}
	}
	// Within each minute, followers should agree with the leader's
	// direction far more often than 50%.
	dirByMinute := make(map[int]event.Kind)
	agree, total := 0, 0
	for _, e := range evs {
		minute := int(e.TS / (60 * event.Second))
		if e.Type == lead {
			dirByMinute[minute] = e.Kind
		}
	}
	followerSet := make(map[event.Type]bool)
	for _, f := range followers {
		followerSet[f] = true
	}
	for _, e := range evs {
		if !followerSet[e.Type] {
			continue
		}
		minute := int(e.TS / (60 * event.Second))
		if d, ok := dirByMinute[minute]; ok {
			total++
			if e.Kind == d {
				agree++
			}
		}
	}
	rate := float64(agree) / float64(total)
	if rate < 0.8 {
		t.Errorf("follower agreement = %v, want >= 0.8", rate)
	}
}

func TestNYSEDeterministicBySeed(t *testing.T) {
	cfg := NYSEConfig{Symbols: 30, Leaders: 2, FollowersPerLeader: 10, Minutes: 3, Seed: 7}
	_, a, err := GenerateNYSE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := GenerateNYSE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must produce identical streams")
	}
	cfg.Seed = 8
	_, c, err := GenerateNYSE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should differ")
	}
}

func TestGenerateRTLSDefaults(t *testing.T) {
	meta, evs, err := GenerateRTLS(RTLSConfig{DurationSec: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Config.DefendersPerTeam != 10 || meta.Config.MarkersPerStriker != 8 {
		t.Errorf("defaults: %+v", meta.Config)
	}
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	// Global order invariants.
	for i, e := range evs {
		if e.Seq != uint64(i) {
			t.Fatalf("seq[%d] = %d", i, e.Seq)
		}
		if i > 0 && evs[i-1].TS > e.TS {
			t.Fatalf("out of order at %d", i)
		}
	}
	// Rate sanity: objects * per-object rate.
	wantRate := meta.Rate
	gotRate := float64(len(evs)) / 60
	if math.Abs(gotRate-wantRate) > wantRate*0.2 {
		t.Errorf("rate = %v, want ~%v", gotRate, wantRate)
	}
}

func TestGenerateRTLSValidation(t *testing.T) {
	bad := []RTLSConfig{
		{DefendersPerTeam: 2, MarkersPerStriker: 5, DurationSec: 10},
		{DurationSec: -1},
		{DurationSec: 10, DefendLagMin: 5, DefendLagMax: 2},
		{DurationSec: 10, DefendProb: 2},
	}
	for i, cfg := range bad {
		if _, _, err := GenerateRTLS(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestRTLSStructure(t *testing.T) {
	meta, evs, err := GenerateRTLS(RTLSConfig{DurationSec: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Strikers()) != 2 {
		t.Fatal("need 2 strikers")
	}
	if got := meta.OpposingDefenders(meta.StrikerA); !reflect.DeepEqual(got, meta.DefendersB) {
		t.Error("striker A must be marked by team B defenders")
	}
	if got := meta.OpposingDefenders(meta.StrikerB); !reflect.DeepEqual(got, meta.DefendersA) {
		t.Error("striker B must be marked by team A defenders")
	}
	if meta.OpposingDefenders(meta.Ball) != nil {
		t.Error("ball has no defenders")
	}
	if len(meta.MarkersOf[meta.StrikerA]) != meta.Config.MarkersPerStriker {
		t.Errorf("markers = %d", len(meta.MarkersOf[meta.StrikerA]))
	}

	// Possession events exist and are striker-typed.
	possessions := 0
	for _, e := range evs {
		if e.Kind == event.KindPossession {
			possessions++
			if e.Type != meta.StrikerA && e.Type != meta.StrikerB {
				t.Fatalf("possession by non-striker %d", e.Type)
			}
		}
	}
	if possessions < 10 {
		t.Errorf("possessions = %d, want >= 10 in 300s", possessions)
	}
}

func TestRTLSMarkersReactAfterPossession(t *testing.T) {
	meta, evs, err := GenerateRTLS(RTLSConfig{DurationSec: 600, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lagMin := meta.Config.DefendLagMin
	lagMax := meta.Config.DefendLagMax + 0.5 // jitter allowance
	markers := meta.MarkersOf[meta.StrikerA]
	markerSet := make(map[event.Type]bool)
	for _, m := range markers {
		markerSet[m] = true
	}
	reacted, possessions := 0, 0
	for _, e := range evs {
		if e.Kind != event.KindPossession || e.Type != meta.StrikerA {
			continue
		}
		possessions++
		// Count distinct markers with a defend event inside the lag band.
		seen := make(map[event.Type]bool)
		lo := e.TS + event.Time(lagMin*float64(event.Second))
		hi := e.TS + event.Time(lagMax*float64(event.Second))
		for _, d := range evs {
			if d.Kind == event.KindDefend && markerSet[d.Type] && d.TS >= lo && d.TS <= hi {
				seen[d.Type] = true
			}
		}
		if len(seen) >= meta.Config.MarkersPerStriker-2 {
			reacted++
		}
	}
	if possessions == 0 {
		t.Fatal("no possessions")
	}
	rate := float64(reacted) / float64(possessions)
	if rate < 0.7 {
		t.Errorf("marker reaction rate = %v, want >= 0.7", rate)
	}
}

func TestRTLSDeterministicBySeed(t *testing.T) {
	cfg := RTLSConfig{DurationSec: 60, Seed: 9}
	_, a, _ := GenerateRTLS(cfg)
	_, b, _ := GenerateRTLS(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must produce identical streams")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	meta, evs, err := GenerateNYSE(NYSEConfig{Symbols: 20, Leaders: 2, FollowersPerLeader: 5, Minutes: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, meta.Registry, evs); err != nil {
		t.Fatal(err)
	}
	reg2 := event.NewRegistry()
	got, err := ReadCSV(&buf, reg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("round trip length %d != %d", len(got), len(evs))
	}
	for i := range got {
		want := evs[i]
		g := got[i]
		if g.Seq != want.Seq || g.TS != want.TS || g.Kind != want.Kind {
			t.Fatalf("event %d meta mismatch: %+v vs %+v", i, g, want)
		}
		if reg2.Name(g.Type) != meta.Registry.Name(want.Type) {
			t.Fatalf("event %d type name mismatch", i)
		}
		if !reflect.DeepEqual(g.Vals, want.Vals) {
			t.Fatalf("event %d vals mismatch: %v vs %v", i, g.Vals, want.Vals)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	reg := event.NewRegistry()
	cases := []string{
		"1,A\n",               // too few fields
		"x,A,0,0\n",           // bad seq
		"1,A,zz,0\n",          // bad ts
		"1,A,0,999\n",         // bad kind
		"1,A,0,0,notafloat\n", // bad val
	}
	for i, in := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(in), reg); err == nil {
			t.Errorf("case %d should fail: %q", i, in)
		}
	}
	// Empty input is fine.
	got, err := ReadCSV(bytes.NewBufferString(""), reg)
	if err != nil || len(got) != 0 {
		t.Errorf("empty input: %v %v", got, err)
	}
}

func TestNYSEHotSymbols(t *testing.T) {
	cfg := NYSEConfig{
		Symbols: 30, Leaders: 2, FollowersPerLeader: 10, Minutes: 4,
		HotSymbols: []int{3, 4}, HotQuotesPerMinute: 6, Seed: 11,
	}
	meta, evs, err := GenerateNYSE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[event.Type]int)
	for _, e := range evs {
		counts[e.Type]++
	}
	if counts[3] != 4*6 || counts[4] != 4*6 {
		t.Errorf("hot counts = %d/%d, want 24", counts[3], counts[4])
	}
	if counts[5] != 4 {
		t.Errorf("cold count = %d, want 4", counts[5])
	}
	wantRate := float64(30+2*5) / 60
	if math.Abs(meta.Rate-wantRate) > 1e-9 {
		t.Errorf("Rate = %v, want %v", meta.Rate, wantRate)
	}
}

func TestNYSEHotSymbolValidation(t *testing.T) {
	if _, _, err := GenerateNYSE(NYSEConfig{Symbols: 10, Leaders: 1, Minutes: 1, HotSymbols: []int{10}}); err == nil {
		t.Error("out-of-range hot symbol must fail")
	}
	if _, _, err := GenerateNYSE(NYSEConfig{Symbols: 10, Leaders: 1, Minutes: 1, HotQuotesPerMinute: -1}); err == nil {
		t.Error("negative hot rate must fail")
	}
}
