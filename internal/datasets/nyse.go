package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/event"
)

// NYSE attribute value slots.
const (
	NYSEValPrice  = 0
	NYSEValChange = 1
)

// NYSEConfig parameterizes the synthetic stock-quote stream.
type NYSEConfig struct {
	// Symbols is the number of stock symbols (paper: 500).
	Symbols int
	// Leaders is the number of leading blue-chip symbols (paper: 5).
	// Leaders receive the lowest type ids, so their quotes come first
	// within every minute.
	Leaders int
	// FollowersPerLeader assigns this many follower symbols to each
	// leader; followers mirror their leader's direction within the same
	// minute with probability InfluenceProb.
	FollowersPerLeader int
	// Minutes is the stream length; each symbol quotes once per minute
	// (the paper's resolution), so the total event count is
	// Symbols*Minutes and the rate is Symbols/60 events per second.
	Minutes int
	// InfluenceProb is the probability a follower mirrors its leader.
	InfluenceProb float64
	// LeaderMomentum is the probability a leader keeps its direction
	// from the previous minute.
	LeaderMomentum float64
	// HotSymbols lists symbol ids that quote HotQuotesPerMinute times per
	// minute instead of once. Query Q4's sequence-with-repetition needs
	// several quotes of the same symbol inside one window, which strict
	// 1-quote/minute resolution cannot provide for small windows; this is
	// the documented substitution for that experiment (see DESIGN.md).
	HotSymbols []int
	// HotQuotesPerMinute is the quote rate of hot symbols (>= 1).
	HotQuotesPerMinute int
	// Seed drives all randomness.
	Seed int64
}

// Validate checks the configuration; zero fields are filled with the
// paper's defaults.
func (c *NYSEConfig) applyDefaults() {
	if c.Symbols == 0 {
		c.Symbols = 500
	}
	if c.Leaders == 0 {
		c.Leaders = 5
	}
	if c.FollowersPerLeader == 0 {
		c.FollowersPerLeader = 90
	}
	if c.Minutes == 0 {
		c.Minutes = 120
	}
	if c.InfluenceProb == 0 {
		c.InfluenceProb = 0.85
	}
	if c.LeaderMomentum == 0 {
		c.LeaderMomentum = 0.7
	}
	if c.HotQuotesPerMinute == 0 {
		c.HotQuotesPerMinute = 1
	}
}

func (c *NYSEConfig) validate() error {
	if err := validatePositive("Symbols", c.Symbols); err != nil {
		return err
	}
	if err := validatePositive("Leaders", c.Leaders); err != nil {
		return err
	}
	if err := validatePositive("Minutes", c.Minutes); err != nil {
		return err
	}
	if c.Leaders >= c.Symbols {
		return fmt.Errorf("datasets: Leaders (%d) must be < Symbols (%d)", c.Leaders, c.Symbols)
	}
	if c.FollowersPerLeader < 0 ||
		c.Leaders*c.FollowersPerLeader > c.Symbols-c.Leaders {
		return fmt.Errorf("datasets: %d leaders x %d followers exceed the %d non-leader symbols",
			c.Leaders, c.FollowersPerLeader, c.Symbols-c.Leaders)
	}
	if c.InfluenceProb < 0 || c.InfluenceProb > 1 {
		return fmt.Errorf("datasets: InfluenceProb must be in [0,1], got %v", c.InfluenceProb)
	}
	if c.LeaderMomentum < 0 || c.LeaderMomentum > 1 {
		return fmt.Errorf("datasets: LeaderMomentum must be in [0,1], got %v", c.LeaderMomentum)
	}
	if c.HotQuotesPerMinute < 1 {
		return fmt.Errorf("datasets: HotQuotesPerMinute must be >= 1, got %d", c.HotQuotesPerMinute)
	}
	for _, s := range c.HotSymbols {
		if s < 0 || s >= c.Symbols {
			return fmt.Errorf("datasets: hot symbol %d out of range [0,%d)", s, c.Symbols)
		}
	}
	return nil
}

// NYSEMeta describes the generated stream: type registry, leader and
// follower assignments, and the attribute schema.
type NYSEMeta struct {
	Config    NYSEConfig
	Registry  *event.Registry
	Schema    *event.Schema
	Leaders   []event.Type                // leading symbols, ascending type id
	Followers map[event.Type][]event.Type // per leader, ascending type id
	Rate      float64                     // events per second
}

// AllTypes returns every symbol type id (dense 0..Symbols-1).
func (m *NYSEMeta) AllTypes() []event.Type {
	out := make([]event.Type, m.Config.Symbols)
	for i := range out {
		out[i] = event.Type(i)
	}
	return out
}

// IsLeader reports whether t is a leading symbol.
func (m *NYSEMeta) IsLeader(t event.Type) bool {
	return int(t) < m.Config.Leaders
}

// GenerateNYSE produces the synthetic quote stream. Every symbol emits
// one quote per minute; quotes within a minute are spread uniformly and
// ordered by symbol id, so leaders (low ids) quote first and follower
// reactions land at stable relative positions after them — the
// correlation structure eSPICE exploits.
func GenerateNYSE(cfg NYSEConfig) (*NYSEMeta, []event.Event, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	reg := event.NewRegistry()
	for s := 0; s < cfg.Symbols; s++ {
		var name string
		if s < cfg.Leaders {
			name = fmt.Sprintf("LEAD%02d", s)
		} else {
			name = fmt.Sprintf("SYM%03d", s)
		}
		reg.Register(name)
	}

	meta := &NYSEMeta{
		Config:    cfg,
		Registry:  reg,
		Schema:    event.NewSchema("price", "change"),
		Followers: make(map[event.Type][]event.Type, cfg.Leaders),
		Rate:      float64(cfg.Symbols+len(cfg.HotSymbols)*(cfg.HotQuotesPerMinute-1)) / 60.0,
	}
	hot := make(map[int]bool, len(cfg.HotSymbols))
	for _, s := range cfg.HotSymbols {
		hot[s] = true
	}
	leaderOf := make([]int, cfg.Symbols) // -1: independent
	for s := range leaderOf {
		leaderOf[s] = -1
	}
	next := cfg.Leaders
	for l := 0; l < cfg.Leaders; l++ {
		lt := event.Type(l)
		meta.Leaders = append(meta.Leaders, lt)
		for k := 0; k < cfg.FollowersPerLeader; k++ {
			meta.Followers[lt] = append(meta.Followers[lt], event.Type(next))
			leaderOf[next] = l
			next++
		}
	}

	prices := make([]float64, cfg.Symbols)
	for s := range prices {
		prices[s] = 20 + rng.Float64()*180
	}
	leaderDir := make([]bool, cfg.Leaders) // true = rising
	for l := range leaderDir {
		leaderDir[l] = rng.Intn(2) == 0
	}

	evs := make([]timed, 0, cfg.Symbols*cfg.Minutes)
	ord := uint64(0)
	minuteMicros := int64(60 * event.Second)
	for minute := 0; minute < cfg.Minutes; minute++ {
		// Leaders update direction at the top of the minute.
		for l := range leaderDir {
			if rng.Float64() >= cfg.LeaderMomentum {
				leaderDir[l] = !leaderDir[l]
			}
		}
		emitQuote := func(s int, ts event.Time) {
			rising := rng.Intn(2) == 0
			if s < cfg.Leaders {
				rising = leaderDir[s]
			} else if l := leaderOf[s]; l >= 0 && rng.Float64() < cfg.InfluenceProb {
				rising = leaderDir[l]
			}
			mag := 0.05 + rng.Float64()*0.45
			change := mag
			kind := event.KindRising
			if !rising {
				change = -mag
				kind = event.KindFalling
			}
			prices[s] += change
			if prices[s] < 1 {
				prices[s] = 1
			}
			evs = append(evs, timed{
				ev: event.Event{
					Type: event.Type(s),
					TS:   ts,
					Kind: kind,
					Vals: []float64{prices[s], change},
				},
				ord: ord,
			})
			ord++
		}
		for s := 0; s < cfg.Symbols; s++ {
			base := event.Time(int64(minute)*minuteMicros + int64(s)*minuteMicros/int64(cfg.Symbols))
			emitQuote(s, base)
			if hot[s] {
				for j := 1; j < cfg.HotQuotesPerMinute; j++ {
					emitQuote(s, base+event.Time(int64(j)*minuteMicros/int64(cfg.HotQuotesPerMinute)))
				}
			}
		}
	}
	return meta, finalize(evs), nil
}
