package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/event"
)

// RTLS attribute value slots.
const (
	RTLSValX        = 0
	RTLSValY        = 1
	RTLSValVelocity = 2
)

// RTLSConfig parameterizes the synthetic soccer position stream.
type RTLSConfig struct {
	// DefendersPerTeam is the number of defenders per team (each team's
	// defenders mark the opposing striker).
	DefendersPerTeam int
	// MarkersPerStriker is how many opposing defenders actually
	// man-mark each striker; must be <= DefendersPerTeam. Each marker has
	// a fixed reaction lag in [DefendLagMin, DefendLagMax], which plants
	// the positional correlation.
	MarkersPerStriker int
	// OthersPerTeam adds non-defending players (background traffic).
	OthersPerTeam int
	// DurationSec is the stream length in seconds.
	DurationSec int
	// EventsPerObjectPerSec is the background sensor rate per object
	// after the paper's redundancy filtering (~1 event/s, may be higher
	// to reach the evaluation's ~46 events/s overall).
	EventsPerObjectPerSec float64
	// PossessionIntervalSec is the mean gap between ball possessions per
	// striker.
	PossessionIntervalSec float64
	// DefendLagMin/Max bound the marker reaction delay in seconds.
	DefendLagMin, DefendLagMax float64
	// DefendProb is the probability a marker reacts to a possession.
	DefendProb float64
	// NoiseDefendProb is the probability a background event of a
	// non-marking defender is a defend action (occasional duels).
	NoiseDefendProb float64
	// MarkerDefendProb is the probability a background event of a
	// man-marking defender is a defend action: markers shadow their
	// striker continuously, so their within-distance readings are dense.
	// This is what makes the *last* defend instances of a window sit at
	// stable late positions (the last selection policy experiments).
	MarkerDefendProb float64
	// DefendBurst is the number of defend events a reacting marker emits
	// per possession (continuous marking produces a burst of
	// within-distance readings, not a single event). Spaced
	// DefendBurstGapSec apart starting at the marker's lag.
	DefendBurst int
	// DefendBurstGapSec is the spacing between burst events (default 0.6s).
	DefendBurstGapSec float64
	// Seed drives all randomness.
	Seed int64
}

func (c *RTLSConfig) applyDefaults() {
	if c.DefendersPerTeam == 0 {
		c.DefendersPerTeam = 10
	}
	if c.MarkersPerStriker == 0 {
		c.MarkersPerStriker = 8
	}
	if c.OthersPerTeam == 0 {
		c.OthersPerTeam = 6
	}
	if c.DurationSec == 0 {
		c.DurationSec = 1800
	}
	if c.EventsPerObjectPerSec == 0 {
		c.EventsPerObjectPerSec = 1.3
	}
	if c.PossessionIntervalSec == 0 {
		c.PossessionIntervalSec = 22
	}
	if c.DefendLagMax == 0 {
		c.DefendLagMin, c.DefendLagMax = 1, 8
	}
	if c.DefendProb == 0 {
		c.DefendProb = 0.92
	}
	if c.NoiseDefendProb == 0 {
		c.NoiseDefendProb = 0.02
	}
	if c.MarkerDefendProb == 0 {
		c.MarkerDefendProb = 0.3
	}
	if c.DefendBurst == 0 {
		c.DefendBurst = 4
	}
	if c.DefendBurstGapSec == 0 {
		c.DefendBurstGapSec = 0.6
	}
}

func (c *RTLSConfig) validate() error {
	if err := validatePositive("DefendersPerTeam", c.DefendersPerTeam); err != nil {
		return err
	}
	if err := validatePositive("DurationSec", c.DurationSec); err != nil {
		return err
	}
	if c.MarkersPerStriker <= 0 || c.MarkersPerStriker > c.DefendersPerTeam {
		return fmt.Errorf("datasets: MarkersPerStriker must be in [1,%d], got %d",
			c.DefendersPerTeam, c.MarkersPerStriker)
	}
	if c.EventsPerObjectPerSec <= 0 {
		return fmt.Errorf("datasets: EventsPerObjectPerSec must be > 0")
	}
	if c.PossessionIntervalSec <= 0 {
		return fmt.Errorf("datasets: PossessionIntervalSec must be > 0")
	}
	if c.DefendLagMin < 0 || c.DefendLagMax <= c.DefendLagMin {
		return fmt.Errorf("datasets: need 0 <= DefendLagMin < DefendLagMax, got %v/%v",
			c.DefendLagMin, c.DefendLagMax)
	}
	if c.DefendProb < 0 || c.DefendProb > 1 || c.NoiseDefendProb < 0 || c.NoiseDefendProb > 1 ||
		c.MarkerDefendProb < 0 || c.MarkerDefendProb > 1 {
		return fmt.Errorf("datasets: probabilities must be in [0,1]")
	}
	if c.DefendBurst < 0 || c.DefendBurstGapSec < 0 {
		return fmt.Errorf("datasets: DefendBurst and DefendBurstGapSec must be >= 0")
	}
	return nil
}

// RTLSMeta describes the generated stream.
type RTLSMeta struct {
	Config   RTLSConfig
	Registry *event.Registry
	Schema   *event.Schema

	Ball       event.Type
	StrikerA   event.Type // striker of team A (marked by team B defenders)
	StrikerB   event.Type
	DefendersA []event.Type // team A defenders (mark striker B)
	DefendersB []event.Type // team B defenders (mark striker A)
	// MarkersOf maps each striker to its man-marking defenders (a subset
	// of the opposing team's defenders), in fixed-lag order.
	MarkersOf map[event.Type][]event.Type
	Others    []event.Type
	Rate      float64 // events per second (approximate)
}

// Strikers returns both striker types.
func (m *RTLSMeta) Strikers() []event.Type {
	return []event.Type{m.StrikerA, m.StrikerB}
}

// OpposingDefenders returns the defenders that may mark the striker.
func (m *RTLSMeta) OpposingDefenders(striker event.Type) []event.Type {
	switch striker {
	case m.StrikerA:
		return append([]event.Type(nil), m.DefendersB...)
	case m.StrikerB:
		return append([]event.Type(nil), m.DefendersA...)
	default:
		return nil
	}
}

// GenerateRTLS produces the synthetic soccer stream: regular position
// events from every object, possession events by the strikers, and
// defend events — both man-marking reactions a fixed per-marker lag after
// possessions, and background marking noise.
func GenerateRTLS(cfg RTLSConfig) (*RTLSMeta, []event.Event, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	reg := event.NewRegistry()
	meta := &RTLSMeta{
		Config:    cfg,
		Registry:  reg,
		Schema:    event.NewSchema("x", "y", "velocity"),
		MarkersOf: make(map[event.Type][]event.Type, 2),
	}
	meta.Ball = reg.Register("BALL")
	meta.StrikerA = reg.Register("STR_A")
	meta.StrikerB = reg.Register("STR_B")
	for i := 0; i < cfg.DefendersPerTeam; i++ {
		meta.DefendersA = append(meta.DefendersA, reg.Register(fmt.Sprintf("DEF_A%02d", i)))
	}
	for i := 0; i < cfg.DefendersPerTeam; i++ {
		meta.DefendersB = append(meta.DefendersB, reg.Register(fmt.Sprintf("DEF_B%02d", i)))
	}
	for i := 0; i < 2*cfg.OthersPerTeam; i++ {
		meta.Others = append(meta.Others, reg.Register(fmt.Sprintf("MID%02d", i)))
	}
	// Markers: the first MarkersPerStriker opposing defenders, each with a
	// fixed reaction lag spread over [DefendLagMin, DefendLagMax].
	meta.MarkersOf[meta.StrikerA] = append([]event.Type(nil), meta.DefendersB[:cfg.MarkersPerStriker]...)
	meta.MarkersOf[meta.StrikerB] = append([]event.Type(nil), meta.DefendersA[:cfg.MarkersPerStriker]...)

	objects := reg.Len()
	meta.Rate = float64(objects) * cfg.EventsPerObjectPerSec

	isDefender := make(map[event.Type]bool, 2*cfg.DefendersPerTeam)
	for _, d := range meta.DefendersA {
		isDefender[d] = true
	}
	for _, d := range meta.DefendersB {
		isDefender[d] = true
	}
	isMarker := make(map[event.Type]bool, 2*cfg.MarkersPerStriker)
	for _, markers := range meta.MarkersOf {
		for _, m := range markers {
			isMarker[m] = true
		}
	}

	evs := make([]timed, 0, int(meta.Rate)*cfg.DurationSec+1024)
	ord := uint64(0)
	emit := func(t event.Type, ts event.Time, kind event.Kind) {
		evs = append(evs, timed{
			ev: event.Event{
				Type: t,
				TS:   ts,
				Kind: kind,
				Vals: []float64{rng.Float64() * 105, rng.Float64() * 68, rng.Float64() * 10},
			},
			ord: ord,
		})
		ord++
	}

	// Background sensor traffic: each object emits at its own cadence with
	// a stable phase so that stream order is deterministic.
	interval := 1.0 / cfg.EventsPerObjectPerSec
	for o := 0; o < objects; o++ {
		typ := event.Type(o)
		phase := float64(o) * interval / float64(objects)
		for t := phase; t < float64(cfg.DurationSec); t += interval {
			kind := event.KindPosition
			switch {
			case isMarker[typ] && rng.Float64() < cfg.MarkerDefendProb:
				kind = event.KindDefend
			case isDefender[typ] && rng.Float64() < cfg.NoiseDefendProb:
				kind = event.KindDefend
			}
			emit(typ, event.Time(t*float64(event.Second)), kind)
		}
	}

	// Possessions and man-marking reactions. The two strikers alternate
	// possession slots with jitter so their windows rarely overlap.
	markerLag := func(striker event.Type, idx int) float64 {
		span := cfg.DefendLagMax - cfg.DefendLagMin
		n := len(meta.MarkersOf[striker])
		if n <= 1 {
			return cfg.DefendLagMin
		}
		return cfg.DefendLagMin + span*float64(idx)/float64(n-1)
	}
	for si, striker := range meta.Strikers() {
		t := cfg.PossessionIntervalSec * (0.3 + 0.5*float64(si))
		for t < float64(cfg.DurationSec)-cfg.DefendLagMax-1 {
			emit(striker, event.Time(t*float64(event.Second)), event.KindPossession)
			for idx, marker := range meta.MarkersOf[striker] {
				if rng.Float64() >= cfg.DefendProb {
					continue
				}
				lag := markerLag(striker, idx) + rng.Float64()*0.4
				for j := 0; j < cfg.DefendBurst; j++ {
					at := t + lag + float64(j)*cfg.DefendBurstGapSec
					emit(marker, event.Time(at*float64(event.Second)), event.KindDefend)
				}
			}
			// Next possession: jittered exponential-ish gap.
			t += cfg.PossessionIntervalSec * (0.6 + 0.8*rng.Float64())
		}
	}

	return meta, finalize(evs), nil
}
