package datasets

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/event"
)

// WriteCSV streams events to w in a simple columnar format:
//
//	seq,type,ts_us,kind,val0,val1,...
//
// The type column holds the registered type name so that files remain
// meaningful without the registry.
func WriteCSV(w io.Writer, reg *event.Registry, events []event.Event) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	for _, e := range events {
		rec := make([]string, 0, 4+len(e.Vals))
		rec = append(rec,
			strconv.FormatUint(e.Seq, 10),
			reg.Name(e.Type),
			strconv.FormatInt(int64(e.TS), 10),
			strconv.Itoa(int(e.Kind)),
		)
		for _, v := range e.Vals {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("datasets: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses events written by WriteCSV, interning type names into
// reg (types are registered on first sight, so a fresh registry works).
func ReadCSV(r io.Reader, reg *event.Registry) ([]event.Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var out []event.Event
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("datasets: read csv line %d: %w", line, err)
		}
		if len(rec) < 4 {
			return nil, fmt.Errorf("datasets: csv line %d: %d fields, want >= 4", line, len(rec))
		}
		seq, err := strconv.ParseUint(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("datasets: csv line %d seq: %w", line, err)
		}
		ts, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("datasets: csv line %d ts: %w", line, err)
		}
		kind, err := strconv.Atoi(rec[3])
		if err != nil || kind < 0 || kind > 255 {
			return nil, fmt.Errorf("datasets: csv line %d kind %q invalid", line, rec[3])
		}
		e := event.Event{
			Seq:  seq,
			Type: reg.Register(rec[1]),
			TS:   event.Time(ts),
			Kind: event.Kind(kind),
		}
		if len(rec) > 4 {
			e.Vals = make([]float64, len(rec)-4)
			for i, f := range rec[4:] {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("datasets: csv line %d val %d: %w", line, i, err)
				}
				e.Vals[i] = v
			}
		}
		out = append(out, e)
	}
}
