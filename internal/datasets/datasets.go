// Package datasets provides synthetic equivalents of the two real-world
// datasets of the eSPICE evaluation (Section 4.1):
//
//   - NYSE Stock Quotes: intra-day quotes of 500 symbols at one quote per
//     minute per symbol, with five blue-chip "leading" symbols whose moves
//     propagate to correlated follower symbols within a bounded interval.
//   - RTLS soccer: sensor events from players and ball in a soccer game,
//     with possession events by strikers and man-marking defend events by
//     assigned defenders a few seconds later.
//
// The originals (Google Finance scrape, DEBS'13 Grand Challenge) are not
// redistributable, so the generators plant exactly the structure the
// eSPICE model learns from — correlations between event *types* and
// *relative positions within windows* — while randomizing everything
// else. See DESIGN.md ("Substitutions") for the fidelity argument.
package datasets

import (
	"fmt"
	"sort"

	"repro/internal/event"
)

// timed pairs an event with a stable ordering key during generation.
type timed struct {
	ev  event.Event
	ord uint64 // generation order, tie-breaker for equal timestamps
}

// finalize sorts the generated events by timestamp (tie-broken by
// generation order) and assigns dense sequence numbers — the global order
// required by the CEP engine.
func finalize(evs []timed) []event.Event {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].ev.TS != evs[j].ev.TS {
			return evs[i].ev.TS < evs[j].ev.TS
		}
		return evs[i].ord < evs[j].ord
	})
	out := make([]event.Event, len(evs))
	for i := range evs {
		out[i] = evs[i].ev
		out[i].Seq = uint64(i)
	}
	return out
}

// validatePositive returns an error mentioning name when v <= 0.
func validatePositive(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("datasets: %s must be > 0, got %d", name, v)
	}
	return nil
}
