package window

import (
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func ev(seq uint64, ts event.Time) event.Event {
	return event.Event{Seq: seq, TS: ts}
}

func typed(seq uint64, ts event.Time, t event.Type) event.Event {
	return event.Event{Seq: seq, TS: ts, Type: t}
}

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    Spec
		wantErr bool
	}{
		{"count ok", Spec{Mode: ModeCount, Count: 10, Slide: 5}, false},
		{"count pred ok", Spec{Mode: ModeCount, Count: 10, Open: func(event.Event) bool { return true }}, false},
		{"count missing size", Spec{Mode: ModeCount, Slide: 5}, true},
		{"count missing opener", Spec{Mode: ModeCount, Count: 10}, true},
		{"time ok", Spec{Mode: ModeTime, Length: event.Second, SlideTime: event.Second}, false},
		{"time pred ok", Spec{Mode: ModeTime, Length: event.Second, Open: func(event.Event) bool { return true }}, false},
		{"time missing length", Spec{Mode: ModeTime, SlideTime: event.Second}, true},
		{"time missing opener", Spec{Mode: ModeTime, Length: event.Second}, true},
		{"bad mode", Spec{Mode: Mode(9), Count: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestModeString(t *testing.T) {
	if ModeCount.String() != "count" || ModeTime.String() != "time" {
		t.Error("mode names wrong")
	}
	if Mode(7).String() != "mode(7)" {
		t.Errorf("got %q", Mode(7).String())
	}
}

func TestNewManagerRejectsBadSpec(t *testing.T) {
	if _, err := NewManager(Spec{Mode: ModeCount}); err == nil {
		t.Fatal("expected error")
	}
}

func TestCountSlidingWindows(t *testing.T) {
	// ws=4, slide=2: windows [0..3], [2..5], [4..7], ...
	m, err := NewManager(Spec{Mode: ModeCount, Count: 4, Slide: 2})
	if err != nil {
		t.Fatal(err)
	}
	type closedWin struct {
		openSeq uint64
		size    int
	}
	var got []closedWin
	for i := uint64(0); i < 10; i++ {
		member, closed := m.Route(ev(i, 0))
		// Every event belongs to at least one window.
		if len(member) == 0 {
			t.Fatalf("event %d in no window", i)
		}
		for _, c := range closed {
			got = []closedWin(append(got, closedWin{c.OpenSeq, c.Size()}))
		}
	}
	want := []closedWin{{0, 4}, {2, 4}, {4, 4}, {6, 4}}
	if len(got) != len(want) {
		t.Fatalf("closed %d windows, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("window %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Flush the trailing partial windows.
	rest := m.Flush()
	if len(rest) != 1 {
		t.Fatalf("Flush closed %d windows, want 1", len(rest))
	}
	if rest[0].OpenSeq != 8 || rest[0].Size() != 2 {
		t.Errorf("flushed window = open %d size %d", rest[0].OpenSeq, rest[0].Size())
	}
}

func TestCountWindowPositions(t *testing.T) {
	m, err := NewManager(Spec{Mode: ModeCount, Count: 3, Slide: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With slide=1 every event opens a window; event i has position
	// i - w.OpenSeq in window w.
	for i := uint64(0); i < 6; i++ {
		member, _ := m.Route(ev(i, 0))
		for _, mb := range member {
			wantPos := int(i - mb.W.OpenSeq)
			if mb.Pos != wantPos {
				t.Errorf("event %d in window open@%d: pos %d, want %d", i, mb.W.OpenSeq, mb.Pos, wantPos)
			}
		}
	}
}

func TestPredicateOpenedCountWindows(t *testing.T) {
	leader := event.Type(7)
	m, err := NewManager(Spec{
		Mode:  ModeCount,
		Count: 3,
		Open:  func(e event.Event) bool { return e.Type == leader },
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := []event.Type{1, 7, 2, 3, 7, 4, 5, 6}
	var closed []*Window
	for i, typ := range seqs {
		_, cl := m.Route(typed(uint64(i), 0, typ))
		closed = append(closed, cl...)
	}
	closed = append(closed, m.Flush()...)
	if len(closed) != 2 {
		t.Fatalf("closed %d windows, want 2", len(closed))
	}
	// First window opens at the leader event (seq 1) and spans 3 events.
	if closed[0].OpenSeq != 1 || closed[0].Size() != 3 {
		t.Errorf("w0: open %d size %d", closed[0].OpenSeq, closed[0].Size())
	}
	// Second opens at seq 4.
	if closed[1].OpenSeq != 4 || closed[1].Size() != 3 {
		t.Errorf("w1: open %d size %d", closed[1].OpenSeq, closed[1].Size())
	}
}

func TestTimeWindowsPredicateOpen(t *testing.T) {
	str := event.Type(1)
	m, err := NewManager(Spec{
		Mode:   ModeTime,
		Length: 10 * event.Second,
		Open:   func(e event.Event) bool { return e.Type == str },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Striker event at t=0 opens a 10s window; events at 1s..9s inside,
	// event at 10s closes it (exclusive end).
	if member, _ := m.Route(typed(0, 0, str)); len(member) != 1 || member[0].Pos != 0 {
		t.Fatalf("opener membership = %+v", member)
	}
	if member, _ := m.Route(typed(1, 5*event.Second, 2)); len(member) != 1 || member[0].Pos != 1 {
		t.Fatalf("inside membership = %+v", member)
	}
	member, closed := m.Route(typed(2, 10*event.Second, 2))
	if len(member) != 0 {
		t.Errorf("event at window end must not join, got %+v", member)
	}
	if len(closed) != 1 || closed[0].Size() != 2 {
		t.Fatalf("closed = %+v", closed)
	}
}

func TestOverlappingTimeWindowsPositions(t *testing.T) {
	// Every event opens a window (predicate always true): heavy overlap.
	m, err := NewManager(Spec{
		Mode:   ModeTime,
		Length: 3 * event.Second,
		Open:   func(event.Event) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Events at t=0,1,2: each belongs to all windows opened at <= its ts.
	for i := 0; i < 3; i++ {
		member, _ := m.Route(ev(uint64(i), event.Time(i)*event.Second))
		if len(member) != i+1 {
			t.Fatalf("event %d: %d memberships, want %d", i, len(member), i+1)
		}
		// In the window opened by event j, this event's position is i-j.
		for _, mb := range member {
			j := int(mb.W.OpenSeq)
			if mb.Pos != i-j {
				t.Errorf("event %d in w%d: pos %d, want %d", i, j, mb.Pos, i-j)
			}
		}
	}
}

func TestTimeSlideWindows(t *testing.T) {
	m, err := NewManager(Spec{
		Mode:      ModeTime,
		Length:    4 * event.Second,
		SlideTime: 2 * event.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var closedSizes []int
	for i := 0; i < 10; i++ {
		_, closed := m.Route(ev(uint64(i), event.Time(i)*event.Second))
		for _, c := range closed {
			closedSizes = append(closedSizes, c.Size())
		}
	}
	// Windows open at t=0,2,4,6,8; each spans 4s and sees 4 events
	// (1 event per second).
	for i, s := range closedSizes {
		if s != 4 {
			t.Errorf("closed window %d size = %d, want 4", i, s)
		}
	}
	if len(closedSizes) < 3 {
		t.Fatalf("only %d windows closed", len(closedSizes))
	}
}

func TestExpectedSizePrediction(t *testing.T) {
	m, err := NewManager(Spec{
		Mode:     ModeTime,
		Length:   2 * event.Second,
		Open:     func(e event.Event) bool { return e.Kind == event.KindPossession },
		SizeHint: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.ExpectedSize() != 20 {
		t.Fatalf("initial ExpectedSize = %d, want hint 20", m.ExpectedSize())
	}
	// Stream at 10 events/sec: windows hold 20 events; prediction should
	// stay near 20.
	seq := uint64(0)
	for s := 0; s < 50; s++ {
		for i := 0; i < 10; i++ {
			e := ev(seq, event.Time(s)*event.Second+event.Time(i)*100*event.Millisecond)
			if i == 0 && s%3 == 0 {
				e.Kind = event.KindPossession
			}
			m.Route(e)
			seq++
		}
	}
	got := m.ExpectedSize()
	if got < 15 || got > 25 {
		t.Errorf("ExpectedSize = %d, want ~20", got)
	}
	if m.AvgSize() < 15 || m.AvgSize() > 25 {
		t.Errorf("AvgSize = %v, want ~20", m.AvgSize())
	}
}

func TestCountExpectedSizeExact(t *testing.T) {
	m, err := NewManager(Spec{Mode: ModeCount, Count: 42, Slide: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.ExpectedSize() != 42 {
		t.Errorf("ExpectedSize = %d, want 42", m.ExpectedSize())
	}
	member, _ := m.Route(ev(0, 0))
	if member[0].W.ExpectedSize != 42 {
		t.Errorf("window ExpectedSize = %d, want 42", member[0].W.ExpectedSize)
	}
}

func TestWindowAddAndDropAccounting(t *testing.T) {
	var w Window
	w.Arrivals = 5
	w.Add(ev(0, 0), 0)
	w.Add(ev(2, 0), 2)
	w.Dropped = 3
	if len(w.Kept) != 2 {
		t.Fatalf("Kept = %d", len(w.Kept))
	}
	if w.Kept[1].Pos != 2 {
		t.Errorf("pos = %d", w.Kept[1].Pos)
	}
	if w.Size() != 5 {
		t.Errorf("Size() = %d", w.Size())
	}
}

func TestManagerCounters(t *testing.T) {
	m, err := NewManager(Spec{Mode: ModeCount, Count: 2, Slide: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		m.Route(ev(i, 0))
	}
	if m.TotalOpened() != 5 || m.TotalClosed() != 5 {
		t.Errorf("opened/closed = %d/%d, want 5/5", m.TotalOpened(), m.TotalClosed())
	}
	if m.AvgSize() != 2 {
		t.Errorf("AvgSize = %v, want 2", m.AvgSize())
	}
	if m.OpenCount() != 0 {
		t.Errorf("OpenCount = %d", m.OpenCount())
	}
}

// Property: for tumbling count windows (slide == count), every event is in
// exactly one window, positions within each window are 0..count-1, and all
// windows except possibly the last have exactly count events.
func TestTumblingCountPartitionProperty(t *testing.T) {
	f := func(rawCount uint8, rawN uint16) bool {
		count := int(rawCount)%20 + 1
		n := int(rawN) % 500
		m, err := NewManager(Spec{Mode: ModeCount, Count: count, Slide: count})
		if err != nil {
			return false
		}
		var sizes []int
		memberships := 0
		for i := 0; i < n; i++ {
			member, closed := m.Route(ev(uint64(i), 0))
			if len(member) != 1 {
				return false
			}
			memberships += len(member)
			for _, c := range closed {
				sizes = append(sizes, c.Size())
			}
		}
		for _, c := range m.Flush() {
			sizes = append(sizes, c.Size())
		}
		total := 0
		for i, s := range sizes {
			if i < len(sizes)-1 && s != count {
				return false
			}
			total += s
		}
		return total == n && memberships == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: positions within any window are strictly increasing and dense
// (0,1,2,...) in arrival order.
func TestPositionDensityProperty(t *testing.T) {
	f := func(rawSlide uint8, rawN uint16) bool {
		slide := int(rawSlide)%5 + 1
		n := int(rawN)%300 + 1
		m, err := NewManager(Spec{Mode: ModeCount, Count: 10, Slide: slide})
		if err != nil {
			return false
		}
		lastPos := make(map[ID]int)
		for i := 0; i < n; i++ {
			member, _ := m.Route(ev(uint64(i), 0))
			for _, mb := range member {
				prev, seen := lastPos[mb.W.ID]
				if !seen {
					if mb.Pos != 0 {
						return false
					}
				} else if mb.Pos != prev+1 {
					return false
				}
				lastPos[mb.W.ID] = mb.Pos
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPatternBasedClose(t *testing.T) {
	// Session-like windows: open on possession, close on whistle (kind
	// none from type 9), bounded by a 100-event backstop.
	openT, closeT := event.Type(1), event.Type(9)
	m, err := NewManager(Spec{
		Mode:  ModeCount,
		Count: 100,
		Open:  func(e event.Event) bool { return e.Type == openT },
		Close: func(e event.Event) bool { return e.Type == closeT },
	})
	if err != nil {
		t.Fatal(err)
	}
	var closed []*Window
	route := func(seq uint64, typ event.Type) []Membership {
		member, cl := m.Route(event.Event{Seq: seq, Type: typ})
		closed = append(closed, cl...)
		return append([]Membership(nil), member...)
	}
	route(0, openT)            // opens w0
	route(1, 2)                // inside
	member := route(2, closeT) // closes w0, not a member
	if len(member) != 0 {
		t.Errorf("closing event joined a window: %+v", member)
	}
	if len(closed) != 1 || closed[0].Size() != 2 {
		t.Fatalf("closed = %+v", closed)
	}
	// A close event that also satisfies Open: closes old, opens new.
	m2, err := NewManager(Spec{
		Mode:  ModeCount,
		Count: 100,
		Open:  func(e event.Event) bool { return e.Type == openT },
		Close: func(e event.Event) bool { return e.Type == openT },
	})
	if err != nil {
		t.Fatal(err)
	}
	m2.Route(event.Event{Seq: 0, Type: openT})
	member2, cl2 := m2.Route(event.Event{Seq: 1, Type: openT})
	if len(cl2) != 1 || cl2[0].Size() != 1 {
		t.Fatalf("re-open close: closed = %+v", cl2)
	}
	if len(member2) != 1 || member2[0].Pos != 0 {
		t.Fatalf("re-open close: member = %+v", member2)
	}
}

func TestPatternCloseBackstopStillApplies(t *testing.T) {
	openT := event.Type(1)
	m, err := NewManager(Spec{
		Mode:  ModeCount,
		Count: 3,
		Open:  func(e event.Event) bool { return e.Type == openT },
		Close: func(e event.Event) bool { return e.Type == event.Type(99) }, // never fires
	})
	if err != nil {
		t.Fatal(err)
	}
	var closed []*Window
	for i := uint64(0); i < 5; i++ {
		typ := event.Type(2)
		if i == 0 {
			typ = openT
		}
		_, cl := m.Route(event.Event{Seq: i, Type: typ})
		closed = append(closed, cl...)
	}
	if len(closed) != 1 || closed[0].Size() != 3 {
		t.Fatalf("count backstop did not close: %+v", closed)
	}
}

// --- Window pooling (freelist reuse, poisoning, allocation freedom) -----

func TestReleaseRecyclesWindows(t *testing.T) {
	m, err := NewManager(Spec{Mode: ModeCount, Count: 2, Slide: 2})
	if err != nil {
		t.Fatal(err)
	}
	var first *Window
	_, _ = m.Route(ev(0, 0))
	_, closed := m.Route(ev(1, 1))
	if len(closed) != 1 {
		t.Fatalf("closed = %d windows, want 1", len(closed))
	}
	first = closed[0]
	first.Add(ev(0, 0), 0)
	first.Add(ev(1, 1), 1)
	kept := first.Kept // retain illegally, to observe the poisoning
	m.Release(first)

	for i, e := range kept {
		if e.Pos != -1 || e.Ev.Seq != 0 {
			t.Errorf("released entry %d not poisoned: %+v", i, e)
		}
	}
	if first.Closed() || first.Arrivals != 0 || first.Dropped != 0 || len(first.Kept) != 0 {
		t.Errorf("released window not reset: %+v", first)
	}

	// The next opened window must reuse the released struct.
	member, _ := m.Route(ev(2, 2))
	if len(member) != 1 || member[0].W != first {
		t.Errorf("freelist not reused: got %p, want %p", member[0].W, first)
	}
	if member[0].W.ID != 1 || member[0].W.OpenSeq != 2 {
		t.Errorf("reused window fields stale: %+v", member[0].W)
	}
}

func TestReleaseIgnoresOpenAndDoubleRelease(t *testing.T) {
	m, err := NewManager(Spec{Mode: ModeCount, Count: 4, Slide: 4})
	if err != nil {
		t.Fatal(err)
	}
	member, _ := m.Route(ev(0, 0))
	open := member[0].W
	m.Release(open) // still open: must be ignored
	if len(m.pool.free) != 0 {
		t.Fatalf("open window entered freelist")
	}
	m.Release(nil) // nil: ignored

	_, closed := m.Route(ev(1, 1))
	_, closed = m.Route(ev(2, 2))
	_, closed = m.Route(ev(3, 3))
	if len(closed) != 1 {
		t.Fatalf("closed = %d, want 1", len(closed))
	}
	m.Release(closed[0])
	m.Release(closed[0]) // double release: ignored (closed flag was reset)
	if len(m.pool.free) != 1 {
		t.Fatalf("freelist = %d entries, want 1", len(m.pool.free))
	}
}

func TestRouteSteadyStateZeroAlloc(t *testing.T) {
	m, err := NewManager(Spec{Mode: ModeCount, Count: 64, Slide: 8})
	if err != nil {
		t.Fatal(err)
	}
	seq := uint64(0)
	step := func() {
		member, closed := m.Route(ev(seq, event.Time(seq)))
		seq++
		for _, mb := range member {
			mb.W.Add(ev(mb.W.OpenSeq, 0), mb.Pos)
		}
		for _, w := range closed {
			m.Release(w)
		}
	}
	for i := 0; i < 1024; i++ { // warm pool and buffers
		step()
	}
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Errorf("steady-state Route+Add+Release allocates %.2f/event, want 0", allocs)
	}
}

// TestPoolRecyclesAndCounts pins the standalone Pool contract the
// sharded runtime's per-shard window ownership relies on: Get recycles
// released structs (counting misses only on true allocations), Put
// poisons and zeroes — including deployment scratch like Tag — while
// keeping the Kept capacity warm.
func TestPoolRecyclesAndCounts(t *testing.T) {
	var p Pool
	w := p.Get()
	if p.Gets() != 1 || p.Misses() != 1 {
		t.Fatalf("first Get: gets=%d misses=%d, want 1/1", p.Gets(), p.Misses())
	}
	w.ID = 7
	w.Tag = 1<<63 | 42
	w.Add(ev(1, 1), 0)
	w.Add(ev(2, 2), 1)
	w.Arrivals = 2
	w.MarkClosed()
	kept := w.Kept // retain illegally, to observe the poisoning
	keptCap := cap(w.Kept)
	p.Put(w)
	for i, e := range kept {
		if !e.Poisoned() {
			t.Errorf("entry %d not poisoned after Put: %+v", i, e)
		}
	}
	r := p.Get()
	if r != w {
		t.Fatalf("Get did not recycle the Put window")
	}
	if p.Misses() != 1 {
		t.Errorf("recycled Get counted a miss: %d", p.Misses())
	}
	if r.Tag != 0 || r.ID != 0 || r.Closed() || r.Arrivals != 0 || len(r.Kept) != 0 {
		t.Errorf("recycled window not zeroed: %+v", r)
	}
	if cap(r.Kept) != keptCap {
		t.Errorf("Kept capacity %d not preserved (was %d)", cap(r.Kept), keptCap)
	}
	p.Put(nil) // ignored
}

// TestMarkClosed covers manager-less sealing, the sharded close path.
func TestMarkClosed(t *testing.T) {
	w := &Window{}
	if w.Closed() {
		t.Fatal("fresh window reports closed")
	}
	w.MarkClosed()
	if !w.Closed() {
		t.Fatal("MarkClosed did not seal the window")
	}
}

// TestManagerPoolMisses asserts the manager-level miss counter stops
// climbing once every closed window is released back.
func TestManagerPoolMisses(t *testing.T) {
	m, err := NewManager(Spec{Mode: ModeCount, Count: 4, Slide: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		_, closed := m.Route(ev(i, event.Time(i)))
		for _, w := range closed {
			m.Release(w)
		}
	}
	warm := m.PoolMisses()
	if warm == 0 {
		t.Fatal("expected some initial pool misses while warming")
	}
	for i := uint64(64); i < 256; i++ {
		_, closed := m.Route(ev(i, event.Time(i)))
		for _, w := range closed {
			m.Release(w)
		}
	}
	if got := m.PoolMisses(); got != warm {
		t.Errorf("pool misses climbed from %d to %d in steady state (leak)", warm, got)
	}
}
