// Package window partitions input event streams into (possibly
// overlapping) windows, as assumed by the eSPICE paper (Section 2): a
// window operator upstream of the CEP operator splits the stream using
// count-based, time-based, or pattern-based (logical-predicate) policies.
//
// A primitive event may belong to several overlapping windows and has an
// independent position in each of them; that position is the load
// shedder's second learning feature. Positions are assigned on arrival,
// before any shedding decision, so that model building and shedding agree
// on the coordinates of every event.
package window

import (
	"fmt"
	"sync/atomic"

	"repro/internal/event"
)

// ID identifies a window uniquely within one Manager.
type ID uint64

// Mode selects how windows are measured.
type Mode int

// Window measurement modes.
const (
	// ModeCount windows span a fixed number of events (count-based).
	ModeCount Mode = iota
	// ModeTime windows span a fixed virtual-time length (time-based).
	ModeTime
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeCount:
		return "count"
	case ModeTime:
		return "time"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// OpenPredicate decides whether an incoming event opens a new window
// (pattern-based window splitting, e.g. "a new window is opened for each
// incoming striker event").
type OpenPredicate func(e event.Event) bool

// Spec describes a windowing policy.
//
// Exactly one opening rule applies: if Open is non-nil, a new window opens
// on every event satisfying it; otherwise Slide (count mode) or SlideTime
// (time mode) opens windows periodically. The opening event is part of the
// window it opens, at position 0.
type Spec struct {
	Mode   Mode
	Count  int        // window size in events (ModeCount)
	Length event.Time // window span (ModeTime)

	Open      OpenPredicate // logical predicate opening (may be nil)
	Slide     int           // open every Slide events (ModeCount, Open == nil)
	SlideTime event.Time    // open every SlideTime (ModeTime, Open == nil)

	// Close, when set, closes every open window as soon as an event
	// satisfying it arrives — the pattern-based window splitting strategy
	// (Section 2 of the paper lists logical-predicate closing alongside
	// count and time). The closing event is not part of the windows it
	// closes; the mode's size bound still applies as a backstop, so
	// windows stay bounded even if the predicate never fires.
	Close OpenPredicate

	// SizeHint seeds the expected-size predictor for time-based windows
	// (events per window); ignored for count-based windows. When zero, the
	// predictor starts from the first closed window's size.
	SizeHint int
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	switch s.Mode {
	case ModeCount:
		if s.Count <= 0 {
			return fmt.Errorf("window: count-based spec needs Count > 0, got %d", s.Count)
		}
		if s.Open == nil && s.Slide <= 0 {
			return fmt.Errorf("window: count-based spec needs Open predicate or Slide > 0")
		}
	case ModeTime:
		if s.Length <= 0 {
			return fmt.Errorf("window: time-based spec needs Length > 0, got %d", s.Length)
		}
		if s.Open == nil && s.SlideTime <= 0 {
			return fmt.Errorf("window: time-based spec needs Open predicate or SlideTime > 0")
		}
	default:
		return fmt.Errorf("window: unknown mode %d", s.Mode)
	}
	return nil
}

// Entry is an event kept in a window together with its arrival position
// (0-based, counting dropped events too).
type Entry struct {
	Ev  event.Event
	Pos int
}

// Window is one window instance: the unit of pattern matching and of
// shedding decisions. Events are buffered until the window closes, at
// which point the CEP operator runs the matcher over the kept entries.
//
// Windows are pooled: once a closed window has been handed back to its
// Manager via Release, the struct and its Kept buffer are recycled for a
// future window. Consumers of closed windows (matchers, OnWindowClose
// hooks) must therefore not retain the *Window or any Kept entries past
// their return — copy what must survive. Release poisons the entries
// (Pos = -1, zeroed event) so a violated contract surfaces as corrupt
// data in tests rather than as silent aliasing in production.
type Window struct {
	ID      ID
	OpenSeq uint64     // sequence number of the opening event
	OpenTS  event.Time // timestamp of the opening event

	// ExpectedSize is ws as known at shedding time: exact for count-based
	// windows, predicted for time-based windows (Section 3.6: the incoming
	// window size must be predicted to compute relative positions).
	ExpectedSize int

	// Tag is deployment scratch: the sharded runtime's partitioner packs
	// the owning shard and its window-slot index here so per-membership
	// routing needs no map lookup. The window package never reads it;
	// Release and Pool.Put zero it with the rest of the struct.
	Tag uint64

	Kept     []Entry
	Arrivals int // positions handed out, including dropped events
	Dropped  int
	closed   bool
}

// Add appends a kept event at the given position.
func (w *Window) Add(e event.Event, pos int) {
	w.Kept = append(w.Kept, Entry{Ev: e, Pos: pos})
}

// Size returns the total number of events routed to the window (kept +
// dropped). After the window closes this is the true window size ws.
func (w *Window) Size() int { return w.Arrivals }

// CopyKept appends copies of the window's kept entries to dst and returns
// the extended slice. Hooks and taps that must keep entries past their
// OnWindowClose return use it to honor the pooling contract: the window's
// own Kept buffer is recycled (and poisoned) by Release.
func (w *Window) CopyKept(dst []Entry) []Entry {
	return append(dst, w.Kept...)
}

// Poisoned reports whether the entry was clobbered by Release — i.e. some
// consumer illegally retained it past the window's recycling. Valid
// entries always carry a non-negative position.
func (e Entry) Poisoned() bool { return e.Pos < 0 }

// Closed reports whether the window has been closed by the manager.
func (w *Window) Closed() bool { return w.closed }

// MarkClosed seals the window without a Manager. Sharded deployments use
// it on windows they own directly: the partitioner decides *when* a
// window closes (it runs the windowing policy), the owning shard marks
// the window closed before matching it, exactly as Manager.closeWindow
// does on the serial path.
func (w *Window) MarkClosed() { w.closed = true }

// Membership records that an event belongs to a window at a position.
type Membership struct {
	W   *Window
	Pos int
}

// Pool recycles Window structs and their Kept buffers. It is the
// freelist behind Manager and behind each shard of the sharded runtime:
// a single-goroutine component (one owner puts and gets), with only the
// observability counters behind atomics so Stats snapshots may read
// them from other goroutines. Put poisons the entries exactly like
// Manager.Release, so the retain-past-close contract stays enforceable
// no matter which deployment owns the window.
type Pool struct {
	free []*Window

	gets   atomic.Uint64
	puts   atomic.Uint64
	misses atomic.Uint64
}

// Get returns a recycled window (zeroed, with its Kept capacity intact)
// or allocates a fresh one when the pool is empty, counting a miss.
func (p *Pool) Get() *Window {
	p.gets.Add(1)
	if n := len(p.free); n > 0 {
		w := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return w
	}
	p.misses.Add(1)
	return &Window{}
}

// Put recycles a window: the kept entries are poisoned (Pos = -1, event
// zeroed) so illegally retained references surface as corrupt data, the
// struct is zeroed, and the Kept buffer is kept for reuse.
func (p *Pool) Put(w *Window) {
	if w == nil {
		return
	}
	p.puts.Add(1)
	for i := range w.Kept {
		w.Kept[i] = Entry{Pos: -1}
	}
	kept := w.Kept[:0]
	*w = Window{Kept: kept}
	p.free = append(p.free, w)
}

// Gets reports how many windows were handed out.
func (p *Pool) Gets() uint64 { return p.gets.Load() }

// Puts reports how many windows were recycled into the pool. Together
// with Gets and Misses this makes pool accounting conservation-checkable
// across ownership handoffs (the sharded runtime's work stealing recycles
// a stolen window into the thief's pool, not its opener's): at any
// moment Puts + Misses >= Gets per process (the surplus is the pooled
// free list plus live windows allocated by misses), and once every
// window has closed and been recycled, the global sums satisfy
// Gets == Puts exactly.
func (p *Pool) Puts() uint64 { return p.puts.Load() }

// Misses reports how many Gets had to allocate because the pool was
// empty — in steady state (every closed window released) this stops
// growing once the working set of concurrently open windows is warm, so
// a climbing miss count is the signature of a pool leak.
func (p *Pool) Misses() uint64 { return p.misses.Load() }

// Manager routes a stream of events (in global order) into windows
// according to a Spec. It is a single-goroutine component, owned by the
// operator's processing loop.
type Manager struct {
	spec   Spec
	nextID ID
	open   []*Window // in opening order

	sinceOpen  int        // events since last slide-open (count mode)
	lastOpenTS event.Time // timestamp of last slide-open (time mode)
	opened     bool       // at least one window opened so far

	// Expected-size predictor for time-based windows: exponential moving
	// average over closed window sizes.
	expSize float64

	memberBuf []Membership
	closedBuf []*Window

	// pool recycles released windows (and their Kept buffers): the data
	// path opens and closes windows continuously, and reusing the buffers
	// makes the steady-state hot path allocation-free. The Manager is a
	// single-goroutine component, so the pool needs no locking; the
	// sharded runtime gives every shard its own manager-independent Pool
	// so releases stay shard-local.
	pool Pool

	totalOpened uint64
	totalClosed uint64
	sizeSum     uint64 // sum of closed window sizes, for AvgSize
}

// NewManager builds a manager for the given spec. The spec must validate.
func NewManager(spec Spec) (*Manager, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{spec: spec}
	if spec.Mode == ModeTime && spec.SizeHint > 0 {
		m.expSize = float64(spec.SizeHint)
	}
	return m, nil
}

// Spec returns the manager's windowing policy.
func (m *Manager) Spec() Spec { return m.spec }

// OpenCount reports the number of currently open windows.
func (m *Manager) OpenCount() int { return len(m.open) }

// OpenWindows exposes the currently open windows in opening order. The
// returned slice aliases the manager's own state: callers must treat it
// as read-only (Tag excepted — it is deployment scratch), must not
// retain it past the next Route or Flush call, and must call from the
// manager's owning goroutine. The sharded runtime's partitioner uses it
// to pick steal candidates when rebalancing window ownership.
func (m *Manager) OpenWindows() []*Window { return m.open }

// TotalOpened reports how many windows were ever opened.
func (m *Manager) TotalOpened() uint64 { return m.totalOpened }

// TotalClosed reports how many windows were ever closed.
func (m *Manager) TotalClosed() uint64 { return m.totalClosed }

// AvgSize returns the average size (in events) of closed windows; this is
// the N used to dimension the utility table for time-based windows.
func (m *Manager) AvgSize() float64 {
	if m.totalClosed == 0 {
		return 0
	}
	return float64(m.sizeSum) / float64(m.totalClosed)
}

// ExpectedSize returns the current window-size prediction used for
// relative-position scaling (exact Count for count-based windows).
func (m *Manager) ExpectedSize() int {
	if m.spec.Mode == ModeCount {
		return m.spec.Count
	}
	if m.expSize <= 0 {
		return 0
	}
	return int(m.expSize + 0.5)
}

// Route processes the next event in stream order. It returns the windows
// the event belongs to (with the event's position in each) and any windows
// that closed before or because of this event. Time-based windows close
// when an event at or past their end arrives (the event is not part of
// them); count-based windows close once they contain Count arrivals.
//
// The returned slices are reused across calls: callers must consume them
// before the next Route or Flush call and must not retain them.
func (m *Manager) Route(e event.Event) (member []Membership, closed []*Window) {
	m.memberBuf = m.memberBuf[:0]
	m.closedBuf = m.closedBuf[:0]

	// 1. Close expired time windows (their span ended strictly before e).
	if m.spec.Mode == ModeTime {
		m.closeExpired(e.TS)
	}
	// 1b. Pattern-based closing: a matching event seals all open windows
	// before it is routed (it belongs to windows it opens, not closes).
	if m.spec.Close != nil && m.spec.Close(e) {
		for _, w := range m.open {
			m.closeWindow(w)
		}
		m.open = m.open[:0]
	}

	// 2. Possibly open a new window at this event, recycling a released
	// window struct when one is available.
	if m.shouldOpen(e) {
		w := m.pool.Get()
		w.ID = m.nextID
		w.OpenSeq = e.Seq
		w.OpenTS = e.TS
		w.ExpectedSize = m.predictSize()
		m.nextID++
		m.totalOpened++
		m.open = append(m.open, w)
	}

	// 3. Assign the event a position in every open window.
	for _, w := range m.open {
		m.memberBuf = append(m.memberBuf, Membership{W: w, Pos: w.Arrivals})
		w.Arrivals++
	}

	// 4. Close count windows that reached their size.
	if m.spec.Mode == ModeCount {
		remaining := m.open[:0]
		for _, w := range m.open {
			if w.Arrivals >= m.spec.Count {
				m.closeWindow(w)
			} else {
				remaining = append(remaining, w)
			}
		}
		m.open = remaining
	}

	return m.memberBuf, m.closedBuf
}

// Flush closes all remaining open windows (end of stream). The returned
// slice is reused; see Route.
func (m *Manager) Flush() []*Window {
	m.closedBuf = m.closedBuf[:0]
	for _, w := range m.open {
		m.closeWindow(w)
	}
	m.open = m.open[:0]
	return m.closedBuf
}

func (m *Manager) shouldOpen(e event.Event) bool {
	if m.spec.Open != nil {
		return m.spec.Open(e)
	}
	switch m.spec.Mode {
	case ModeCount:
		openNow := m.sinceOpen == 0
		m.sinceOpen++
		if m.sinceOpen == m.spec.Slide {
			m.sinceOpen = 0
		}
		return openNow
	case ModeTime:
		if !m.opened || e.TS >= m.lastOpenTS+m.spec.SlideTime {
			m.opened = true
			m.lastOpenTS = e.TS
			return true
		}
	}
	return false
}

func (m *Manager) closeExpired(now event.Time) {
	remaining := m.open[:0]
	for _, w := range m.open {
		if now >= w.OpenTS+m.spec.Length {
			m.closeWindow(w)
		} else {
			remaining = append(remaining, w)
		}
	}
	m.open = remaining
}

func (m *Manager) closeWindow(w *Window) {
	w.closed = true
	m.totalClosed++
	m.sizeSum += uint64(w.Arrivals)
	m.closedBuf = append(m.closedBuf, w)
	if m.spec.Mode == ModeTime && w.Arrivals > 0 {
		// EMA with a mild smoothing factor: adapts to rate changes but is
		// robust to single odd windows.
		const alpha = 0.1
		if m.expSize <= 0 {
			m.expSize = float64(w.Arrivals)
		} else {
			m.expSize = (1-alpha)*m.expSize + alpha*float64(w.Arrivals)
		}
	}
}

// Release hands a closed window back to the manager for reuse. Call it
// after the window's consumers (matcher, OnWindowClose hook) have
// returned; the window and its entries must not be referenced afterwards.
// Release poisons the kept entries — Pos becomes -1 and the event is
// zeroed — so a consumer that illegally retained them observes clobbered
// data instead of silently reading a recycled window. Releasing is
// optional (an unreleased window is simply garbage collected) and must
// happen on the manager's goroutine. Still-open windows and double
// releases are ignored.
func (m *Manager) Release(w *Window) {
	if w == nil || !w.closed {
		return
	}
	m.pool.Put(w)
}

// PoolMisses reports how many window opens had to allocate because no
// released window was available for reuse (see Pool.Misses).
func (m *Manager) PoolMisses() uint64 { return m.pool.Misses() }

func (m *Manager) predictSize() int {
	if m.spec.Mode == ModeCount {
		return m.spec.Count
	}
	if m.expSize <= 0 {
		return 0
	}
	return int(m.expSize + 0.5)
}
