package harness

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/event"
)

// MeasureShedderOverhead times the O(1) shedding decision (a utility-table
// lookup plus threshold comparison) against a calibrated per-event
// processing cost, reproducing Figure 10: LS overhead as a percentage of
// event processing time for growing window sizes, with M = 500 event
// types as in the paper's largest configuration.
//
// processingNsPerEvent is the reference cost of processing one event in
// the operator; pass a measured value (see CalibrateProcessingCost) or 0
// to use a conservative default of 1µs (th = 1M events/s — a *fast*
// operator, which makes the reported overhead an upper bound).
func MeasureShedderOverhead(windowSizes []int, types int, processingNsPerEvent float64) (*Figure, error) {
	if types <= 0 {
		types = 500
	}
	if processingNsPerEvent <= 0 {
		processingNsPerEvent = 1000
	}
	fig := &Figure{
		ID:     "Fig10",
		Title:  fmt.Sprintf("LS overhead vs window size (M=%d, processing=%.0fns/event)", types, processingNsPerEvent),
		XLabel: "window size",
		YLabel: "% overhead",
	}
	ser := Series{Label: "LS overhead"}
	rng := rand.New(rand.NewSource(42))
	for _, ws := range windowSizes {
		perDecision, err := timeShedderDecision(ws, types, rng)
		if err != nil {
			return nil, err
		}
		ser.X = append(ser.X, float64(ws))
		ser.Y = append(ser.Y, 100*perDecision/processingNsPerEvent)
		fig.Notes = append(fig.Notes, fmt.Sprintf("ws=%d: %.1f ns/decision", ws, perDecision))
	}
	fig.Series = []Series{ser}
	return fig, nil
}

// timeShedderDecision measures the average wall time of one Drop call on
// a model with the given dimensions, touching positions across the whole
// table to defeat cache-friendly access patterns just as a real window
// stream does.
func timeShedderDecision(ws, types int, rng *rand.Rand) (float64, error) {
	ut, err := core.NewUtilityTable(types, ws, 1)
	if err != nil {
		return 0, err
	}
	shares := make([][]float64, types)
	for t := 0; t < types; t++ {
		shares[t] = make([]float64, ut.Bins())
		for b := range shares[t] {
			ut.Set(event.Type(t), b, rng.Intn(101))
			shares[t][b] = rng.Float64()
		}
	}
	model, err := core.NewModelFromTable(ut, shares)
	if err != nil {
		return 0, err
	}
	shedder, err := core.NewShedder(model)
	if err != nil {
		return 0, err
	}
	part := core.ComputePartitioning(ws, float64(ws)/2, 0.8)
	if err := shedder.Configure(part, 1); err != nil {
		return 0, err
	}
	// Pre-generate lookup coordinates so RNG cost stays out of the loop.
	const samples = 1 << 16
	typesIdx := make([]event.Type, samples)
	posIdx := make([]int, samples)
	for i := range typesIdx {
		typesIdx[i] = event.Type(rng.Intn(types))
		posIdx[i] = rng.Intn(ws)
	}
	// Warm up, then measure.
	sink := false
	for i := 0; i < samples; i++ {
		sink = shedder.Drop(typesIdx[i], posIdx[i], ws) || sink
	}
	const rounds = 8
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for i := 0; i < samples; i++ {
			sink = shedder.Drop(typesIdx[i], posIdx[i], ws) || sink
		}
	}
	elapsed := time.Since(start)
	_ = sink
	return float64(elapsed.Nanoseconds()) / float64(rounds*samples), nil
}

// RunningExample renders the paper's running example (Section 3.3):
// Table 1's utility table, the CDT of Figure 2, and the threshold chosen
// for x = 2.
func RunningExample() (string, error) {
	ut, err := core.NewUtilityTable(2, 5, 1)
	if err != nil {
		return "", err
	}
	utA := []int{70, 15, 10, 5, 0}
	utB := []int{0, 60, 30, 10, 0}
	for p := 0; p < 5; p++ {
		ut.Set(0, p, utA[p])
		ut.Set(1, p, utB[p])
	}
	shares := [][]float64{
		{0.8, 0.5, 0.1, 0.2, 0.5},
		{0.2, 0.5, 0.9, 0.8, 0.5},
	}
	model, err := core.NewModelFromTable(ut, shares)
	if err != nil {
		return "", err
	}
	cdt, err := core.BuildCDT(model, core.Partitioning{Rho: 1, PSize: 5, WS: 5})
	if err != nil {
		return "", err
	}
	var b []byte
	b = append(b, "=== Table 1 + Figure 2: running example ===\n"...)
	b = append(b, "UT (utility per type and position):\n  pos:      1    2    3    4    5\n"...)
	for t, name := range []string{"A", "B"} {
		b = append(b, fmt.Sprintf("  %s:   ", name)...)
		for p := 0; p < 5; p++ {
			b = append(b, fmt.Sprintf("%5d", ut.At(event.Type(t), p))...)
		}
		b = append(b, '\n')
	}
	b = append(b, "CDT (cumulative utility occurrences O(u)):\n"...)
	for _, u := range []int{0, 5, 10, 15, 30, 60, 70} {
		b = append(b, fmt.Sprintf("  O(%3d) = %.1f\n", u, cdt.At(0, u))...)
	}
	b = append(b, fmt.Sprintf("threshold for x=2: u_th = %d (paper: 10)\n", cdt.Threshold(0, 2))...)
	return string(b), nil
}
