package harness

import (
	"strings"
	"testing"
)

// tinyScale keeps figure smoke tests fast: smallest datasets and sweeps
// that still exercise every code path.
func tinyScale() Scale {
	return Scale{
		NYSEMinutes: 30,
		RTLSSeconds: 600,
		Throughput:  1000,
		Seed:        1,
		Q1Sizes:     []int{3},
		Q2Sizes:     []int{10},
		Q34Windows:  []int{300},
		BinSizes:    []int{1, 16},
		Rates:       []float64{1.2},
	}
}

func checkFigure(t *testing.T, fig *Figure, wantSeries int) {
	t.Helper()
	if fig == nil {
		t.Fatal("nil figure")
	}
	if len(fig.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", fig.ID, len(fig.Series), wantSeries)
	}
	for _, s := range fig.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Fatalf("%s series %q: x/y = %d/%d", fig.ID, s.Label, len(s.X), len(s.Y))
		}
		for i, y := range s.Y {
			if y < 0 {
				t.Errorf("%s series %q y[%d] = %v < 0", fig.ID, s.Label, i, y)
			}
		}
	}
	if !strings.Contains(fig.Render(), fig.ID) {
		t.Errorf("Render missing figure id")
	}
}

func TestFig5aSmoke(t *testing.T) {
	fig, err := Fig5a(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2) // 1 rate x {eSPICE, BL}
	// Ordering: eSPICE (series 0) at or below BL (series 1) on average.
	if avg(fig.Series[0].Y) > avg(fig.Series[1].Y)+10 {
		t.Errorf("eSPICE FN %v should not exceed BL %v by a wide margin",
			fig.Series[0].Y, fig.Series[1].Y)
	}
}

func avg(ys []float64) float64 {
	s := 0.0
	for _, y := range ys {
		s += y
	}
	return s / float64(len(ys))
}

func TestFig5bSmoke(t *testing.T) {
	fig, err := Fig5b(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
}

func TestFig5cSmoke(t *testing.T) {
	fig, err := Fig5c(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
}

func TestFig5dSmoke(t *testing.T) {
	fig, err := Fig5d(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
}

func TestFig5eSmoke(t *testing.T) {
	fig, err := Fig5e(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
	// The headline claim: eSPICE near zero on the sequence operator.
	if got := avg(fig.Series[0].Y); got > 15 {
		t.Errorf("Q3 eSPICE FN = %v, want near zero", got)
	}
}

func TestFig5fSmoke(t *testing.T) {
	fig, err := Fig5f(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
}

func TestFig6aSmoke(t *testing.T) {
	fig, err := Fig6a(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
}

func TestFig6bSmoke(t *testing.T) {
	fig, err := Fig6b(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
}

func TestFig7Smoke(t *testing.T) {
	fig, err := Fig7(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 1) // one rate
	// No violation note should report > 0 violations.
	for _, n := range fig.Notes {
		if strings.Contains(n, "violations of LB=1s: 0") {
			return
		}
	}
	t.Errorf("expected a zero-violation note, got %v", fig.Notes)
}

func TestFig8aSmoke(t *testing.T) {
	fig, err := Fig8a(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 1)
	if len(fig.Series[0].X) != 5 {
		t.Errorf("expected 5 window-size points, got %d", len(fig.Series[0].X))
	}
}

func TestFig8bSmoke(t *testing.T) {
	fig, err := Fig8b(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 1)
}

func TestFig9aSmoke(t *testing.T) {
	fig, err := Fig9a(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 1)
	if len(fig.Series[0].X) != 2 {
		t.Errorf("expected 2 bin-size points, got %d", len(fig.Series[0].X))
	}
}

func TestFig9bSmoke(t *testing.T) {
	fig, err := Fig9b(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 1)
}

func TestAblationPartitioningSmoke(t *testing.T) {
	fig, err := AblationPartitioning(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 3)
	// LB violations must be zero for every f.
	for _, v := range fig.Series[1].Y {
		if v != 0 {
			t.Errorf("latency violations = %v, want 0", fig.Series[1].Y)
			break
		}
	}
}

func TestAblationSheddersSmoke(t *testing.T) {
	fig, err := AblationShedders(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 3)
}

func TestScaleRatesDefault(t *testing.T) {
	s := Scale{}
	if got := s.rates(); len(got) != 2 || got[0] != 1.2 {
		t.Errorf("rates() = %v", got)
	}
	if rateLabel(1.2) != "R1" || rateLabel(1.4) != "R2" {
		t.Error("rate labels")
	}
	if rateLabel(1.3) != "R=1.30th" {
		t.Errorf("custom rate label = %q", rateLabel(1.3))
	}
}

func TestTrainMultiValidation(t *testing.T) {
	if _, err := TrainMulti(nil, nil, 1, 10); err == nil {
		t.Error("no queries must fail")
	}
}
