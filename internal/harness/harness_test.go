package harness

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/window"
)

// testScale keeps unit-test runtime low.
func testScale() Scale {
	s := QuickScale()
	s.NYSEMinutes = 40
	s.RTLSSeconds = 900
	return s
}

func TestShedderKindString(t *testing.T) {
	if ShedESPICE.String() != "eSPICE" || ShedBL.String() != "BL" ||
		ShedRandom.String() != "random" || ShedNone.String() != "none" {
		t.Error("names wrong")
	}
	if ShedderKind(9).String() != "shedder(9)" {
		t.Error("fallback wrong")
	}
}

func TestTrainProducesUsableModel(t *testing.T) {
	s := testScale()
	meta, train, _, err := RTLSWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	q, err := queries.Q1(meta, 4, pattern.SelectFirst, 15)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Train(q, train, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Model.Trained() {
		t.Fatal("model untrained")
	}
	if tr.Windows == 0 || tr.Matches == 0 {
		t.Fatalf("training coverage: %d windows, %d matches", tr.Windows, tr.Matches)
	}
	if tr.MembershipFactor <= 0 {
		t.Fatalf("membership factor = %v", tr.MembershipFactor)
	}
	// Striker types must carry utility at position 0 (window opener).
	ut := tr.Model.UT()
	if ut.Utility(meta.StrikerA, 0, tr.Model.N()) == 0 &&
		ut.Utility(meta.StrikerB, 0, tr.Model.N()) == 0 {
		t.Error("strikers should have nonzero utility at the window head")
	}
	// Training errors.
	if _, err := Train(q, nil, 1, 0); err == nil {
		t.Error("empty training stream must fail")
	}
}

func TestQ1ESPICEBeatsBL(t *testing.T) {
	s := testScale()
	meta, train, eval, err := RTLSWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	q, err := queries.Q1(meta, 4, pattern.SelectFirst, 15)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Query: q, Train: train, Eval: eval,
		OverloadFactor: 1.2, Throughput: s.Throughput, Seed: 1,
	}
	es, err := RunExperiment(cfg, ShedESPICE)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := RunExperiment(cfg, ShedBL)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Q1 n=4 R1: eSPICE %v | BL %v", es.Quality, bl.Quality)
	t.Logf("shed fractions: eSPICE %.3f, BL %.3f", es.ShedFraction, bl.ShedFraction)
	if es.Quality.Truth == 0 {
		t.Fatal("no ground truth complex events")
	}
	if es.Quality.FNPct() >= bl.Quality.FNPct() {
		t.Errorf("eSPICE FN %.1f%% should beat BL FN %.1f%%",
			es.Quality.FNPct(), bl.Quality.FNPct())
	}
	// Both shed roughly the overload excess (1 - th/R ≈ 16.7%).
	if es.ShedFraction < 0.05 || es.ShedFraction > 0.4 {
		t.Errorf("eSPICE shed fraction %.3f out of plausible range", es.ShedFraction)
	}
}

func TestQ3ESPICENearZeroFN(t *testing.T) {
	s := testScale()
	meta, train, eval, err := NYSEWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	q, err := queries.Q3(meta, pattern.SelectFirst, 600)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Query: q, Train: train, Eval: eval,
		OverloadFactor: 1.4, Throughput: s.Throughput, Seed: 1,
	}
	es, err := RunExperiment(cfg, ShedESPICE)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := RunExperiment(cfg, ShedBL)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Q3 ws=600 R2: eSPICE %v | BL %v", es.Quality, bl.Quality)
	if es.Quality.Truth == 0 {
		t.Fatal("no ground truth for Q3")
	}
	if es.Quality.FNPct() > 10 {
		t.Errorf("eSPICE FN = %.1f%%, want near zero for the sequence operator", es.Quality.FNPct())
	}
	if bl.Quality.FNPct() < 20 {
		t.Errorf("BL FN = %.1f%%, expected high for fragile 20-step sequences", bl.Quality.FNPct())
	}
}

func TestLatencyBoundHeld(t *testing.T) {
	s := testScale()
	meta, train, eval, err := RTLSWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	q, err := queries.Q1(meta, 5, pattern.SelectFirst, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{1.2, 1.4} {
		res, err := RunExperiment(RunConfig{
			Query: q, Train: train, Eval: eval,
			OverloadFactor: rate, Throughput: s.Throughput,
			Seed: 1, RecordLatency: true,
		}, ShedESPICE)
		if err != nil {
			t.Fatal(err)
		}
		viol := res.Latency.ViolationCount(event.Second)
		t.Logf("rate %.1f: max latency %v, mean %v, max queue %d",
			rate, res.Latency.Max(), res.Latency.Mean(), res.MaxQueue)
		if viol != 0 {
			t.Errorf("rate %.1f: %d latency-bound violations (max %v)", rate, viol, res.Latency.Max())
		}
	}
}

func TestNoSheddingViolatesLatency(t *testing.T) {
	s := testScale()
	meta, train, eval, err := RTLSWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	q, err := queries.Q1(meta, 4, pattern.SelectFirst, 15)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunExperiment(RunConfig{
		Query: q, Train: train, Eval: eval,
		OverloadFactor: 1.4, Throughput: s.Throughput,
		Seed: 1, RecordLatency: true,
	}, ShedNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.ViolationCount(event.Second) == 0 {
		t.Error("without shedding, a 40% overload must violate the latency bound")
	}
	if res.Quality.FNPct() != 0 {
		t.Errorf("no shedding loses no events: FN = %v", res.Quality.FNPct())
	}
}

func TestEvalWithModelValidation(t *testing.T) {
	if _, err := EvalWithModel(RunConfig{}, nil, ShedESPICE); err == nil {
		t.Error("nil training result must fail")
	}
	if _, err := RunExperiment(RunConfig{}, ShedESPICE); err == nil {
		t.Error("empty config must fail")
	}
}

func TestRunningExample(t *testing.T) {
	out, err := RunningExample()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"O(  0) = 1.2", "O( 10) = 2.3", "u_th = 10"} {
		if !strings.Contains(out, want) {
			t.Errorf("running example output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		ID: "X", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{3.5, 4}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{5}},
		},
		Notes: []string{"hello"},
	}
	out := f.Render()
	for _, want := range []string{"=== X: t ===", "a", "b", "3.50", "hello", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	empty := &Figure{ID: "E", Title: "none"}
	if !strings.Contains(empty.Render(), "(no data)") {
		t.Error("empty figure should render placeholder")
	}
}

func TestMeasureShedderOverhead(t *testing.T) {
	fig, err := MeasureShedderOverhead([]int{100, 1000}, 50, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 || len(fig.Series[0].Y) != 2 {
		t.Fatalf("series shape: %+v", fig.Series)
	}
	for i, y := range fig.Series[0].Y {
		if y <= 0 || y > 100 {
			t.Errorf("overhead[%d] = %v%%, implausible", i, y)
		}
	}
}

// TestHookRetentionCaught enforces the window-pool retention contract:
// an OnWindowClose hook that holds on to a closed window's entries past
// its return sees them poisoned (Pos = -1, zeroed event) once the
// operator recycles the window — the violation surfaces as clobbered
// data here instead of silent aliasing in production. The model builder
// obeys the contract by copying (deferred mode) or reading synchronously.
func TestHookRetentionCaught(t *testing.T) {
	p := pattern.MustCompile(pattern.Pattern{
		Name:  "any",
		Steps: []pattern.Step{{}},
	})
	var retained [][]window.Entry
	op, err := operator.New(operator.Config{
		Window:   window.Spec{Mode: window.ModeCount, Count: 4, Slide: 4},
		Patterns: []*pattern.Compiled{p},
		OnWindowClose: func(w *window.Window, matched []window.Entry) {
			retained = append(retained, w.Kept) // contract violation
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	events := make([]event.Event, 32)
	for i := range events {
		events[i] = event.Event{Seq: uint64(i + 1), TS: event.Time(i)}
	}
	if _, err := sim.ReplayUnshed(events, op); err != nil {
		t.Fatal(err)
	}
	if len(retained) < 2 {
		t.Fatalf("retained %d windows, want >= 2", len(retained))
	}
	caught := 0
	for _, kept := range retained {
		for _, ent := range kept {
			if ent.Pos == -1 && ent.Ev.Seq == 0 {
				caught++
			}
		}
	}
	if caught == 0 {
		t.Fatal("retained entries were not poisoned; the retention contract is unenforced")
	}
}
