package harness

import (
	"fmt"
	"strings"

	"repro/internal/datasets"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/queries"
)

// Series is one line of a figure: label plus x/y points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a reproduced table/figure of the paper, renderable as text.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render formats the figure as an aligned text table: one row per x
// value, one column per series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	// Header.
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%16s", s.Label)
	}
	fmt.Fprintf(&b, "    (%s)\n", f.YLabel)
	// Rows keyed by the first series' x values.
	for i, x := range f.Series[0].X {
		fmt.Fprintf(&b, "%-14.6g", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%16.2f", s.Y[i])
			} else {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale bounds the dataset sizes and sweep ranges so the same experiment
// code serves both the full reproduction (cmd/espice-bench) and the
// quicker Go benchmarks.
type Scale struct {
	NYSEMinutes int
	RTLSSeconds int
	Throughput  float64
	Seed        int64
	Q1Sizes     []int // pattern sizes for Q1 figures
	Q2Sizes     []int // pattern sizes for Q2 figures
	Q34Windows  []int // window sizes (events) for Q3/Q4 figures
	BinSizes    []int // bin-size sweep for Figure 9
	Rates       []float64
}

// DefaultScale mirrors the paper's sweeps on moderately sized synthetic
// datasets.
func DefaultScale() Scale {
	return Scale{
		NYSEMinutes: 160,
		RTLSSeconds: 7200,
		Throughput:  1000,
		Seed:        1,
		Q1Sizes:     []int{2, 3, 4, 5, 6},
		Q2Sizes:     []int{10, 20, 30, 40, 50, 60, 70, 80},
		Q34Windows:  []int{300, 600, 1200, 1500, 1800, 2000},
		BinSizes:    []int{1, 2, 4, 8, 16, 32, 64},
		Rates:       []float64{1.2, 1.4},
	}
}

// QuickScale is a reduced configuration for unit tests and testing.B
// benchmarks.
func QuickScale() Scale {
	return Scale{
		NYSEMinutes: 60,
		RTLSSeconds: 1200,
		Throughput:  1000,
		Seed:        1,
		Q1Sizes:     []int{2, 4, 6},
		Q2Sizes:     []int{10, 40, 80},
		Q34Windows:  []int{300, 1200, 2000},
		BinSizes:    []int{1, 4, 16, 64},
		Rates:       []float64{1.2, 1.4},
	}
}

func (s Scale) rates() []float64 {
	if len(s.Rates) == 0 {
		return []float64{1.2, 1.4}
	}
	return s.Rates
}

func rateLabel(r float64) string {
	switch r {
	case 1.2:
		return "R1"
	case 1.4:
		return "R2"
	default:
		return fmt.Sprintf("R=%.2fth", r)
	}
}

// NYSEWorkload generates the stock dataset for the scale, including the
// hot symbols Q4 requires, split into training and evaluation halves.
func NYSEWorkload(s Scale) (*datasets.NYSEMeta, []event.Event, []event.Event, error) {
	cfg := datasets.NYSEConfig{
		Minutes:       s.NYSEMinutes,
		Seed:          s.Seed,
		InfluenceProb: 0.95,
	}
	cfg.HotSymbols = queries.Q4HotSymbolIDs(datasets.NYSEConfig{Leaders: 5})
	cfg.HotQuotesPerMinute = 10
	meta, evs, err := datasets.GenerateNYSE(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	train, eval := SplitHalf(evs)
	return meta, train, eval, nil
}

// RTLSWorkload generates the soccer dataset, split into halves.
func RTLSWorkload(s Scale) (*datasets.RTLSMeta, []event.Event, []event.Event, error) {
	meta, evs, err := datasets.GenerateRTLS(datasets.RTLSConfig{
		DurationSec: s.RTLSSeconds,
		Seed:        s.Seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	train, eval := SplitHalf(evs)
	return meta, train, eval, nil
}

// SplitHalf divides a stream into equal training and evaluation halves.
func SplitHalf(evs []event.Event) (train, eval []event.Event) {
	mid := len(evs) / 2
	return evs[:mid], evs[mid:]
}

// qualitySweep runs eSPICE vs BL at every rate over the x values and
// collects metric(kind, rate, x) into one series per (rate, kind).
func qualitySweep(
	s Scale,
	xs []int,
	queryFor func(x int) (queries.Query, error),
	train, eval []event.Event,
	metric func(metrics.Quality) float64,
) ([]Series, error) {
	kinds := []ShedderKind{ShedESPICE, ShedBL}
	var out []Series
	for _, rate := range s.rates() {
		for _, kind := range kinds {
			ser := Series{Label: fmt.Sprintf("%s: %s", rateLabel(rate), kind)}
			for _, x := range xs {
				q, err := queryFor(x)
				if err != nil {
					return nil, err
				}
				res, err := RunExperiment(RunConfig{
					Query:          q,
					Train:          train,
					Eval:           eval,
					OverloadFactor: rate,
					Throughput:     s.Throughput,
					Seed:           s.Seed,
				}, kind)
				if err != nil {
					return nil, fmt.Errorf("%s x=%d %s: %w", q.Name, x, kind, err)
				}
				ser.X = append(ser.X, float64(x))
				ser.Y = append(ser.Y, metric(res.Quality))
			}
			out = append(out, ser)
		}
	}
	return out, nil
}

func fnPct(q metrics.Quality) float64 { return q.FNPct() }
func fpPct(q metrics.Quality) float64 { return q.FPPct() }

// Fig5a reproduces Figure 5a: %FN for Q1 (first policy) vs pattern size.
func Fig5a(s Scale) (*Figure, error) {
	return q1Quality(s, pattern.SelectFirst, fnPct, "5a", "false negatives")
}

// Fig5b reproduces Figure 5b: %FN for Q1 (last policy).
func Fig5b(s Scale) (*Figure, error) {
	return q1Quality(s, pattern.SelectLast, fnPct, "5b", "false negatives")
}

// Fig6a reproduces Figure 6a: %FP for Q1 (first policy).
func Fig6a(s Scale) (*Figure, error) {
	return q1Quality(s, pattern.SelectFirst, fpPct, "6a", "false positives")
}

func q1Quality(s Scale, pol pattern.SelectionPolicy, metric func(metrics.Quality) float64, id, what string) (*Figure, error) {
	meta, train, eval, err := RTLSWorkload(s)
	if err != nil {
		return nil, err
	}
	series, err := qualitySweep(s, s.Q1Sizes, func(n int) (queries.Query, error) {
		return queries.Q1(meta, n, pol, 15)
	}, train, eval, metric)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "Fig" + id,
		Title:  fmt.Sprintf("Q1 (%s selection): %% %s vs pattern size", pol, what),
		XLabel: "pattern size",
		YLabel: "% " + what,
		Series: series,
	}, nil
}

// Fig5c reproduces Figure 5c: %FN for Q2 (first policy) vs pattern size.
func Fig5c(s Scale) (*Figure, error) { return q2Quality(s, pattern.SelectFirst, "5c") }

// Fig5d reproduces Figure 5d: %FN for Q2 (last policy).
func Fig5d(s Scale) (*Figure, error) { return q2Quality(s, pattern.SelectLast, "5d") }

func q2Quality(s Scale, pol pattern.SelectionPolicy, id string) (*Figure, error) {
	meta, train, eval, err := NYSEWorkload(s)
	if err != nil {
		return nil, err
	}
	series, err := qualitySweep(s, s.Q2Sizes, func(n int) (queries.Query, error) {
		return queries.Q2(meta, n, pol, 240)
	}, train, eval, fnPct)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "Fig" + id,
		Title:  fmt.Sprintf("Q2 (%s selection): %% false negatives vs pattern size", pol),
		XLabel: "pattern size",
		YLabel: "% false negatives",
		Series: series,
	}, nil
}

// Fig5e reproduces Figure 5e: %FN for Q3 (first policy) vs window size.
func Fig5e(s Scale) (*Figure, error) { return q3Quality(s, fnPct, "5e", "false negatives") }

// Fig6b reproduces Figure 6b: %FP for Q3 (first policy) vs window size.
func Fig6b(s Scale) (*Figure, error) { return q3Quality(s, fpPct, "6b", "false positives") }

func q3Quality(s Scale, metric func(metrics.Quality) float64, id, what string) (*Figure, error) {
	meta, train, eval, err := NYSEWorkload(s)
	if err != nil {
		return nil, err
	}
	series, err := qualitySweep(s, s.Q34Windows, func(ws int) (queries.Query, error) {
		return queries.Q3(meta, pattern.SelectFirst, ws)
	}, train, eval, metric)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "Fig" + id,
		Title:  fmt.Sprintf("Q3 (first selection): %% %s vs window size", what),
		XLabel: "window size",
		YLabel: "% " + what,
		Series: series,
	}, nil
}

// Fig5f reproduces Figure 5f: %FN for Q4 (first policy) vs window size.
func Fig5f(s Scale) (*Figure, error) {
	meta, train, eval, err := NYSEWorkload(s)
	if err != nil {
		return nil, err
	}
	series, err := qualitySweep(s, s.Q34Windows, func(ws int) (queries.Query, error) {
		return queries.Q4(meta, pattern.SelectFirst, ws)
	}, train, eval, fnPct)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "Fig5f",
		Title:  "Q4 (first selection): % false negatives vs window size",
		XLabel: "window size",
		YLabel: "% false negatives",
		Series: series,
	}, nil
}

// Fig7 reproduces Figure 7: per-second mean event latency under R1 and
// R2 for Q1 with eSPICE shedding; the latency bound is 1s, f = 0.8.
func Fig7(s Scale) (*Figure, error) {
	meta, train, eval, err := RTLSWorkload(s)
	if err != nil {
		return nil, err
	}
	q, err := queries.Q1(meta, 5, pattern.SelectFirst, 15)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Fig7",
		Title:  "Event processing latency under eSPICE (LB=1s, f=0.8)",
		XLabel: "time (sec)",
		YLabel: "latency (sec)",
	}
	for _, rate := range s.rates() {
		res, err := RunExperiment(RunConfig{
			Query:          q,
			Train:          train,
			Eval:           eval,
			OverloadFactor: rate,
			Throughput:     s.Throughput,
			Seed:           s.Seed,
			RecordLatency:  true,
		}, ShedESPICE)
		if err != nil {
			return nil, err
		}
		times, means := res.Latency.Bucketize(event.Second)
		ser := Series{Label: rateLabel(rate)}
		for i := range times {
			ser.X = append(ser.X, times[i].Seconds())
			ser.Y = append(ser.Y, means[i].Seconds())
		}
		fig.Series = append(fig.Series, ser)
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: max latency %.3fs, violations of LB=1s: %d, max queue %d",
			rateLabel(rate), res.Latency.Max().Seconds(),
			res.Latency.ViolationCount(event.Second), res.MaxQueue))
	}
	return fig, nil
}

// Fig8a reproduces Figure 8a: %FN for Q1 (n=5) when the model is trained
// across several window sizes (75%..125% of the reference) and shedding
// runs with each size.
func Fig8a(s Scale) (*Figure, error) {
	meta, train, eval, err := RTLSWorkload(s)
	if err != nil {
		return nil, err
	}
	windowSecs := []int{12, 14, 16, 18, 20}
	refSec := 16
	queryFor := func(sec int) (queries.Query, error) {
		return queries.Q1(meta, 5, pattern.SelectFirst, sec)
	}
	return variableWindowFigure(s, "Fig8a", "Q1 (n=5)", windowSecs, refSec, queryFor, train, eval)
}

// Fig8b reproduces Figure 8b: %FN for Q2 (n=20) across window sizes.
func Fig8b(s Scale) (*Figure, error) {
	meta, train, eval, err := NYSEWorkload(s)
	if err != nil {
		return nil, err
	}
	windowSecs := []int{180, 200, 240, 260, 300}
	refSec := 240
	queryFor := func(sec int) (queries.Query, error) {
		return queries.Q2(meta, 20, pattern.SelectFirst, sec)
	}
	return variableWindowFigure(s, "Fig8b", "Q2 (n=20)", windowSecs, refSec, queryFor, train, eval)
}

// variableWindowFigure trains one model over all window sizes (mixed
// training, Section 3.6) and evaluates shedding at each size.
func variableWindowFigure(
	s Scale, id, queryName string,
	windowSecs []int, refSec int,
	queryFor func(sec int) (queries.Query, error),
	train, eval []event.Event,
) (*Figure, error) {
	// Mixed-size training: all sizes feed one model with N from the
	// reference query's expected size.
	var qs []queries.Query
	for _, sec := range windowSecs {
		q, err := queryFor(sec)
		if err != nil {
			return nil, err
		}
		qs = append(qs, q)
	}
	refQ, err := queryFor(refSec)
	if err != nil {
		return nil, err
	}
	n := refQ.Window.SizeHint
	tr, err := TrainMulti(qs, train, 1, n)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("%s: %% false negatives vs window size (mixed-size training, N=%d)", queryName, n),
		XLabel: "window size %",
		YLabel: "% false negatives",
	}
	for _, rate := range s.rates() {
		ser := Series{Label: rateLabel(rate)}
		for _, sec := range windowSecs {
			q, err := queryFor(sec)
			if err != nil {
				return nil, err
			}
			res, err := EvalWithModel(RunConfig{
				Query:          q,
				Eval:           eval,
				OverloadFactor: rate,
				Throughput:     s.Throughput,
				Seed:           s.Seed,
				N:              n,
			}, tr, ShedESPICE)
			if err != nil {
				return nil, err
			}
			ser.X = append(ser.X, 100*float64(sec)/float64(refSec))
			ser.Y = append(ser.Y, res.Quality.FNPct())
		}
		fig.Series = append(fig.Series, ser)
	}
	return fig, nil
}

// Fig9a reproduces Figure 9a: %FN for Q1 (n=5) vs bin size.
func Fig9a(s Scale) (*Figure, error) {
	meta, train, eval, err := RTLSWorkload(s)
	if err != nil {
		return nil, err
	}
	q, err := queries.Q1(meta, 5, pattern.SelectFirst, 15)
	if err != nil {
		return nil, err
	}
	return binSizeFigure(s, "Fig9a", "Q1 (n=5)", q, train, eval)
}

// Fig9b reproduces Figure 9b: %FN for Q2 (n=20) vs bin size.
func Fig9b(s Scale) (*Figure, error) {
	meta, train, eval, err := NYSEWorkload(s)
	if err != nil {
		return nil, err
	}
	q, err := queries.Q2(meta, 20, pattern.SelectFirst, 240)
	if err != nil {
		return nil, err
	}
	return binSizeFigure(s, "Fig9b", "Q2 (n=20)", q, train, eval)
}

func binSizeFigure(s Scale, id, queryName string, q queries.Query, train, eval []event.Event) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  queryName + ": % false negatives vs bin size",
		XLabel: "bin size",
		YLabel: "% false negatives",
	}
	for _, rate := range s.rates() {
		ser := Series{Label: rateLabel(rate)}
		for _, bs := range s.BinSizes {
			res, err := RunExperiment(RunConfig{
				Query:          q,
				Train:          train,
				Eval:           eval,
				OverloadFactor: rate,
				Throughput:     s.Throughput,
				Seed:           s.Seed,
				BinSize:        bs,
			}, ShedESPICE)
			if err != nil {
				return nil, err
			}
			ser.X = append(ser.X, float64(bs))
			ser.Y = append(ser.Y, res.Quality.FNPct())
		}
		fig.Series = append(fig.Series, ser)
	}
	return fig, nil
}

// AblationPartitioning contrasts per-partition thresholds (the paper's
// dropping-interval design, Section 3.4) against a single whole-window
// threshold, by evaluating Q1 with f chosen so the window splits into
// several partitions versus a configuration with one partition.
func AblationPartitioning(s Scale) (*Figure, error) {
	meta, train, eval, err := RTLSWorkload(s)
	if err != nil {
		return nil, err
	}
	q, err := queries.Q1(meta, 5, pattern.SelectFirst, 15)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "AblPart",
		Title:  "Q1 (n=5): latency-bound safety vs f (partition count rises with f)",
		XLabel: "f",
		YLabel: "value",
	}
	fs := []float64{0.5, 0.8, 0.9}
	var fn, viol, maxq Series
	fn.Label, viol.Label, maxq.Label = "%FN (R2)", "LB violations", "max queue"
	for _, fVal := range fs {
		res, err := RunExperiment(RunConfig{
			Query:          q,
			Train:          train,
			Eval:           eval,
			OverloadFactor: 1.4,
			Throughput:     s.Throughput,
			Seed:           s.Seed,
			F:              fVal,
			RecordLatency:  true,
		}, ShedESPICE)
		if err != nil {
			return nil, err
		}
		fn.X = append(fn.X, fVal)
		fn.Y = append(fn.Y, res.Quality.FNPct())
		viol.X = append(viol.X, fVal)
		viol.Y = append(viol.Y, float64(res.Latency.ViolationCount(event.Second)))
		maxq.X = append(maxq.X, fVal)
		maxq.Y = append(maxq.Y, float64(res.MaxQueue))
	}
	fig.Series = []Series{fn, viol, maxq}
	return fig, nil
}

// AblationShedders compares eSPICE, BL and random shedding on Q1 (n=4),
// quantifying the paper's claim that a completely random shedder is
// comprehensively outperformed.
func AblationShedders(s Scale) (*Figure, error) {
	meta, train, eval, err := RTLSWorkload(s)
	if err != nil {
		return nil, err
	}
	q, err := queries.Q1(meta, 4, pattern.SelectFirst, 15)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "AblShed",
		Title:  "Q1 (n=4): shedder comparison",
		XLabel: "rate factor",
		YLabel: "% false negatives",
	}
	for _, kind := range []ShedderKind{ShedESPICE, ShedBL, ShedRandom} {
		ser := Series{Label: kind.String()}
		for _, rate := range s.rates() {
			res, err := RunExperiment(RunConfig{
				Query:          q,
				Train:          train,
				Eval:           eval,
				OverloadFactor: rate,
				Throughput:     s.Throughput,
				Seed:           s.Seed,
			}, kind)
			if err != nil {
				return nil, err
			}
			ser.X = append(ser.X, rate)
			ser.Y = append(ser.Y, res.Quality.FNPct())
		}
		fig.Series = append(fig.Series, ser)
	}
	return fig, nil
}
