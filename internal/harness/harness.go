// Package harness wires the full eSPICE evaluation pipeline of Section 4:
// train the utility model on an unshed prefix of a dataset, compute the
// ground truth on the evaluation suffix, replay the suffix through the
// simulated operator under overload with a load shedder (eSPICE, BL or
// random) driven by the overload detector, and compare result quality.
// The per-figure experiment runners live in figures.go.
package harness

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/window"
)

// ShedderKind selects the load-shedding strategy under test.
type ShedderKind int

// Available strategies.
const (
	// ShedNone disables shedding (latency-explosion contrast runs).
	ShedNone ShedderKind = iota
	// ShedESPICE is the paper's contribution.
	ShedESPICE
	// ShedBL is the baseline after He et al. (see internal/baseline).
	ShedBL
	// ShedRandom drops uniformly at random.
	ShedRandom
)

// String names the strategy.
func (k ShedderKind) String() string {
	switch k {
	case ShedNone:
		return "none"
	case ShedESPICE:
		return "eSPICE"
	case ShedBL:
		return "BL"
	case ShedRandom:
		return "random"
	default:
		return fmt.Sprintf("shedder(%d)", int(k))
	}
}

// ESPICEController connects overload-detector decisions to the eSPICE
// shedder: on overload it configures the partitioning and per-partition
// drop amount; otherwise it deactivates shedding.
type ESPICEController struct{ S *core.Shedder }

// OnDecision implements sim.Controller.
func (c ESPICEController) OnDecision(dec core.Decision) {
	if dec.Overloaded && dec.X > 0 {
		// Configure only fails for an untrained model, which the harness
		// excludes by construction; losing a beat here would just delay
		// shedding by one poll period anyway.
		_ = c.S.Configure(dec.Part, dec.X)
		return
	}
	c.S.Deactivate()
}

// BLController drives the BL baseline: the per-partition drop amount is
// scaled to a per-window amount (BL has no partitions).
type BLController struct{ B *baseline.BL }

// OnDecision implements sim.Controller.
func (c BLController) OnDecision(dec core.Decision) {
	if dec.Overloaded && dec.X > 0 {
		c.B.SetDropAmount(dec.X*float64(dec.Part.Rho), dec.Part.WS)
		return
	}
	c.B.Deactivate()
}

// RandomController drives the random shedder analogously.
type RandomController struct{ R *baseline.Random }

// OnDecision implements sim.Controller.
func (c RandomController) OnDecision(dec core.Decision) {
	if dec.Overloaded && dec.X > 0 {
		c.R.SetDropAmount(dec.X*float64(dec.Part.Rho), dec.Part.WS)
		return
	}
	c.R.Deactivate()
}

// TrainResult carries everything learned from the unshed training pass.
type TrainResult struct {
	// Model is the trained eSPICE utility model.
	Model *core.Model
	// TypeFreq[t] is the average number of events of type t per window —
	// the frequency statistic BL builds its quotas from.
	TypeFreq []float64
	// MembershipFactor is the average number of window memberships per
	// event, which calibrates the simulator's service-time model.
	MembershipFactor float64
	// Windows and Matches summarize training coverage.
	Windows, Matches int
}

// defaultBins is the target number of utility-table position bins when
// the caller does not fix a bin size: fine enough to resolve the
// positional correlations, coarse enough that moderate training volumes
// populate every relevant bin.
const defaultBins = 128

// tableDims resolves the utility-table dimensions for a query: N comes
// from the count-window size or the time-window size hint when not given;
// the bin size defaults to ceil(N/defaultBins).
func tableDims(q queries.Query, n, binSize int) (int, int) {
	if n == 0 {
		if q.Window.Mode == window.ModeCount {
			n = q.Window.Count
		} else if q.Window.SizeHint > 0 {
			n = q.Window.SizeHint
		}
	}
	if binSize == 0 && n > 0 {
		binSize = (n + defaultBins - 1) / defaultBins
	}
	return n, binSize
}

// replayTraining replays events unshed through one query's operator,
// feeding the eSPICE model builder plus the per-type frequency counts BL
// derives its quotas from. It returns the measured membership factor (0
// when no events were processed). Train and TrainMulti share it: Train
// runs it once, TrainMulti runs it once per query variant over its own
// builder and merges the builders into one model.
func replayTraining(q queries.Query, events []event.Event, mb *core.ModelBuilder,
	typeCounts []float64, windows *int) (float64, error) {
	op, err := operator.New(operator.Config{
		Window:   q.Window,
		Patterns: q.Patterns,
		OnWindowClose: func(w *window.Window, matched []window.Entry) {
			mb.ObserveWindow(w, matched)
			if w.Size() == 0 {
				return
			}
			*windows++
			for _, ent := range w.Kept {
				if ent.Ev.Type >= 0 && int(ent.Ev.Type) < len(typeCounts) {
					typeCounts[ent.Ev.Type]++
				}
			}
		},
	})
	if err != nil {
		return 0, err
	}
	if _, err := sim.ReplayUnshed(events, op); err != nil {
		return 0, err
	}
	st := op.Stats()
	if st.EventsProcessed == 0 {
		return 0, nil
	}
	return float64(st.Memberships) / float64(st.EventsProcessed), nil
}

// finishTraining normalizes the frequency counts and assembles the
// TrainResult from a fully fed builder.
func finishTraining(mb *core.ModelBuilder, typeCounts []float64, windows int,
	factor float64) (*TrainResult, error) {
	model, err := mb.Build()
	if err != nil {
		return nil, err
	}
	if windows > 0 {
		for t := range typeCounts {
			typeCounts[t] /= float64(windows)
		}
	}
	return &TrainResult{
		Model:            model,
		TypeFreq:         typeCounts,
		MembershipFactor: factor,
		Windows:          mb.WindowsSeen(),
		Matches:          mb.MatchesSeen(),
	}, nil
}

// Train replays events unshed through the query's operator, feeding the
// eSPICE model builder and collecting the statistics both shedders need.
// binSize and n configure the utility table (0 = defaults: n from the
// window spec or the average observed size).
func Train(q queries.Query, events []event.Event, binSize, n int) (*TrainResult, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("harness: no training events")
	}
	n, binSize = tableDims(q, n, binSize)
	mb, err := core.NewModelBuilder(core.ModelBuilderConfig{
		Types:   q.NumTypes,
		N:       n,
		BinSize: binSize,
	})
	if err != nil {
		return nil, err
	}
	typeCounts := make([]float64, q.NumTypes)
	windows := 0
	factor, err := replayTraining(q, events, mb, typeCounts, &windows)
	if err != nil {
		return nil, err
	}
	if factor == 0 {
		factor = 1
	}
	return finishTraining(mb, typeCounts, windows, factor)
}

// RunConfig parameterizes one quality experiment.
type RunConfig struct {
	Query queries.Query
	// Train and Eval are disjoint stream segments (typically a 50/50
	// split of a generated dataset).
	Train []event.Event
	Eval  []event.Event
	// OverloadFactor is R/th: 1.2 for the paper's R1, 1.4 for R2.
	OverloadFactor float64
	// Throughput th in events/second (default 1000).
	Throughput float64
	// LatencyBound LB (default 1s) and trigger fraction F (default 0.8).
	LatencyBound event.Time
	F            float64
	// BinSize and N configure the utility table (0 = defaults).
	BinSize int
	N       int
	// Seed drives the randomized shedders (BL, random).
	Seed int64
	// RecordLatency enables the latency trace (Figure 7).
	RecordLatency bool
}

func (c *RunConfig) applyDefaults() {
	if c.Throughput == 0 {
		c.Throughput = 1000
	}
	if c.LatencyBound == 0 {
		c.LatencyBound = event.Second
	}
	if c.F == 0 {
		c.F = 0.8
	}
	if c.OverloadFactor == 0 {
		c.OverloadFactor = 1.2
	}
}

// RunResult is the outcome of one experiment run.
type RunResult struct {
	Quality  metrics.Quality
	Latency  metrics.LatencyTrace
	MaxQueue int
	// ShedFraction is the fraction of memberships dropped.
	ShedFraction float64
	// Train echoes the training statistics used.
	Train *TrainResult
}

// TrainMulti trains one shared model across several query variants
// (e.g. the same pattern over different window sizes — the mixed-size
// training of the variable-window experiment, Section 3.6). Every
// variant replays the full training stream into its own builder; the
// per-variant builders are then merged (core.ModelBuilder.Merge — the
// same mechanism the online lifecycle uses to combine per-shard
// statistics), which is numerically identical to feeding one shared
// builder.
func TrainMulti(qs []queries.Query, events []event.Event, binSize, n int) (*TrainResult, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("harness: TrainMulti needs at least one query")
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("harness: no training events")
	}
	n, binSize = tableDims(qs[0], n, binSize)
	bcfg := core.ModelBuilderConfig{
		Types:   qs[0].NumTypes,
		N:       n,
		BinSize: binSize,
	}
	merged, err := core.NewModelBuilder(bcfg)
	if err != nil {
		return nil, err
	}
	typeCounts := make([]float64, qs[0].NumTypes)
	windows := 0
	factorSum := 0.0
	for _, q := range qs {
		mb, err := core.NewModelBuilder(bcfg)
		if err != nil {
			return nil, err
		}
		factor, err := replayTraining(q, events, mb, typeCounts, &windows)
		if err != nil {
			return nil, err
		}
		factorSum += factor
		if err := merged.Merge(mb); err != nil {
			return nil, err
		}
	}
	return finishTraining(merged, typeCounts, windows, factorSum/float64(len(qs)))
}

// RunExperiment executes the full pipeline for one shedder kind.
func RunExperiment(cfg RunConfig, kind ShedderKind) (*RunResult, error) {
	cfg.applyDefaults()
	tr, err := Train(cfg.Query, cfg.Train, cfg.BinSize, cfg.N)
	if err != nil {
		return nil, fmt.Errorf("harness: training: %w", err)
	}
	return EvalWithModel(cfg, tr, kind)
}

// EvalWithModel runs the ground-truth pass and the overloaded shedding
// pass for a pre-trained model (cfg.Train and cfg.BinSize are unused).
func EvalWithModel(cfg RunConfig, tr *TrainResult, kind ShedderKind) (*RunResult, error) {
	cfg.applyDefaults()
	if len(cfg.Eval) == 0 {
		return nil, fmt.Errorf("harness: no evaluation events")
	}
	if tr == nil || tr.Model == nil {
		return nil, fmt.Errorf("harness: EvalWithModel needs a training result")
	}
	if kind == ShedESPICE && !tr.Model.Trained() {
		return nil, fmt.Errorf("harness: query %s produced no matches during training", cfg.Query.Name)
	}

	// Ground truth: the evaluation segment processed without shedding.
	truthOp, err := operator.New(operator.Config{Window: cfg.Query.Window, Patterns: cfg.Query.Patterns})
	if err != nil {
		return nil, err
	}
	truth, err := sim.ReplayUnshed(cfg.Eval, truthOp)
	if err != nil {
		return nil, err
	}
	// Calibrate the simulator's service-time model on the evaluation
	// stream itself: the membership factor defines what "throughput th"
	// means for this workload (events/s at this window overlap), so using
	// the eval-segment overlap keeps the configured overload factor
	// exact. This is hardware calibration, not model training — no
	// knowledge leaks into the shedder.
	evalFactor := tr.MembershipFactor
	if ts := truthOp.Stats(); ts.EventsProcessed > 0 {
		evalFactor = float64(ts.Memberships) / float64(ts.EventsProcessed)
	}

	// Overloaded run with the shedder under test.
	var (
		decider operator.Decider
		ctrl    sim.Controller
	)
	switch kind {
	case ShedNone:
		// no shedder, no detector
	case ShedESPICE:
		s, err := core.NewShedder(tr.Model)
		if err != nil {
			return nil, err
		}
		decider, ctrl = s, ESPICEController{S: s}
	case ShedBL:
		bl, err := baseline.NewBL(baseline.BLConfig{
			Types:   cfg.Query.NumTypes,
			Weights: cfg.Query.MergedTypeWeights(),
			Freq:    tr.TypeFreq,
			Seed:    cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		decider, ctrl = bl, BLController{B: bl}
	case ShedRandom:
		r := baseline.NewRandom(cfg.Seed)
		decider, ctrl = r, RandomController{R: r}
	default:
		return nil, fmt.Errorf("harness: unknown shedder kind %d", kind)
	}

	evalOp, err := operator.New(operator.Config{
		Window:   cfg.Query.Window,
		Patterns: cfg.Query.Patterns,
		Shedder:  decider,
	})
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{
		Rate:             cfg.OverloadFactor * cfg.Throughput,
		Throughput:       cfg.Throughput,
		MembershipFactor: evalFactor,
		RecordLatency:    cfg.RecordLatency,
	}
	if kind != ShedNone {
		det, err := core.NewOverloadDetector(core.DetectorConfig{
			LatencyBound: cfg.LatencyBound,
			F:            cfg.F,
		})
		if err != nil {
			return nil, err
		}
		simCfg.Detector = det
	}
	res, err := sim.Run(simCfg, cfg.Eval, evalOp, ctrl)
	if err != nil {
		return nil, err
	}

	st := evalOp.Stats()
	out := &RunResult{
		Quality:  metrics.CompareQuality(truth, res.Complex),
		Latency:  res.Latency,
		MaxQueue: res.MaxQueue,
		Train:    tr,
	}
	if st.Memberships > 0 {
		out.ShedFraction = float64(st.MembershipsShed) / float64(st.Memberships)
	}
	return out, nil
}
