package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// TB is the subset of testing.TB the leak checker needs; taking the
// interface keeps this production file free of a testing import.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// VerifyNoLeaks registers a cleanup that fails the test when goroutines
// started during the test outlive it. Call it first thing in a test
// (before any shutdown is registered with Cleanup, so the check runs
// last); every pipeline, engine and transport test should, so a missing
// CloseInput/Close/drain surfaces as a test failure instead of a silent
// goroutine leak.
//
// The checker snapshots the live goroutine ids at call time and, at
// cleanup, waits (with backoff, up to about two seconds) for every
// goroutine not in the snapshot to exit. Runtime-internal and testing
// goroutines are ignored; anything else still alive is reported with
// its stack.
func VerifyNoLeaks(t TB) {
	t.Helper()
	before := goroutineIDs()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var leaked []goroutineStack
		for {
			leaked = leaked[:0]
			for _, g := range goroutineStacks() {
				if _, existed := before[g.id]; existed || g.ignorable() {
					continue
				}
				leaked = append(leaked, g)
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		sort.Slice(leaked, func(i, j int) bool { return leaked[i].id < leaked[j].id })
		var sb strings.Builder
		for _, g := range leaked {
			fmt.Fprintf(&sb, "\n%s", g.dump)
		}
		t.Errorf("harness: %d goroutine(s) leaked by this test:%s", len(leaked), sb.String())
	})
}

// goroutineStack is one parsed entry of a full runtime.Stack dump.
type goroutineStack struct {
	id   uint64
	dump string // full entry, header included
}

// ignorable reports whether the goroutine belongs to the runtime or
// the testing framework rather than to code under test.
func (g goroutineStack) ignorable() bool {
	for _, marker := range []string{
		"testing.(*T).Run",
		"testing.(*M).",
		"testing.runTests",
		"testing.tRunner",
		"runtime.goexit0",
		"runtime/trace",
		"os/signal.signal_recv",
		"created by runtime",
		"runtime.MutexProfile",
		"runtime.gc",
	} {
		if strings.Contains(g.dump, marker) {
			return true
		}
	}
	return false
}

// goroutineStacks captures and parses the full goroutine dump.
func goroutineStacks() []goroutineStack {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutineStack
	for _, entry := range strings.Split(string(buf), "\n\n") {
		if !strings.HasPrefix(entry, "goroutine ") {
			continue
		}
		rest := entry[len("goroutine "):]
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			continue
		}
		id, err := strconv.ParseUint(rest[:sp], 10, 64)
		if err != nil {
			continue
		}
		out = append(out, goroutineStack{id: id, dump: entry})
	}
	return out
}

// goroutineIDs returns the set of currently live goroutine ids.
func goroutineIDs() map[uint64]struct{} {
	ids := make(map[uint64]struct{})
	for _, g := range goroutineStacks() {
		ids[g.id] = struct{}{}
	}
	return ids
}
