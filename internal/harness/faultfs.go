package harness

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/wal"
)

// ErrInjectedSync is the error FaultFS injects on a scheduled fsync
// failure.
var ErrInjectedSync = errors.New("harness: injected fsync failure")

// ErrInjectedWrite is the error FaultFS injects on a scheduled short
// write.
var ErrInjectedWrite = errors.New("harness: injected short write")

// FaultFS wraps a wal.FS and injects storage faults, so unit tests can
// drive the group-commit error paths of the write-ahead log without a
// real failing disk: fail the Nth fsync, stall an fsync until released,
// or cut a write short. The durability contract under test is that an
// ack is never sent for a frame whose sync failed — see the wal and
// transport fault tests.
//
// The zero value is not usable; wrap a base filesystem with NewFaultFS.
// Counters and fault schedules are safe for concurrent use.
type FaultFS struct {
	base wal.FS

	// syncs counts Sync calls across all files (1-based in FailSyncAt /
	// StallSyncAt terms: the first Sync is call 1).
	syncs  atomic.Uint64
	writes atomic.Uint64

	mu        sync.Mutex
	failSync  map[uint64]bool // sync call numbers to fail
	stallSync map[uint64]bool // sync call numbers to stall
	shortAt   map[uint64]int  // write call number -> bytes actually written
	stalled   chan struct{}   // closed by ReleaseStalls
}

// NewFaultFS wraps base (OSFS semantics when nil is not allowed — pass
// wal.OSFS{} for a real directory or an in-memory FS from the tests).
func NewFaultFS(base wal.FS) *FaultFS {
	return &FaultFS{
		base:      base,
		failSync:  make(map[uint64]bool),
		stallSync: make(map[uint64]bool),
		shortAt:   make(map[uint64]int),
		stalled:   make(chan struct{}),
	}
}

// FailSyncAt schedules the n-th Sync call (1-based, counted across all
// files) to return ErrInjectedSync without syncing.
func (f *FaultFS) FailSyncAt(n uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSync[n] = true
}

// StallSyncAt schedules the n-th Sync call to block until
// ReleaseStalls, then proceed normally. Use it to hold a group-commit
// leader mid-flight while more appends pile up behind it.
func (f *FaultFS) StallSyncAt(n uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stallSync[n] = true
}

// ShortWriteAt schedules the n-th Write call (1-based, counted across
// all files) to write only the first keep bytes to the underlying file
// and return ErrInjectedWrite.
func (f *FaultFS) ShortWriteAt(n uint64, keep int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortAt[n] = keep
}

// ReleaseStalls unblocks every stalled Sync (current and future).
func (f *FaultFS) ReleaseStalls() {
	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case <-f.stalled:
	default:
		close(f.stalled)
	}
}

// Syncs returns the number of Sync calls observed so far.
func (f *FaultFS) Syncs() uint64 { return f.syncs.Load() }

// Writes returns the number of Write calls observed so far.
func (f *FaultFS) Writes() uint64 { return f.writes.Load() }

// MkdirAll implements wal.FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.base.MkdirAll(dir) }

// ReadDir implements wal.FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.base.ReadDir(dir) }

// ReadFile implements wal.FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.base.ReadFile(name) }

// Rename implements wal.FS.
func (f *FaultFS) Rename(oldname, newname string) error { return f.base.Rename(oldname, newname) }

// Remove implements wal.FS.
func (f *FaultFS) Remove(name string) error { return f.base.Remove(name) }

// Create implements wal.FS, wrapping the file so its Write/Sync calls
// hit the fault schedule.
func (f *FaultFS) Create(name string) (wal.File, error) {
	file, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, file: file}, nil
}

type faultFile struct {
	fs   *FaultFS
	file wal.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	n := ff.fs.writes.Add(1)
	ff.fs.mu.Lock()
	keep, short := ff.fs.shortAt[n]
	ff.fs.mu.Unlock()
	if short {
		if keep > len(p) {
			keep = len(p)
		}
		wrote, err := ff.file.Write(p[:keep])
		if err != nil {
			return wrote, err
		}
		return wrote, ErrInjectedWrite
	}
	return ff.file.Write(p)
}

func (ff *faultFile) Sync() error {
	n := ff.fs.syncs.Add(1)
	ff.fs.mu.Lock()
	fail := ff.fs.failSync[n]
	stall := ff.fs.stallSync[n]
	stalled := ff.fs.stalled
	ff.fs.mu.Unlock()
	if stall {
		<-stalled
	}
	if fail {
		return ErrInjectedSync
	}
	return ff.file.Sync()
}

func (ff *faultFile) Close() error { return ff.file.Close() }
