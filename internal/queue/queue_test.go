package queue

import (
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func ev(seq uint64) event.Event { return event.Event{Seq: seq} }

func TestZeroValueUsable(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatalf("Len() = %d", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue should fail")
	}
	q.Push(ev(1))
	if got, ok := q.Pop(); !ok || got.Seq != 1 {
		t.Fatalf("Pop = %v,%v", got, ok)
	}
}

func TestFIFOOrder(t *testing.T) {
	q := New(4)
	const n = 100
	for i := uint64(0); i < n; i++ {
		q.Push(ev(i))
	}
	if q.Len() != n {
		t.Fatalf("Len() = %d, want %d", q.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		got, ok := q.Pop()
		if !ok || got.Seq != i {
			t.Fatalf("Pop #%d = %v,%v", i, got, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be drained")
	}
}

func TestInterleavedWrapAround(t *testing.T) {
	q := New(4)
	next := uint64(0)
	expect := uint64(0)
	// Repeatedly push 3, pop 2, forcing head to wrap many times.
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			q.Push(ev(next))
			next++
		}
		for i := 0; i < 2; i++ {
			got, ok := q.Pop()
			if !ok || got.Seq != expect {
				t.Fatalf("round %d: Pop = %v,%v want seq %d", round, got, ok, expect)
			}
			expect++
		}
	}
	// Drain the remainder.
	for {
		got, ok := q.Pop()
		if !ok {
			break
		}
		if got.Seq != expect {
			t.Fatalf("drain: got %d want %d", got.Seq, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d events, pushed %d", expect, next)
	}
}

func TestPeek(t *testing.T) {
	q := New(0)
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty should fail")
	}
	q.Push(ev(5))
	q.Push(ev(6))
	if got, ok := q.Peek(); !ok || got.Seq != 5 {
		t.Fatalf("Peek = %v,%v", got, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek must not remove: Len() = %d", q.Len())
	}
}

func TestMetrics(t *testing.T) {
	q := New(2)
	for i := uint64(0); i < 10; i++ {
		q.Push(ev(i))
	}
	for i := 0; i < 4; i++ {
		q.Pop()
	}
	if q.MaxSeen() != 10 {
		t.Errorf("MaxSeen() = %d, want 10", q.MaxSeen())
	}
	if q.Enqueued() != 10 || q.Dequeued() != 4 {
		t.Errorf("Enqueued/Dequeued = %d/%d", q.Enqueued(), q.Dequeued())
	}
	if q.Len() != 6 {
		t.Errorf("Len() = %d, want 6", q.Len())
	}
}

func TestReset(t *testing.T) {
	q := New(2)
	for i := uint64(0); i < 5; i++ {
		q.Push(ev(i))
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len() after Reset = %d", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop after Reset should fail")
	}
	q.Push(ev(42))
	if got, _ := q.Pop(); got.Seq != 42 {
		t.Fatalf("got %d", got.Seq)
	}
}

// Property: for any interleaving of pushes and pops, the queue delivers
// exactly the pushed sequence in order (conservation + FIFO).
func TestQueueConservationProperty(t *testing.T) {
	f := func(ops []bool) bool {
		var q Queue
		var pushed, popped uint64
		for _, isPush := range ops {
			if isPush {
				q.Push(ev(pushed))
				pushed++
			} else if got, ok := q.Pop(); ok {
				if got.Seq != popped {
					return false
				}
				popped++
			}
		}
		// Drain and verify the tail.
		for {
			got, ok := q.Pop()
			if !ok {
				break
			}
			if got.Seq != popped {
				return false
			}
			popped++
		}
		return popped == pushed && q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New(1024)
	e := ev(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(e)
		q.Pop()
	}
}
