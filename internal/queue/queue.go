// Package queue provides the operator input queue of the eSPICE
// architecture (Figure 1 of the paper): a FIFO ring buffer of primitive
// events with occupancy metrics.
//
// The overload detector bases its decisions on the queue size relative to
// qmax = LB / l(p); the queue therefore tracks its current length and the
// high-water mark. The implementation is a growable ring buffer so that
// steady-state operation performs no allocation.
package queue

import "repro/internal/event"

const minCapacity = 16

// Queue is a FIFO of events. The zero value is an empty, usable queue.
// Queue is not safe for concurrent use; the live runtime wraps it in its
// own synchronization (see internal/runtime).
type Queue struct {
	buf      []event.Event
	head     int // index of the oldest element
	length   int
	maxSeen  int    // high-water mark of length
	enqueued uint64 // total number of Push calls
	dequeued uint64 // total number of successful Pop calls
}

// New returns a queue with at least the given initial capacity.
func New(capacity int) *Queue {
	if capacity < minCapacity {
		capacity = minCapacity
	}
	return &Queue{buf: make([]event.Event, capacity)}
}

// Len reports the number of queued events. This is the qsize input of the
// overload detector.
func (q *Queue) Len() int { return q.length }

// MaxSeen reports the queue-length high-water mark, used by tests and the
// latency experiment to verify the latency bound was never at risk.
func (q *Queue) MaxSeen() int { return q.maxSeen }

// Enqueued reports the total number of events ever pushed.
func (q *Queue) Enqueued() uint64 { return q.enqueued }

// Dequeued reports the total number of events ever popped.
func (q *Queue) Dequeued() uint64 { return q.dequeued }

// Push appends an event to the tail of the queue, growing the buffer if
// necessary.
func (q *Queue) Push(e event.Event) {
	if q.buf == nil {
		q.buf = make([]event.Event, minCapacity)
	}
	if q.length == len(q.buf) {
		q.grow()
	}
	tail := q.head + q.length
	if tail >= len(q.buf) {
		tail -= len(q.buf)
	}
	q.buf[tail] = e
	q.length++
	q.enqueued++
	if q.length > q.maxSeen {
		q.maxSeen = q.length
	}
}

// Pop removes and returns the oldest event. The second return value is
// false if the queue is empty.
func (q *Queue) Pop() (event.Event, bool) {
	if q.length == 0 {
		return event.Event{}, false
	}
	e := q.buf[q.head]
	q.buf[q.head] = event.Event{} // release Vals for GC
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.length--
	q.dequeued++
	return e, true
}

// Peek returns the oldest event without removing it.
func (q *Queue) Peek() (event.Event, bool) {
	if q.length == 0 {
		return event.Event{}, false
	}
	return q.buf[q.head], true
}

// Reset empties the queue but keeps the allocated buffer and counters.
func (q *Queue) Reset() {
	for i := range q.buf {
		q.buf[i] = event.Event{}
	}
	q.head = 0
	q.length = 0
}

func (q *Queue) grow() {
	next := make([]event.Event, 2*len(q.buf))
	n := copy(next, q.buf[q.head:])
	copy(next[n:], q.buf[:q.head])
	q.buf = next
	q.head = 0
}
