package event

import (
	"fmt"
	"sort"
	"sync"
)

// Registry interns event type names to dense Type ids. It is safe for
// concurrent use: dataset generators register types up front, while the
// live runtime may look names up from multiple goroutines.
//
// The zero value is ready to use.
type Registry struct {
	mu    sync.RWMutex
	ids   map[string]Type
	names []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register interns name and returns its Type id. Registering the same name
// twice returns the same id.
func (r *Registry) Register(name string) Type {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ids == nil {
		r.ids = make(map[string]Type)
	}
	if id, ok := r.ids[name]; ok {
		return id
	}
	id := Type(len(r.names))
	r.ids[name] = id
	r.names = append(r.names, name)
	return id
}

// RegisterAll interns every name and returns the ids in matching order.
func (r *Registry) RegisterAll(names ...string) []Type {
	ids := make([]Type, len(names))
	for i, n := range names {
		ids[i] = r.Register(n)
	}
	return ids
}

// Lookup returns the id for name, if registered.
func (r *Registry) Lookup(name string) (Type, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.ids[name]
	return id, ok
}

// Name returns the name of id. Unknown ids render as "type(<n>)".
func (r *Registry) Name(id Type) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id < 0 || int(id) >= len(r.names) {
		return fmt.Sprintf("type(%d)", id)
	}
	return r.names[id]
}

// Len reports the number of registered types. This is the M dimension of
// the eSPICE utility table.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// Names returns all registered names sorted by their Type id.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// SortedNames returns all registered names in lexicographic order; useful
// for stable debug output.
func (r *Registry) SortedNames() []string {
	names := r.Names()
	sort.Strings(names)
	return names
}
