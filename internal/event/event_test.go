package event

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestTimeSeconds(t *testing.T) {
	tests := []struct {
		name string
		in   Time
		want float64
	}{
		{"zero", 0, 0},
		{"one second", Second, 1},
		{"one minute", Minute, 60},
		{"millis", 250 * Millisecond, 0.25},
		{"micros", 5 * Microsecond, 0.000005},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.in.Seconds(); got != tt.want {
				t.Errorf("Seconds() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTimeString(t *testing.T) {
	if got := (2 * Second).String(); got != "2.000000s" {
		t.Errorf("String() = %q", got)
	}
}

func TestEventVal(t *testing.T) {
	e := Event{Vals: []float64{1.5, -2}}
	tests := []struct {
		name string
		idx  int
		want float64
	}{
		{"first", 0, 1.5},
		{"second", 1, -2},
		{"out of range", 2, 0},
		{"negative", -1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := e.Val(tt.idx); got != tt.want {
				t.Errorf("Val(%d) = %v, want %v", tt.idx, got, tt.want)
			}
		})
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 7, Type: 3, Kind: KindRising, TS: Second}
	want := "ev{seq=7 type=3 kind=rising ts=1.000000s}"
	if got := e.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindNone, "none"},
		{KindRising, "rising"},
		{KindFalling, "falling"},
		{KindPossession, "possession"},
		{KindDefend, "defend"},
		{KindPosition, "position"},
		{Kind(200), "kind(200)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema("price", "change")
	if s.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", s.Len())
	}
	if i, ok := s.Index("change"); !ok || i != 1 {
		t.Errorf("Index(change) = %d,%v", i, ok)
	}
	if _, ok := s.Index("missing"); ok {
		t.Error("Index(missing) should not exist")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "price" {
		t.Errorf("Names() = %v", names)
	}
	// Mutating the returned slice must not affect the schema.
	names[0] = "mutated"
	if got := s.Names()[0]; got != "price" {
		t.Errorf("schema mutated through Names(): %q", got)
	}
}

func TestRegistryRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Register("IBM")
	b := r.Register("AAPL")
	if a == b {
		t.Fatal("distinct names must get distinct ids")
	}
	if again := r.Register("IBM"); again != a {
		t.Errorf("re-registering returned %d, want %d", again, a)
	}
	if r.Len() != 2 {
		t.Errorf("Len() = %d, want 2", r.Len())
	}
}

func TestRegistryLookupAndName(t *testing.T) {
	r := NewRegistry()
	id := r.Register("GOOG")
	if got, ok := r.Lookup("GOOG"); !ok || got != id {
		t.Errorf("Lookup = %d,%v", got, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("Lookup(nope) should fail")
	}
	if got := r.Name(id); got != "GOOG" {
		t.Errorf("Name(%d) = %q", id, got)
	}
	if got := r.Name(Type(99)); got != "type(99)" {
		t.Errorf("Name(99) = %q", got)
	}
	if got := r.Name(NoType); got != "type(-1)" {
		t.Errorf("Name(NoType) = %q", got)
	}
}

func TestRegistryRegisterAll(t *testing.T) {
	r := NewRegistry()
	ids := r.RegisterAll("a", "b", "c")
	if len(ids) != 3 {
		t.Fatalf("got %d ids", len(ids))
	}
	for i, id := range ids {
		if int(id) != i {
			t.Errorf("ids[%d] = %d, want dense ids", i, id)
		}
	}
	names := r.Names()
	if len(names) != 3 || names[2] != "c" {
		t.Errorf("Names() = %v", names)
	}
	sorted := r.SortedNames()
	if sorted[0] != "a" || sorted[2] != "c" {
		t.Errorf("SortedNames() = %v", sorted)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				name := string(rune('a' + i%26))
				id := r.Register(name)
				if got, ok := r.Lookup(name); !ok || got != id {
					t.Errorf("concurrent lookup mismatch for %q", name)
					return
				}
				_ = r.Name(id)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 26 {
		t.Errorf("Len() = %d, want 26", r.Len())
	}
}

// Property: ids are dense 0..n-1 in registration order regardless of the
// names registered.
func TestRegistryDenseIDsProperty(t *testing.T) {
	f := func(names []string) bool {
		r := NewRegistry()
		seen := make(map[string]Type)
		for _, n := range names {
			id := r.Register(n)
			if prev, ok := seen[n]; ok {
				if id != prev {
					return false
				}
				continue
			}
			if int(id) != len(seen) {
				return false
			}
			seen[n] = id
		}
		return r.Len() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseKind(t *testing.T) {
	// Every bundled kind round-trips through its String form.
	for _, k := range []Kind{KindNone, KindRising, KindFalling, KindPossession, KindDefend, KindPosition, Kind(77)} {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	for _, bad := range []string{"", "Rising", "kind(-1)", "kind(256)", "kind(x)", "unknown"} {
		if _, ok := ParseKind(bad); ok {
			t.Errorf("ParseKind(%q) accepted", bad)
		}
	}
}
