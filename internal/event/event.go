// Package event defines the primitive event model used throughout the
// repository: typed, globally ordered events carrying attribute values, as
// described in Section 2 of the eSPICE paper (Slo et al., Middleware '19).
//
// An event consists of meta-data (type, sequence number, timestamp) and
// attribute-value pairs. The sequence number provides the global order of
// the input stream; the timestamp drives time-based windows. Event types are
// interned as small integers via a Registry so that the eSPICE utility table
// can be indexed by (type, position) in O(1).
package event

import (
	"fmt"
	"strconv"
	"strings"
)

// Type identifies an event type (e.g., a stock symbol or a player id).
// Types are small dense integers assigned by a Registry, which makes them
// directly usable as array indices in the utility table.
type Type int32

// NoType is the zero value guard; valid types are >= 0.
const NoType Type = -1

// Time is a virtual timestamp in microseconds since the start of the
// stream. Using an integer virtual clock keeps simulations deterministic
// and avoids the pitfalls of wall-clock time in tests; conversions to and
// from wall-clock durations live at the edges (see internal/runtime).
type Time int64

// Common time unit constants, mirroring time.Duration at microsecond
// resolution.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// Seconds returns the timestamp as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the timestamp as a human-readable duration.
func (t Time) String() string {
	return strconv.FormatFloat(t.Seconds(), 'f', 6, 64) + "s"
}

// Kind discriminates application-level variants of an event that share a
// type, e.g. a rising vs. falling stock quote, or a possession vs. defend
// action of the same player. The CEP pattern predicates (Section 4.1 of the
// paper: "rising or falling stock quotes", "defend event") test Kind and
// attribute values; the eSPICE utility model deliberately sees only the
// type and position (Section 3.2).
type Kind uint8

// Kinds used by the bundled datasets. Applications may define their own.
const (
	KindNone       Kind = iota
	KindRising          // stock quote change > 0
	KindFalling         // stock quote change < 0
	KindPossession      // striker possesses the ball
	KindDefend          // defender within marking distance of a striker
	KindPosition        // plain position update (background traffic)
)

// kindNames is the single name table shared by Kind.String and
// ParseKind, indexed by Kind, so rendering and parsing cannot drift;
// add new bundled kinds here.
var kindNames = [...]string{
	KindNone:       "none",
	KindRising:     "rising",
	KindFalling:    "falling",
	KindPossession: "possession",
	KindDefend:     "defend",
	KindPosition:   "position",
}

// String returns the name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// ParseKind resolves a kind name as rendered by Kind.String back to the
// Kind value. It accepts the bundled kinds (via the shared kindNames
// table) plus the "kind(<n>)" fallback spelling, so any String output
// round-trips; wire codecs (NDJSON ingest) use it to accept kinds by
// name.
func ParseKind(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	if strings.HasPrefix(name, "kind(") && strings.HasSuffix(name, ")") {
		n, err := strconv.Atoi(name[len("kind(") : len(name)-1])
		if err == nil && n >= len(kindNames) && n <= 255 {
			return Kind(n), true
		}
	}
	return KindNone, false
}

// Event is a primitive event in an input event stream.
//
// Vals holds the attribute values; their meaning is given by the stream's
// Schema (attribute name -> index). Events are small value types and are
// passed by value throughout the engine; Vals is the only pointer-shaped
// field and is treated as immutable after creation.
type Event struct {
	Seq  uint64    // global sequence number (dense, starts at 0)
	Type Type      // interned event type
	TS   Time      // virtual timestamp
	Kind Kind      // application-level discriminator
	Vals []float64 // attribute values, indexed per Schema
}

// Val returns the attribute value at index i, or 0 if the event does not
// carry that attribute. Out-of-range access is a data error, not a
// programming error, so it degrades to the zero value rather than
// panicking.
func (e Event) Val(i int) float64 {
	if i < 0 || i >= len(e.Vals) {
		return 0
	}
	return e.Vals[i]
}

// String renders a compact debug representation.
func (e Event) String() string {
	return fmt.Sprintf("ev{seq=%d type=%d kind=%s ts=%s}", e.Seq, e.Type, e.Kind, e.TS)
}

// Schema names the attribute slots of events in a stream.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema builds a schema from an ordered list of attribute names.
func NewSchema(names ...string) *Schema {
	s := &Schema{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		s.index[n] = i
	}
	return s
}

// Index returns the value slot of the named attribute and whether it
// exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Names returns a copy of the attribute names in slot order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Len reports the number of attributes.
func (s *Schema) Len() int { return len(s.names) }
