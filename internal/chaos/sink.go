package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/transport"
)

// Sink wraps a transport.Sink with deterministic delivery faults:
// scheduled panics (thrown into whatever goroutine is delivering — the
// transport handler or the engine fan-out, exactly where a buggy
// downstream would throw them) and seeded delays that stretch the
// sink's critical section. The panics exercise the recover guards on
// the delivery path; the delays exercise backpressure and deadline
// handling above it.
type Sink struct {
	// Inner receives every batch that is not panicked away (required).
	Inner transport.Sink
	// PanicEvery panics on every Nth SubmitBatch call (0 disables). The
	// batch is NOT forwarded: a panicking consumer loses the in-flight
	// delivery, and the layers above decide what that means.
	PanicEvery int
	// MaxDelay/DelayEvery sleep a seeded random duration up to MaxDelay
	// before one in DelayEvery forwards (DelayEvery 0 delays every
	// forward when MaxDelay > 0).
	MaxDelay   time.Duration
	DelayEvery int
	// Seed derives the delay draws.
	Seed int64

	calls  atomic.Uint64
	panics atomic.Uint64

	mu  sync.Mutex
	rng *rand.Rand
}

// SubmitBatch implements transport.Sink.
func (s *Sink) SubmitBatch(events []event.Event) {
	n := s.calls.Add(1)
	if s.PanicEvery > 0 && n%uint64(s.PanicEvery) == 0 {
		s.panics.Add(1)
		panic(fmt.Sprintf("chaos: injected sink panic (call %d)", n))
	}
	if s.MaxDelay > 0 && (s.DelayEvery <= 1 || n%uint64(s.DelayEvery) == 0) {
		s.mu.Lock()
		if s.rng == nil {
			s.rng = rand.New(rand.NewSource(s.Seed))
		}
		d := time.Duration(s.rng.Int63n(int64(s.MaxDelay) + 1))
		s.mu.Unlock()
		time.Sleep(d)
	}
	s.Inner.SubmitBatch(events)
}

// Calls reports SubmitBatch invocations; Panics the injected panics.
func (s *Sink) Calls() uint64  { return s.calls.Load() }
func (s *Sink) Panics() uint64 { return s.panics.Load() }
