package chaos_test

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/transport"
)

// pipeConns builds a connected TCP pair on loopback.
func pipeConns(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { dialed.Close(); r.c.Close() })
	return dialed, r.c
}

// TestConnResetAtOffset pins the byte budget: with min == max the reset
// fires at exactly that offset, deterministically, and the peer sees
// only the budgeted prefix.
func TestConnResetAtOffset(t *testing.T) {
	harness.VerifyNoLeaks(t)
	a, b := pipeConns(t)
	faulty := chaos.Wrap(a, chaos.Config{Seed: 1, MinResetBytes: 100, MaxResetBytes: 100}, 0)

	got := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(b)
		got <- data
	}()
	payload := bytes.Repeat([]byte{0xAB}, 256)
	n, err := faulty.Write(payload)
	if !errors.Is(err, chaos.ErrInjectedReset) {
		t.Fatalf("Write = %d, %v; want ErrInjectedReset", n, err)
	}
	if n != 100 {
		t.Fatalf("wrote %d bytes before the reset, want exactly 100", n)
	}
	if !faulty.WasReset() {
		t.Error("WasReset false after the budget tripped")
	}
	if _, err := faulty.Write([]byte{1}); !errors.Is(err, chaos.ErrInjectedReset) {
		t.Errorf("write after reset = %v, want ErrInjectedReset", err)
	}
	if data := <-got; len(data) != 100 {
		t.Fatalf("peer received %d bytes, want the 100-byte prefix", len(data))
	}
}

// TestConnFragmentsDeterministically pins that MaxChunk splits writes
// into multiple underlying writes, the peer reassembles the identical
// byte stream, and the same seed produces the same fragmentation.
func TestConnFragmentsDeterministically(t *testing.T) {
	harness.VerifyNoLeaks(t)
	run := func(seed int64) ([]byte, int) {
		a, b := pipeConns(t)
		counter := &countingConn{Conn: a}
		faulty := chaos.Wrap(counter, chaos.Config{Seed: seed, MaxChunk: 7}, 3)
		got := make(chan []byte, 1)
		go func() {
			data, _ := io.ReadAll(b)
			got <- data
		}()
		payload := make([]byte, 512)
		for i := range payload {
			payload[i] = byte(i)
		}
		if n, err := faulty.Write(payload); err != nil || n != len(payload) {
			t.Fatalf("Write = %d, %v", n, err)
		}
		faulty.Close()
		return <-got, counter.writes()
	}
	data1, writes1 := run(42)
	data2, writes2 := run(42)
	if len(data1) != 512 || !bytes.Equal(data1, data2) {
		t.Fatalf("fragmented stream corrupt or non-deterministic: %d vs %d bytes", len(data1), len(data2))
	}
	if writes1 < 512/7 {
		t.Errorf("only %d underlying writes for 512 bytes at MaxChunk 7", writes1)
	}
	if writes1 != writes2 {
		t.Errorf("same seed fragmented differently: %d vs %d writes", writes1, writes2)
	}
}

// countingConn counts underlying Write calls.
type countingConn struct {
	net.Conn
	mu sync.Mutex
	n  int
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.Conn.Write(p)
}

func (c *countingConn) writes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// TestProxyResetsAndRelays runs a real transport client/server pair
// through the proxy: small reset budgets sever connections mid-stream,
// the client redials through the proxy, and the durable session keeps
// the delivery effectively-once in spite of it.
func TestProxyResetsAndRelays(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sink := &memorySink{}
	srv, err := transport.NewServer(transport.ServerConfig{Sink: sink, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}

	proxy, err := chaos.NewProxy(srv.Addr().String(), chaos.Config{
		Seed:          7,
		MinResetBytes: 2_000,
		MaxResetBytes: 20_000,
		MaxChunk:      128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c, err := transport.Dial(transport.ClientConfig{
		Addr:        proxy.Addr(),
		BatchEvents: 32,
		Session:     5,
		Reconnect:   true,
		MaxRedials:  50,
		MaxBackoff:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 4096
	events := make([]event.Event, total)
	for i := range events {
		events[i] = event.Event{Seq: uint64(i + 1), TS: event.Time(i), Type: 0}
	}
	if err := c.SubmitBatch(events); err != nil {
		t.Fatal(err)
	}
	cs, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Sent != total || cs.Accepted != total {
		t.Fatalf("client ledger %+v, want Sent == Accepted == %d", cs, total)
	}
	ps := proxy.Stats()
	if ps.Resets == 0 {
		t.Fatalf("no resets injected (%+v); the soak is vacuous", ps)
	}
	if cs.Redials == 0 {
		t.Errorf("client never redialed under %d resets", ps.Resets)
	}
	// Effectively-once through the chaos: every event exactly once.
	seen := sink.seqs()
	if len(seen) != total {
		t.Fatalf("sink received %d events, want %d exactly-once", len(seen), total)
	}
	for i, seq := range seen {
		if seq != uint64(i+1) {
			t.Fatalf("sink event %d has seq %d (duplicate or loss)", i, seq)
		}
	}
}

// memorySink collects delivered event sequences.
type memorySink struct {
	mu   sync.Mutex
	seqL []uint64
}

func (m *memorySink) SubmitBatch(events []event.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range events {
		m.seqL = append(m.seqL, events[i].Seq)
	}
}

func (m *memorySink) seqs() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]uint64(nil), m.seqL...)
}

// TestSinkPanicContainedByServer injects sink panics under a live
// transport server: the per-connection recover guard must absorb them
// (PanicsRecovered counts), the process survives, and later healthy
// batches still flow.
func TestSinkPanicContainedByServer(t *testing.T) {
	harness.VerifyNoLeaks(t)
	inner := &memorySink{}
	faulty := &chaos.Sink{Inner: inner, PanicEvery: 2}
	srv, err := transport.NewServer(transport.ServerConfig{Sink: faulty})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}

	events := make([]event.Event, 8)
	for i := range events {
		events[i] = event.Event{Seq: uint64(i + 1), TS: event.Time(i), Type: 0}
	}
	// First connection: its second batch panics the sink; the server
	// drops the connection but must not die.
	c1, err := transport.Dial(transport.ClientConfig{Addr: srv.Addr().String(), BatchEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	_ = c1.SubmitBatch(events)
	_, _ = c1.Close() // the panicked connection may error; survival is the contract

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().PanicsRecovered == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sink panic not recovered: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// Second connection on the same server: healthy traffic still flows
	// (PanicEvery 2 with calls at 3 and 4 panics call 4; submit one
	// batch, an odd call, which passes).
	c2, err := transport.Dial(transport.ClientConfig{Addr: srv.Addr().String(), BatchEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.SubmitBatch(events[:4]); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(inner.seqs()); got == 0 {
		t.Fatal("no batch survived the panicking sink")
	}
	if faulty.Panics() == 0 {
		t.Fatal("no panic injected; test is vacuous")
	}
}
