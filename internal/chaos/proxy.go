package chaos

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// ProxyStats counts what the proxy did to the traffic.
type ProxyStats struct {
	// Conns counts accepted downstream connections; Resets counts the
	// ones torn down by an injected fault.
	Conns  uint64
	Resets uint64
}

// Proxy is a fault-injecting TCP relay: it listens on loopback,
// forwards every accepted connection to the upstream address, and
// interposes a Conn (with this proxy's Config, salted by the accept
// counter) on the downstream side. Pointing a transport.Client at
// Proxy.Addr instead of the real server subjects the whole session —
// redials included — to deterministic resets, fragmentation and delay
// without touching either endpoint.
type Proxy struct {
	cfg      Config
	upstream string
	ln       net.Listener

	conns  atomic.Uint64
	resets atomic.Uint64

	mu     sync.Mutex
	live   map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy to upstream on an ephemeral loopback port.
func NewProxy(upstream string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, upstream: upstream, ln: ln, live: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients dial instead of the upstream.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the fault counters.
func (p *Proxy) Stats() ProxyStats {
	return ProxyStats{Conns: p.conns.Load(), Resets: p.resets.Load()}
}

// Close stops accepting, severs every live relay and waits for the
// relay goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.live {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// track registers a relay endpoint for Close; it reports false when the
// proxy is already closing (the caller must drop the conn).
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.live[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.live, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		salt := int64(p.conns.Add(1))
		up, err := net.Dial("tcp", p.upstream)
		if err != nil {
			down.Close()
			continue
		}
		faulty := Wrap(down, p.cfg, salt)
		if !p.track(faulty) || !p.track(up) {
			down.Close()
			up.Close()
			return
		}
		p.wg.Add(1)
		go p.relay(faulty, up)
	}
}

// relay pumps both directions through the faulty downstream endpoint
// until either side fails, then severs the pair.
func (p *Proxy) relay(down *Conn, up net.Conn) {
	defer p.wg.Done()
	defer p.untrack(down)
	defer p.untrack(up)
	done := make(chan error, 2)
	go func() {
		_, err := io.Copy(up, down) // client -> server
		done <- err
	}()
	go func() {
		_, err := io.Copy(down, up) // server -> client
		done <- err
	}()
	err := <-done
	down.Close()
	up.Close()
	<-done
	if down.WasReset() || errors.Is(err, ErrInjectedReset) {
		p.resets.Add(1)
	}
}
