package chaos

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn with the faults armed in its Config: reads and
// writes count against a seeded byte budget after which the connection
// is reset mid-operation, writes are fragmented, and operations are
// randomly delayed. All faults for one Conn come from a single rand
// stream seeded at Wrap time, so they replay deterministically.
//
// Conn serializes its faulted operations with one mutex: the rand
// stream and byte budget are shared state, and the transports under
// test drive each connection from a single goroutine anyway.
type Conn struct {
	net.Conn
	cfg   Config
	mu    sync.Mutex
	rng   *rand.Rand
	left  int  // bytes until reset; <0 = unlimited
	reset bool // budget spent, conn torn down
	ops   uint64
}

// Wrap arms cfg's faults on conn, drawing from cfg.Seed+salt — pass a
// distinct salt per connection (e.g. an accept counter) so concurrent
// connections fail independently but reproducibly.
func Wrap(conn net.Conn, cfg Config, salt int64) *Conn {
	rng := rand.New(rand.NewSource(cfg.Seed + salt))
	left := cfg.resetBudget(rng)
	if left == 0 {
		left = -1
	}
	return &Conn{Conn: conn, cfg: cfg, rng: rng, left: left}
}

// maybeDelay sleeps a random duration on the armed cadence. Called with
// c.mu held.
func (c *Conn) maybeDelay() {
	if c.cfg.MaxDelay <= 0 {
		return
	}
	c.ops++
	if c.ops%uint64(c.cfg.delayEvery()) != 0 {
		return
	}
	d := time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay) + 1))
	c.mu.Unlock()
	time.Sleep(d)
	c.mu.Lock()
}

// spend debits n bytes from the reset budget; it reports how many of
// them fit, and trips the reset when the budget runs out.
func (c *Conn) spend(n int) (int, bool) {
	if c.left < 0 {
		return n, false
	}
	if n < c.left {
		c.left -= n
		return n, false
	}
	n = c.left
	c.left = 0
	c.reset = true
	return n, true
}

func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.reset {
		c.mu.Unlock()
		return 0, ErrInjectedReset
	}
	c.maybeDelay()
	c.mu.Unlock()
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, tripped := c.spend(n); tripped {
		c.Conn.Close()
		return n, ErrInjectedReset
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wrote := 0
	for wrote < len(p) {
		if c.reset {
			return wrote, ErrInjectedReset
		}
		c.maybeDelay()
		chunk := p[wrote:]
		if c.cfg.MaxChunk > 0 && len(chunk) > 1 {
			max := c.cfg.MaxChunk
			if max > len(chunk) {
				max = len(chunk)
			}
			chunk = chunk[:1+c.rng.Intn(max)]
		}
		allowed, tripped := c.spend(len(chunk))
		n, err := c.Conn.Write(chunk[:allowed])
		wrote += n
		if tripped {
			c.Conn.Close()
			return wrote, ErrInjectedReset
		}
		if err != nil {
			return wrote, err
		}
	}
	return wrote, nil
}

// WasReset reports whether the byte budget tripped and tore the
// connection down.
func (c *Conn) WasReset() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reset
}
