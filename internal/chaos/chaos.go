// Package chaos is the fault-injection half of the robustness story:
// deterministic, seed-driven network and sink faults for soak tests.
// Where harness.FaultFS breaks storage underneath the write-ahead log,
// this package breaks the wire (Conn, Proxy) and the delivery boundary
// (Sink) on top of it — so a single test can run a full ingest
// deployment under simultaneous connection resets, slow and fragmented
// I/O, fsync failures and panicking queries, and assert the process
// survives with its delivery guarantees intact.
//
// Every fault is drawn from a rand.Rand derived from Config.Seed, so a
// failing soak replays byte-for-byte from its seed alone.
package chaos

import (
	"errors"
	"math/rand"
	"time"
)

// ErrInjectedReset is the error a Conn returns once its byte budget is
// spent and the connection has been torn down mid-stream.
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// Config is the fault plan shared by Conn and Proxy. The zero value
// injects nothing; each field arms one fault class.
type Config struct {
	// Seed derives every random draw. Two runs with the same seed and
	// the same connection order inject identical faults.
	Seed int64

	// MinResetBytes/MaxResetBytes, when MaxResetBytes > 0, tear the
	// connection down after a per-connection budget of bytes (counted
	// across reads and writes) drawn uniformly from [min, max]. The
	// teardown closes the underlying conn mid-operation — to the peer it
	// is indistinguishable from a peer crash or a RST.
	MinResetBytes int
	MaxResetBytes int

	// MaxChunk, when > 0, fragments writes: each Write forwards at most
	// a random prefix of up to MaxChunk bytes per underlying write call,
	// exercising every partial-read path in the peer's frame scanner.
	MaxChunk int

	// MaxDelay, when > 0, sleeps a random duration up to MaxDelay
	// before one in DelayEvery operations (default 8 when zero),
	// simulating scheduling stalls and congested links.
	MaxDelay   time.Duration
	DelayEvery int
}

// resetBudget draws one connection's byte budget (0 = never reset).
func (c Config) resetBudget(rng *rand.Rand) int {
	if c.MaxResetBytes <= 0 {
		return 0
	}
	min := c.MinResetBytes
	if min <= 0 {
		min = 1
	}
	if min >= c.MaxResetBytes {
		return c.MaxResetBytes
	}
	return min + rng.Intn(c.MaxResetBytes-min+1)
}

// delayEvery returns the armed delay cadence.
func (c Config) delayEvery() int {
	if c.DelayEvery > 0 {
		return c.DelayEvery
	}
	return 8
}
