package queries

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/event"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/window"
)

func rtlsMeta(t *testing.T) (*datasets.RTLSMeta, []event.Event) {
	t.Helper()
	meta, evs, err := datasets.GenerateRTLS(datasets.RTLSConfig{DurationSec: 600, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return meta, evs
}

func nyseMeta(t *testing.T, minutes int) (*datasets.NYSEMeta, []event.Event) {
	t.Helper()
	cfg := datasets.NYSEConfig{Minutes: minutes, Seed: 1, InfluenceProb: 0.95}
	cfg.HotSymbols = Q4HotSymbolIDs(datasets.NYSEConfig{Leaders: 5})
	cfg.HotQuotesPerMinute = 10
	meta, evs, err := datasets.GenerateNYSE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return meta, evs
}

func runQuery(t *testing.T, q Query, evs []event.Event) []operator.ComplexEvent {
	t.Helper()
	op, err := operator.New(operator.Config{Window: q.Window, Patterns: q.Patterns})
	if err != nil {
		t.Fatal(err)
	}
	var out []operator.ComplexEvent
	for _, e := range evs {
		out = append(out, op.Process(e)...)
	}
	out = append(out, op.Flush(evs[len(evs)-1].TS)...)
	return out
}

func TestQ1Validation(t *testing.T) {
	meta, _ := rtlsMeta(t)
	if _, err := Q1(nil, 3, pattern.SelectFirst, 15); err == nil {
		t.Error("nil meta must fail")
	}
	if _, err := Q1(meta, 0, pattern.SelectFirst, 15); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := Q1(meta, 99, pattern.SelectFirst, 15); err == nil {
		t.Error("n too large must fail")
	}
	if _, err := Q1(meta, 3, pattern.SelectFirst, 0); err == nil {
		t.Error("windowSec=0 must fail")
	}
}

func TestQ1DetectsManMarking(t *testing.T) {
	meta, evs := rtlsMeta(t)
	for _, policy := range []pattern.SelectionPolicy{pattern.SelectFirst, pattern.SelectLast} {
		q, err := Q1(meta, 3, policy, 15)
		if err != nil {
			t.Fatal(err)
		}
		if q.Window.Mode != window.ModeTime {
			t.Fatal("Q1 must use a time window")
		}
		detected := runQuery(t, q, evs)
		// Possessions happen roughly every 22s over 600s for 2 strikers:
		// expect a healthy number of complex events.
		if len(detected) < 20 {
			t.Errorf("policy %v: detected %d complex events, want >= 20", policy, len(detected))
		}
		// Constituents: 1 possession + 3 defends.
		for _, c := range detected[:5] {
			if len(c.Constituents) != 4 {
				t.Fatalf("constituents = %d, want 4", len(c.Constituents))
			}
		}
	}
}

func TestQ2DetectsInfluence(t *testing.T) {
	meta, evs := nyseMeta(t, 30)
	q, err := Q2(meta, 10, pattern.SelectFirst, 240)
	if err != nil {
		t.Fatal(err)
	}
	detected := runQuery(t, q, evs)
	// Windows open on every leader quote (5/minute); nearly all should
	// find 10 rising or falling quotes in 240s (~2000 events).
	if len(detected) < 50 {
		t.Errorf("detected %d, want >= 50", len(detected))
	}
	if _, err := Q2(meta, 0, pattern.SelectFirst, 240); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := Q2(nil, 5, pattern.SelectFirst, 240); err == nil {
		t.Error("nil meta must fail")
	}
}

func TestQ3DetectsSequence(t *testing.T) {
	meta, evs := nyseMeta(t, 60)
	q, err := Q3(meta, pattern.SelectFirst, 600)
	if err != nil {
		t.Fatal(err)
	}
	if q.Window.Mode != window.ModeCount {
		t.Fatal("Q3 must use a count window")
	}
	detected := runQuery(t, q, evs)
	// The 20 sequence symbols rise together with the leader w.p.
	// ~0.95^20 ≈ 0.36 per window alignment; with 5 windows/minute over
	// 60 minutes there must be a good number of matches.
	if len(detected) < 10 {
		t.Errorf("detected %d sequence matches, want >= 10", len(detected))
	}
	for _, c := range detected {
		if len(c.Constituents) != 20 {
			t.Fatalf("constituents = %d, want 20", len(c.Constituents))
		}
	}
}

func TestQ3Validation(t *testing.T) {
	meta, _ := nyseMeta(t, 2)
	if _, err := Q3(meta, pattern.SelectFirst, 10); err == nil {
		t.Error("window smaller than pattern must fail")
	}
	if _, err := Q3(nil, pattern.SelectFirst, 300); err == nil {
		t.Error("nil meta must fail")
	}
	small, _, err := datasets.GenerateNYSE(datasets.NYSEConfig{
		Symbols: 30, Leaders: 2, FollowersPerLeader: 10, Minutes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Q3(small, pattern.SelectFirst, 300); err == nil {
		t.Error("too few followers must fail")
	}
}

func TestQ4DetectsRepetition(t *testing.T) {
	meta, evs := nyseMeta(t, 60)
	q, err := Q4(meta, pattern.SelectFirst, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if q.Window.Slide != 100 {
		t.Fatal("Q4 must slide by 100 events")
	}
	detected := runQuery(t, q, evs)
	if len(detected) < 5 {
		t.Errorf("detected %d repetition matches, want >= 5", len(detected))
	}
	for _, c := range detected {
		if len(c.Constituents) != 14 {
			t.Fatalf("constituents = %d, want 14", len(c.Constituents))
		}
	}
}

func TestQ4Validation(t *testing.T) {
	meta, _ := nyseMeta(t, 2)
	if _, err := Q4(meta, pattern.SelectFirst, 5); err == nil {
		t.Error("window smaller than pattern must fail")
	}
	if _, err := Q4(nil, pattern.SelectFirst, 300); err == nil {
		t.Error("nil meta must fail")
	}
}

func TestQ4HotSymbolIDs(t *testing.T) {
	ids := Q4HotSymbolIDs(datasets.NYSEConfig{Leaders: 5})
	if len(ids) != 10 || ids[0] != 25 || ids[9] != 34 {
		t.Errorf("hot ids = %v", ids)
	}
}

func TestMergedTypeWeights(t *testing.T) {
	meta, _ := nyseMeta(t, 2)
	q, err := Q3(meta, pattern.SelectFirst, 300)
	if err != nil {
		t.Fatal(err)
	}
	w := q.MergedTypeWeights()
	symbols, _ := Q3Symbols(meta)
	for _, s := range symbols {
		if w.PerType[s] != 1 {
			t.Errorf("weight[%d] = %v, want 1", s, w.PerType[s])
		}
	}
	q2, err := Q2(meta, 7, pattern.SelectFirst, 240)
	if err != nil {
		t.Fatal(err)
	}
	w2 := q2.MergedTypeWeights()
	if w2.Wildcard != 7 {
		t.Errorf("wildcard = %v, want 7", w2.Wildcard)
	}
}
