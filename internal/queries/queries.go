// Package queries constructs the four evaluation queries of the eSPICE
// paper (Section 4.1) over the bundled synthetic datasets:
//
//	Q1  seq(STR; any(n, DF1..DFm))        RTLS, time-based window
//	Q2  seq(MLE; any(n, RE*/FE*))         NYSE, time-based window
//	Q3  seq(RE1; RE2; ...; RE20)          NYSE, count-based window
//	Q4  seq with repetition (14 steps)    NYSE, count windows, slide 100
//
// All queries use skip-till-next/any-match semantics and can be built
// with either the first or last selection policy.
package queries

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/window"
)

// Query bundles everything the operator and the harness need to run one
// of the evaluation queries.
type Query struct {
	Name     string
	Window   window.Spec
	Patterns []*pattern.Compiled
	// NumTypes is M, the registry size of the underlying dataset.
	NumTypes int
}

// typeSet returns a membership set for a type slice.
func typeSet(types []event.Type) map[event.Type]struct{} {
	s := make(map[event.Type]struct{}, len(types))
	for _, t := range types {
		s[t] = struct{}{}
	}
	return s
}

func isRising(e event.Event) bool  { return e.Kind == event.KindRising }
func isFalling(e event.Event) bool { return e.Kind == event.KindFalling }

// Q1 builds the soccer man-marking query: a complex event fires when any
// n defenders of the opposing team defend against a striker within
// windowSec seconds of the striker's ball possession. A new time-based
// window opens on every possession event.
func Q1(meta *datasets.RTLSMeta, n int, policy pattern.SelectionPolicy, windowSec int) (Query, error) {
	if meta == nil {
		return Query{}, fmt.Errorf("queries: Q1 needs RTLS metadata")
	}
	if n <= 0 || n > meta.Config.DefendersPerTeam {
		return Query{}, fmt.Errorf("queries: Q1 pattern size n=%d out of range [1,%d]",
			n, meta.Config.DefendersPerTeam)
	}
	if windowSec <= 0 {
		return Query{}, fmt.Errorf("queries: Q1 needs windowSec > 0, got %d", windowSec)
	}
	strikers := typeSet(meta.Strikers())
	var pats []*pattern.Compiled
	for _, striker := range meta.Strikers() {
		striker := striker
		p, err := pattern.Compile(pattern.Pattern{
			Name: fmt.Sprintf("Q1(%s,n=%d,%s)", meta.Registry.Name(striker), n, policy),
			Steps: []pattern.Step{
				{
					Types: []event.Type{striker},
					Pred:  func(e event.Event) bool { return e.Kind == event.KindPossession },
				},
				{
					Types:    meta.OpposingDefenders(striker),
					AnyN:     n,
					Distinct: true,
					Pred:     func(e event.Event) bool { return e.Kind == event.KindDefend },
				},
			},
			Selection: policy,
			Anchored:  true,
		})
		if err != nil {
			return Query{}, err
		}
		pats = append(pats, p)
	}
	return Query{
		Name: fmt.Sprintf("Q1(n=%d,%s)", n, policy),
		Window: window.Spec{
			Mode:   window.ModeTime,
			Length: event.Time(windowSec) * event.Second,
			Open: func(e event.Event) bool {
				if e.Kind != event.KindPossession {
					return false
				}
				_, ok := strikers[e.Type]
				return ok
			},
			SizeHint: int(float64(windowSec) * meta.Rate),
		},
		Patterns: pats,
		NumTypes: meta.Registry.Len(),
	}, nil
}

// Q2 builds the stock influence query (adopted from SPECTRE): a complex
// event fires when any n rising (or any n falling) quotes of any symbols
// follow a rising (falling) quote of a leading symbol within windowSec
// seconds. A new time-based window opens on every leading-symbol quote.
func Q2(meta *datasets.NYSEMeta, n int, policy pattern.SelectionPolicy, windowSec int) (Query, error) {
	if meta == nil {
		return Query{}, fmt.Errorf("queries: Q2 needs NYSE metadata")
	}
	if n <= 0 {
		return Query{}, fmt.Errorf("queries: Q2 needs n > 0, got %d", n)
	}
	if windowSec <= 0 {
		return Query{}, fmt.Errorf("queries: Q2 needs windowSec > 0, got %d", windowSec)
	}
	leaders := typeSet(meta.Leaders)
	mk := func(name string, pred pattern.Predicate) (*pattern.Compiled, error) {
		return pattern.Compile(pattern.Pattern{
			Name: name,
			Steps: []pattern.Step{
				{Types: meta.Leaders, Pred: pred},
				{AnyN: n, Distinct: true, Pred: pred}, // any symbols
			},
			Selection: policy,
			Anchored:  true,
		})
	}
	rising, err := mk(fmt.Sprintf("Q2-rise(n=%d,%s)", n, policy), isRising)
	if err != nil {
		return Query{}, err
	}
	falling, err := mk(fmt.Sprintf("Q2-fall(n=%d,%s)", n, policy), isFalling)
	if err != nil {
		return Query{}, err
	}
	return Query{
		Name: fmt.Sprintf("Q2(n=%d,%s)", n, policy),
		Window: window.Spec{
			Mode:   window.ModeTime,
			Length: event.Time(windowSec) * event.Second,
			Open: func(e event.Event) bool {
				_, ok := leaders[e.Type]
				return ok
			},
			SizeHint: int(float64(windowSec) * meta.Rate),
		},
		Patterns: []*pattern.Compiled{rising, falling},
		NumTypes: meta.Registry.Len(),
	}, nil
}

// Q3Symbols returns the 20 "certain stock symbols" of query Q3: the
// first 20 followers of the first leading symbol, whose quotes appear in
// ascending type order within each minute.
func Q3Symbols(meta *datasets.NYSEMeta) ([]event.Type, error) {
	if meta == nil || len(meta.Leaders) == 0 {
		return nil, fmt.Errorf("queries: Q3 needs NYSE metadata with leaders")
	}
	followers := meta.Followers[meta.Leaders[0]]
	if len(followers) < 20 {
		return nil, fmt.Errorf("queries: Q3 needs >= 20 followers of the first leader, have %d",
			len(followers))
	}
	return append([]event.Type(nil), followers[:20]...), nil
}

// Q3 builds the exact-sequence query: rising (or falling) quotes of 20
// certain symbols in a fixed order within a count-based window of ws
// events; a new window opens on every leading-symbol quote.
func Q3(meta *datasets.NYSEMeta, policy pattern.SelectionPolicy, ws int) (Query, error) {
	symbols, err := Q3Symbols(meta)
	if err != nil {
		return Query{}, err
	}
	if ws < len(symbols) {
		return Query{}, fmt.Errorf("queries: Q3 window %d smaller than pattern %d", ws, len(symbols))
	}
	leaders := typeSet(meta.Leaders)
	mk := func(name string, pred pattern.Predicate) (*pattern.Compiled, error) {
		steps := make([]pattern.Step, len(symbols))
		for i, s := range symbols {
			steps[i] = pattern.Step{Types: []event.Type{s}, Pred: pred}
		}
		return pattern.Compile(pattern.Pattern{Name: name, Steps: steps, Selection: policy})
	}
	rising, err := mk(fmt.Sprintf("Q3-rise(ws=%d,%s)", ws, policy), isRising)
	if err != nil {
		return Query{}, err
	}
	falling, err := mk(fmt.Sprintf("Q3-fall(ws=%d,%s)", ws, policy), isFalling)
	if err != nil {
		return Query{}, err
	}
	return Query{
		Name: fmt.Sprintf("Q3(ws=%d,%s)", ws, policy),
		Window: window.Spec{
			Mode:  window.ModeCount,
			Count: ws,
			Open: func(e event.Event) bool {
				_, ok := leaders[e.Type]
				return ok
			},
		},
		Patterns: []*pattern.Compiled{rising, falling},
		NumTypes: meta.Registry.Len(),
	}, nil
}

// Q4Arrangement is the step arrangement of query Q4 — a sequence of 14
// steps over 10 distinct symbols with repetition, as given in the paper:
// seq(RE1; RE1; RE2; RE3; RE2; RE4; RE2; RE5; RE6; RE7; RE2; RE8; RE9;
// RE10). Indices are zero-based into the 10 chosen symbols.
var Q4Arrangement = []int{0, 0, 1, 2, 1, 3, 1, 4, 5, 6, 1, 7, 8, 9}

// Q4Symbols returns the 10 symbols of the repetition sequence: followers
// 20..29 of the first leader (disjoint from Q3's symbols). These must be
// generated as "hot" symbols (several quotes per minute) so that the
// repetition can occur inside one window; see datasets.NYSEConfig.
func Q4Symbols(meta *datasets.NYSEMeta) ([]event.Type, error) {
	if meta == nil || len(meta.Leaders) == 0 {
		return nil, fmt.Errorf("queries: Q4 needs NYSE metadata with leaders")
	}
	followers := meta.Followers[meta.Leaders[0]]
	if len(followers) < 30 {
		return nil, fmt.Errorf("queries: Q4 needs >= 30 followers of the first leader, have %d",
			len(followers))
	}
	return append([]event.Type(nil), followers[20:30]...), nil
}

// Q4HotSymbolIDs returns the dataset symbol ids that must be configured
// hot for Q4 (convenience for workload construction).
func Q4HotSymbolIDs(cfg datasets.NYSEConfig) []int {
	// Followers of leader 0 occupy ids Leaders..Leaders+FollowersPerLeader-1;
	// Q4 uses followers 20..29.
	base := cfg.Leaders + 20
	out := make([]int, 10)
	for i := range out {
		out[i] = base + i
	}
	return out
}

// Q4 builds the sequence-with-repetition query over count-based sliding
// windows of ws events with slide 100 (a new window every 100 events).
func Q4(meta *datasets.NYSEMeta, policy pattern.SelectionPolicy, ws int) (Query, error) {
	symbols, err := Q4Symbols(meta)
	if err != nil {
		return Query{}, err
	}
	if ws < len(Q4Arrangement) {
		return Query{}, fmt.Errorf("queries: Q4 window %d smaller than pattern %d", ws, len(Q4Arrangement))
	}
	mk := func(name string, pred pattern.Predicate) (*pattern.Compiled, error) {
		steps := make([]pattern.Step, len(Q4Arrangement))
		for i, idx := range Q4Arrangement {
			steps[i] = pattern.Step{Types: []event.Type{symbols[idx]}, Pred: pred}
		}
		return pattern.Compile(pattern.Pattern{Name: name, Steps: steps, Selection: policy})
	}
	rising, err := mk(fmt.Sprintf("Q4-rise(ws=%d,%s)", ws, policy), isRising)
	if err != nil {
		return Query{}, err
	}
	falling, err := mk(fmt.Sprintf("Q4-fall(ws=%d,%s)", ws, policy), isFalling)
	if err != nil {
		return Query{}, err
	}
	return Query{
		Name: fmt.Sprintf("Q4(ws=%d,%s)", ws, policy),
		Window: window.Spec{
			Mode:  window.ModeCount,
			Count: ws,
			Slide: 100,
		},
		Patterns: []*pattern.Compiled{rising, falling},
		NumTypes: meta.Registry.Len(),
	}, nil
}

// MergedTypeWeights combines the pattern type-repetition weights of all
// patterns in the query (they are alternatives, so the maximum per type
// is used) — input for the BL baseline.
func (q Query) MergedTypeWeights() pattern.TypeWeights {
	out := pattern.TypeWeights{PerType: make(map[event.Type]float64)}
	for _, p := range q.Patterns {
		w := p.TypeWeights()
		for t, v := range w.PerType {
			if v > out.PerType[t] {
				out.PerType[t] = v
			}
		}
		if w.Wildcard > out.Wildcard {
			out.Wildcard = w.Wildcard
		}
	}
	return out
}
